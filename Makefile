# Repro of "Physical Synthesis of Flow-Based Microfluidic Biochips
# Considering Distributed Channel Storage" (DATE 2019). Stdlib-only Go.

GO ?= go

.PHONY: all build vet test race race-hot check bench bench-smoke bench-load bench-multicore cluster-bench load-bench session-bench overload-bench verify regress table1 clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Extra race pass over the packages with real concurrency (worker pools,
# HTTP handlers, metric registries); -count=2 reorders goroutine
# interleavings cheaply. CI and `make check` both run exactly this
# target, so the package list lives in one place.
race-hot:
	$(GO) test -race -count=2 ./internal/obs/ ./internal/server/ ./internal/jobq/

# The full pre-merge gate: compile, vet, race-enabled tests, the hot
# concurrency packages twice, and smoke runs of the performance-critical
# and workload-engine benchmarks.
check: build vet race race-hot bench-smoke bench-load

# Full benchmark suite with allocation counts (slow).
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path benchmarks the smoke run must still find; a renamed or deleted
# benchmark silently matches nothing with a bare -bench regex, so the run
# greps its own output for each name and fails loudly instead.
BENCH_SMOKE_NAMES := BenchmarkSynthesisCPU BenchmarkAnnealEnergy BenchmarkAStarSynthetic4
BENCH_SMOKE_REGEX := BenchmarkSynthesisCPU|BenchmarkAnnealEnergy|BenchmarkAStarSynthetic4

# Quick sanity pass over the optimized hot paths: one iteration each of
# the placement, routing and end-to-end synthesis benchmarks.
bench-smoke:
	@out=$$($(GO) test -run xxx -bench '$(BENCH_SMOKE_REGEX)' -benchtime 1x . 2>&1); \
	status=$$?; echo "$$out"; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	for b in $(BENCH_SMOKE_NAMES); do \
		echo "$$out" | grep -q "$$b" || { echo "bench-smoke: benchmark $$b missing from output" >&2; exit 1; }; \
	done

# Workload-engine benchmarks, same loud-fail guard: the warm batch-submit
# path and schedule materialization must both still exist by name.
BENCH_LOAD_NAMES := BenchmarkBatchSubmit BenchmarkScheduleBuild
BENCH_LOAD_REGEX := BenchmarkBatchSubmit|BenchmarkScheduleBuild

bench-load:
	@out=$$($(GO) test -run xxx -bench '$(BENCH_LOAD_REGEX)' -benchtime 1x ./internal/server/ ./internal/loadgen/ 2>&1); \
	status=$$?; echo "$$out"; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	for b in $(BENCH_LOAD_NAMES); do \
		echo "$$out" | grep -q "$$b" || { echo "bench-load: benchmark $$b missing from output" >&2; exit 1; }; \
	done

# Multicore-path benchmarks: parallel-tempering placement and concurrent
# slot-disjoint routing at pool sizes 1 and 4, with allocation counts, plus
# the serving hot-path allocation benchmarks. Same missing-benchmark guard
# as bench-smoke: a renamed benchmark must fail loudly, not match nothing.
BENCH_MULTICORE_NAMES := BenchmarkAnnealTempered BenchmarkRouteParallel
BENCH_MULTICORE_REGEX := BenchmarkAnnealTempered|BenchmarkRouteParallel

bench-multicore:
	@out=$$($(GO) test -run xxx -bench '$(BENCH_MULTICORE_REGEX)' -benchmem -benchtime 1x . 2>&1); \
	status=$$?; echo "$$out"; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	for b in $(BENCH_MULTICORE_NAMES); do \
		echo "$$out" | grep -q "$$b" || { echo "bench-multicore: benchmark $$b missing from output" >&2; exit 1; }; \
	done
	$(GO) test -run xxx -bench 'BenchmarkServeCacheHit|BenchmarkWriteJSON|BenchmarkCompleteChurn' -benchmem ./internal/server/ ./internal/jobq/

# Cluster scaling ladder: spawn 1..3 real mfserved processes wired into
# one consistent-hash ring, drive cold and warm rounds through it, write
# the per-node-count table to BENCH_cluster.json, then gate the 1-node
# reference entry with the regression checker (costs exact, wall time
# within the recorded tolerance).
cluster-bench:
	$(GO) run ./cmd/mfserved -cluster-selfbench 3 -cluster-requests 12 -o BENCH_cluster.json
	$(GO) run ./cmd/mfbench -regress BENCH_cluster.json -bench Synthetic1

# Workload engine against an in-process server: replay the steady
# profile for 5 s, write BENCH_load.json, then gate its Synthetic1
# reference entry with the regression checker — the same seal the other
# BENCH documents carry.
load-bench:
	$(GO) run ./cmd/mfload -spawn -profile steady -duration 5s -o BENCH_load.json
	$(GO) run ./cmd/mfbench -regress BENCH_load.json -bench Synthetic1

# Online-repair workload: replay the session profile (closed-loop chip
# sessions with seeded mid-assay fault reports) against an in-process
# server, gate the report's Synthetic1 reference entry, then print the
# incremental-repair-vs-full-resynthesis comparison table.
session-bench:
	$(GO) run ./cmd/mfload -spawn -profile session -duration 5s -o BENCH_session.json
	$(GO) run ./cmd/mfbench -regress BENCH_session.json -bench Synthetic1
	$(GO) run ./cmd/mfbench -repair

# Overload envelope: drive the breaker/shed path on a deliberately tiny
# spawned server (1 worker, 8-deep queue). mfload itself enforces the
# profile's bounded-nonzero shed-rate envelope and the >=1-completed
# rule, so a server that never sheds — or dies — fails the target.
overload-bench:
	$(GO) run ./cmd/mfload -spawn -spawn-workers 1 -spawn-queue 8 -profile overload -duration 3s -o BENCH_overload.json
	$(GO) run ./cmd/mfbench -regress BENCH_overload.json -bench Synthetic1

# Independent audit of every benchmark's synthesized solution (and the
# baseline-BA variant) against the from-scratch constraint model.
verify:
	$(GO) run ./cmd/mfverify -bench all

# Benchmark-regression gate against both checked-in baselines: the
# sequential default path (BENCH_baseline.json) and the combined
# tempering+wave-routing configuration (BENCH_multicore.json). Costs must
# match exactly for each baseline's recorded options; the multicore time
# gate self-disables below its min_cpus.
regress:
	$(GO) run ./cmd/mfbench -j 2 -regress BENCH_baseline.json,BENCH_multicore.json -regress-out bench_regress.json

# Regenerate the paper's Table I.
table1:
	$(GO) run ./cmd/mfbench -table1

clean:
	$(GO) clean ./...
