# Repro of "Physical Synthesis of Flow-Based Microfluidic Biochips
# Considering Distributed Channel Storage" (DATE 2019). Stdlib-only Go.

GO ?= go

.PHONY: all build vet test race check bench bench-smoke table1 clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-merge gate: compile, vet, race-enabled tests, and a
# short-mode smoke run of the performance-critical benchmarks.
check: build vet race bench-smoke

# Full benchmark suite with allocation counts (slow).
bench:
	$(GO) test -bench=. -benchmem ./...

# Quick sanity pass over the optimized hot paths: one iteration each of
# the placement, routing and end-to-end synthesis benchmarks.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSynthesisCPU|BenchmarkAnnealEnergy|BenchmarkAStarSynthetic4' -benchtime 1x .

# Regenerate the paper's Table I.
table1:
	$(GO) run ./cmd/mfbench -table1

clean:
	$(GO) clean ./...
