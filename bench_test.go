// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section V), plus ablations of the design choices called out
// in DESIGN.md. Each benchmark reports the relevant quantities via
// b.ReportMetric so `go test -bench=. -benchmem` prints the same series
// the paper plots; cmd/mfbench renders them as the actual table/figures.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/report"
	"repro/internal/route"
	"repro/internal/schedule"
)

// benchOpts keeps SA effort moderate so the full suite runs quickly while
// preserving all quality-relevant parameters.
func benchOpts() repro.Options {
	o := repro.DefaultOptions()
	o.Place.Imax = 60
	return o
}

// BenchmarkTableI regenerates Table I: for every benchmark it runs the
// proposed synthesis and the baseline BA and reports execution time,
// resource utilization and total channel length.
func BenchmarkTableI(b *testing.B) {
	for _, bm := range benchdata.All() {
		bm := bm
		for _, algo := range []string{"ours", "BA"} {
			algo := algo
			b.Run(bm.Name+"/"+algo, func(b *testing.B) {
				var m repro.Metrics
				for i := 0; i < b.N; i++ {
					var sol *repro.Solution
					var err error
					if algo == "ours" {
						sol, err = repro.Synthesize(bm.Graph, bm.Alloc, benchOpts())
					} else {
						sol, err = repro.SynthesizeBaseline(bm.Graph, bm.Alloc, benchOpts())
					}
					if err != nil {
						b.Fatal(err)
					}
					m = sol.Metrics()
				}
				b.ReportMetric(m.ExecutionTime.Sec(), "exec_s")
				b.ReportMetric(100*m.Utilization, "Ur_%")
				b.ReportMetric(m.ChannelLength.MM(), "len_mm")
			})
		}
	}
}

// BenchmarkFig8CacheTime regenerates Fig. 8: total cache time in flow
// channels, proposed vs. baseline, per benchmark.
func BenchmarkFig8CacheTime(b *testing.B) {
	for _, bm := range benchdata.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			var ours, ba repro.Metrics
			for i := 0; i < b.N; i++ {
				so, err := repro.Synthesize(bm.Graph, bm.Alloc, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				sb, err := repro.SynthesizeBaseline(bm.Graph, bm.Alloc, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				ours, ba = so.Metrics(), sb.Metrics()
			}
			b.ReportMetric(ours.CacheTime.Sec(), "cache_ours_s")
			b.ReportMetric(ba.CacheTime.Sec(), "cache_BA_s")
		})
	}
}

// BenchmarkFig9WashTime regenerates Fig. 9: total wash time of flow
// channels, proposed vs. baseline, per benchmark.
func BenchmarkFig9WashTime(b *testing.B) {
	for _, bm := range benchdata.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			var ours, ba repro.Metrics
			for i := 0; i < b.N; i++ {
				so, err := repro.Synthesize(bm.Graph, bm.Alloc, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				sb, err := repro.SynthesizeBaseline(bm.Graph, bm.Alloc, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				ours, ba = so.Metrics(), sb.Metrics()
			}
			b.ReportMetric(ours.ChannelWashTime.Sec(), "wash_ours_s")
			b.ReportMetric(ba.ChannelWashTime.Sec(), "wash_BA_s")
		})
	}
}

// BenchmarkAblationCaseI isolates the Case-I binding rule of Algorithm 1:
// DCSA-aware scheduling versus earliest-ready-only scheduling (everything
// downstream of binding held identical).
func BenchmarkAblationCaseI(b *testing.B) {
	for _, name := range []string{"CPA", "Synthetic3"} {
		bm, err := benchdata.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			comps := bm.Alloc.Instantiate()
			var withCaseI, without schedule.Result
			for i := 0; i < b.N; i++ {
				a, err := schedule.Schedule(bm.Graph, comps, schedule.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				c, err := schedule.ScheduleBaseline(bm.Graph, comps, schedule.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				withCaseI, without = *a, *c
			}
			b.ReportMetric(withCaseI.Makespan.Sec(), "makespan_caseI_s")
			b.ReportMetric(without.Makespan.Sec(), "makespan_noCaseI_s")
			b.ReportMetric(float64(len(withCaseI.Transports)), "transports_caseI")
			b.ReportMetric(float64(len(without.Transports)), "transports_noCaseI")
		})
	}
}

// BenchmarkAblationRouteWeights isolates the Eq. 5 wash-weight guidance:
// weighted A* versus plain shortest feasible paths on identical schedules
// and placements.
func BenchmarkAblationRouteWeights(b *testing.B) {
	for _, name := range []string{"CPA", "Synthetic4"} {
		bm, err := benchdata.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOpts()
			comps := bm.Alloc.Instantiate()
			sched, err := schedule.Schedule(bm.Graph, comps, opts.Schedule)
			if err != nil {
				b.Fatal(err)
			}
			nets := place.BuildNets(sched, opts.Place.Beta, opts.Place.Gamma)
			pl, err := place.Anneal(comps, nets, opts.Place)
			if err != nil {
				b.Fatal(err)
			}
			// Dilate once to guarantee both variants route.
			pl = place.Dilate(pl, 1.5)
			var weighted, plain *route.Result
			for i := 0; i < b.N; i++ {
				weighted, err = route.Route(sched, comps, pl, opts.Route)
				if err != nil {
					b.Fatal(err)
				}
				plain, err = route.RouteUnweighted(sched, comps, pl, opts.Route)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(weighted.ChannelWash.Sec(), "wash_weighted_s")
			b.ReportMetric(plain.ChannelWash.Sec(), "wash_plain_s")
			b.ReportMetric(float64(weighted.UnionCells), "cells_weighted")
			b.ReportMetric(float64(plain.UnionCells), "cells_plain")
		})
	}
}

// BenchmarkAblationPlacementPriority isolates the connection-priority
// weighting of Eq. 4: SA driven by cp(i,j) versus SA driven by plain
// unweighted wirelength, evaluated on the Eq. 3 objective.
func BenchmarkAblationPlacementPriority(b *testing.B) {
	for _, name := range []string{"Synthetic2", "Synthetic4"} {
		bm, err := benchdata.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOpts()
			comps := bm.Alloc.Instantiate()
			sched, err := schedule.Schedule(bm.Graph, comps, opts.Schedule)
			if err != nil {
				b.Fatal(err)
			}
			nets := place.BuildNets(sched, opts.Place.Beta, opts.Place.Gamma)
			flat := make([]place.Net, len(nets))
			for i, n := range nets {
				flat[i] = place.Net{A: n.A, B: n.B, CP: 1, Tasks: n.Tasks}
			}
			var withPrio, withoutPrio float64
			for i := 0; i < b.N; i++ {
				a, err := place.Anneal(comps, nets, opts.Place)
				if err != nil {
					b.Fatal(err)
				}
				c, err := place.Anneal(comps, flat, opts.Place)
				if err != nil {
					b.Fatal(err)
				}
				withPrio = place.Energy(a, nets)
				withoutPrio = place.Energy(c, nets)
			}
			b.ReportMetric(withPrio, "energy_eq4")
			b.ReportMetric(withoutPrio, "energy_flat")
		})
	}
}

// BenchmarkSynthesisCPU measures the CPU-time column of Table I: the cost
// of one full proposed synthesis per benchmark.
func BenchmarkSynthesisCPU(b *testing.B) {
	for _, bm := range benchdata.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Synthesize(bm.Graph, bm.Alloc, benchOpts()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnnealEnergy isolates the placement stage — the synthesis
// hot loop whose incremental energy evaluation this repo optimizes — on
// the largest benchmark.
func BenchmarkAnnealEnergy(b *testing.B) {
	bm, err := benchdata.ByName("Synthetic4")
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	comps := bm.Alloc.Instantiate()
	sched, err := schedule.Schedule(bm.Graph, comps, opts.Schedule)
	if err != nil {
		b.Fatal(err)
	}
	nets := place.BuildNets(sched, opts.Place.Beta, opts.Place.Gamma)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := place.Anneal(comps, nets, opts.Place); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAStarSynthetic4 isolates the routing stage on a fixed
// schedule and placement; allocations are reported because the A* core
// is designed to be allocation-free per task.
func BenchmarkAStarSynthetic4(b *testing.B) {
	bm, err := benchdata.ByName("Synthetic4")
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	comps := bm.Alloc.Instantiate()
	sched, err := schedule.Schedule(bm.Graph, comps, opts.Schedule)
	if err != nil {
		b.Fatal(err)
	}
	nets := place.BuildNets(sched, opts.Place.Beta, opts.Place.Gamma)
	pl, err := place.Anneal(comps, nets, opts.Place)
	if err != nil {
		b.Fatal(err)
	}
	pl = place.Dilate(pl, 1.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Route(sched, comps, pl, opts.Route); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteParallel runs the full seven-benchmark comparison (both
// algorithms) through the report worker pool, sequentially and with one
// worker per CPU — the wall-clock win of the parallel pipeline.
func BenchmarkSuiteParallel(b *testing.B) {
	benches := benchdata.All()
	opts := core.DefaultOptions()
	opts.Place.Imax = 60
	workerSet := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerSet = append(workerSet, n)
	}
	for _, workers := range workerSet {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := report.RunWorkers(benches, opts, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnnealPortfolio measures the multi-seed SA portfolio: K
// concurrent anneals whose wall-clock cost should stay well below K
// sequential ones on a multicore host.
func BenchmarkAnnealPortfolio(b *testing.B) {
	bm, err := benchdata.ByName("Synthetic3")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 8} {
		k := k
		b.Run(map[int]string{1: "K=1", 8: "K=8"}[k], func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Place.Imax = 60
			opts.Portfolio = k
			for i := 0; i < b.N; i++ {
				if _, err := core.Synthesize(bm.Graph, bm.Alloc, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkControlLayer measures the control-layer extension: valve count
// and Hamming-distance switching of the proposed solution vs. the
// baseline (the optimization direction of the paper's conclusion).
func BenchmarkControlLayer(b *testing.B) {
	for _, name := range []string{"CPA", "Synthetic3"} {
		bm, err := benchdata.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var ours, ba repro.ControlAnalysis
			for i := 0; i < b.N; i++ {
				so, err := repro.Synthesize(bm.Graph, bm.Alloc, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				sb, err := repro.SynthesizeBaseline(bm.Graph, bm.Alloc, benchOpts())
				if err != nil {
					b.Fatal(err)
				}
				ours, ba = repro.ControlLayer(so), repro.ControlLayer(sb)
			}
			b.ReportMetric(float64(ours.NumValves), "valves_ours")
			b.ReportMetric(float64(ba.NumValves), "valves_BA")
			b.ReportMetric(float64(ours.OptimizedSwitches), "switches_ours")
			b.ReportMetric(float64(ba.OptimizedSwitches), "switches_BA")
		})
	}
}

// BenchmarkStorageArchitecture quantifies the paper's Section I
// motivation: the same DCSA-aware binder running against distributed
// channel storage versus a conventional dedicated storage unit with a
// single multiplexed port (8 cells).
func BenchmarkStorageArchitecture(b *testing.B) {
	for _, bm := range benchdata.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			comps := bm.Alloc.Instantiate()
			var dcsa, ded *schedule.Result
			for i := 0; i < b.N; i++ {
				var err error
				dcsa, err = schedule.Schedule(bm.Graph, comps, schedule.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				ded, err = schedule.ScheduleDedicated(bm.Graph, comps, schedule.DefaultDedicatedOptions())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(dcsa.Makespan.Sec(), "makespan_dcsa_s")
			b.ReportMetric(ded.Makespan.Sec(), "makespan_dedicated_s")
		})
	}
}

// BenchmarkAnnealTempered measures parallel tempering on the largest
// tracked benchmark: R replicas at a temperature ladder versus the
// single-seed anneal. On a multicore host the replicas of one round run
// concurrently, so R=4 should cost well under 4x the R=1 wall time; on
// one core it honestly serializes.
func BenchmarkAnnealTempered(b *testing.B) {
	bm, err := benchdata.ByName("Synthetic3")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 4} {
		k := k
		b.Run(fmt.Sprintf("R=%d", k), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Place.Imax = 60
			opts.Tempering = k
			for i := 0; i < b.N; i++ {
				if _, err := core.Synthesize(bm.Graph, bm.Alloc, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRouteParallel measures the concurrent slot-disjoint wave
// router against the sequential loop on a fixed schedule and placement.
// The routed Result is byte-identical in both configurations (pinned by
// TestParallelRoutingMatchesSequential); only the wall time may differ.
func BenchmarkRouteParallel(b *testing.B) {
	bm, err := benchdata.ByName("Synthetic4")
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	comps := bm.Alloc.Instantiate()
	sched, err := schedule.Schedule(bm.Graph, comps, opts.Schedule)
	if err != nil {
		b.Fatal(err)
	}
	nets := place.BuildNets(sched, opts.Place.Beta, opts.Place.Gamma)
	pl, err := place.Anneal(comps, nets, opts.Place)
	if err != nil {
		b.Fatal(err)
	}
	pl = place.Dilate(pl, 1.5)
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pr := opts.Route
			pr.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := route.Route(sched, comps, pl, pr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
