// Cancellation unwind coverage: the pipeline checks ctx.Err() at fixed
// poll boundaries (schedule commit batches, SA temperature steps, routed
// tasks). This test cancels at EVERY such boundary — a countdown context
// whose Err() flips to Canceled after exactly N polls — and asserts the
// pipeline always unwinds to (nil, context.Canceled): no partial
// solution, no panic, no swallowed cancellation, at any depth.
package repro_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
)

// countdownCtx returns nil from Err() for the first budget calls, then
// context.Canceled forever. Concurrency-safe: the portfolio annealer
// polls from several goroutines.
type countdownCtx struct {
	context.Context // Background: Deadline/Value delegation
	mu              sync.Mutex
	budget          int
	polls           int
	canceled        bool
	done            chan struct{}
}

func newCountdown(budget int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), budget: budget, done: make(chan struct{})}
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.polls++
	if !c.canceled && c.polls > c.budget {
		c.canceled = true
		close(c.done)
	}
	if c.canceled {
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

// Polls returns how many times Err was consulted.
func (c *countdownCtx) Polls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.polls
}

func TestCancelUnwindsAtEveryPollBoundary(t *testing.T) {
	bm, err := benchdata.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Place.Imax = 40 // small but real anneal: every stage still polls

	// Measure the poll count of one unrestricted run. The pipeline is
	// deterministic, so this is the exact boundary set every later run
	// will visit.
	free := newCountdown(1 << 30)
	if _, err := core.SynthesizeContext(free, bm.Graph, bm.Alloc, opts); err != nil {
		t.Fatal(err)
	}
	total := free.Polls()
	if total < 10 {
		t.Fatalf("only %d poll boundaries — the countdown harness is not reaching the pipeline", total)
	}
	t.Logf("pipeline has %d poll boundaries at these options", total)

	stride := 1
	if testing.Short() {
		stride = 7 // sample the boundary space; full sweep in CI
	}
	for n := 0; n < total; n += stride {
		ctx := newCountdown(n)
		sol, err := core.SynthesizeContext(ctx, bm.Graph, bm.Alloc, opts)
		if err == nil {
			t.Fatalf("budget %d/%d: synthesis succeeded despite cancellation", n, total)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("budget %d/%d: error does not carry cancellation: %v", n, total, err)
		}
		if sol != nil {
			t.Fatalf("budget %d/%d: canceled synthesis returned a partial solution", n, total)
		}
	}

	// The exact budget must succeed — cancellation one poll past the last
	// boundary never triggers.
	sol, err := core.SynthesizeContext(newCountdown(total), bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatalf("budget %d (full): %v", total, err)
	}
	if err := sol.Validate(); err != nil {
		t.Fatalf("full-budget solution invalid: %v", err)
	}
}
