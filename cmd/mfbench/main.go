// Command mfbench regenerates the paper's evaluation: Table I, Fig. 8 and
// Fig. 9, comparing the proposed DCSA-aware synthesis against the
// baseline BA on the seven published benchmarks.
//
// Usage:
//
//	mfbench              # everything: table + both figures
//	mfbench -table1      # only Table I
//	mfbench -fig8        # only Fig. 8 (total channel cache time)
//	mfbench -fig9        # only Fig. 9 (total channel wash time)
//	mfbench -csv         # machine-readable CSV of all metrics
//	mfbench -bench CPA   # restrict to one benchmark
//	mfbench -imax 150    # SA iterations per temperature (default 150,
//	                     # the paper's setting)
//	mfbench -j 4         # benchmark worker-pool size (0 = all CPUs);
//	                     # output is identical for every -j value
//	mfbench -portfolio 8 # anneal 8 seeds concurrently per benchmark and
//	                     # keep the lowest-energy placement (default 1,
//	                     # which reproduces the single-seed run exactly)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/buildinfo"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "print only Table I")
		fig8    = flag.Bool("fig8", false, "print only Fig. 8 (channel cache time)")
		fig9    = flag.Bool("fig9", false, "print only Fig. 9 (channel wash time)")
		csv     = flag.Bool("csv", false, "print all metrics as CSV")
		md      = flag.Bool("markdown", false, "print the comparison as a markdown table")
		bench   = flag.String("bench", "", "restrict to one benchmark (PCR, IVD, CPA, Synthetic1..4)")
		imax    = flag.Int("imax", 150, "simulated-annealing iterations per temperature step")
		seed    = flag.Uint64("seed", 1, "placement seed")
		jobs    = flag.Int("j", 0, "benchmark worker-pool size (0 = all CPUs)")
		portf   = flag.Int("portfolio", 1, "concurrent annealing seeds per benchmark (1 = single-seed)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("mfbench"))
		return
	}

	opts := repro.DefaultOptions()
	opts.Place.Imax = *imax
	opts.Place.Seed = *seed
	opts.Portfolio = *portf

	benches := repro.Benchmarks()
	if *bench != "" {
		bm, err := repro.BenchmarkByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		benches = []repro.Benchmark{bm}
	}

	var rows []repro.ComparisonRow
	var err error
	if *jobs > 0 {
		rows, err = repro.RunComparisonWorkers(benches, opts, *jobs)
	} else {
		rows, err = repro.RunComparison(benches, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	all := !*table1 && !*fig8 && !*fig9 && !*csv && !*md
	if *csv {
		fmt.Print(repro.ComparisonCSV(rows))
		return
	}
	if *md {
		fmt.Print(repro.ComparisonMarkdown(rows))
		return
	}
	if all || *table1 {
		fmt.Println(repro.TableI(rows))
	}
	if all || *fig8 {
		fmt.Println(repro.Fig8(rows))
	}
	if all || *fig9 {
		fmt.Println(repro.Fig9(rows))
	}
}
