// Command mfbench regenerates the paper's evaluation: Table I, Fig. 8 and
// Fig. 9, comparing the proposed DCSA-aware synthesis against the
// baseline BA on the seven published benchmarks.
//
// Usage:
//
//	mfbench              # everything: table + both figures
//	mfbench -table1      # only Table I
//	mfbench -fig8        # only Fig. 8 (total channel cache time)
//	mfbench -fig9        # only Fig. 9 (total channel wash time)
//	mfbench -csv         # machine-readable CSV of all metrics
//	mfbench -bench CPA   # restrict to one benchmark
//	mfbench -imax 150    # SA iterations per temperature (default 150,
//	                     # the paper's setting)
//	mfbench -j 4         # benchmark worker-pool size (0 = all CPUs);
//	                     # output is identical for every -j value
//	mfbench -portfolio 8 # anneal 8 seeds concurrently per benchmark and
//	                     # keep the lowest-energy placement (default 1,
//	                     # which reproduces the single-seed run exactly)
//
// Regression gate (CI):
//
//	mfbench -regress BENCH_baseline.json -regress-out report.json
//
// runs the tracked benchmarks (Synthetic1-4 unless -bench restricts
// further) with the capture options recorded in the baseline, compares
// wall time (±tolerance) and solution cost (exactly — synthesis is
// deterministic) and exits non-zero on any regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/regress"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "print only Table I")
		fig8    = flag.Bool("fig8", false, "print only Fig. 8 (channel cache time)")
		fig9    = flag.Bool("fig9", false, "print only Fig. 9 (channel wash time)")
		csv     = flag.Bool("csv", false, "print all metrics as CSV")
		md      = flag.Bool("markdown", false, "print the comparison as a markdown table")
		bench   = flag.String("bench", "", "restrict to one benchmark (PCR, IVD, CPA, Synthetic1..4)")
		imax    = flag.Int("imax", 150, "simulated-annealing iterations per temperature step")
		seed    = flag.Uint64("seed", 1, "placement seed")
		jobs    = flag.Int("j", 0, "benchmark worker-pool size (0 = all CPUs)")
		portf   = flag.Int("portfolio", 1, "concurrent annealing seeds per benchmark (1 = single-seed)")
		regr    = flag.String("regress", "", "run the benchmark-regression gate against this baseline JSON")
		regrOut = flag.String("regress-out", "", "with -regress: write the comparison report JSON to this file")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("mfbench"))
		return
	}

	opts := repro.DefaultOptions()
	opts.Place.Imax = *imax
	opts.Place.Seed = *seed
	opts.Portfolio = *portf

	benches := repro.Benchmarks()
	if *bench != "" {
		bm, err := repro.BenchmarkByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		benches = []repro.Benchmark{bm}
	}

	if *regr != "" {
		runRegression(*regr, *regrOut, *bench, opts, *jobs)
		return
	}

	var rows []repro.ComparisonRow
	var err error
	if *jobs > 0 {
		rows, err = repro.RunComparisonWorkers(benches, opts, *jobs)
	} else {
		rows, err = repro.RunComparison(benches, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	all := !*table1 && !*fig8 && !*fig9 && !*csv && !*md
	if *csv {
		fmt.Print(repro.ComparisonCSV(rows))
		return
	}
	if *md {
		fmt.Print(repro.ComparisonMarkdown(rows))
		return
	}
	if all || *table1 {
		fmt.Println(repro.TableI(rows))
	}
	if all || *fig8 {
		fmt.Println(repro.Fig8(rows))
	}
	if all || *fig9 {
		fmt.Println(repro.Fig9(rows))
	}
}

// regressBenches is the tracked set the CI gate runs by default: the
// four synthetic benchmarks, whose sizes dominate synthesis time.
var regressBenches = []string{"Synthetic1", "Synthetic2", "Synthetic3", "Synthetic4"}

// runRegression runs the benchmark-regression gate and exits: status 0
// when every tracked benchmark holds its time and cost baseline, 1 on
// any regression, 2 on usage or I/O errors.
func runRegression(baselinePath, outPath, only string, opts repro.Options, jobs int) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mfbench:", err)
		os.Exit(2)
	}
	f, err := os.Open(baselinePath)
	if err != nil {
		fail(err)
	}
	base, err := regress.Load(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	names := regressBenches
	if only != "" {
		names = []string{only}
	}
	var benches []repro.Benchmark
	for _, name := range names {
		bm, err := repro.BenchmarkByName(name)
		if err != nil {
			fail(err)
		}
		benches = append(benches, bm)
	}

	// Costs are only comparable under the capture options.
	opts.Place.Imax = base.Imax
	opts.Place.Seed = base.Seed

	var rows []repro.ComparisonRow
	if jobs > 0 {
		rows, err = repro.RunComparisonWorkers(benches, opts, jobs)
	} else {
		rows, err = repro.RunComparison(benches, opts)
	}
	if err != nil {
		fail(err)
	}

	// The parallel run above settles the cost comparison (costs are
	// deterministic at any -j), but its wall times carry worker
	// contention. Re-measure sequentially, best of three, so the time
	// gate reflects single-run synthesis speed.
	for i := range rows {
		for rep := 0; rep < 3; rep++ {
			sol, err := repro.Synthesize(benches[i].Graph, benches[i].Alloc, opts)
			if err != nil {
				fail(err)
			}
			if rep == 0 || sol.CPU < rows[i].Ours.CPU {
				rows[i].Ours.CPU = sol.CPU
			}
		}
	}

	rep := base.Compare(rows)
	fmt.Print(rep)
	if outPath != "" {
		out, err := os.Create(outPath)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		if err := out.Close(); err != nil {
			fail(err)
		}
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
