// Command mfbench regenerates the paper's evaluation: Table I, Fig. 8 and
// Fig. 9, comparing the proposed DCSA-aware synthesis against the
// baseline BA on the seven published benchmarks.
//
// Usage:
//
//	mfbench              # everything: table + both figures
//	mfbench -table1      # only Table I
//	mfbench -fig8        # only Fig. 8 (total channel cache time)
//	mfbench -fig9        # only Fig. 9 (total channel wash time)
//	mfbench -csv         # machine-readable CSV of all metrics
//	mfbench -bench CPA   # restrict to one benchmark
//	mfbench -imax 150    # SA iterations per temperature (default 150,
//	                     # the paper's setting)
//	mfbench -j 4         # benchmark worker-pool size (0 = all CPUs);
//	                     # output is identical for every -j value
//	mfbench -portfolio 8 # anneal 8 seeds concurrently per benchmark and
//	                     # keep the lowest-energy placement (default 1,
//	                     # which reproduces the single-seed run exactly)
//	mfbench -tempering 4 # parallel tempering with 4 replicas instead of
//	                     # the portfolio (changes the solution; 0 = off)
//	mfbench -route-workers 4
//	                     # concurrent slot-disjoint wave routing with a
//	                     # 4-worker pool; output is byte-identical to the
//	                     # sequential router for every value
//
// Repair benchmark:
//
//	mfbench -repair
//
// synthesizes the tracked benchmarks, kills one routing-plane cell
// mid-assay, and times internal/session's incremental repair against a
// full from-scratch resynthesis of the same benchmark (the EXPERIMENTS
// repair-vs-resynthesis table).
//
// Multicore scaling sweep:
//
//	mfbench -sweep BENCH_multicore.json
//
// measures end-to-end synthesis wall time of the tracked benchmarks at
// each GOMAXPROCS in {1, 2, 4, …, NumCPU}, in four modes (sequential,
// tempering, wave routing, combined), and writes the curve as JSON. The
// host's CPU count is recorded in the document — a 1-core host yields a
// flat, honest curve, not a fabricated speedup.
//
// Regression gate (CI):
//
//	mfbench -regress BENCH_baseline.json,BENCH_multicore.json -regress-out report.json
//
// runs the tracked benchmarks (Synthetic1-4 unless -bench restricts
// further) once per listed baseline, with the capture options recorded in
// each (including tempering/route-workers for the multicore baseline),
// compares wall time (±tolerance, skipped below the baseline's min_cpus)
// and solution cost (exactly — synthesis is deterministic) and exits
// non-zero on any regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/regress"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "print only Table I")
		fig8    = flag.Bool("fig8", false, "print only Fig. 8 (channel cache time)")
		fig9    = flag.Bool("fig9", false, "print only Fig. 9 (channel wash time)")
		csv     = flag.Bool("csv", false, "print all metrics as CSV")
		md      = flag.Bool("markdown", false, "print the comparison as a markdown table")
		bench   = flag.String("bench", "", "restrict to one benchmark (PCR, IVD, CPA, Synthetic1..4)")
		imax    = flag.Int("imax", 150, "simulated-annealing iterations per temperature step")
		seed    = flag.Uint64("seed", 1, "placement seed")
		jobs    = flag.Int("j", 0, "benchmark worker-pool size (0 = all CPUs)")
		portf   = flag.Int("portfolio", 1, "concurrent annealing seeds per benchmark (1 = single-seed)")
		temper  = flag.Int("tempering", 0, "parallel-tempering replica count (0 = off; overrides -portfolio when >= 2)")
		routeW  = flag.Int("route-workers", 0, "concurrent wave-routing pool size (0/1 = sequential; result is identical)")
		sweep   = flag.String("sweep", "", "measure the GOMAXPROCS scaling curve and write it to this JSON file")
		repair  = flag.Bool("repair", false, "measure incremental session repair vs full resynthesis on single-cell faults (markdown table)")
		regr    = flag.String("regress", "", "run the benchmark-regression gate against these baseline JSONs (comma-separated)")
		regrOut = flag.String("regress-out", "", "with -regress: write the comparison report JSON to this file")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("mfbench"))
		return
	}

	opts := repro.DefaultOptions()
	opts.Place.Imax = *imax
	opts.Place.Seed = *seed
	opts.Portfolio = *portf
	opts.Tempering = *temper
	opts.Route.Workers = *routeW

	benches := repro.Benchmarks()
	if *bench != "" {
		bm, err := repro.BenchmarkByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		benches = []repro.Benchmark{bm}
	}

	if *sweep != "" {
		runSweep(*sweep, *bench, opts, *temper, *routeW)
		return
	}
	if *regr != "" {
		runRegression(*regr, *regrOut, *bench, opts, *jobs)
		return
	}
	if *repair {
		runRepairBench(*bench, opts)
		return
	}

	var rows []repro.ComparisonRow
	var err error
	if *jobs > 0 {
		rows, err = repro.RunComparisonWorkers(benches, opts, *jobs)
	} else {
		rows, err = repro.RunComparison(benches, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	all := !*table1 && !*fig8 && !*fig9 && !*csv && !*md
	if *csv {
		fmt.Print(repro.ComparisonCSV(rows))
		return
	}
	if *md {
		fmt.Print(repro.ComparisonMarkdown(rows))
		return
	}
	if all || *table1 {
		fmt.Println(repro.TableI(rows))
	}
	if all || *fig8 {
		fmt.Println(repro.Fig8(rows))
	}
	if all || *fig9 {
		fmt.Println(repro.Fig9(rows))
	}
}

// regressBenches is the tracked set the CI gate runs by default: the
// four synthetic benchmarks, whose sizes dominate synthesis time.
var regressBenches = []string{"Synthetic1", "Synthetic2", "Synthetic3", "Synthetic4"}

// fail aborts with a usage/IO error (exit status 2).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "mfbench:", err)
	os.Exit(2)
}

// runRegression runs the benchmark-regression gate against every listed
// baseline (comma-separated paths) and exits: status 0 when every
// tracked benchmark holds its time and cost references in every
// baseline, 1 on any regression, 2 on usage or I/O errors. Each baseline
// is replayed under its own capture options — the multicore baseline
// turns tempering and wave routing on, the classic one keeps them off.
func runRegression(baselinePaths, outPath, only string, opts repro.Options, jobs int) {
	names := regressBenches
	if only != "" {
		names = []string{only}
	}
	var benches []repro.Benchmark
	for _, name := range names {
		bm, err := repro.BenchmarkByName(name)
		if err != nil {
			fail(err)
		}
		benches = append(benches, bm)
	}

	// namedReport tags each gate outcome with its baseline for the CI
	// artifact; the file holds one element per listed baseline.
	type namedReport struct {
		Baseline string `json:"baseline"`
		*regress.Report
	}
	var reports []namedReport
	allOK := true

	for _, path := range strings.Split(baselinePaths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		base, err := regress.Load(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}

		// Costs are only comparable under the capture options.
		o := opts
		o.Place.Imax = base.Imax
		o.Place.Seed = base.Seed
		o.Tempering = base.Tempering
		o.Route.Workers = base.RouteWorkers

		var rows []repro.ComparisonRow
		if jobs > 0 {
			rows, err = repro.RunComparisonWorkers(benches, o, jobs)
		} else {
			rows, err = repro.RunComparison(benches, o)
		}
		if err != nil {
			fail(err)
		}

		// The parallel run above settles the cost comparison (costs are
		// deterministic at any -j), but its wall times carry worker
		// contention. Re-measure sequentially, best of three, so the time
		// gate reflects single-run synthesis speed.
		for i := range rows {
			for rep := 0; rep < 3; rep++ {
				sol, err := repro.Synthesize(benches[i].Graph, benches[i].Alloc, o)
				if err != nil {
					fail(err)
				}
				if rep == 0 || sol.CPU < rows[i].Ours.CPU {
					rows[i].Ours.CPU = sol.CPU
				}
			}
		}

		rep := base.Compare(rows)
		fmt.Printf("== %s ==\n", filepath.Base(path))
		fmt.Print(rep)
		reports = append(reports, namedReport{Baseline: path, Report: rep})
		if !rep.OK() {
			allOK = false
		}
	}
	if len(reports) == 0 {
		fail(fmt.Errorf("no baseline paths in %q", baselinePaths))
	}

	if outPath != "" {
		out, err := os.Create(outPath)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail(err)
		}
		if err := out.Close(); err != nil {
			fail(err)
		}
	}
	if !allOK {
		os.Exit(1)
	}
}

// sweepModes are the four configurations the scaling sweep measures at
// every GOMAXPROCS value. Sequential is the pinned default path; the
// other three exercise each multicore mode alone and combined.
func sweepModes(tempering, routeWorkers int) []struct {
	Name                    string
	Tempering, RouteWorkers int
} {
	if tempering < 2 {
		tempering = 4
	}
	if routeWorkers < 2 {
		routeWorkers = 4
	}
	return []struct {
		Name                    string
		Tempering, RouteWorkers int
	}{
		{"sequential", 0, 0},
		{"tempering", tempering, 0},
		{"waves", 0, routeWorkers},
		{"combined", tempering, routeWorkers},
	}
}

// sweepProcs is the GOMAXPROCS ladder: powers of two up to NumCPU, with
// NumCPU itself always included.
func sweepProcs() []int {
	n := runtime.NumCPU()
	var procs []int
	for p := 1; p < n; p *= 2 {
		procs = append(procs, p)
	}
	return append(procs, n)
}

// runSweep measures the GOMAXPROCS scaling curve of end-to-end synthesis
// on the tracked benchmarks and writes it as JSON. Wall times are best
// of three; the host's true core count is recorded so a 1-core capture
// reads as what it is instead of masquerading as a multicore result.
func runSweep(outPath, only string, opts repro.Options, tempering, routeWorkers int) {
	names := regressBenches
	if only != "" {
		names = []string{only}
	}
	modes := sweepModes(tempering, routeWorkers)
	procs := sweepProcs()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	type point struct {
		Procs      int                         `json:"procs"`
		Benchmarks map[string]map[string]int64 `json:"benchmarks"` // bench -> mode -> ns/op
	}
	doc := struct {
		Captured string `json:"captured"`
		Host     struct {
			Cores  int    `json:"cores"`
			GOOS   string `json:"goos"`
			GOARCH string `json:"goarch"`
		} `json:"host"`
		Method string  `json:"method"`
		Sweep  []point `json:"sweep"`
	}{
		Captured: time.Now().UTC().Format("2006-01-02"),
		Method: fmt.Sprintf("mfbench -sweep (Imax=%d, seed=%d): end-to-end synthesis wall time, best of 3 per point; "+
			"modes: sequential, tempering=%d, route-workers=%d, combined", opts.Place.Imax, opts.Place.Seed,
			modes[1].Tempering, modes[2].RouteWorkers),
	}
	doc.Host.Cores = runtime.NumCPU()
	doc.Host.GOOS = runtime.GOOS
	doc.Host.GOARCH = runtime.GOARCH

	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		pt := point{Procs: p, Benchmarks: make(map[string]map[string]int64)}
		for _, name := range names {
			bm, err := repro.BenchmarkByName(name)
			if err != nil {
				fail(err)
			}
			row := make(map[string]int64, len(modes))
			for _, mode := range modes {
				o := opts
				o.Tempering = mode.Tempering
				o.Route.Workers = mode.RouteWorkers
				var best int64
				for rep := 0; rep < 3; rep++ {
					sol, err := repro.Synthesize(bm.Graph, bm.Alloc, o)
					if err != nil {
						fail(fmt.Errorf("%s/%s at GOMAXPROCS=%d: %w", name, mode.Name, p, err))
					}
					if ns := sol.CPU.Nanoseconds(); rep == 0 || ns < best {
						best = ns
					}
				}
				row[mode.Name] = best
				fmt.Printf("GOMAXPROCS=%-3d %-12s %-10s %8.1f ms\n", p, name, mode.Name, float64(best)/1e6)
			}
			pt.Benchmarks[name] = row
		}
		doc.Sweep = append(doc.Sweep, pt)
	}

	out, err := os.Create(outPath)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err)
	}
	if err := out.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%d procs x %d benchmarks x %d modes)\n", outPath, len(procs), len(names), len(modes))
}
