// -repair: the incremental-repair-vs-full-resynthesis comparison that
// backs the EXPERIMENTS.md table. For each tracked benchmark it
// synthesizes a solution, kills one routing-plane cell mid-assay (an
// interior cell of a transport whose consumer has not executed at
// makespan/2 — the paper's single-cell defect case), repairs the pinned
// solution through internal/session's escalation ladder, and times that
// against the alternative the session layer exists to avoid: throwing
// the solution away and synthesizing from scratch.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/session"
	"repro/internal/unit"
)

// repairSuffixCell picks the injected dead cell: mid-path on the first
// transport still ahead of the mid-assay cut.
func repairSuffixCell(sol *core.Solution) (route.Cell, unit.Time, bool) {
	at := sol.Schedule.Makespan / 2
	executed := schedule.Executed(sol.Schedule, at)
	consumer := make(map[int]assay.OpID)
	for _, tr := range sol.Schedule.Transports {
		consumer[tr.ID] = tr.Consumer
	}
	for _, rt := range sol.Routing.Routes {
		if !executed[consumer[rt.Task.ID]] && len(rt.Path) >= 3 {
			return rt.Path[len(rt.Path)/2], at, true
		}
	}
	return route.Cell{}, 0, false
}

// runRepairBench prints the comparison as a markdown table. Both sides
// are measured on this host in this process: the resynthesis column is
// a fresh core.Synthesize of the same benchmark at the same options,
// the repair column is one session.Repair of a single-cell fault
// report against the pinned solution.
func runRepairBench(benchName string, opts core.Options) {
	names := []string{"Synthetic3", "Synthetic4"}
	if benchName != "" {
		names = []string{benchName}
	}
	fmt.Printf("Single-cell fault at makespan/2, imax %d, seed %d:\n\n", opts.Place.Imax, opts.Place.Seed)
	fmt.Println("| benchmark | dead cell | at | full resynthesis | incremental repair | rung | outcome | speedup |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, name := range names {
		bm, err := benchdata.ByName(name)
		if err != nil {
			fail(err)
		}
		sol, err := core.Synthesize(bm.Graph, bm.Alloc, opts)
		if err != nil {
			fail(fmt.Errorf("%s: %v", name, err))
		}
		cell, at, ok := repairSuffixCell(sol)
		if !ok {
			fmt.Fprintf(os.Stderr, "mfbench: %s: no suffix transport to fault, skipped\n", name)
			continue
		}

		t0 := time.Now()
		if _, err := core.Synthesize(bm.Graph, bm.Alloc, opts); err != nil {
			fail(fmt.Errorf("%s: resynthesis: %v", name, err))
		}
		fullMs := float64(time.Since(t0)) / float64(time.Millisecond)

		sess, err := session.New(name, sol, bm.Alloc)
		if err != nil {
			fail(fmt.Errorf("%s: %v", name, err))
		}
		t1 := time.Now()
		rec, err := sess.Repair(context.Background(),
			session.FaultReport{At: at, Cells: []route.Cell{cell}})
		repairMs := float64(time.Since(t1)) / float64(time.Millisecond)
		if err != nil {
			fail(fmt.Errorf("%s: repair: %v", name, err))
		}
		fmt.Printf("| %s | (%d,%d) | %s | %.1f ms | %.1f ms | %s | %s | %.1fx |\n",
			name, cell.X, cell.Y, at, fullMs, repairMs, rec.Rung, rec.Outcome, fullMs/repairMs)
	}
}
