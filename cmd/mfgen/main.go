// Command mfgen emits bioassay JSON files: either one of the built-in
// Table I benchmarks, or a fresh synthetic assay with a chosen size and
// seed. The output is consumed by mfsyn -assay.
//
// Usage:
//
//	mfgen -bench CPA > cpa.json
//	mfgen -ops 30 -alloc "(5,2,2,2)" -seed 7 > synth.json
//	mfgen -bench PCR -dot > pcr.dot       # Graphviz instead of JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/assay"
	"repro/internal/buildinfo"
)

func main() {
	var (
		benchName = flag.String("bench", "", "emit a built-in benchmark (PCR, IVD, CPA, Synthetic1..4)")
		ops       = flag.Int("ops", 0, "generate a synthetic assay with this many operations")
		allocStr  = flag.String("alloc", "(3,1,1,1)", "allocation guiding the synthetic type mix")
		seed      = flag.Uint64("seed", 1, "synthetic generator seed")
		name      = flag.String("name", "synthetic", "synthetic assay name")
		dot       = flag.Bool("dot", false, "emit Graphviz DOT instead of JSON")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("mfgen"))
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mfgen:", err)
		os.Exit(1)
	}

	var g *repro.Assay
	switch {
	case *benchName != "":
		bm, err := repro.BenchmarkByName(*benchName)
		if err != nil {
			fail(err)
		}
		g = bm.Graph
	case *ops > 0:
		alloc, err := repro.ParseAllocation(*allocStr)
		if err != nil {
			fail(err)
		}
		g = repro.GenerateSyntheticAssay(*name, *ops, alloc, *seed)
	default:
		fmt.Fprintln(os.Stderr, "mfgen: need -bench NAME or -ops N")
		flag.Usage()
		os.Exit(2)
	}

	if *dot {
		if err := assay.WriteDOT(os.Stdout, g); err != nil {
			fail(err)
		}
		return
	}
	if err := repro.EncodeAssay(os.Stdout, g); err != nil {
		fail(err)
	}
}
