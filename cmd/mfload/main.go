// Command mfload is the workload engine's CLI: it replays a named,
// seeded traffic profile against a running mfserved and writes the
// aggregated SLO-style report as BENCH_load.json.
//
// Usage:
//
//	mfload -list
//	mfload -addr http://127.0.0.1:8080 -profile steady -duration 5s
//	mfload -spawn -profile heavytail -duration 5s -o BENCH_load.json
//	mfload -profile steady -duration 5s -batch 8           # ship via /v1/synthesize/batch
//	mfload -profile bursty -duration 5s -print-schedule    # inspect, don't run
//
// The request schedule — arrival offsets, request bodies, source tags —
// is a pure function of (profile, seed, duration, rate): two runs with
// the same flags submit byte-identical request sequences, which is what
// makes BENCH_load.json comparisons regressions rather than noise. The
// measured numbers (latency percentiles, error/shed/degraded/cache-hit
// rates) describe the server under test.
//
// -spawn boots an in-process mfserved on a loopback port for the run
// (what `make load-bench` uses); -addr points at any running instance
// (what the CI load job does, against a real separate process). The
// report embeds a Synthetic1 reference entry measured over the same
// API, so `mfbench -regress BENCH_load.json -bench Synthetic1` gates a
// load run exactly like the other BENCH documents.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
	"repro/internal/regress"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "", "base URL of a running mfserved (e.g. http://127.0.0.1:8080)")
		spawn    = flag.Bool("spawn", false, "boot an in-process mfserved on a loopback port for the run")
		profile  = flag.String("profile", "steady", "workload profile (see -list)")
		duration = flag.Duration("duration", 5*time.Second, "schedule horizon")
		rate     = flag.Float64("rate", 0, "arrival rate override, requests/s (0 = profile default)")
		conc     = flag.Int("concurrency", 0, "worker/in-flight cap override (0 = profile default)")
		seed     = flag.Uint64("seed", 1, "schedule seed; same seed, same byte-identical schedule")
		imax     = flag.Int("imax", 60, "annealing effort embedded in every request body")
		batch    = flag.Int("batch", 0, "group this many consecutive requests per POST /v1/synthesize/batch (0 = singles)")
		out      = flag.String("o", "BENCH_load.json", "report output path ('-' for stdout)")
		reqlog   = flag.String("reqlog", "", "append one JSON line per request outcome to this file")
		list     = flag.Bool("list", false, "list profiles and exit")
		printSch = flag.Bool("print-schedule", false, "print the canonical schedule bytes and exit without running")
		noRegr   = flag.Bool("no-regress", false, "skip the Synthetic1 reference measurement")
		spawnW   = flag.Int("spawn-workers", 0, "-spawn: worker-pool size (0 = NumCPU)")
		spawnQ   = flag.Int("spawn-queue", 256, "-spawn: queue capacity")
	)
	flag.Parse()

	if *list {
		for _, p := range loadgen.Profiles() {
			loop := "closed-loop"
			if p.OpenLoop {
				loop = "open-loop"
			}
			fmt.Printf("%-10s %-12s %s\n", p.Name, loop, p.Description)
		}
		return
	}

	p, err := loadgen.ByName(*profile)
	if err != nil {
		fail(2, "%v", err)
	}
	sched, err := loadgen.Build(p, loadgen.Options{
		Seed:        *seed,
		Duration:    *duration,
		Rate:        *rate,
		Concurrency: *conc,
		Imax:        *imax,
		Batch:       *batch,
	})
	if err != nil {
		fail(2, "building schedule: %v", err)
	}
	if *printSch {
		b, err := sched.Bytes()
		if err != nil {
			fail(1, "%v", err)
		}
		os.Stdout.Write(b)
		return
	}

	base := *addr
	if *spawn {
		if base != "" {
			fail(2, "-spawn and -addr are mutually exclusive")
		}
		srv, err := server.New(server.Config{Workers: *spawnW, QueueCap: *spawnQ})
		if err != nil {
			fail(1, "spawning server: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(1, "listening: %v", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			hs.Shutdown(ctx)
			srv.Shutdown(ctx)
		}()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "mfload: spawned mfserved at %s\n", base)
	}
	if base == "" {
		fail(2, "need -addr (running mfserved) or -spawn")
	}

	// Probe the server before offering load, so a typo'd -addr fails
	// fast instead of producing a report that is 100%% transport errors.
	if resp, err := http.Get(base + "/healthz"); err != nil {
		fail(1, "server not reachable: %v", err)
	} else {
		resp.Body.Close()
	}

	// The Synthetic1 reference is measured before the run: against a
	// freshly booted server the job is a true cold synthesis, so the
	// entry records a real CPU time. Against a warm server it may be a
	// cache hit (ns_per_op 0) — the cost gate is exact either way, and
	// a zero reference time merely disables the (noisy) time ratio.
	var regr *regress.Baseline
	if !*noRegr {
		var err error
		if regr, err = loadgen.MeasureRegressEntry(nil, base); err != nil {
			fail(1, "measuring Synthetic1 reference: %v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := &loadgen.Runner{BaseURL: base}
	if *reqlog != "" {
		f, err := os.Create(*reqlog)
		if err != nil {
			fail(1, "%v", err)
		}
		defer f.Close()
		runner.ReqLog = f
	}

	fmt.Fprintf(os.Stderr, "mfload: %s — %d requests over %v against %s\n",
		sched.Profile, len(sched.Items), *duration, base)
	start := time.Now()
	outcomes, err := runner.Run(ctx, sched)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mfload: run interrupted: %v\n", err)
	}
	rep := loadgen.Summarize(sched, outcomes, wall)

	doc := loadgen.NewDoc(time.Now().UTC().Format(time.RFC3339))
	doc.Profiles = append(doc.Profiles, rep)
	doc.Regress = regr

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(1, "%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := doc.Write(w); err != nil {
		fail(1, "writing report: %v", err)
	}
	fmt.Fprintf(os.Stderr,
		"mfload: %s — %d/%d done (%.0f/s), p50 %.1fms p95 %.1fms p99 %.1fms, cache %.0f%%, shed %.0f%%, err %.0f%%\n",
		rep.Profile, rep.Completed, rep.Scheduled, rep.ThroughputPerS,
		rep.LatencyMs.P50, rep.LatencyMs.P95, rep.LatencyMs.P99,
		rep.CacheHitRate*100, rep.ShedRate*100, rep.ErrorRate*100)
	if rep.Sessions > 0 {
		fmt.Fprintf(os.Stderr,
			"mfload: %s — %d sessions, %d repairs (%d repaired, %d degraded), %d abandoned\n",
			rep.Profile, rep.Sessions, rep.Repairs, rep.Repaired, rep.DegradedRepairs, rep.Abandoned)
	}

	// An all-errors run means the server was absent or broken; exit
	// non-zero so CI cannot archive a vacuous report as success.
	if rep.Completed == 0 {
		fail(1, "no request completed (errors %d, shed %d, rejected %d)", rep.Errors, rep.Shed, rep.Rejected)
	}
	// Profiles that declare a shed envelope (overload) must land inside
	// it: a zero shed rate means the server was never saturated and the
	// run proved nothing about the breaker/shed path; a rate at the
	// ceiling means nothing got through.
	if p.ShedCeil > 0 && (rep.ShedRate < p.ShedFloor || rep.ShedRate > p.ShedCeil) {
		fail(1, "%s: shed rate %.3f outside the declared envelope [%.2f, %.2f]",
			rep.Profile, rep.ShedRate, p.ShedFloor, p.ShedCeil)
	}
}

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mfload: "+format+"\n", args...)
	os.Exit(code)
}
