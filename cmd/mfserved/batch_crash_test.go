// Batch crash-recovery smoke: the tentpole batch endpoint journals each
// unique member like a single submit, so a SIGKILL mid-queue must lose
// none of them — the restart replays every accepted member exactly once
// as a standalone job.
package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
)

func TestBatchCrashRecoveryReplaysMembers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mfserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building mfserved: %v", err)
	}
	jpath := filepath.Join(dir, "jobs.journal")

	// Process 1: one worker pinned on an enormous anneal, then one batch
	// of four members — three unique, one duplicate — stuck behind it.
	cmd1, base1 := startServed(t, bin,
		"-addr", "127.0.0.1:0", "-journal", jpath, "-workers", "1", "-queue", "16")
	long := `{"bench":"CPA","options":{"imax":100000,"seed":1}}`
	longID := submit(t, base1, long)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base1 + "/v1/jobs/" + longID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var job struct {
			Status string `json:"status"`
		}
		json.Unmarshal(data, &job)
		if job.Status == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("long job stuck in %q", job.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	members := []string{
		`{"bench":"PCR","options":{"imax":60,"seed":11}}`,
		`{"bench":"PCR","options":{"imax":60,"seed":12}}`,
		`{"bench":"PCR","options":{"imax":60,"seed":11}}`, // duplicate of member 0
		`{"bench":"PCR","options":{"imax":60,"seed":13}}`,
	}
	resp, err := http.Post(base1+"/v1/synthesize/batch", "application/json",
		strings.NewReader(`{"requests":[`+strings.Join(members, ",")+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch: %d: %s", resp.StatusCode, data)
	}
	var br struct {
		Unique  int `json:"unique"`
		Deduped int `json:"deduped"`
	}
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Unique != 3 || br.Deduped != 1 {
		t.Fatalf("batch accounting: %+v", br)
	}
	if err := cmd1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	// Process 2: same journal. The pinned single plus the three unique
	// batch members — four accepted jobs — must replay; the duplicate
	// must NOT (it never had its own journal entry).
	cmd2, base2 := startServed(t, bin,
		"-addr", "127.0.0.1:0", "-journal", jpath, "-workers", "2", "-queue", "16",
		"-job-timeout", "5s")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd2.Process.Kill()
		}
	}()

	if got := metricsNum(t, base2, "journal_replayed"); got != 4 {
		t.Fatalf("journal_replayed = %d, want 4 (3 unique members + pinned job, duplicates excluded)", got)
	}
	deadline = time.Now().Add(2 * time.Minute)
	for {
		done := metricsNum(t, base2, "jobs_done")
		failed := metricsNum(t, base2, "jobs_failed")
		if done+failed > 4 {
			t.Fatalf("more terminal jobs than accepted: done=%d failed=%d — duplicated replay", done, failed)
		}
		if done+failed == 4 {
			if done < 3 {
				t.Fatalf("jobs_done=%d jobs_failed=%d, want the three members done", done, failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed members never finished: done=%d failed=%d", done, failed)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Each member must have replayed into a real cached solution: a
	// fresh batch of the same members is now answered entirely from the
	// cache without scheduling anything.
	resp2, err := http.Post(base2+"/v1/synthesize/batch", "application/json",
		strings.NewReader(`{"requests":[`+strings.Join(members, ",")+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm batch after replay: %d: %s", resp2.StatusCode, data2)
	}
	var warm struct {
		Members []struct {
			Status string `json:"status"`
			Cached bool   `json:"cached"`
		} `json:"members"`
	}
	if err := json.Unmarshal(data2, &warm); err != nil {
		t.Fatal(err)
	}
	for i, m := range warm.Members {
		if m.Status != "done" || !m.Cached {
			t.Fatalf("member %d not cache-served after replay: %+v", i, m)
		}
	}

	// Orderly shutdown, then the journal must agree: zero pending.
	cmd2.Process.Signal(syscall.SIGTERM)
	waitDone := make(chan error, 1)
	go func() { waitDone <- cmd2.Wait() }()
	select {
	case <-waitDone:
	case <-time.After(60 * time.Second):
		t.Fatal("second process did not shut down")
	}
	jnl, pending, _, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jnl.Close()
	if len(pending) != 0 {
		t.Fatalf("batch members lost after crash+restart: %+v", pending)
	}
}
