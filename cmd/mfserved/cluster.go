package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/regress"
)

// cluster.go implements -cluster-selfbench: a multi-process scaling
// benchmark of the clustered service. For each rung n = 1..maxNodes it
// spawns n real mfserved processes (one synthesis worker and GOMAXPROCS=1
// each, so on a multicore host n nodes genuinely use n cores), wires
// them into one consistent-hash ring via -peers, and drives a cold and a
// warm round of concurrent requests round-robin across the nodes. The
// warm round submits each request to a *different* node than the cold
// round did, so warm throughput measures cluster-wide cache visibility:
// a node that never saw the request must still answer it as a hit via
// ownership forwarding or read-through peering.

// clusterRound is one round's aggregate, plus how many responses were
// served across nodes (peer field set) rather than from the serving
// node's own cache or pipeline.
type clusterRound struct {
	WallMs        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	CacheHits     int     `json:"cache_hits"`
	PeerServed    int     `json:"peer_served"`
	// SLO is the round's attainment per objective, keyed "p99<=500ms".
	SLO map[string]float64 `json:"slo_attainment,omitempty"`
}

// clusterRung is one node-count rung of the ladder.
type clusterRung struct {
	Nodes int          `json:"nodes"`
	Cold  clusterRound `json:"cold"`
	Warm  clusterRound `json:"warm"`
	// WarmSpeedupX is this rung's warm throughput over the 1-node rung's.
	WarmSpeedupX float64 `json:"warm_speedup_vs_1node"`
}

// clusterReport is the BENCH_cluster.json document.
type clusterReport struct {
	Bench     string        `json:"bench"`
	Requests  int           `json:"requests"`
	HostCPUs  int           `json:"host_cpus"`
	Note      string        `json:"note"`
	Ladder    []clusterRung `json:"ladder"`
	GoVersion string        `json:"go_version"`
	SLOSpec   string        `json:"slo_spec,omitempty"`
	// Regress makes the file gatable by mfbench -regress (restricted to
	// Synthetic1): the reference entry is measured through the 1-node rung.
	Regress *regress.Baseline `json:"regress"`
}

const clusterBenchNote = "Each node runs with one synthesis worker and GOMAXPROCS=1, so rung n uses up to n cores; " +
	"on hosts with fewer cores than nodes the rungs time-share and the warm_speedup_vs_1node floor (>=2x at n>=2) is " +
	"not enforced, only recorded. The warm round submits every request to a different node than the cold round did, " +
	"so peer_served > 0 proves cluster-wide cache visibility."

// runClusterBench runs the ladder and writes the report.
func runClusterBench(maxNodes, requests int, sloSpec, outPath string) error {
	if maxNodes < 1 || maxNodes > 16 {
		return fmt.Errorf("-cluster-selfbench wants 1..16 nodes, got %d", maxNodes)
	}
	if requests < maxNodes {
		requests = maxNodes * 4
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "mfserved-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rep := clusterReport{
		Bench:     "Synthetic1",
		Requests:  requests,
		HostCPUs:  runtime.NumCPU(),
		Note:      clusterBenchNote,
		GoVersion: runtime.Version(),
		SLOSpec:   sloSpec,
	}

	for n := 1; n <= maxNodes; n++ {
		fmt.Fprintf(os.Stderr, "cluster-selfbench: rung %d/%d — starting %d node(s)…\n", n, maxNodes, n)
		rung, entry, err := runClusterRung(exe, dir, n, requests, sloSpec)
		if err != nil {
			return fmt.Errorf("rung %d: %w", n, err)
		}
		if n == 1 {
			rep.Regress = &regress.Baseline{
				Imax: 60, Seed: 1, Tolerance: 0.5,
				Benchmarks: map[string]regress.Entry{"Synthetic1": entry},
			}
			rung.WarmSpeedupX = 1
		} else {
			rung.WarmSpeedupX = rung.Warm.ThroughputRPS / rep.Ladder[0].Warm.ThroughputRPS
			if rung.Warm.PeerServed == 0 {
				return fmt.Errorf("rung %d: warm round had zero cross-node serves — the cluster cache is not visible across nodes", n)
			}
			// The scaling floor is only honest when the host can actually
			// run the nodes concurrently; on smaller hosts it is recorded
			// but not enforced (the multicore baseline's min_cpus precedent).
			if runtime.NumCPU() >= n && rung.WarmSpeedupX < 2 {
				return fmt.Errorf("rung %d: warm throughput only %.2fx the single node on a %d-CPU host",
					n, rung.WarmSpeedupX, runtime.NumCPU())
			}
		}
		rep.Ladder = append(rep.Ladder, rung)
		fmt.Fprintf(os.Stderr, "cluster-selfbench: rung %d — warm %.0f req/s (%.2fx), %d peer-served\n",
			n, rung.Warm.ThroughputRPS, rung.WarmSpeedupX, rung.Warm.PeerServed)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath != "" {
		return os.WriteFile(outPath, out, 0o644)
	}
	_, err = os.Stdout.Write(out)
	return err
}

// runClusterRung spawns n nodes, runs the cold and warm rounds, and
// tears the processes down. On the 1-node rung it also measures the
// regression reference entry (Synthetic1, imax 60, seed 1) before the
// rounds, so the entry reflects a real single-node synthesis.
func runClusterRung(exe, dir string, n, requests int, sloSpec string) (clusterRung, regress.Entry, error) {
	rung := clusterRung{Nodes: n}
	var entry regress.Entry

	nodes, stop, err := spawnClusterNodes(exe, filepath.Join(dir, fmt.Sprintf("rung%d", n)), n, requests)
	if err != nil {
		return rung, entry, err
	}
	defer stop()

	if n == 1 {
		entry, err = measureRegressEntry(nodes[0])
		if err != nil {
			return rung, entry, err
		}
	}

	// Seed bases are disjoint per rung so every cold round is truly cold.
	base := uint64(n) * 10_000_000
	cold, err := clusterBenchRound(nodes, requests, base, 0, sloSpec)
	if err != nil {
		return rung, entry, err
	}
	if cold.CacheHits != 0 {
		return rung, entry, fmt.Errorf("cold round had %d cache hits, want 0", cold.CacheHits)
	}
	// Warm: same bodies, each submitted one node further round-robin.
	warm, err := clusterBenchRound(nodes, requests, base, 1, sloSpec)
	if err != nil {
		return rung, entry, err
	}
	if warm.CacheHits != requests {
		return rung, entry, fmt.Errorf("warm round had %d/%d cache hits: cluster cache not content-addressing", warm.CacheHits, requests)
	}
	rung.Cold, rung.Warm = cold, warm
	return rung, entry, nil
}

// clusterBenchRound fires `requests` concurrent Synthetic1 requests,
// request i going to node (i+rot) mod n.
func clusterBenchRound(nodes []string, requests int, seedBase uint64, rot int, sloSpec string) (clusterRound, error) {
	lats := make([]time.Duration, requests)
	hits := make([]bool, requests)
	peers := make([]string, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"bench":"Synthetic1","options":{"imax":60,"seed":%d}}`, seedBase+uint64(i)+1)
			node := nodes[(i+rot)%len(nodes)]
			lats[i], hits[i], peers[i], errs[i] = oneClusterRequest(node, body)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return clusterRound{}, fmt.Errorf("request %d: %w", i, err)
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	r := clusterRound{
		WallMs:        ms(wall),
		ThroughputRPS: float64(requests) / wall.Seconds(),
		P50Ms:         ms(percentile(lats, 0.50)),
		P95Ms:         ms(percentile(lats, 0.95)),
		P99Ms:         ms(percentile(lats, 0.99)),
		MaxMs:         ms(lats[requests-1]),
		SLO:           sloAttainment(sloSpec, lats),
	}
	for i := range hits {
		if hits[i] {
			r.CacheHits++
		}
		if peers[i] != "" {
			r.PeerServed++
		}
	}
	return r, nil
}

// spawnClusterNodes starts n mfserved processes wired into one ring and
// waits until every /healthz answers. The returned stop func SIGTERMs
// them all and waits.
func spawnClusterNodes(exe, dir string, n, queueCap int) ([]string, func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// Reserve a distinct loopback port per node. The listener is closed
	// right before the node starts; the race window is tolerable for a
	// local benchmark.
	addrs := make([]string, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		addrs[i] = ln.Addr().String()
		urls[i] = "http://" + addrs[i]
		ln.Close()
	}
	procs := make([]*exec.Cmd, 0, n)
	stop := func() {
		for _, p := range procs {
			_ = p.Process.Signal(syscall.SIGTERM)
		}
		for _, p := range procs {
			done := make(chan struct{})
			go func(p *exec.Cmd) { _ = p.Wait(); close(done) }(p)
			select {
			case <-done:
			case <-time.After(15 * time.Second):
				_ = p.Process.Kill()
				<-done
			}
		}
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe,
			"-addr", addrs[i],
			"-self", urls[i],
			"-peers", strings.Join(urls, ","),
			"-workers", "1",
			"-queue", fmt.Sprint(queueCap+8),
			"-journal", filepath.Join(dir, fmt.Sprintf("node%d.journal", i)),
			"-probe-interval", "200ms",
			"-log-level", "warn",
		)
		// One OS thread of compute per node: rung n uses up to n cores,
		// which is what makes the ladder a scaling curve.
		cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, err
		}
		procs = append(procs, cmd)
	}
	for _, u := range urls {
		if err := waitHealthy(u, 15*time.Second); err != nil {
			stop()
			return nil, nil, err
		}
	}
	return urls, stop, nil
}

func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("node %s never became healthy", base)
}

// oneClusterRequest is oneRequest plus the peer attribution of the
// response (which node's cache or pipeline actually produced it).
func oneClusterRequest(base, body string) (time.Duration, bool, string, error) {
	start := time.Now()
	resp, err := http.Post(base+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, false, "", err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return 0, false, "", fmt.Errorf("POST /v1/synthesize: %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		JobID  string `json:"job_id"`
		Status string `json:"status"`
		Cached bool   `json:"cached"`
		Peer   string `json:"peer"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		return 0, false, "", err
	}
	peer := sub.Peer
	for sub.Status != "done" {
		time.Sleep(2 * time.Millisecond)
		jr, err := http.Get(base + "/v1/jobs/" + sub.JobID)
		if err != nil {
			return 0, false, "", err
		}
		jdata, _ := io.ReadAll(jr.Body)
		jr.Body.Close()
		var job struct {
			Status string `json:"status"`
			Error  string `json:"error"`
			Peer   string `json:"peer"`
		}
		if err := json.Unmarshal(jdata, &job); err != nil {
			return 0, false, "", err
		}
		switch job.Status {
		case "done":
			sub.Status = "done"
			peer = job.Peer
		case "failed", "canceled":
			return 0, false, "", fmt.Errorf("job %s %s: %s", sub.JobID, job.Status, job.Error)
		}
	}
	return time.Since(start), sub.Cached, peer, nil
}

// measureRegressEntry synthesizes the regression reference (Synthetic1,
// imax 60, seed 1) on a single fresh node and reads the solution costs
// and synthesis CPU time back from the job record.
func measureRegressEntry(base string) (regress.Entry, error) {
	var entry regress.Entry
	body := `{"bench":"Synthetic1","options":{"imax":60,"seed":1}}`
	resp, err := http.Post(base+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		return entry, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		return entry, err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		jr, err := http.Get(base + "/v1/jobs/" + sub.JobID)
		if err != nil {
			return entry, err
		}
		jdata, _ := io.ReadAll(jr.Body)
		jr.Body.Close()
		var job struct {
			Status  string `json:"status"`
			Error   string `json:"error"`
			Metrics *struct {
				ExecutionTimeMs int64   `json:"execution_time_ms"`
				ChannelLengthUm int64   `json:"channel_length_um"`
				ChannelWashMs   int64   `json:"channel_wash_ms"`
				Transports      int     `json:"transports"`
				CPUMs           float64 `json:"cpu_ms"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal(jdata, &job); err != nil {
			return entry, err
		}
		switch job.Status {
		case "done":
			if job.Metrics == nil {
				return entry, fmt.Errorf("reference job has no metrics")
			}
			return regress.Entry{
				NsPerOp:         job.Metrics.CPUMs * 1e6,
				MakespanMs:      job.Metrics.ExecutionTimeMs,
				ChannelLengthUm: job.Metrics.ChannelLengthUm,
				ChannelWashMs:   job.Metrics.ChannelWashMs,
				Transports:      job.Metrics.Transports,
			}, nil
		case "failed", "canceled":
			return entry, fmt.Errorf("reference job %s: %s", job.Status, job.Error)
		}
		if time.Now().After(deadline) {
			return entry, fmt.Errorf("reference job timed out")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
