// Cluster fault smoke: build the real binary, stand up a 3-node ring,
// SIGKILL one node mid-stream, and prove that (a) the survivors keep
// accepting and finishing every request — including ones whose ring
// owner is the dead node — and (b) the victim's journal replays its
// accepted-but-unfinished jobs on restart, so no accepted job is lost
// anywhere in the cluster.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
)

// reservePorts grabs n distinct loopback ports and releases the
// listeners so the nodes can bind them. Ports must be known up front
// because every node's -peers flag lists all of them.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func waitJobDone(t *testing.T, base, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job %s: %v", id, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var job struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(data, &job); err != nil {
			t.Fatalf("job %s: %v: %s", id, err, data)
		}
		switch job.Status {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s %s: %s", id, job.Status, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, job.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestClusterSurvivesNodeKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mfserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building mfserved: %v", err)
	}

	const n = 3
	addrs := reservePorts(t, n)
	urls := make([]string, n)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	peers := strings.Join(urls, ",")
	nodeArgs := func(i int) []string {
		return []string{
			"-addr", addrs[i], "-self", urls[i], "-peers", peers,
			"-journal", filepath.Join(dir, fmt.Sprintf("node%d.journal", i)),
			"-workers", "1", "-queue", "32", "-probe-interval", "100ms",
		}
	}
	cmds := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		cmds[i], _ = startServed(t, bin, nodeArgs(i)...)
	}
	stopped := make([]bool, n)
	stopNode := func(i int) {
		if stopped[i] {
			return
		}
		stopped[i] = true
		cmds[i].Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmds[i].Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmds[i].Process.Kill()
			<-done
		}
	}
	defer func() {
		for i := range cmds {
			stopNode(i)
		}
	}()

	// Phase A: the healthy ring handles a spread of requests submitted
	// round-robin; every job must finish wherever it was routed.
	body := func(seed int) string {
		return fmt.Sprintf(`{"bench":"PCR","options":{"imax":60,"seed":%d}}`, seed)
	}
	for i := 0; i < 6; i++ {
		base := urls[i%n]
		waitJobDone(t, base, submit(t, base, body(100+i)), 30*time.Second)
	}

	// Phase B: load node 0 with fresh work and kill it before the work can
	// finish — accepted jobs die with it, pending in its journal. The
	// anneals are sized to run for hundreds of milliseconds each so the
	// SIGKILL always lands mid-work.
	killedIDs := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		killedIDs = append(killedIDs,
			submit(t, urls[0], fmt.Sprintf(`{"bench":"PCR","options":{"imax":5000,"seed":%d}}`, 200+i)))
	}
	if err := cmds[0].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmds[0].Wait()
	stopped[0] = true

	// Survivors must keep finishing everything, including requests whose
	// ring owner is the corpse: the prober marks it down, ownership
	// forwarding is bypassed, and the local fallback synthesizes instead.
	for i := 0; i < 9; i++ {
		base := urls[1+i%2]
		waitJobDone(t, base, submit(t, base, body(300+i)), 60*time.Second)
	}

	// The victim's journal must still hold its accepted jobs. (Peek reads
	// without compacting, so the restart below replays the same records.)
	jpath := filepath.Join(dir, "node0.journal")
	pending, _, err := journal.Peek(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) == 0 {
		t.Fatalf("node 0 died with %d accepted jobs but its journal has no pending records", len(killedIDs))
	}

	// Restart the victim on its old address and journal: the pending jobs
	// replay, and once they finish an orderly shutdown leaves the journal
	// empty — nothing accepted was lost.
	cmds[0], _ = startServed(t, bin, nodeArgs(0)...)
	stopped[0] = false
	base0 := urls[0]
	if got := metricsNum(t, base0, "journal_replayed"); got != int64(len(pending)) {
		t.Fatalf("journal_replayed = %d, want %d", got, len(pending))
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		done := metricsNum(t, base0, "jobs_done")
		failed := metricsNum(t, base0, "jobs_failed")
		if done+failed >= int64(len(pending)) {
			if failed > 0 {
				t.Fatalf("replayed jobs failed: done=%d failed=%d", done, failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed jobs never finished: done=%d failed=%d want %d", done, failed, len(pending))
		}
		time.Sleep(25 * time.Millisecond)
	}
	stopNode(0)
	left, _, err := journal.Peek(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("accepted jobs lost after kill+restart: %d pending", len(left))
	}
}
