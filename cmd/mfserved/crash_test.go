// Crash-recovery smoke: build the real binary, load it with queued work,
// SIGKILL it mid-queue, restart it on the same journal, and prove every
// accepted job reaches a terminal outcome with no duplicated completions.
// This is the only test that exercises the journal against a hard
// process death rather than an orderly shutdown.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
)

var addrRe = regexp.MustCompile(`addr=(127\.0\.0\.1:\d+)`)

// startServed launches the built binary and returns its process and base
// URL once the listening log line appears.
func startServed(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server never logged its listen address")
		return nil, ""
	}
}

func submit(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	return sub.JobID
}

func metricsNum(t *testing.T, base, key string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatalf("GET /metrics.json: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	var v int64
	if err := json.Unmarshal(m[key], &v); err != nil {
		t.Fatalf("metrics %q = %s: %v", key, m[key], err)
	}
	return v
}

func TestCrashRecoveryReplaysAcceptedJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mfserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building mfserved: %v", err)
	}
	jpath := filepath.Join(dir, "jobs.journal")

	// Process 1: one worker pinned on a deliberately enormous anneal, three
	// fast jobs stuck in the queue behind it. Then die without warning.
	cmd1, base1 := startServed(t, bin,
		"-addr", "127.0.0.1:0", "-journal", jpath, "-workers", "1", "-queue", "16")
	long := `{"bench":"CPA","options":{"imax":100000,"seed":1}}`
	longID := submit(t, base1, long)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base1 + "/v1/jobs/" + longID)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var job struct {
			Status string `json:"status"`
		}
		json.Unmarshal(data, &job)
		if job.Status == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("long job stuck in %q", job.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		submit(t, base1, fmt.Sprintf(`{"bench":"PCR","options":{"imax":60,"seed":%d}}`, i+1))
	}
	if err := cmd1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	// Process 2: same journal. All four accepted jobs must be replayed;
	// a 5-second job timeout converts the enormous anneal into an
	// explicit failure instead of minutes of work.
	cmd2, base2 := startServed(t, bin,
		"-addr", "127.0.0.1:0", "-journal", jpath, "-workers", "2", "-queue", "16",
		"-job-timeout", "5s")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd2.Process.Kill()
		}
	}()

	if got := metricsNum(t, base2, "journal_replayed"); got != 4 {
		t.Fatalf("journal_replayed = %d, want 4", got)
	}
	deadline = time.Now().Add(2 * time.Minute)
	for {
		done := metricsNum(t, base2, "jobs_done")
		failed := metricsNum(t, base2, "jobs_failed")
		if done+failed > 4 {
			t.Fatalf("more terminal jobs than accepted: done=%d failed=%d — duplicated replay", done, failed)
		}
		if done+failed == 4 {
			// The three fast jobs must succeed; the enormous anneal either
			// finishes or hits the 5s timeout — both are terminal, neither
			// is lost.
			if done < 3 {
				t.Fatalf("jobs_done=%d jobs_failed=%d, want the three fast jobs done", done, failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed jobs never all finished: done=%d failed=%d", done, failed)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Orderly shutdown, then the journal itself must agree: zero pending.
	cmd2.Process.Signal(syscall.SIGTERM)
	waitDone := make(chan error, 1)
	go func() { waitDone <- cmd2.Wait() }()
	select {
	case <-waitDone:
	case <-time.After(60 * time.Second):
		t.Fatal("second process did not shut down")
	}
	jnl, pending, _, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jnl.Close()
	if len(pending) != 0 {
		t.Fatalf("accepted jobs lost or unfinished after crash+restart: %+v", pending)
	}
}
