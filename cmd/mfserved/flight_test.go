// SIGQUIT postmortem smoke: the real binary must dump its flight
// recorder to the journal directory on SIGQUIT and keep serving —
// in-flight work survives the signal, and the dump is valid JSON with
// the completed requests in it.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestSIGQUITDumpsFlightRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mfserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building mfserved: %v", err)
	}
	jpath := filepath.Join(dir, "jobs.journal")

	cmd, base := startServed(t, bin,
		"-addr", "127.0.0.1:0", "-journal", jpath, "-workers", "1", "-queue", "16")
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
		}
	}()

	// Two fast jobs complete (they populate the flight ring), then a slow
	// job is put in flight before the signal lands.
	for i := 1; i <= 2; i++ {
		id := submit(t, base, fmt.Sprintf(`{"bench":"PCR","options":{"imax":60,"seed":%d}}`, i))
		waitJobDone(t, base, id, 60*time.Second)
	}
	slowID := submit(t, base, `{"bench":"CPA","options":{"imax":4000,"seed":1}}`)

	if err := cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}

	dumpPath := filepath.Join(dir, fmt.Sprintf("mfserved-flight-%d.json", cmd.Process.Pid))
	deadline := time.Now().Add(10 * time.Second)
	var data []byte
	for {
		var err error
		if data, err = os.ReadFile(dumpPath); err == nil && len(data) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight dump %s never appeared", dumpPath)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var dump struct {
		Total   int `json:"total"`
		Records []struct {
			ID      string  `json:"id"`
			Outcome string  `json:"outcome"`
			Route   string  `json:"route"`
			DurMs   float64 `json:"dur_ms"`
		} `json:"records"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v\n%s", err, data)
	}
	if dump.Total < 2 || len(dump.Records) < 2 {
		t.Fatalf("flight dump shows total=%d records=%d, want the 2 completed jobs", dump.Total, len(dump.Records))
	}
	for _, r := range dump.Records {
		if r.Outcome == "" || r.Route == "" {
			t.Fatalf("dump record lacks outcome/route attribution: %+v", r)
		}
	}

	// SIGQUIT is a postmortem, not a shutdown: the server still answers
	// and the job that was in flight when the signal landed completes.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("server died on SIGQUIT: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after SIGQUIT: %d", resp.StatusCode)
	}
	waitJobDone(t, base, slowID, 2*time.Minute)
}
