// Command mfserved runs the synthesis service: an HTTP API in front of
// the paper's deterministic flow with a bounded job queue, a worker pool
// and a content-addressed result cache.
//
// Usage:
//
//	mfserved                          # serve on :8080
//	mfserved -addr :9000 -workers 4   # custom listener and pool size
//	mfserved -log-level debug         # verbose structured logs
//	mfserved -debug-addr :6060        # pprof on a separate listener
//	mfserved -selfbench 16            # in-process service benchmark, exit
//	mfserved -selfbench 16 -chaos 7   # same benchmark under fault injection
//	mfserved -journal jobs.journal    # crash-safe job journal (replay on start)
//	mfserved -self http://10.0.0.1:8080 -peers http://10.0.0.1:8080,http://10.0.0.2:8080
//	                                  # cluster mode: consistent-hash routing + cache peering
//	mfserved -cluster-selfbench 3     # spawn a 1..3-node local cluster ladder, report, exit
//	mfserved -version                 # print build info, exit
//
// API summary (see README "Service" for a walkthrough):
//
//	POST /v1/synthesize         submit a request → 202 job, 200 cache hit,
//	                            429 when the queue is full
//	GET  /v1/jobs/{id}          job status, progress and metrics
//	GET  /v1/jobs/{id}/solution the solution document
//	POST /v1/jobs/{id}/cancel   cancel a queued or running job
//	GET  /healthz               liveness
//	GET  /metrics               Prometheus text format
//	GET  /metrics.json          the same state as expvar JSON
//
// The debug listener (-debug-addr) serves net/http/pprof on its own mux,
// so profiling endpoints are never exposed on the API address.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "synthesis worker count (default: CPU count)")
		queueCap  = flag.Int("queue", 64, "bounded job-queue capacity (beyond it: HTTP 429)")
		cacheMB   = flag.Int64("cache-mb", 256, "result-cache bound in MiB")
		jobTO     = flag.Duration("job-timeout", 2*time.Minute, "per-job synthesis deadline (<0 disables)")
		retain    = flag.Int("retain", 4096, "finished jobs kept pollable")
		selfbench = flag.Int("selfbench", 0, "benchmark the service in-process with N concurrent Synthetic1 requests, print a JSON report and exit")
		benchOut  = flag.String("o", "", "selfbench: write the report to this file instead of stdout")
		chaosSeed = flag.Uint64("chaos", 0, "selfbench: arm the default fault-injection chaos plan with this seed and report degraded vs failed outcomes (0 disables)")
		jrnlPath  = flag.String("journal", "", "crash-safe job journal path; pending jobs from a previous process are resubmitted on start (empty disables)")
		sloSpec   = flag.String("slo", "", `latency objectives like "p99=250ms,p95=100ms"; enables the SLO metric families (selfbench default: `+defaultSLOSpec+`)`)
		flightN   = flag.Int("flight", 256, "flight-recorder ring size: recent completed requests kept for /debug/requests and the SIGQUIT dump")
		logLevel  = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (separate mux; empty disables)")
		version   = flag.Bool("version", false, "print version and exit")

		// Cluster mode (see DESIGN.md "Cluster").
		peers     = flag.String("peers", "", "comma-separated base URLs of every cluster node, including this one (enables cluster mode)")
		peersFile = flag.String("peers-file", "", "discovery file with one peer URL per line, re-read on change (enables cluster mode)")
		selfURL   = flag.String("self", "", "this node's base URL exactly as it appears in the peer list (required in cluster mode)")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per peer on the consistent-hash ring (default 64)")
		probeIv   = flag.Duration("probe-interval", 500*time.Millisecond, "cluster health-probe cadence")

		clusterBench = flag.Int("cluster-selfbench", 0, "spawn a local N-node cluster ladder (1..N single-worker processes), drive the selfbench workload through the ring, write the scaling report and exit")
		clusterReqs  = flag.Int("cluster-requests", 12, "cluster-selfbench: concurrent requests per round")
		clusterTrace = flag.Int("cluster-trace", 0, "spawn a local N-node cluster, drive one forwarded request, fetch and validate its merged trace, write it (-o, default cluster_trace.json) and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("mfserved"))
		return
	}

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "mfserved: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	cfg := server.Config{
		Workers:     *workers,
		QueueCap:    *queueCap,
		CacheBytes:  *cacheMB << 20,
		JobTimeout:  *jobTO,
		Retain:      *retain,
		Logger:      logger,
		JournalPath: *jrnlPath,
	}
	cfg.FlightRecords = *flightN
	// The benchmarks grade themselves against objectives even when the
	// operator configured none, so BENCH files always carry attainment.
	benchSpec := *sloSpec
	if benchSpec == "" {
		benchSpec = defaultSLOSpec
	}
	if *sloSpec != "" {
		slo, err := obs.ParseSLO(*sloSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mfserved: %v\n", err)
			os.Exit(2)
		}
		cfg.SLO = slo
	}

	if *selfbench > 0 {
		cfg.Logger = nil     // a selfbench run reports JSON, not request logs
		cfg.JournalPath = "" // benchmark jobs are disposable
		var err error
		if *chaosSeed != 0 {
			err = runChaosBench(cfg, *selfbench, *chaosSeed, *benchOut)
		} else {
			err = runSelfbench(cfg, *selfbench, benchSpec, *benchOut)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mfserved:", err)
			os.Exit(1)
		}
		return
	}

	if *clusterBench > 0 {
		if err := runClusterBench(*clusterBench, *clusterReqs, benchSpec, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "mfserved:", err)
			os.Exit(1)
		}
		return
	}

	if *clusterTrace > 0 {
		if err := runClusterTraceSmoke(*clusterTrace, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "mfserved:", err)
			os.Exit(1)
		}
		return
	}

	var cl *cluster.Cluster
	if *peers != "" || *peersFile != "" {
		if *selfURL == "" {
			fmt.Fprintln(os.Stderr, "mfserved: cluster mode needs -self (this node's URL in the peer list)")
			os.Exit(2)
		}
		var peerList []string
		if *peers != "" {
			peerList = strings.Split(*peers, ",")
		}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:          *selfURL,
			Peers:         peerList,
			PeersFile:     *peersFile,
			VNodes:        *vnodes,
			ProbeInterval: *probeIv,
			Logger:        logger,
		})
		if err != nil {
			logger.Error("cluster startup failed", "err", err)
			os.Exit(1)
		}
		defer cl.Close()
		cfg.Cluster = cl
	}

	s, err := server.New(cfg)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: s.Handler()}

	if *debugAddr != "" {
		// pprof lives on its own mux and listener: the profiling surface
		// is opt-in and never reachable through the API address.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
	}

	// SIGQUIT dumps the flight recorder — the recent-request postmortem —
	// and keeps serving: in-flight jobs are untouched.
	go func() {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		for range quit {
			path := flightDumpPath(*jrnlPath)
			if err := dumpFlightTo(s, path); err != nil {
				logger.Error("flight dump failed", "path", path, "err", err)
				continue
			}
			logger.Info("flight recorder dumped", "path", path)
		}
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down, draining jobs")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("http shutdown", "err", err)
		}
		if err := s.Shutdown(ctx); err != nil {
			logger.Error("job drain", "err", err)
		}
	}()

	// Bind before logging so "addr" is the resolved address: with
	// ":0"-style flags the chosen port is otherwise unknowable to
	// supervisors (and to the crash-recovery tests) watching the log.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("mfserved listening",
		"addr", ln.Addr().String(),
		"workers", effectiveWorkers(*workers),
		"queue_capacity", *queueCap,
		"cache_mb", *cacheMB,
		"job_timeout", (*jobTO).String(),
		"retain", *retain,
		"journal", *jrnlPath,
		"version", buildinfo.Version("mfserved"),
	)
	if cl != nil {
		logger.Info("cluster mode", "self", cl.Self(), "members", len(cl.Members()), "max_hops", cl.MaxHops())
	}
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		logger.Error("serve failed", "addr", ln.Addr().String(), "err", err)
		os.Exit(1)
	}
	<-done
}

func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.NumCPU()
	}
	return w
}

// defaultSLOSpec grades the self-benchmarks when the operator sets no
// -slo: generous targets a loaded loopback service still meets.
const defaultSLOSpec = "p50=50ms,p95=250ms,p99=500ms"

// flightDumpPath places the SIGQUIT dump next to the journal (the
// operator's durable directory) or, without one, in the working dir.
func flightDumpPath(journalPath string) string {
	dir := "."
	if journalPath != "" {
		dir = filepath.Dir(journalPath)
	}
	return filepath.Join(dir, fmt.Sprintf("mfserved-flight-%d.json", os.Getpid()))
}

// dumpFlightTo writes the flight recorder snapshot to path atomically
// enough for a postmortem: full rewrite, rename-free (the file is keyed
// by PID, so successive dumps just supersede each other).
func dumpFlightTo(s *server.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.DumpFlight(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ---- selfbench ----------------------------------------------------------

// roundReport summarizes one round of concurrent requests.
type roundReport struct {
	WallMs        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MaxMs         float64 `json:"max_ms"`
	CacheHits     int     `json:"cache_hits"`
	// SLO is the round's attainment per objective, keyed "p99<=500ms".
	SLO map[string]float64 `json:"slo_attainment,omitempty"`
}

// sloAttainment grades one round's latencies against the spec's
// objectives: the fraction of requests within each target, keyed like
// "p99<=500ms". A request list that met the objective reads >= quantile.
func sloAttainment(spec string, lats []time.Duration) map[string]float64 {
	slo, err := obs.ParseSLO(spec)
	if err != nil || slo == nil || len(lats) == 0 {
		return nil
	}
	out := make(map[string]float64)
	for _, st := range slo.Stats() {
		target := time.Duration(st.TargetMs * float64(time.Millisecond))
		good := 0
		for _, d := range lats {
			if d <= target {
				good++
			}
		}
		out[fmt.Sprintf("%s<=%s", st.Name, target)] = float64(good) / float64(len(lats))
	}
	return out
}

// scalingPoint is one GOMAXPROCS rung of the selfbench scaling curve.
type scalingPoint struct {
	Procs int         `json:"procs"`
	Cold  roundReport `json:"cold"`
	Warm  roundReport `json:"warm"`
}

// benchReport is the selfbench JSON document (BENCH_service.json).
type benchReport struct {
	Bench    string      `json:"bench"`
	Requests int         `json:"requests"`
	Workers  int         `json:"workers"`
	QueueCap int         `json:"queue_capacity"`
	HostCPUs int         `json:"host_cpus"`
	Cold     roundReport `json:"cold"`
	Warm     roundReport `json:"warm"`
	SpeedupX float64     `json:"warm_speedup_x"`
	// Scaling reports cold/warm throughput at GOMAXPROCS 1, 2 and
	// NumCPU (deduplicated): the service's multicore curve. Every cold
	// round uses fresh seeds so it never touches earlier rounds' cache
	// entries.
	Scaling []scalingPoint `json:"scaling"`
	// SLOSpec is the objective spec the per-round slo_attainment blocks
	// were graded against.
	SLOSpec   string `json:"slo_spec,omitempty"`
	GoVersion string `json:"go_version"`
}

// scalingProcs is the deduplicated GOMAXPROCS ladder {1, 2, NumCPU}.
func scalingProcs() []int {
	n := runtime.NumCPU()
	procs := []int{1}
	if n >= 2 {
		procs = append(procs, 2)
	}
	if n > 2 {
		procs = append(procs, n)
	}
	return procs
}

// runSelfbench starts the service on a loopback listener and drives it
// over real HTTP: one cache-cold round of n concurrent Synthetic1
// requests with distinct seeds, then the identical round again so every
// request is answered from the content-addressed cache.
func runSelfbench(cfg server.Config, n int, sloSpec, outPath string) error {
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	if cfg.QueueCap < n {
		// The benchmark fires all n at once; a smaller queue would turn
		// the measurement into a 429 retry exercise.
		return fmt.Errorf("selfbench needs -queue >= %d (have %d)", n, cfg.QueueCap)
	}

	// Each round's requests use seeds seedBase+1 … seedBase+n: a fresh
	// base makes a round cache-cold, a repeated base makes it cache-warm.
	body := func(seedBase uint64, i int) string {
		return fmt.Sprintf(`{"bench":"Synthetic1","options":{"seed":%d}}`, seedBase+uint64(i)+1)
	}
	run := func(label string, seedBase uint64) (roundReport, error) {
		lats := make([]time.Duration, n)
		hits := make([]bool, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				lats[i], hits[i], errs[i] = oneRequest(ts.URL, body(seedBase, i))
			}(i)
		}
		wg.Wait()
		wall := time.Since(start)
		for i, err := range errs {
			if err != nil {
				return roundReport{}, fmt.Errorf("%s request %d: %w", label, i, err)
			}
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		nhits := 0
		for _, h := range hits {
			if h {
				nhits++
			}
		}
		return roundReport{
			WallMs:        ms(wall),
			ThroughputRPS: float64(n) / wall.Seconds(),
			P50Ms:         ms(percentile(lats, 0.50)),
			P95Ms:         ms(percentile(lats, 0.95)),
			P99Ms:         ms(percentile(lats, 0.99)),
			MaxMs:         ms(lats[n-1]),
			CacheHits:     nhits,
			SLO:           sloAttainment(sloSpec, lats),
		}, nil
	}

	fmt.Fprintf(os.Stderr, "selfbench: %d concurrent Synthetic1 requests, %d workers — cold round…\n",
		n, effectiveWorkers(cfg.Workers))
	cold, err := run("cold", 0)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "selfbench: warm round (identical requests, cache-served)…")
	warm, err := run("warm", 0)
	if err != nil {
		return err
	}
	if warm.CacheHits != n {
		return fmt.Errorf("warm round had %d/%d cache hits: cache is not content-addressing correctly", warm.CacheHits, n)
	}

	// Scaling curve: the same cold/warm pair at each GOMAXPROCS rung.
	// Each rung gets an unused seed base so its cold round never collides
	// with a previous rung's cache entries.
	prevProcs := runtime.GOMAXPROCS(0)
	var scaling []scalingPoint
	for r, procs := range scalingProcs() {
		runtime.GOMAXPROCS(procs)
		base := uint64((r + 1) * 1_000_000)
		fmt.Fprintf(os.Stderr, "selfbench: scaling rung GOMAXPROCS=%d…\n", procs)
		c, err := run(fmt.Sprintf("scaling-cold@%d", procs), base)
		if err != nil {
			runtime.GOMAXPROCS(prevProcs)
			return err
		}
		w, err := run(fmt.Sprintf("scaling-warm@%d", procs), base)
		if err != nil {
			runtime.GOMAXPROCS(prevProcs)
			return err
		}
		if c.CacheHits != 0 || w.CacheHits != n {
			runtime.GOMAXPROCS(prevProcs)
			return fmt.Errorf("scaling rung GOMAXPROCS=%d: cold had %d hits (want 0), warm %d (want %d)",
				procs, c.CacheHits, w.CacheHits, n)
		}
		scaling = append(scaling, scalingPoint{Procs: procs, Cold: c, Warm: w})
	}
	runtime.GOMAXPROCS(prevProcs)

	rep := benchReport{
		Bench:     "Synthetic1",
		Requests:  n,
		Workers:   effectiveWorkers(cfg.Workers),
		QueueCap:  cfg.QueueCap,
		HostCPUs:  runtime.NumCPU(),
		Cold:      cold,
		Warm:      warm,
		SpeedupX:  cold.WallMs / warm.WallMs,
		Scaling:   scaling,
		SLOSpec:   sloSpec,
		GoVersion: runtime.Version(),
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath != "" {
		return os.WriteFile(outPath, out, 0o644)
	}
	_, err = os.Stdout.Write(out)
	return err
}

// ---- chaos selfbench ----------------------------------------------------

// chaosReport is the -selfbench -chaos JSON document: outcome counts
// under the default fault-injection plan plus per-point fire counts.
type chaosReport struct {
	Bench    string `json:"bench"`
	Requests int    `json:"requests"`
	Seed     uint64 `json:"chaos_seed"`
	Workers  int    `json:"workers"`
	QueueCap int    `json:"queue_capacity"`
	// OK finished clean; Degraded finished via the degradation ladder
	// (the response lists which rungs); Failed hit an injected or real
	// error; Rejected got 429 backpressure; Shed got 503 from the open
	// circuit breaker.
	OK       int `json:"ok"`
	Degraded int `json:"degraded"`
	Failed   int `json:"failed"`
	Rejected int `json:"rejected"`
	Shed     int `json:"shed"`
	// Chip-session lifecycles interleaved with the one-shot requests:
	// Sessions counts sessions that opened, and each open session takes
	// one fault report whose outcome lands in exactly one of the
	// repaired/degraded/abandoned/failed buckets below.
	Sessions         int `json:"sessions"`
	SessionRepaired  int `json:"session_repaired"`
	SessionDegraded  int `json:"session_degraded"`
	SessionAbandoned int `json:"session_abandoned"`
	SessionFailed    int `json:"session_failed"`
	// Fires counts injected faults by point name.
	Fires     map[string]int64 `json:"fault_fires"`
	WallMs    float64          `json:"wall_ms"`
	GoVersion string           `json:"go_version"`
}

// runChaosBench drives the same concurrent request shape as runSelfbench
// with the default chaos fault plan armed and the degradation ladder on.
// The pass criterion is weaker than the clean benchmark's: every request
// must reach a terminal outcome (no hangs, no invalid solutions — jobs
// under fault injection are audited in-pipeline), but injected failures
// and backpressure are expected and merely counted.
func runChaosBench(cfg server.Config, n int, seed uint64, outPath string) error {
	plan := fault.DefaultChaos(seed)
	cfg.Fault = plan
	cfg.Degrade = core.Degrade{RipUpRounds: 3, ReducedEffort: true}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	rep := chaosReport{
		Bench: "Synthetic1", Requests: n, Seed: seed,
		Workers: effectiveWorkers(cfg.Workers), QueueCap: cfg.QueueCap,
		GoVersion: runtime.Version(),
	}
	fmt.Fprintf(os.Stderr, "selfbench: %d concurrent Synthetic1 requests under chaos seed %d…\n", n, seed)
	outcomes := make([]string, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"bench":"Synthetic1","options":{"seed":%d}}`, i+1)
			// Every fourth slot drives a chip-session lifecycle instead of
			// a one-shot synthesis, so the session repair path — and its
			// session.repair.fail injection point — sees chaos too.
			if i%4 == 3 {
				outcomes[i] = chaosSessionRequest(ts.URL, body)
			} else {
				outcomes[i] = chaosRequest(ts.URL, body)
			}
		}(i)
	}
	wg.Wait()
	rep.WallMs = ms(time.Since(start))
	for i, o := range outcomes {
		switch o {
		case "ok":
			rep.OK++
		case "degraded":
			rep.Degraded++
		case "failed":
			rep.Failed++
		case "rejected":
			rep.Rejected++
		case "shed":
			rep.Shed++
		case "session-repaired":
			rep.Sessions++
			rep.SessionRepaired++
		case "session-degraded":
			rep.Sessions++
			rep.SessionDegraded++
		case "session-abandoned":
			rep.Sessions++
			rep.SessionAbandoned++
		case "session-failed":
			rep.Sessions++
			rep.SessionFailed++
		default:
			return fmt.Errorf("chaos request %d never reached a terminal outcome: %s", i, o)
		}
	}
	rep.Fires = make(map[string]int64)
	for pt, st := range plan.Stats() {
		if st.Fires > 0 {
			rep.Fires[string(pt)] = st.Fires
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath != "" {
		return os.WriteFile(outPath, out, 0o644)
	}
	_, err = os.Stdout.Write(out)
	return err
}

// chaosRequest submits one request and classifies its terminal outcome.
func chaosRequest(base, body string) string {
	resp, err := http.Post(base+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		return "transport error: " + err.Error()
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return "rejected"
	case http.StatusServiceUnavailable:
		return "shed"
	case http.StatusInternalServerError:
		return "failed" // injected handler error
	case http.StatusOK, http.StatusAccepted:
	default:
		return fmt.Sprintf("unexpected status %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		return "bad submit body: " + err.Error()
	}
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		jr, err := http.Get(base + "/v1/jobs/" + sub.JobID)
		if err != nil {
			return "transport error: " + err.Error()
		}
		jdata, _ := io.ReadAll(jr.Body)
		jr.Body.Close()
		var job struct {
			Status       string            `json:"status"`
			Degradations []json.RawMessage `json:"degradations"`
		}
		if err := json.Unmarshal(jdata, &job); err != nil {
			return "bad job body: " + err.Error()
		}
		switch job.Status {
		case "done":
			if len(job.Degradations) > 0 {
				return "degraded"
			}
			return "ok"
		case "failed", "canceled":
			return "failed"
		}
		time.Sleep(2 * time.Millisecond)
	}
	return "poll timeout"
}

// chaosSessionRequest drives one chip-session lifecycle — open, one
// fault report, close — and classifies its terminal outcome. Create
// failures classify like one-shot requests (rejected/shed/failed); once
// a session opens, the repair outcome lands in a session-* bucket.
func chaosSessionRequest(base, body string) string {
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		return "transport error: " + err.Error()
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return "rejected"
	case http.StatusServiceUnavailable:
		return "shed"
	case http.StatusInternalServerError:
		return "failed" // injected synthesis fault during create
	case http.StatusCreated:
	default:
		return fmt.Sprintf("unexpected create status %d: %s", resp.StatusCode, data)
	}
	var sr struct {
		Session string `json:"session"`
		Faults  string `json:"faults"`
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		return "bad create body: " + err.Error()
	}
	fr := `{"at":0,"cells":[{"x":0,"y":0}]}`
	resp, err = http.Post(base+sr.Faults, "application/json", strings.NewReader(fr))
	if err != nil {
		return "transport error: " + err.Error()
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	outcome := ""
	switch resp.StatusCode {
	case http.StatusOK:
		var rr struct {
			Record struct {
				Outcome string `json:"outcome"`
			} `json:"record"`
		}
		if err := json.Unmarshal(data, &rr); err != nil {
			return "bad repair body: " + err.Error()
		}
		outcome = "session-" + rr.Record.Outcome
	case http.StatusInternalServerError, http.StatusServiceUnavailable:
		// session.repair.fail (or a timeout) aborted the repair before
		// the ladder ran; the session itself stays live until closed.
		outcome = "session-failed"
	default:
		return fmt.Sprintf("unexpected repair status %d: %s", resp.StatusCode, data)
	}
	if outcome != "session-abandoned" {
		cr, err := http.Post(base+sr.Session+"/close", "application/json", nil)
		if err != nil {
			return "transport error: " + err.Error()
		}
		io.Copy(io.Discard, cr.Body)
		cr.Body.Close()
	}
	return outcome
}

// oneRequest submits one synthesis request and waits for its job to
// finish, returning the submit→done latency and whether the response was
// served from the cache.
func oneRequest(base, body string) (time.Duration, bool, error) {
	start := time.Now()
	resp, err := http.Post(base+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return 0, false, fmt.Errorf("POST /v1/synthesize: %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		JobID  string `json:"job_id"`
		Status string `json:"status"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		return 0, false, err
	}
	for sub.Status != "done" {
		time.Sleep(2 * time.Millisecond)
		jr, err := http.Get(base + "/v1/jobs/" + sub.JobID)
		if err != nil {
			return 0, false, err
		}
		jdata, _ := io.ReadAll(jr.Body)
		jr.Body.Close()
		var job struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(jdata, &job); err != nil {
			return 0, false, err
		}
		switch job.Status {
		case "done":
			sub.Status = "done"
		case "failed", "canceled":
			return 0, false, fmt.Errorf("job %s %s: %s", sub.JobID, job.Status, job.Error)
		}
	}
	return time.Since(start), sub.Cached, nil
}

// percentile returns the p-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
