// Session crash-recovery smoke: build the real binary, open a chip
// session, repair a fault into it, SIGKILL the process while the
// session's journal records are still pending (session records only go
// terminal at close — a kill at any point between journal append and
// close is the mid-repair crash shape), restart on the same journal,
// and prove the replayed session state is byte-identical to the state
// the dying process last acknowledged.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// sessionSnap is the subset of the session snapshot the test compares
// across the crash.
type sessionSnap struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Cut         int    `json:"cut"`
	Makespan    int    `json:"makespan"`
	CellsLost   int    `json:"cells_lost"`
	Fingerprint string `json:"fingerprint"`
	Repairs     []struct {
		Outcome     string `json:"outcome"`
		Rung        string `json:"rung"`
		Fingerprint string `json:"fingerprint"`
	} `json:"repairs"`
}

// crashSuffixCell mirrors the server's deterministic synthesis of the
// session benchmark and picks a dead-cell candidate on a transport that
// has not executed at mid-assay — the repair ladder's L1 case.
func crashSuffixCell(t *testing.T) (route.Cell, unit.Time) {
	t.Helper()
	bm, err := benchdata.ByName("Synthetic3")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Place.Imax = 60
	sol, err := core.Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	at := sol.Schedule.Makespan / 2
	executed := schedule.Executed(sol.Schedule, at)
	consumer := make(map[int]assay.OpID)
	for _, tr := range sol.Schedule.Transports {
		consumer[tr.ID] = tr.Consumer
	}
	for _, rt := range sol.Routing.Routes {
		if !executed[consumer[rt.Task.ID]] && len(rt.Path) >= 3 {
			return rt.Path[len(rt.Path)/2], at
		}
	}
	t.Skip("no suffix transport with an interior cell at this cut")
	return route.Cell{}, 0
}

func getSessionSnap(t *testing.T, base, id string) (sessionSnap, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap sessionSnap
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("decoding snapshot: %v: %s", err, data)
		}
	}
	return snap, resp.StatusCode
}

func TestSessionCrashRecoveryReplaysLosslessly(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mfserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building mfserved: %v", err)
	}
	jpath := filepath.Join(dir, "jobs.journal")
	cell, at := crashSuffixCell(t)

	// Process 1: open a session, repair one dead cell into it, and die
	// by SIGKILL with the create and repair records still pending.
	cmd1, base1 := startServed(t, bin,
		"-addr", "127.0.0.1:0", "-journal", jpath, "-workers", "1", "-queue", "16")
	body := `{"bench":"Synthetic3","options":{"imax":60}}`
	resp, err := http.Post(base1+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d: %s", resp.StatusCode, data)
	}
	var sr struct {
		ID     string `json:"id"`
		Faults string `json:"faults"`
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	fr := fmt.Sprintf(`{"at":%d,"cells":[{"x":%d,"y":%d}]}`, at, cell.X, cell.Y)
	resp, err = http.Post(base1+sr.Faults, "application/json", strings.NewReader(fr))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault: %d: %s", resp.StatusCode, data)
	}
	want, code := getSessionSnap(t, base1, sr.ID)
	if code != http.StatusOK || want.State != "active" || len(want.Repairs) != 1 {
		t.Fatalf("pre-kill snapshot: %d %+v", code, want)
	}
	if err := cmd1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	// Process 2: same journal. The session must come back live with
	// byte-identical state — same repaired-solution fingerprint, same
	// cut, same loss accounting, same repair log.
	cmd2, base2 := startServed(t, bin,
		"-addr", "127.0.0.1:0", "-journal", jpath, "-workers", "1", "-queue", "16")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd2.Process.Kill()
		}
	}()

	if got := metricsNum(t, base2, "journal_replayed"); got < 2 {
		t.Fatalf("journal_replayed = %d, want >= 2 (session create + fault report)", got)
	}
	got, code := getSessionSnap(t, base2, sr.ID)
	if code != http.StatusOK {
		t.Fatalf("session %s not restored: %d", sr.ID, code)
	}
	if got.Fingerprint != want.Fingerprint {
		t.Errorf("replayed fingerprint %s != pre-kill %s", got.Fingerprint, want.Fingerprint)
	}
	if got.State != want.State || got.Cut != want.Cut ||
		got.Makespan != want.Makespan || got.CellsLost != want.CellsLost {
		t.Errorf("replayed state %+v != pre-kill %+v", got, want)
	}
	if len(got.Repairs) != 1 || got.Repairs[0] != want.Repairs[0] {
		t.Errorf("replayed repair log %+v != pre-kill %+v", got.Repairs, want.Repairs)
	}

	// The replayed session is live, not a husk: close it over the API,
	// shut down cleanly, and the journal must drain to zero pending.
	resp, err = http.Post(base2+"/v1/sessions/"+sr.ID+"/close", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close after replay: %d", resp.StatusCode)
	}
	cmd2.Process.Signal(syscall.SIGTERM)
	waitDone := make(chan error, 1)
	go func() { waitDone <- cmd2.Wait() }()
	select {
	case <-waitDone:
	case <-time.After(60 * time.Second):
		t.Fatal("second process did not shut down")
	}
	jnl, pending, _, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jnl.Close()
	if len(pending) != 0 {
		t.Fatalf("session records lost or unfinished after crash+restart: %+v", pending)
	}
}
