package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
)

// runClusterTraceSmoke spins up an n-node cluster, submits Synthetic1
// requests to node 0 until one is forwarded to its owning peer, then
// fetches the merged trace from the submission node and verifies it:
// the Chrome document must be valid JSON, every span must carry the
// same trace ID, and the spans must attribute work to at least two
// distinct nodes (proving cross-process merge). The Chrome trace
// document is written to outPath (default cluster_trace.json) so CI
// can archive it.
func runClusterTraceSmoke(n int, outPath string) error {
	if n < 2 || n > 16 {
		return fmt.Errorf("-cluster-trace wants 2..16 nodes, got %d", n)
	}
	if outPath == "" {
		outPath = "cluster_trace.json"
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "mfserved-trace-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	nodes, stop, err := spawnClusterNodes(exe, filepath.Join(dir, "nodes"), n, 64)
	if err != nil {
		return err
	}
	defer stop()

	// Ownership is consistent-hashed over the cache key, so some seed in
	// a small range is owned by a node other than nodes[0].
	for seed := 1; seed <= 32; seed++ {
		body := fmt.Sprintf(`{"bench":"Synthetic1","options":{"imax":40,"seed":%d}}`, seed)
		jobID, err := traceSmokeRequest(nodes[0], body)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		raw, err := fetchRawTrace(nodes[0], jobID)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		distinct := distinctNodes(raw.Spans)
		if raw.Route != "forwarded" || distinct < 2 {
			continue
		}
		if err := validateSpans(raw.TraceID, raw.Spans); err != nil {
			return fmt.Errorf("seed %d job %s: %w", seed, jobID, err)
		}
		doc, err := fetchChromeTrace(nodes[0], jobID)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		if err := validateChromeDoc(doc, distinct); err != nil {
			return fmt.Errorf("seed %d job %s: %w", seed, jobID, err)
		}
		if err := os.WriteFile(outPath, doc, 0o644); err != nil {
			return err
		}
		summary, _ := json.Marshal(map[string]any{
			"nodes":    n,
			"job_id":   jobID,
			"trace_id": raw.TraceID,
			"route":    raw.Route,
			"spans":    len(raw.Spans),
			"procs":    distinct,
			"out":      outPath,
		})
		fmt.Printf("%s\n", summary)
		return nil
	}
	return fmt.Errorf("no request out of 32 seeds was forwarded off node 0 — ownership routing looks broken")
}

type rawTrace struct {
	TraceID string     `json:"trace_id"`
	Route   string     `json:"route"`
	Spans   []obs.Span `json:"spans"`
}

// traceSmokeRequest submits one synthesis body and polls to a terminal
// state, returning the job ID.
func traceSmokeRequest(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("POST /v1/synthesize: %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		JobID  string `json:"job_id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		return "", err
	}
	deadline := time.Now().Add(30 * time.Second)
	for sub.Status != "done" {
		if time.Now().After(deadline) {
			return "", fmt.Errorf("job %s did not finish within 30s", sub.JobID)
		}
		time.Sleep(5 * time.Millisecond)
		jr, err := http.Get(base + "/v1/jobs/" + sub.JobID)
		if err != nil {
			return "", err
		}
		jdata, _ := io.ReadAll(jr.Body)
		jr.Body.Close()
		var job struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(jdata, &job); err != nil {
			return "", err
		}
		switch job.Status {
		case "done":
			sub.Status = "done"
		case "failed", "canceled":
			return "", fmt.Errorf("job %s %s: %s", sub.JobID, job.Status, job.Error)
		}
	}
	return sub.JobID, nil
}

func fetchRawTrace(base, jobID string) (rawTrace, error) {
	var rt rawTrace
	resp, err := http.Get(base + "/v1/jobs/" + jobID + "/trace?raw=1")
	if err != nil {
		return rt, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rt, fmt.Errorf("GET trace?raw=1: %d: %s", resp.StatusCode, data)
	}
	err = json.Unmarshal(data, &rt)
	return rt, err
}

func fetchChromeTrace(base, jobID string) ([]byte, error) {
	resp, err := http.Get(base + "/v1/jobs/" + jobID + "/trace")
	if err != nil {
		return nil, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET trace: %d: %s", resp.StatusCode, data)
	}
	return data, nil
}

func distinctNodes(spans []obs.Span) int {
	seen := map[string]bool{}
	for _, sp := range spans {
		seen[sp.Node] = true
	}
	return len(seen)
}

// validateSpans checks the merged span set is one coherent trace: a
// shared trace ID, exactly one root, and every non-root parent present.
func validateSpans(traceID string, spans []obs.Span) error {
	if traceID == "" {
		return fmt.Errorf("empty trace ID")
	}
	ids := map[string]bool{}
	roots := 0
	for _, sp := range spans {
		if sp.TraceID != traceID {
			return fmt.Errorf("span %s carries trace %q, want %q", sp.ID, sp.TraceID, traceID)
		}
		ids[sp.ID] = true
		if sp.Parent == "" {
			roots++
		}
	}
	if roots != 1 {
		return fmt.Errorf("merged trace has %d roots, want 1", roots)
	}
	for _, sp := range spans {
		if sp.Parent != "" && !ids[sp.Parent] {
			return fmt.Errorf("span %s references missing parent %s", sp.ID, sp.Parent)
		}
	}
	return nil
}

// validateChromeDoc parses the Chrome trace-event document and checks
// it names at least wantProcs process tracks and carries X events.
func validateChromeDoc(doc []byte, wantProcs int) error {
	var parsed struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		return fmt.Errorf("chrome trace is not valid JSON: %w", err)
	}
	procs, events := 0, 0
	for _, ev := range parsed.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procs++
		case ev.Ph == "X":
			events++
		}
	}
	if procs < wantProcs {
		return fmt.Errorf("chrome trace names %d process tracks, want >= %d", procs, wantProcs)
	}
	if events == 0 {
		return fmt.Errorf("chrome trace has no span events")
	}
	return nil
}
