// Command mfsyn synthesizes one bioassay onto a DCSA-based biochip and
// prints the resulting schedule, layout and metrics.
//
// Usage:
//
//	mfsyn -assay assay.json -alloc "(3,0,0,2)"       # proposed algorithm
//	mfsyn -bench CPA                                 # built-in benchmark
//	mfsyn -bench CPA -baseline                       # baseline BA
//	mfsyn -bench IVD -gantt -layout                  # extra diagrams
//	mfsyn -bench PCR -events                         # replay event log
//	mfsyn -bench CPA -failures -congestion           # what-if + heatmap
//	mfsyn -bench CPA -save cpa_solution.json         # full solution dump
//	mfsyn -bench CPA -verify                         # independent constraint audit
//	mfsyn -bench CPA -trace cpa_trace.json           # Chrome/Perfetto trace
//
// Besides the Table I metrics, every run reports the control-layer cost
// (valves, switching, pin sharing), the wash plan's on-time fraction and
// the timing-closure audit of the constant-t_c assumption.
//
// The assay JSON format is the one produced by mfgen (see cmd/mfgen).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/solio"
)

func main() {
	var (
		assayPath = flag.String("assay", "", "path to an assay JSON file")
		allocStr  = flag.String("alloc", "", `component allocation, e.g. "(3,0,0,2)" (default: minimal)`)
		benchName = flag.String("bench", "", "use a built-in benchmark instead of -assay")
		baseline  = flag.Bool("baseline", false, "run the baseline algorithm BA instead of the proposed one")
		gantt     = flag.Bool("gantt", false, "print the schedule Gantt chart")
		layout    = flag.Bool("layout", false, "print the chip layout")
		events    = flag.Bool("events", false, "print the verified replay event log")
		imax      = flag.Int("imax", 150, "simulated-annealing iterations per temperature step")
		verify    = flag.Bool("verify", false, "audit the solution with the independent constraint verifier (internal/verify); any violation fails the run")
		save      = flag.String("save", "", "write the full solution as JSON to this file")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON of the synthesis to this file (open in ui.perfetto.dev)")
		failures  = flag.Bool("failures", false, "print the single-component-failure analysis")
		congest   = flag.Bool("congestion", false, "print the channel congestion heatmap")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("mfsyn"))
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mfsyn:", err)
		os.Exit(1)
	}

	var g *repro.Assay
	var alloc repro.Allocation
	switch {
	case *benchName != "":
		bm, err := repro.BenchmarkByName(*benchName)
		if err != nil {
			fail(err)
		}
		g, alloc = bm.Graph, bm.Alloc
	case *assayPath != "":
		f, err := os.Open(*assayPath)
		if err != nil {
			fail(err)
		}
		g, err = repro.DecodeAssay(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		alloc = repro.MinimalAllocation(g)
	default:
		fmt.Fprintln(os.Stderr, "mfsyn: need -assay FILE or -bench NAME")
		flag.Usage()
		os.Exit(2)
	}
	if *allocStr != "" {
		a, err := repro.ParseAllocation(*allocStr)
		if err != nil {
			fail(err)
		}
		alloc = a
	}

	opts := repro.DefaultOptions()
	opts.Place.Imax = *imax
	opts.Verify = *verify

	// Tracing rides the context: the pipeline's obs hooks see the tracer
	// via obs.From and emit spans and counters into the Chrome sink. The
	// solution is byte-identical with or without it.
	ctx := context.Background()
	var traceFile *os.File
	var traceSink *obs.ChromeSink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		traceFile, traceSink = f, obs.NewChromeSink(f)
		ctx = obs.Into(ctx, obs.New(traceSink))
	}

	var sol *repro.Solution
	var err error
	if *baseline {
		sol, err = repro.SynthesizeBaselineContext(ctx, g, alloc, opts)
	} else {
		sol, err = repro.SynthesizeContext(ctx, g, alloc, opts)
	}
	if traceSink != nil {
		// Flush the trace even when synthesis failed: a partial trace is
		// exactly what one wants for diagnosing the failure.
		if cerr := traceSink.Close(); cerr != nil {
			fail(fmt.Errorf("writing trace: %w", cerr))
		}
		if cerr := traceFile.Close(); cerr != nil {
			fail(fmt.Errorf("writing trace: %w", cerr))
		}
	}
	if err != nil {
		fail(err)
	}
	if *tracePath != "" {
		fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", *tracePath)
	}
	rep, err := repro.Verify(sol)
	if err != nil {
		fail(fmt.Errorf("solution failed verification: %w", err))
	}

	algo := "proposed DCSA-aware synthesis"
	if *baseline {
		algo = "baseline BA"
	}
	m := sol.Metrics()
	fmt.Printf("assay %q: %d operations, allocation %v — %s\n", g.Name(), g.NumOps(), alloc, algo)
	fmt.Printf("  execution time       %v\n", m.ExecutionTime)
	fmt.Printf("  resource utilization %.1f%%\n", 100*m.Utilization)
	fmt.Printf("  total channel length %v\n", m.ChannelLength)
	fmt.Printf("  channel cache time   %v\n", m.CacheTime)
	fmt.Printf("  channel wash time    %v\n", m.ChannelWashTime)
	fmt.Printf("  component wash time  %v\n", m.ComponentWashTime)
	fmt.Printf("  transports           %d\n", m.Transports)
	fmt.Printf("  CPU time             %v\n", m.CPU)
	cl := repro.ControlLayer(sol)
	fmt.Printf("  control layer        %d valves, %d switches (%d after reordering)\n",
		cl.NumValves, cl.Switches, cl.OptimizedSwitches)
	if wp, err := repro.PlanWashes(sol); err == nil && len(wp.Flushes) > 0 {
		fmt.Printf("  wash plan            %d flushes, %.0f%% on time, max lateness %v\n",
			len(wp.Flushes), 100*wp.OnTimeFraction(), wp.MaxLateness)
	}
	if tr, err := repro.AnalyzeTiming(sol, 0); err == nil && tr.Tasks > 0 {
		fmt.Printf("  timing closure       flow speeds %.1f-%.1f mm/s (cap %.0f), closed=%v\n",
			tr.Min, tr.Max, tr.Cap, tr.Closed())
	}
	pp := repro.PlanControlPins(sol)
	if pp.Valves > 0 {
		fmt.Printf("  control pins         %d valves on %d pins (%.2fx sharing)\n",
			pp.Valves, pp.Pins, pp.Sharing)
	}
	if bd, err := repro.ScheduleBounds(g, alloc, opts); err == nil {
		fmt.Printf("  optimality           lower bound %v, gap %.1f%%\n",
			bd.Best, bd.GapPct(m.ExecutionTime))
	}
	if wr, err := repro.RouteWashes(sol); err == nil && len(wr.Flushes) > 0 {
		fmt.Printf("  wash infrastructure  %d flush cells, %d beyond assay channels\n",
			wr.TotalFlushCells, wr.ExtraCells)
	}

	if *gantt {
		fmt.Println()
		fmt.Print(repro.Gantt(sol))
	}
	if *layout {
		fmt.Println()
		fmt.Print(repro.Layout(sol))
	}
	if *events {
		fmt.Println()
		for _, e := range rep.Events {
			fmt.Printf("%10v  %-17s %s\n", e.Time, e.Kind, e.Note)
		}
	}
	if *failures {
		fa, err := repro.AnalyzeFailures(g, alloc, opts)
		if err != nil {
			fail(err)
		}
		fmt.Println("\nsingle-component-failure analysis:")
		for _, imp := range fa.Impacts {
			if !imp.Feasible {
				fmt.Printf("  lose one %-8v -> assay infeasible (single point of failure)\n", imp.Type)
				continue
			}
			fmt.Printf("  lose one %-8v -> completion %v (%+.1f%%)\n", imp.Type, imp.Makespan, imp.DeltaPct)
		}
	}
	if *congest {
		fmt.Println()
		fmt.Print(repro.CongestionMap(sol))
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fail(err)
		}
		if err := solio.Encode(f, sol); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("solution written to %s\n", *save)
	}
}
