// Command mfverify independently audits synthesis solutions against the
// paper's DCSA constraint model: sequencing-graph precedence, component
// exclusivity, storage legality (Eq. 2 and the Case I reuse rule),
// placement geometry and the time-slot routing condition of Eq. 5. It
// shares no logic with the algorithms that construct solutions, so it can
// catch bugs the pipeline's own validators inherit.
//
// Usage:
//
//	mfverify solution.json [more.json ...]  # audit saved solutions (mfsyn -save)
//	mfverify -bench CPA                     # synthesize the benchmark, then audit
//	mfverify -bench all                     # audit every Table I benchmark
//	mfverify -bench all -baseline           # ...with the baseline algorithm BA
//	mfverify -json solution.json            # machine-readable reports
//
// Saved files are decoded without the usual validation pass, so a
// tampered solution is reported violation by violation instead of being
// rejected at decode time. Exit status is 0 when every audit is clean,
// 1 when any violation was found and 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/solio"
)

func main() {
	var (
		benchName = flag.String("bench", "", `audit a built-in benchmark ("all" for the whole suite) instead of files`)
		baseline  = flag.Bool("baseline", false, "with -bench: audit the baseline algorithm BA")
		imax      = flag.Int("imax", 150, "with -bench: simulated-annealing iterations per temperature step")
		seed      = flag.Uint64("seed", 1, "with -bench: placement seed")
		jsonOut   = flag.Bool("json", false, "emit one JSON report array instead of text")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("mfverify"))
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mfverify:", err)
		os.Exit(2)
	}

	var reports []*repro.AuditReport
	switch {
	case *benchName != "":
		if flag.NArg() > 0 {
			fail(fmt.Errorf("-bench and file arguments are mutually exclusive"))
		}
		benches := repro.Benchmarks()
		if *benchName != "all" {
			bm, err := repro.BenchmarkByName(*benchName)
			if err != nil {
				fail(err)
			}
			benches = []repro.Benchmark{bm}
		}
		opts := repro.DefaultOptions()
		opts.Place.Imax = *imax
		opts.Place.Seed = *seed
		for _, bm := range benches {
			var sol *repro.Solution
			var err error
			if *baseline {
				sol, err = repro.SynthesizeBaseline(bm.Graph, bm.Alloc, opts)
			} else {
				sol, err = repro.Synthesize(bm.Graph, bm.Alloc, opts)
			}
			if err != nil {
				fail(fmt.Errorf("synthesizing %s: %w", bm.Name, err))
			}
			reports = append(reports, repro.Audit(sol))
		}
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fail(err)
			}
			sol, err := solio.DecodeUnvalidated(f)
			f.Close()
			if err != nil {
				fail(fmt.Errorf("%s: %w", path, err))
			}
			reports = append(reports, repro.Audit(sol))
		}
	default:
		fmt.Fprintln(os.Stderr, "mfverify: need solution files or -bench NAME")
		flag.Usage()
		os.Exit(2)
	}

	bad := false
	for _, rep := range reports {
		if !rep.OK() {
			bad = true
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail(err)
		}
	} else {
		for _, rep := range reports {
			fmt.Println(rep)
		}
	}
	if bad {
		os.Exit(1)
	}
}
