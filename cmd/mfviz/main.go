// Command mfviz synthesizes an assay and writes SVG diagrams of the
// result: the chip layout with placed components and routed flow
// channels, and the schedule Gantt chart with operations, washes and
// channel-cache episodes.
//
// Usage:
//
//	mfviz -bench CPA -out cpa            # writes cpa_layout.svg + cpa_gantt.svg
//	mfviz -assay my.json -alloc "(3,0,0,2)" -out my
//	mfviz -bench IVD -baseline -out ivd_ba
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/svg"
)

func main() {
	var (
		assayPath = flag.String("assay", "", "path to an assay JSON file")
		allocStr  = flag.String("alloc", "", `component allocation, e.g. "(3,0,0,2)"`)
		benchName = flag.String("bench", "", "use a built-in benchmark")
		baseline  = flag.Bool("baseline", false, "run the baseline algorithm BA")
		out       = flag.String("out", "chip", "output file prefix")
		imax      = flag.Int("imax", 150, "simulated-annealing iterations per temperature step")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Version("mfviz"))
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "mfviz:", err)
		os.Exit(1)
	}

	var g *repro.Assay
	var alloc repro.Allocation
	switch {
	case *benchName != "":
		bm, err := repro.BenchmarkByName(*benchName)
		if err != nil {
			fail(err)
		}
		g, alloc = bm.Graph, bm.Alloc
	case *assayPath != "":
		f, err := os.Open(*assayPath)
		if err != nil {
			fail(err)
		}
		g, err = repro.DecodeAssay(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		alloc = repro.MinimalAllocation(g)
	default:
		fmt.Fprintln(os.Stderr, "mfviz: need -assay FILE or -bench NAME")
		flag.Usage()
		os.Exit(2)
	}
	if *allocStr != "" {
		a, err := repro.ParseAllocation(*allocStr)
		if err != nil {
			fail(err)
		}
		alloc = a
	}

	opts := repro.DefaultOptions()
	opts.Place.Imax = *imax
	var sol *repro.Solution
	var err error
	if *baseline {
		sol, err = repro.SynthesizeBaseline(g, alloc, opts)
	} else {
		sol, err = repro.Synthesize(g, alloc, opts)
	}
	if err != nil {
		fail(err)
	}

	layoutPath := *out + "_layout.svg"
	ganttPath := *out + "_gantt.svg"
	lf, err := os.Create(layoutPath)
	if err != nil {
		fail(err)
	}
	if err := svg.Layout(lf, sol); err != nil {
		fail(err)
	}
	if err := lf.Close(); err != nil {
		fail(err)
	}
	gf, err := os.Create(ganttPath)
	if err != nil {
		fail(err)
	}
	if err := svg.Gantt(gf, repro.ScheduleOf(sol)); err != nil {
		fail(err)
	}
	if err := gf.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s and %s (completion %v, U_r %.1f%%)\n",
		layoutPath, ganttPath, sol.Metrics().ExecutionTime, 100*sol.Metrics().Utilization)
}
