// Determinism regression: the synthesis flow must be reproducible
// byte-for-byte. Every stochastic stage takes an explicit seed, so the
// complete solution — placement rectangles, routed paths, makespan and
// derived metrics — is a pure function of (assay, allocation, options).
// These tests pin SHA-256 fingerprints of the full solution for all seven
// Table I benchmarks, captured from the original (pre-incremental) code:
// the incremental-energy placer, the allocation-free router and the
// parallel pipeline must all reproduce them exactly.
package repro_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
)

// fingerprintOpts are the fixed options the golden hashes were captured
// with (benchOpts: the paper's parameters at Imax=60, seed 1).
func fingerprintOpts() core.Options {
	o := core.DefaultOptions()
	o.Place.Imax = 60
	return o
}

// writeSolution streams every deterministic field of a solution into h in
// a canonical order. CPU time is excluded: it is the only field that
// legitimately varies between runs.
func writeSolution(h hash.Hash, sol *core.Solution) {
	fmt.Fprintf(h, "makespan=%d util=%.12f\n", sol.Schedule.Makespan, sol.Schedule.Utilization())
	fmt.Fprintf(h, "transports=%d\n", len(sol.Schedule.Transports))
	fmt.Fprintf(h, "plane=%dx%d\n", sol.Placement.W, sol.Placement.H)
	for i, r := range sol.Placement.Rects {
		fmt.Fprintf(h, "rect %d: %d %d %d %d\n", i, r.X, r.Y, r.W, r.H)
	}
	for _, rt := range sol.Routing.Routes {
		fmt.Fprintf(h, "task %d:", rt.Task.ID)
		for _, c := range rt.Path {
			fmt.Fprintf(h, " %d,%d", c.X, c.Y)
		}
		fmt.Fprintln(h)
	}
	fmt.Fprintf(h, "wash=%d union=%d cache=%d\n",
		sol.Routing.ChannelWash, sol.Routing.UnionCells, sol.Schedule.TotalChannelCacheTime())
}

// solutionFingerprint returns the canonical SHA-256 of a solution.
func solutionFingerprint(sol *core.Solution) string {
	h := sha256.New()
	writeSolution(h, sol)
	return hex.EncodeToString(h.Sum(nil))
}

// goldenFingerprints were captured from the seed implementation (full
// Energy recomputation, map-based A*) at fingerprintOpts. Keyed by
// benchmark name and algorithm ("ours" / "BA").
var goldenFingerprints = map[string]string{
	"PCR/ours":        "8711769dfed9fb9b0bbb7cd3770159c54837e25f9fee282bca340c5a95b2e9a7",
	"PCR/BA":          "94372516b523f11636e53d38488b83370daa9cafeb14810218ca8dd092250499",
	"IVD/ours":        "8aaba2458ab23ebe867c5efcac8ee6dfb66dbf63b0448d56abf6bdec28c26c08",
	"IVD/BA":          "151e31334f6910791f49320909146369373fc57d282682fe6013a1c861c6b6ce",
	"CPA/ours":        "2ed08bc10278a7f041d3e12231db9b917f3cea55cdc33a89213ec0521ada49e8",
	"CPA/BA":          "826467982cee5bcc7861f43bd516767d15ccf2477e15f090e1439854e67d9a8a",
	"Synthetic1/ours": "6926ba0ddd00ae50436f81722c456251b1c11f7603f6dcab4a1ac3a61af1fa7b",
	"Synthetic1/BA":   "662dceaf58ceaf6e38f6a7d17d96fe755bc056d2810e100afae731849fc3ce4a",
	"Synthetic2/ours": "04a54a7de8fb825abe6d1292afa7668e03543203e891741ac9a89c0f79d65798",
	"Synthetic2/BA":   "19eae3acfb5660b3b8e1146b66b42f9b0af5ca4a49d28bdc4c02c2050931369e",
	"Synthetic3/ours": "b2ac8189affb9c1e8f9279c34d6b36baaffb7de842b3642544ec19115eef9c87",
	"Synthetic3/BA":   "20813eacbda2b3c2cb52e14fe18f2056156d7316ff0575d365077afce9c011f5",
	"Synthetic4/ours": "44b383124f52fd2ad8e072a42b14ffa038b9586efa437c19860acb9e45fa6815",
	"Synthetic4/BA":   "0bb9c58a8d8dc6257207d39aa9319e9f76512b5cd669ee61143b00e8d0f7bfa7",
}

func TestSolutionFingerprints(t *testing.T) {
	for _, bm := range benchdata.All() {
		for _, algo := range []string{"ours", "BA"} {
			key := bm.Name + "/" + algo
			t.Run(key, func(t *testing.T) {
				var sol *core.Solution
				var err error
				if algo == "ours" {
					sol, err = core.Synthesize(bm.Graph, bm.Alloc, fingerprintOpts())
				} else {
					sol, err = core.SynthesizeBaseline(bm.Graph, bm.Alloc, fingerprintOpts())
				}
				if err != nil {
					t.Fatal(err)
				}
				got := solutionFingerprint(sol)
				want, ok := goldenFingerprints[key]
				if !ok || want == "" {
					t.Logf("CAPTURE %q: %q,", key, got)
					t.Skip("no golden fingerprint recorded for", key)
				}
				if got != want {
					t.Errorf("solution fingerprint diverged from seed:\n got %s\nwant %s", got, want)
				}
			})
		}
	}
}
