package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleSynthesize runs the complete DCSA-aware physical synthesis on a
// hand-built two-operation assay and prints the deterministic headline
// metrics.
func ExampleSynthesize() {
	b := repro.NewAssay("demo")
	m := b.AddOp("mix", repro.Mix, repro.Seconds(3), repro.Fluid{Name: "sample", D: 1e-6})
	d := b.AddOp("read", repro.Detect, repro.Seconds(2), repro.Fluid{Name: "dye", D: 3e-6})
	b.AddDep(m, d)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	sol, err := repro.Synthesize(g, repro.MinimalAllocation(g), repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	met := sol.Metrics()
	fmt.Printf("completion %v with %d transport\n", met.ExecutionTime, met.Transports)
	// Output:
	// completion 7s with 1 transport
}

// ExampleAssayBuilder shows the validation the builder enforces.
func ExampleAssayBuilder() {
	b := repro.NewAssay("broken")
	o1 := b.AddOp("a", repro.Mix, repro.Seconds(2), repro.Fluid{D: 1e-6})
	o2 := b.AddOp("b", repro.Mix, repro.Seconds(2), repro.Fluid{D: 1e-6})
	b.AddDep(o1, o2)
	b.AddDep(o2, o1) // cycle!
	if _, err := b.Build(); err != nil {
		fmt.Println("rejected")
	}
	// Output:
	// rejected
}

// ExampleParseAllocation parses a Table I allocation tuple.
func ExampleParseAllocation() {
	a, _ := repro.ParseAllocation("(8,0,0,2)")
	fmt.Println(a.Total(), "components:", a)
	// Output:
	// 10 components: (8,0,0,2)
}

// ExampleScheduleBounds reports the optimality gap of a schedule.
func ExampleScheduleBounds() {
	b := repro.NewAssay("chain")
	prev := repro.NoOp
	for i := 0; i < 3; i++ {
		id := b.AddOp(fmt.Sprintf("m%d", i+1), repro.Mix, repro.Seconds(4), repro.Fluid{D: 1e-6})
		if prev != repro.NoOp {
			b.AddDep(prev, id)
		}
		prev = id
	}
	g, _ := b.Build()
	alloc := repro.Allocation{1, 0, 0, 0}
	sol, err := repro.Synthesize(g, alloc, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	bd, _ := repro.ScheduleBounds(g, alloc, repro.DefaultOptions())
	fmt.Printf("makespan %v, lower bound %v, gap %.0f%%\n",
		sol.Metrics().ExecutionTime, bd.Best, bd.GapPct(sol.Metrics().ExecutionTime))
	// Output:
	// makespan 12s, lower bound 12s, gap 0%
}
