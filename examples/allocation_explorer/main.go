// allocation_explorer: where do Table I's component allocations come
// from? This example runs the architectural-synthesis step upstream of
// the paper's physical design: it explores candidate allocations for the
// IVD assay, prints the full area/completion-time trade-off and its
// Pareto frontier, recommends an allocation under an area budget, and —
// because IVD is small — sanity-checks the greedy scheduler against the
// binding-optimal completion time found by exhaustive search.
//
//	go run ./examples/allocation_explorer
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	bm, err := repro.BenchmarkByName("IVD")
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.DefaultOptions()

	cands, err := repro.ExploreAllocations(bm.Graph, opts, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IVD: %d candidate allocations (≤3 components per type)\n\n", len(cands))
	fmt.Printf("%-12s %10s %8s %8s %12s\n", "allocation", "completion", "U_r", "area", "cache time")
	for _, c := range cands {
		fmt.Printf("%-12s %10v %7.1f%% %8d %12v\n",
			c.Alloc, c.Makespan, 100*c.Utilization, c.Area, c.CacheTime)
	}

	fmt.Println("\nPareto frontier (area vs completion time):")
	for _, c := range repro.ParetoAllocations(cands) {
		fmt.Printf("  %v: %v in %d cells\n", c.Alloc, c.Makespan, c.Area)
	}

	budget := 30
	rec, err := repro.RecommendAllocation(bm.Graph, opts, 3, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended within %d-cell budget: %v\n", budget, rec)

	// How good is the greedy Algorithm 1 against the binding-optimal
	// schedule on the recommended allocation?
	optimal, candidates, err := repro.OptimalSchedule(bm.Graph, rec, opts)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := repro.Synthesize(bm.Graph, rec, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy completion %v vs binding-optimal %v (exhaustive search over %d bindings)\n",
		sol.Metrics().ExecutionTime, optimal, candidates)
}
