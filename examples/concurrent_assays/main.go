// concurrent_assays: the platform-level use case from the paper's
// introduction — several independent biochemical applications processed
// concurrently on one DCSA chip. Two assays (a PCR-style mixing tree and
// a diagnostic panel) are merged into one sequencing graph, synthesized
// together, and the result is audited with the timing-closure and
// wash-plan analyses.
//
//	go run ./examples/concurrent_assays
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Assay 1: PCR-style sample preparation.
	b1 := repro.NewAssay("prep")
	root, err := repro.BuildMixingTree(b1, 4, repro.Seconds(6))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := repro.BuildHeatCycle(b1, root, 2, repro.Seconds(8), repro.Seconds(3)); err != nil {
		log.Fatal(err)
	}
	prep, err := b1.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Assay 2: a 2×2 diagnostic panel.
	b2 := repro.NewAssay("panel")
	if _, err := repro.BuildMultiplex(b2, 2, 2, repro.Seconds(5), repro.Seconds(4)); err != nil {
		log.Fatal(err)
	}
	panel, err := b2.Build()
	if err != nil {
		log.Fatal(err)
	}

	merged, err := repro.MergeAssays("prep+panel", prep, panel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged platform workload: %d operations, %d dependencies\n",
		merged.NumOps(), merged.NumEdges())

	// Pick an allocation for the combined workload within a chip budget.
	opts := repro.DefaultOptions()
	alloc, err := repro.RecommendAllocation(merged, opts, 3, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended allocation within 60 cells: %v\n\n", alloc)

	sol, err := repro.Synthesize(merged, alloc, opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := repro.Verify(sol); err != nil {
		log.Fatal(err)
	}
	m := sol.Metrics()
	fmt.Printf("completion %v, U_r %.1f%%, channels %v, cache %v\n",
		m.ExecutionTime, 100*m.Utilization, m.ChannelLength, m.CacheTime)

	// Would the two assays have been faster on separate chips? Compare
	// against each in isolation on the same allocation.
	for _, g := range []*repro.Assay{prep, panel} {
		s, err := repro.Synthesize(g, alloc, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s alone: %v\n", g.Name(), s.Metrics().ExecutionTime)
	}

	// Post-synthesis audits.
	tr, err := repro.AnalyzeTiming(sol, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntiming closure: %d tasks, implied flow speeds %.1f–%.1f mm/s (cap %.0f), closed=%v\n",
		tr.Tasks, tr.Min, tr.Max, tr.Cap, tr.Closed())
	wp, err := repro.PlanWashes(sol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wash plan: %d flushes, %.0f%% on time\n", len(wp.Flushes), 100*wp.OnTimeFraction())
	fmt.Println()
	fmt.Print(repro.Gantt(sol))
}
