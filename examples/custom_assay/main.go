// custom_assay: build a bespoke bioassay programmatically — a small
// sample-preparation protocol with mixing, heating and detection — round-
// trip it through the JSON format, and synthesize it onto a chip sized by
// the minimal covering allocation and onto a richer allocation for
// comparison.
//
//	go run ./examples/custom_assay
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A lysis-and-detect protocol:
	//
	//	lyse ──► neutralize ──► amplify(heat) ──► readout(detect)
	//	dilute ──► neutralize                └──► verify(detect)
	b := repro.NewAssay("lysis-detect")
	lyse := b.AddOp("lyse", repro.Mix, repro.Seconds(4),
		repro.Fluid{Name: "lysis-buffer", D: 1e-5})
	dilute := b.AddOp("dilute", repro.Mix, repro.Seconds(3),
		repro.Fluid{Name: "diluent", D: 6.7e-6})
	neutralize := b.AddOp("neutralize", repro.Mix, repro.Seconds(5),
		repro.Fluid{Name: "lysate", D: 7e-8})
	amplify := b.AddOp("amplify", repro.Heat, repro.Seconds(12),
		repro.Fluid{Name: "amplicon", D: 1e-7})
	readout := b.AddOp("readout", repro.Detect, repro.Seconds(4),
		repro.Fluid{Name: "reagent-dye", D: 3e-6})
	verify := b.AddOp("verify", repro.Detect, repro.Seconds(4),
		repro.Fluid{Name: "reagent-dye", D: 3e-6})
	b.AddDep(lyse, neutralize)
	b.AddDep(dilute, neutralize)
	b.AddDep(neutralize, amplify)
	b.AddDep(amplify, readout)
	b.AddDep(amplify, verify)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Round-trip through the on-disk JSON format.
	var buf bytes.Buffer
	if err := repro.EncodeAssay(&buf, g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assay JSON (%d bytes):\n%s\n", buf.Len(), buf.String())
	g2, err := repro.DecodeAssay(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize on the minimal allocation and on a richer one.
	for _, alloc := range []repro.Allocation{
		repro.MinimalAllocation(g2), // (1,1,0,1)
		{2, 1, 0, 2},
	} {
		sol, err := repro.Synthesize(g2, alloc, repro.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := repro.Verify(sol); err != nil {
			log.Fatal(err)
		}
		m := sol.Metrics()
		fmt.Printf("allocation %v: completion %v, U_r %.1f%%, channels %v, cache %v\n",
			alloc, m.ExecutionTime, 100*m.Utilization, m.ChannelLength, m.CacheTime)
	}
}
