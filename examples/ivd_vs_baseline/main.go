// ivd_vs_baseline: run the in-vitro diagnostics assay through both the
// proposed DCSA-aware synthesis and the baseline BA, and compare every
// metric of the paper's evaluation side by side — the per-benchmark view
// behind Table I and Figs. 8-9.
//
//	go run ./examples/ivd_vs_baseline
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	bm, err := repro.BenchmarkByName("IVD")
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.DefaultOptions()

	ours, err := repro.Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		log.Fatal(err)
	}
	ba, err := repro.SynthesizeBaseline(bm.Graph, bm.Alloc, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []*repro.Solution{ours, ba} {
		if _, err := repro.Verify(s); err != nil {
			log.Fatalf("verification: %v", err)
		}
	}

	om, bmx := ours.Metrics(), ba.Metrics()
	fmt.Printf("IVD (%d operations on %v):\n\n", bm.Graph.NumOps(), bm.Alloc)
	fmt.Printf("%-24s %14s %14s\n", "metric", "proposed", "baseline BA")
	row := func(name, a, b string) { fmt.Printf("%-24s %14s %14s\n", name, a, b) }
	row("execution time", om.ExecutionTime.String(), bmx.ExecutionTime.String())
	row("resource utilization", fmt.Sprintf("%.1f%%", 100*om.Utilization), fmt.Sprintf("%.1f%%", 100*bmx.Utilization))
	row("total channel length", om.ChannelLength.String(), bmx.ChannelLength.String())
	row("channel cache time", om.CacheTime.String(), bmx.CacheTime.String())
	row("channel wash time", om.ChannelWashTime.String(), bmx.ChannelWashTime.String())
	row("component wash time", om.ComponentWashTime.String(), bmx.ComponentWashTime.String())
	row("transports", fmt.Sprint(om.Transports), fmt.Sprint(bmx.Transports))

	fmt.Println("\n=== proposed schedule ===")
	fmt.Print(repro.Gantt(ours))
	fmt.Println("\n=== baseline schedule ===")
	fmt.Print(repro.Gantt(ba))
	fmt.Println("\n=== proposed chip layout ===")
	fmt.Print(repro.Layout(ours))
}
