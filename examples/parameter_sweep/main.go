// parameter_sweep: study how the synthesis result reacts to the two most
// influential knobs — the transportation constant t_c assumed by the
// scheduler, and the SA effort Imax — on the Synthetic2 benchmark. It
// also sweeps assay size with the synthetic generator to show how the
// DCSA advantage grows with scale (the trend behind Table I's rows).
//
//	go run ./examples/parameter_sweep
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	bm, err := repro.BenchmarkByName("Synthetic2")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== sweep: transportation constant t_c (Synthetic2) ==")
	fmt.Printf("%6s %12s %8s %12s\n", "t_c", "completion", "U_r", "cache time")
	for _, tc := range []float64{1, 2, 3, 4, 6} {
		opts := repro.DefaultOptions()
		opts.Schedule.TC = repro.Seconds(tc)
		opts.Place.Imax = 60
		sol, err := repro.Synthesize(bm.Graph, bm.Alloc, opts)
		if err != nil {
			log.Fatal(err)
		}
		m := sol.Metrics()
		fmt.Printf("%5.1fs %12v %7.1f%% %12v\n", tc, m.ExecutionTime, 100*m.Utilization, m.CacheTime)
	}

	fmt.Println("\n== sweep: SA effort Imax (Synthetic2, channel length) ==")
	fmt.Printf("%6s %14s %14s\n", "Imax", "length", "SA CPU")
	for _, imax := range []int{10, 50, 150, 300} {
		opts := repro.DefaultOptions()
		opts.Place.Imax = imax
		sol, err := repro.Synthesize(bm.Graph, bm.Alloc, opts)
		if err != nil {
			log.Fatal(err)
		}
		m := sol.Metrics()
		fmt.Printf("%6d %14v %14v\n", imax, m.ChannelLength, m.CPU.Round(1000000))
	}

	fmt.Println("\n== sweep: assay size (synthetic, ours vs baseline completion, mean of 5 seeds) ==")
	fmt.Printf("%6s %12s %12s %8s\n", "ops", "ours", "baseline", "gain")
	alloc := repro.Allocation{5, 2, 2, 2}
	for _, n := range []int{10, 20, 30, 40, 60} {
		var oursSum, baSum float64
		const seeds = 5
		for seed := uint64(0); seed < seeds; seed++ {
			g := repro.GenerateSyntheticAssay(fmt.Sprintf("sweep%d_%d", n, seed), n, alloc, 4242+seed)
			opts := repro.DefaultOptions()
			opts.Place.Imax = 40
			ours, err := repro.Synthesize(g, alloc, opts)
			if err != nil {
				log.Fatal(err)
			}
			ba, err := repro.SynthesizeBaseline(g, alloc, opts)
			if err != nil {
				log.Fatal(err)
			}
			oursSum += ours.Metrics().ExecutionTime.Sec()
			baSum += ba.Metrics().ExecutionTime.Sec()
		}
		gain := 0.0
		if baSum > 0 {
			gain = 100 * (baSum - oursSum) / baSum
		}
		fmt.Printf("%6d %11.1fs %11.1fs %7.1f%%\n", n, oursSum/seeds, baSum/seeds, gain)
	}
}
