// Quickstart: synthesize the PCR benchmark onto a DCSA-based biochip with
// the paper's default parameters and print the headline metrics, the
// schedule and the chip layout.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The built-in PCR benchmark: a binary tree of 7 mixing operations
	// executed on 3 mixers (Table I row 1).
	bm, err := repro.BenchmarkByName("PCR")
	if err != nil {
		log.Fatal(err)
	}

	// Run the proposed DCSA-aware top-down synthesis with the published
	// parameters (t_c = 2 s, SA α=0.9, T0=10000, Imax=150, Tmin=1, ...).
	sol, err := repro.Synthesize(bm.Graph, bm.Alloc, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Every solution can be re-verified by an independent replay.
	if _, err := repro.Verify(sol); err != nil {
		log.Fatalf("solution failed verification: %v", err)
	}

	m := sol.Metrics()
	fmt.Printf("PCR on %v components:\n", bm.Alloc)
	fmt.Printf("  completion time      %v\n", m.ExecutionTime)
	fmt.Printf("  resource utilization %.1f%%\n", 100*m.Utilization)
	fmt.Printf("  total channel length %v\n", m.ChannelLength)
	fmt.Printf("  channel cache time   %v\n", m.CacheTime)
	fmt.Println()
	fmt.Print(repro.Gantt(sol))
	fmt.Println()
	fmt.Print(repro.Layout(sol))
}
