// Fault-injection regression: the injection plumbing must be invisible
// unless a point actually fires. Like obs_trace_test.go for tracing,
// this pins "fault machinery compiled in and installed == fault-free
// build" via the golden fingerprints: once with an empty (disabled) plan
// in the context, and once with every registered point armed at
// probability zero — the armed variant consumes the plan's own RNG
// streams on every evaluation, proving those draws never leak into the
// pipeline's randomness or floating-point state.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/fault"
)

func fingerprintWithPlan(t *testing.T, plan *fault.Plan, label string) {
	t.Helper()
	for _, bm := range benchdata.All() {
		for _, algo := range []string{"ours", "BA"} {
			key := bm.Name + "/" + algo
			want, ok := goldenFingerprints[key]
			if !ok || want == "" {
				continue
			}
			t.Run(key+"/"+label, func(t *testing.T) {
				ctx := fault.Into(context.Background(), plan)
				var sol *core.Solution
				var err error
				if algo == "ours" {
					sol, err = core.SynthesizeContext(ctx, bm.Graph, bm.Alloc, fingerprintOpts())
				} else {
					sol, err = core.SynthesizeBaselineContext(ctx, bm.Graph, bm.Alloc, fingerprintOpts())
				}
				if err != nil {
					t.Fatal(err)
				}
				if got := solutionFingerprint(sol); got != want {
					t.Errorf("fault plumbing perturbed the solution:\n got %s\nwant %s", got, want)
				}
				if len(sol.Degradations) != 0 {
					t.Errorf("non-firing plan recorded degradations: %v", sol.Degradations)
				}
			})
		}
	}
}

// TestFingerprintsUnchangedByDisabledFault: an installed-but-empty plan
// is the common production shape (context plumbed, nothing armed).
func TestFingerprintsUnchangedByDisabledFault(t *testing.T) {
	fingerprintWithPlan(t, fault.NewPlan(1), "empty")
}

// TestFingerprintsUnchangedByArmedZeroProbFault: every point armed but
// unable to fire. Each armed evaluation draws from the point's private
// RNG stream, so this variant fails if any injection site shares state
// with the algorithms. It also flips core's fault-armed audit on,
// re-verifying each golden solution as a side effect.
func TestFingerprintsUnchangedByArmedZeroProbFault(t *testing.T) {
	if testing.Short() {
		t.Skip("second full fingerprint sweep; covered by the empty-plan variant in short mode")
	}
	plan := fault.NewPlan(2)
	for _, pt := range fault.Points() {
		plan.Arm(pt.Point, fault.Policy{Prob: 0})
	}
	fingerprintWithPlan(t, plan, "armed-zero")
	for pt, st := range plan.Stats() {
		if st.Fires != 0 {
			t.Fatalf("point %s fired %d times at probability zero", pt, st.Fires)
		}
	}
}
