// Package archsyn explores component allocations for a bioassay — the
// architectural-synthesis step upstream of the paper's physical design
// flow (cf. Minhass et al., CASES'12, the paper's ref. [6]). The paper
// takes Table I's allocations as given; this package answers where such
// tuples come from: it enumerates candidate allocations, schedules each
// with the DCSA-aware Algorithm 1, and reports the area/completion-time
// trade-off including the Pareto frontier.
package archsyn

import (
	"fmt"
	"sort"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// Candidate is one evaluated allocation.
type Candidate struct {
	Alloc chip.Allocation
	// Makespan is the assay completion time under the DCSA scheduler.
	Makespan unit.Time
	// Utilization is U_r of Eq. 1.
	Utilization float64
	// Area is the summed component footprint area in grid cells.
	Area int
	// CacheTime is the total channel-storage time of the schedule.
	CacheTime unit.Time
}

// Area returns the footprint area of an allocation in grid cells.
func Area(a chip.Allocation) int {
	area := 0
	for t := 0; t < assay.NumOpTypes; t++ {
		k := chip.KindFor(assay.OpType(t))
		area += a[t] * k.W * k.H
	}
	return area
}

// Explore schedules every allocation that covers g with per-type counts
// between the minimum (1 where the type occurs) and maxPerType (clipped
// to the number of operations of that type — more components than
// operations can never help). Results are sorted by makespan, then area,
// then allocation order.
func Explore(g *assay.Graph, opts schedule.Options, maxPerType int) ([]Candidate, error) {
	if g == nil {
		return nil, fmt.Errorf("archsyn: nil assay")
	}
	if maxPerType < 1 {
		return nil, fmt.Errorf("archsyn: maxPerType must be at least 1")
	}
	need := g.CountByType()
	lo, hi := [assay.NumOpTypes]int{}, [assay.NumOpTypes]int{}
	for t := 0; t < assay.NumOpTypes; t++ {
		if need[t] == 0 {
			continue
		}
		lo[t] = 1
		hi[t] = maxPerType
		if hi[t] > need[t] {
			hi[t] = need[t]
		}
	}

	var out []Candidate
	var alloc chip.Allocation
	var rec func(t int) error
	rec = func(t int) error {
		if t == assay.NumOpTypes {
			comps := alloc.Instantiate()
			res, err := schedule.Schedule(g, comps, opts)
			if err != nil {
				return err
			}
			out = append(out, Candidate{
				Alloc:       alloc,
				Makespan:    res.Makespan,
				Utilization: res.Utilization(),
				Area:        Area(alloc),
				CacheTime:   res.TotalChannelCacheTime(),
			})
			return nil
		}
		if lo[t] == 0 {
			alloc[t] = 0
			return rec(t + 1)
		}
		for n := lo[t]; n <= hi[t]; n++ {
			alloc[t] = n
			if err := rec(t + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Makespan != out[j].Makespan {
			return out[i].Makespan < out[j].Makespan
		}
		if out[i].Area != out[j].Area {
			return out[i].Area < out[j].Area
		}
		return less(out[i].Alloc, out[j].Alloc)
	})
	return out, nil
}

// Pareto filters candidates to the area/makespan Pareto frontier: no
// other candidate is at least as good on both axes and strictly better on
// one. The frontier is returned in increasing-area order.
func Pareto(cands []Candidate) []Candidate {
	var out []Candidate
	for _, c := range cands {
		dominated := false
		for _, d := range cands {
			if d.Alloc == c.Alloc {
				continue
			}
			if d.Area <= c.Area && d.Makespan <= c.Makespan &&
				(d.Area < c.Area || d.Makespan < c.Makespan) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Area != out[j].Area {
			return out[i].Area < out[j].Area
		}
		if out[i].Makespan != out[j].Makespan {
			return out[i].Makespan < out[j].Makespan
		}
		return less(out[i].Alloc, out[j].Alloc)
	})
	return dedupe(out)
}

// Recommend returns the fastest allocation whose footprint area does not
// exceed maxArea (0 means unbounded).
func Recommend(g *assay.Graph, opts schedule.Options, maxPerType, maxArea int) (chip.Allocation, error) {
	cands, err := Explore(g, opts, maxPerType)
	if err != nil {
		return chip.Allocation{}, err
	}
	for _, c := range cands {
		if maxArea == 0 || c.Area <= maxArea {
			return c.Alloc, nil
		}
	}
	return chip.Allocation{}, fmt.Errorf("archsyn: no allocation fits area budget %d", maxArea)
}

func less(a, b chip.Allocation) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func dedupe(cs []Candidate) []Candidate {
	out := cs[:0]
	seen := map[chip.Allocation]bool{}
	for _, c := range cs {
		if !seen[c.Alloc] {
			seen[c.Alloc] = true
			out = append(out, c)
		}
	}
	return out
}
