package archsyn

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/schedule"
)

func TestAreaComputation(t *testing.T) {
	// Mixer 4x3=12, Heater 3x2=6, Filter 3x2=6, Detector 2x2=4.
	a := chip.Allocation{2, 1, 0, 3}
	if got, want := Area(a), 2*12+6+3*4; got != want {
		t.Errorf("Area = %d, want %d", got, want)
	}
	if Area(chip.Allocation{}) != 0 {
		t.Error("empty allocation must have zero area")
	}
}

func TestExploreCoversAndSorts(t *testing.T) {
	bm := benchdata.IVD() // 6 mixes + 6 detects
	cands, err := Explore(bm.Graph, schedule.DefaultOptions(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Mixers 1..3 × detectors 1..3 = 9 candidates.
	if len(cands) != 9 {
		t.Fatalf("candidates = %d, want 9", len(cands))
	}
	for i, c := range cands {
		if err := c.Alloc.Covers(bm.Graph); err != nil {
			t.Errorf("candidate %v does not cover: %v", c.Alloc, err)
		}
		if c.Alloc[assay.Heat] != 0 || c.Alloc[assay.Filter] != 0 {
			t.Errorf("candidate %v allocates unused types", c.Alloc)
		}
		if i > 0 && c.Makespan < cands[i-1].Makespan {
			t.Error("candidates not sorted by makespan")
		}
	}
	// More hardware can never hurt the best makespan.
	best := cands[0]
	single := findAlloc(t, cands, chip.Allocation{1, 0, 0, 1})
	if best.Makespan > single.Makespan {
		t.Errorf("best %v slower than minimal %v", best.Makespan, single.Makespan)
	}
}

func findAlloc(t *testing.T, cands []Candidate, a chip.Allocation) Candidate {
	t.Helper()
	for _, c := range cands {
		if c.Alloc == a {
			return c
		}
	}
	t.Fatalf("allocation %v not explored", a)
	return Candidate{}
}

func TestExploreCapsAtOpCount(t *testing.T) {
	// PCR has 7 mixes: maxPerType 10 must still cap at 7 mixers.
	bm := benchdata.PCR()
	cands, err := Explore(bm.Graph, schedule.DefaultOptions(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 7 {
		t.Fatalf("candidates = %d, want 7 (1..7 mixers)", len(cands))
	}
}

func TestParetoFrontier(t *testing.T) {
	bm := benchdata.IVD()
	cands, err := Explore(bm.Graph, schedule.DefaultOptions(), 3)
	if err != nil {
		t.Fatal(err)
	}
	front := Pareto(cands)
	if len(front) == 0 || len(front) > len(cands) {
		t.Fatalf("frontier size %d of %d", len(front), len(cands))
	}
	// No frontier member dominates another.
	for _, a := range front {
		for _, b := range front {
			if a.Alloc == b.Alloc {
				continue
			}
			if a.Area <= b.Area && a.Makespan <= b.Makespan &&
				(a.Area < b.Area || a.Makespan < b.Makespan) {
				t.Errorf("frontier member %v dominates %v", a.Alloc, b.Alloc)
			}
		}
	}
	// Frontier is area-sorted.
	for i := 1; i < len(front); i++ {
		if front[i].Area < front[i-1].Area {
			t.Error("frontier not area-sorted")
		}
	}
	// Every non-frontier candidate is dominated by some frontier member.
	inFront := map[chip.Allocation]bool{}
	for _, f := range front {
		inFront[f.Alloc] = true
	}
	for _, c := range cands {
		if inFront[c.Alloc] {
			continue
		}
		dominated := false
		for _, f := range front {
			if f.Area <= c.Area && f.Makespan <= c.Makespan &&
				(f.Area < c.Area || f.Makespan < c.Makespan) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("non-frontier candidate %v is undominated", c.Alloc)
		}
	}
}

func TestRecommend(t *testing.T) {
	bm := benchdata.IVD()
	// Unbounded: the globally fastest.
	a, err := Recommend(bm.Graph, schedule.DefaultOptions(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Covers(bm.Graph); err != nil {
		t.Error(err)
	}
	// Tight budget: minimal allocation area is 12+4=16.
	tight, err := Recommend(bm.Graph, schedule.DefaultOptions(), 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if Area(tight) > 16 {
		t.Errorf("recommended %v exceeds budget", tight)
	}
	// Impossible budget.
	if _, err := Recommend(bm.Graph, schedule.DefaultOptions(), 3, 5); err == nil {
		t.Error("impossible area budget not rejected")
	}
}

func TestExploreRejectsBadInputs(t *testing.T) {
	if _, err := Explore(nil, schedule.DefaultOptions(), 2); err == nil {
		t.Error("nil assay not rejected")
	}
	bm := benchdata.PCR()
	if _, err := Explore(bm.Graph, schedule.DefaultOptions(), 0); err == nil {
		t.Error("maxPerType 0 not rejected")
	}
}
