// Package assay models a biochemical application as the sequencing graph
// G(O, E) of Section II-C of the paper: a directed acyclic graph whose
// vertices are operations (each with a type, an execution time and an
// output fluid) and whose edges are fluidic dependencies — the output of
// the parent operation is an input of the child.
package assay

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fluid"
	"repro/internal/unit"
)

// OpType is the kind of on-chip resource an operation needs.
type OpType int

// The component/operation types of the paper's benchmarks. Table I lists
// allocations as tuples (Mixers, Heaters, Filters, Detectors).
const (
	Mix OpType = iota
	Heat
	Filter
	Detect
	numOpTypes
)

// NumOpTypes is the count of distinct operation types.
const NumOpTypes = int(numOpTypes)

// String returns the lower-case type name.
func (t OpType) String() string {
	switch t {
	case Mix:
		return "mix"
	case Heat:
		return "heat"
	case Filter:
		return "filter"
	case Detect:
		return "detect"
	default:
		return fmt.Sprintf("optype(%d)", int(t))
	}
}

// Valid reports whether t is one of the defined operation types.
func (t OpType) Valid() bool { return t >= Mix && t < numOpTypes }

// ParseOpType parses "mix", "heat", "filter" or "detect".
func ParseOpType(s string) (OpType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "mix":
		return Mix, nil
	case "heat":
		return Heat, nil
	case "filter":
		return Filter, nil
	case "detect":
		return Detect, nil
	}
	return 0, fmt.Errorf("assay: unknown operation type %q", s)
}

// OpID identifies an operation within one assay. IDs are small dense
// integers assigned by the builder.
type OpID int

// NoOp is the invalid operation ID.
const NoOp OpID = -1

// Operation is a vertex o_i of the sequencing graph.
type Operation struct {
	ID   OpID
	Name string
	Type OpType
	// Duration is the execution time t_i of the operation.
	Duration unit.Time
	// Output is the fluid out(o_i) produced by the operation. Its
	// diffusion coefficient drives wash times (Fig. 2(b)).
	Output fluid.Fluid
}

// Edge is a fluidic dependency e_{i,j}: out(From) is an input of To.
type Edge struct {
	From OpID
	To   OpID
}

// Graph is a sequencing graph. Construct it with NewBuilder; a validated
// Graph is immutable.
type Graph struct {
	name     string
	ops      []Operation // indexed by OpID
	edges    []Edge
	children [][]OpID // adjacency, sorted
	parents  [][]OpID
}

// Name returns the assay's name.
func (g *Graph) Name() string { return g.name }

// NumOps returns |O|.
func (g *Graph) NumOps() int { return len(g.ops) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Op returns the operation with the given ID.
func (g *Graph) Op(id OpID) Operation {
	return g.ops[id]
}

// Operations returns all operations in ID order.
func (g *Graph) Operations() []Operation {
	out := make([]Operation, len(g.ops))
	copy(out, g.ops)
	return out
}

// Edges returns all fluidic dependencies.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Children returns the IDs of operations that consume out(id).
func (g *Graph) Children(id OpID) []OpID { return g.children[id] }

// Parents returns the IDs of the father operations of id.
func (g *Graph) Parents(id OpID) []OpID { return g.parents[id] }

// Sources returns operations with no parents (assay inputs), in ID order.
func (g *Graph) Sources() []OpID {
	var out []OpID
	for id := range g.ops {
		if len(g.parents[id]) == 0 {
			out = append(out, OpID(id))
		}
	}
	return out
}

// Sinks returns operations with no children (assay outputs), in ID order.
func (g *Graph) Sinks() []OpID {
	var out []OpID
	for id := range g.ops {
		if len(g.children[id]) == 0 {
			out = append(out, OpID(id))
		}
	}
	return out
}

// TopoOrder returns the operation IDs in a deterministic topological
// order (Kahn's algorithm with smallest-ID-first tie breaking).
func (g *Graph) TopoOrder() []OpID {
	indeg := make([]int, len(g.ops))
	for id := range g.ops {
		indeg[id] = len(g.parents[id])
	}
	// Min-heap behaviour via sorted frontier; graphs are small (≤ hundreds
	// of ops) so an O(V²) frontier scan would also do, but keep it tidy.
	frontier := make([]OpID, 0, len(g.ops))
	for id := range g.ops {
		if indeg[id] == 0 {
			frontier = append(frontier, OpID(id))
		}
	}
	order := make([]OpID, 0, len(g.ops))
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		for _, c := range g.children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	return order
}

// Priorities returns, for every operation, the length of the longest path
// from the operation to the sink of the sequencing graph, where each
// vertex contributes its execution time and each edge contributes the
// user-defined transportation constant tc. This is the priority value of
// Algorithm 1, lines 1-2: the example in the paper gives o1 priority 21 s
// on the Fig. 2(a) assay with tc = 2 s.
func (g *Graph) Priorities(tc unit.Time) []unit.Time {
	pr := make([]unit.Time, len(g.ops))
	order := g.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := unit.Time(0)
		for _, c := range g.children[id] {
			if v := tc + pr[c]; v > best {
				best = v
			}
		}
		pr[id] = g.ops[id].Duration + best
	}
	return pr
}

// CriticalPathLength returns the largest priority over all operations,
// i.e. a lower bound on the assay completion time given transport
// constant tc and unlimited resources.
func (g *Graph) CriticalPathLength(tc unit.Time) unit.Time {
	var best unit.Time
	for _, p := range g.Priorities(tc) {
		if p > best {
			best = p
		}
	}
	return best
}

// CountByType returns how many operations of each type the assay contains.
func (g *Graph) CountByType() [NumOpTypes]int {
	var n [NumOpTypes]int
	for _, op := range g.ops {
		n[op.Type]++
	}
	return n
}

// Validate re-checks the structural invariants. Builder.Build already
// guarantees them; Validate exists for graphs decoded from JSON.
func (g *Graph) Validate() error {
	if g.name == "" {
		return fmt.Errorf("assay: graph has no name")
	}
	if len(g.ops) == 0 {
		return fmt.Errorf("assay %q: no operations", g.name)
	}
	for id, op := range g.ops {
		if op.ID != OpID(id) {
			return fmt.Errorf("assay %q: operation %d has mismatched ID %d", g.name, id, op.ID)
		}
		if !op.Type.Valid() {
			return fmt.Errorf("assay %q: operation %q has invalid type", g.name, op.Name)
		}
		if op.Duration <= 0 {
			return fmt.Errorf("assay %q: operation %q has non-positive duration %v", g.name, op.Name, op.Duration)
		}
		if !op.Output.D.Valid() {
			return fmt.Errorf("assay %q: operation %q has invalid diffusion coefficient", g.name, op.Name)
		}
	}
	seen := make(map[Edge]bool, len(g.edges))
	for _, e := range g.edges {
		if e.From < 0 || int(e.From) >= len(g.ops) || e.To < 0 || int(e.To) >= len(g.ops) {
			return fmt.Errorf("assay %q: edge %v references unknown operation", g.name, e)
		}
		if e.From == e.To {
			return fmt.Errorf("assay %q: self-loop on operation %d", g.name, e.From)
		}
		if seen[e] {
			return fmt.Errorf("assay %q: duplicate edge %v", g.name, e)
		}
		seen[e] = true
	}
	if order := g.TopoOrder(); len(order) != len(g.ops) {
		return fmt.Errorf("assay %q: dependency cycle (topological order covers %d of %d operations)",
			g.name, len(order), len(g.ops))
	}
	return nil
}

// Builder accumulates operations and dependencies and produces a validated
// Graph.
type Builder struct {
	name  string
	ops   []Operation
	edges []Edge
}

// NewBuilder starts a new assay with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddOp appends an operation and returns its ID. The output fluid name
// defaults to the operation name when empty.
func (b *Builder) AddOp(name string, t OpType, dur unit.Time, out fluid.Fluid) OpID {
	id := OpID(len(b.ops))
	if out.Name == "" {
		out.Name = name
	}
	b.ops = append(b.ops, Operation{ID: id, Name: name, Type: t, Duration: dur, Output: out})
	return id
}

// AddDep records that out(from) is an input of to.
func (b *Builder) AddDep(from, to OpID) {
	b.edges = append(b.edges, Edge{From: from, To: to})
}

// Build validates and returns the immutable graph.
func (b *Builder) Build() (*Graph, error) {
	g := &Graph{
		name:  b.name,
		ops:   append([]Operation(nil), b.ops...),
		edges: append([]Edge(nil), b.edges...),
	}
	g.children = make([][]OpID, len(g.ops))
	g.parents = make([][]OpID, len(g.ops))
	for _, e := range g.edges {
		if e.From < 0 || int(e.From) >= len(g.ops) || e.To < 0 || int(e.To) >= len(g.ops) {
			return nil, fmt.Errorf("assay %q: edge %v references unknown operation", g.name, e)
		}
		g.children[e.From] = append(g.children[e.From], e.To)
		g.parents[e.To] = append(g.parents[e.To], e.From)
	}
	for id := range g.ops {
		sortIDs(g.children[id])
		sortIDs(g.parents[id])
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build for statically-known-good assays (benchmarks, tests).
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func sortIDs(ids []OpID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Merge combines several independent assays into a single sequencing
// graph under the given name: operations keep their relative structure
// and are renamed "<assayName>/<opName>" to stay unique. Merging supports
// the platform-level use case of the paper's introduction — multiple
// biochemical applications processed concurrently on one chip.
func Merge(name string, graphs ...*Graph) (*Graph, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("assay: merge needs at least one assay")
	}
	b := NewBuilder(name)
	for _, g := range graphs {
		if g == nil {
			return nil, fmt.Errorf("assay: merge of nil assay")
		}
		offset := OpID(len(b.ops))
		for _, op := range g.ops {
			b.AddOp(g.name+"/"+op.Name, op.Type, op.Duration, op.Output)
		}
		for _, e := range g.edges {
			b.AddDep(e.From+offset, e.To+offset)
		}
	}
	return b.Build()
}
