package assay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fluid"
	"repro/internal/unit"
)

func mixOp(b *Builder, name string, durSec float64) OpID {
	return b.AddOp(name, Mix, unit.Seconds(durSec), fluid.Fluid{D: 1e-6})
}

// chain builds o1 -> o2 -> ... -> on, each a 2 s mix.
func chain(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder("chain")
	var prev OpID = NoOp
	for i := 0; i < n; i++ {
		id := mixOp(b, fmtName(i), 2)
		if prev != NoOp {
			b.AddDep(prev, id)
		}
		prev = id
	}
	return b.MustBuild()
}

func fmtName(i int) string { return "o" + string(rune('1'+i)) }

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t")
	o1 := mixOp(b, "o1", 3)
	o2 := b.AddOp("o2", Heat, unit.Seconds(4), fluid.Fluid{Name: "sample", D: 1e-7})
	b.AddDep(o1, o2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 2 || g.NumEdges() != 1 {
		t.Fatalf("sizes: %d ops %d edges", g.NumOps(), g.NumEdges())
	}
	if g.Op(o1).Output.Name != "o1" {
		t.Errorf("default fluid name = %q, want operation name", g.Op(o1).Output.Name)
	}
	if g.Op(o2).Output.Name != "sample" {
		t.Errorf("explicit fluid name lost: %q", g.Op(o2).Output.Name)
	}
	if got := g.Children(o1); len(got) != 1 || got[0] != o2 {
		t.Errorf("Children(o1) = %v", got)
	}
	if got := g.Parents(o2); len(got) != 1 || got[0] != o1 {
		t.Errorf("Parents(o2) = %v", got)
	}
	if got := g.Sources(); len(got) != 1 || got[0] != o1 {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != o2 {
		t.Errorf("Sinks = %v", got)
	}
}

func TestValidationRejectsCycle(t *testing.T) {
	b := NewBuilder("cyc")
	o1 := mixOp(b, "o1", 2)
	o2 := mixOp(b, "o2", 2)
	o3 := mixOp(b, "o3", 2)
	b.AddDep(o1, o2)
	b.AddDep(o2, o3)
	b.AddDep(o3, o1)
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle not rejected")
	}
}

func TestValidationRejectsSelfLoop(t *testing.T) {
	b := NewBuilder("self")
	o1 := mixOp(b, "o1", 2)
	b.AddDep(o1, o1)
	if _, err := b.Build(); err == nil {
		t.Fatal("self-loop not rejected")
	}
}

func TestValidationRejectsDuplicateEdge(t *testing.T) {
	b := NewBuilder("dup")
	o1 := mixOp(b, "o1", 2)
	o2 := mixOp(b, "o2", 2)
	b.AddDep(o1, o2)
	b.AddDep(o1, o2)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate edge not rejected")
	}
}

func TestValidationRejectsBadDuration(t *testing.T) {
	b := NewBuilder("bad")
	b.AddOp("o1", Mix, 0, fluid.Fluid{D: 1e-6})
	if _, err := b.Build(); err == nil {
		t.Fatal("zero duration not rejected")
	}
}

func TestValidationRejectsBadDiffusion(t *testing.T) {
	b := NewBuilder("bad")
	b.AddOp("o1", Mix, unit.Seconds(2), fluid.Fluid{D: 0})
	if _, err := b.Build(); err == nil {
		t.Fatal("invalid diffusion not rejected")
	}
}

func TestValidationRejectsUnknownEdgeEndpoint(t *testing.T) {
	b := NewBuilder("bad")
	o1 := mixOp(b, "o1", 2)
	b.AddDep(o1, OpID(99))
	if _, err := b.Build(); err == nil {
		t.Fatal("dangling edge not rejected")
	}
}

func TestValidationRejectsEmptyGraph(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("empty graph not rejected")
	}
}

func TestValidationRejectsBadType(t *testing.T) {
	b := NewBuilder("bad")
	b.AddOp("o1", OpType(17), unit.Seconds(2), fluid.Fluid{D: 1e-6})
	if _, err := b.Build(); err == nil {
		t.Fatal("invalid op type not rejected")
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	// Diamond: o1 -> {o2,o3} -> o4.
	b := NewBuilder("diamond")
	o1 := mixOp(b, "o1", 2)
	o2 := mixOp(b, "o2", 2)
	o3 := mixOp(b, "o3", 2)
	o4 := mixOp(b, "o4", 2)
	b.AddDep(o1, o2)
	b.AddDep(o1, o3)
	b.AddDep(o2, o4)
	b.AddDep(o3, o4)
	g := b.MustBuild()
	order := g.TopoOrder()
	pos := make(map[OpID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violated in order %v", e, order)
		}
	}
	// Deterministic tie-break: o2 before o3.
	if pos[o2] >= pos[o3] {
		t.Errorf("tie-break not by ID: %v", order)
	}
}

func TestTopoOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		b := NewBuilder("rand")
		ids := make([]OpID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.AddOp(fmtNameN(i), OpType(r.Intn(NumOpTypes)), unit.Seconds(1+float64(r.Intn(5))), fluid.Fluid{D: 1e-6})
		}
		// Edges only forward: guaranteed acyclic.
		seen := map[Edge]bool{}
		for k := 0; k < n; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if i >= j {
				continue
			}
			e := Edge{ids[i], ids[j]}
			if seen[e] {
				continue
			}
			seen[e] = true
			b.AddDep(e.From, e.To)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		order := g.TopoOrder()
		if len(order) != n {
			return false
		}
		pos := make(map[OpID]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func fmtNameN(i int) string {
	return "op" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

func TestPrioritiesChain(t *testing.T) {
	g := chain(t, 3) // three 2 s mixes in series
	pr := g.Priorities(unit.Seconds(2))
	// Last op: 2; middle: 2+2+2=6; first: 2+2+2+2+2=10.
	want := []unit.Time{unit.Seconds(10), unit.Seconds(6), unit.Seconds(2)}
	for i, w := range want {
		if pr[i] != w {
			t.Errorf("priority[%d] = %v, want %v", i, pr[i], w)
		}
	}
	if got := g.CriticalPathLength(unit.Seconds(2)); got != unit.Seconds(10) {
		t.Errorf("critical path = %v, want 10s", got)
	}
}

// TestPrioritiesPaperExample reproduces the worked example under
// Algorithm 1: a path o1 -> o5 -> o7 -> o10 with execution times summing
// to 15 s plus three edges at tc = 2 s gives o1 priority 21 s.
func TestPrioritiesPaperExample(t *testing.T) {
	b := NewBuilder("fig2a-path")
	o1 := b.AddOp("o1", Mix, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	o5 := b.AddOp("o5", Heat, unit.Seconds(4), fluid.Fluid{D: 1e-6})
	o7 := b.AddOp("o7", Mix, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	o10 := b.AddOp("o10", Mix, unit.Seconds(5), fluid.Fluid{D: 1e-6})
	b.AddDep(o1, o5)
	b.AddDep(o5, o7)
	b.AddDep(o7, o10)
	g := b.MustBuild()
	pr := g.Priorities(unit.Seconds(2))
	if pr[o1] != unit.Seconds(21) {
		t.Errorf("priority(o1) = %v, want 21s as in the paper", pr[o1])
	}
}

func TestPrioritiesTakeLongestBranch(t *testing.T) {
	b := NewBuilder("branch")
	o1 := mixOp(b, "o1", 2)
	short := mixOp(b, "short", 1)
	long := mixOp(b, "long", 9)
	b.AddDep(o1, short)
	b.AddDep(o1, long)
	g := b.MustBuild()
	pr := g.Priorities(unit.Seconds(2))
	if want := unit.Seconds(2 + 2 + 9); pr[o1] != want {
		t.Errorf("priority(o1) = %v, want %v", pr[o1], want)
	}
}

func TestCountByType(t *testing.T) {
	b := NewBuilder("mixed")
	b.AddOp("m", Mix, unit.Seconds(1), fluid.Fluid{D: 1e-6})
	b.AddOp("h", Heat, unit.Seconds(1), fluid.Fluid{D: 1e-6})
	b.AddOp("d1", Detect, unit.Seconds(1), fluid.Fluid{D: 1e-6})
	b.AddOp("d2", Detect, unit.Seconds(1), fluid.Fluid{D: 1e-6})
	g := b.MustBuild()
	n := g.CountByType()
	if n[Mix] != 1 || n[Heat] != 1 || n[Filter] != 0 || n[Detect] != 2 {
		t.Errorf("CountByType = %v", n)
	}
}

func TestParseOpType(t *testing.T) {
	for _, c := range []struct {
		in   string
		want OpType
	}{{"mix", Mix}, {"HEAT", Heat}, {" filter ", Filter}, {"Detect", Detect}} {
		got, err := ParseOpType(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseOpType(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseOpType("centrifuge"); err == nil {
		t.Error("unknown type not rejected")
	}
}

func TestOpTypeString(t *testing.T) {
	if Mix.String() != "mix" || Detect.String() != "detect" {
		t.Error("OpType.String wrong")
	}
	if OpType(42).String() == "" {
		t.Error("unknown OpType must still format")
	}
}

func TestImmutability(t *testing.T) {
	g := chain(t, 3)
	ops := g.Operations()
	ops[0].Name = "mutated"
	if g.Op(0).Name == "mutated" {
		t.Error("Operations() must return a copy")
	}
	edges := g.Edges()
	if len(edges) > 0 {
		edges[0].From = 99
		if g.Edges()[0].From == 99 {
			t.Error("Edges() must return a copy")
		}
	}
}

func TestMergeCombinesIndependentAssays(t *testing.T) {
	g1 := chain(t, 3)
	b2 := NewBuilder("other")
	h := b2.AddOp("h", Heat, unit.Seconds(4), fluid.Fluid{D: 1e-7})
	d := b2.AddOp("d", Detect, unit.Seconds(2), fluid.Fluid{D: 1e-6})
	b2.AddDep(h, d)
	g2 := b2.MustBuild()

	m, err := Merge("both", g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumOps() != 5 || m.NumEdges() != 3 {
		t.Fatalf("merged shape %d ops %d edges", m.NumOps(), m.NumEdges())
	}
	// Names are namespaced and unique.
	seen := map[string]bool{}
	for _, op := range m.Operations() {
		if seen[op.Name] {
			t.Errorf("duplicate name %q", op.Name)
		}
		seen[op.Name] = true
	}
	if !seen["chain/o1"] || !seen["other/h"] {
		t.Errorf("names not namespaced: %v", seen)
	}
	// The two assays stay disconnected.
	if got := len(m.Sources()); got != 2 {
		t.Errorf("sources = %d, want 2", got)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMergeRejectsBadInputs(t *testing.T) {
	if _, err := Merge("x"); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := Merge("x", nil); err == nil {
		t.Error("nil member accepted")
	}
}
