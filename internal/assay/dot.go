package assay

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the sequencing graph in Graphviz DOT format, one node
// per operation labelled with its name, type and duration, mirroring the
// style of Fig. 2(a) in the paper.
func WriteDOT(w io.Writer, g *Graph) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	for _, op := range g.Operations() {
		fmt.Fprintf(&b, "  o%d [label=\"%s\\n%s %v\"];\n", op.ID, op.Name, op.Type, op.Duration)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  o%d -> o%d;\n", e.From, e.To)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
