package assay

import (
	"bytes"
	"testing"
)

// FuzzDecodeCanonical throws arbitrary bytes at the assay JSON decoder —
// the service accepts this format from the network, so Decode must never
// panic, and any graph it does accept must have a byte-stable canonical
// encoding (a stronger property than FuzzDecode's shape round trip: the
// service cache key hashes MarshalJSON output, so instability would split
// identical assays across cache entries).
func FuzzDecodeCanonical(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","operations":[],"dependencies":[]}`))
	f.Add([]byte(`{"name":"pcr","operations":[
		{"name":"m1","type":"mix","duration":"6s","fluid":"a","diffusion_cm2_per_s":1e-6},
		{"name":"m2","type":"mix","duration":"6s","fluid":"b","diffusion_cm2_per_s":5e-7},
		{"name":"m3","type":"mix","duration":"6s","fluid":"c","diffusion_cm2_per_s":1e-6}],
		"dependencies":[{"from":"m1","to":"m3"},{"from":"m2","to":"m3"}]}`))
	f.Add([]byte(`{"name":"h","operations":[{"name":"h1","type":"heat","duration":"0.2s"}]}`))
	f.Add([]byte(`{"name":"d","operations":[{"name":"d1","type":"detect","duration":"5s"}]}`))
	f.Add([]byte(`{"name":"cyc","operations":[{"name":"a","type":"mix","duration":"1s"},
		{"name":"b","type":"mix","duration":"1s"}],
		"dependencies":[{"from":"a","to":"b"},{"from":"b","to":"a"}]}`))
	f.Add([]byte(`{"name":"dup","operations":[{"name":"a","type":"mix","duration":"1s"},
		{"name":"a","type":"mix","duration":"1s"}]}`))
	f.Add([]byte(`{"name":"bad","operations":[{"name":"a","type":"mix","duration":"-1s"}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte("{\"name\":\"\u0000\",\"operations\":[{\"name\":\"\",\"type\":\"store\",\"duration\":\"1h\"}]}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is correct; panicking is not
		}
		// Accepted graphs must re-encode and decode to the same bytes:
		// the service's cache key hashes MarshalJSON output, so this
		// round trip is what makes content addressing sound.
		first, err := g.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted graph failed to marshal: %v", err)
		}
		g2, err := Decode(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v\nencoding:\n%s", err, first)
		}
		second, err := g2.MarshalJSON()
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("encoding not stable:\nfirst:\n%s\nsecond:\n%s", first, second)
		}
	})
}
