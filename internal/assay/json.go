package assay

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/fluid"
	"repro/internal/unit"
)

// jsonGraph is the on-disk representation consumed by cmd/mfsyn and
// produced by cmd/mfgen. Times are strings in the paper's units ("2s",
// "0.2s"); diffusion coefficients are plain numbers in cm²/s.
type jsonGraph struct {
	Name       string     `json:"name"`
	Operations []jsonOp   `json:"operations"`
	Deps       []jsonEdge `json:"dependencies"`
}

type jsonOp struct {
	Name      string  `json:"name"`
	Type      string  `json:"type"`
	Duration  string  `json:"duration"`
	Fluid     string  `json:"fluid,omitempty"`
	Diffusion float64 `json:"diffusion_cm2_per_s"`
}

type jsonEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// MarshalJSON encodes the graph in the stable on-disk format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.name}
	for _, op := range g.ops {
		jg.Operations = append(jg.Operations, jsonOp{
			Name:      op.Name,
			Type:      op.Type.String(),
			Duration:  op.Duration.String(),
			Fluid:     op.Output.Name,
			Diffusion: float64(op.Output.D),
		})
	}
	for _, e := range g.edges {
		jg.Deps = append(jg.Deps, jsonEdge{From: g.ops[e.From].Name, To: g.ops[e.To].Name})
	}
	return json.MarshalIndent(jg, "", "  ")
}

// Decode reads a graph from JSON, resolving dependency endpoints by
// operation name, and validates it.
func Decode(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("assay: decoding: %w", err)
	}
	b := NewBuilder(jg.Name)
	byName := make(map[string]OpID, len(jg.Operations))
	for _, jop := range jg.Operations {
		t, err := ParseOpType(jop.Type)
		if err != nil {
			return nil, fmt.Errorf("assay %q, operation %q: %w", jg.Name, jop.Name, err)
		}
		dur, err := unit.ParseTime(jop.Duration)
		if err != nil {
			return nil, fmt.Errorf("assay %q, operation %q: %w", jg.Name, jop.Name, err)
		}
		if _, dup := byName[jop.Name]; dup {
			return nil, fmt.Errorf("assay %q: duplicate operation name %q", jg.Name, jop.Name)
		}
		id := b.AddOp(jop.Name, t, dur, fluid.Fluid{Name: jop.Fluid, D: unit.Diffusion(jop.Diffusion)})
		byName[jop.Name] = id
	}
	for _, je := range jg.Deps {
		from, ok := byName[je.From]
		if !ok {
			return nil, fmt.Errorf("assay %q: dependency from unknown operation %q", jg.Name, je.From)
		}
		to, ok := byName[je.To]
		if !ok {
			return nil, fmt.Errorf("assay %q: dependency to unknown operation %q", jg.Name, je.To)
		}
		b.AddDep(from, to)
	}
	return b.Build()
}

// Encode writes the graph as indented JSON followed by a newline.
func Encode(w io.Writer, g *Graph) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
