package assay

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fluid"
	"repro/internal/unit"
)

func sample(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("sample")
	o1 := b.AddOp("o1", Mix, unit.Seconds(3), fluid.Fluid{Name: "lysis-buffer", D: 1e-5})
	o2 := b.AddOp("o2", Heat, unit.Seconds(4.5), fluid.Fluid{Name: "virus", D: 5e-8})
	o3 := b.AddOp("o3", Detect, unit.Seconds(2), fluid.Fluid{Name: "readout", D: 1e-6})
	b.AddDep(o1, o2)
	b.AddDep(o2, o3)
	return b.MustBuild()
}

func TestJSONRoundTrip(t *testing.T) {
	g := sample(t)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name() != g.Name() || g2.NumOps() != g.NumOps() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %q %d/%d vs %q %d/%d",
			g2.Name(), g2.NumOps(), g2.NumEdges(), g.Name(), g.NumOps(), g.NumEdges())
	}
	for i := 0; i < g.NumOps(); i++ {
		a, b := g.Op(OpID(i)), g2.Op(OpID(i))
		if a.Name != b.Name || a.Type != b.Type || a.Duration != b.Duration ||
			a.Output.Name != b.Output.Name || a.Output.D != b.Output.D {
			t.Errorf("op %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestDecodeRejectsUnknownField(t *testing.T) {
	in := `{"name":"x","operations":[{"name":"o1","type":"mix","duration":"2s","diffusion_cm2_per_s":1e-6}],"dependencies":[],"bogus":1}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Error("unknown field not rejected")
	}
}

func TestDecodeRejectsUnknownDependencyName(t *testing.T) {
	in := `{"name":"x","operations":[{"name":"o1","type":"mix","duration":"2s","diffusion_cm2_per_s":1e-6}],"dependencies":[{"from":"o1","to":"nope"}]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Error("unknown dependency target not rejected")
	}
	in = `{"name":"x","operations":[{"name":"o1","type":"mix","duration":"2s","diffusion_cm2_per_s":1e-6}],"dependencies":[{"from":"nope","to":"o1"}]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Error("unknown dependency source not rejected")
	}
}

func TestDecodeRejectsDuplicateNames(t *testing.T) {
	in := `{"name":"x","operations":[
		{"name":"o1","type":"mix","duration":"2s","diffusion_cm2_per_s":1e-6},
		{"name":"o1","type":"mix","duration":"2s","diffusion_cm2_per_s":1e-6}],
		"dependencies":[]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Error("duplicate operation names not rejected")
	}
}

func TestDecodeRejectsBadType(t *testing.T) {
	in := `{"name":"x","operations":[{"name":"o1","type":"shake","duration":"2s","diffusion_cm2_per_s":1e-6}],"dependencies":[]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Error("bad type not rejected")
	}
}

func TestDecodeRejectsBadDuration(t *testing.T) {
	in := `{"name":"x","operations":[{"name":"o1","type":"mix","duration":"fast","diffusion_cm2_per_s":1e-6}],"dependencies":[]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Error("bad duration not rejected")
	}
}

func TestDecodeRejectsCycle(t *testing.T) {
	in := `{"name":"x","operations":[
		{"name":"o1","type":"mix","duration":"2s","diffusion_cm2_per_s":1e-6},
		{"name":"o2","type":"mix","duration":"2s","diffusion_cm2_per_s":1e-6}],
		"dependencies":[{"from":"o1","to":"o2"},{"from":"o2","to":"o1"}]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Error("cyclic JSON assay not rejected")
	}
}

func TestWriteDOT(t *testing.T) {
	g := sample(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "o0 -> o1", "o1 -> o2", "heat", "mix"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	g := NewBuilder("seed")
	o1 := g.AddOp("o1", Mix, unit.Seconds(2), fluid.Fluid{D: 1e-6})
	o2 := g.AddOp("o2", Detect, unit.Seconds(1), fluid.Fluid{D: 1e-5})
	g.AddDep(o1, o2)
	_ = Encode(&buf, g.MustBuild())
	f.Add(buf.String())
	f.Add(`{"name":"x","operations":[],"dependencies":[]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, s string) {
		decoded, err := Decode(strings.NewReader(s))
		if err != nil {
			return
		}
		// Anything that decodes must be a valid graph and survive a
		// round trip.
		if err := decoded.Validate(); err != nil {
			t.Fatalf("Decode accepted invalid graph: %v", err)
		}
		var out bytes.Buffer
		if err := Encode(&out, decoded); err != nil {
			t.Fatal(err)
		}
		again, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.NumOps() != decoded.NumOps() || again.NumEdges() != decoded.NumEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}
