package benchdata

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/assay"
)

// TestCheckedInArtifactsMatchGenerators verifies that the JSON files under
// assays/ (checked-in, user-inspectable copies of the benchmark suite)
// are exactly what the generators produce — they can never drift apart.
func TestCheckedInArtifactsMatchGenerators(t *testing.T) {
	root := filepath.Join("..", "..", "assays")
	if _, err := os.Stat(root); err != nil {
		t.Skipf("assays directory not present: %v", err)
	}
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			path := filepath.Join(root, strings.ToLower(bm.Name)+".json")
			f, err := os.Open(path)
			if err != nil {
				t.Fatalf("missing artifact: %v", err)
			}
			defer f.Close()
			got, err := assay.Decode(f)
			if err != nil {
				t.Fatal(err)
			}
			want := bm.Graph
			if got.Name() != want.Name() || got.NumOps() != want.NumOps() || got.NumEdges() != want.NumEdges() {
				t.Fatalf("artifact shape differs: %s %d/%d vs %s %d/%d",
					got.Name(), got.NumOps(), got.NumEdges(),
					want.Name(), want.NumOps(), want.NumEdges())
			}
			for i := 0; i < want.NumOps(); i++ {
				a, b := got.Op(assay.OpID(i)), want.Op(assay.OpID(i))
				if a.Name != b.Name || a.Type != b.Type || a.Duration != b.Duration || a.Output.D != b.Output.D {
					t.Fatalf("operation %d differs: %+v vs %+v", i, a, b)
				}
			}
			ge, we := got.Edges(), want.Edges()
			for i := range we {
				if ge[i] != we[i] {
					t.Fatalf("edge %d differs", i)
				}
			}
		})
	}
}
