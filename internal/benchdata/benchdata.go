// Package benchdata provides the seven benchmarks evaluated in Table I of
// the paper — three real-life biochemical applications (PCR, IVD, CPA) and
// four synthetic bioassays — plus the motivating example of Fig. 2(a).
//
// The original benchmark netlists (taken by the paper from Liu et al.,
// DAC'17) are not publicly distributed, so this package reconstructs them
// from their published characteristics: the exact operation counts and
// component allocations of Table I, the operation-type mixes implied by
// the allocations, and the dependency shapes these assays are known to
// have in the literature (mixing trees for PCR, parallel mix→detect
// chains for IVD, a serial-dilution backbone with detection branches for
// CPA, and layered random DAGs for the synthetic set). All generators are
// deterministic; the synthetic set uses fixed seeds.
package benchdata

import (
	"fmt"
	"sync"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/rng"
	"repro/internal/unit"
)

// Benchmark couples an assay with the component allocation used for it in
// Table I.
type Benchmark struct {
	Name  string
	Graph *assay.Graph
	Alloc chip.Allocation
}

// memo caches the generated benchmark set. Generation is deterministic
// and an assay.Graph is immutable once built (every accessor is
// read-only and the fields are unexported), so handing every caller the
// same graphs is safe — and it matters: the synthesis service resolves a
// benchmark per request, and regenerating the assay dominated the warm
// serving path's allocation profile before this cache existed.
var memo struct {
	once   sync.Once
	list   []Benchmark
	byName map[string]Benchmark
}

func benchmarks() []Benchmark {
	memo.once.Do(func() {
		memo.list = []Benchmark{
			PCR(),
			IVD(),
			CPA(),
			Synthetic(1),
			Synthetic(2),
			Synthetic(3),
			Synthetic(4),
		}
		memo.byName = make(map[string]Benchmark, len(memo.list))
		for _, b := range memo.list {
			memo.byName[b.Name] = b
		}
	})
	return memo.list
}

// All returns the seven benchmarks in Table I order. The returned slice
// is fresh, but the graphs are shared — treat them as read-only (they
// are: assay.Graph has no mutating API).
func All() []Benchmark {
	return append([]Benchmark(nil), benchmarks()...)
}

// ByName returns the named benchmark ("PCR", "IVD", "CPA", "Synthetic1"…).
func ByName(name string) (Benchmark, error) {
	benchmarks()
	b, ok := memo.byName[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("benchdata: unknown benchmark %q", name)
	}
	return b, nil
}

// PCR is the polymerase-chain-reaction sample-preparation assay: a binary
// mixing tree of 7 mix operations, run on 3 mixers (Table I row 1).
func PCR() Benchmark {
	b := assay.NewBuilder("PCR")
	dur := unit.Seconds(6)
	var leaves [4]assay.OpID
	for i := range leaves {
		leaves[i] = b.AddOp(fmt.Sprintf("mix%d", i+1), assay.Mix, dur, pick(i))
	}
	m5 := b.AddOp("mix5", assay.Mix, dur, pick(4))
	m6 := b.AddOp("mix6", assay.Mix, dur, pick(5))
	m7 := b.AddOp("mix7", assay.Mix, dur, pick(6))
	b.AddDep(leaves[0], m5)
	b.AddDep(leaves[1], m5)
	b.AddDep(leaves[2], m6)
	b.AddDep(leaves[3], m6)
	b.AddDep(m5, m7)
	b.AddDep(m6, m7)
	return Benchmark{Name: "PCR", Graph: b.MustBuild(), Alloc: chip.Allocation{3, 0, 0, 0}}
}

// IVD is the in-vitro diagnostics assay: six independent sample/reagent
// pairs, each mixed and then optically detected — 12 operations on
// 3 mixers and 2 detectors (Table I row 2).
func IVD() Benchmark {
	b := assay.NewBuilder("IVD")
	for i := 0; i < 6; i++ {
		m := b.AddOp(fmt.Sprintf("mixS%dR%d", i/2+1, i%2+1), assay.Mix, unit.Seconds(5), pick(i))
		d := b.AddOp(fmt.Sprintf("det%d", i+1), assay.Detect, unit.Seconds(4), pick(i+3))
		b.AddDep(m, d)
	}
	return Benchmark{Name: "IVD", Graph: b.MustBuild(), Alloc: chip.Allocation{3, 0, 0, 2}}
}

// CPA is the colorimetric protein assay: a serial-dilution backbone whose
// stages branch into further dilution mixes that end in colorimetric
// detections — 55 operations on 8 mixers and 2 detectors (Table I row 3).
// All detections read the same chromogenic dye, which is a fast-washing
// small molecule.
func CPA() Benchmark {
	b := assay.NewBuilder("CPA")
	mix := func(name string, i int) assay.OpID {
		return b.AddOp(name, assay.Mix, unit.Seconds(5), pick(i))
	}
	dye, _ := fluid.ByName("reagent-dye")
	det := func(name string) assay.OpID {
		return b.AddOp(name, assay.Detect, unit.Seconds(4), fluid.Fluid{Name: dye.Name, D: dye.D})
	}
	n := 0
	next := func() int { n++; return n }

	// Serial dilution backbone: dil1 -> dil2 -> ... -> dil8.
	const backboneLen = 8
	backbone := make([]assay.OpID, backboneLen)
	for i := range backbone {
		backbone[i] = mix(fmt.Sprintf("dil%d", i+1), next())
		if i > 0 {
			b.AddDep(backbone[i-1], backbone[i])
		}
	}
	// Stages 1-7 feed a five-mix dilution branch ending in a detection
	// (6 ops each); the final stage feeds a four-mix calibration chain
	// with its own detection (5 ops): 8 + 7*6 + 5 = 55 operations.
	for i := 0; i < 7; i++ {
		m1 := mix(fmt.Sprintf("b%d_buf", i+1), next())
		m2 := mix(fmt.Sprintf("b%d_rgt", i+1), next())
		m3 := mix(fmt.Sprintf("b%d_dl1", i+1), next())
		m4 := mix(fmt.Sprintf("b%d_dl2", i+1), next())
		m5 := mix(fmt.Sprintf("b%d_dl3", i+1), next())
		d := det(fmt.Sprintf("b%d_det", i+1))
		b.AddDep(backbone[i], m1)
		b.AddDep(m1, m2)
		b.AddDep(m2, m3)
		b.AddDep(m3, m4)
		b.AddDep(m4, m5)
		b.AddDep(m5, d)
	}
	c1 := mix("cal_buf", next())
	c2 := mix("cal_rgt", next())
	c3 := mix("cal_dl1", next())
	c4 := mix("cal_dl2", next())
	cd := det("cal_det")
	b.AddDep(backbone[backboneLen-1], c1)
	b.AddDep(c1, c2)
	b.AddDep(c2, c3)
	b.AddDep(c3, c4)
	b.AddDep(c4, cd)
	return Benchmark{Name: "CPA", Graph: b.MustBuild(), Alloc: chip.Allocation{8, 0, 0, 2}}
}

// syntheticSpec mirrors Table I rows 4-7.
var syntheticSpec = []struct {
	ops   int
	alloc chip.Allocation
	seed  uint64
}{
	{20, chip.Allocation{3, 3, 2, 1}, 1001},
	{30, chip.Allocation{5, 2, 2, 2}, 1002},
	{40, chip.Allocation{6, 4, 4, 2}, 1003},
	{50, chip.Allocation{7, 4, 4, 3}, 1004},
}

// Synthetic returns synthetic benchmark i in 1..4, matching the operation
// counts and allocations of Table I rows 4-7.
func Synthetic(i int) Benchmark {
	if i < 1 || i > len(syntheticSpec) {
		panic(fmt.Sprintf("benchdata: synthetic benchmark index %d out of range", i))
	}
	spec := syntheticSpec[i-1]
	name := fmt.Sprintf("Synthetic%d", i)
	g := GenerateSynthetic(name, spec.ops, spec.alloc, spec.seed)
	return Benchmark{Name: name, Graph: g, Alloc: spec.alloc}
}

// GenerateSynthetic builds a random layered bioassay with exactly ops
// operations whose type mix is proportional to the allocation tuple, using
// the given seed. It is exported so cmd/mfgen and the parameter-sweep
// example can produce additional workloads.
func GenerateSynthetic(name string, ops int, alloc chip.Allocation, seed uint64) *assay.Graph {
	if ops < 1 {
		panic("benchdata: synthetic assay needs at least one operation")
	}
	r := rng.New(seed)
	b := assay.NewBuilder(name)

	// Choose operation types proportionally to the allocation so every
	// allocated component kind has work, keeping a mix majority as in the
	// paper's real-life assays.
	types := make([]assay.OpType, 0, ops)
	total := alloc.Total()
	if total == 0 {
		total = 1
	}
	for t := 0; t < assay.NumOpTypes; t++ {
		n := alloc[t] * ops / total
		if alloc[t] > 0 && n == 0 {
			n = 1
		}
		for k := 0; k < n && len(types) < ops; k++ {
			types = append(types, assay.OpType(t))
		}
	}
	for len(types) < ops {
		types = append(types, assay.Mix)
	}
	// Shuffle types deterministically, but keep detectors out of the
	// first layer: detections observe products of earlier operations.
	perm := r.Perm(len(types))
	shuffled := make([]assay.OpType, len(types))
	for i, p := range perm {
		shuffled[i] = types[p]
	}

	// Layered DAG: ~4 ops per layer.
	const layerWidth = 4
	ids := make([]assay.OpID, 0, ops)
	layerOf := make(map[assay.OpID]int)
	for i := 0; i < ops; i++ {
		layer := i / layerWidth
		ty := shuffled[i]
		if layer == 0 && ty == assay.Detect {
			ty = assay.Mix
		}
		dur := unit.Seconds(float64(3 + r.Intn(4))) // 3..6 s
		id := b.AddOp(fmt.Sprintf("%s%d", ty, i+1), ty, dur, pick(r.Intn(1000)))
		ids = append(ids, id)
		layerOf[id] = layer
	}
	// Dependencies: each non-first-layer op draws 1-2 parents from
	// earlier layers, preferring the immediately preceding one.
	for _, id := range ids {
		layer := layerOf[id]
		if layer == 0 {
			continue
		}
		nPar := 1 + r.Intn(2)
		seen := map[assay.OpID]bool{}
		for k := 0; k < nPar; k++ {
			var cand []assay.OpID
			for _, p := range ids {
				pl := layerOf[p]
				if pl < layer && (pl == layer-1 || r.Intn(3) == 0) {
					cand = append(cand, p)
				}
			}
			if len(cand) == 0 {
				for _, p := range ids {
					if layerOf[p] < layer {
						cand = append(cand, p)
					}
				}
			}
			p := cand[r.Intn(len(cand))]
			if !seen[p] {
				seen[p] = true
				b.AddDep(p, id)
			}
		}
	}
	return b.MustBuild()
}

// Fig2a reconstructs the 10-operation motivating example of Fig. 2(a):
// the longest path o1→o5→o7→o10 has priority 21 s at t_c = 2 s, exactly
// as worked through under Algorithm 1 in the paper.
func Fig2a() *assay.Graph {
	b := assay.NewBuilder("fig2a")
	// Diffusion coefficients follow Fig. 2(b)'s spirit: o1 produces the
	// hardest-to-wash fluid of the assay.
	o1 := b.AddOp("o1", assay.Mix, unit.Seconds(3), fluid.Fluid{Name: "o1-out", D: 5e-8})
	o2 := b.AddOp("o2", assay.Mix, unit.Seconds(4), fluid.Fluid{Name: "o2-out", D: 1e-5})
	o3 := b.AddOp("o3", assay.Mix, unit.Seconds(5), fluid.Fluid{Name: "o3-out", D: 1e-6})
	o4 := b.AddOp("o4", assay.Mix, unit.Seconds(4), fluid.Fluid{Name: "o4-out", D: 2e-7})
	o5 := b.AddOp("o5", assay.Heat, unit.Seconds(4), fluid.Fluid{Name: "o5-out", D: 1e-6})
	o6 := b.AddOp("o6", assay.Mix, unit.Seconds(5), fluid.Fluid{Name: "o6-out", D: 3e-6})
	o7 := b.AddOp("o7", assay.Mix, unit.Seconds(3), fluid.Fluid{Name: "o7-out", D: 1e-5})
	o8 := b.AddOp("o8", assay.Mix, unit.Seconds(4), fluid.Fluid{Name: "o8-out", D: 6e-7})
	o9 := b.AddOp("o9", assay.Heat, unit.Seconds(3), fluid.Fluid{Name: "o9-out", D: 1e-6})
	o10 := b.AddOp("o10", assay.Mix, unit.Seconds(5), fluid.Fluid{Name: "o10-out", D: 1e-6})
	b.AddDep(o1, o5)
	b.AddDep(o2, o7)
	b.AddDep(o5, o7)
	b.AddDep(o3, o6)
	b.AddDep(o4, o6)
	b.AddDep(o6, o8)
	b.AddDep(o8, o9)
	b.AddDep(o7, o10)
	b.AddDep(o9, o10)
	return b.MustBuild()
}

// Fig2aAlloc is a component allocation suited to the motivating example:
// three mixers and one heater, as in Fig. 3's five-component discussion
// minus the dedicated storage that DCSA removes.
func Fig2aAlloc() chip.Allocation { return chip.Allocation{3, 1, 0, 0} }

// pick returns a deterministic fluid from the species palette.
func pick(i int) fluid.Fluid {
	s := fluid.Pick(i)
	return fluid.Fluid{Name: s.Name, D: s.D}
}
