package benchdata

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/unit"
)

// TestTableIShapes pins every benchmark to the operation count and
// allocation published in Table I.
func TestTableIShapes(t *testing.T) {
	want := []struct {
		name  string
		ops   int
		alloc chip.Allocation
	}{
		{"PCR", 7, chip.Allocation{3, 0, 0, 0}},
		{"IVD", 12, chip.Allocation{3, 0, 0, 2}},
		{"CPA", 55, chip.Allocation{8, 0, 0, 2}},
		{"Synthetic1", 20, chip.Allocation{3, 3, 2, 1}},
		{"Synthetic2", 30, chip.Allocation{5, 2, 2, 2}},
		{"Synthetic3", 40, chip.Allocation{6, 4, 4, 2}},
		{"Synthetic4", 50, chip.Allocation{7, 4, 4, 3}},
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d benchmarks, want %d", len(all), len(want))
	}
	for i, w := range want {
		b := all[i]
		if b.Name != w.name {
			t.Errorf("benchmark %d name = %q, want %q", i, b.Name, w.name)
		}
		if got := b.Graph.NumOps(); got != w.ops {
			t.Errorf("%s has %d ops, want %d", b.Name, got, w.ops)
		}
		if b.Alloc != w.alloc {
			t.Errorf("%s allocation = %v, want %v", b.Name, b.Alloc, w.alloc)
		}
		if err := b.Graph.Validate(); err != nil {
			t.Errorf("%s graph invalid: %v", b.Name, err)
		}
		if err := b.Alloc.Covers(b.Graph); err != nil {
			t.Errorf("%s allocation does not cover assay: %v", b.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("CPA")
	if err != nil || b.Name != "CPA" {
		t.Errorf("ByName(CPA) = %v, %v", b.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName must reject unknown benchmarks")
	}
}

func TestPCRIsBinaryTree(t *testing.T) {
	g := PCR().Graph
	if len(g.Sinks()) != 1 {
		t.Errorf("PCR sinks = %v, want single root", g.Sinks())
	}
	if len(g.Sources()) != 4 {
		t.Errorf("PCR sources = %v, want 4 leaves", g.Sources())
	}
	for _, op := range g.Operations() {
		if op.Type != assay.Mix {
			t.Errorf("PCR op %q is %v, want mix", op.Name, op.Type)
		}
		if n := len(g.Parents(op.ID)); n != 0 && n != 2 {
			t.Errorf("PCR op %q has %d parents, want 0 or 2", op.Name, n)
		}
	}
}

func TestIVDStructure(t *testing.T) {
	g := IVD().Graph
	n := g.CountByType()
	if n[assay.Mix] != 6 || n[assay.Detect] != 6 {
		t.Errorf("IVD type counts = %v, want 6 mixes and 6 detects", n)
	}
	// Every detect has exactly one mix parent.
	for _, op := range g.Operations() {
		if op.Type == assay.Detect {
			ps := g.Parents(op.ID)
			if len(ps) != 1 || g.Op(ps[0]).Type != assay.Mix {
				t.Errorf("IVD detect %q parents = %v", op.Name, ps)
			}
		}
	}
}

func TestCPAStructure(t *testing.T) {
	g := CPA().Graph
	n := g.CountByType()
	if n[assay.Detect] != 8 {
		t.Errorf("CPA detects = %d, want 8", n[assay.Detect])
	}
	if n[assay.Mix] != 47 {
		t.Errorf("CPA mixes = %d, want 47", n[assay.Mix])
	}
	// Detects are all sinks.
	for _, s := range g.Sinks() {
		if g.Op(s).Type != assay.Detect {
			t.Errorf("CPA sink %q is %v", g.Op(s).Name, g.Op(s).Type)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(2).Graph
	b := Synthetic(2).Graph
	if a.NumOps() != b.NumOps() || a.NumEdges() != b.NumEdges() {
		t.Fatal("Synthetic(2) not deterministic in shape")
	}
	for i := 0; i < a.NumOps(); i++ {
		x, y := a.Op(assay.OpID(i)), b.Op(assay.OpID(i))
		if x.Name != y.Name || x.Type != y.Type || x.Duration != y.Duration || x.Output.D != y.Output.D {
			t.Fatalf("Synthetic(2) op %d differs between runs", i)
		}
	}
}

func TestSyntheticTypeCoverage(t *testing.T) {
	// Every allocated component type must have at least one operation;
	// otherwise Table I's allocations would be wasteful.
	for i := 1; i <= 4; i++ {
		b := Synthetic(i)
		n := b.Graph.CountByType()
		for ty := 0; ty < assay.NumOpTypes; ty++ {
			if b.Alloc[ty] > 0 && n[ty] == 0 {
				t.Errorf("Synthetic%d allocates %v but has no such op", i, assay.OpType(ty))
			}
			if b.Alloc[ty] == 0 && n[ty] > 0 {
				t.Errorf("Synthetic%d has %v ops but no component", i, assay.OpType(ty))
			}
		}
	}
}

func TestSyntheticPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Synthetic(5) must panic")
		}
	}()
	Synthetic(5)
}

func TestGenerateSyntheticCustom(t *testing.T) {
	g := GenerateSynthetic("custom", 25, chip.Allocation{2, 1, 0, 1}, 99)
	if g.NumOps() != 25 {
		t.Errorf("custom synthetic ops = %d", g.NumOps())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Different seeds give different graphs.
	h := GenerateSynthetic("custom", 25, chip.Allocation{2, 1, 0, 1}, 100)
	if g.NumEdges() == h.NumEdges() {
		same := true
		ge, he := g.Edges(), h.Edges()
		for i := range ge {
			if ge[i] != he[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical edge sets")
		}
	}
}

func TestFig2aMatchesPaper(t *testing.T) {
	g := Fig2a()
	if g.NumOps() != 10 {
		t.Fatalf("fig2a ops = %d, want 10", g.NumOps())
	}
	pr := g.Priorities(unit.Seconds(2))
	// The paper: priority(o1) = 21 s along o1→o5→o7→o10.
	if pr[0] != unit.Seconds(21) {
		t.Errorf("priority(o1) = %v, want 21s", pr[0])
	}
	if err := Fig2aAlloc().Covers(g); err != nil {
		t.Error(err)
	}
}
