// Package bound computes lower bounds on a bioassay's completion time.
// They make heuristic quality measurable without an exact solver: a
// schedule whose makespan equals a bound is provably optimal, and the
// ratio makespan/bound upper-bounds the optimality gap everywhere else.
//
// Two classic bounds apply:
//
//   - the critical path: the longest chain of operations plus one
//     transport constant per dependency edge (no resource limits);
//   - the resource bound: for each component type, the total execution
//     time of its operations divided by the number of allocated
//     components (no dependencies).
package bound

import (
	"fmt"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/unit"
)

// Bounds holds the individual lower bounds of an instance.
type Bounds struct {
	// CriticalPath is the dependency bound.
	CriticalPath unit.Time
	// Resource[t] is the load bound of component type t (0 when no such
	// operations exist).
	Resource [assay.NumOpTypes]unit.Time
	// Best is the largest of all bounds: every feasible schedule takes at
	// least this long.
	Best unit.Time
}

// Compute returns the lower bounds for assay g under allocation alloc
// with transport constant tc.
func Compute(g *assay.Graph, alloc chip.Allocation, tc unit.Time) (Bounds, error) {
	var b Bounds
	if g == nil {
		return b, fmt.Errorf("bound: nil assay")
	}
	if err := alloc.Covers(g); err != nil {
		return b, err
	}
	// In-place consumption can eliminate the transport on every edge, so
	// the dependency bound charges only execution times along the longest
	// chain — a true lower bound for any binding. (Charging tc per edge
	// would overestimate when chains collapse onto one component.)
	b.CriticalPath = g.CriticalPathLength(0)
	_ = tc

	var load [assay.NumOpTypes]unit.Time
	for _, op := range g.Operations() {
		load[op.Type] += op.Duration
	}
	for t := 0; t < assay.NumOpTypes; t++ {
		if load[t] == 0 {
			continue
		}
		n := unit.Time(alloc[t])
		// ceil(load/n)
		b.Resource[t] = (load[t] + n - 1) / n
		if b.Resource[t] > b.Best {
			b.Best = b.Resource[t]
		}
	}
	if b.CriticalPath > b.Best {
		b.Best = b.CriticalPath
	}
	return b, nil
}

// GapPct returns how far a makespan is above the best lower bound, in
// percent (0 means provably optimal).
func (b Bounds) GapPct(makespan unit.Time) float64 {
	if b.Best <= 0 {
		return 0
	}
	return 100 * float64(makespan-b.Best) / float64(b.Best)
}
