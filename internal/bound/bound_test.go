package bound

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/schedule"
	"repro/internal/unit"
)

func TestComputeChain(t *testing.T) {
	b := assay.NewBuilder("chain")
	prev := assay.NoOp
	for i := 0; i < 4; i++ {
		id := b.AddOp(string(rune('a'+i)), assay.Mix, unit.Seconds(2), fluid.Fluid{D: 1e-6})
		if prev != assay.NoOp {
			b.AddDep(prev, id)
		}
		prev = id
	}
	g := b.MustBuild()
	bd, err := Compute(g, chip.Allocation{1, 0, 0, 0}, unit.Seconds(2))
	if err != nil {
		t.Fatal(err)
	}
	// Chain of four 2 s mixes: both bounds are 8 s.
	if bd.CriticalPath != unit.Seconds(8) {
		t.Errorf("critical path = %v", bd.CriticalPath)
	}
	if bd.Resource[assay.Mix] != unit.Seconds(8) {
		t.Errorf("resource bound = %v", bd.Resource[assay.Mix])
	}
	if bd.Best != unit.Seconds(8) {
		t.Errorf("best = %v", bd.Best)
	}
	// The in-place chain schedule achieves the bound exactly.
	res, err := schedule.Schedule(g, chip.Allocation{1, 0, 0, 0}.Instantiate(), schedule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != bd.Best {
		t.Errorf("chain schedule %v != bound %v (should be provably optimal)", res.Makespan, bd.Best)
	}
	if bd.GapPct(res.Makespan) != 0 {
		t.Errorf("gap = %v", bd.GapPct(res.Makespan))
	}
}

func TestResourceBoundDominatesWhenParallel(t *testing.T) {
	// Ten independent 3 s mixes on 2 mixers: resource bound 15 s, chain
	// bound 3 s.
	b := assay.NewBuilder("par")
	for i := 0; i < 10; i++ {
		b.AddOp(string(rune('a'+i)), assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	}
	g := b.MustBuild()
	bd, err := Compute(g, chip.Allocation{2, 0, 0, 0}, unit.Seconds(2))
	if err != nil {
		t.Fatal(err)
	}
	if bd.Resource[assay.Mix] != unit.Seconds(15) {
		t.Errorf("resource bound = %v, want 15s", bd.Resource[assay.Mix])
	}
	if bd.Best != unit.Seconds(15) {
		t.Errorf("best = %v", bd.Best)
	}
}

// TestBoundsHoldOnAllBenchmarks is the soundness property: no scheduler
// may ever beat a lower bound.
func TestBoundsHoldOnAllBenchmarks(t *testing.T) {
	for _, bm := range benchdata.All() {
		bd, err := Compute(bm.Graph, bm.Alloc, schedule.DefaultOptions().TC)
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range []struct {
			name string
			fn   func() (*schedule.Result, error)
		}{
			{"ours", func() (*schedule.Result, error) {
				return schedule.Schedule(bm.Graph, bm.Alloc.Instantiate(), schedule.DefaultOptions())
			}},
			{"BA", func() (*schedule.Result, error) {
				return schedule.ScheduleBaseline(bm.Graph, bm.Alloc.Instantiate(), schedule.DefaultOptions())
			}},
		} {
			res, err := run.fn()
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan < bd.Best {
				t.Errorf("%s/%s: makespan %v beats lower bound %v — bound or scheduler broken",
					bm.Name, run.name, res.Makespan, bd.Best)
			}
		}
		ours, _ := schedule.Schedule(bm.Graph, bm.Alloc.Instantiate(), schedule.DefaultOptions())
		t.Logf("%s: bound %v, ours %v (gap %.1f%%)", bm.Name, bd.Best, ours.Makespan, bd.GapPct(ours.Makespan))
	}
}

func TestComputeRejectsBadInputs(t *testing.T) {
	if _, err := Compute(nil, chip.Allocation{1, 0, 0, 0}, unit.Seconds(2)); err == nil {
		t.Error("nil assay accepted")
	}
	bm := benchdata.PCR()
	if _, err := Compute(bm.Graph, chip.Allocation{0, 0, 0, 1}, unit.Seconds(2)); err == nil {
		t.Error("non-covering allocation accepted")
	}
}
