// Package breaker is the load-shedding circuit breaker shared by the
// synthesis service's submit path and the cluster forwarder. Transient
// failure of the guarded resource (a full queue, an unreachable peer) is
// handled by the caller's retry with backoff; the breaker exists for the
// pathological regime where the resource stays bad across retries for
// many consecutive attempts — there, burning every caller's retry budget
// just adds latency to answers that will all fail anyway.
//
// States follow the classic pattern. Closed: requests pass; each
// attempt that still finds the resource bad after its retries counts one
// overflow, and any success resets the count. Open (count reached the
// threshold): requests are shed immediately without touching the
// resource, until the cooldown elapses. Half-open (first request after
// cooldown): exactly one probe passes through; its outcome closes or
// re-opens the breaker.
package breaker

import (
	"sync"
	"time"
)

// Breaker is one circuit breaker. A nil *Breaker is valid and always
// allows (the disabled state), so callers can thread an optional breaker
// without nil checks.
type Breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive overflows to open; <=0 means disabled
	cooldown  time.Duration // how long open lasts before a probe is allowed
	now       func() time.Time

	overflows int       // consecutive overflow count while closed
	openUntil time.Time // nonzero while open
	probing   bool      // a half-open probe is in flight
}

// New builds a breaker that opens after threshold consecutive overflows
// and stays open for cooldown. threshold <= 0 disables the breaker
// entirely. now overrides the clock for tests; nil selects time.Now.
func New(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may attempt the resource. A false
// return means shed immediately. A true return from the half-open state
// claims the probe slot: the caller must report the outcome via Success
// or Overflow, or the breaker stays half-open with the slot taken.
func (b *Breaker) Allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if b.now().Before(b.openUntil) {
		return false
	}
	// Cooldown elapsed: admit a single probe.
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// Success records an attempt that got through (the resource worked, or
// failed for a non-overflow reason). Closes the breaker and clears the
// count.
func (b *Breaker) Success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.overflows = 0
	b.openUntil = time.Time{}
	b.probing = false
}

// Overflow records an attempt that exhausted its retries against a bad
// resource. Returns true if this event opened (or re-opened) the breaker.
func (b *Breaker) Overflow() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		// Failed probe: straight back to open for another cooldown.
		b.probing = false
		b.openUntil = b.now().Add(b.cooldown)
		return true
	}
	b.overflows++
	if b.overflows >= b.threshold && b.openUntil.IsZero() {
		b.openUntil = b.now().Add(b.cooldown)
		return true
	}
	return false
}

// State returns "closed", "open", "half-open" or "disabled" for metrics.
func (b *Breaker) State() string {
	if b == nil || b.threshold <= 0 {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openUntil.IsZero():
		return "closed"
	case b.now().Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}
