package breaker

import (
	"testing"
	"time"
)

// fakeClock lets breaker tests step time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerOpensOnConsecutiveOverflows(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := New(3, time.Second, clk.now)
	for i := 0; i < 2; i++ {
		if b.Overflow() {
			t.Fatalf("breaker opened after %d overflows, threshold 3", i+1)
		}
		if !b.Allow() {
			t.Fatalf("closed breaker shed a request after %d overflows", i+1)
		}
	}
	if !b.Overflow() {
		t.Fatal("third consecutive overflow did not open the breaker")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := New(3, time.Second, nil)
	b.Overflow()
	b.Overflow()
	b.Success()
	if b.Overflow() {
		t.Fatal("overflow count survived a success")
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := New(1, time.Second, clk.now)
	b.Overflow() // opens
	clk.advance(2 * time.Second)
	if got := b.State(); got != "half-open" {
		t.Fatalf("state after cooldown = %q, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: back to open for a fresh cooldown.
	if !b.Overflow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request")
	}
	// Probe succeeds after the next cooldown: fully closed.
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker denied the second probe")
	}
	b.Success()
	if got := b.State(); got != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker shed requests")
	}
}

func TestBreakerDisabled(t *testing.T) {
	for _, b := range []*Breaker{nil, New(0, time.Second, nil), New(-1, time.Second, nil)} {
		for i := 0; i < 100; i++ {
			b.Overflow()
		}
		if !b.Allow() {
			t.Fatal("disabled breaker shed a request")
		}
		if got := b.State(); got != "disabled" {
			t.Fatalf("state = %q, want disabled", got)
		}
	}
}

func TestBreakerNonConsecutiveOverflowsStayClosed(t *testing.T) {
	b := New(3, time.Second, nil)
	for i := 0; i < 20; i++ {
		b.Overflow()
		b.Overflow()
		b.Success()
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("interleaved successes still opened the breaker: %q", got)
	}
}
