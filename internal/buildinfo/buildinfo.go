// Package buildinfo derives a version string for the repro command-line
// tools from the Go build metadata, so every binary answers -version
// without a hand-maintained constant or linker flags.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Version renders a one-line version banner for the named command:
// module version (or VCS revision and commit time when built from a
// checkout), Go toolchain, and GOOS/GOARCH.
func Version(cmd string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s (%s, %s/%s)", cmd, describe(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
	return b.String()
}

// describe condenses debug.ReadBuildInfo into a short identifier.
func describe() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "(devel)"
	}
	ver := bi.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	var rev, at string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return ver
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	if at != "" {
		rev += " " + at
	}
	return fmt.Sprintf("%s %s", ver, rev)
}
