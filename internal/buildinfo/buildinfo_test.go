package buildinfo

import (
	"strings"
	"testing"
)

func TestVersionMentionsCommandAndToolchain(t *testing.T) {
	v := Version("mfserved")
	if !strings.HasPrefix(v, "mfserved ") {
		t.Fatalf("version %q does not lead with the command name", v)
	}
	if !strings.Contains(v, "go1") {
		t.Fatalf("version %q does not name the Go toolchain", v)
	}
	if strings.Contains(v, "\n") {
		t.Fatalf("version %q is not one line", v)
	}
}
