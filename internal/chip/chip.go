// Package chip models the on-chip resources of a flow-based microfluidic
// biochip: the component library (mixers, heaters, filters, detectors),
// component instances allocated to an assay, and the allocation tuples
// used in Table I of the paper, written as (Mixers, Heaters, Filters,
// Detectors).
package chip

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/assay"
)

// CompID identifies an allocated component instance. IDs are dense
// integers in allocation order.
type CompID int

// NoComp is the invalid component ID.
const NoComp CompID = -1

// Footprint is a component's bounding box on the placement grid, in cells.
type Footprint struct {
	W int // width in grid cells
	H int // height in grid cells
}

// Kind is a component type in the library. It corresponds one-to-one with
// assay.OpType: an operation may only be bound to a component of its type.
type Kind struct {
	Type assay.OpType
	Name string
	Footprint
}

// DefaultLibrary returns the built-in component library. Footprints follow
// the usual flow-layer conventions: rotary mixers are the largest
// components, detectors the smallest.
func DefaultLibrary() []Kind {
	return []Kind{
		{Type: assay.Mix, Name: "Mixer", Footprint: Footprint{W: 4, H: 3}},
		{Type: assay.Heat, Name: "Heater", Footprint: Footprint{W: 3, H: 2}},
		{Type: assay.Filter, Name: "Filter", Footprint: Footprint{W: 3, H: 2}},
		{Type: assay.Detect, Name: "Detector", Footprint: Footprint{W: 2, H: 2}},
	}
}

// KindFor returns the library entry for the given operation type.
func KindFor(t assay.OpType) Kind {
	for _, k := range DefaultLibrary() {
		if k.Type == t {
			return k
		}
	}
	// assay.OpType.Valid() gates every call site; reaching here is a bug.
	panic(fmt.Sprintf("chip: no library entry for operation type %v", t))
}

// Component is one allocated instance, e.g. "Mixer2".
type Component struct {
	ID   CompID
	Kind Kind
	// Index is the 1-based index among components of the same type, used
	// for display names like the paper's Mixer1..Mixer3.
	Index int
}

// Name returns the display name, e.g. "Mixer2".
func (c Component) Name() string {
	return fmt.Sprintf("%s%d", c.Kind.Name, c.Index)
}

// Allocation is the number of allocated components per type, in the order
// used by Table I column 3: (Mixers, Heaters, Filters, Detectors).
type Allocation [assay.NumOpTypes]int

// Total returns |C|, the total number of allocated components.
func (a Allocation) Total() int {
	n := 0
	for _, v := range a {
		n += v
	}
	return n
}

// String formats the allocation as the paper prints it, e.g. "(3,0,0,2)".
func (a Allocation) String() string {
	parts := make([]string, len(a))
	for i, v := range a {
		parts[i] = strconv.Itoa(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// ParseAllocation parses "(3,0,0,2)" (parentheses optional).
func ParseAllocation(s string) (Allocation, error) {
	var a Allocation
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	parts := strings.Split(s, ",")
	if len(parts) != len(a) {
		return a, fmt.Errorf("chip: allocation %q needs %d comma-separated counts", s, len(a))
	}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return a, fmt.Errorf("chip: allocation %q: %w", s, err)
		}
		if v < 0 {
			return a, fmt.Errorf("chip: allocation %q: negative count", s)
		}
		a[i] = v
	}
	return a, nil
}

// Covers reports whether the allocation provides at least one component
// for every operation type present in g.
func (a Allocation) Covers(g *assay.Graph) error {
	need := g.CountByType()
	for t := 0; t < assay.NumOpTypes; t++ {
		if need[t] > 0 && a[t] == 0 {
			return fmt.Errorf("chip: assay %q needs %s components but allocation %v provides none",
				g.Name(), assay.OpType(t), a)
		}
	}
	return nil
}

// Instantiate expands the allocation into concrete component instances,
// ordered by type then index, with dense IDs.
func (a Allocation) Instantiate() []Component {
	comps := make([]Component, 0, a.Total())
	for t := 0; t < assay.NumOpTypes; t++ {
		kind := KindFor(assay.OpType(t))
		for i := 0; i < a[t]; i++ {
			comps = append(comps, Component{
				ID:    CompID(len(comps)),
				Kind:  kind,
				Index: i + 1,
			})
		}
	}
	return comps
}

// MinimalAllocation returns the smallest allocation covering g: one
// component per operation type that occurs.
func MinimalAllocation(g *assay.Graph) Allocation {
	var a Allocation
	need := g.CountByType()
	for t := range need {
		if need[t] > 0 {
			a[t] = 1
		}
	}
	return a
}
