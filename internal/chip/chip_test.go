package chip

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/fluid"
	"repro/internal/unit"
)

func TestAllocationString(t *testing.T) {
	a := Allocation{3, 0, 0, 2}
	if got := a.String(); got != "(3,0,0,2)" {
		t.Errorf("String = %q", got)
	}
	if a.Total() != 5 {
		t.Errorf("Total = %d", a.Total())
	}
}

func TestParseAllocation(t *testing.T) {
	cases := []struct {
		in      string
		want    Allocation
		wantErr bool
	}{
		{"(3,0,0,2)", Allocation{3, 0, 0, 2}, false},
		{"3,0,0,2", Allocation{3, 0, 0, 2}, false},
		{" ( 7, 4, 4, 3 ) ", Allocation{7, 4, 4, 3}, false},
		{"(1,2,3)", Allocation{}, true},
		{"(1,2,3,x)", Allocation{}, true},
		{"(1,2,3,-1)", Allocation{}, true},
	}
	for _, c := range cases {
		got, err := ParseAllocation(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseAllocation(%q) err = %v", c.in, err)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseAllocation(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseAllocationRoundTrip(t *testing.T) {
	for _, a := range []Allocation{{3, 0, 0, 0}, {3, 0, 0, 2}, {8, 0, 0, 2}, {7, 4, 4, 3}} {
		got, err := ParseAllocation(a.String())
		if err != nil || got != a {
			t.Errorf("round trip of %v failed: %v %v", a, got, err)
		}
	}
}

func TestInstantiate(t *testing.T) {
	a := Allocation{2, 1, 0, 1}
	comps := a.Instantiate()
	if len(comps) != 4 {
		t.Fatalf("len = %d", len(comps))
	}
	wantNames := []string{"Mixer1", "Mixer2", "Heater1", "Detector1"}
	for i, w := range wantNames {
		if comps[i].Name() != w {
			t.Errorf("comps[%d].Name = %q, want %q", i, comps[i].Name(), w)
		}
		if comps[i].ID != CompID(i) {
			t.Errorf("comps[%d].ID = %d", i, comps[i].ID)
		}
	}
	if comps[0].Kind.Type != assay.Mix || comps[2].Kind.Type != assay.Heat {
		t.Error("kinds wrong")
	}
}

func TestFootprintsPositive(t *testing.T) {
	for _, k := range DefaultLibrary() {
		if k.W <= 0 || k.H <= 0 {
			t.Errorf("%s footprint %dx%d not positive", k.Name, k.W, k.H)
		}
	}
}

func TestKindForAllTypes(t *testing.T) {
	for ty := 0; ty < assay.NumOpTypes; ty++ {
		k := KindFor(assay.OpType(ty))
		if k.Type != assay.OpType(ty) {
			t.Errorf("KindFor(%v) returned %v", assay.OpType(ty), k.Type)
		}
	}
}

func buildAssay(t *testing.T, types ...assay.OpType) *assay.Graph {
	t.Helper()
	b := assay.NewBuilder("t")
	for i, ty := range types {
		b.AddOp("o"+string(rune('1'+i)), ty, unit.Seconds(2), fluid.Fluid{D: 1e-6})
	}
	return b.MustBuild()
}

func TestCovers(t *testing.T) {
	g := buildAssay(t, assay.Mix, assay.Detect)
	if err := (Allocation{1, 0, 0, 1}).Covers(g); err != nil {
		t.Errorf("sufficient allocation rejected: %v", err)
	}
	if err := (Allocation{1, 0, 0, 0}).Covers(g); err == nil {
		t.Error("missing detector not reported")
	}
	if err := (Allocation{0, 5, 5, 5}).Covers(g); err == nil {
		t.Error("missing mixer not reported")
	}
}

func TestMinimalAllocation(t *testing.T) {
	g := buildAssay(t, assay.Mix, assay.Mix, assay.Heat)
	a := MinimalAllocation(g)
	if a != (Allocation{1, 1, 0, 0}) {
		t.Errorf("MinimalAllocation = %v", a)
	}
	if err := a.Covers(g); err != nil {
		t.Errorf("minimal allocation does not cover: %v", err)
	}
}

func FuzzParseAllocation(f *testing.F) {
	for _, seed := range []string{"(3,0,0,2)", "1,2,3,4", "(1,2,3)", "(-1,0,0,0)", "", "(a,b,c,d)"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAllocation(s)
		if err != nil {
			return
		}
		for _, v := range a {
			if v < 0 {
				t.Fatalf("ParseAllocation(%q) produced negative count %v", s, a)
			}
		}
		// Round trip.
		b, err := ParseAllocation(a.String())
		if err != nil || b != a {
			t.Fatalf("round trip of %v failed: %v %v", a, b, err)
		}
	})
}
