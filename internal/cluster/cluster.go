package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/breaker"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Config describes one node's view of the cluster. Zero values select
// sane defaults.
type Config struct {
	// Self is this node's own base URL exactly as it appears in the peer
	// list (e.g. "http://10.0.0.1:8080"). Required.
	Self string
	// Peers is the static membership: the base URL of every node,
	// including Self. Ignored when PeersFile is set.
	Peers []string
	// PeersFile, when set, names a discovery file with one peer URL per
	// line ('#' comments and blank lines ignored). The file is re-read
	// whenever its modification time changes, so membership can be edited
	// without restarting nodes.
	PeersFile string
	// VNodes is the virtual-node count per peer (default DefaultVNodes).
	VNodes int
	// ProbeInterval is how often the health prober polls every peer
	// (default 500 ms). The prober adds seeded jitter so a fleet of nodes
	// started together does not probe in lockstep.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1 s).
	ProbeTimeout time.Duration
	// DownAfter is how many consecutive probe failures mark a peer down
	// (default 2). One successful probe marks it up again.
	DownAfter int
	// MaxHops bounds forwarding: a request that has already been
	// forwarded MaxHops times is synthesized locally instead of forwarded
	// again, so a misconfigured ring (nodes disagreeing about membership)
	// degrades to extra local work, never a forwarding cycle (default 2).
	MaxHops int
	// ForwardRetries is how many times a forward retries a transient
	// failure (transport error, 429, 503, 5xx) before falling back to
	// local synthesis (default 2). Each retry backs off ForwardBackoff,
	// doubling.
	ForwardRetries int
	// ForwardBackoff is the base delay between forward retries
	// (default 25 ms).
	ForwardBackoff time.Duration
	// PeerTimeout bounds one read-through peer-cache lookup (default 1 s).
	// It is deliberately short: a peering miss must cost far less than
	// the synthesis it might save.
	PeerTimeout time.Duration
	// PollInterval is the forwarded-job poll cadence (default 2 ms).
	PollInterval time.Duration
	// BreakerThreshold opens a peer's circuit breaker after this many
	// consecutive failed forward/lookup exchanges (default 4; negative
	// disables). While open, the peer is treated as unreachable without
	// spending a connection attempt on it.
	BreakerThreshold int
	// BreakerCooldown is how long an open peer breaker stays open before
	// admitting a probe exchange (default 1 s).
	BreakerCooldown time.Duration
	// Seed drives the prober's deterministic jitter stream (default 1).
	Seed uint64
	// Logger receives membership and health transitions. Nil discards.
	Logger *slog.Logger
	// Client overrides the HTTP client for peer traffic (tests). Nil
	// builds one with pooled connections and no global timeout —
	// per-exchange deadlines come from contexts.
	Client *http.Client
}

// Cluster is one node's live cluster state. All methods are safe for
// concurrent use.
type Cluster struct {
	cfg    Config
	self   string
	client *http.Client
	log    *slog.Logger

	mu      sync.Mutex
	members []string // configured membership, normalized
	down    map[string]bool
	fails   map[string]int // consecutive probe failures
	ring    *Ring          // alive members only
	brk     map[string]*breaker.Breaker
	fileMod time.Time

	stop chan struct{}
	wg   sync.WaitGroup

	// Per-peer monotonic counters, labeled by peer URL.
	forwardOK   obs.CounterSet // forwards that returned a remote solution
	forwardFail obs.CounterSet // forwards that fell back to local synthesis
	peerHits    obs.CounterSet // read-through peer-cache hits
	peerMisses  obs.CounterSet // read-through peer-cache misses (404)
	peerErrors  obs.CounterSet // read-through peer-cache transport/HTTP errors
	probeOK     obs.CounterSet // successful health probes
	probeFail   obs.CounterSet // failed health probes
	writeBacks  obs.CounterSet // opportunistic write-backs delivered
}

// New validates cfg, builds the initial ring and starts the health
// prober (and the discovery-file watcher when configured). Call Close to
// stop the background goroutines.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = 2
	}
	if cfg.ForwardRetries == 0 {
		cfg.ForwardRetries = 2
	}
	if cfg.ForwardBackoff <= 0 {
		cfg.ForwardBackoff = 25 * time.Millisecond
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Millisecond
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 4
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(nil2Discard(), nil))
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}}
	}

	self, err := normalizePeer(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %w", err)
	}
	c := &Cluster{
		cfg:    cfg,
		self:   self,
		client: client,
		log:    log,
		down:   make(map[string]bool),
		fails:  make(map[string]int),
		brk:    make(map[string]*breaker.Breaker),
		stop:   make(chan struct{}),
	}

	var peers []string
	if cfg.PeersFile != "" {
		peers, err = readPeersFile(cfg.PeersFile)
		if err != nil {
			return nil, err
		}
		if fi, err := os.Stat(cfg.PeersFile); err == nil {
			c.fileMod = fi.ModTime()
		}
	} else {
		peers, err = normalizePeers(cfg.Peers)
		if err != nil {
			return nil, err
		}
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if !contains(peers, self) {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", self, peers)
	}
	c.setMembersLocked(peers)

	c.wg.Add(1)
	go c.probeLoop()
	if cfg.PeersFile != "" {
		c.wg.Add(1)
		go c.watchPeersFile()
	}
	return c, nil
}

// nil2Discard returns a writer that drops everything (slog needs an
// io.Writer; os.DevNull would cost a descriptor).
func nil2Discard() discard { return discard{} }

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Close stops the prober and watcher goroutines. It does not close the
// HTTP client's idle connections; the process owns those.
func (c *Cluster) Close() {
	close(c.stop)
	c.wg.Wait()
}

// normalizePeer canonicalizes one peer base URL: scheme + host only,
// lowercased, no trailing slash. Normalizing matters because peer
// identity is string equality — "http://A:8080/" and "http://a:8080"
// must be one ring member, not two.
func normalizePeer(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	u, err := url.Parse(raw)
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("peer %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("peer %q: missing host", raw)
	}
	return strings.ToLower(u.Scheme) + "://" + strings.ToLower(u.Host), nil
}

func normalizePeers(raw []string) ([]string, error) {
	var out []string
	for _, r := range raw {
		if strings.TrimSpace(r) == "" {
			continue
		}
		p, err := normalizePeer(r)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// readPeersFile parses a discovery file: one peer URL per line, '#'
// comments and blank lines ignored.
func readPeersFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: peers file: %w", err)
	}
	var raw []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		raw = append(raw, line)
	}
	return normalizePeers(raw)
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// setMembersLocked installs a new membership and rebuilds the alive
// ring. Caller holds c.mu or is inside New before goroutines start.
func (c *Cluster) setMembersLocked(peers []string) {
	c.members = peers
	c.rebuildRingLocked()
}

// SetMembers replaces the membership (the discovery-file path uses it;
// tests use it to exercise rebalancing).
func (c *Cluster) SetMembers(peers []string) error {
	norm, err := normalizePeers(peers)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.setMembersLocked(norm)
	c.mu.Unlock()
	return nil
}

// rebuildRingLocked recomputes the alive ring: members minus down
// peers. Self is never marked down (a node that can run this code is
// alive by definition).
func (c *Cluster) rebuildRingLocked() {
	alive := make([]string, 0, len(c.members))
	for _, p := range c.members {
		if p == c.self || !c.down[p] {
			alive = append(alive, p)
		}
	}
	c.ring = BuildRing(alive, c.cfg.VNodes)
}

// Self returns this node's normalized base URL.
func (c *Cluster) Self() string { return c.self }

// MaxHops returns the forwarding hop bound.
func (c *Cluster) MaxHops() int {
	if c.cfg.MaxHops < 0 {
		return 0
	}
	return c.cfg.MaxHops
}

// Members returns the configured membership (alive or not), sorted as
// configured.
func (c *Cluster) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.members...)
}

// Owner returns the alive-ring owner of key and whether that is this
// node. An empty alive ring (every other peer down, self not a member)
// degenerates to local ownership.
func (c *Cluster) Owner(key string) (string, bool) {
	c.mu.Lock()
	owner := c.ring.Owner(key)
	c.mu.Unlock()
	if owner == "" {
		return c.self, true
	}
	return owner, owner == c.self
}

// lookupOrder returns the alive peers to consult for key — owner first,
// then ring successors — excluding self (the caller already missed its
// local cache).
func (c *Cluster) lookupOrder(key string) []string {
	c.mu.Lock()
	order := c.ring.Order(key, 0)
	c.mu.Unlock()
	out := order[:0]
	for _, p := range order {
		if p != c.self {
			out = append(out, p)
		}
	}
	return out
}

// Healthy reports whether peer is probed-up and its breaker is not
// open. It never claims a half-open probe slot — the actual exchange
// does that through breakerFor.
func (c *Cluster) Healthy(peer string) bool {
	c.mu.Lock()
	down := c.down[peer]
	brk := c.brk[peer]
	c.mu.Unlock()
	return !down && brk.State() != "open"
}

// breakerFor returns peer's circuit breaker, creating it on first use.
func (c *Cluster) breakerFor(peer string) *breaker.Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.brk[peer]
	if !ok {
		b = breaker.New(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, nil)
		c.brk[peer] = b
	}
	return b
}

// ---- health prober -------------------------------------------------------

// probeLoop polls every peer's /healthz on a jittered interval and
// flips down/up state. The jitter stream is seeded (Config.Seed), so a
// test or a reproduced incident replays the same probe schedule.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	jit := rng.New(c.cfg.Seed)
	for {
		// interval ± 10%, deterministic in the seed.
		base := c.cfg.ProbeInterval
		off := time.Duration(jit.Uint64() % uint64(base/5+1))
		select {
		case <-c.stop:
			return
		case <-time.After(base - base/10 + off):
		}
		c.probeAll()
	}
}

// probeAll probes every non-self member once.
func (c *Cluster) probeAll() {
	c.mu.Lock()
	peers := append([]string(nil), c.members...)
	c.mu.Unlock()
	for _, p := range peers {
		if p == c.self {
			continue
		}
		c.probeOne(p)
	}
}

// probeOne GETs peer's /healthz and records the outcome, rebuilding the
// ring on a down/up transition.
func (c *Cluster) probeOne(peer string) {
	ok := c.healthz(peer)
	c.mu.Lock()
	changed := false
	if ok {
		c.fails[peer] = 0
		if c.down[peer] {
			delete(c.down, peer)
			changed = true
		}
	} else {
		c.fails[peer]++
		if !c.down[peer] && c.fails[peer] >= c.cfg.DownAfter {
			c.down[peer] = true
			changed = true
		}
	}
	if changed {
		c.rebuildRingLocked()
		alive := len(c.ring.Peers())
		c.mu.Unlock()
		if ok {
			c.log.Info("cluster: peer up, ring rebuilt", "peer", peer, "alive", alive)
		} else {
			c.log.Warn("cluster: peer down, ring rebuilt", "peer", peer, "alive", alive)
		}
		return
	}
	c.mu.Unlock()
}

// healthz performs one probe exchange.
func (c *Cluster) healthz(peer string) bool {
	req, err := http.NewRequest(http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		c.probeFail.Add(peer, 1)
		return false
	}
	// The probe deadline rides a plain timer, not a context from a
	// request: probes belong to the node, not to any client.
	client := *c.client
	client.Timeout = c.cfg.ProbeTimeout
	resp, err := client.Do(req)
	if err != nil {
		c.probeFail.Add(peer, 1)
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.probeFail.Add(peer, 1)
		return false
	}
	c.probeOK.Add(peer, 1)
	return true
}

// ---- discovery-file watcher ----------------------------------------------

// watchPeersFile polls the discovery file's modification time and
// re-reads it on change. Poll cadence reuses the probe interval: both
// answer "how fast does the cluster notice change".
func (c *Cluster) watchPeersFile() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-time.After(c.cfg.ProbeInterval):
		}
		fi, err := os.Stat(c.cfg.PeersFile)
		if err != nil {
			continue // transient editor rename; keep the last membership
		}
		c.mu.Lock()
		changed := !fi.ModTime().Equal(c.fileMod)
		if changed {
			c.fileMod = fi.ModTime()
		}
		c.mu.Unlock()
		if !changed {
			continue
		}
		peers, err := readPeersFile(c.cfg.PeersFile)
		if err != nil || len(peers) == 0 {
			c.log.Warn("cluster: peers file unreadable, keeping membership", "path", c.cfg.PeersFile, "err", err)
			continue
		}
		c.mu.Lock()
		c.setMembersLocked(peers)
		n := len(peers)
		c.mu.Unlock()
		c.log.Info("cluster: membership reloaded", "path", c.cfg.PeersFile, "peers", n)
	}
}

// ---- stats ---------------------------------------------------------------

// PeerStats is one peer's point-in-time cluster counters, for the
// Prometheus exposition and the JSON metrics view.
type PeerStats struct {
	Peer        string `json:"peer"`
	Up          bool   `json:"up"`
	Breaker     string `json:"breaker"`
	ForwardOK   int64  `json:"forward_ok"`
	ForwardFail int64  `json:"forward_fallback"`
	PeerHits    int64  `json:"peer_hits"`
	PeerMisses  int64  `json:"peer_misses"`
	PeerErrors  int64  `json:"peer_errors"`
	ProbeOK     int64  `json:"probe_ok"`
	ProbeFail   int64  `json:"probe_fail"`
	WriteBacks  int64  `json:"write_backs"`
}

// PeerStats returns counters for every non-self member, sorted by peer
// URL.
func (c *Cluster) PeerStats() []PeerStats {
	c.mu.Lock()
	members := append([]string(nil), c.members...)
	down := make(map[string]bool, len(c.down))
	for p, d := range c.down {
		down[p] = d
	}
	brks := make(map[string]*breaker.Breaker, len(c.brk))
	for p, b := range c.brk {
		brks[p] = b
	}
	c.mu.Unlock()

	out := make([]PeerStats, 0, len(members))
	for _, p := range members {
		if p == c.self {
			continue
		}
		out = append(out, PeerStats{
			Peer:        p,
			Up:          !down[p],
			Breaker:     brks[p].State(),
			ForwardOK:   c.forwardOK.Value(p),
			ForwardFail: c.forwardFail.Value(p),
			PeerHits:    c.peerHits.Value(p),
			PeerMisses:  c.peerMisses.Value(p),
			PeerErrors:  c.peerErrors.Value(p),
			ProbeOK:     c.probeOK.Value(p),
			ProbeFail:   c.probeFail.Value(p),
			WriteBacks:  c.writeBacks.Value(p),
		})
	}
	sortPeerStats(out)
	return out
}

func sortPeerStats(s []PeerStats) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Peer < s[j-1].Peer; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
