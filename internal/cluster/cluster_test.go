package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestCluster builds a Cluster whose prober runs fast enough for
// tests, with self as a synthetic address that never serves.
func newTestCluster(t *testing.T, self string, peers []string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Self:          self,
		Peers:         peers,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterSelfMustBeMember(t *testing.T) {
	_, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1"}})
	if err == nil {
		t.Fatal("self outside the peer list was accepted")
	}
}

func TestClusterNormalizesPeers(t *testing.T) {
	c := newTestCluster(t, "HTTP://A:8080/", []string{"http://a:8080", "http://B:8080/"})
	if c.Self() != "http://a:8080" {
		t.Fatalf("self = %q", c.Self())
	}
	want := []string{"http://a:8080", "http://b:8080"}
	got := c.Members()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("members = %v, want %v", got, want)
	}
}

// TestProberMarksDownAndReroutes: when a peer stops answering /healthz,
// keys it owned must reroute to survivors; when it recovers, ownership
// must return (same ring as before — consistent hashing is memoryless).
func TestProberMarksDownAndReroutes(t *testing.T) {
	alive := true
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !alive {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	self := "http://127.0.0.1:1" // never dialed: self is not probed
	c := newTestCluster(t, self, []string{self, ts.URL})

	// Find a key the test server owns.
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("%064x", i)
		if owner, _ := c.Owner(k); owner == ts.URL {
			key = k
			break
		}
	}

	if !c.Healthy(ts.URL) {
		t.Fatal("fresh peer not healthy")
	}

	alive = false
	waitFor(t, time.Second, func() bool { return !c.Healthy(ts.URL) })
	if owner, isSelf := c.Owner(key); !isSelf {
		t.Fatalf("dead peer still owns %s (owner %s)", key, owner)
	}

	alive = true
	waitFor(t, time.Second, func() bool { return c.Healthy(ts.URL) })
	if owner, _ := c.Owner(key); owner != ts.URL {
		t.Fatalf("recovered peer did not regain ownership: owner = %s", owner)
	}

	stats := c.PeerStats()
	if len(stats) != 1 || stats[0].ProbeOK == 0 || stats[0].ProbeFail == 0 {
		t.Fatalf("probe counters not recorded: %+v", stats)
	}
}

// TestPeersFileReload: editing the discovery file must change
// membership without a restart.
func TestPeersFileReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peers.txt")
	self := "http://127.0.0.1:1"
	other := "http://127.0.0.2:1"
	write := func(content string) {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		// mtime granularity on some filesystems is 1s; force a distinct
		// timestamp so the watcher sees the change.
		future := time.Now().Add(2 * time.Second)
		if err := os.Chtimes(path, future, future); err != nil {
			t.Fatal(err)
		}
	}
	write("# cluster members\n" + self + "\n")

	c, err := New(Config{
		Self:          self,
		PeersFile:     path,
		ProbeInterval: 20 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Members(); len(got) != 1 {
		t.Fatalf("initial members = %v", got)
	}

	write(self + "\n" + other + "\n")
	waitFor(t, 2*time.Second, func() bool { return len(c.Members()) == 2 })

	// A corrupt rewrite must not wipe the membership.
	write("://not a url\n")
	time.Sleep(100 * time.Millisecond)
	if got := c.Members(); len(got) != 2 {
		t.Fatalf("corrupt peers file changed membership: %v", got)
	}
}

// TestFetchSolutionOwnerFirst: read-through peering must try the owner
// before siblings and return the first hit.
func TestFetchSolutionOwnerFirst(t *testing.T) {
	doc := []byte(`{"solution":true}`)
	var hitPeer string
	mk := func(name string, has bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			if !has {
				w.WriteHeader(http.StatusNotFound)
				return
			}
			hitPeer = name
			w.Header().Set("X-Cache-Key", r.URL.Path[len("/v1/peer/solution/"):])
			_, _ = w.Write(doc)
		}))
	}
	a := mk("a", false)
	defer a.Close()
	b := mk("b", true)
	defer b.Close()

	self := "http://127.0.0.1:1"
	c := newTestCluster(t, self, []string{self, a.URL, b.URL})

	key := fmt.Sprintf("%064x", 7)
	got, peer, ok := c.FetchSolution(context.Background(), key, "r1")
	if !ok {
		t.Fatal("peering missed though one peer has the doc")
	}
	if string(got) != string(doc) {
		t.Fatalf("doc = %q", got)
	}
	if hitPeer != "b" || peer != b.URL {
		t.Fatalf("hit %q (peer %s), want b", hitPeer, peer)
	}
	// Counters: exactly one hit on b; a is either a miss or skipped
	// depending on ring order.
	if c.peerHits.Value(b.URL) != 1 {
		t.Fatalf("peer hit counter = %d", c.peerHits.Value(b.URL))
	}
}

// TestSynthesizeRemoteBreaker: repeated forward failures must open the
// peer's breaker so later forwards fail fast without dialing.
func TestSynthesizeRemoteBreaker(t *testing.T) {
	self := "http://127.0.0.1:1"
	dead := "http://127.0.0.1:2" // nothing listens here
	c, err := New(Config{
		Self:             self,
		Peers:            []string{self, dead},
		ProbeInterval:    time.Hour, // keep the prober out of this test
		ForwardRetries:   0,
		ForwardBackoff:   time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	body := []byte(`{"bench":"Synthetic1"}`)
	for i := 0; i < 2; i++ {
		if _, _, err := c.SynthesizeRemote(ctx, dead, "", "r1", obs.TraceContext{}, 0, body); err == nil {
			t.Fatal("forward to a dead peer succeeded")
		}
	}
	if c.Healthy(dead) {
		t.Fatal("breaker still closed after threshold failures")
	}
	start := time.Now()
	if _, _, err := c.SynthesizeRemote(ctx, dead, "", "r1", obs.TraceContext{}, 0, body); err == nil {
		t.Fatal("open breaker admitted a forward")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("open-breaker forward took %v, expected fail-fast", d)
	}
	if got := c.forwardFail.Value(dead); got != 3 {
		t.Fatalf("forwardFail = %d, want 3", got)
	}
}

func TestHopsHeader(t *testing.T) {
	h := http.Header{}
	if Hops(h) != 0 {
		t.Fatal("missing header should read 0")
	}
	h.Set(HeaderHops, "2")
	if Hops(h) != 2 {
		t.Fatal("hops not parsed")
	}
	h.Set(HeaderHops, "garbage")
	if Hops(h) != 0 {
		t.Fatal("malformed hops should read 0")
	}
	h.Set(HeaderHops, "-3")
	if Hops(h) != 0 {
		t.Fatal("negative hops should read 0")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
