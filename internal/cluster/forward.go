package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Forwarding headers. HeaderHops counts how many nodes have already
// forwarded a request; it must never leak into the solution-cache key
// (the key is derived from the request body alone, so two nodes
// forwarding the same assay agree on ownership). HeaderRequestID carries
// the originating node's request ID across hops, so one client request
// produces one correlated slog line per node it touches. HeaderTraceID
// and HeaderParentSpan carry the trace context the same way, so the
// receiving node's spans land in the caller's trace under the caller's
// forward span. None of these headers ever reach the cache key.
const (
	HeaderHops       = "X-Forwarded-Hops"
	HeaderRequestID  = "X-Request-ID"
	HeaderTraceID    = "X-Trace-ID"
	HeaderParentSpan = "X-Parent-Span"
	// HeaderSessionID pins a chip session's identity across proxy hops:
	// sessions are stateful (unlike content-addressed solutions), so every
	// node routes session traffic to the session ID's ring owner and the
	// ID must survive the hop verbatim.
	HeaderSessionID = "X-Session-ID"
)

// Hops parses the forwarded-hop count from a request header (0 when
// absent or malformed — a garbled header must degrade to "treat as
// fresh", not to an error a client can't act on).
func Hops(h http.Header) int {
	n, err := strconv.Atoi(h.Get(HeaderHops))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// submitReply mirrors the owner's POST /v1/synthesize body (the subset
// forwarding needs).
type submitReply struct {
	JobID  string `json:"job_id"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
}

// jobReply mirrors the owner's GET /v1/jobs/{id} body (the subset
// forwarding needs). Spans is the owner's node-attributed trace spans
// for the job, riding back so the forwarding node can merge them into
// the client-facing timeline.
type jobReply struct {
	Status string     `json:"status"`
	Error  string     `json:"error"`
	Spans  []obs.Span `json:"trace_spans"`
}

// FetchSolution is the read-through cache-peering path: after a local
// cache miss, ask the key's owner (then its ring successors) for the
// finished solution document. Returns the document and the peer that
// served it. A miss or any error returns ok=false — peering is an
// optimization, never a dependency, so the caller just synthesizes.
func (c *Cluster) FetchSolution(ctx context.Context, key, requestID string) ([]byte, string, bool) {
	rec := obs.SpansFrom(ctx)
	for _, peer := range c.lookupOrder(key) {
		if !c.Healthy(peer) {
			continue
		}
		probeStart := time.Now()
		doc, status, err := c.fetchFrom(ctx, peer, key, requestID)
		switch {
		case err != nil:
			c.peerErrors.Add(peer, 1)
			rec.Add("peer.fetch", "", probeStart, time.Since(probeStart), peer+" error")
		case status == http.StatusOK:
			c.peerHits.Add(peer, 1)
			rec.Add("peer.fetch", "", probeStart, time.Since(probeStart), peer+" hit")
			return doc, peer, true
		default: // 404: the peer simply doesn't have it
			c.peerMisses.Add(peer, 1)
			rec.Add("peer.fetch", "", probeStart, time.Since(probeStart), peer+" miss")
		}
		if ctx.Err() != nil {
			return nil, "", false
		}
	}
	return nil, "", false
}

// fetchFrom performs one peer-cache GET with its own short deadline.
func (c *Cluster) fetchFrom(ctx context.Context, peer, key, requestID string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/peer/solution/"+key, nil)
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set(HeaderRequestID, requestID)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, resp.StatusCode, nil
	}
	// A peer vouching for the wrong key would poison the local cache;
	// cross-check before trusting the bytes.
	if got := resp.Header.Get("X-Cache-Key"); got != "" && got != key {
		return nil, 0, fmt.Errorf("peer %s returned key %s, want %s", peer, got, key)
	}
	doc, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, err
	}
	return doc, http.StatusOK, nil
}

// SynthesizeRemote forwards a synthesis request to its ring owner and
// blocks until the owner's job reaches a terminal state, returning the
// solution document and the owner's trace spans for it. body is the
// client's request verbatim — the owner derives the same cache key from
// the same bytes. hops is the count already accumulated; the forwarded
// request carries hops+1. tc is the trace context the forwarded request
// carries (zero value: no trace headers, no spans back).
//
// Transient failures (transport errors, 429 queue-full, 503 shedding,
// 5xx) retry with doubling backoff; each exhausted forward feeds the
// peer's circuit breaker so a struggling owner stops receiving forwards
// entirely until its cooldown. The caller treats any error as "degrade
// to local synthesis".
func (c *Cluster) SynthesizeRemote(ctx context.Context, owner, key, requestID string, tc obs.TraceContext, hops int, body []byte) ([]byte, []obs.Span, error) {
	brk := c.breakerFor(owner)
	if !brk.Allow() {
		c.forwardFail.Add(owner, 1)
		return nil, nil, fmt.Errorf("cluster: breaker open for %s", owner)
	}
	var lastErr error
	backoff := c.cfg.ForwardBackoff
	for attempt := 0; attempt <= c.cfg.ForwardRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				lastErr = ctx.Err()
				attempt = c.cfg.ForwardRetries + 1 // exhausted
			case <-time.After(backoff):
				backoff *= 2
			}
			if lastErr != nil {
				break
			}
		}
		doc, spans, retryable, err := c.forwardOnce(ctx, owner, key, requestID, tc, hops, body)
		if err == nil {
			brk.Success()
			c.forwardOK.Add(owner, 1)
			return doc, spans, nil
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	if brk.Overflow() {
		c.log.Warn("cluster: peer breaker opened", "peer", owner)
	}
	c.forwardFail.Add(owner, 1)
	return nil, nil, fmt.Errorf("cluster: forward to %s: %w", owner, lastErr)
}

// forwardOnce performs one complete forward exchange: submit, poll to
// terminal, fetch solution. retryable reports whether the failure is
// worth another attempt. The owner's spans for the job come back from
// the poll; a 200 cache-hit submit still polls once (the job is already
// terminal) so the hit's spans ride back too, best-effort.
func (c *Cluster) forwardOnce(ctx context.Context, owner, key, requestID string, tc obs.TraceContext, hops int, body []byte) (doc []byte, spans []obs.Span, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		return nil, nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderRequestID, requestID)
	req.Header.Set(HeaderHops, strconv.Itoa(hops+1))
	if tc.TraceID != "" {
		req.Header.Set(HeaderTraceID, tc.TraceID)
		req.Header.Set(HeaderParentSpan, tc.Parent)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, nil, true, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, nil, true, fmt.Errorf("owner busy: %s", resp.Status)
	default:
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		// A 4xx won't improve on retry; a 5xx might.
		return nil, nil, resp.StatusCode >= 500, fmt.Errorf("owner rejected forward: %s", resp.Status)
	}
	var sub submitReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sub); err != nil {
		return nil, nil, true, fmt.Errorf("decoding submit reply: %w", err)
	}
	if resp.StatusCode == http.StatusAccepted {
		spans, err = c.pollJob(ctx, owner, sub.JobID, requestID)
		if err != nil {
			// A failed remote job would fail identically here (same request,
			// same deterministic pipeline) — except when the failure is the
			// owner's own timeout or cancellation, which local capacity may
			// not share. Retrying the forward won't help either way.
			return nil, nil, false, err
		}
	} else if tc.TraceID != "" {
		// Cache hit on the owner: the job is already terminal, so one poll
		// collects its spans. Purely additive — a poll error never fails a
		// forward that already has its answer.
		if s, perr := c.pollJob(ctx, owner, sub.JobID, requestID); perr == nil {
			spans = s
		}
	}
	doc, err = c.fetchJobSolution(ctx, owner, sub.JobID, key, requestID)
	if err != nil {
		return nil, nil, true, err
	}
	return doc, spans, false, nil
}

// pollJob polls the owner's job until it is done, returning the owner's
// trace spans for it, or fails with the job's (or transport's) error.
func (c *Cluster) pollJob(ctx context.Context, owner, jobID, requestID string) ([]obs.Span, error) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/v1/jobs/"+jobID, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set(HeaderRequestID, requestID)
		resp, err := c.client.Do(req)
		if err != nil {
			return nil, err
		}
		var jr jobReply
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&jr)
		resp.Body.Close()
		if decErr != nil {
			return nil, fmt.Errorf("decoding job status: %w", decErr)
		}
		switch jr.Status {
		case "done":
			return jr.Spans, nil
		case "failed", "canceled":
			return nil, fmt.Errorf("remote job %s %s: %s", jobID, jr.Status, jr.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.cfg.PollInterval):
		}
	}
}

// fetchJobSolution downloads a finished job's solution document and
// verifies the owner derived the same cache key (a mismatch means the
// two nodes disagree about request canonicalization — corrupt data, not
// a retry candidate, but the caller's local fallback still serves the
// client).
func (c *Cluster) fetchJobSolution(ctx context.Context, owner, jobID, key, requestID string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/v1/jobs/"+jobID+"/solution", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(HeaderRequestID, requestID)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fetching solution: %s", resp.Status)
	}
	if got := resp.Header.Get("X-Cache-Key"); got != "" && key != "" && got != key {
		return nil, fmt.Errorf("owner %s derived key %s, this node derived %s", owner, got, key)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

// Proxy relays one session request to the session's ring owner and
// returns the owner's verbatim response. Unlike SynthesizeRemote there is
// no submit/poll split — session operations answer synchronously — and
// unlike FetchSolution a failure is surfaced to the caller, which decides
// whether local handling is a safe degradation.
func (c *Cluster) Proxy(ctx context.Context, peer, method, path, requestID, sessionID string, hops int, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, peer+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(HeaderRequestID, requestID)
	req.Header.Set(HeaderSessionID, sessionID)
	req.Header.Set(HeaderHops, strconv.Itoa(hops+1))
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}

// WriteBack opportunistically delivers a locally synthesized solution to
// the key's owner, healing the ring after an owner outage forced a
// local fallback. Best-effort: an error just means the owner synthesizes
// it itself on the next request.
func (c *Cluster) WriteBack(ctx context.Context, peer, key, requestID string, doc []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+"/v1/peer/solution/"+key, bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderRequestID, requestID)
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("write-back to %s: %s", peer, resp.Status)
	}
	c.writeBacks.Add(peer, 1)
	return nil
}
