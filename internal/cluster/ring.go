// Package cluster is mfserved's shared-nothing multi-node layer: a
// consistent-hash ring assigns every synthesis request an owner node
// (keyed on the existing SHA-256 solution-cache key, so ownership is a
// pure function of request content), non-owners forward over HTTP with
// retry, backoff and a per-peer circuit breaker, and a read-through
// cache-peering path makes any warm cache hit cluster-wide. Membership
// comes from a static peer list or a discovery file re-read on change; a
// seeded health prober marks peers down so the ring reroutes around
// them, and an unreachable owner degrades to local synthesis (with an
// opportunistic write-back once the owner returns) instead of failing.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVNodes is the virtual-node count per peer. 64 points per peer
// keeps the owner distribution within a few percent of uniform for
// single-digit clusters while a full ring rebuild stays microseconds.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// and the peer it maps to.
type ringPoint struct {
	hash uint64
	peer string
}

// Ring is an immutable consistent-hash ring. Build returns a fresh ring
// on every membership or health change; lookups are lock-free. The ring
// is a pure function of the peer set — the same peers in any order hash
// to the identical ring — and adding or removing one peer only moves the
// keys that peer's arcs cover (~1/N of the space), never keys between
// two surviving peers.
type Ring struct {
	points []ringPoint // sorted by hash
	peers  []string    // sorted, deduplicated member list
}

// point hashes a label onto the circle: the first 8 bytes of its
// SHA-256. Solution-cache keys are already uniformly distributed hex
// digests, but hashing again costs little and makes vnode labels and
// keys share one well-mixed keyspace.
func point(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// BuildRing constructs the ring for the given peers with vnodes virtual
// nodes each (vnodes <= 0 selects DefaultVNodes). Peers are sorted and
// deduplicated first, so any permutation of the same list yields a
// byte-identical ring. An empty peer list yields an empty ring whose
// Owner returns "".
func BuildRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	sorted = dedupe(sorted)
	r := &Ring{
		points: make([]ringPoint, 0, len(sorted)*vnodes),
		peers:  sorted,
	}
	var label []byte
	for _, p := range sorted {
		for i := 0; i < vnodes; i++ {
			// The vnode label is "peer\x00i": NUL cannot appear in a URL,
			// so distinct (peer, index) pairs can never collide as strings.
			label = label[:0]
			label = append(label, p...)
			label = append(label, 0)
			label = appendInt(label, i)
			sum := sha256.Sum256(label)
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// A 64-bit hash collision between vnodes is vanishingly unlikely
		// but must still order deterministically.
		return a.peer < b.peer
	})
	return r
}

// appendInt appends the decimal form of i (avoiding strconv garbage in
// the build loop).
func appendInt(b []byte, i int) []byte {
	if i == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	n := len(tmp)
	for i > 0 {
		n--
		tmp[n] = byte('0' + i%10)
		i /= 10
	}
	return append(b, tmp[n:]...)
}

// dedupe removes adjacent duplicates from a sorted slice.
func dedupe(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Peers returns the ring's member list, sorted.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the peer owning key: the peer of the first virtual node
// at or clockwise after the key's position. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.at(key)].peer
}

// at returns the index of key's successor point (wrapping).
func (r *Ring) at(key string) int {
	h := point(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Order returns up to n distinct peers in ring order starting at key's
// owner: the owner first, then the peers whose virtual nodes follow
// clockwise. This is the cluster's lookup preference for read-through
// cache peering — the owner is where the solution should live, the
// successors are where a rebalance or fallback may have left it.
// n <= 0 returns every peer.
func (r *Ring) Order(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.peers) {
		n = len(r.peers)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.at(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
