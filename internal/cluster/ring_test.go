package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func peersN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// keysN generates deterministic pseudo-cache-keys (the real keys are
// hex SHA-256 digests; these exercise the same code path).
func keysN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", uint64(i)*0x9e3779b97f4a7c15+1)
	}
	return out
}

// TestRingDeterministicAcrossOrder: the ring must be a pure function of
// the peer SET — every permutation of the same list owns every key
// identically, or two nodes with differently-ordered -peers flags would
// forward requests in circles.
func TestRingDeterministicAcrossOrder(t *testing.T) {
	peers := peersN(5)
	keys := keysN(2000)
	ref := BuildRing(peers, 0)
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuf := append([]string(nil), peers...)
		rnd.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		r := BuildRing(shuf, 0)
		if !reflect.DeepEqual(r.Peers(), ref.Peers()) {
			t.Fatalf("trial %d: peer list differs: %v vs %v", trial, r.Peers(), ref.Peers())
		}
		for _, k := range keys {
			if got, want := r.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("trial %d: owner(%s) = %s, reference says %s", trial, k, got, want)
			}
		}
	}
}

func TestRingDuplicatePeersCollapse(t *testing.T) {
	a := BuildRing([]string{"http://a:1", "http://a:1", "http://b:1"}, 0)
	b := BuildRing([]string{"http://a:1", "http://b:1"}, 0)
	if !reflect.DeepEqual(a.Peers(), b.Peers()) {
		t.Fatalf("duplicates not collapsed: %v", a.Peers())
	}
	for _, k := range keysN(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatal("duplicate peer changed ownership")
		}
	}
}

// TestRingRebalanceProperty: growing N -> N+1 peers must move roughly
// 1/(N+1) of the keyspace, and every moved key must move TO the new
// peer. Any key moving between two surviving peers would invalidate
// their caches for no reason — the whole point of consistent hashing.
func TestRingRebalanceProperty(t *testing.T) {
	const nKeys = 10000
	peers := peersN(4)
	grown := append(peersN(4), "http://10.0.0.99:8080")
	before := BuildRing(peers, 0)
	after := BuildRing(grown, 0)
	moved := 0
	for _, k := range keysN(nKeys) {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue
		}
		moved++
		if oa != "http://10.0.0.99:8080" {
			t.Fatalf("key %s moved %s -> %s, not to the new peer", k, ob, oa)
		}
	}
	frac := float64(moved) / nKeys
	// Ideal is 1/5 = 0.20; 64 vnodes keeps the variance modest.
	if frac < 0.10 || frac > 0.32 {
		t.Fatalf("grow 4->5 moved %.1f%% of keys, want ~20%%", frac*100)
	}
	t.Logf("grow 4->5 moved %.1f%% of %d keys", frac*100, nKeys)
}

// TestRingShrinkProperty: the mirror image — removing a peer reassigns
// only that peer's keys, each to a surviving peer.
func TestRingShrinkProperty(t *testing.T) {
	peers := peersN(5)
	before := BuildRing(peers, 0)
	after := BuildRing(peers[:4], 0)
	for _, k := range keysN(5000) {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == oa {
			continue
		}
		if ob != peers[4] {
			t.Fatalf("key %s moved %s -> %s though %s still lives", k, ob, oa, ob)
		}
	}
}

// TestRingDistribution: ownership should be near-uniform; a badly
// skewed ring turns one node into the whole cluster's hot spot.
func TestRingDistribution(t *testing.T) {
	peers := peersN(4)
	r := BuildRing(peers, 0)
	counts := map[string]int{}
	const nKeys = 20000
	for _, k := range keysN(nKeys) {
		counts[r.Owner(k)]++
	}
	for _, p := range peers {
		frac := float64(counts[p]) / nKeys
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("peer %s owns %.1f%% of keys, expected near 25%%", p, frac*100)
		}
	}
}

// TestRingOrder: the lookup preference must start at the owner and list
// each peer exactly once.
func TestRingOrder(t *testing.T) {
	peers := peersN(4)
	r := BuildRing(peers, 0)
	for _, k := range keysN(50) {
		order := r.Order(k, 0)
		if len(order) != len(peers) {
			t.Fatalf("order has %d peers, want %d", len(order), len(peers))
		}
		if order[0] != r.Owner(k) {
			t.Fatalf("order starts at %s, owner is %s", order[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, p := range order {
			if seen[p] {
				t.Fatalf("peer %s appears twice in order", p)
			}
			seen[p] = true
		}
	}
	if got := r.Order(keysN(1)[0], 2); len(got) != 2 {
		t.Fatalf("Order(k, 2) returned %d peers", len(got))
	}
}

func TestRingEmpty(t *testing.T) {
	r := BuildRing(nil, 0)
	if r.Owner("anything") != "" {
		t.Fatal("empty ring returned an owner")
	}
	if r.Order("anything", 3) != nil {
		t.Fatal("empty ring returned an order")
	}
}
