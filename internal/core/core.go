// Package core implements the paper's primary contribution end to end:
// the top-down flow-layer physical synthesis of DCSA-based biochips.
//
// Given a bioassay (sequencing graph), a component allocation and the
// algorithm parameters, Synthesize runs the three stages of Section IV —
// DCSA-aware resource binding and scheduling (Algorithm 1), simulated-
// annealing placement driven by connection priorities (Algorithm 2,
// lines 1-8) and transportation-conflict-aware weighted A* routing
// (Algorithm 2, lines 9-18) — and returns a complete Solution carrying
// the metrics reported in Table I and Figs. 8-9. SynthesizeBaseline runs
// the comparison algorithm BA of Section V on the same inputs.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"time"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/unit"
	"repro/internal/verify"
)

// Options bundles the parameters of every stage. The zero value is not
// usable; start from DefaultOptions (the paper's published settings).
type Options struct {
	Schedule schedule.Options
	Place    place.Params
	Route    route.Params
	// Portfolio, when >= 2, anneals that many placements concurrently
	// (seeds Place.Seed … Place.Seed+Portfolio-1) and keeps the one with
	// the lowest Eq. 3 energy, ties broken by the smallest seed. 0 or 1
	// runs the single-seed anneal and reproduces its output exactly. Only
	// the proposed flow uses it; the baseline placer is deterministic in
	// the seed and gains nothing from restarts.
	Portfolio int
	// Tempering, when >= 2, replaces the independent-seed portfolio with
	// parallel tempering: that many replicas anneal concurrently at a
	// geometric temperature ladder spanning [Tmin, T0] (seeds Place.Seed …
	// Place.Seed+Tempering-1) and exchange configurations at deterministic
	// round boundaries (see place.AnnealTempered). 0 or 1 keeps the
	// historical portfolio/single-seed path bit for bit — the pinned
	// fingerprints cover that default. When both Tempering and Portfolio
	// are set, Tempering wins; the baseline flow ignores both.
	Tempering int
	// Verify, when set, runs the independent constraint auditor
	// (internal/verify) on every synthesized solution before returning it
	// and fails the synthesis if the audit reports any violation. The
	// audit reads the finished solution only — it consumes no randomness
	// and cannot change the result, so enabling it preserves the pinned
	// fingerprints at the cost of one extra pass over the solution.
	Verify bool
	// Degrade configures the degradation ladder. The zero value disables
	// every rung and reproduces the historical flow bit for bit.
	Degrade Degrade
}

// Degrade configures the degradation ladder: how much extra ground the
// flow may give before failing a synthesis outright. Every rung trades
// solution quality for completion, never correctness — any solution that
// used a rung carries the fact in Solution.Degradations and is re-audited
// by internal/verify before it is returned. The zero value disables the
// whole ladder.
type Degrade struct {
	// ScheduleDeadline, PlaceDeadline and RouteDeadline are per-stage
	// soft deadlines. A stage that overruns its deadline is not a
	// synthesis failure: scheduling falls back to the baseline
	// list-scheduler (proposed flow only — the baseline scheduler has no
	// cheaper fallback), placement retries at reduced annealing effort,
	// and routing treats the overrun as one failed congestion-recovery
	// attempt. Zero means no deadline.
	ScheduleDeadline time.Duration
	PlaceDeadline    time.Duration
	RouteDeadline    time.Duration
	// RipUpRounds arms the router's bounded rip-up-and-reroute recovery
	// (route.Params.RipUpRounds): when a task finds no conflict-free
	// path, up to this many rounds of evicting and rerouting neighbouring
	// tasks are tried before the usual dilation ladder takes over.
	RipUpRounds int
	// ReducedEffort extends the seed-retry loop past its usual 4
	// attempts with up to 4 further attempts at quartered annealing
	// effort (Imax/4, no portfolio) — a last-resort restart that prefers
	// a degraded placement over no solution.
	ReducedEffort bool
}

// Enabled reports whether any rung of the ladder is armed.
func (d Degrade) Enabled() bool {
	return d != Degrade{}
}

// Degradation records one use of a degradation-ladder rung (or of the
// router's built-in recovery mechanisms) during a synthesis. A solution
// with a non-empty Degradations list is complete and audited, but some
// stage ran in a fallback mode, so its quality metrics are not comparable
// to a clean run's.
type Degradation struct {
	// Stage is the pipeline stage that degraded: "schedule", "place" or
	// "route".
	Stage string
	// Event names the rung: "baseline-fallback", "reduced-effort",
	// "deadline", "seed-retry", "dilate", "ripup" or "defects".
	Event string
	// Detail is a human-readable elaboration.
	Detail string
}

// ErrStageDeadline is the cancellation cause installed by the degradation
// ladder's per-stage soft deadlines. It distinguishes "this stage
// overran its own budget" (recoverable: the ladder falls back) from the
// caller's context expiring (fatal: the whole request is out of time).
var ErrStageDeadline = errors.New("core: stage soft deadline exceeded")

// DefaultOptions returns the experimental parameters of Section V:
// t_c = 2 s, α = 0.9, β = 0.6, γ = 0.4, T0 = 10000, Imax = 150,
// Tmin = 1.0, w_e = 10.
func DefaultOptions() Options {
	return Options{
		Schedule: schedule.DefaultOptions(),
		Place:    place.DefaultParams(),
		Route:    route.DefaultParams(),
	}
}

// Solution is a complete physical synthesis result.
type Solution struct {
	Assay     *assay.Graph
	Comps     []chip.Component
	Opts      Options
	Schedule  *schedule.Result
	Placement *place.Placement
	Nets      []place.Net
	Routing   *route.Result
	// Baseline records which algorithm produced the solution.
	Baseline bool
	// CPU is the wall-clock synthesis time (the Table I "CPU time"
	// column).
	CPU time.Duration
	// Stages breaks CPU down by pipeline stage (placement and routing
	// accumulate across congestion-recovery attempts). Like CPU it is
	// measurement, not solution content: fingerprints exclude it.
	Stages StageTimes
	// Degradations lists every degradation-ladder rung and recovery
	// mechanism the synthesis used, in the order they happened. Empty for
	// a clean run — which is every run the pinned fingerprints cover, so
	// recording these unconditionally cannot perturb them. A solution
	// with entries here was re-audited by internal/verify before being
	// returned.
	Degradations []Degradation
}

// Degraded reports whether any stage ran in a fallback mode.
func (s *Solution) Degraded() bool { return len(s.Degradations) > 0 }

// StageTimes is the wall-clock spent in each synthesis stage.
type StageTimes struct {
	Schedule time.Duration
	Place    time.Duration
	Route    time.Duration
}

// Metrics are the quantities the paper evaluates.
type Metrics struct {
	// ExecutionTime is the bioassay completion time (Table I).
	ExecutionTime unit.Time
	// Utilization is U_r of Eq. 1 in [0,1] (Table I).
	Utilization float64
	// ChannelLength is the total fabricated flow-channel length (Table I).
	ChannelLength unit.Length
	// CacheTime is the total channel-storage time (Fig. 8).
	CacheTime unit.Time
	// ChannelWashTime is the total flow-channel wash time (Fig. 9).
	ChannelWashTime unit.Time
	// ComponentWashTime is the total component wash time.
	ComponentWashTime unit.Time
	// Transports is the number of inter-component transportation tasks.
	Transports int
	// CPU is the synthesis wall-clock time (Table I).
	CPU time.Duration
}

// Metrics extracts the evaluation quantities from the solution.
func (s *Solution) Metrics() Metrics {
	return Metrics{
		ExecutionTime:     s.Schedule.Makespan,
		Utilization:       s.Schedule.Utilization(),
		ChannelLength:     s.Routing.TotalLength(),
		CacheTime:         s.Schedule.TotalChannelCacheTime(),
		ChannelWashTime:   s.Routing.ChannelWash,
		ComponentWashTime: s.Schedule.TotalComponentWashTime(),
		Transports:        len(s.Schedule.Transports),
		CPU:               s.CPU,
	}
}

// Validate re-checks every stage of the solution independently.
func (s *Solution) Validate() error {
	if err := schedule.Validate(s.Schedule); err != nil {
		return fmt.Errorf("core: schedule invalid: %w", err)
	}
	if err := s.Placement.Legal(0); err != nil {
		// Spacing was enforced at placement time; here only structural
		// legality (bounds, overlap) matters because dilation may have
		// rescaled coordinates.
		return fmt.Errorf("core: placement invalid: %w", err)
	}
	if err := route.Validate(s.Routing, s.Schedule, s.Comps, s.Placement, s.Opts.Route); err != nil {
		return fmt.Errorf("core: routing invalid: %w", err)
	}
	return nil
}

// Synthesize runs the proposed DCSA-aware top-down synthesis flow.
func Synthesize(g *assay.Graph, alloc chip.Allocation, opts Options) (*Solution, error) {
	return synthesize(context.Background(), g, alloc, opts, false)
}

// SynthesizeContext is Synthesize with cancellation and deadlines: every
// stage polls ctx at its natural step boundary (between scheduling
// commits, simulated-annealing temperature steps and per-task A*
// routings) and the flow aborts promptly with an error wrapping ctx's
// error. The polls read no algorithm state and consume no randomness, so
// an uncancelled context produces byte-identical solutions to
// Synthesize — the property the service cache and the pinned fingerprints
// in determinism_test.go rely on.
func SynthesizeContext(ctx context.Context, g *assay.Graph, alloc chip.Allocation, opts Options) (*Solution, error) {
	return synthesize(ctx, g, alloc, opts, false)
}

// SynthesizeBaseline runs the baseline algorithm BA: earliest-ready
// binding, construction-by-correction placement and routing.
func SynthesizeBaseline(g *assay.Graph, alloc chip.Allocation, opts Options) (*Solution, error) {
	return synthesize(context.Background(), g, alloc, opts, true)
}

// SynthesizeBaselineContext is SynthesizeBaseline with cancellation (see
// SynthesizeContext).
func SynthesizeBaselineContext(ctx context.Context, g *assay.Graph, alloc chip.Allocation, opts Options) (*Solution, error) {
	return synthesize(ctx, g, alloc, opts, true)
}

func synthesize(ctx context.Context, g *assay.Graph, alloc chip.Allocation, opts Options, baseline bool) (*Solution, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil assay")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := alloc.Covers(g); err != nil {
		return nil, err
	}
	start := time.Now()
	comps := alloc.Instantiate()
	var stages StageTimes
	var degr []Degradation
	tr := obs.From(ctx)
	tr.Begin(obs.CatPipeline, "synthesize")
	defer tr.End(obs.CatPipeline, "synthesize")

	// Stage labels for CPU profiles: a profile taken under load
	// attributes samples to schedule/place/route directly. Labels ride
	// the goroutine, not the Solution, so determinism is untouched.
	setStage := func(stage string) {
		pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels("stage", stage)))
	}
	defer pprof.SetGoroutineLabels(ctx)

	setStage("schedule")
	tr.Begin(obs.CatSchedule, "schedule")
	var sched *schedule.Result
	var err error
	if baseline {
		sched, err = schedule.ScheduleBaselineContext(ctx, g, comps, opts.Schedule)
	} else {
		sctx, cancel := stageCtx(ctx, opts.Degrade.ScheduleDeadline)
		sched, err = schedule.ScheduleContext(sctx, g, comps, opts.Schedule)
		if stageDeadlineMiss(ctx, sctx, err) {
			// Rung: the DCSA-aware scheduler overran its budget. The
			// baseline list-scheduler solves the same problem with a
			// strictly cheaper policy, so a schedulable assay stays
			// schedulable — at the cost of the paper's storage-aware
			// binding quality.
			tr.Instant(obs.CatSchedule, "degrade.schedule.fallback")
			degr = append(degr, Degradation{Stage: "schedule", Event: "baseline-fallback",
				Detail: fmt.Sprintf("DCSA scheduler exceeded %v; baseline list-scheduling substituted", opts.Degrade.ScheduleDeadline)})
			sched, err = schedule.ScheduleBaselineContext(ctx, g, comps, opts.Schedule)
		}
		cancel()
	}
	stages.Schedule = time.Since(start)
	tr.End(obs.CatSchedule, "schedule")
	if err != nil {
		return nil, fmt.Errorf("core: scheduling %q: %w", g.Name(), err)
	}

	nets := place.BuildNets(sched, opts.Place.Beta, opts.Place.Gamma)

	// Placement and routing with congestion recovery: the router first
	// dilates the placement (route.Solve); if the conflict pattern is
	// anchored at component boundaries and survives dilation, synthesis
	// retries from a different annealing seed — the standard
	// iterate-until-routable loop of physical design flows. Everything
	// stays deterministic: the seed ladder is fixed. The degradation
	// ladder extends the loop, never changes its clean path: rip-up
	// recovery arms an extra router mechanism, soft deadlines convert
	// stage overruns into retries, and ReducedEffort buys four more
	// attempts at quartered annealing effort.
	var routing *route.Result
	var used *place.Placement
	popts := opts.Place
	portfolio := opts.Portfolio
	tempering := opts.Tempering
	ropts := opts.Route
	if ropts.RipUpRounds == 0 {
		ropts.RipUpRounds = opts.Degrade.RipUpRounds
	}
	maxAttempts := 4
	if opts.Degrade.ReducedEffort && !baseline {
		maxAttempts = 8
	}
	var attempt int
	for ; ; attempt++ {
		placeStart := time.Now()
		setStage("place")
		tr.Begin(obs.CatPlace, "place")
		var pl *place.Placement
		if baseline {
			pl, err = place.ConstructContext(ctx, comps, nets, popts)
		} else {
			pctx, cancel := stageCtx(ctx, opts.Degrade.PlaceDeadline)
			pl, err = annealPlacement(pctx, comps, nets, popts, portfolio, tempering)
			if stageDeadlineMiss(ctx, pctx, err) {
				// Rung: the anneal overran its budget. Retry once at a
				// quarter of the moves per temperature step, single seed,
				// with no further deadline — the reduced schedule is
				// bounded and cheap, and a degraded placement beats none.
				reduced := popts
				reduced.Imax = max(1, popts.Imax/4)
				tr.Instant(obs.CatPlace, "degrade.place.reduced")
				degr = append(degr, Degradation{Stage: "place", Event: "reduced-effort",
					Detail: fmt.Sprintf("anneal exceeded %v; retried at Imax=%d without portfolio", opts.Degrade.PlaceDeadline, reduced.Imax)})
				pl, err = annealPortfolio(ctx, comps, nets, reduced, 0)
			}
			cancel()
		}
		stages.Place += time.Since(placeStart)
		tr.End(obs.CatPlace, "place")
		if err != nil {
			return nil, fmt.Errorf("core: placing %q: %w", g.Name(), err)
		}
		routeStart := time.Now()
		setStage("route")
		tr.Begin(obs.CatRoute, "route")
		rctx, rcancel := stageCtx(ctx, opts.Degrade.RouteDeadline)
		routing, used, err = route.SolveContext(rctx, sched, comps, pl, ropts, baseline)
		routeMiss := stageDeadlineMiss(ctx, rctx, err)
		rcancel()
		stages.Route += time.Since(routeStart)
		tr.End(obs.CatRoute, "route")
		if err == nil {
			break
		}
		if routeMiss {
			// Rung: a routing deadline overrun is one failed
			// congestion-recovery attempt, not a fatal error — the next
			// attempt starts from a different placement.
			degr = append(degr, Degradation{Stage: "route", Event: "deadline",
				Detail: fmt.Sprintf("routing attempt %d exceeded %v", attempt+1, opts.Degrade.RouteDeadline)})
		}
		if ctx.Err() != nil || attempt >= maxAttempts {
			return nil, fmt.Errorf("core: routing %q: %w", g.Name(), err)
		}
		popts.Seed++
		tr.Instant(obs.CatPipeline, "synthesize.retry",
			obs.Arg{Key: "attempt", Val: float64(attempt + 1)},
			obs.Arg{Key: "seed", Val: float64(popts.Seed)})
		if attempt+1 == 5 {
			// Rung: four full-effort attempts failed; the remaining
			// attempts run the last-resort reduced-effort restart.
			popts.Imax = max(1, opts.Place.Imax/4)
			portfolio = 0
			tempering = 0
			tr.Instant(obs.CatPlace, "degrade.place.restart")
			degr = append(degr, Degradation{Stage: "place", Event: "reduced-effort",
				Detail: fmt.Sprintf("4 routing attempts failed; annealing restarted at Imax=%d without portfolio", popts.Imax)})
		}
		// The baseline placer is deterministic in the seed; give it more
		// room instead.
		if baseline {
			if popts.PlaneW == 0 || popts.PlaneH == 0 {
				popts.PlaneW, popts.PlaneH = place.AutoPlane(comps, popts.Spacing)
			}
			popts.PlaneW += popts.PlaneW / 4
			popts.PlaneH += popts.PlaneH / 4
		}
	}

	// Recovery provenance from the successful attempt. None of these fire
	// on a clean run — the runs the pinned fingerprints cover — so the
	// recording is unconditional.
	if attempt > 0 {
		degr = append(degr, Degradation{Stage: "route", Event: "seed-retry",
			Detail: fmt.Sprintf("%d placement seed retries before routable (final seed %d)", attempt, popts.Seed)})
	}
	if routing.DilationTries > 0 {
		degr = append(degr, Degradation{Stage: "route", Event: "dilate",
			Detail: fmt.Sprintf("placement dilated %d times before routable", routing.DilationTries)})
	}
	if routing.RecoveryRounds > 0 {
		degr = append(degr, Degradation{Stage: "route", Event: "ripup",
			Detail: fmt.Sprintf("%d rip-up recovery rounds rescued stuck tasks", routing.RecoveryRounds)})
	}
	if routing.DefectCells > 0 {
		degr = append(degr, Degradation{Stage: "route", Event: "defects",
			Detail: fmt.Sprintf("%d routing cells marked defective by fault injection", routing.DefectCells)})
	}

	sol := &Solution{
		Assay:        g,
		Comps:        comps,
		Opts:         opts,
		Schedule:     sched,
		Placement:    used,
		Nets:         nets,
		Routing:      routing,
		Baseline:     baseline,
		CPU:          time.Since(start),
		Stages:       stages,
		Degradations: degr,
	}
	// A degraded solution is never returned unaudited: whatever fallback
	// produced it, it must still satisfy every constraint of the DCSA
	// formulation or the synthesis fails with a typed error. Fault-armed
	// runs audit too, even when no degradation fired, so an injected
	// defect can never leak a silently-invalid solution.
	if opts.Verify || len(degr) > 0 || fault.From(ctx).Enabled() {
		setStage("verify")
		if err := Audit(sol).Err(); err != nil {
			return nil, fmt.Errorf("core: synthesized %q: %w", g.Name(), err)
		}
	}
	return sol, nil
}

// stageCtx wraps ctx with one stage's soft deadline, tagging the timeout
// with ErrStageDeadline so the ladder can tell its own budget expiring
// from the caller's. d <= 0 installs nothing.
func stageCtx(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, d, ErrStageDeadline)
}

// stageDeadlineMiss reports whether err is the stage's own soft deadline
// expiring — as opposed to the caller's context dying (fatal) or an
// organic stage failure (handled by the retry loop).
func stageDeadlineMiss(parent, stage context.Context, err error) bool {
	return err != nil && parent.Err() == nil &&
		errors.Is(err, context.DeadlineExceeded) &&
		errors.Is(context.Cause(stage), ErrStageDeadline)
}

// Audit runs the independent constraint auditor on a complete solution
// and returns its structured report. Unlike Validate, which reuses the
// per-stage validators, the auditor re-derives every constraint of the
// DCSA formulation from scratch (see internal/verify).
//
// A solution whose schedule came from the degradation ladder's
// baseline-fallback rung is audited under baseline scheduling rules: the
// list-scheduler deliberately ignores resident fluids, so holding it to
// the proposed flow's Case I policy would flag the fallback itself as a
// violation. Every physical constraint is still checked in full.
func Audit(sol *Solution) *verify.Report {
	if sol == nil {
		return verify.Audit(verify.Input{})
	}
	baselineSchedule := sol.Baseline
	for _, d := range sol.Degradations {
		if d.Stage == "schedule" && d.Event == "baseline-fallback" {
			baselineSchedule = true
		}
	}
	return verify.Audit(verify.Input{
		Assay:     sol.Assay,
		Comps:     sol.Comps,
		Schedule:  sol.Schedule,
		Placement: sol.Placement,
		Routing:   sol.Routing,
		Baseline:  baselineSchedule,
	})
}
