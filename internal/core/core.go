// Package core implements the paper's primary contribution end to end:
// the top-down flow-layer physical synthesis of DCSA-based biochips.
//
// Given a bioassay (sequencing graph), a component allocation and the
// algorithm parameters, Synthesize runs the three stages of Section IV —
// DCSA-aware resource binding and scheduling (Algorithm 1), simulated-
// annealing placement driven by connection priorities (Algorithm 2,
// lines 1-8) and transportation-conflict-aware weighted A* routing
// (Algorithm 2, lines 9-18) — and returns a complete Solution carrying
// the metrics reported in Table I and Figs. 8-9. SynthesizeBaseline runs
// the comparison algorithm BA of Section V on the same inputs.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/schedule"
	"repro/internal/unit"
	"repro/internal/verify"
)

// Options bundles the parameters of every stage. The zero value is not
// usable; start from DefaultOptions (the paper's published settings).
type Options struct {
	Schedule schedule.Options
	Place    place.Params
	Route    route.Params
	// Portfolio, when >= 2, anneals that many placements concurrently
	// (seeds Place.Seed … Place.Seed+Portfolio-1) and keeps the one with
	// the lowest Eq. 3 energy, ties broken by the smallest seed. 0 or 1
	// runs the single-seed anneal and reproduces its output exactly. Only
	// the proposed flow uses it; the baseline placer is deterministic in
	// the seed and gains nothing from restarts.
	Portfolio int
	// Verify, when set, runs the independent constraint auditor
	// (internal/verify) on every synthesized solution before returning it
	// and fails the synthesis if the audit reports any violation. The
	// audit reads the finished solution only — it consumes no randomness
	// and cannot change the result, so enabling it preserves the pinned
	// fingerprints at the cost of one extra pass over the solution.
	Verify bool
}

// DefaultOptions returns the experimental parameters of Section V:
// t_c = 2 s, α = 0.9, β = 0.6, γ = 0.4, T0 = 10000, Imax = 150,
// Tmin = 1.0, w_e = 10.
func DefaultOptions() Options {
	return Options{
		Schedule: schedule.DefaultOptions(),
		Place:    place.DefaultParams(),
		Route:    route.DefaultParams(),
	}
}

// Solution is a complete physical synthesis result.
type Solution struct {
	Assay     *assay.Graph
	Comps     []chip.Component
	Opts      Options
	Schedule  *schedule.Result
	Placement *place.Placement
	Nets      []place.Net
	Routing   *route.Result
	// Baseline records which algorithm produced the solution.
	Baseline bool
	// CPU is the wall-clock synthesis time (the Table I "CPU time"
	// column).
	CPU time.Duration
	// Stages breaks CPU down by pipeline stage (placement and routing
	// accumulate across congestion-recovery attempts). Like CPU it is
	// measurement, not solution content: fingerprints exclude it.
	Stages StageTimes
}

// StageTimes is the wall-clock spent in each synthesis stage.
type StageTimes struct {
	Schedule time.Duration
	Place    time.Duration
	Route    time.Duration
}

// Metrics are the quantities the paper evaluates.
type Metrics struct {
	// ExecutionTime is the bioassay completion time (Table I).
	ExecutionTime unit.Time
	// Utilization is U_r of Eq. 1 in [0,1] (Table I).
	Utilization float64
	// ChannelLength is the total fabricated flow-channel length (Table I).
	ChannelLength unit.Length
	// CacheTime is the total channel-storage time (Fig. 8).
	CacheTime unit.Time
	// ChannelWashTime is the total flow-channel wash time (Fig. 9).
	ChannelWashTime unit.Time
	// ComponentWashTime is the total component wash time.
	ComponentWashTime unit.Time
	// Transports is the number of inter-component transportation tasks.
	Transports int
	// CPU is the synthesis wall-clock time (Table I).
	CPU time.Duration
}

// Metrics extracts the evaluation quantities from the solution.
func (s *Solution) Metrics() Metrics {
	return Metrics{
		ExecutionTime:     s.Schedule.Makespan,
		Utilization:       s.Schedule.Utilization(),
		ChannelLength:     s.Routing.TotalLength(),
		CacheTime:         s.Schedule.TotalChannelCacheTime(),
		ChannelWashTime:   s.Routing.ChannelWash,
		ComponentWashTime: s.Schedule.TotalComponentWashTime(),
		Transports:        len(s.Schedule.Transports),
		CPU:               s.CPU,
	}
}

// Validate re-checks every stage of the solution independently.
func (s *Solution) Validate() error {
	if err := schedule.Validate(s.Schedule); err != nil {
		return fmt.Errorf("core: schedule invalid: %w", err)
	}
	if err := s.Placement.Legal(0); err != nil {
		// Spacing was enforced at placement time; here only structural
		// legality (bounds, overlap) matters because dilation may have
		// rescaled coordinates.
		return fmt.Errorf("core: placement invalid: %w", err)
	}
	if err := route.Validate(s.Routing, s.Schedule, s.Comps, s.Placement, s.Opts.Route); err != nil {
		return fmt.Errorf("core: routing invalid: %w", err)
	}
	return nil
}

// Synthesize runs the proposed DCSA-aware top-down synthesis flow.
func Synthesize(g *assay.Graph, alloc chip.Allocation, opts Options) (*Solution, error) {
	return synthesize(context.Background(), g, alloc, opts, false)
}

// SynthesizeContext is Synthesize with cancellation and deadlines: every
// stage polls ctx at its natural step boundary (between scheduling
// commits, simulated-annealing temperature steps and per-task A*
// routings) and the flow aborts promptly with an error wrapping ctx's
// error. The polls read no algorithm state and consume no randomness, so
// an uncancelled context produces byte-identical solutions to
// Synthesize — the property the service cache and the pinned fingerprints
// in determinism_test.go rely on.
func SynthesizeContext(ctx context.Context, g *assay.Graph, alloc chip.Allocation, opts Options) (*Solution, error) {
	return synthesize(ctx, g, alloc, opts, false)
}

// SynthesizeBaseline runs the baseline algorithm BA: earliest-ready
// binding, construction-by-correction placement and routing.
func SynthesizeBaseline(g *assay.Graph, alloc chip.Allocation, opts Options) (*Solution, error) {
	return synthesize(context.Background(), g, alloc, opts, true)
}

// SynthesizeBaselineContext is SynthesizeBaseline with cancellation (see
// SynthesizeContext).
func SynthesizeBaselineContext(ctx context.Context, g *assay.Graph, alloc chip.Allocation, opts Options) (*Solution, error) {
	return synthesize(ctx, g, alloc, opts, true)
}

func synthesize(ctx context.Context, g *assay.Graph, alloc chip.Allocation, opts Options, baseline bool) (*Solution, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil assay")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := alloc.Covers(g); err != nil {
		return nil, err
	}
	start := time.Now()
	comps := alloc.Instantiate()
	var stages StageTimes
	tr := obs.From(ctx)
	tr.Begin(obs.CatPipeline, "synthesize")
	defer tr.End(obs.CatPipeline, "synthesize")

	tr.Begin(obs.CatSchedule, "schedule")
	var sched *schedule.Result
	var err error
	if baseline {
		sched, err = schedule.ScheduleBaselineContext(ctx, g, comps, opts.Schedule)
	} else {
		sched, err = schedule.ScheduleContext(ctx, g, comps, opts.Schedule)
	}
	stages.Schedule = time.Since(start)
	tr.End(obs.CatSchedule, "schedule")
	if err != nil {
		return nil, fmt.Errorf("core: scheduling %q: %w", g.Name(), err)
	}

	nets := place.BuildNets(sched, opts.Place.Beta, opts.Place.Gamma)

	// Placement and routing with congestion recovery: the router first
	// dilates the placement (route.Solve); if the conflict pattern is
	// anchored at component boundaries and survives dilation, synthesis
	// retries from a different annealing seed — the standard
	// iterate-until-routable loop of physical design flows. Everything
	// stays deterministic: the seed ladder is fixed.
	var routing *route.Result
	var used *place.Placement
	popts := opts.Place
	for attempt := 0; ; attempt++ {
		placeStart := time.Now()
		tr.Begin(obs.CatPlace, "place")
		var pl *place.Placement
		if baseline {
			pl, err = place.ConstructContext(ctx, comps, nets, popts)
		} else {
			pl, err = annealPortfolio(ctx, comps, nets, popts, opts.Portfolio)
		}
		stages.Place += time.Since(placeStart)
		tr.End(obs.CatPlace, "place")
		if err != nil {
			return nil, fmt.Errorf("core: placing %q: %w", g.Name(), err)
		}
		routeStart := time.Now()
		tr.Begin(obs.CatRoute, "route")
		routing, used, err = route.SolveContext(ctx, sched, comps, pl, opts.Route, baseline)
		stages.Route += time.Since(routeStart)
		tr.End(obs.CatRoute, "route")
		if err == nil {
			break
		}
		if ctx.Err() != nil || attempt >= 4 {
			return nil, fmt.Errorf("core: routing %q: %w", g.Name(), err)
		}
		popts.Seed++
		tr.Instant(obs.CatPipeline, "synthesize.retry",
			obs.Arg{Key: "attempt", Val: float64(attempt + 1)},
			obs.Arg{Key: "seed", Val: float64(popts.Seed)})
		// The baseline placer is deterministic in the seed; give it more
		// room instead.
		if baseline {
			if popts.PlaneW == 0 || popts.PlaneH == 0 {
				popts.PlaneW, popts.PlaneH = place.AutoPlane(comps, popts.Spacing)
			}
			popts.PlaneW += popts.PlaneW / 4
			popts.PlaneH += popts.PlaneH / 4
		}
	}

	sol := &Solution{
		Assay:     g,
		Comps:     comps,
		Opts:      opts,
		Schedule:  sched,
		Placement: used,
		Nets:      nets,
		Routing:   routing,
		Baseline:  baseline,
		CPU:       time.Since(start),
		Stages:    stages,
	}
	if opts.Verify {
		if err := Audit(sol).Err(); err != nil {
			return nil, fmt.Errorf("core: synthesized %q: %w", g.Name(), err)
		}
	}
	return sol, nil
}

// Audit runs the independent constraint auditor on a complete solution
// and returns its structured report. Unlike Validate, which reuses the
// per-stage validators, the auditor re-derives every constraint of the
// DCSA formulation from scratch (see internal/verify).
func Audit(sol *Solution) *verify.Report {
	if sol == nil {
		return verify.Audit(verify.Input{})
	}
	return verify.Audit(verify.Input{
		Assay:     sol.Assay,
		Comps:     sol.Comps,
		Schedule:  sol.Schedule,
		Placement: sol.Placement,
		Routing:   sol.Routing,
		Baseline:  sol.Baseline,
	})
}
