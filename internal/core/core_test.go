package core

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/unit"
)

// fastOpts shortens the SA schedule so the whole benchmark suite runs in
// seconds while keeping every published parameter that affects quality
// comparisons between ours and the baseline.
func fastOpts() Options {
	o := DefaultOptions()
	o.Place.Imax = 40
	return o
}

func TestSynthesizeEndToEndAllBenchmarks(t *testing.T) {
	for _, bm := range benchdata.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			sol, err := Synthesize(bm.Graph, bm.Alloc, fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			if err := sol.Validate(); err != nil {
				t.Fatal(err)
			}
			m := sol.Metrics()
			if m.ExecutionTime <= 0 {
				t.Error("non-positive execution time")
			}
			if m.Utilization <= 0 || m.Utilization > 1 {
				t.Errorf("utilization %v out of range", m.Utilization)
			}
			if m.Transports > 0 && m.ChannelLength <= 0 {
				t.Error("transports exist but channel length is zero")
			}
		})
	}
}

func TestBaselineEndToEndAllBenchmarks(t *testing.T) {
	for _, bm := range benchdata.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			sol, err := SynthesizeBaseline(bm.Graph, bm.Alloc, fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			if err := sol.Validate(); err != nil {
				t.Fatal(err)
			}
			if !sol.Baseline {
				t.Error("baseline flag not set")
			}
		})
	}
}

// TestTableIShape asserts the qualitative claims of Table I: the proposed
// algorithm is never worse than BA on execution time or resource
// utilization on any benchmark.
func TestTableIShape(t *testing.T) {
	for _, bm := range benchdata.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			ours, err := Synthesize(bm.Graph, bm.Alloc, fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			ba, err := SynthesizeBaseline(bm.Graph, bm.Alloc, fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			om, bm2 := ours.Metrics(), ba.Metrics()
			if om.ExecutionTime > bm2.ExecutionTime {
				t.Errorf("execution time: ours %v > BA %v", om.ExecutionTime, bm2.ExecutionTime)
			}
			if om.Utilization < bm2.Utilization-1e-9 {
				t.Errorf("utilization: ours %.3f < BA %.3f", om.Utilization, bm2.Utilization)
			}
			t.Logf("%s: exec %v vs %v | U %.1f%% vs %.1f%% | len %v vs %v | cache %v vs %v | wash %v vs %v",
				bm.Name, om.ExecutionTime, bm2.ExecutionTime,
				100*om.Utilization, 100*bm2.Utilization,
				om.ChannelLength, bm2.ChannelLength,
				om.CacheTime, bm2.CacheTime,
				om.ChannelWashTime, bm2.ChannelWashTime)
		})
	}
}

func TestSynthesizeRejectsBadInputs(t *testing.T) {
	if _, err := Synthesize(nil, chip.Allocation{1, 0, 0, 0}, fastOpts()); err == nil {
		t.Error("nil assay not rejected")
	}
	bm := benchdata.PCR()
	if _, err := Synthesize(bm.Graph, chip.Allocation{0, 0, 0, 1}, fastOpts()); err == nil {
		t.Error("non-covering allocation not rejected")
	}
}

func TestSolutionDeterminism(t *testing.T) {
	bm := benchdata.Synthetic(1)
	a, err := Synthesize(bm.Graph, bm.Alloc, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(bm.Graph, bm.Alloc, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	am, bm2 := a.Metrics(), b.Metrics()
	if am.ExecutionTime != bm2.ExecutionTime || am.ChannelLength != bm2.ChannelLength ||
		am.CacheTime != bm2.CacheTime || am.ChannelWashTime != bm2.ChannelWashTime {
		t.Errorf("synthesis not deterministic: %+v vs %+v", am, bm2)
	}
}

func TestSingleOpAssay(t *testing.T) {
	b := assay.NewBuilder("single")
	b.AddOp("only", assay.Mix, unit.Seconds(5), fluid.Fluid{D: 1e-6})
	g := b.MustBuild()
	sol, err := Synthesize(g, chip.Allocation{1, 0, 0, 0}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(); err != nil {
		t.Fatal(err)
	}
	m := sol.Metrics()
	if m.ExecutionTime != unit.Seconds(5) {
		t.Errorf("execution time %v, want 5s", m.ExecutionTime)
	}
	if m.Transports != 0 || m.ChannelLength != 0 {
		t.Errorf("single op should need no channels: %+v", m)
	}
	if m.Utilization != 1 {
		t.Errorf("utilization %v, want 1", m.Utilization)
	}
}

// TestVerifyOption: the opt-in audit gate must pass clean syntheses
// through unchanged and the auditor must reject a corrupted solution.
func TestVerifyOption(t *testing.T) {
	bm, err := benchdata.ByName("PCR")
	if err != nil {
		t.Fatal(err)
	}
	o := fastOpts()
	o.Verify = true
	sol, err := Synthesize(bm.Graph, bm.Alloc, o)
	if err != nil {
		t.Fatalf("verified synthesis failed: %v", err)
	}
	if rep := Audit(sol); !rep.OK() {
		t.Fatalf("audit of a fresh solution found violations:\n%s", rep)
	}
	sol.Schedule.Makespan++
	if rep := Audit(sol); rep.OK() {
		t.Error("corrupted makespan not reported")
	}
	if rep := Audit(nil); rep.OK() {
		t.Error("nil solution audited clean")
	}
}
