package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/benchdata"
	"repro/internal/fault"
)

// TestDegradeZeroValueOff pins that the zero Degrade disables the ladder
// and a clean synthesis records no degradations — the invariant the
// pinned fingerprints rely on.
func TestDegradeZeroValueOff(t *testing.T) {
	if (Degrade{}).Enabled() {
		t.Fatal("zero Degrade reports enabled")
	}
	if (Degrade{RipUpRounds: 2}).Enabled() == false {
		t.Fatal("armed Degrade reports disabled")
	}
	bm := benchdata.All()[0]
	sol, err := Synthesize(bm.Graph, bm.Alloc, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Degraded() || len(sol.Degradations) != 0 {
		t.Fatalf("clean run recorded degradations: %v", sol.Degradations)
	}
}

// TestScheduleDeadlineFallback: an impossible scheduling budget triggers
// the baseline list-scheduler fallback instead of failing, and the
// degraded solution passes the independent audit.
func TestScheduleDeadlineFallback(t *testing.T) {
	bm := benchdata.All()[0]
	opts := fastOpts()
	opts.Degrade.ScheduleDeadline = time.Nanosecond
	sol, err := SynthesizeContext(context.Background(), bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hasEvent(sol, "schedule", "baseline-fallback") {
		t.Fatalf("no schedule fallback recorded: %v", sol.Degradations)
	}
	if err := Audit(sol).Err(); err != nil {
		t.Fatalf("degraded solution fails audit: %v", err)
	}
	if err := sol.Validate(); err != nil {
		t.Fatalf("degraded solution fails validation: %v", err)
	}
}

// TestPlaceDeadlineReducedEffort: an impossible annealing budget triggers
// the reduced-effort retry rung.
func TestPlaceDeadlineReducedEffort(t *testing.T) {
	bm := benchdata.All()[0]
	opts := fastOpts()
	opts.Degrade.PlaceDeadline = time.Nanosecond
	sol, err := SynthesizeContext(context.Background(), bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hasEvent(sol, "place", "reduced-effort") {
		t.Fatalf("no place reduced-effort recorded: %v", sol.Degradations)
	}
	if err := sol.Validate(); err != nil {
		t.Fatalf("degraded solution fails validation: %v", err)
	}
}

// TestRouteDeadlineExhausts: a routing budget nothing can meet burns
// every congestion-recovery attempt and fails with the deadline in the
// error chain — degraded-but-unroutable never returns a solution.
func TestRouteDeadlineExhausts(t *testing.T) {
	bm := benchdata.All()[0]
	opts := fastOpts()
	opts.Degrade.RouteDeadline = time.Nanosecond
	sol, err := SynthesizeContext(context.Background(), bm.Graph, bm.Alloc, opts)
	if err == nil {
		t.Fatalf("synthesis succeeded under a 1ns routing deadline (degradations %v)", sol.Degradations)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not carry the deadline: %v", err)
	}
}

// TestParentCancelIsNotADeadlineMiss: the ladder must not treat the
// caller's context dying as a stage overrun — cancellation stays fatal
// even with every deadline armed.
func TestParentCancelIsNotADeadlineMiss(t *testing.T) {
	bm := benchdata.All()[0]
	opts := fastOpts()
	opts.Degrade.ScheduleDeadline = time.Hour
	opts.Degrade.PlaceDeadline = time.Hour
	opts.Degrade.RouteDeadline = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := SynthesizeContext(ctx, bm.Graph, bm.Alloc, opts)
	if err == nil {
		t.Fatalf("synthesis succeeded on a cancelled context (degradations %v)", sol.Degradations)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not carry cancellation: %v", err)
	}
}

// TestInjectedStageFailTyped: an injected stage failure surfaces as a
// typed *fault.Error, never a silent or mislabelled result.
func TestInjectedStageFailTyped(t *testing.T) {
	bm := benchdata.All()[0]
	ctx := fault.Into(context.Background(),
		fault.NewPlan(3).Arm(fault.ScheduleStepFail, fault.Once(0)))
	_, err := SynthesizeContext(ctx, bm.Graph, bm.Alloc, fastOpts())
	if err == nil {
		t.Fatal("synthesis succeeded with an injected schedule failure")
	}
	if !fault.IsInjected(err) {
		t.Fatalf("injected failure lost its type: %v", err)
	}
}

// TestInjectedDefectsAuditedOrTyped is the acceptance property for
// routing-cell faults: with defects injected the synthesis either
// returns a solution that passed the independent audit (and says so in
// Degradations) or fails with a typed error — never a silently invalid
// solution.
func TestInjectedDefectsAuditedOrTyped(t *testing.T) {
	bm := benchdata.All()[0]
	for _, seed := range []uint64{1, 7, 42} {
		plan := fault.NewPlan(seed).Arm(fault.RouteCellBlocked, fault.Policy{Prob: 0.02})
		ctx := fault.Into(context.Background(), plan)
		opts := fastOpts()
		opts.Degrade.RipUpRounds = 3
		sol, err := SynthesizeContext(ctx, bm.Graph, bm.Alloc, opts)
		if err != nil {
			// A defect pattern may legitimately make the chip unroutable;
			// the failure must then be explicit.
			t.Logf("seed %d: typed failure: %v", seed, err)
			continue
		}
		if st := plan.Stats()[fault.RouteCellBlocked]; st.Fires > 0 && !hasEvent(sol, "route", "defects") {
			t.Errorf("seed %d: %d defect cells fired but no defects degradation recorded", seed, st.Fires)
		}
		// synthesize audits fault-armed runs before returning; re-audit
		// here so the test does not depend on that internal wiring.
		if err := Audit(sol).Err(); err != nil {
			t.Errorf("seed %d: defect-era solution fails audit: %v", seed, err)
		}
		if err := sol.Validate(); err != nil {
			t.Errorf("seed %d: defect-era solution fails validation: %v", seed, err)
		}
	}
}

func hasEvent(sol *Solution, stage, event string) bool {
	for _, d := range sol.Degradations {
		if d.Stage == stage && d.Event == event {
			return true
		}
	}
	return false
}
