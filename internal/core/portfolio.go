package core

import (
	"context"
	"sync"

	"repro/internal/chip"
	"repro/internal/place"
)

// annealPortfolio runs K independent simulated-annealing placements with
// seeds base, base+1, …, base+K-1 concurrently and returns the winner.
// Each anneal is fully deterministic in its seed, and the winner is
// chosen by the deterministic (energy, seed) tie-break — strictly lowest
// Eq. 3 energy first, smallest seed on exact ties — so the portfolio's
// output is a pure function of (inputs, base seed, K) regardless of
// goroutine scheduling. K <= 1 degenerates to the plain single-seed
// anneal and reproduces it exactly.
// annealPlacement dispatches the proposed flow's placement search:
// parallel tempering when tempering >= 2 (it subsumes the portfolio —
// replicas already span distinct seeds), otherwise the K-seed portfolio.
func annealPlacement(ctx context.Context, comps []chip.Component, nets []place.Net, pr place.Params, portfolio, tempering int) (*place.Placement, error) {
	if tempering >= 2 {
		return place.AnnealTemperedContext(ctx, comps, nets, pr, tempering, 0)
	}
	return annealPortfolio(ctx, comps, nets, pr, portfolio)
}

func annealPortfolio(ctx context.Context, comps []chip.Component, nets []place.Net, pr place.Params, k int) (*place.Placement, error) {
	if k <= 1 {
		return place.AnnealContext(ctx, comps, nets, pr)
	}
	type attempt struct {
		pl     *place.Placement
		energy float64
		err    error
	}
	out := make([]attempt, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pi := pr
			pi.Seed = pr.Seed + uint64(i)
			pl, err := place.AnnealContext(ctx, comps, nets, pi)
			if err != nil {
				out[i] = attempt{err: err}
				return
			}
			// Score with the reference evaluator: the incremental totals
			// inside Anneal are for its own trajectory, the portfolio
			// compares final placements on the verification Energy.
			out[i] = attempt{pl: pl, energy: place.Energy(pl, nets)}
		}(i)
	}
	wg.Wait()
	best := -1
	for i := range out {
		if out[i].err != nil {
			continue
		}
		// Strict < keeps the smallest seed (lowest index) on exact energy
		// ties: out is ordered by seed.
		if best < 0 || out[i].energy < out[best].energy {
			best = i
		}
	}
	if best < 0 {
		return nil, out[0].err
	}
	return out[best].pl, nil
}
