package core

import (
	"context"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/place"
	"repro/internal/schedule"
)

// TestPortfolioDisabledMatchesSingle pins the opt-in contract: Portfolio
// 0 and 1 must reproduce the plain single-seed synthesis exactly,
// placement rectangle for placement rectangle.
func TestPortfolioDisabledMatchesSingle(t *testing.T) {
	bm := benchdata.Synthetic(1)
	ref, err := Synthesize(bm.Graph, bm.Alloc, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1} {
		opts := fastOpts()
		opts.Portfolio = k
		sol, err := Synthesize(bm.Graph, bm.Alloc, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Placement.Rects {
			if sol.Placement.Rects[i] != ref.Placement.Rects[i] {
				t.Fatalf("Portfolio=%d: rect %d = %+v, single-seed %+v",
					k, i, sol.Placement.Rects[i], ref.Placement.Rects[i])
			}
		}
	}
}

// TestPortfolioDeterministic runs the concurrent portfolio twice and
// demands identical output: the (energy, seed) winner selection must be
// independent of goroutine scheduling.
func TestPortfolioDeterministic(t *testing.T) {
	bm := benchdata.Synthetic(2)
	opts := fastOpts()
	opts.Portfolio = 6
	a, err := Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Placement.Rects) != len(b.Placement.Rects) {
		t.Fatalf("placement sizes differ")
	}
	for i := range a.Placement.Rects {
		if a.Placement.Rects[i] != b.Placement.Rects[i] {
			t.Fatalf("rect %d differs between identical portfolio runs: %+v vs %+v",
				i, a.Placement.Rects[i], b.Placement.Rects[i])
		}
	}
	am, bm2 := a.Metrics(), b.Metrics()
	if am.ExecutionTime != bm2.ExecutionTime || am.ChannelLength != bm2.ChannelLength {
		t.Errorf("portfolio metrics differ: %+v vs %+v", am, bm2)
	}
}

// TestPortfolioNoWorseThanSingle checks the point of restarts, on the
// placement stage in isolation (routing may dilate the placement, which
// would muddy the energy comparison): the portfolio winner's Eq. 3
// energy is at most the single-seed one, because the base seed is a
// member of the portfolio.
func TestPortfolioNoWorseThanSingle(t *testing.T) {
	for _, name := range []string{"CPA", "Synthetic2"} {
		bm, err := benchdata.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := fastOpts()
		comps := bm.Alloc.Instantiate()
		sched, err := schedule.Schedule(bm.Graph, comps, opts.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		nets := place.BuildNets(sched, opts.Place.Beta, opts.Place.Gamma)
		single, err := place.Anneal(comps, nets, opts.Place)
		if err != nil {
			t.Fatal(err)
		}
		port, err := annealPortfolio(context.Background(), comps, nets, opts.Place, 4)
		if err != nil {
			t.Fatal(err)
		}
		se := place.Energy(single, nets)
		pe := place.Energy(port, nets)
		if pe > se {
			t.Errorf("%s: portfolio energy %v worse than single-seed %v", name, pe, se)
		}
		t.Logf("%s: single-seed energy %.1f, portfolio-of-4 %.1f", name, se, pe)
	}
}
