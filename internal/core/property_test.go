package core

import (
	"fmt"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/rng"
)

// TestPropertyFullPipelineOnRandomAssays pushes random assays through the
// complete synthesis flow (both algorithms) and validates every stage.
func TestPropertyFullPipelineOnRandomAssays(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline property test in short mode")
	}
	o := DefaultOptions()
	o.Place.Imax = 25
	for seed := uint64(1); seed <= 20; seed++ {
		r := rng.New(seed * 13)
		ops := 5 + r.Intn(30)
		alloc := chip.Allocation{1 + r.Intn(3), r.Intn(3), r.Intn(2), r.Intn(2)}
		g := benchdata.GenerateSynthetic(fmt.Sprintf("pipe%d", seed), ops, alloc, seed)
		for _, baseline := range []bool{false, true} {
			var sol *Solution
			var err error
			if baseline {
				sol, err = SynthesizeBaseline(g, alloc, o)
			} else {
				sol, err = Synthesize(g, alloc, o)
			}
			if err != nil {
				t.Fatalf("seed %d baseline=%v: %v", seed, baseline, err)
			}
			if err := sol.Validate(); err != nil {
				t.Fatalf("seed %d baseline=%v: %v", seed, baseline, err)
			}
		}
	}
}
