// Package exact finds the optimal resource binding for small bioassays by
// exhaustive search, providing a quality yardstick for the paper's greedy
// Algorithm 1.
//
// The search enumerates every binding function Φ: O → C (restricted to
// type-compatible components, with same-type component symmetry broken by
// first-use canonical numbering) and derives the timing of each candidate
// with the same list-scheduling engine used by the heuristics. The result
// is therefore the optimal binding *under priority-ordered dispatch* —
// the natural exact counterpart of Algorithm 1, not a full exploration of
// arbitrary operation orderings.
package exact

import (
	"fmt"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// MaxCandidates bounds the number of bindings Optimal will enumerate.
const MaxCandidates = 2_000_000

// Stats describes an exhaustive search.
type Stats struct {
	// Candidates is the number of bindings evaluated after symmetry
	// breaking.
	Candidates int
	// Optimal is the best makespan found.
	Optimal unit.Time
}

// Optimal returns the binding-optimal schedule for g on comps, or an
// error when the assay is too large to enumerate.
func Optimal(g *assay.Graph, comps []chip.Component, opts schedule.Options) (*schedule.Result, Stats, error) {
	var st Stats
	if g == nil {
		return nil, st, fmt.Errorf("exact: nil assay")
	}
	// Components per type, in ID order.
	byType := make([][]chip.CompID, assay.NumOpTypes)
	for _, c := range comps {
		byType[c.Kind.Type] = append(byType[c.Kind.Type], c.ID)
	}
	ops := g.Operations()
	for _, op := range ops {
		if len(byType[op.Type]) == 0 {
			return nil, st, fmt.Errorf("exact: no %v component for %q", op.Type, op.Name)
		}
	}

	// Upper bound on candidate count (with symmetry breaking this is an
	// over-estimate; without it, the exact product).
	bound := 1
	for _, op := range ops {
		bound *= len(byType[op.Type])
		if bound > MaxCandidates {
			return nil, st, fmt.Errorf("exact: search space exceeds %d candidates", MaxCandidates)
		}
	}

	binding := make([]chip.CompID, len(ops))
	var best *schedule.Result

	// usedOfType[t] = how many distinct components of type t are already
	// referenced; a new op may use components 0..usedOfType[t] (first-use
	// canonical order), which removes the factorial symmetry between
	// identical components.
	usedOfType := make([]int, assay.NumOpTypes)

	var rec func(i int) error
	rec = func(i int) error {
		if i == len(ops) {
			st.Candidates++
			res, err := schedule.ScheduleWithBinding(g, comps, opts, binding)
			if err != nil {
				return err
			}
			if best == nil || res.Makespan < best.Makespan ||
				(res.Makespan == best.Makespan && res.Utilization() > best.Utilization()) {
				best = res
			}
			return nil
		}
		t := ops[i].Type
		avail := byType[t]
		limit := usedOfType[t] + 1
		if limit > len(avail) {
			limit = len(avail)
		}
		for k := 0; k < limit; k++ {
			binding[ops[i].ID] = avail[k]
			fresh := k == usedOfType[t]
			if fresh {
				usedOfType[t]++
			}
			if err := rec(i + 1); err != nil {
				return err
			}
			if fresh {
				usedOfType[t]--
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, st, err
	}
	st.Optimal = best.Makespan
	return best, st, nil
}
