package exact

import (
	"fmt"
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/unit"
)

func opts() schedule.Options { return schedule.DefaultOptions() }

func TestOptimalOnChain(t *testing.T) {
	// A chain on one mixer has exactly one binding; optimal = greedy.
	b := assay.NewBuilder("chain")
	prev := assay.NoOp
	for i := 0; i < 4; i++ {
		id := b.AddOp(fmt.Sprintf("o%d", i+1), assay.Mix, unit.Seconds(2), fluid1())
		if prev != assay.NoOp {
			b.AddDep(prev, id)
		}
		prev = id
	}
	g := b.MustBuild()
	comps := chip.Allocation{1, 0, 0, 0}.Instantiate()
	best, st, err := Optimal(g, comps, opts())
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates != 1 {
		t.Errorf("candidates = %d, want 1", st.Candidates)
	}
	if best.Makespan != unit.Seconds(8) {
		t.Errorf("optimal makespan = %v, want 8s", best.Makespan)
	}
	if err := schedule.Validate(best); err != nil {
		t.Error(err)
	}
}

func TestSymmetryBreakingReducesCandidates(t *testing.T) {
	// 4 independent mixes on 3 identical mixers: raw space is 3^4 = 81;
	// with first-use canonicalisation it is the number of partitions of
	// 4 labelled ops into ≤3 unlabelled groups = S(4,1)+S(4,2)+S(4,3) =
	// 1 + 7 + 6 = 14.
	b := assay.NewBuilder("par")
	for i := 0; i < 4; i++ {
		b.AddOp(fmt.Sprintf("o%d", i+1), assay.Mix, unit.Seconds(2), fluid1())
	}
	g := b.MustBuild()
	comps := chip.Allocation{3, 0, 0, 0}.Instantiate()
	_, st, err := Optimal(g, comps, opts())
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates != 14 {
		t.Errorf("candidates = %d, want 14 (set partitions into ≤3 blocks)", st.Candidates)
	}
}

func TestOptimalNeverWorseThanHeuristics(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		r := rng.New(seed)
		ops := 4 + r.Intn(5) // 4..8 ops keeps the space tiny
		alloc := chip.Allocation{1 + r.Intn(2), r.Intn(2), 0, r.Intn(2)}
		g := benchdata.GenerateSynthetic(fmt.Sprintf("x%d", seed), ops, alloc, seed*3)
		comps := alloc.Instantiate()

		best, _, err := Optimal(g, comps, opts())
		if err != nil {
			t.Fatal(err)
		}
		if err := schedule.Validate(best); err != nil {
			t.Fatalf("seed %d: optimal schedule invalid: %v", seed, err)
		}
		ours, err := schedule.Schedule(g, comps, opts())
		if err != nil {
			t.Fatal(err)
		}
		ba, err := schedule.ScheduleBaseline(g, comps, opts())
		if err != nil {
			t.Fatal(err)
		}
		if best.Makespan > ours.Makespan {
			t.Errorf("seed %d: exact %v worse than greedy DCSA %v", seed, best.Makespan, ours.Makespan)
		}
		if best.Makespan > ba.Makespan {
			t.Errorf("seed %d: exact %v worse than BA %v", seed, best.Makespan, ba.Makespan)
		}
	}
}

// TestGreedyGapStatistics reports how close the paper's greedy algorithm
// gets to the binding-optimal schedule on random small assays — the
// quality argument behind using a heuristic at all.
func TestGreedyGapStatistics(t *testing.T) {
	var exactSum, greedySum unit.Time
	worst := 0.0
	for seed := uint64(30); seed < 60; seed++ {
		r := rng.New(seed)
		ops := 5 + r.Intn(4)
		alloc := chip.Allocation{2, 1, 0, 0}
		g := benchdata.GenerateSynthetic(fmt.Sprintf("gap%d", seed), ops, alloc, seed)
		comps := alloc.Instantiate()
		best, _, err := Optimal(g, comps, opts())
		if err != nil {
			t.Fatal(err)
		}
		ours, err := schedule.Schedule(g, comps, opts())
		if err != nil {
			t.Fatal(err)
		}
		exactSum += best.Makespan
		greedySum += ours.Makespan
		if gap := float64(ours.Makespan-best.Makespan) / float64(best.Makespan); gap > worst {
			worst = gap
		}
	}
	meanGap := float64(greedySum-exactSum) / float64(exactSum)
	t.Logf("greedy vs binding-optimal over 30 instances: mean gap %.1f%%, worst %.1f%%",
		100*meanGap, 100*worst)
	if meanGap > 0.25 {
		t.Errorf("greedy mean gap %.1f%% is implausibly large", 100*meanGap)
	}
}

func TestOptimalRejectsHugeSpace(t *testing.T) {
	bm := benchdata.CPA() // 55 ops on 8 mixers: astronomically large
	_, _, err := Optimal(bm.Graph, bm.Alloc.Instantiate(), opts())
	if err == nil {
		t.Fatal("oversized search space not rejected")
	}
}

func TestOptimalRejectsMissingComponent(t *testing.T) {
	b := assay.NewBuilder("m")
	b.AddOp("h", assay.Heat, unit.Seconds(2), fluid1())
	g := b.MustBuild()
	_, _, err := Optimal(g, chip.Allocation{1, 0, 0, 0}.Instantiate(), opts())
	if err == nil {
		t.Fatal("missing heater not rejected")
	}
}

func fluid1() fluid.Fluid {
	return fluid.Fluid{Name: "f", D: 1e-6}
}
