// Chaos suite: drive the whole service stack with the default fault
// plan armed and prove (a) every registered injection point actually
// fires — dead points would make the harness decorative — and (b) every
// request still reaches a correct terminal outcome: done (audited
// in-pipeline when faults are armed, degradations reported), failed with
// an explicit error, or backpressured. Run it under -race; the faults
// fire on worker goroutines, handler goroutines and the pipeline.
package fault_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/server"
)

// chaosServer builds a service with the given plan, the degradation
// ladder armed, and a queue wide enough that only injected faults — not
// sizing — shape the outcomes.
func chaosServer(t *testing.T, plan *fault.Plan) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Workers:          2,
		QueueCap:         256,
		BreakerThreshold: -1, // shedding off: every request must be attempted
		Fault:            plan,
		Degrade:          core.Degrade{RipUpRounds: 3, ReducedEffort: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return ts
}

// fireOne submits one request and follows it to a terminal outcome,
// failing the test on anything that is neither success nor an explicit,
// typed rejection.
func fireOne(t *testing.T, base string, i int) {
	t.Helper()
	body := fmt.Sprintf(`{"bench":"PCR","options":{"imax":60,"seed":%d}}`, i+1)
	resp, err := http.Post(base+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("request %d: %v", i, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
	case http.StatusInternalServerError, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// Injected handler error or backpressure: explicit, typed, done.
		return
	default:
		t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, data)
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatalf("request %d: decoding submit: %v", i, err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		jr, err := http.Get(base + "/v1/jobs/" + sub.JobID)
		if err != nil {
			t.Fatalf("request %d: poll: %v", i, err)
		}
		jdata, _ := io.ReadAll(jr.Body)
		jr.Body.Close()
		var job struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(jdata, &job); err != nil {
			t.Fatalf("request %d: decoding job: %v", i, err)
		}
		switch job.Status {
		case "done":
			return
		case "failed", "canceled":
			if job.Error == "" {
				t.Fatalf("request %d: job %s with no error message", i, job.Status)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("request %d: job %s stuck in %q", i, sub.JobID, job.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosEveryPointFires is the harness-liveness acceptance criterion:
// under the default chaos plan, sustained load makes every registered
// injection point fire at least once.
func TestChaosEveryPointFires(t *testing.T) {
	plan := fault.DefaultChaos(0xC0FFEE)
	ts := chaosServer(t, plan)

	allFired := func() (fault.Point, bool) {
		st := plan.Stats()
		for _, pi := range fault.Points() {
			if st[pi.Point].Fires == 0 {
				return pi.Point, false
			}
		}
		return "", true
	}

	const wave = 8
	seed := 0
	for round := 0; round < 40; round++ {
		var wg sync.WaitGroup
		for i := 0; i < wave; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Mix one-shot synthesis with chip-session traffic so the
				// session repair path's injection point sees evaluations.
				if i%2 == 1 {
					fireSession(t, ts.URL, i)
				} else {
					fireOne(t, ts.URL, i)
				}
			}(seed + i)
		}
		wg.Wait()
		seed += wave
		if _, ok := allFired(); ok {
			break
		}
	}
	if pt, ok := allFired(); !ok {
		t.Fatalf("point %q never fired after %d requests: %+v", pt, seed, plan.Stats())
	}
	t.Logf("all %d points fired within %d requests", len(fault.Points()), seed)

	// Every armed point must also have been evaluated far more often than
	// it fired — the probability gates are real, not Always() in disguise.
	for pt, st := range plan.Stats() {
		if st.Evals < st.Fires {
			t.Errorf("point %s: fires %d > evals %d", pt, st.Fires, st.Evals)
		}
	}
}

// fireSession opens a chip session and injects one fault report into
// it, accepting every explicit outcome the chaos plan can force: the
// create may fail on an injected synthesis fault, the repair may be
// aborted by session.repair.fail, and a clean pass repairs or degrades.
func fireSession(t *testing.T, base string, i int) {
	t.Helper()
	body := fmt.Sprintf(`{"bench":"PCR","options":{"imax":60,"seed":%d}}`, i+1)
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("session %d: %v", i, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated:
	case http.StatusInternalServerError, http.StatusServiceUnavailable:
		return // injected synthesis fault: explicit, typed, done
	default:
		t.Fatalf("session %d: create status %d: %s", i, resp.StatusCode, data)
	}
	var sr struct {
		Faults string `json:"faults"`
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("session %d: decoding create: %v", i, err)
	}
	fr := `{"at":0,"cells":[{"x":0,"y":0}]}`
	resp, err = http.Post(base+sr.Faults, "application/json", strings.NewReader(fr))
	if err != nil {
		t.Fatalf("session %d: fault report: %v", i, err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK: // repaired, degraded or abandoned — all explicit
	case http.StatusInternalServerError, http.StatusServiceUnavailable:
		// session.repair.fail aborted the repair before the ladder ran.
	default:
		t.Fatalf("session %d: fault status %d: %s", i, resp.StatusCode, data)
	}
}

// TestChaosWorkerPanicsAreIsolated: a plan that panics every job still
// leaves the service answering — the acceptance shape for the jobq
// panic barrier, driven end-to-end over HTTP.
func TestChaosWorkerPanicsAreIsolated(t *testing.T) {
	plan := fault.NewPlan(5).Arm(fault.JobqWorkerPanic, fault.Always())
	ts := chaosServer(t, plan)

	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"bench":"PCR","options":{"imax":60,"seed":%d}}`, 100+i)
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: status %d: %s", i, resp.StatusCode, data)
		}
		var sub struct {
			JobID string `json:"job_id"`
		}
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(time.Minute)
		for {
			jr, _ := http.Get(ts.URL + "/v1/jobs/" + sub.JobID)
			jdata, _ := io.ReadAll(jr.Body)
			jr.Body.Close()
			var job struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if err := json.Unmarshal(jdata, &job); err != nil {
				t.Fatal(err)
			}
			if job.Status == "failed" {
				if !strings.Contains(job.Error, "panic") {
					t.Fatalf("panicked job error does not say so: %q", job.Error)
				}
				break
			}
			if job.Status == "done" {
				t.Fatal("job succeeded despite an always-panic plan")
			}
			if time.Now().After(deadline) {
				t.Fatalf("job stuck in %q after worker panic", job.Status)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// The pool survived four panics; a healthy plan-free request — the
	// fault context is per-server, so use arithmetic the plan can't touch:
	// /healthz is served off the same process.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("service unhealthy after panics: %v (%d)", err, hr.StatusCode)
	}
	hr.Body.Close()
}
