// Package fault is the deterministic fault-injection layer of the
// synthesis stack. Named injection points sit at the natural failure
// boundaries of the pipeline and the service around it — worker panics,
// slow jobs, cache misses, stage aborts, defective routing cells — and a
// seeded Plan decides, per point, whether each evaluation fires.
//
// # Determinism contract
//
// Every point draws from its own xorshift64* stream seeded by the plan
// seed mixed with the point name, so the firing pattern of one point is a
// pure function of (seed, point, evaluation index): independent of
// wall-clock time, of goroutine interleaving across points, and of which
// other points are armed. Two runs with the same plan and the same
// per-point evaluation order inject the same faults. Chaos runs are
// therefore replayable from a single seed.
//
// # Zero overhead and fingerprint preservation when disabled
//
// The nil *Plan is the disabled injector, exactly like the nil
// *obs.Tracer: every method on it returns immediately, performs no
// allocation and consumes no randomness. A Plan with no armed points
// behaves identically at each un-armed point (one map lookup, no RNG
// draw). Either way a synthesis run with the fault layer compiled in but
// disabled is byte-identical to one without it — the pinned golden
// fingerprints enforce this (see fault_disabled_test.go at the repo
// root).
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/rng"
)

// Point names one injection site. The full catalogue is in points.go;
// consuming packages reference these constants rather than raw strings so
// a typo cannot silently create an un-armable point.
type Point string

// Policy decides when an armed point fires. The zero Policy never fires;
// Always() is the common "every evaluation" trigger.
type Policy struct {
	// Prob is the probability each evaluation fires, in [0, 1]. It is
	// evaluated on the point's private deterministic stream.
	Prob float64
	// Skip suppresses the first Skip evaluations (fire only from the
	// Skip+1st on). The suppressed evaluations still advance the stream.
	Skip int
	// Limit caps the total number of fires; 0 means unlimited.
	Limit int
	// Delay is how long latency points (jobq.job.slow,
	// server.response.slow, jobq.queue.stall) sleep when they fire.
	// Failure points ignore it.
	Delay time.Duration
}

// Always returns a policy that fires on every evaluation.
func Always() Policy { return Policy{Prob: 1} }

// Once returns a policy that fires exactly once, on the n+1st evaluation.
func Once(n int) Policy { return Policy{Prob: 1, Skip: n, Limit: 1} }

// Error is the typed failure an injected fault produces. Consumers
// propagate it unwrapped so callers can distinguish injected failures
// from organic ones with errors.As / IsInjected.
type Error struct {
	Point Point
}

func (e *Error) Error() string { return "fault: injected failure at " + string(e.Point) }

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// PointStats counts one point's activity on a plan.
type PointStats struct {
	Evals int64 // times the point was evaluated while armed
	Fires int64 // times it actually fired
}

// state is the per-point mutable record of a plan.
type state struct {
	pol   Policy
	src   *rng.Source
	evals int64
	fires int64
}

// Plan is a seeded set of armed injection points. The nil Plan is the
// disabled injector: every method is nil-safe and a no-op. A Plan is safe
// for concurrent use.
type Plan struct {
	seed uint64
	mu   sync.Mutex
	pts  map[Point]*state
}

// NewPlan returns an empty plan with the given seed. Arm points on it;
// an empty plan never fires.
func NewPlan(seed uint64) *Plan {
	return &Plan{seed: seed, pts: make(map[Point]*state)}
}

// Seed returns the plan's seed (for logs and reports).
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Arm attaches a policy to a point and returns the plan for chaining.
// Arming an unknown point panics: the registry in points.go is the single
// source of truth, and a misspelled point would otherwise never fire.
func (p *Plan) Arm(pt Point, pol Policy) *Plan {
	if !Known(pt) {
		panic(fmt.Sprintf("fault: arming unregistered point %q", pt))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pts[pt] = &state{pol: pol, src: rng.New(p.seed ^ pointHash(pt))}
	return p
}

// pointHash mixes a point name into a seed offset (FNV-1a 64).
func pointHash(pt Point) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(pt); i++ {
		h ^= uint64(pt[i])
		h *= 0x100000001b3
	}
	return h
}

// Enabled reports whether the plan can fire at all. Use it only to guard
// work that exists solely for injection (never algorithm state).
func (p *Plan) Enabled() bool { return p != nil && len(p.pts) > 0 }

// Fire evaluates the point and reports whether the fault fires now. On
// the nil plan, or for an un-armed point, it returns false without
// consuming randomness.
func (p *Plan) Fire(pt Point) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fireLocked(pt)
}

func (p *Plan) fireLocked(pt Point) bool {
	st, ok := p.pts[pt]
	if !ok {
		return false
	}
	st.evals++
	// The draw happens on every armed evaluation — even ones Skip or
	// Limit suppress — so the stream position depends only on the
	// evaluation index, never on the policy bounds.
	hit := st.src.Float64() < st.pol.Prob
	if !hit || st.evals <= int64(st.pol.Skip) {
		return false
	}
	if st.pol.Limit > 0 && st.fires >= int64(st.pol.Limit) {
		return false
	}
	st.fires++
	return true
}

// Err evaluates the point and returns a typed *Error when it fires, nil
// otherwise. This is the one-liner for stage-boundary failure points:
//
//	if err := flt.Err(fault.RouteStepFail); err != nil { return nil, err }
func (p *Plan) Err(pt Point) error {
	if p.Fire(pt) {
		return &Error{Point: pt}
	}
	return nil
}

// Sleep evaluates the point and, when it fires, sleeps for the policy's
// Delay or until ctx is done, whichever comes first. It reports whether
// the fault fired.
func (p *Plan) Sleep(ctx context.Context, pt Point) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	fired := p.fireLocked(pt)
	var d time.Duration
	if fired {
		d = p.pts[pt].pol.Delay
	}
	p.mu.Unlock()
	if !fired || d <= 0 {
		return fired
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	return true
}

// Stats snapshots the per-point activity of every armed point.
func (p *Plan) Stats() map[Point]PointStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Point]PointStats, len(p.pts))
	for pt, st := range p.pts {
		out[pt] = PointStats{Evals: st.evals, Fires: st.fires}
	}
	return out
}

// ctx plumbing, mirroring obs.Tracer: the plan rides the request context
// through the queue into the pipeline stages.

type ctxKey struct{}

// Into returns a context carrying the plan. A nil plan returns ctx
// unchanged, so the disabled path allocates nothing.
func Into(ctx context.Context, p *Plan) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, p)
}

// From extracts the plan from ctx, or nil (the disabled injector) when
// absent. Call it once per function, not per loop iteration.
func From(ctx context.Context) *Plan {
	p, _ := ctx.Value(ctxKey{}).(*Plan)
	return p
}
