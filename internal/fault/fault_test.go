package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestNilPlanIsDisabled pins the nil-safety contract every call site
// relies on: all methods no-op on the nil plan.
func TestNilPlanIsDisabled(t *testing.T) {
	var p *Plan
	if p.Enabled() {
		t.Error("nil plan reports enabled")
	}
	if p.Fire(RouteStepFail) {
		t.Error("nil plan fired")
	}
	if err := p.Err(ScheduleStepFail); err != nil {
		t.Errorf("nil plan returned error: %v", err)
	}
	if p.Sleep(context.Background(), JobqJobSlow) {
		t.Error("nil plan slept")
	}
	if p.Stats() != nil {
		t.Error("nil plan has stats")
	}
	if p.Seed() != 0 {
		t.Error("nil plan has a seed")
	}
	ctx := context.Background()
	if Into(ctx, nil) != ctx {
		t.Error("Into(nil) rewrapped the context")
	}
	if From(ctx) != nil {
		t.Error("From on a bare context is not nil")
	}
}

// TestZeroAllocsDisabled pins the zero-overhead contract: evaluating a
// point on the nil plan and on an armed plan's un-armed point allocates
// nothing.
func TestZeroAllocsDisabled(t *testing.T) {
	var nilPlan *Plan
	armed := NewPlan(7).Arm(RouteStepFail, Always())
	if n := testing.AllocsPerRun(100, func() { nilPlan.Fire(PlaceStepFail) }); n != 0 {
		t.Errorf("nil plan Fire allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { armed.Fire(PlaceStepFail) }); n != 0 {
		t.Errorf("un-armed point Fire allocates %v/op", n)
	}
}

// TestDeterministicStreams pins the replay guarantee: same seed, same
// per-point firing pattern, regardless of which other points are armed
// or in which order points are evaluated.
func TestDeterministicStreams(t *testing.T) {
	pattern := func(p *Plan, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = p.Fire(RouteCellBlocked)
		}
		return out
	}
	solo := pattern(NewPlan(42).Arm(RouteCellBlocked, Policy{Prob: 0.3}), 200)
	crowded := NewPlan(42).
		Arm(RouteCellBlocked, Policy{Prob: 0.3}).
		Arm(JobqWorkerPanic, Always()).
		Arm(ScheduleStepFail, Policy{Prob: 0.9})
	// Interleave evaluations of other points: they must not perturb the
	// RouteCellBlocked stream.
	var got []bool
	for i := 0; i < 200; i++ {
		crowded.Fire(JobqWorkerPanic)
		got = append(got, crowded.Fire(RouteCellBlocked))
		crowded.Fire(ScheduleStepFail)
	}
	fires := 0
	for i := range solo {
		if solo[i] != got[i] {
			t.Fatalf("stream diverged at evaluation %d: solo=%v crowded=%v", i, solo[i], got[i])
		}
		if solo[i] {
			fires++
		}
	}
	if fires == 0 || fires == 200 {
		t.Fatalf("Prob 0.3 fired %d/200 times: stream looks degenerate", fires)
	}
	if diff := pattern(NewPlan(43).Arm(RouteCellBlocked, Policy{Prob: 0.3}), 200); equalBools(diff, solo) {
		t.Error("different seeds produced identical firing patterns")
	}
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPolicyBounds exercises Skip and Limit, and that suppressed
// evaluations still advance the stream (stream position is a pure
// function of the evaluation index).
func TestPolicyBounds(t *testing.T) {
	p := NewPlan(1).Arm(JobqWorkerPanic, Policy{Prob: 1, Skip: 3, Limit: 2})
	var fires []int
	for i := 0; i < 10; i++ {
		if p.Fire(JobqWorkerPanic) {
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 || fires[0] != 3 || fires[1] != 4 {
		t.Errorf("Skip=3 Limit=2 fired at %v, want [3 4]", fires)
	}
	st := p.Stats()[JobqWorkerPanic]
	if st.Evals != 10 || st.Fires != 2 {
		t.Errorf("stats = %+v, want Evals 10 Fires 2", st)
	}
	if !NewPlan(1).Arm(CacheGetMiss, Once(0)).Fire(CacheGetMiss) {
		t.Error("Once(0) did not fire on the first evaluation")
	}
}

// TestErrTyped pins the typed-error contract consumers sort on.
func TestErrTyped(t *testing.T) {
	p := NewPlan(1).Arm(RouteStepFail, Always())
	err := p.Err(RouteStepFail)
	if err == nil {
		t.Fatal("armed Always point returned nil error")
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != RouteStepFail {
		t.Fatalf("Err returned %T %v, want *fault.Error at RouteStepFail", err, err)
	}
	if !IsInjected(err) {
		t.Error("IsInjected is false for an injected error")
	}
	if IsInjected(errors.New("organic")) {
		t.Error("IsInjected is true for an organic error")
	}
}

// TestSleepHonoursContext: a cancelled context cuts an injected delay
// short instead of blocking the worker.
func TestSleepHonoursContext(t *testing.T) {
	p := NewPlan(1).Arm(JobqJobSlow, Policy{Prob: 1, Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if !p.Sleep(ctx, JobqJobSlow) {
		t.Fatal("armed sleep did not fire")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Sleep ignored cancelled context: blocked %v", d)
	}
}

// TestArmUnknownPanics: the registry is the single source of truth.
func TestArmUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arming an unregistered point did not panic")
		}
	}()
	NewPlan(1).Arm(Point("no.such.point"), Always())
}

// TestRegistryCoversDefaultChaos: the canonical chaos plan arms every
// registered point, so a chaos run exercises the whole catalogue.
func TestRegistryCoversDefaultChaos(t *testing.T) {
	p := DefaultChaos(1)
	for _, pi := range Points() {
		if _, ok := p.pts[pi.Point]; !ok {
			t.Errorf("DefaultChaos does not arm %s", pi.Point)
		}
	}
	if len(p.pts) != len(Points()) {
		t.Errorf("DefaultChaos arms %d points, registry has %d", len(p.pts), len(Points()))
	}
}

// TestConcurrentFire runs under -race in CI: the plan must be safe for
// concurrent evaluation from the worker pool.
func TestConcurrentFire(t *testing.T) {
	p := DefaultChaos(99)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				p.Fire(RouteCellBlocked)
				p.Err(ScheduleStepFail)
				p.Sleep(context.Background(), JobqQueueStall)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	st := p.Stats()[RouteCellBlocked]
	if st.Evals != 8*500 {
		t.Errorf("concurrent evals lost: %d, want %d", st.Evals, 8*500)
	}
}
