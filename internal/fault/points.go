package fault

import "time"

// The injection-point catalogue. Every point a consuming package
// evaluates is registered here with the subsystem that owns it; the chaos
// suite iterates this table and asserts each point is exercised, so a
// point added below without a caller (or vice versa) fails loudly.
const (
	// jobq: the worker pool of the synthesis service.
	JobqWorkerPanic Point = "jobq.worker.panic" // job function panics mid-run
	JobqJobSlow     Point = "jobq.job.slow"     // job takes Delay longer than it should
	JobqQueueStall  Point = "jobq.queue.stall"  // dispatch stalls Delay between pop and run

	// server: the HTTP handlers in front of the queue.
	ServerHandlerError Point = "server.handler.error" // POST /v1/synthesize fails with 500
	ServerResponseSlow Point = "server.response.slow" // handler sleeps Delay before replying

	// solcache: the content-addressed result cache.
	CacheGetMiss Point = "solcache.get.miss" // a present entry is reported missing
	CachePutDrop Point = "solcache.put.drop" // a stored value is silently not written

	// Pipeline stages: evaluated at the same step boundaries as the
	// context-cancellation polls (between scheduling commits, SA
	// temperature steps and per-task routings), strictly outside every
	// RNG and floating-point path.
	ScheduleStepFail Point = "schedule.step.fail"
	PlaceStepFail    Point = "place.step.fail"
	RouteStepFail    Point = "route.step.fail"

	// RouteCellBlocked marks free routing cells defective before routing
	// starts, modelling fabrication defects on the chip (Su &
	// Chakrabarty's fault model): each free cell off the component port
	// rings is evaluated once, in row-major order.
	RouteCellBlocked Point = "route.cell.blocked"

	// session: the long-lived chip-session repair path.
	SessionRepairFail Point = "session.repair.fail" // fault-report repair aborts before the ladder runs
)

// PointInfo describes one registered injection point.
type PointInfo struct {
	Point Point
	Desc  string
}

// registry is ordered for stable iteration in tests and reports.
var registry = []PointInfo{
	{JobqWorkerPanic, "job function panics mid-run (worker must survive)"},
	{JobqJobSlow, "job execution delayed by the policy's Delay"},
	{JobqQueueStall, "worker dispatch stalls between dequeue and run"},
	{ServerHandlerError, "synthesize handler fails with an injected 500"},
	{ServerResponseSlow, "synthesize handler sleeps before replying"},
	{CacheGetMiss, "cache lookup reports a present entry missing"},
	{CachePutDrop, "cache store silently drops the value"},
	{ScheduleStepFail, "scheduling aborts at a commit boundary"},
	{PlaceStepFail, "annealing aborts at a temperature-step boundary"},
	{RouteStepFail, "routing aborts at a task boundary"},
	{RouteCellBlocked, "a free routing cell is defective (blocked)"},
	{SessionRepairFail, "session repair aborts before the escalation ladder runs"},
}

// Points returns the full registered catalogue, in stable order.
func Points() []PointInfo {
	out := make([]PointInfo, len(registry))
	copy(out, registry)
	return out
}

// Known reports whether pt is registered.
func Known(pt Point) bool {
	for _, pi := range registry {
		if pi.Point == pt {
			return true
		}
	}
	return false
}

// DefaultChaos returns the fixed chaos plan the service's -chaos mode and
// the CI chaos job use: every point armed with moderate probabilities and
// short delays, deterministic in seed. Failure points are throttled by
// Limit so a chaos run degrades the service without starving it.
func DefaultChaos(seed uint64) *Plan {
	p := NewPlan(seed)
	p.Arm(JobqWorkerPanic, Policy{Prob: 0.05, Limit: 8})
	p.Arm(JobqJobSlow, Policy{Prob: 0.10, Delay: 20 * time.Millisecond})
	p.Arm(JobqQueueStall, Policy{Prob: 0.05, Delay: 10 * time.Millisecond})
	p.Arm(ServerHandlerError, Policy{Prob: 0.05, Limit: 8})
	p.Arm(ServerResponseSlow, Policy{Prob: 0.10, Delay: 10 * time.Millisecond})
	p.Arm(CacheGetMiss, Policy{Prob: 0.20})
	p.Arm(CachePutDrop, Policy{Prob: 0.10})
	// The stage-failure probabilities are scaled to how often each
	// boundary is evaluated per job: scheduling polls roughly once per
	// job, annealing dozens of times, routing a handful — equal
	// probabilities would make schedule faults vanishingly rare.
	p.Arm(ScheduleStepFail, Policy{Prob: 0.03, Limit: 4})
	p.Arm(PlaceStepFail, Policy{Prob: 0.002, Limit: 4})
	p.Arm(RouteStepFail, Policy{Prob: 0.008, Limit: 4})
	p.Arm(RouteCellBlocked, Policy{Prob: 0.01})
	p.Arm(SessionRepairFail, Policy{Prob: 0.05, Limit: 4})
	return p
}
