// Package fluid models the fluids manipulated by a bioassay: their
// diffusion coefficients and the wash time needed to remove the residue
// they leave in components and flow channels.
//
// Section II-B of the paper reports (citing Hu et al., TCAD'16) that wash
// time is dominated by the contaminant's diffusion coefficient — channel
// length, width and buffer pressure can be ignored — and gives two
// calibration points: small molecules (D ≈ 1e-5 cm²/s) wash in about
// 0.2 s, while large contaminants such as tobacco mosaic virus
// (D ≈ 5e-8 cm²/s) need about 6 s. This package implements a log-linear
// wash-time model through those two points: wash time grows linearly in
// -log10(D), clamped below by the fast end.
package fluid

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/unit"
)

// Fluid describes one fluid sample: the output of an operation, a reagent,
// or a buffer.
type Fluid struct {
	// Name identifies the species, e.g. "lysis-buffer".
	Name string
	// D is the diffusion coefficient in cm²/s.
	D unit.Diffusion
}

// WashModel converts a contaminant's diffusion coefficient into the time
// needed to wash its residue out of a component or channel segment.
type WashModel struct {
	// FastD/FastWash is the high-diffusion calibration point.
	FastD    unit.Diffusion
	FastWash unit.Time
	// SlowD/SlowWash is the low-diffusion calibration point.
	SlowD    unit.Diffusion
	SlowWash unit.Time
}

// DefaultWashModel is calibrated on the two data points published in
// Section II-B of the paper.
func DefaultWashModel() WashModel {
	return WashModel{
		FastD:    unit.DiffusionSmallMolecule, // 1e-5 cm²/s
		FastWash: unit.Seconds(0.2),
		SlowD:    unit.DiffusionLargeVirus, // 5e-8 cm²/s
		SlowWash: unit.Seconds(6),
	}
}

// WashTime returns the wash time for residue with diffusion coefficient d.
// The model is linear in -log10(d) through the two calibration points and
// clamps to the calibration range so extreme inputs stay physical.
func (m WashModel) WashTime(d unit.Diffusion) unit.Time {
	if !d.Valid() {
		// Invalid coefficients are treated as the worst case so that a
		// missing datum never silently shortens a wash.
		return m.SlowWash
	}
	lf := -math.Log10(float64(m.FastD))
	ls := -math.Log10(float64(m.SlowD))
	lx := -math.Log10(float64(d))
	if lx <= lf {
		return m.FastWash
	}
	if lx >= ls {
		return m.SlowWash
	}
	frac := (lx - lf) / (ls - lf)
	span := float64(m.SlowWash - m.FastWash)
	return m.FastWash + unit.Time(math.Round(frac*span))
}

// Species is a named library entry with a literature-plausible diffusion
// coefficient. The palette spans the range used in the paper's examples
// (Fig. 2(b) lists per-operation coefficients between 1e-5 and 5e-8).
type Species struct {
	Name string
	D    unit.Diffusion
}

// Library returns the built-in species palette ordered from the fastest-
// washing (highest D) to the slowest. Benchmarks draw operation outputs
// from this palette deterministically.
func Library() []Species {
	return []Species{
		{"lysis-buffer", 1e-5},         // small molecule, ~0.2 s wash
		{"glucose", 6.7e-6},            // small metabolite
		{"reagent-dye", 3e-6},          //
		{"peptide", 1e-6},              //
		{"protein-bsa", 6e-7},          // ~66 kDa protein
		{"antibody-igg", 4e-7},         //
		{"enzyme-complex", 2e-7},       //
		{"plasmid-dna", 1e-7},          // large nucleic acid
		{"cell-lysate", 7e-8},          //
		{"tobacco-mosaic-virus", 5e-8}, // ~6 s wash
	}
}

// ByName returns the library species with the given name.
func ByName(name string) (Species, error) {
	for _, s := range Library() {
		if s.Name == name {
			return s, nil
		}
	}
	return Species{}, fmt.Errorf("fluid: unknown species %q", name)
}

// Pick returns library entry i modulo the palette size; it gives
// deterministic, varied coefficient assignments to generated benchmarks.
func Pick(i int) Species {
	lib := Library()
	n := len(lib)
	return lib[((i%n)+n)%n]
}

// SortByDiffusion sorts fluids ascending by diffusion coefficient, i.e.
// hardest-to-wash first. Ties break on name so the order is total and the
// downstream binding decisions are deterministic.
func SortByDiffusion(fs []Fluid) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].D != fs[j].D {
			return fs[i].D < fs[j].D
		}
		return fs[i].Name < fs[j].Name
	})
}
