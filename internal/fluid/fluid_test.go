package fluid

import (
	"testing"
	"testing/quick"

	"repro/internal/unit"
)

func TestWashTimeCalibrationPoints(t *testing.T) {
	m := DefaultWashModel()
	if got := m.WashTime(unit.DiffusionSmallMolecule); got != unit.Seconds(0.2) {
		t.Errorf("fast point wash = %v, want 0.2s", got)
	}
	if got := m.WashTime(unit.DiffusionLargeVirus); got != unit.Seconds(6) {
		t.Errorf("slow point wash = %v, want 6s", got)
	}
}

func TestWashTimeClamping(t *testing.T) {
	m := DefaultWashModel()
	if got := m.WashTime(1e-3); got != m.FastWash {
		t.Errorf("very fast diffuser wash = %v, want clamp to %v", got, m.FastWash)
	}
	if got := m.WashTime(1e-10); got != m.SlowWash {
		t.Errorf("very slow diffuser wash = %v, want clamp to %v", got, m.SlowWash)
	}
}

func TestWashTimeMonotone(t *testing.T) {
	m := DefaultWashModel()
	// Lower diffusion coefficient must never wash faster.
	f := func(a, b float64) bool {
		// Map arbitrary floats into the plausible coefficient range.
		da := unit.Diffusion(1e-9 + mod1(a)*1e-4)
		db := unit.Diffusion(1e-9 + mod1(b)*1e-4)
		if da > db {
			da, db = db, da
		}
		return m.WashTime(da) >= m.WashTime(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mod1(x float64) float64 {
	if x < 0 {
		x = -x
	}
	for x >= 1 {
		x /= 10
	}
	return x
}

func TestWashTimeInvalidWorstCase(t *testing.T) {
	m := DefaultWashModel()
	if got := m.WashTime(0); got != m.SlowWash {
		t.Errorf("invalid D wash = %v, want worst case %v", got, m.SlowWash)
	}
	if got := m.WashTime(-1); got != m.SlowWash {
		t.Errorf("negative D wash = %v, want worst case %v", got, m.SlowWash)
	}
}

func TestWashTimeMidpointReasonable(t *testing.T) {
	m := DefaultWashModel()
	// A mid-range protein should wash strictly between the endpoints.
	got := m.WashTime(6e-7)
	if got <= m.FastWash || got >= m.SlowWash {
		t.Errorf("mid-range wash = %v, want strictly inside (%v,%v)", got, m.FastWash, m.SlowWash)
	}
}

func TestLibraryOrderingAndValidity(t *testing.T) {
	lib := Library()
	if len(lib) < 8 {
		t.Fatalf("palette too small: %d", len(lib))
	}
	for i, s := range lib {
		if !s.D.Valid() {
			t.Errorf("species %q has invalid D", s.Name)
		}
		if i > 0 && lib[i-1].D < s.D {
			t.Errorf("palette not ordered fast→slow at %d (%q)", i, s.Name)
		}
	}
	if lib[0].D != unit.DiffusionSmallMolecule {
		t.Error("palette must start at the paper's fast calibration point")
	}
	if lib[len(lib)-1].D != unit.DiffusionLargeVirus {
		t.Error("palette must end at the paper's slow calibration point")
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("protein-bsa")
	if err != nil || s.Name != "protein-bsa" {
		t.Errorf("ByName failed: %v %v", s, err)
	}
	if _, err := ByName("unobtainium"); err == nil {
		t.Error("ByName must fail for unknown species")
	}
}

func TestPickWrapsAndIsTotal(t *testing.T) {
	n := len(Library())
	if Pick(0) != Pick(n) {
		t.Error("Pick must wrap modulo palette size")
	}
	if Pick(-1) != Pick(n-1) {
		t.Error("Pick must handle negative indices")
	}
}

func TestSortByDiffusion(t *testing.T) {
	fs := []Fluid{
		{Name: "b", D: 1e-6},
		{Name: "a", D: 1e-8},
		{Name: "c", D: 1e-6},
		{Name: "d", D: 1e-5},
	}
	SortByDiffusion(fs)
	wantNames := []string{"a", "b", "c", "d"}
	for i, w := range wantNames {
		if fs[i].Name != w {
			t.Fatalf("order[%d] = %q, want %q (%v)", i, fs[i].Name, w, fs)
		}
	}
}
