// Package interval implements half-open time intervals [Start, End) and
// ordered interval sets. They are the substrate for the two occupancy
// calendars in the synthesis flow: the busy timeline of each on-chip
// component and the time-slot set T_i that every routing-grid cell carries
// (Section IV-B of the paper, Eq. 5).
package interval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/unit"
)

// Interval is a half-open span of time [Start, End). An interval with
// End <= Start is empty.
type Interval struct {
	Start unit.Time
	End   unit.Time
}

// Make returns the interval [start, end).
func Make(start, end unit.Time) Interval { return Interval{Start: start, End: end} }

// Empty reports whether iv contains no instants.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Len returns the duration of the interval (zero if empty).
func (iv Interval) Len() unit.Time {
	if iv.Empty() {
		return 0
	}
	return iv.End - iv.Start
}

// Contains reports whether instant t lies inside the interval.
func (iv Interval) Contains(t unit.Time) bool {
	return t >= iv.Start && t < iv.End
}

// Overlaps reports whether the two half-open intervals share any instant.
// Touching intervals ([0,2) and [2,4)) do not overlap; this matches the
// paper's conflict condition (st, et) ∩ (st', et') = ∅ for cells shared by
// back-to-back transportation tasks.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Start < other.End && other.Start < iv.End
}

// Intersect returns the common part of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{
		Start: unit.MaxTime(iv.Start, other.Start),
		End:   unit.MinTime(iv.End, other.End),
	}
}

// Union returns the smallest interval covering both (only meaningful when
// they overlap or touch).
func (iv Interval) Union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{
		Start: unit.MinTime(iv.Start, other.Start),
		End:   unit.MaxTime(iv.End, other.End),
	}
}

// String formats the interval as "[2s,4s)".
func (iv Interval) String() string {
	return fmt.Sprintf("[%v,%v)", iv.Start, iv.End)
}

// Set is an ordered collection of pairwise-disjoint, non-touching,
// non-empty intervals. The zero value is an empty set ready to use.
type Set struct {
	ivs []Interval // sorted by Start, pairwise disjoint, merged
}

// Len returns the number of maximal disjoint intervals in the set.
func (s *Set) Len() int { return len(s.ivs) }

// Intervals returns a copy of the maximal disjoint intervals in order.
func (s *Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Total returns the summed duration of all intervals in the set.
func (s *Set) Total() unit.Time {
	var t unit.Time
	for _, iv := range s.ivs {
		t += iv.Len()
	}
	return t
}

// Add inserts iv into the set, merging with any overlapping or touching
// intervals. Empty intervals are ignored.
func (s *Set) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Position of the first existing interval whose End >= iv.Start
	// (candidates for merging; touching merges too).
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End >= iv.Start })
	j := i
	merged := iv
	for j < len(s.ivs) && s.ivs[j].Start <= iv.End {
		merged = merged.Union(s.ivs[j])
		j++
	}
	out := make([]Interval, 0, len(s.ivs)-(j-i)+1)
	out = append(out, s.ivs[:i]...)
	out = append(out, merged)
	out = append(out, s.ivs[j:]...)
	s.ivs = out
}

// Overlaps reports whether iv intersects any interval already in the set.
func (s *Set) Overlaps(iv Interval) bool {
	if iv.Empty() || len(s.ivs) == 0 {
		return false
	}
	// First interval with End > iv.Start could overlap.
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > iv.Start })
	return i < len(s.ivs) && s.ivs[i].Start < iv.End
}

// Contains reports whether instant t is covered by the set.
func (s *Set) Contains(t unit.Time) bool {
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// NextFree returns the earliest instant at or after t that is not covered
// by the set.
func (s *Set) NextFree(t unit.Time) unit.Time {
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > t })
	if i < len(s.ivs) && s.ivs[i].Contains(t) {
		return s.ivs[i].End
	}
	return t
}

// FirstFit returns the start of the earliest gap of at least dur that
// begins at or after t. A set never ends: time after the last interval is
// always free.
func (s *Set) FirstFit(t unit.Time, dur unit.Time) unit.Time {
	if dur < 0 {
		dur = 0
	}
	cur := s.NextFree(t)
	for {
		i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].Start >= cur })
		if i == len(s.ivs) || s.ivs[i].Start >= cur+dur {
			return cur
		}
		cur = s.ivs[i].End
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{ivs: make([]Interval, len(s.ivs))}
	copy(c.ivs, s.ivs)
	return c
}

// String formats the set as "{[0s,2s) [4s,6s)}".
func (s *Set) String() string {
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Invariant checks the internal ordering/disjointness invariants and
// returns a descriptive error when violated. It is used by property tests.
func (s *Set) Invariant() error {
	for i, iv := range s.ivs {
		if iv.Empty() {
			return fmt.Errorf("interval %d %v is empty", i, iv)
		}
		if i > 0 && s.ivs[i-1].End >= iv.Start {
			return fmt.Errorf("intervals %d and %d not disjoint/merged: %v %v",
				i-1, i, s.ivs[i-1], iv)
		}
	}
	return nil
}
