package interval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/unit"
)

func iv(a, b unit.Time) Interval { return Make(a, b) }

func TestIntervalBasics(t *testing.T) {
	x := iv(2, 5)
	if x.Empty() {
		t.Error("non-empty interval reported empty")
	}
	if x.Len() != 3 {
		t.Errorf("Len = %d, want 3", x.Len())
	}
	if !x.Contains(2) || x.Contains(5) || !x.Contains(4) || x.Contains(1) {
		t.Error("Contains half-open semantics wrong")
	}
	if !iv(5, 5).Empty() || !iv(6, 5).Empty() {
		t.Error("degenerate intervals must be empty")
	}
	if iv(5, 5).Len() != 0 {
		t.Error("empty interval must have zero length")
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{iv(0, 2), iv(2, 4), false}, // touching: no conflict
		{iv(0, 2), iv(1, 4), true},
		{iv(1, 4), iv(0, 2), true},
		{iv(0, 10), iv(3, 4), true},
		{iv(3, 4), iv(0, 10), true},
		{iv(0, 2), iv(3, 4), false},
		{iv(0, 0), iv(0, 10), false}, // empty never overlaps
		{iv(0, 10), iv(5, 5), false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("Overlaps not symmetric for %v %v", c.a, c.b)
		}
	}
}

func TestIntersectUnion(t *testing.T) {
	a, b := iv(0, 5), iv(3, 8)
	if got := a.Intersect(b); got != iv(3, 5) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got != iv(0, 8) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(iv(6, 7)); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
	if got := iv(5, 5).Union(a); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := a.Union(iv(9, 9)); got != a {
		t.Errorf("Union with empty rhs = %v, want %v", got, a)
	}
}

func TestSetAddMerges(t *testing.T) {
	var s Set
	s.Add(iv(0, 2))
	s.Add(iv(4, 6))
	s.Add(iv(8, 10))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// Bridge the first two (touching merges).
	s.Add(iv(2, 4))
	if s.Len() != 2 {
		t.Fatalf("after bridging Len = %d, want 2: %v", s.Len(), s.String())
	}
	got := s.Intervals()
	if got[0] != iv(0, 6) || got[1] != iv(8, 10) {
		t.Errorf("intervals = %v", got)
	}
	// Swallow everything.
	s.Add(iv(-5, 20))
	if s.Len() != 1 || s.Intervals()[0] != iv(-5, 20) {
		t.Errorf("swallow failed: %v", s.String())
	}
}

func TestSetAddEmptyIgnored(t *testing.T) {
	var s Set
	s.Add(iv(3, 3))
	s.Add(iv(5, 1))
	if s.Len() != 0 {
		t.Errorf("empty adds must be ignored, got %v", s.String())
	}
}

func TestSetOverlaps(t *testing.T) {
	var s Set
	s.Add(iv(0, 2))
	s.Add(iv(5, 7))
	cases := []struct {
		q    Interval
		want bool
	}{
		{iv(2, 5), false}, // exactly the gap
		{iv(1, 3), true},
		{iv(4, 6), true},
		{iv(7, 9), false},
		{iv(-3, 0), false},
		{iv(-3, 1), true},
		{iv(3, 3), false},
	}
	for _, c := range cases {
		if got := s.Overlaps(c.q); got != c.want {
			t.Errorf("Overlaps(%v) = %v, want %v (set %v)", c.q, got, c.want, s.String())
		}
	}
}

func TestSetContainsNextFree(t *testing.T) {
	var s Set
	s.Add(iv(0, 2))
	s.Add(iv(5, 7))
	if !s.Contains(0) || s.Contains(2) || !s.Contains(6) || s.Contains(10) {
		t.Error("Contains wrong")
	}
	if got := s.NextFree(0); got != 2 {
		t.Errorf("NextFree(0) = %v, want 2", got)
	}
	if got := s.NextFree(3); got != 3 {
		t.Errorf("NextFree(3) = %v, want 3", got)
	}
	if got := s.NextFree(6); got != 7 {
		t.Errorf("NextFree(6) = %v, want 7", got)
	}
	if got := s.NextFree(100); got != 100 {
		t.Errorf("NextFree(100) = %v, want 100", got)
	}
}

func TestSetFirstFit(t *testing.T) {
	var s Set
	s.Add(iv(0, 2))
	s.Add(iv(5, 7))
	s.Add(iv(8, 9))
	cases := []struct {
		t    unit.Time
		dur  unit.Time
		want unit.Time
	}{
		{0, 3, 2}, // gap [2,5) fits 3
		{0, 4, 9}, // gap [2,5) too small, [7,8) too small, after 9 open
		{6, 1, 7}, // inside busy, next gap [7,8)
		{6, 2, 9}, // [7,8) too small
		{10, 5, 10},
		{0, 0, 2},
		{3, -4, 3}, // negative durations treated as zero
	}
	for _, c := range cases {
		if got := s.FirstFit(c.t, c.dur); got != c.want {
			t.Errorf("FirstFit(%v,%v) = %v, want %v", c.t, c.dur, got, c.want)
		}
	}
}

func TestSetTotal(t *testing.T) {
	var s Set
	s.Add(iv(0, 2))
	s.Add(iv(5, 8))
	if got := s.Total(); got != 5 {
		t.Errorf("Total = %v, want 5", got)
	}
}

func TestSetClone(t *testing.T) {
	var s Set
	s.Add(iv(0, 2))
	c := s.Clone()
	c.Add(iv(10, 12))
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("Clone must be independent")
	}
}

// Property: after any sequence of Adds, the set invariant holds, every
// added instant is contained, and Overlaps agrees with a brute-force check.
func TestSetProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Set
		var added []Interval
		for i := 0; i < 40; i++ {
			a := unit.Time(r.Intn(200))
			b := a + unit.Time(r.Intn(20))
			x := iv(a, b)
			s.Add(x)
			if !x.Empty() {
				added = append(added, x)
			}
			if err := s.Invariant(); err != nil {
				t.Logf("invariant violated after adding %v: %v", x, err)
				return false
			}
		}
		// Every added instant must be contained.
		for _, x := range added {
			for q := x.Start; q < x.End; q++ {
				if !s.Contains(q) {
					t.Logf("lost instant %v from %v", q, x)
					return false
				}
			}
		}
		// Overlap queries agree with brute force against merged intervals.
		for i := 0; i < 50; i++ {
			a := unit.Time(r.Intn(220) - 10)
			b := a + unit.Time(r.Intn(25))
			q := iv(a, b)
			brute := false
			for _, m := range s.Intervals() {
				if m.Overlaps(q) {
					brute = true
					break
				}
			}
			if s.Overlaps(q) != brute {
				t.Logf("Overlaps(%v) disagrees with brute force", q)
				return false
			}
		}
		// Total equals the covered instant count.
		var count unit.Time
		for q := unit.Time(-10); q < 260; q++ {
			if s.Contains(q) {
				count++
			}
		}
		if count != s.Total() {
			t.Logf("Total %v != counted %v", s.Total(), count)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: FirstFit always returns a gap that truly fits.
func TestFirstFitProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Set
		for i := 0; i < 30; i++ {
			a := unit.Time(r.Intn(300))
			s.Add(iv(a, a+unit.Time(r.Intn(15))))
		}
		for i := 0; i < 30; i++ {
			from := unit.Time(r.Intn(320))
			dur := unit.Time(r.Intn(40))
			at := s.FirstFit(from, dur)
			if at < from {
				return false
			}
			if s.Overlaps(iv(at, at+dur)) {
				t.Logf("FirstFit(%v,%v)=%v overlaps %v", from, dur, at, s.String())
				return false
			}
			// Minimality: no earlier feasible start.
			for cand := from; cand < at; cand++ {
				if !s.Overlaps(iv(cand, cand+dur)) && dur > 0 {
					t.Logf("FirstFit(%v,%v)=%v but %v fits", from, dur, at, cand)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
