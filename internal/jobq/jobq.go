// Package jobq is a bounded FIFO job queue with a fixed worker pool,
// built for the synthesis service: submissions beyond the queue capacity
// are rejected immediately (the server maps that to HTTP 429), every job
// carries an observable status and free-form progress note, queued or
// running jobs can be cancelled (running jobs via their context), and
// shutdown completes in-flight work while rejecting new submissions.
//
// The queue stores finished jobs until they are explicitly removed or the
// retention bound evicts the oldest, so clients can poll results after
// completion.
package jobq

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/fault"
)

// Status is a job's lifecycle state.
type Status string

// The job lifecycle: Queued → Running → one of Done/Failed/Canceled.
// Queued jobs cancelled before a worker picks them up go straight to
// Canceled.
const (
	Queued   Status = "queued"
	Running  Status = "running"
	Done     Status = "done"
	Failed   Status = "failed"
	Canceled Status = "canceled"
)

// Terminal reports whether a job in this status will never change again.
func (s Status) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Fn is the work a job performs. It must honour ctx (return once ctx is
// done) and may call progress with short human-readable notes; the latest
// note is visible in job snapshots.
type Fn func(ctx context.Context, progress func(note string)) (any, error)

// Job is an immutable snapshot of one job's state.
type Job struct {
	ID       string
	Label    string // caller-supplied request label (e.g. a request ID)
	Status   Status
	Progress string
	Created  time.Time
	Started  time.Time // zero until the job leaves the queue
	Finished time.Time // zero until the job reaches a terminal status
	Result   any       // Fn's return value when Status == Done
	Err      string    // failure or cancellation cause otherwise
	// Stack is the goroutine stack captured when the job's Fn panicked;
	// empty for every other failure mode. It rides the snapshot so the
	// service can log the crash site instead of just "job panicked".
	Stack string
}

// Wait is how long the job sat queued before a worker picked it up
// (zero while still queued, or for jobs that never ran: completed-
// in-place cache hits, rejected submissions).
func (j Job) Wait() time.Duration {
	if j.Started.IsZero() {
		return 0
	}
	return j.Started.Sub(j.Created)
}

// Errors returned by Submit.
var (
	// ErrQueueFull signals backpressure: capacity jobs are already
	// waiting. The caller should retry later (HTTP 429).
	ErrQueueFull = errors.New("jobq: queue full")
	// ErrShutdown rejects submissions after Shutdown started.
	ErrShutdown = errors.New("jobq: shutting down")
)

// job is the internal mutable record.
type job struct {
	Job
	fn     Fn
	cancel context.CancelCauseFunc // non-nil while running
}

// jobPool recycles job records evicted from the retention ring. A
// record's lifetime is fully lock-bounded: every read or write of a
// *job happens under q.mu, snapshots leave as Job values, and eviction
// (the only release point) deletes the map entry in the same critical
// section — so once retire drops a record, nothing can reach it again
// and it is safe to scrub and reuse. Under sustained serving load the
// queue churns one record per request; recycling keeps that O(1) in
// allocations instead of O(requests).
var jobPool = sync.Pool{New: func() any { return new(job) }}

// newJob draws a record from the pool. Records are scrubbed on release
// (see retire), so pooled entries never pin a stale Result or Fn.
func newJob() *job { return jobPool.Get().(*job) }

// Queue is the bounded FIFO queue and its worker pool.
type Queue struct {
	mu       sync.Mutex
	cond     *sync.Cond // signals workers: pending work or shutdown
	jobs     map[string]*job
	pending  []string // FIFO of queued job IDs
	order    []string // terminal job IDs, oldest first (retention ring)
	capacity int
	workers  int
	busy     int
	nextID   uint64
	closed   bool
	retain   int
	wg       sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc

	// detached counts running detached jobs (SubmitDetached). They hold
	// no worker and no FIFO slot but are still bounded by capacity.
	detached int

	// onTerminal observes every terminal transition; see OnTerminal.
	onTerminal func(Job)
	// flt injects worker-level faults when armed; nil in production.
	flt *fault.Plan
	// Cumulative terminal-transition totals. Retention eviction removes
	// jobs from q.jobs but never lowers these.
	doneTotal     int64
	failedTotal   int64
	canceledTotal int64
}

// Stats is a point-in-time aggregate of the queue.
type Stats struct {
	Workers  int // pool size
	Busy     int // workers currently executing a job
	Queued   int // jobs waiting in the FIFO
	Capacity int // maximum queued jobs before Submit rejects
	Detached int // running detached jobs (SubmitDetached)
	Done     int // retained terminal jobs by status
	Failed   int
	Canceled int
	// Cumulative totals since the queue started. Unlike the retained-job
	// counts above they are monotonic (retention eviction never lowers
	// them), which is what Prometheus counter semantics require.
	DoneTotal     int64
	FailedTotal   int64
	CanceledTotal int64
}

// New starts a queue with the given worker-pool size and queue capacity.
// Both must be at least 1. Finished jobs are retained for polling; once
// more than retain (default 1024 when <= 0) terminal jobs accumulate, the
// oldest are evicted.
func New(workers, capacity, retain int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	if retain <= 0 {
		retain = 1024
	}
	q := &Queue{
		jobs:     make(map[string]*job),
		capacity: capacity,
		workers:  workers,
		retain:   retain,
	}
	q.cond = sync.NewCond(&q.mu)
	q.baseCtx, q.baseStop = context.WithCancel(context.Background())
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// Submit enqueues fn and returns the new job's ID, or ErrQueueFull /
// ErrShutdown without side effects.
func (q *Queue) Submit(fn Fn) (string, error) { return q.SubmitLabeled("", fn) }

// SubmitLabeled is Submit with a caller-supplied label (typically the
// request ID of the submission) carried on every snapshot of the job, so
// logs and observers can correlate queue activity with requests.
func (q *Queue) SubmitLabeled(label string, fn Fn) (string, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return "", ErrShutdown
	}
	if len(q.pending) >= q.capacity {
		return "", ErrQueueFull
	}
	q.nextID++
	id := fmt.Sprintf("j%06d", q.nextID)
	j := newJob()
	j.Job = Job{ID: id, Label: label, Status: Queued, Created: time.Now()}
	j.fn = fn
	q.jobs[id] = j
	q.pending = append(q.pending, id)
	q.cond.Signal()
	return id, nil
}

// SubmitDetached runs fn immediately in its own goroutine instead of
// waiting for a pool worker. It exists for jobs that spend their life
// blocked on another node — forwarding a synthesis request across the
// cluster — where parking a pool worker invites distributed deadlock:
// with one worker per node, node A forwarding to B while B forwards to A
// would leave both pools blocked polling each other. Detached jobs hold
// no worker and no FIFO slot but are still bounded by the queue
// capacity (ErrQueueFull beyond it), carry normal job records (Get,
// Cancel, OnTerminal, retention all apply), and participate in
// Shutdown: drain waits for them, and the hard-cancel path cancels
// their contexts.
func (q *Queue) SubmitDetached(label string, fn Fn) (string, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return "", ErrShutdown
	}
	if q.detached >= q.capacity {
		q.mu.Unlock()
		return "", ErrQueueFull
	}
	q.nextID++
	id := fmt.Sprintf("j%06d", q.nextID)
	now := time.Now()
	j := newJob()
	j.Job = Job{ID: id, Label: label, Status: Running, Created: now, Started: now}
	ctx, cancel := context.WithCancelCause(q.baseCtx)
	j.cancel = cancel
	q.jobs[id] = j
	q.detached++
	flt := q.flt
	// wg.Add under the same lock as the closed check: Shutdown flips
	// closed before waiting, so the counter can never grow after Wait.
	q.wg.Add(1)
	q.mu.Unlock()

	go func() {
		defer q.wg.Done()
		progress := func(note string) {
			q.mu.Lock()
			j.Progress = note
			q.mu.Unlock()
		}
		result, stack, err := runJob(ctx, fn, progress, flt)

		q.mu.Lock()
		q.detached--
		j.cancel = nil
		j.fn = nil
		j.Finished = time.Now()
		switch {
		case err == nil:
			j.Status = Done
			j.Result = result
		case errors.Is(err, context.Canceled):
			j.Status = Canceled
			j.Err = err.Error()
		default:
			j.Status = Failed
			j.Err = err.Error()
			j.Stack = stack
		}
		snap, cb := q.retire(j), q.onTerminal
		q.mu.Unlock()
		cancel(nil)
		if cb != nil {
			cb(snap)
		}
	}()
	return id, nil
}

// SetFault arms the queue's fault-injection points (worker panic, slow
// job, dispatch stall) on the given plan. A nil plan — the default —
// disables injection entirely. Install before submitting work.
func (q *Queue) SetFault(p *fault.Plan) {
	q.mu.Lock()
	q.flt = p
	q.mu.Unlock()
}

// OnTerminal installs an observer invoked once for every job that
// reaches a terminal status — worker completion, queued-job cancellation,
// shutdown hard-cancel and Complete alike. The observer receives an
// immutable snapshot and runs outside the queue lock, so it may call
// back into the queue; it must not block for long, or terminal
// transitions serialize behind it. Install before submitting work.
func (q *Queue) OnTerminal(fn func(Job)) {
	q.mu.Lock()
	q.onTerminal = fn
	q.mu.Unlock()
}

// Complete registers an already-finished job (e.g. a cache hit served
// without work) and returns its ID. It never blocks and is exempt from
// the capacity bound: no queue slot or worker is ever consumed.
func (q *Queue) Complete(label string, result any, progress string) (string, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return "", ErrShutdown
	}
	q.nextID++
	id := fmt.Sprintf("j%06d", q.nextID)
	now := time.Now()
	j := newJob()
	j.Job = Job{
		ID: id, Label: label, Status: Done, Progress: progress,
		Created: now, Started: now, Finished: now, Result: result,
	}
	q.jobs[id] = j
	snap, cb := q.retire(j), q.onTerminal
	q.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
	return id, nil
}

// Get returns a snapshot of the job, if known.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.Job, true
}

// Cancel requests cancellation of a job. A queued job is cancelled
// immediately; a running job has its context cancelled and will reach
// Canceled once its Fn returns. Cancelling a terminal or unknown job is a
// no-op. The return value reports whether a cancellation was delivered.
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.Status.Terminal() {
		q.mu.Unlock()
		return false
	}
	if j.Status == Queued {
		// Remove from the FIFO so a worker never picks it up.
		for i, pid := range q.pending {
			if pid == id {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				break
			}
		}
		j.Status = Canceled
		j.Err = context.Canceled.Error()
		j.Finished = time.Now()
		snap, cb := q.retire(j), q.onTerminal
		q.mu.Unlock()
		if cb != nil {
			cb(snap)
		}
		return true
	}
	running := j.cancel != nil
	if running {
		j.cancel(context.Canceled)
	}
	q.mu.Unlock()
	return running
}

// Stats returns current aggregate counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := Stats{
		Workers: q.workers, Busy: q.busy, Queued: len(q.pending), Capacity: q.capacity,
		Detached:  q.detached,
		DoneTotal: q.doneTotal, FailedTotal: q.failedTotal, CanceledTotal: q.canceledTotal,
	}
	for _, j := range q.jobs {
		switch j.Status {
		case Done:
			s.Done++
		case Failed:
			s.Failed++
		case Canceled:
			s.Canceled++
		}
	}
	return s
}

// Shutdown stops accepting submissions, lets the workers drain every
// queued and running job, and returns once the pool is idle. If ctx
// expires first, all remaining jobs are cancelled and ctx's error is
// returned after the workers exit.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline hit: hard-cancel everything still in flight, then wait
		// for the workers to notice and exit.
		q.baseStop()
		q.mu.Lock()
		var snaps []Job
		for _, id := range q.pending {
			if j := q.jobs[id]; j != nil && j.Status == Queued {
				j.Status = Canceled
				j.Err = context.Cause(ctx).Error()
				j.Finished = time.Now()
				snaps = append(snaps, q.retire(j))
			}
		}
		q.pending = nil
		cb := q.onTerminal
		q.cond.Broadcast()
		q.mu.Unlock()
		if cb != nil {
			for _, s := range snaps {
				cb(s)
			}
		}
		<-done
		return ctx.Err()
	}
}

// retire appends a terminal job to the retention ring, evicting the
// oldest beyond the bound, bumps the cumulative totals, and returns the
// job's snapshot for the OnTerminal observer. retire is the single point
// every terminal transition passes through. Caller holds q.mu.
func (q *Queue) retire(j *job) Job {
	switch j.Status {
	case Done:
		q.doneTotal++
	case Failed:
		q.failedTotal++
	case Canceled:
		q.canceledTotal++
	}
	q.order = append(q.order, j.ID)
	for len(q.order) > q.retain {
		// Eviction is the record's release point: the map entry goes away
		// under the same lock that guards every *job access, so nothing can
		// observe the scrub. Zeroing drops the Result/fn references before
		// the record idles in the pool.
		if old := q.jobs[q.order[0]]; old != nil {
			delete(q.jobs, q.order[0])
			*old = job{}
			jobPool.Put(old)
		}
		q.order = q.order[1:]
	}
	return j.Job
}

// worker is the run loop of one pool goroutine.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pending) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		id := q.pending[0]
		q.pending = q.pending[1:]
		j := q.jobs[id]
		ctx, cancel := context.WithCancelCause(q.baseCtx)
		j.cancel = cancel
		j.Status = Running
		j.Started = time.Now()
		q.busy++
		fn := j.fn
		flt := q.flt
		q.mu.Unlock()

		// Injected dispatch stall: the worker sits on the job between
		// dequeue and run, modelling a scheduler hiccup. Cancellation
		// still cuts it short via the job's context.
		flt.Sleep(ctx, fault.JobqQueueStall)

		progress := func(note string) {
			q.mu.Lock()
			j.Progress = note
			q.mu.Unlock()
		}
		result, stack, err := runJob(ctx, fn, progress, flt)

		q.mu.Lock()
		q.busy--
		j.cancel = nil
		j.fn = nil
		j.Finished = time.Now()
		switch {
		case err == nil:
			j.Status = Done
			j.Result = result
		case errors.Is(err, context.Canceled):
			j.Status = Canceled
			j.Err = err.Error()
		default:
			j.Status = Failed
			j.Err = err.Error()
			j.Stack = stack
		}
		snap, cb := q.retire(j), q.onTerminal
		q.mu.Unlock()
		cancel(nil)
		if cb != nil {
			cb(snap)
		}
	}
}

// runJob executes fn, converting a panic into a failure so one bad job
// cannot take the worker (and the service) down. The panic's stack is
// captured and returned alongside the error for the job record.
func runJob(ctx context.Context, fn Fn, progress func(string), flt *fault.Plan) (result any, stack string, err error) {
	defer func() {
		if r := recover(); r != nil {
			if perr, ok := r.(error); ok {
				err = fmt.Errorf("jobq: job panicked: %w", perr)
			} else {
				err = fmt.Errorf("jobq: job panicked: %v", r)
			}
			stack = string(debug.Stack())
		}
	}()
	if flt.Fire(fault.JobqWorkerPanic) {
		panic(&fault.Error{Point: fault.JobqWorkerPanic})
	}
	flt.Sleep(ctx, fault.JobqJobSlow)
	result, err = fn(ctx, progress)
	return result, "", err
}
