package jobq

import (
	"strings"

	"context"
	"errors"
	"fmt"
	"repro/internal/fault"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitStatus polls until the job reaches a terminal status or the
// deadline passes.
func waitStatus(t *testing.T, q *Queue, id string, want Status) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.Status == want {
			return j
		}
		if j.Status.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, j.Status, j.Err, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not reach %s in time", id, want)
	return Job{}
}

func TestSubmitRunsFIFO(t *testing.T) {
	q := New(1, 16, 0)
	defer q.Shutdown(context.Background())
	var mu sync.Mutex
	var order []int
	var ids []string
	for i := 0; i < 8; i++ {
		i := i
		id, err := q.Submit(func(ctx context.Context, progress func(string)) (any, error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			progress(fmt.Sprintf("task %d", i))
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		j := waitStatus(t, q, id, Done)
		if j.Result.(int) != i*i {
			t.Fatalf("job %s result %v, want %d", id, j.Result, i*i)
		}
		if j.Progress != fmt.Sprintf("task %d", i) {
			t.Fatalf("job %s progress %q", id, j.Progress)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, got := range order {
		if got != i {
			t.Fatalf("single worker ran out of order: %v", order)
		}
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	q := New(1, 2, 0)
	defer q.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	// Occupy the only worker…
	if _, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		close(started)
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	// …fill the queue to capacity…
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) { return nil, nil }); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// …and verify the next submission is rejected with ErrQueueFull.
	if _, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit: err=%v, want ErrQueueFull", err)
	}
	if s := q.Stats(); s.Queued != 2 || s.Busy != 1 {
		t.Fatalf("stats %+v, want 2 queued / 1 busy", s)
	}
	close(block)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	q := New(1, 8, 0)
	defer q.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	runningID, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		close(started)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-block:
			return nil, nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queuedID, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		t.Error("cancelled queued job must never run")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A queued job cancels synchronously.
	if !q.Cancel(queuedID) {
		t.Fatal("Cancel(queued) = false")
	}
	if j, _ := q.Get(queuedID); j.Status != Canceled {
		t.Fatalf("queued job status %s after cancel", j.Status)
	}
	// A running job cancels once its fn observes ctx.
	if !q.Cancel(runningID) {
		t.Fatal("Cancel(running) = false")
	}
	j := waitStatus(t, q, runningID, Canceled)
	if j.Err == "" {
		t.Fatal("cancelled job lost its cause")
	}
	// Cancelling a terminal job is a no-op.
	if q.Cancel(runningID) {
		t.Fatal("Cancel(terminal) = true")
	}
}

// TestConcurrentSubmitCancelDrain hammers the queue from many goroutines
// under -race: a mix of submissions, random cancellations and polling.
func TestConcurrentSubmitCancelDrain(t *testing.T) {
	q := New(4, 64, 0)
	const n = 64
	ids := make([]string, 0, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := q.Submit(func(ctx context.Context, progress func(string)) (any, error) {
				progress("working")
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(time.Duration(i%5) * time.Millisecond):
				}
				return i, nil
			})
			if errors.Is(err, ErrQueueFull) {
				return // backpressure is a legal outcome under load
			}
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			ids = append(ids, id)
			mu.Unlock()
			if i%3 == 0 {
				q.Cancel(id)
			}
			q.Get(id)
			q.Stats()
		}(i)
	}
	wg.Wait()
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// After a clean shutdown every accepted job is terminal.
	for _, id := range ids {
		j, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s lost", id)
		}
		if !j.Status.Terminal() {
			t.Fatalf("job %s left in %s after shutdown", id, j.Status)
		}
	}
}

// TestGracefulShutdown verifies the contract of the service's SIGTERM
// path: in-flight and already-queued jobs complete, new submissions are
// rejected, and Shutdown returns only when the pool is idle.
func TestGracefulShutdown(t *testing.T) {
	q := New(2, 16, 0)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			return "ok", nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	<-started // at least one job is in flight when shutdown begins

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- q.Shutdown(context.Background()) }()

	// New work must be rejected as soon as shutdown starts.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) { return nil, nil })
		if errors.Is(err, ErrShutdown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit during shutdown: err=%v, want ErrShutdown", err)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while jobs still blocked")
	default:
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	for _, id := range ids {
		j, _ := q.Get(id)
		if j.Status != Done || j.Result != "ok" {
			t.Fatalf("job %s: status %s result %v after graceful shutdown", id, j.Status, j.Result)
		}
	}
}

// TestShutdownDeadline verifies the forced path: jobs ignoring release
// until cancelled are reaped when the shutdown context expires.
func TestShutdownDeadline(t *testing.T) {
	q := New(1, 8, 0)
	id, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		<-ctx.Done() // honours cancellation, but never finishes voluntarily
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if j, _ := q.Get(id); j.Status != Canceled {
		t.Fatalf("running job status %s after forced shutdown", j.Status)
	}
	if j, _ := q.Get(queued); j.Status != Canceled {
		t.Fatalf("queued job status %s after forced shutdown", j.Status)
	}
}

func TestPanicIsolatedAsFailure(t *testing.T) {
	q := New(1, 4, 0)
	defer q.Shutdown(context.Background())
	id, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		panic("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	j := waitStatus(t, q, id, Failed)
	if j.Err == "" {
		t.Fatal("panic failure lost its message")
	}
	// The worker survived: the next job still runs.
	id2, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, q, id2, Done)
}

func TestCompleteRegistersCachedResult(t *testing.T) {
	q := New(1, 1, 0)
	defer q.Shutdown(context.Background())
	id, err := q.Complete("req-1", "cached", "cache hit")
	if err != nil {
		t.Fatal(err)
	}
	j, ok := q.Get(id)
	if !ok || j.Status != Done || j.Result != "cached" || j.Progress != "cache hit" {
		t.Fatalf("completed job %+v", j)
	}
	if s := q.Stats(); s.Queued != 0 || s.Busy != 0 {
		t.Fatalf("Complete consumed queue resources: %+v", s)
	}
}

func TestRetentionEvictsOldest(t *testing.T) {
	q := New(1, 4, 3)
	defer q.Shutdown(context.Background())
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := q.Complete("", i, "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:2] {
		if _, ok := q.Get(id); ok {
			t.Fatalf("job %s should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := q.Get(id); !ok {
			t.Fatalf("job %s evicted too early", id)
		}
	}
	// The cumulative totals survive the eviction that removed ids[:2].
	if s := q.Stats(); s.DoneTotal != 5 {
		t.Fatalf("DoneTotal = %d after eviction, want 5", s.DoneTotal)
	}
}

func TestOnTerminalObservesEveryTransition(t *testing.T) {
	q := New(1, 4, 0)
	defer q.Shutdown(context.Background())

	var mu sync.Mutex
	got := map[string]Job{}
	q.OnTerminal(func(j Job) {
		mu.Lock()
		got[j.ID] = j
		mu.Unlock()
	})

	// Done via worker (with a label), Failed via error, Done via Complete.
	okID, err := q.SubmitLabeled("req-ok", func(ctx context.Context, _ func(string)) (any, error) {
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, q, okID, Done)
	badID, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		return nil, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, q, badID, Failed)
	cacheID, err := q.Complete("req-cache", "hit", "")
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if j := got[okID]; j.Status != Done || j.Label != "req-ok" {
		t.Fatalf("worker Done not observed: %+v", j)
	}
	if j := got[badID]; j.Status != Failed || j.Err == "" {
		t.Fatalf("Failed not observed: %+v", j)
	}
	if j := got[cacheID]; j.Status != Done || j.Label != "req-cache" {
		t.Fatalf("Complete not observed: %+v", j)
	}
	s := q.Stats()
	if s.DoneTotal != 2 || s.FailedTotal != 1 || s.CanceledTotal != 0 {
		t.Fatalf("totals = %d/%d/%d, want 2/1/0", s.DoneTotal, s.FailedTotal, s.CanceledTotal)
	}
}

func TestOnTerminalObservesQueuedCancel(t *testing.T) {
	q := New(1, 4, 0)
	defer q.Shutdown(context.Background())
	release := make(chan struct{})
	blocker, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, q, blocker, Running)

	var observed atomic.Bool
	q.OnTerminal(func(j Job) {
		if j.Status == Canceled {
			observed.Store(true)
		}
	})
	queued, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !q.Cancel(queued) {
		t.Fatal("Cancel of queued job rejected")
	}
	if !observed.Load() {
		t.Fatal("queued-job cancellation not observed")
	}
	if s := q.Stats(); s.CanceledTotal != 1 {
		t.Fatalf("CanceledTotal = %d, want 1", s.CanceledTotal)
	}
	close(release)
	waitStatus(t, q, blocker, Done)
}

// TestPanicCapturesStack: a panicking job's failure record carries the
// goroutine stack, pointing at the panic site — not just the message.
func TestPanicCapturesStack(t *testing.T) {
	q := New(1, 4, 0)
	defer q.Shutdown(context.Background())
	id, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		explodeForStackTest()
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j := waitStatus(t, q, id, Failed)
	if j.Stack == "" {
		t.Fatal("panic failure has no captured stack")
	}
	if !strings.Contains(j.Stack, "explodeForStackTest") {
		t.Errorf("stack does not name the panic site:\n%s", j.Stack)
	}
	// Non-panic failures must not carry a stack.
	id2, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		return nil, errors.New("organic failure")
	})
	if err != nil {
		t.Fatal(err)
	}
	if j2 := waitStatus(t, q, id2, Failed); j2.Stack != "" {
		t.Errorf("organic failure captured a stack:\n%s", j2.Stack)
	}
}

// explodeForStackTest exists so the captured stack has a recognizable
// frame to assert on.
func explodeForStackTest() { panic("boom with stack") }

// TestInjectedWorkerPanic: the jobq.worker.panic injection point fails
// the job with a typed fault error and the captured stack, and the
// worker survives to run the next job faultlessly.
func TestInjectedWorkerPanic(t *testing.T) {
	q := New(1, 4, 0)
	defer q.Shutdown(context.Background())
	q.SetFault(fault.NewPlan(11).Arm(fault.JobqWorkerPanic, fault.Once(0)))
	ran := false
	id, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		ran = true
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j := waitStatus(t, q, id, Failed)
	if !strings.Contains(j.Err, string(fault.JobqWorkerPanic)) {
		t.Errorf("injected panic error %q does not name the point", j.Err)
	}
	if j.Stack == "" {
		t.Error("injected panic captured no stack")
	}
	if ran {
		t.Error("job body ran despite injected worker panic")
	}
	// Once(0) fired; the next job runs clean.
	id2, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, q, id2, Done)
}

// TestInjectedSlowAndStall: latency points delay the job without
// corrupting its result, and cancellation cuts the injected delay short.
func TestInjectedSlowAndStall(t *testing.T) {
	q := New(1, 4, 0)
	defer q.Shutdown(context.Background())
	q.SetFault(fault.NewPlan(11).
		Arm(fault.JobqJobSlow, fault.Policy{Prob: 1, Delay: 20 * time.Millisecond}).
		Arm(fault.JobqQueueStall, fault.Policy{Prob: 1, Delay: 10 * time.Millisecond}))
	start := time.Now()
	id, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	j := waitStatus(t, q, id, Done)
	if j.Result != 42 {
		t.Errorf("slow job result = %v, want 42", j.Result)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("injected delays not applied: job finished in %v", d)
	}

	// A cancelled job does not serve out an injected minute-long delay.
	q.SetFault(fault.NewPlan(11).Arm(fault.JobqJobSlow, fault.Policy{Prob: 1, Delay: time.Minute}))
	id2, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, q, id2, Running)
	q.Cancel(id2)
	waitStatus(t, q, id2, Canceled)
}

// TestEvictedRecordsAreRecycled drives enough churn through a tiny
// retention ring that evicted records must flow through the pool, and
// checks that recycled records never leak a previous job's state into a
// snapshot.
func TestEvictedRecordsAreRecycled(t *testing.T) {
	q := New(2, 8, 2)
	defer q.Shutdown(context.Background())
	for i := 0; i < 64; i++ {
		want := i
		id, err := q.Complete("", want, "done")
		if err != nil {
			t.Fatal(err)
		}
		j, ok := q.Get(id)
		if !ok {
			t.Fatalf("iteration %d: freshly completed job %s unknown", i, id)
		}
		if j.Result != want || j.ID != id || j.Err != "" || j.Stack != "" {
			t.Fatalf("iteration %d: stale state on recycled record: %+v", i, j)
		}
	}
}

// BenchmarkCompleteChurn measures the steady-state cost of registering
// one finished job with the retention ring full — the cache-hit serving
// pattern. Run with -benchmem: record recycling keeps allocs/op flat
// instead of one job struct per request.
func BenchmarkCompleteChurn(b *testing.B) {
	q := New(1, 4, 8)
	defer q.Shutdown(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Complete("", nil, "done"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSubmitDetachedRunsWithoutWorker: a detached job must make
// progress while every pool worker is occupied — that independence is
// its entire reason to exist (forward jobs must not deadlock a
// one-worker node against another one-worker node).
func TestSubmitDetachedRunsWithoutWorker(t *testing.T) {
	q := New(1, 4, 0)
	defer q.Shutdown(context.Background())

	// Pin the only worker.
	release := make(chan struct{})
	blocker, err := q.Submit(func(ctx context.Context, _ func(string)) (any, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, q, blocker, Running)

	id, err := q.SubmitDetached("req-1", func(ctx context.Context, progress func(string)) (any, error) {
		progress("forwarding")
		return "remote", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j := waitStatus(t, q, id, Done)
	if j.Result != "remote" || j.Label != "req-1" {
		t.Fatalf("detached job snapshot: %+v", j)
	}
	close(release)
	waitStatus(t, q, blocker, Done)
}

// TestSubmitDetachedBounded: detached jobs respect the capacity bound
// and release their slot on completion.
func TestSubmitDetachedBounded(t *testing.T) {
	q := New(1, 2, 0)
	defer q.Shutdown(context.Background())

	release := make(chan struct{})
	hold := func(ctx context.Context, _ func(string)) (any, error) {
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	a, err := q.SubmitDetached("", hold)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitDetached("", hold); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Detached != 2 {
		t.Fatalf("Detached = %d, want 2", st.Detached)
	}
	if _, err := q.SubmitDetached("", hold); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third detached job: err = %v, want ErrQueueFull", err)
	}
	close(release)
	waitStatus(t, q, a, Done)
}

// TestSubmitDetachedShutdown: drain waits for detached jobs; the
// hard-cancel path cancels their contexts.
func TestSubmitDetachedShutdown(t *testing.T) {
	q := New(1, 4, 0)
	id, err := q.SubmitDetached("", func(ctx context.Context, _ func(string)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); err == nil {
		t.Fatal("deadline shutdown reported clean drain with a detached job pinned")
	}
	j := waitStatus(t, q, id, Canceled)
	if j.Err == "" {
		t.Fatal("hard-canceled detached job lost its cause")
	}
	if _, err := q.SubmitDetached("", nil); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown detached submit: %v", err)
	}
}
