// Package journal is the crash-safe job journal of the synthesis
// service: an append-only file of JSON lines recording every accepted
// synthesis request and every terminal outcome. After a crash — up to
// and including SIGKILL mid-write — reopening the journal yields the
// accepted-but-unfinished requests so the service can resubmit them:
// an accepted job is never silently lost.
//
// Durability model: each record is one JSON line written with a single
// write(2) on an O_APPEND descriptor. That survives process death at any
// instant (the data is in the page cache the moment write returns) and
// keeps concurrent appends atomic. It does not survive power loss —
// fsync per record would, but the service's threat model is crashing
// processes, not crashing kernels, and an fsync per accepted request
// would gate the whole submit path on the disk. A torn final line (the
// one write the kernel was never asked to do) parses as garbage and is
// skipped with a count, never an error.
//
// The file is compacted on Open: finished work is dropped and only
// pending records are rewritten (to a temp file, then renamed over the
// original), so the journal's size tracks the backlog, not the history.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Record is one journal line.
type Record struct {
	// Op is "accepted" or "terminal".
	Op string `json:"op"`
	// ID is the journal's own entry ID, stable across restarts (queue job
	// IDs restart from zero with the process and cannot name work that
	// outlives it).
	ID string `json:"id"`
	// Label is the caller's correlation label (the request ID).
	Label string `json:"label,omitempty"`
	// Request is the raw synthesis request body, kept so a pending entry
	// can be resubmitted verbatim after a restart.
	Request json.RawMessage `json:"request,omitempty"`
	// Status is the terminal outcome ("done", "failed", "canceled",
	// "rejected", "unreplayable") for op == "terminal".
	Status string `json:"status,omitempty"`
	// Time stamps the record for operators; replay ignores it.
	Time time.Time `json:"time"`
}

// Journal is an open journal file. All methods are safe for concurrent
// use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seq  uint64
}

// Open reads the journal at path (creating it if absent), compacts it,
// and returns the open journal plus the pending records — accepted
// entries with no terminal outcome, in acceptance order — and the number
// of torn or unparseable lines that were skipped.
func Open(path string) (*Journal, []Record, int, error) {
	pending, maxSeq, torn, err := load(path)
	if err != nil {
		return nil, nil, 0, err
	}
	// Compact: rewrite only the pending records, atomically. A crash
	// before the rename leaves the old file; after it, the new — both are
	// complete journals.
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: compact: %w", err)
	}
	w := bufio.NewWriter(tf)
	for _, r := range pending {
		line, err := json.Marshal(r)
		if err != nil {
			tf.Close()
			return nil, nil, 0, fmt.Errorf("journal: compact: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tf.Close()
		return nil, nil, 0, fmt.Errorf("journal: compact: %w", err)
	}
	if err := tf.Close(); err != nil {
		return nil, nil, 0, fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, 0, fmt.Errorf("journal: compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, path: path, seq: maxSeq}, pending, torn, nil
}

// Peek reads the journal at path without opening it for writing and
// without compacting: the pending records and torn-line count exactly as
// they sit on disk. It exists so a test or an operator can inspect a
// crashed node's journal — counting the jobs a restart must replay —
// without mutating the evidence.
func Peek(path string) ([]Record, int, error) {
	pending, _, torn, err := load(path)
	return pending, torn, err
}

// load parses the journal file, returning pending accepted records, the
// highest entry sequence seen, and the count of skipped torn lines.
func load(path string) ([]Record, uint64, int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, 0, 0, fmt.Errorf("journal: %w", err)
			}
		}
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	accepted := make(map[string]int) // entry ID -> index into order
	var order []Record
	terminal := make(map[string]bool)
	var maxSeq uint64
	torn := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 32<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.ID == "" {
			// A torn last write or stray corruption. Skipping is safe in
			// both directions: a torn "accepted" was never acknowledged
			// (the append happens before the job is), and a torn
			// "terminal" merely replays a finished job, which is
			// idempotent (the cache serves it).
			torn++
			continue
		}
		if n := entrySeq(r.ID); n > maxSeq {
			maxSeq = n
		}
		switch r.Op {
		case "accepted":
			if _, dup := accepted[r.ID]; !dup {
				accepted[r.ID] = len(order)
				order = append(order, r)
			}
		case "terminal":
			terminal[r.ID] = true
		default:
			torn++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, 0, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	var pending []Record
	for _, r := range order {
		if !terminal[r.ID] {
			pending = append(pending, r)
		}
	}
	return pending, maxSeq, torn, nil
}

// entrySeq extracts the numeric suffix of an entry ID ("e42" → 42).
func entrySeq(id string) uint64 {
	if !strings.HasPrefix(id, "e") {
		return 0
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Accepted appends an acceptance record and returns its new entry ID.
func (j *Journal) Accepted(label string, request json.RawMessage) (string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	id := "e" + strconv.FormatUint(j.seq, 10)
	return id, j.append(Record{Op: "accepted", ID: id, Label: label, Request: request, Time: time.Now().UTC()})
}

// Terminal appends a terminal-outcome record for entry id.
func (j *Journal) Terminal(id, status string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(Record{Op: "terminal", ID: id, Status: status, Time: time.Now().UTC()})
}

// append marshals r and writes it with a single write(2). Caller holds
// j.mu.
func (j *Journal) append(r Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	return j.path
}

// Close closes the journal file. Records written before Close are
// already durable against process death; Close adds nothing but the
// descriptor's release.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
