package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func open(t *testing.T, path string) (*Journal, []Record, int) {
	t.Helper()
	j, pending, torn, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, pending, torn
}

func TestEmptyJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	_, pending, torn := open(t, path)
	if len(pending) != 0 || torn != 0 {
		t.Fatalf("fresh journal: pending %d torn %d", len(pending), torn)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Open did not create the file: %v", err)
	}
}

func TestPendingSurviveReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, _ := open(t, path)
	a, err := j.Accepted("req-a", json.RawMessage(`{"bench":"pcr"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := j.Accepted("req-b", json.RawMessage(`{"bench":"iftd"}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Terminal(a, "done"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, pending, torn := open(t, path)
	if torn != 0 {
		t.Fatalf("clean journal reported %d torn lines", torn)
	}
	if len(pending) != 1 || pending[0].ID != b || pending[0].Label != "req-b" {
		t.Fatalf("pending = %+v, want the one unfinished entry %s", pending, b)
	}
	if string(pending[0].Request) != `{"bench":"iftd"}` {
		t.Fatalf("request body mangled: %s", pending[0].Request)
	}
	// Entry IDs must not collide with pre-restart ones.
	c, err := j2.Accepted("req-c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c == a || c == b {
		t.Fatalf("new entry ID %s collides with a pre-restart ID", c)
	}
}

func TestCompactionDropsFinishedWork(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, _ := open(t, path)
	for i := 0; i < 50; i++ {
		id, err := j.Accepted("req", json.RawMessage(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Terminal(id, "done"); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	open(t, path) // compacts
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("fully-finished journal not compacted to empty: %d bytes", len(data))
	}
}

func TestTornLastLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, _ := open(t, path)
	id, err := j.Accepted("req-a", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a SIGKILL mid-write: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"terminal","id":"e`)
	f.Close()

	_, pending, torn := open(t, path)
	if torn != 1 {
		t.Fatalf("torn = %d, want 1", torn)
	}
	if len(pending) != 1 || pending[0].ID != id {
		t.Fatalf("torn tail corrupted replay: pending %+v", pending)
	}
}

func TestTerminalForUnknownEntryIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, _ := open(t, path)
	// A terminal with no matching accepted record (e.g. its accepted line
	// was torn away) must not break replay.
	if err := j.Terminal("e999", "done"); err != nil {
		t.Fatal(err)
	}
	id, err := j.Accepted("req", nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, pending, _ := open(t, path)
	if len(pending) != 1 || pending[0].ID != id {
		t.Fatalf("pending = %+v", pending)
	}
	// Sequence must have advanced past the orphan terminal's e999.
	next, err := j2.Accepted("req2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if next == "e999" || next == id {
		t.Fatalf("sequence reused an existing ID: %s", next)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, _ := open(t, path)
	const n = 64
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := j.Accepted("req", json.RawMessage(`{}`))
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = id
			if i%2 == 0 {
				if err := j.Terminal(id, "done"); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	_, pending, torn := open(t, path)
	if torn != 0 {
		t.Fatalf("concurrent appends tore %d lines", torn)
	}
	if len(pending) != n/2 {
		t.Fatalf("pending = %d, want %d", len(pending), n/2)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("duplicate or missing entry ID %q", id)
		}
		seen[id] = true
	}
}

func TestGarbageLinesSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	content := strings.Join([]string{
		`{"op":"accepted","id":"e1","label":"a"}`,
		`not json at all`,
		`{"op":"frobnicate","id":"e2"}`,
		`{"op":"accepted","id":"e3","label":"b"}`,
		`{"op":"terminal","id":"e1","status":"done"}`,
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, pending, torn := open(t, path)
	if torn != 2 {
		t.Fatalf("torn = %d, want 2", torn)
	}
	if len(pending) != 1 || pending[0].ID != "e3" {
		t.Fatalf("pending = %+v, want just e3", pending)
	}
}
