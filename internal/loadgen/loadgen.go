// Package loadgen is the workload engine behind cmd/mfload: named,
// seeded traffic profiles over the full Table I benchmark set plus
// seeded random-assay corpora, executed against a running mfserved and
// folded into an SLO-style report (BENCH_load.json).
//
// The package splits load generation into two halves with very
// different determinism requirements:
//
//   - Schedule construction (Build) is a pure function of (profile,
//     Options): every arrival offset, request body and source tag is
//     derived from internal/rng, so the same inputs produce a
//     byte-identical schedule on every run and platform. That is what
//     makes a load regression a regression — two runs of the same
//     profile submit exactly the same byte sequences in the same order.
//   - Execution (Run) is real I/O against a real server and is NOT
//     deterministic: latencies, cache hits and shed counts depend on
//     the server under test. The report records them as measurements.
//
// Profiles model the three traffic shapes the ROADMAP's service items
// are judged against:
//
//   - steady: open-loop constant-rate arrivals, uniform benchmark mix.
//     The baseline "is the service keeping up" profile.
//   - bursty: open-loop square-wave arrivals — burst-rate traffic for
//     half the period, silence for the rest, same uniform mix. This is
//     the profile that exercises the queue bound, the circuit breaker
//     and the 429/503 degradation ladder.
//   - heavytail: closed-loop workers replaying a Zipf-skewed mix over
//     the benchmarks plus a random-assay corpus. A few hot keys
//     dominate — the cache-locality shape the distributed channel
//     storage work (cf. arXiv:1705.04988) cares about — while the
//     corpus tail keeps cold misses arriving.
package loadgen

import (
	"fmt"
	"time"
)

// Profile names a traffic shape and carries its defaults. Rate and
// Concurrency are starting points a caller may override via Options;
// the shape (open vs closed loop, mix, burst structure) is fixed.
type Profile struct {
	Name        string
	Description string
	// OpenLoop: arrivals fire at schedule offsets regardless of how the
	// server is doing (rate is the independent variable). Closed loop:
	// Concurrency workers submit back-to-back, so offered load adapts
	// to service latency.
	OpenLoop bool
	// Rate is the target arrival rate in requests/second (open loop).
	Rate float64
	// BurstPeriod/BurstDuty shape open-loop square-wave arrivals: all
	// of a period's arrivals are compressed into the first
	// BurstDuty fraction. Zero period means constant rate.
	BurstPeriod time.Duration
	BurstDuty   float64
	// Concurrency is the closed-loop worker count (also the in-flight
	// cap in open loop, so a stalled server cannot pile up goroutines).
	Concurrency int
	// Zipf skews the mix: item k of the universe is weighted
	// 1/(k+1)^Zipf. Zero keeps the mix uniform.
	Zipf float64
	// CorpusSize appends that many seeded random assays to the request
	// universe (heavytail's cold tail).
	CorpusSize int
	// SeedVariants widens the universe: each source is replayed with
	// this many distinct synthesis seeds, so the cache sees repeats
	// without every request being the same key. Minimum 1.
	SeedVariants int
	// SessionFaults turns items into chip-session lifecycles: each item
	// opens a session (POST /v1/sessions) and injects this many seeded
	// fault reports before closing, classifying every repair as
	// repaired, degraded or abandoned. Zero keeps items as one-shot
	// synthesis requests.
	SessionFaults int
	// ShedFloor/ShedCeil, when ShedCeil > 0, declare the profile's
	// expected shed-rate envelope: the run must shed (429+503) at least
	// ShedFloor and at most ShedCeil of its requests, or cmd/mfload
	// exits non-zero. This is how the overload profile asserts that the
	// breaker/shed path actually engaged — a zero shed rate means the
	// server was never saturated and the run proved nothing — while the
	// ceiling plus the existing ≥1-completed rule prove the service
	// stayed alive under the abuse.
	ShedFloor float64
	ShedCeil  float64
}

// Profiles returns the built-in profiles in a fixed order.
func Profiles() []Profile {
	return []Profile{
		{
			Name:         "steady",
			Description:  "open-loop constant rate, uniform Table I mix",
			OpenLoop:     true,
			Rate:         8,
			Concurrency:  64,
			SeedVariants: 2,
		},
		{
			Name:         "bursty",
			Description:  "open-loop square wave (half-period bursts at 2x rate), uniform Table I mix",
			OpenLoop:     true,
			Rate:         8,
			BurstPeriod:  2 * time.Second,
			BurstDuty:    0.5,
			Concurrency:  64,
			SeedVariants: 2,
		},
		{
			Name:         "heavytail",
			Description:  "closed-loop Zipf mix over Table I + random-assay corpus (hot keys + cold tail)",
			OpenLoop:     false,
			Rate:         8,
			Concurrency:  8,
			Zipf:         1.1,
			CorpusSize:   6,
			SeedVariants: 1,
		},
		{
			// Offered load far beyond any small server's capacity, with
			// enough distinct synthesis seeds that the cache cannot absorb
			// the excess: the queue fills, the 429/503 ladder engages, and
			// the envelope asserts it did — while the server keeps
			// completing the requests it admits. Run it against a
			// deliberately small server (CI uses one worker and a
			// single-digit queue); a large idle server absorbs the rate
			// and fails the floor, which is the envelope doing its job.
			Name:         "overload",
			Description:  "open-loop overload (cold-key flood past capacity); asserts a bounded-nonzero shed rate",
			OpenLoop:     true,
			Rate:         300,
			Concurrency:  512,
			SeedVariants: 50,
			ShedFloor:    0.02,
			ShedCeil:     0.98,
		},
		{
			// Closed-loop chip sessions over the Table I mix: every item
			// opens a session, injects seeded mid-assay fault reports
			// (dead cells drawn inside the smallest Table I routing plane)
			// and closes, so the run measures the online-repair path —
			// create latency, repair outcomes, abandonment — instead of
			// the one-shot synthesis path.
			Name:          "session",
			Description:   "closed-loop chip sessions: open, inject seeded fault reports, classify repairs",
			OpenLoop:      false,
			Rate:          8,
			Concurrency:   4,
			SeedVariants:  2,
			SessionFaults: 2,
		},
	}
}

// ByName resolves a profile, listing the valid names on failure.
func ByName(name string) (Profile, error) {
	var names []string
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("unknown profile %q (have %v)", name, names)
}
