package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestScheduleDeterministic pins the package's core promise: the same
// (profile, Options) produce byte-identical schedules, and the seed
// actually matters.
func TestScheduleDeterministic(t *testing.T) {
	t.Parallel()
	for _, p := range Profiles() {
		opts := Options{Seed: 42, Duration: 10 * time.Second}
		a, err := Build(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		b, err := Build(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		ab, err := a.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s: same seed produced different schedule bytes", p.Name)
		}
		c, err := Build(p, Options{Seed: 43, Duration: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		cb, _ := c.Bytes()
		if bytes.Equal(ab, cb) {
			t.Errorf("%s: different seeds produced identical schedules", p.Name)
		}
	}
}

// TestScheduleShape checks the structural invariants each profile
// promises: monotone open-loop offsets inside the horizon, zero
// offsets in closed loop, bursty arrivals compressed into the duty
// window, heavytail drawing from the corpus, and every body being a
// decodable synthesis request.
func TestScheduleShape(t *testing.T) {
	t.Parallel()
	for _, p := range Profiles() {
		s, err := Build(p, Options{Seed: 7, Duration: 10 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(s.Items) == 0 {
			t.Fatalf("%s: empty schedule", p.Name)
		}
		var last time.Duration
		for i, it := range s.Items {
			if it.Index != i {
				t.Fatalf("%s: item %d has index %d", p.Name, i, it.Index)
			}
			if !p.OpenLoop && it.At != 0 {
				t.Fatalf("%s: closed-loop item %d has offset %v", p.Name, i, it.At)
			}
			if p.OpenLoop {
				if it.At < last {
					t.Fatalf("%s: offsets not monotone at %d (%v < %v)", p.Name, i, it.At, last)
				}
				last = it.At
				if it.At >= 10*time.Second {
					t.Fatalf("%s: item %d beyond horizon: %v", p.Name, i, it.At)
				}
				if p.BurstPeriod > 0 {
					inPeriod := it.At % p.BurstPeriod
					window := time.Duration(float64(p.BurstPeriod) * p.BurstDuty)
					if inPeriod > window {
						t.Fatalf("%s: item %d at %v lands outside the duty window", p.Name, i, it.At)
					}
				}
			}
			var req struct {
				Bench   string          `json:"bench"`
				Assay   json.RawMessage `json:"assay"`
				Options struct {
					Imax int    `json:"imax"`
					Seed uint64 `json:"seed"`
				} `json:"options"`
			}
			dec := json.NewDecoder(bytes.NewReader(it.Body))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&req); err != nil {
				t.Fatalf("%s: item %d body: %v", p.Name, i, err)
			}
			if req.Bench == "" && len(req.Assay) == 0 {
				t.Fatalf("%s: item %d names neither bench nor assay", p.Name, i)
			}
			if req.Options.Imax != 60 || req.Options.Seed < 1 {
				t.Fatalf("%s: item %d options: %+v", p.Name, i, req.Options)
			}
		}
	}

	// heavytail specifically must mix corpus assays into the universe…
	ht, err := ByName("heavytail")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(ht, Options{Seed: 7, Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var corpus, hot int
	for _, it := range s.Items {
		if strings.HasPrefix(it.Source, "corpus:") {
			corpus++
		}
		if strings.HasPrefix(it.Source, "bench:PCR#") {
			hot++
		}
	}
	if corpus == 0 {
		t.Fatal("heavytail schedule never drew a corpus assay")
	}
	// …while staying head-heavy: the rank-0 benchmark must dominate any
	// single corpus entry under the Zipf skew.
	if hot <= corpus/ht.CorpusSize {
		t.Fatalf("heavytail skew looks uniform: hot=%d corpus(total)=%d", hot, corpus)
	}
}

// TestRunReportStable runs a small steady schedule against a real
// in-process server and checks the report's invariants — the fields CI
// gates on must be internally consistent regardless of timing.
func TestRunReportStable(t *testing.T) {
	t.Parallel()
	srv, err := server.New(server.Config{Workers: 2, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	p, err := ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Build(p, Options{Seed: 5, Duration: time.Second, Rate: 8})
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{BaseURL: ts.URL, Timeout: 120 * time.Second}
	start := time.Now()
	outcomes, err := runner.Run(context.Background(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(sched.Items) {
		t.Fatalf("outcomes %d, scheduled %d", len(outcomes), len(sched.Items))
	}
	for i, o := range outcomes {
		if o.Index != i {
			t.Fatalf("outcomes not in schedule order at %d: %+v", i, o)
		}
		if o.Status != "done" {
			t.Fatalf("outcome %d: %+v", i, o)
		}
		if o.LatencyMs <= 0 {
			t.Fatalf("outcome %d has no latency", i)
		}
	}

	rep := Summarize(sched, outcomes, time.Since(start))
	if rep.Completed != len(outcomes) || rep.Errors != 0 || rep.Failed != 0 {
		t.Fatalf("report counts: %+v", rep)
	}
	if rep.Completed != rep.Scheduled {
		t.Fatalf("completed %d != scheduled %d", rep.Completed, rep.Scheduled)
	}
	l := rep.LatencyMs
	if !(l.P50 > 0 && l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.Max) {
		t.Fatalf("percentiles not monotone: %+v", l)
	}
	if rep.CacheHitRate < 0 || rep.CacheHitRate > 1 || rep.ErrorRate != 0 || rep.ShedRate != 0 {
		t.Fatalf("rates out of range: %+v", rep)
	}
	if rep.ThroughputPerS <= 0 {
		t.Fatalf("throughput %v", rep.ThroughputPerS)
	}
	// The steady mix repeats keys (SeedVariants bounds the universe),
	// so a full run must produce at least one cache hit.
	if rep.CacheHits == 0 {
		t.Fatal("steady run produced zero cache hits — mix no longer repeats keys")
	}
}

// TestSessionScheduleShape pins the session-profile extras: every item
// carries exactly SessionFaults seeded reports with monotone instants
// and in-plane cells, non-session profiles carry none (so their
// schedule bytes are untouched), and session schedules refuse batching.
func TestSessionScheduleShape(t *testing.T) {
	t.Parallel()
	for _, p := range Profiles() {
		s, err := Build(p, Options{Seed: 11, Duration: 2 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for i, it := range s.Items {
			if len(it.Faults) != p.SessionFaults {
				t.Fatalf("%s: item %d has %d fault reports, want %d", p.Name, i, len(it.Faults), p.SessionFaults)
			}
			lastAt := -1
			for j, fr := range it.Faults {
				var rep struct {
					At    int `json:"at"`
					Cells []struct {
						X int `json:"x"`
						Y int `json:"y"`
					} `json:"cells"`
				}
				dec := json.NewDecoder(bytes.NewReader(fr))
				dec.DisallowUnknownFields()
				if err := dec.Decode(&rep); err != nil {
					t.Fatalf("%s: item %d fault %d: %v", p.Name, i, j, err)
				}
				if rep.At < lastAt {
					t.Fatalf("%s: item %d fault %d at %d precedes %d", p.Name, i, j, rep.At, lastAt)
				}
				lastAt = rep.At
				for _, c := range rep.Cells {
					if c.X < 0 || c.Y < 0 || c.X >= faultPlaneBound || c.Y >= faultPlaneBound {
						t.Fatalf("%s: item %d fault %d cell (%d,%d) outside [0,%d)", p.Name, i, j, c.X, c.Y, faultPlaneBound)
					}
				}
			}
		}
		if p.SessionFaults > 0 {
			if _, err := Build(p, Options{Seed: 11, Duration: 2 * time.Second, Batch: 4}); err == nil {
				t.Fatalf("%s: batched session schedule built without error", p.Name)
			}
		}
	}
}

// TestRunSessionProfile drives the session profile against a real
// in-process server: every session must open, take its repairs, and the
// report must classify each one.
func TestRunSessionProfile(t *testing.T) {
	t.Parallel()
	srv, err := server.New(server.Config{Workers: 2, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	p, err := ByName("session")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Build(p, Options{Seed: 3, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{BaseURL: ts.URL, Timeout: 120 * time.Second}
	start := time.Now()
	outcomes, err := runner.Run(context.Background(), sched)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outcomes {
		if o.Status != "done" || !o.Session {
			t.Fatalf("outcome %d: %+v", i, o)
		}
		if o.Repairs < 1 || o.Repaired+o.DegradedRepairs+btoi(o.Abandoned) != o.Repairs {
			t.Fatalf("outcome %d repair accounting: %+v", i, o)
		}
		if !o.Abandoned && o.Repairs != p.SessionFaults {
			t.Fatalf("outcome %d: surviving session took %d reports, want %d", i, o.Repairs, p.SessionFaults)
		}
	}
	rep := Summarize(sched, outcomes, time.Since(start))
	if rep.Sessions != rep.Scheduled || rep.Errors != 0 || rep.Failed != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Repaired+rep.DegradedRepairs+rep.Abandoned != rep.Repairs {
		t.Fatalf("report repair accounting: %+v", rep)
	}
	if rep.Repairs == 0 {
		t.Fatal("session run accepted zero repairs")
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestRunBatchMode ships the same schedule through the batch endpoint
// and expects identical member-level outcomes.
func TestRunBatchMode(t *testing.T) {
	t.Parallel()
	srv, err := server.New(server.Config{Workers: 2, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	p, err := ByName("heavytail")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Build(p, Options{Seed: 5, Duration: time.Second, Rate: 8, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{BaseURL: ts.URL, Timeout: 120 * time.Second}
	outcomes, err := runner.Run(context.Background(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(sched.Items) {
		t.Fatalf("outcomes %d, scheduled %d", len(outcomes), len(sched.Items))
	}
	for i, o := range outcomes {
		if o.Status != "done" {
			t.Fatalf("outcome %d: %+v", i, o)
		}
	}
}

// TestPercentileNearestRank pins the percentile method against hand
// figures so report numbers stay comparable across versions.
func TestPercentileNearestRank(t *testing.T) {
	t.Parallel()
	pop := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {1, 1}} {
		if got := percentile(pop, tc.p); got != tc.want {
			t.Errorf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("empty population p50 = %v, want 0", got)
	}
}

// BenchmarkScheduleBuild measures schedule materialization — the cost
// of starting a load run, dominated by corpus assay generation.
func BenchmarkScheduleBuild(b *testing.B) {
	p, err := ByName("heavytail")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(p, Options{Seed: uint64(i), Duration: 10 * time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}
