package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/regress"
)

// Percentiles summarizes a latency population in milliseconds.
// Percentiles use the nearest-rank method, matching the selfbench and
// SLO layers, so the numbers are comparable across reports.
type Percentiles struct {
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
	MeanMs float64 `json:"mean"`
}

// Report is one profile's aggregated run. Rates are fractions of
// submitted requests (0 when nothing was submitted).
type Report struct {
	Profile     string  `json:"profile"`
	Seed        uint64  `json:"seed"`
	OpenLoop    bool    `json:"open_loop"`
	RatePerS    float64 `json:"rate_per_s"`
	Concurrency int     `json:"concurrency"`
	Batch       int     `json:"batch,omitempty"`
	DurationS   float64 `json:"duration_s"`

	Scheduled int `json:"scheduled"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`
	Shed      int `json:"shed"`
	Errors    int `json:"errors"`
	CacheHits int `json:"cache_hits"`
	Degraded  int `json:"degraded"`

	// Session-profile aggregates (omitted for profiles that never open
	// a session): sessions that opened, fault reports the service
	// accepted, and the repaired/degraded/abandoned classification of
	// every repair.
	Sessions        int `json:"sessions,omitempty"`
	Repairs         int `json:"repairs,omitempty"`
	Repaired        int `json:"repaired,omitempty"`
	DegradedRepairs int `json:"degraded_repairs,omitempty"`
	Abandoned       int `json:"abandoned,omitempty"`

	ErrorRate    float64 `json:"error_rate"`
	ShedRate     float64 `json:"shed_rate"`
	DegradedRate float64 `json:"degraded_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// ThroughputPerS counts completed jobs over the wall-clock of the
	// run (closed loop's dependent variable; open loop's sanity check
	// against the offered rate).
	ThroughputPerS float64 `json:"throughput_per_s"`

	LatencyMs Percentiles `json:"latency_ms"`
}

// percentile is the nearest-rank percentile of a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Summarize folds run outcomes into a Report.
func Summarize(s *Schedule, outcomes []Outcome, wall time.Duration) Report {
	rep := Report{
		Profile:     s.Profile,
		Seed:        s.Seed,
		OpenLoop:    s.OpenLoop,
		RatePerS:    s.Rate,
		Concurrency: s.Concurrency,
		Batch:       s.Batch,
		DurationS:   wall.Seconds(),
		Scheduled:   len(s.Items),
	}
	var lats []float64
	var sum float64
	for _, o := range outcomes {
		if o.Session {
			rep.Sessions++
			rep.Repairs += o.Repairs
			rep.Repaired += o.Repaired
			rep.DegradedRepairs += o.DegradedRepairs
			if o.Abandoned {
				rep.Abandoned++
			}
		}
		switch o.Status {
		case "done":
			rep.Completed++
			if o.Cached {
				rep.CacheHits++
			}
			if o.Degraded {
				rep.Degraded++
			}
			lats = append(lats, o.LatencyMs)
			sum += o.LatencyMs
		case "failed":
			rep.Failed++
		case "rejected":
			rep.Rejected++
		case "shed":
			rep.Shed++
		default:
			rep.Errors++
		}
	}
	n := float64(len(outcomes))
	if n > 0 {
		rep.ErrorRate = float64(rep.Errors+rep.Failed) / n
		rep.ShedRate = float64(rep.Shed+rep.Rejected) / n
	}
	if rep.Completed > 0 {
		rep.DegradedRate = float64(rep.Degraded) / float64(rep.Completed)
		rep.CacheHitRate = float64(rep.CacheHits) / float64(rep.Completed)
	}
	if wall > 0 {
		rep.ThroughputPerS = float64(rep.Completed) / wall.Seconds()
	}
	sort.Float64s(lats)
	rep.LatencyMs = Percentiles{
		P50: percentile(lats, 50),
		P95: percentile(lats, 95),
		P99: percentile(lats, 99),
	}
	if len(lats) > 0 {
		rep.LatencyMs.Max = lats[len(lats)-1]
		rep.LatencyMs.MeanMs = sum / float64(len(lats))
	}
	return rep
}

// Doc is the BENCH_load.json document: one report per profile run plus
// the regress section internal/regress consumes, so the same `mfbench
// -regress BENCH_load.json -bench Synthetic1` gate that guards the
// other BENCH documents guards this one.
type Doc struct {
	Kind      string            `json:"kind"`
	Generated string            `json:"generated,omitempty"`
	Host      string            `json:"host"`
	CPUs      int               `json:"cpus"`
	Profiles  []Report          `json:"profiles"`
	Regress   *regress.Baseline `json:"regress,omitempty"`
}

// NewDoc stamps a document with host facts.
func NewDoc(generated string) *Doc {
	return &Doc{
		Kind:      "mfload",
		Generated: generated,
		Host:      runtime.GOOS + "/" + runtime.GOARCH + " " + runtime.Version(),
		CPUs:      runtime.NumCPU(),
	}
}

// Write renders the document as indented JSON.
func (d *Doc) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// MeasureRegressEntry captures the Synthetic1 reference figures over
// the live API (imax 60, seed 1 — the options every service baseline
// records), giving the document its regression anchor: load numbers
// are only comparable between runs whose underlying synthesis is
// cost-identical.
func MeasureRegressEntry(client *http.Client, baseURL string) (*regress.Baseline, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(baseURL+"/v1/synthesize", "application/json",
		strings.NewReader(`{"bench":"Synthetic1","options":{"imax":60,"seed":1}}`))
	if err != nil {
		return nil, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		return nil, err
	}
	if sub.JobID == "" {
		return nil, fmt.Errorf("reference submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		jr, err := client.Get(baseURL + "/v1/jobs/" + sub.JobID)
		if err != nil {
			return nil, err
		}
		jdata, _ := io.ReadAll(jr.Body)
		jr.Body.Close()
		var job struct {
			Status  string `json:"status"`
			Error   string `json:"error"`
			Metrics *struct {
				ExecutionTimeMs int64   `json:"execution_time_ms"`
				ChannelLengthUm int64   `json:"channel_length_um"`
				ChannelWashMs   int64   `json:"channel_wash_ms"`
				Transports      int     `json:"transports"`
				CPUMs           float64 `json:"cpu_ms"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal(jdata, &job); err != nil {
			return nil, err
		}
		switch job.Status {
		case "done":
			if job.Metrics == nil {
				return nil, fmt.Errorf("reference job has no metrics")
			}
			return &regress.Baseline{
				Imax: 60, Seed: 1, Tolerance: 0.5,
				Benchmarks: map[string]regress.Entry{"Synthetic1": {
					NsPerOp:         job.Metrics.CPUMs * 1e6,
					MakespanMs:      job.Metrics.ExecutionTimeMs,
					ChannelLengthUm: job.Metrics.ChannelLengthUm,
					ChannelWashMs:   job.Metrics.ChannelWashMs,
					Transports:      job.Metrics.Transports,
				}},
			}, nil
		case "failed", "canceled":
			return nil, fmt.Errorf("reference job %s: %s", job.Status, job.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, fmt.Errorf("reference job did not finish within 2m")
}
