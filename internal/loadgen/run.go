package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Outcome is the measured result of one scheduled request (or one batch
// member). Exactly one of the terminal classifications applies:
// completed/failed jobs ran, rejected (429) and shed (503) never
// entered the queue, error covers transport failures and unexpected
// statuses.
type Outcome struct {
	Index     int     `json:"index"`
	Source    string  `json:"source"`
	Status    string  `json:"status"` // done|failed|rejected|shed|error
	Cached    bool    `json:"cached,omitempty"`
	Degraded  bool    `json:"degraded,omitempty"`
	LatencyMs float64 `json:"latency_ms"`
	Err       string  `json:"error,omitempty"`

	// Session-profile extras (items that carry fault reports). Session
	// reports whether a session actually opened; the counters classify
	// its accepted repairs. An abandoned session is still Status "done"
	// — abandonment is the service's explicit verdict that the assay is
	// unrepairable, not a workload failure — with Abandoned set.
	Session         bool `json:"session,omitempty"`
	Repairs         int  `json:"repairs,omitempty"`
	Repaired        int  `json:"repaired,omitempty"`
	DegradedRepairs int  `json:"degraded_repairs,omitempty"`
	Abandoned       bool `json:"abandoned,omitempty"`
}

// Runner executes a schedule against one mfserved base URL.
type Runner struct {
	BaseURL string
	Client  *http.Client
	// ReqLog, when set, receives one JSON line per outcome as it
	// resolves (the request log CI archives).
	ReqLog io.Writer
	// PollInterval is the job-status poll cadence (default 10ms).
	PollInterval time.Duration
	// Timeout bounds one request's submit+poll lifetime (default 60s).
	Timeout time.Duration

	mu      sync.Mutex
	results []Outcome
}

func (r *Runner) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

func (r *Runner) record(o Outcome) {
	r.mu.Lock()
	r.results = append(r.results, o)
	if r.ReqLog != nil {
		if line, err := json.Marshal(o); err == nil {
			r.ReqLog.Write(append(line, '\n'))
		}
	}
	r.mu.Unlock()
}

// Run executes the schedule: open-loop items fire at their offsets
// (bounded by the schedule's concurrency cap so a stalled server sheds
// into the cap instead of unbounded goroutines), closed-loop items are
// consumed in order by Concurrency workers. With s.Batch > 0,
// consecutive items group into POST /v1/synthesize/batch calls and the
// members resolve individually. Returns the outcomes in schedule order.
func (r *Runner) Run(ctx context.Context, s *Schedule) ([]Outcome, error) {
	if r.PollInterval <= 0 {
		r.PollInterval = 10 * time.Millisecond
	}
	if r.Timeout <= 0 {
		r.Timeout = 60 * time.Second
	}
	r.results = r.results[:0]

	// Group items: singles are batches of one.
	bsize := s.Batch
	if bsize <= 0 {
		bsize = 1
	}
	type group struct {
		at    time.Duration
		items []Item
	}
	var groups []group
	for i := 0; i < len(s.Items); i += bsize {
		end := i + bsize
		if end > len(s.Items) {
			end = len(s.Items)
		}
		groups = append(groups, group{at: s.Items[i].At, items: s.Items[i:end]})
	}

	sem := make(chan struct{}, max(1, s.Concurrency))
	var wg sync.WaitGroup
	start := time.Now()
	launch := func(g group) {
		defer wg.Done()
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			for _, it := range g.items {
				r.record(Outcome{Index: it.Index, Source: it.Source, Status: "error", Err: "canceled before submit"})
			}
			return
		}
		defer func() { <-sem }()
		switch {
		case len(g.items) == 1 && len(g.items[0].Faults) > 0:
			r.runSession(ctx, s.Profile, g.items[0])
		case len(g.items) == 1 && s.Batch <= 0:
			r.runSingle(ctx, s.Profile, g.items[0])
		default:
			r.runBatch(ctx, s.Profile, g.items)
		}
	}

	if s.OpenLoop {
		timer := time.NewTimer(0)
		defer timer.Stop()
		for _, g := range groups {
			wait := g.at - time.Since(start)
			if wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
				}
			}
			if ctx.Err() != nil {
				for _, it := range g.items {
					r.record(Outcome{Index: it.Index, Source: it.Source, Status: "error", Err: "canceled before submit"})
				}
				continue
			}
			wg.Add(1)
			go launch(g)
		}
	} else {
		// Closed loop: the semaphore IS the loop — launch everything and
		// let Concurrency slots drain it in order.
		for _, g := range groups {
			if ctx.Err() != nil {
				for _, it := range g.items {
					r.record(Outcome{Index: it.Index, Source: it.Source, Status: "error", Err: "canceled before submit"})
				}
				continue
			}
			wg.Add(1)
			go launch(g)
		}
	}
	wg.Wait()

	r.mu.Lock()
	out := make([]Outcome, len(r.results))
	copy(out, r.results)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, ctx.Err()
}

// submitResp is the subset of the single- and batch-submit responses
// the runner needs.
type submitResp struct {
	JobID  string `json:"job_id"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
}

type batchResp struct {
	Members []struct {
		Index  int    `json:"index"`
		JobID  string `json:"job_id"`
		Status string `json:"status"`
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
	} `json:"members"`
}

func (r *Runner) post(ctx context.Context, path, profile string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(workloadProfileHeader, profile)
	resp, err := r.client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// workloadProfileHeader mirrors server.WorkloadProfileHeader; kept as a
// local constant so loadgen does not import the server (the server's
// tests assert the two stay equal).
const workloadProfileHeader = "X-Workload-Profile"

// classifySubmit maps a submit status code onto an outcome status, or
// returns "" for accepted submissions that still need polling.
func classifySubmit(code int) string {
	switch {
	case code == http.StatusTooManyRequests:
		return "rejected"
	case code == http.StatusServiceUnavailable:
		return "shed"
	case code == http.StatusOK || code == http.StatusAccepted:
		return ""
	default:
		return "error"
	}
}

func (r *Runner) runSingle(ctx context.Context, profile string, it Item) {
	start := time.Now()
	cctx, cancel := context.WithTimeout(ctx, r.Timeout)
	defer cancel()
	code, data, err := r.post(cctx, "/v1/synthesize", profile, it.Body)
	if err != nil {
		r.record(Outcome{Index: it.Index, Source: it.Source, Status: "error", Err: err.Error(),
			LatencyMs: msSince(start)})
		return
	}
	if st := classifySubmit(code); st != "" {
		r.record(Outcome{Index: it.Index, Source: it.Source, Status: st,
			Err: strings.TrimSpace(string(data)), LatencyMs: msSince(start)})
		return
	}
	var sub submitResp
	if err := json.Unmarshal(data, &sub); err != nil {
		r.record(Outcome{Index: it.Index, Source: it.Source, Status: "error", Err: err.Error(),
			LatencyMs: msSince(start)})
		return
	}
	r.record(r.await(cctx, it, sub.JobID, sub.Cached, start))
}

// runSession drives one chip-session lifecycle: open the session with
// the item body, inject each fault report in order, close. The session
// create is synchronous (no job to poll), so the outcome latency spans
// the whole lifecycle including every repair.
func (r *Runner) runSession(ctx context.Context, profile string, it Item) {
	start := time.Now()
	cctx, cancel := context.WithTimeout(ctx, r.Timeout)
	defer cancel()
	o := Outcome{Index: it.Index, Source: it.Source}
	fail := func(err string) {
		o.Status, o.Err, o.LatencyMs = "failed", err, msSince(start)
		r.record(o)
	}
	code, data, err := r.post(cctx, "/v1/sessions", profile, it.Body)
	if err != nil {
		o.Status, o.Err, o.LatencyMs = "error", err.Error(), msSince(start)
		r.record(o)
		return
	}
	switch code {
	case http.StatusCreated:
	case http.StatusTooManyRequests:
		o.Status, o.LatencyMs = "rejected", msSince(start)
		r.record(o)
		return
	case http.StatusServiceUnavailable:
		o.Status, o.LatencyMs = "shed", msSince(start)
		r.record(o)
		return
	case http.StatusInternalServerError:
		fail(strings.TrimSpace(string(data)))
		return
	default:
		o.Status, o.LatencyMs = "error", msSince(start)
		o.Err = fmt.Sprintf("create: HTTP %d: %s", code, strings.TrimSpace(string(data)))
		r.record(o)
		return
	}
	var sess struct {
		ID      string `json:"id"`
		Cached  bool   `json:"cached"`
		Session string `json:"session"`
		Faults  string `json:"faults"`
	}
	if err := json.Unmarshal(data, &sess); err != nil {
		o.Status, o.Err, o.LatencyMs = "error", err.Error(), msSince(start)
		r.record(o)
		return
	}
	o.Session, o.Cached = true, sess.Cached

	for i, fr := range it.Faults {
		code, data, err := r.post(cctx, sess.Faults, profile, fr)
		if err != nil {
			o.Status, o.Err, o.LatencyMs = "error", err.Error(), msSince(start)
			r.record(o)
			return
		}
		if code != http.StatusOK {
			fail(fmt.Sprintf("fault %d: HTTP %d: %s", i, code, strings.TrimSpace(string(data))))
			return
		}
		var rr struct {
			Record struct {
				Outcome string `json:"outcome"`
			} `json:"record"`
		}
		if err := json.Unmarshal(data, &rr); err != nil {
			o.Status, o.Err, o.LatencyMs = "error", err.Error(), msSince(start)
			r.record(o)
			return
		}
		o.Repairs++
		switch rr.Record.Outcome {
		case "repaired":
			o.Repaired++
		case "degraded":
			o.DegradedRepairs++
			o.Degraded = true
		case "abandoned":
			// The service's explicit verdict: the assay is lost. No more
			// reports can land and there is nothing to close.
			o.Abandoned = true
			o.Status, o.LatencyMs = "done", msSince(start)
			r.record(o)
			return
		default:
			fail(fmt.Sprintf("fault %d: unknown repair outcome %q", i, rr.Record.Outcome))
			return
		}
	}
	if code, data, err := r.post(cctx, sess.Session+"/close", profile, nil); err != nil {
		o.Status, o.Err, o.LatencyMs = "error", err.Error(), msSince(start)
		r.record(o)
		return
	} else if code != http.StatusOK {
		fail(fmt.Sprintf("close: HTTP %d: %s", code, strings.TrimSpace(string(data))))
		return
	}
	o.Status, o.LatencyMs = "done", msSince(start)
	r.record(o)
}

func (r *Runner) runBatch(ctx context.Context, profile string, items []Item) {
	start := time.Now()
	cctx, cancel := context.WithTimeout(ctx, r.Timeout)
	defer cancel()
	var body bytes.Buffer
	body.WriteString(`{"requests":[`)
	for i, it := range items {
		if i > 0 {
			body.WriteByte(',')
		}
		body.Write(it.Body)
	}
	body.WriteString(`]}`)
	code, data, err := r.post(cctx, "/v1/synthesize/batch", profile, body.Bytes())
	if err != nil || classifySubmit(code) == "error" {
		msg := strings.TrimSpace(string(data))
		if err != nil {
			msg = err.Error()
		}
		for _, it := range items {
			r.record(Outcome{Index: it.Index, Source: it.Source, Status: "error", Err: msg,
				LatencyMs: msSince(start)})
		}
		return
	}
	if code == http.StatusServiceUnavailable {
		for _, it := range items {
			r.record(Outcome{Index: it.Index, Source: it.Source, Status: "shed",
				LatencyMs: msSince(start)})
		}
		return
	}
	var br batchResp
	if err := json.Unmarshal(data, &br); err != nil || len(br.Members) != len(items) {
		msg := fmt.Sprintf("batch response: %v (members %d, want %d)", err, len(br.Members), len(items))
		for _, it := range items {
			r.record(Outcome{Index: it.Index, Source: it.Source, Status: "error", Err: msg,
				LatencyMs: msSince(start)})
		}
		return
	}
	// Members resolve concurrently; duplicates share a job and poll it
	// independently (cheap — status reads).
	var wg sync.WaitGroup
	for i, m := range br.Members {
		it := items[i]
		switch m.Status {
		case "rejected":
			r.record(Outcome{Index: it.Index, Source: it.Source, Status: "rejected",
				Err: m.Error, LatencyMs: msSince(start)})
			continue
		}
		wg.Add(1)
		go func(it Item, jobID string, cached bool) {
			defer wg.Done()
			r.record(r.await(cctx, it, jobID, cached, start))
		}(it, m.JobID, m.Cached)
	}
	wg.Wait()
}

// await polls a job to a terminal state and classifies it.
func (r *Runner) await(ctx context.Context, it Item, jobID string, cached bool, start time.Time) Outcome {
	o := Outcome{Index: it.Index, Source: it.Source, Cached: cached}
	tick := time.NewTicker(r.PollInterval)
	defer tick.Stop()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/v1/jobs/"+jobID, nil)
		if err != nil {
			o.Status, o.Err, o.LatencyMs = "error", err.Error(), msSince(start)
			return o
		}
		resp, err := r.client().Do(req)
		if err != nil {
			o.Status, o.Err, o.LatencyMs = "error", err.Error(), msSince(start)
			return o
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var job struct {
			Status       string            `json:"status"`
			Cached       bool              `json:"cached"`
			Error        string            `json:"error"`
			Degradations []json.RawMessage `json:"degradations"`
		}
		if err := json.Unmarshal(data, &job); err != nil {
			o.Status, o.Err, o.LatencyMs = "error", err.Error(), msSince(start)
			return o
		}
		switch job.Status {
		case "done":
			o.Status = "done"
			o.Cached = o.Cached || job.Cached
			o.Degraded = len(job.Degradations) > 0
			o.LatencyMs = msSince(start)
			return o
		case "failed", "canceled":
			o.Status, o.Err, o.LatencyMs = "failed", job.Error, msSince(start)
			return o
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			o.Status, o.Err, o.LatencyMs = "error", "timeout awaiting job "+jobID, msSince(start)
			return o
		}
	}
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }
