package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/rng"
)

// Options parameterizes Build. The zero value takes every default from
// the profile; Seed 0 is a valid (and the default) seed.
type Options struct {
	// Seed drives every stochastic choice in the schedule: mix draws,
	// corpus assay structure and the synthesis seeds embedded in request
	// bodies. Same (profile, Options) → byte-identical schedule.
	Seed uint64
	// Duration is the schedule horizon. Open-loop item count is
	// Rate x Duration; closed-loop schedules carry the same count and
	// workers consume them as fast as the server allows.
	Duration time.Duration
	// Rate overrides the profile arrival rate (requests/second).
	Rate float64
	// Concurrency overrides the profile worker count / in-flight cap.
	Concurrency int
	// Imax is the annealing effort embedded in every request body;
	// defaults to 60, the reference-entry effort of the service
	// baselines (small enough for load tests, large enough to exercise
	// the full pipeline).
	Imax int
	// Batch groups consecutive items into POST /v1/synthesize/batch
	// bodies of this size at execution time; 0 submits singles. Batch
	// grouping does not change the schedule bytes, only how Run ships
	// them.
	Batch int
}

// Item is one scheduled request. At is the arrival offset from the run
// start (0 in closed loop, where order alone matters). Body is the
// complete JSON request body; Source tags where it came from for the
// request log.
type Item struct {
	Index  int             `json:"index"`
	At     time.Duration   `json:"at_ns"`
	Source string          `json:"source"`
	Body   json.RawMessage `json:"body"`
	// Faults, when non-empty, makes the item a chip-session lifecycle:
	// Body opens the session and each entry is one fault-report body
	// injected in order before the session is closed. omitempty keeps
	// the schedule bytes of the non-session profiles unchanged.
	Faults []json.RawMessage `json:"faults,omitempty"`
}

// Schedule is a fully materialized run plan. Marshaling it yields the
// byte sequence the determinism tests pin.
type Schedule struct {
	Profile     string        `json:"profile"`
	Seed        uint64        `json:"seed"`
	OpenLoop    bool          `json:"open_loop"`
	Rate        float64       `json:"rate_per_s"`
	Concurrency int           `json:"concurrency"`
	Duration    time.Duration `json:"duration_ns"`
	Batch       int           `json:"batch,omitempty"`
	Items       []Item        `json:"items"`
}

// source is one entry of the request universe: a body template minus
// the synthesis seed, which seedVariants multiplies out.
type source struct {
	tag  string
	body func(imax int, seed uint64) ([]byte, error)
}

// corpusOpsMin/Max bound the operation count of generated corpus
// assays: big enough to need scheduling decisions, small enough that a
// cold synthesis stays well under a second at imax 60.
const (
	corpusOpsMin = 8
	corpusOpsMax = 18
)

// benchBody renders the canonical benchmark request body. The field
// order is fixed by the literal, not by json.Marshal of a map, so the
// bytes are stable.
func benchBody(name string, imax int, seed uint64) ([]byte, error) {
	return []byte(fmt.Sprintf(`{"bench":%q,"options":{"imax":%d,"seed":%d}}`, name, imax, seed)), nil
}

// universe builds the profile's request universe in rank order (rank 0
// is the hottest key under a Zipf mix): the seven Table I benchmarks
// first, then CorpusSize random assays generated from forks of src.
func universe(p Profile, src *rng.Source) []source {
	var u []source
	for _, bm := range benchdata.All() {
		name := bm.Name
		u = append(u, source{
			tag: "bench:" + name,
			body: func(imax int, seed uint64) ([]byte, error) {
				return benchBody(name, imax, seed)
			},
		})
	}
	for i := 0; i < p.CorpusSize; i++ {
		// Each corpus assay gets its own fork keyed off the schedule
		// RNG, so corpus structure depends only on (profile, seed, i).
		gseed := src.Uint64()
		ops := corpusOpsMin + src.Intn(corpusOpsMax-corpusOpsMin+1)
		tag := fmt.Sprintf("corpus:%d", i)
		// Reuse a synthetic benchmark's published allocation: corpus
		// assays draw from the same operation-type mix, so the
		// allocation is guaranteed to cover the generated graph.
		alloc := benchdata.Synthetic(1).Alloc
		name := fmt.Sprintf("corpus-%d-%d", i, gseed)
		u = append(u, source{
			tag: tag,
			body: func(imax int, seed uint64) ([]byte, error) {
				g := benchdata.GenerateSynthetic(name, ops, alloc, gseed)
				var buf bytes.Buffer
				if err := assay.Encode(&buf, g); err != nil {
					return nil, err
				}
				return []byte(fmt.Sprintf(`{"assay":%s,"options":{"imax":%d,"seed":%d}}`,
					buf.String(), imax, seed)), nil
			},
		})
	}
	return u
}

// faultPlaneBound and faultAtSpanMs bound the seeded fault reports so
// they are valid against every Table I benchmark at the default load
// effort: the smallest routing plane is PCR's 26x26 and the shortest
// makespan 24.2s, so dead cells drawn in [0,26)² at instants within the
// first 12s (two reports x 6s span) are in-plane and mid-assay on every
// pinned solution the session profile can open.
const (
	faultPlaneBound = 26
	faultAtSpanMs   = 6000
)

// faultReports renders n seeded fault-report bodies with monotone
// observation instants — the session API rejects time travel — each
// killing one routing-plane cell. Like benchBody, the bytes come from a
// literal, so the schedule stays byte-stable.
func faultReports(src *rng.Source, n int) []json.RawMessage {
	out := make([]json.RawMessage, 0, n)
	at := 0
	for i := 0; i < n; i++ {
		at += src.Intn(faultAtSpanMs + 1)
		x, y := src.Intn(faultPlaneBound), src.Intn(faultPlaneBound)
		out = append(out, json.RawMessage(
			fmt.Sprintf(`{"at":%d,"cells":[{"x":%d,"y":%d}]}`, at, x, y)))
	}
	return out
}

// pick draws one universe index. Uniform when zipf is 0, else weighted
// 1/(rank+1)^zipf via the precomputed cumulative weights.
func pick(src *rng.Source, cum []float64) int {
	x := src.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

// zipfCum precomputes cumulative Zipf weights for n ranks. math.Pow is
// pure Go with pinned semantics, so the weights — and through them the
// schedule bytes — are platform-stable.
func zipfCum(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w := 1.0
		if s > 0 {
			w = 1 / math.Pow(float64(i+1), s)
		}
		total += w
		cum[i] = total
	}
	return cum
}

// Build materializes a deterministic schedule for profile p.
func Build(p Profile, opts Options) (*Schedule, error) {
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("duration must be positive, got %v", opts.Duration)
	}
	rate := p.Rate
	if opts.Rate > 0 {
		rate = opts.Rate
	}
	if rate <= 0 {
		return nil, fmt.Errorf("rate must be positive, got %v", rate)
	}
	conc := p.Concurrency
	if opts.Concurrency > 0 {
		conc = opts.Concurrency
	}
	imax := opts.Imax
	if imax <= 0 {
		imax = 60
	}
	variants := p.SeedVariants
	if variants < 1 {
		variants = 1
	}
	if p.SessionFaults > 0 && opts.Batch > 0 {
		return nil, fmt.Errorf("profile %s opens sessions; the batch endpoint cannot carry them", p.Name)
	}

	src := rng.New(opts.Seed ^ 0x6d666c6f61640a01) // domain-separate from synthesis seeds
	u := universe(p, src)
	cum := zipfCum(len(u), p.Zipf)

	n := int(rate * opts.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	s := &Schedule{
		Profile:     p.Name,
		Seed:        opts.Seed,
		OpenLoop:    p.OpenLoop,
		Rate:        rate,
		Concurrency: conc,
		Duration:    opts.Duration,
		Batch:       opts.Batch,
		Items:       make([]Item, 0, n),
	}
	for i := 0; i < n; i++ {
		var at time.Duration
		if p.OpenLoop {
			// Nominal arrival under constant rate...
			at = time.Duration(float64(i) / rate * float64(time.Second))
			if p.BurstPeriod > 0 && p.BurstDuty > 0 && p.BurstDuty < 1 {
				// ...compressed into the duty window of its period: the
				// same per-period request count arrives in BurstDuty of
				// the time, at 1/BurstDuty times the rate, followed by
				// silence. Offered load per period is unchanged.
				period := p.BurstPeriod
				k := at / period
				at = k*period + time.Duration(float64(at%period)*p.BurstDuty)
			}
		}
		idx := pick(src, cum)
		synthSeed := uint64(1 + src.Intn(variants))
		body, err := u[idx].body(imax, synthSeed)
		if err != nil {
			return nil, fmt.Errorf("item %d (%s): %v", i, u[idx].tag, err)
		}
		it := Item{
			Index:  i,
			At:     at,
			Source: fmt.Sprintf("%s#s%d", u[idx].tag, synthSeed),
			Body:   body,
		}
		if p.SessionFaults > 0 {
			it.Faults = faultReports(src, p.SessionFaults)
		}
		s.Items = append(s.Items, it)
	}
	return s, nil
}

// Bytes renders the schedule in a canonical form — this is the byte
// sequence "deterministic schedule" promises are made about.
func (s *Schedule) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
