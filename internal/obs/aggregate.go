package obs

import "sync/atomic"

// Aggregate is a production sink: it folds the event stream into
// monotonic totals suitable for a Prometheus exposition. One Aggregate
// is shared by every synthesis the service runs; all fields are
// atomics, so concurrent jobs feed it without coordination.
type Aggregate struct {
	// Algorithm 1 binding decisions.
	BindCaseI     atomic.Int64 // in-place consumptions (transport + wash avoided)
	BindCaseII    atomic.Int64 // earliest-start bindings
	WashAvoidedMs atomic.Int64 // component wash time avoided by Case I

	// Algorithm 2 simulated annealing.
	SASteps    atomic.Int64 // temperature steps
	SAMoves    atomic.Int64 // sampled moves (accepted + rejected + infeasible)
	SAAccepted atomic.Int64 // accepted moves

	// Time-slot-aware A* routing.
	RouteTasks    atomic.Int64 // routed transportation tasks
	AStarExpanded atomic.Int64 // A* nodes expanded
	SlotConflicts atomic.Int64 // cell probes rejected by slot overlap
	HeapPeak      atomic.Int64 // max open-heap size seen by any task

	// Recovery ladders.
	Dilations     atomic.Int64 // placement dilations inside route.Solve
	PlaceRetries  atomic.Int64 // placement retries after routing failure
	QuenchSpans   atomic.Int64 // quench descents run
	ScheduleStats atomic.Int64 // schedules completed

	// Parallel tempering (opt-in multicore placement mode).
	TemperReplicas atomic.Int64 // widest replica ladder run so far
	TemperRounds   atomic.Int64 // barrier-synced tempering rounds
	TemperSwaps    atomic.Int64 // accepted replica configuration swaps

	// Concurrent wave routing (opt-in multicore routing mode).
	RouteWaves     atomic.Int64 // multi-task waves routed in parallel
	RouteWaveWidth atomic.Int64 // widest wave (parallelism width) seen
	RouteSpecOK    atomic.Int64 // speculative paths accepted at commit
	RouteSpecMiss  atomic.Int64 // speculations invalidated and re-routed
}

// Event folds one event into the totals.
func (a *Aggregate) Event(e Event) {
	switch e.Name {
	case "bind.case1":
		a.BindCaseI.Add(1)
		if v, ok := e.Arg("wash_avoided_ms"); ok {
			a.WashAvoidedMs.Add(int64(v))
		}
	case "bind.case2":
		a.BindCaseII.Add(1)
	case "sa.step":
		a.SASteps.Add(1)
		acc, _ := e.Arg("accepted")
		rej, _ := e.Arg("rejected")
		inf, _ := e.Arg("infeasible")
		a.SAMoves.Add(int64(acc + rej + inf))
		a.SAAccepted.Add(int64(acc))
	case "route.task":
		a.RouteTasks.Add(1)
		if v, ok := e.Arg("expanded"); ok {
			a.AStarExpanded.Add(int64(v))
		}
		if v, ok := e.Arg("slot_conflicts"); ok {
			a.SlotConflicts.Add(int64(v))
		}
		if v, ok := e.Arg("heap_peak"); ok {
			maxInt64(&a.HeapPeak, int64(v))
		}
	case "route.dilate":
		a.Dilations.Add(1)
	case "temper.replicas":
		if v, ok := e.Arg("replicas"); ok {
			maxInt64(&a.TemperReplicas, int64(v))
		}
	case "temper.round":
		a.TemperRounds.Add(1)
		if v, ok := e.Arg("swaps"); ok {
			a.TemperSwaps.Add(int64(v))
		}
	case "route.wave":
		a.RouteWaves.Add(1)
		if v, ok := e.Arg("width"); ok {
			maxInt64(&a.RouteWaveWidth, int64(v))
		}
		if v, ok := e.Arg("spec"); ok {
			a.RouteSpecOK.Add(int64(v))
		}
		if v, ok := e.Arg("rerouted"); ok {
			a.RouteSpecMiss.Add(int64(v))
		}
	case "synthesize.retry":
		a.PlaceRetries.Add(1)
	case "schedule.stats":
		a.ScheduleStats.Add(1)
	case "quench":
		if e.Phase == PhaseBegin {
			a.QuenchSpans.Add(1)
		}
	}
}

// maxInt64 lifts v into the atomic maximum.
func maxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
