package obs

// The nil-sink benchmarks pin the disabled-tracing cost of the hot-path
// hooks: the exact calls the SA move loop and the A* expansion loop
// make once per temperature step and once per routed task. All must
// report 0 allocs/op (TestNilTracerZeroAllocs enforces it; these
// benchmarks quantify the ns/op).

import (
	"context"
	"testing"
)

func BenchmarkNilTracerAnnealStep(b *testing.B) {
	tr := From(context.Background())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.AnnealStep(AnnealStep{Seed: 1, Temp: 10000, Cur: 1, Best: 1, Accepted: i})
	}
}

func BenchmarkNilTracerRouteTask(b *testing.B) {
	tr := From(context.Background())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.RouteTask(RouteTask{Task: i, Expanded: 100, HeapPeak: 10, PathLen: 5})
	}
}

func BenchmarkNilTracerBind(b *testing.B) {
	tr := From(context.Background())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Bind(Bind{Op: i, Comp: 1, CaseI: i&1 == 0, WashAvoidedMs: 2000})
	}
}

func BenchmarkNilTracerSpan(b *testing.B) {
	tr := From(context.Background())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin(CatPlace, "anneal")
		tr.End(CatPlace, "anneal")
	}
}

func BenchmarkCollectAnnealStep(b *testing.B) {
	tr := New(&Collect{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.AnnealStep(AnnealStep{Seed: 1, Temp: 10000, Cur: 1, Best: 1, Accepted: i})
	}
}
