package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// ChromeSink streams events as Chrome trace-event JSON (the "JSON
// object format": {"traceEvents":[...]}), loadable in ui.perfetto.dev
// or chrome://tracing. Events are written as they arrive; Close
// finishes the JSON document. Safe for concurrent use.
//
// The sink supports multiple process tracks (pid lanes): single-process
// synthesis traces render everything as pid 1, while the merged
// cross-node request traces of ChromeTrace give each cluster node its
// own pid so a 3-node request reads as three labeled processes on one
// time axis.
type ChromeSink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	n      int
	named  map[[2]int64]bool // {pid, tid} tracks already labeled
	closed bool
	err    error
}

// NewChromeSink starts a trace document on w with the default
// single-process track metadata. The caller must Close the sink (before
// closing any underlying file) to produce valid JSON.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := newChromeSink(w)
	s.writeRaw(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"mfsyn synthesis"}}`)
	s.writeRaw(`{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"pipeline"}}`)
	return s
}

// newChromeSink starts a bare trace document: no default track names,
// for exporters (ChromeTrace) that label their own process lanes.
func newChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w), named: map[[2]int64]bool{}}
	_, s.err = s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return s
}

// ProcessName labels a process track — one per cluster node in merged
// request traces.
func (s *ChromeSink) ProcessName(pid int, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	s.writeRaw(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
		pid, strconv.Quote(name)))
}

// writeRaw appends one pre-rendered JSON event object. Caller holds no
// lock during construction; the comma bookkeeping is serialized here.
func (s *ChromeSink) writeRaw(obj string) {
	if s.err != nil {
		return
	}
	if s.n > 0 {
		s.w.WriteByte(',')
	}
	s.w.WriteByte('\n')
	_, s.err = s.w.WriteString(obj)
	s.n++
}

// Event renders and appends one event. An Event with PID 0 renders on
// pid 1, the historical single-process lane.
func (s *ChromeSink) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	pid := e.PID
	if pid == 0 {
		pid = 1
	}
	us := float64(e.TS.Nanoseconds()) / 1e3
	if e.Phase == PhaseMeta {
		s.named[[2]int64{int64(pid), e.TID}] = true
		s.writeRaw(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":%s,"args":{"name":%s}}`,
			pid, e.TID, strconv.Quote(e.Name), strconv.Quote(e.Str)))
		return
	}
	if e.TID != 0 && !s.named[[2]int64{int64(pid), e.TID}] {
		// Unnamed non-zero track: give it a stable default so the viewer
		// never shows a bare numeric lane.
		s.named[[2]int64{int64(pid), e.TID}] = true
		s.writeRaw(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"track %d"}}`,
			pid, e.TID, e.TID))
	}
	var b []byte
	b = append(b, fmt.Sprintf(`{"ph":"%c","pid":%d,"tid":%d,"ts":%.3f,"cat":%s,"name":%s`,
		e.Phase, pid, e.TID, us, strconv.Quote(e.Cat), strconv.Quote(e.Name))...)
	if e.Phase == PhaseComplete {
		b = append(b, fmt.Sprintf(`,"dur":%.3f`, float64(e.Dur.Nanoseconds())/1e3)...)
	}
	if e.Phase == PhaseInstant {
		b = append(b, `,"s":"t"`...)
	}
	if n := e.NArgs(); n > 0 {
		b = append(b, `,"args":{`...)
		for i := 0; i < n; i++ {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, strconv.Quote(e.Args[i].Key)...)
			b = append(b, ':')
			b = strconv.AppendFloat(b, e.Args[i].Val, 'g', -1, 64)
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	s.writeRaw(string(b))
}

// Close terminates the JSON document and flushes. Further events are
// dropped. It returns the first write error encountered, if any.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err == nil {
		_, s.err = s.w.WriteString("\n]}\n")
	}
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// ChromeTrace renders a merged cross-node span set as one Chrome
// trace-event document: one process (pid) lane per node, named after
// the node, with every span as a complete ("X") event carrying its
// trace ID, span ID, parent and annotation as args. Span timestamps are
// epoch microseconds; the document rebases them on the earliest span so
// viewers open at t=0.
func ChromeTrace(w io.Writer, spans []Span) error {
	s := newChromeSink(w)
	var nodes []string
	seen := map[string]int{}
	for _, sp := range spans {
		if _, ok := seen[sp.Node]; !ok {
			seen[sp.Node] = 0
			nodes = append(nodes, sp.Node)
		}
	}
	sort.Strings(nodes)
	for i, n := range nodes {
		seen[n] = i + 1
		s.ProcessName(i+1, n)
	}
	ordered := append([]Span(nil), spans...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].StartUS < ordered[b].StartUS })
	var base int64
	if len(ordered) > 0 {
		base = ordered[0].StartUS
	}
	s.mu.Lock()
	for _, sp := range ordered {
		var b []byte
		b = append(b, fmt.Sprintf(`{"ph":"X","pid":%d,"tid":0,"ts":%d,"dur":%d,"cat":"request","name":%s`,
			seen[sp.Node], sp.StartUS-base, sp.DurUS, strconv.Quote(sp.Name))...)
		b = append(b, `,"args":{"trace_id":`...)
		b = append(b, strconv.Quote(sp.TraceID)...)
		b = append(b, `,"id":`...)
		b = append(b, strconv.Quote(sp.ID)...)
		if sp.Parent != "" {
			b = append(b, `,"parent":`...)
			b = append(b, strconv.Quote(sp.Parent)...)
		}
		if sp.Attr != "" {
			b = append(b, `,"attr":`...)
			b = append(b, strconv.Quote(sp.Attr)...)
		}
		b = append(b, `}}`...)
		s.writeRaw(string(b))
	}
	s.mu.Unlock()
	return s.Close()
}

// Collect is an in-memory sink for tests. Safe for concurrent use.
type Collect struct {
	mu     sync.Mutex
	events []Event
}

// Event appends e to the capture.
func (c *Collect) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Snapshot returns a copy of the captured events.
func (c *Collect) Snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Count returns how many captured events match the category and name
// (empty strings match everything).
func (c *Collect) Count(cat, name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := range c.events {
		if (cat == "" || c.events[i].Cat == cat) && (name == "" || c.events[i].Name == name) {
			n++
		}
	}
	return n
}
