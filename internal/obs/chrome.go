package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// ChromeSink streams events as Chrome trace-event JSON (the "JSON
// object format": {"traceEvents":[...]}), loadable in ui.perfetto.dev
// or chrome://tracing. Events are written as they arrive; Close
// finishes the JSON document. Safe for concurrent use.
type ChromeSink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	n      int
	named  map[int64]bool
	closed bool
	err    error
}

// NewChromeSink starts a trace document on w. The caller must Close the
// sink (before closing any underlying file) to produce valid JSON.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriter(w), named: map[int64]bool{}}
	_, s.err = s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	s.writeRaw(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"mfsyn synthesis"}}`)
	s.writeRaw(`{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"pipeline"}}`)
	return s
}

// writeRaw appends one pre-rendered JSON event object. Caller holds no
// lock during construction; the comma bookkeeping is serialized here.
func (s *ChromeSink) writeRaw(obj string) {
	if s.err != nil {
		return
	}
	if s.n > 0 {
		s.w.WriteByte(',')
	}
	s.w.WriteByte('\n')
	_, s.err = s.w.WriteString(obj)
	s.n++
}

// Event renders and appends one event.
func (s *ChromeSink) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	us := float64(e.TS.Nanoseconds()) / 1e3
	if e.Phase == PhaseMeta {
		s.named[e.TID] = true
		s.writeRaw(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":%s,"args":{"name":%s}}`,
			e.TID, strconv.Quote(e.Name), strconv.Quote(e.Str)))
		return
	}
	if e.TID != 0 && !s.named[e.TID] {
		// Unnamed non-zero track: give it a stable default so the viewer
		// never shows a bare numeric lane.
		s.named[e.TID] = true
		s.writeRaw(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"track %d"}}`,
			e.TID, e.TID))
	}
	var b []byte
	b = append(b, fmt.Sprintf(`{"ph":"%c","pid":1,"tid":%d,"ts":%.3f,"cat":%s,"name":%s`,
		e.Phase, e.TID, us, strconv.Quote(e.Cat), strconv.Quote(e.Name))...)
	if e.Phase == PhaseComplete {
		b = append(b, fmt.Sprintf(`,"dur":%.3f`, float64(e.Dur.Nanoseconds())/1e3)...)
	}
	if e.Phase == PhaseInstant {
		b = append(b, `,"s":"t"`...)
	}
	if n := e.NArgs(); n > 0 {
		b = append(b, `,"args":{`...)
		for i := 0; i < n; i++ {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, strconv.Quote(e.Args[i].Key)...)
			b = append(b, ':')
			b = strconv.AppendFloat(b, e.Args[i].Val, 'g', -1, 64)
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	s.writeRaw(string(b))
}

// Close terminates the JSON document and flushes. Further events are
// dropped. It returns the first write error encountered, if any.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err == nil {
		_, s.err = s.w.WriteString("\n]}\n")
	}
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// Collect is an in-memory sink for tests. Safe for concurrent use.
type Collect struct {
	mu     sync.Mutex
	events []Event
}

// Event appends e to the capture.
func (c *Collect) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Snapshot returns a copy of the captured events.
func (c *Collect) Snapshot() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Count returns how many captured events match the category and name
// (empty strings match everything).
func (c *Collect) Count(cat, name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := range c.events {
		if (cat == "" || c.events[i].Cat == cat) && (name == "" || c.events[i].Name == name) {
			n++
		}
	}
	return n
}
