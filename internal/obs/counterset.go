package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// counterset.go: a small labeled-counter registry for metric families
// whose label set is only known at runtime — the cluster layer's
// per-peer forward/hit/miss/probe counts, where peers join and leave
// with membership changes. The Aggregate's fixed atomic fields cover
// everything with a static name; CounterSet covers the rest without
// dragging in a metrics dependency.

// CounterSet is a concurrency-safe map from label to monotonic counter.
// The zero value is ready to use. Counters are never removed: a peer
// that left the membership keeps its totals, which is exactly what
// Prometheus counter semantics require (a counter that resets or
// vanishes breaks rate()).
type CounterSet struct {
	mu sync.Mutex
	m  map[string]*atomic.Int64
}

// Counter returns the counter for label, creating it at zero on first
// use. The returned *atomic.Int64 is stable for the set's lifetime, so
// hot paths can look it up once and Add without further locking.
func (s *CounterSet) Counter(label string) *atomic.Int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*atomic.Int64)
	}
	c, ok := s.m[label]
	if !ok {
		c = new(atomic.Int64)
		s.m[label] = c
	}
	return c
}

// Add increments label's counter by delta, creating it on first use.
func (s *CounterSet) Add(label string, delta int64) {
	s.Counter(label).Add(delta)
}

// Value returns label's current total (zero for an unknown label,
// without creating it).
func (s *CounterSet) Value(label string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.m[label]; ok {
		return c.Load()
	}
	return 0
}

// LabeledCount is one (label, total) pair of a snapshot.
type LabeledCount struct {
	Label string
	Value int64
}

// Snapshot returns every counter sorted by label, so expositions and
// test assertions are deterministic.
func (s *CounterSet) Snapshot() []LabeledCount {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LabeledCount, 0, len(s.m))
	for label, c := range s.m {
		out = append(out, LabeledCount{Label: label, Value: c.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
