package obs

import (
	"sort"
	"sync"
	"time"
)

// flight.go: the request flight recorder — a fixed-size ring of the
// most recent completed request records, cheap enough to feed from
// every terminal transition (one mutex-guarded value copy, no
// allocation beyond what the record itself carries). The server exposes
// it at /debug/requests and dumps it to the journal directory on
// SIGQUIT, so a misbehaving deployment carries its own recent history
// to the postmortem.

// RequestRecord is one completed request as the flight recorder keeps
// it: identity, outcome, the route the cluster took to answer it, and
// the latency breakdown.
type RequestRecord struct {
	ID      string    `json:"request_id"`
	TraceID string    `json:"trace_id,omitempty"`
	Time    time.Time `json:"finished"`
	DurMs   float64   `json:"dur_ms"`
	// Outcome is the terminal state: done, failed, canceled, rejected
	// (429 backpressure) or shed (503 breaker).
	Outcome string `json:"outcome"`
	// Route is how the request was answered: cache-hit, peer-hit,
	// local, forwarded or fallback ("" when it never got that far).
	Route  string `json:"route,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// Latency breakdown (zero where a stage didn't run).
	QueueMs    float64 `json:"queue_ms,omitempty"`
	ScheduleMs float64 `json:"schedule_ms,omitempty"`
	PlaceMs    float64 `json:"place_ms,omitempty"`
	RouteMs    float64 `json:"route_ms,omitempty"`
	// Degradations lists the ladder rungs the synthesis took, as
	// "stage/event" labels. Injected faults that degraded or failed the
	// request surface here and in Error.
	Degradations []string `json:"degradations,omitempty"`
	Error        string   `json:"error,omitempty"`
}

// FlightRecorder is the fixed-size ring. The nil recorder drops
// everything, so a server with the recorder disabled pays nothing.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []RequestRecord
	next  int
	n     int   // live records (== len(ring) once wrapped)
	total int64 // monotonic records-ever count
}

// NewFlightRecorder sizes the ring (size <= 0 selects 256).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = 256
	}
	return &FlightRecorder{ring: make([]RequestRecord, size)}
}

// Record stores one completed request, evicting the oldest once the
// ring is full.
func (f *FlightRecorder) Record(r RequestRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = r
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	f.total++
	f.mu.Unlock()
}

// Snapshot returns up to n records, newest first (n <= 0: everything
// retained).
func (f *FlightRecorder) Snapshot(n int) []RequestRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 || n > f.n {
		n = f.n
	}
	out := make([]RequestRecord, n)
	for i := 0; i < n; i++ {
		out[i] = f.ring[((f.next-1-i)%len(f.ring)+len(f.ring))%len(f.ring)]
	}
	return out
}

// Slowest returns the n retained records with the largest durations,
// slowest first.
func (f *FlightRecorder) Slowest(n int) []RequestRecord {
	all := f.Snapshot(0)
	sort.SliceStable(all, func(a, b int) bool { return all[a].DurMs > all[b].DurMs })
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}

// Total returns how many records were ever recorded (monotonic; ring
// eviction never lowers it).
func (f *FlightRecorder) Total() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}
