package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 1; i <= 6; i++ {
		f.Record(RequestRecord{ID: fmt.Sprintf("r%d", i), DurMs: float64(i)})
	}
	if f.Total() != 6 {
		t.Fatalf("total = %d, want 6", f.Total())
	}
	snap := f.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("retained %d, want ring size 4", len(snap))
	}
	// Newest first: r6 r5 r4 r3.
	for i, want := range []string{"r6", "r5", "r4", "r3"} {
		if snap[i].ID != want {
			t.Fatalf("snapshot[%d] = %s, want %s (%+v)", i, snap[i].ID, want, snap)
		}
	}
	if got := f.Snapshot(2); len(got) != 2 || got[0].ID != "r6" || got[1].ID != "r5" {
		t.Fatalf("bounded snapshot wrong: %+v", got)
	}
	slow := f.Slowest(2)
	if len(slow) != 2 || slow[0].ID != "r6" || slow[1].ID != "r5" {
		t.Fatalf("slowest wrong: %+v", slow)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(RequestRecord{ID: "x"})
	if f.Snapshot(0) != nil || f.Slowest(3) != nil || f.Total() != 0 {
		t.Fatal("nil recorder retained state")
	}
}

// TestFlightRecorderRace hammers record, snapshot and slowest-N from
// many goroutines while the ring evicts; the -race run of this package
// is the assertion, plus the retained window staying consistent.
func TestFlightRecorderRace(t *testing.T) {
	f := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(RequestRecord{
					ID: fmt.Sprintf("g%d-%d", g, i), Time: time.Now(),
					DurMs: float64(i), Outcome: "done", Route: "local",
				})
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, r := range f.Snapshot(0) {
					if r.ID == "" {
						t.Error("snapshot saw an empty record")
						return
					}
				}
				_ = f.Slowest(5)
				_ = f.Total()
			}
		}()
	}
	wg.Wait()
	if f.Total() != 4*500 {
		t.Fatalf("total = %d, want %d", f.Total(), 4*500)
	}
	if got := len(f.Snapshot(0)); got != 32 {
		t.Fatalf("retained %d, want 32", got)
	}
}
