// Package obs is the observability layer of the synthesis stack: a
// hierarchical tracer with typed events threaded through the pipeline
// stages (schedule, place, route) via context.Context, and pluggable
// sinks that turn the event stream into Chrome trace-event JSON
// (ChromeSink), in-memory captures for tests (Collect) or aggregated
// production counters (Aggregate).
//
// # Determinism contract
//
// Instrumentation hooks sit strictly outside every RNG and floating-
// point path of the solvers: a hook may read algorithm state but never
// mutates it, never consumes randomness and never participates in a
// float computation the algorithm later branches on. A synthesis run
// with any tracer attached is therefore byte-identical to one without
// (the pinned fingerprints in determinism_test.go enforce this with
// tracing on and off).
//
// # Zero overhead when disabled
//
// The nil *Tracer is the disabled tracer: every method is nil-safe and
// returns immediately, and the typed hot-path events (AnnealStep,
// RouteTask, Bind) are plain value structs, so a call on the nil tracer
// performs zero heap allocations — see BenchmarkNilTracer* and
// TestNilTracerZeroAllocs. Hot loops additionally keep their counters
// in plain integers and emit one event per natural step boundary (per
// SA temperature step, per routed task), never per move or per expanded
// node.
package obs

import (
	"context"
	"time"
)

// Phase is the event kind, matching the Chrome trace-event phases.
type Phase byte

// The phases a Tracer emits.
const (
	PhaseBegin    Phase = 'B' // span begin
	PhaseEnd      Phase = 'E' // span end
	PhaseComplete Phase = 'X' // complete span with duration
	PhaseInstant  Phase = 'i' // point event
	PhaseCounter  Phase = 'C' // counter sample
	PhaseMeta     Phase = 'M' // metadata (track names)
)

// Event categories: one per pipeline stage plus the driver.
const (
	CatPipeline = "pipeline"
	CatSchedule = "schedule"
	CatPlace    = "place"
	CatRoute    = "route"
)

// MaxArgs bounds the key/value payload of one event. A fixed-size array
// keeps Event a value type: no allocation on construction or delivery.
const MaxArgs = 8

// Arg is one numeric key/value payload entry. Unused entries have an
// empty Key.
type Arg struct {
	Key string
	Val float64
}

// Event is the wire format between the Tracer and its Sink. It is a
// value type on purpose: delivering one performs no allocation.
type Event struct {
	Phase Phase
	Cat   string
	Name  string
	// TS is the event time relative to the tracer's start.
	TS time.Duration
	// Dur is the span length for PhaseComplete events.
	Dur time.Duration
	// TID is the logical track: 0 for the pipeline driver, the anneal
	// seed for SA tracks (so portfolio restarts get separate lanes).
	TID int64
	// PID is the process track for cross-node merged traces; 0 (the
	// default, and every Tracer-emitted event) renders as process 1.
	PID int
	// Str carries the one string payload (track names for PhaseMeta).
	Str  string
	Args [MaxArgs]Arg
}

// NArgs returns the number of used argument slots.
func (e *Event) NArgs() int {
	for i := range e.Args {
		if e.Args[i].Key == "" {
			return i
		}
	}
	return MaxArgs
}

// Arg returns the named argument value, if present.
func (e *Event) Arg(key string) (float64, bool) {
	for i := range e.Args {
		if e.Args[i].Key == key {
			return e.Args[i].Val, true
		}
		if e.Args[i].Key == "" {
			break
		}
	}
	return 0, false
}

// Sink receives the event stream. Implementations must be safe for
// concurrent use: portfolio annealing and the service worker pool emit
// from multiple goroutines.
type Sink interface {
	Event(Event)
}

// Tracer emits typed pipeline events to a sink. The nil Tracer is the
// disabled tracer: every method on it is a no-op, so call sites never
// branch on availability.
type Tracer struct {
	sink Sink
	t0   time.Time
}

// New returns a tracer over sink, or nil (the disabled tracer) when
// sink is nil.
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, t0: time.Now()}
}

// Enabled reports whether events will reach a sink. Use it to guard
// work that only matters when tracing (wall-clock reads, label
// formatting) — never to guard algorithm state.
func (t *Tracer) Enabled() bool { return t != nil }

type ctxKey struct{}

// Into returns a context carrying the tracer. A nil tracer returns ctx
// unchanged.
func Into(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// From extracts the tracer from ctx, or nil (the disabled tracer) when
// absent. Call it once per function, not per loop iteration.
func From(ctx context.Context) *Tracer {
	t, _ := ctx.Value(ctxKey{}).(*Tracer)
	return t
}

func (t *Tracer) emit(e Event) {
	e.TS = time.Since(t.t0)
	t.sink.Event(e)
}

// Begin opens a span on the driver track (TID 0).
func (t *Tracer) Begin(cat, name string) {
	if t == nil {
		return
	}
	t.emit(Event{Phase: PhaseBegin, Cat: cat, Name: name})
}

// End closes the most recent span of the same name on the driver track.
func (t *Tracer) End(cat, name string) {
	if t == nil {
		return
	}
	t.emit(Event{Phase: PhaseEnd, Cat: cat, Name: name})
}

// BeginTID and EndTID open and close a span on an explicit track.
func (t *Tracer) BeginTID(cat, name string, tid int64) {
	if t == nil {
		return
	}
	t.emit(Event{Phase: PhaseBegin, Cat: cat, Name: name, TID: tid})
}

// EndTID closes a span opened with BeginTID.
func (t *Tracer) EndTID(cat, name string, tid int64) {
	if t == nil {
		return
	}
	t.emit(Event{Phase: PhaseEnd, Cat: cat, Name: name, TID: tid})
}

// Instant records a point event with up to MaxArgs payload entries.
// Cold paths only (retry ladders, dilations); hot paths use the typed
// events below.
func (t *Tracer) Instant(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	e := Event{Phase: PhaseInstant, Cat: cat, Name: name}
	copy(e.Args[:], args)
	t.emit(e)
}

// NameTrack assigns a display name to a track (Chrome thread_name
// metadata). Call only under Enabled(): the name is usually formatted.
func (t *Tracer) NameTrack(tid int64, name string) {
	if t == nil {
		return
	}
	t.emit(Event{Phase: PhaseMeta, Name: "thread_name", TID: tid, Str: name})
}

// AnnealStep is the telemetry of one simulated-annealing temperature
// step: the temperature, the incumbent and best-so-far Eq. 3 energies,
// and the move outcomes of the Imax batch.
type AnnealStep struct {
	Seed       uint64
	Temp       float64
	Cur        float64
	Best       float64
	Accepted   int // moves accepted (downhill or Metropolis)
	Rejected   int // legal moves rejected and undone
	Infeasible int // sampled moves that were illegal (no energy eval)
}

// AnnealStep emits one SA temperature-step sample on the seed's track.
func (t *Tracer) AnnealStep(s AnnealStep) {
	if t == nil {
		return
	}
	t.emit(Event{
		Phase: PhaseCounter, Cat: CatPlace, Name: "sa.step", TID: int64(s.Seed),
		Args: [MaxArgs]Arg{
			{Key: "temp", Val: s.Temp},
			{Key: "energy", Val: s.Cur},
			{Key: "best", Val: s.Best},
			{Key: "accepted", Val: float64(s.Accepted)},
			{Key: "rejected", Val: float64(s.Rejected)},
			{Key: "infeasible", Val: float64(s.Infeasible)},
		},
	})
}

// RouteTask is the telemetry of one routed transportation task: A*
// effort (nodes expanded, open-heap peak), the time-slot conflicts that
// pruned cells, and the committed path length.
type RouteTask struct {
	Task          int
	From, To      int
	Expanded      int // A* nodes expanded (popped non-stale)
	HeapPeak      int // peak open-heap size
	SlotConflicts int // cell probes rejected by time-slot overlap
	PathLen       int // committed path length in grid edges
	Weighted      bool
	Dur           time.Duration
}

// RouteTask emits one per-task routing span (a Chrome complete event).
func (t *Tracer) RouteTask(s RouteTask) {
	if t == nil {
		return
	}
	w := 0.0
	if s.Weighted {
		w = 1
	}
	t.emit(Event{
		Phase: PhaseComplete, Cat: CatRoute, Name: "route.task", Dur: s.Dur,
		Args: [MaxArgs]Arg{
			{Key: "task", Val: float64(s.Task)},
			{Key: "from", Val: float64(s.From)},
			{Key: "to", Val: float64(s.To)},
			{Key: "expanded", Val: float64(s.Expanded)},
			{Key: "heap_peak", Val: float64(s.HeapPeak)},
			{Key: "slot_conflicts", Val: float64(s.SlotConflicts)},
			{Key: "path_len", Val: float64(s.PathLen)},
			{Key: "weighted", Val: w},
		},
	})
}

// Bind is the telemetry of one binding decision of Algorithm 1. CaseI
// records an in-place consumption (lines 6-8): the input's transport
// and the resident fluid's wash were both avoided.
type Bind struct {
	Op    int
	Comp  int
	CaseI bool
	// WashAvoidedMs is the wash time skipped by a Case-I binding.
	WashAvoidedMs int64
	// TransportAvoidedMs is the channel hop skipped (t_c).
	TransportAvoidedMs int64
}

// Bind emits one binding-decision instant.
func (t *Tracer) Bind(d Bind) {
	if t == nil {
		return
	}
	name := "bind.case2"
	if d.CaseI {
		name = "bind.case1"
	}
	t.emit(Event{
		Phase: PhaseInstant, Cat: CatSchedule, Name: name,
		Args: [MaxArgs]Arg{
			{Key: "op", Val: float64(d.Op)},
			{Key: "comp", Val: float64(d.Comp)},
			{Key: "wash_avoided_ms", Val: float64(d.WashAvoidedMs)},
			{Key: "transport_avoided_ms", Val: float64(d.TransportAvoidedMs)},
		},
	})
}

// ScheduleStats is the end-of-stage summary of Algorithm 1.
type ScheduleStats struct {
	Ops           int
	CaseI         int
	CaseII        int
	WashAvoidedMs int64
	Transports    int
	Caches        int
	MakespanMs    int64
}

// ScheduleStats emits the scheduling summary counters.
func (t *Tracer) ScheduleStats(s ScheduleStats) {
	if t == nil {
		return
	}
	t.emit(Event{
		Phase: PhaseCounter, Cat: CatSchedule, Name: "schedule.stats",
		Args: [MaxArgs]Arg{
			{Key: "ops", Val: float64(s.Ops)},
			{Key: "case1", Val: float64(s.CaseI)},
			{Key: "case2", Val: float64(s.CaseII)},
			{Key: "wash_avoided_ms", Val: float64(s.WashAvoidedMs)},
			{Key: "transports", Val: float64(s.Transports)},
			{Key: "caches", Val: float64(s.Caches)},
			{Key: "makespan_ms", Val: float64(s.MakespanMs)},
		},
	})
}
