package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every method must be a no-op on the nil tracer.
	tr.Begin(CatPipeline, "x")
	tr.End(CatPipeline, "x")
	tr.BeginTID(CatPlace, "x", 3)
	tr.EndTID(CatPlace, "x", 3)
	tr.Instant(CatRoute, "x", Arg{Key: "k", Val: 1})
	tr.NameTrack(1, "t")
	tr.AnnealStep(AnnealStep{})
	tr.RouteTask(RouteTask{})
	tr.Bind(Bind{})
	tr.ScheduleStats(ScheduleStats{})
	if New(nil) != nil {
		t.Fatal("New(nil) should return the disabled tracer")
	}
}

// TestNilTracerZeroAllocs pins the zero-overhead contract: the typed
// hot-path events cost zero heap allocations when tracing is disabled.
func TestNilTracerZeroAllocs(t *testing.T) {
	ctx := context.Background()
	tr := From(ctx) // nil: no tracer installed
	if tr != nil {
		t.Fatal("bare context should carry no tracer")
	}
	cases := map[string]func(){
		"AnnealStep": func() { tr.AnnealStep(AnnealStep{Temp: 1, Cur: 2, Best: 3, Accepted: 4}) },
		"RouteTask":  func() { tr.RouteTask(RouteTask{Task: 1, Expanded: 100, HeapPeak: 12}) },
		"Bind":       func() { tr.Bind(Bind{Op: 1, Comp: 2, CaseI: true, WashAvoidedMs: 3}) },
		"Span":       func() { tr.Begin(CatPlace, "anneal"); tr.End(CatPlace, "anneal") },
		"From":       func() { _ = From(ctx) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s on nil tracer: %.1f allocs/op, want 0", name, allocs)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	var c Collect
	tr := New(&c)
	ctx := Into(context.Background(), tr)
	if got := From(ctx); got != tr {
		t.Fatal("From did not return the installed tracer")
	}
	From(ctx).Instant(CatPipeline, "ping")
	if c.Count(CatPipeline, "ping") != 1 {
		t.Fatalf("events = %+v, want one ping", c.Snapshot())
	}
	// Into with nil leaves ctx untouched.
	if Into(ctx, nil) != ctx {
		t.Fatal("Into(ctx, nil) should return ctx unchanged")
	}
}

func TestEventArgs(t *testing.T) {
	e := Event{Args: [MaxArgs]Arg{{Key: "a", Val: 1}, {Key: "b", Val: 2}}}
	if n := e.NArgs(); n != 2 {
		t.Fatalf("NArgs = %d, want 2", n)
	}
	if v, ok := e.Arg("b"); !ok || v != 2 {
		t.Fatalf("Arg(b) = %v,%v", v, ok)
	}
	if _, ok := e.Arg("zzz"); ok {
		t.Fatal("Arg(zzz) should be absent")
	}
}

// chromeDoc mirrors the trace-event JSON object format.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Cat  string         `json:"cat"`
	Name string         `json:"name"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// num reads a numeric arg from a decoded event.
func (e chromeEvent) num(key string) float64 {
	v, _ := e.Args[key].(float64)
	return v
}

func TestChromeSinkEmitsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	tr := New(sink)
	tr.Begin(CatPipeline, "synthesize")
	tr.NameTrack(7, "anneal seed 7")
	tr.AnnealStep(AnnealStep{Seed: 7, Temp: 10000, Cur: 42.5, Best: 40.25, Accepted: 3, Rejected: 2, Infeasible: 1})
	tr.RouteTask(RouteTask{Task: 1, From: 0, To: 2, Expanded: 55, HeapPeak: 9, PathLen: 12, Weighted: true, Dur: 1500 * time.Microsecond})
	tr.Instant(CatRoute, "route.dilate", Arg{Key: "factor", Val: 1.5})
	tr.End(CatPipeline, "synthesize")
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string][]chromeEvent{}
	for _, e := range doc.TraceEvents {
		byName[e.Name] = append(byName[e.Name], e)
		if e.Ph == "" || e.Pid != 1 {
			t.Errorf("event missing ph/pid: %+v", e)
		}
		if e.Ph != "M" && e.Ts == nil {
			t.Errorf("non-meta event missing ts: %+v", e)
		}
	}
	if len(byName["synthesize"]) != 2 {
		t.Fatalf("want B+E for synthesize span, got %+v", byName["synthesize"])
	}
	step := byName["sa.step"]
	if len(step) != 1 || step[0].Ph != "C" || step[0].Tid != 7 || step[0].num("energy") != 42.5 {
		t.Fatalf("sa.step mis-rendered: %+v", step)
	}
	task := byName["route.task"]
	if len(task) != 1 || task[0].Ph != "X" || task[0].Dur == nil || *task[0].Dur != 1500 {
		t.Fatalf("route.task mis-rendered: %+v", task)
	}
	if inst := byName["route.dilate"]; len(inst) != 1 || inst[0].S != "t" || inst[0].num("factor") != 1.5 {
		t.Fatalf("instant mis-rendered: %+v", byName["route.dilate"])
	}
	// The explicit track name must have been recorded before first use.
	found := false
	for _, e := range byName["thread_name"] {
		if e.Tid == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("thread_name metadata for tid 7 missing")
	}
	// Events dropped after Close must not corrupt the document.
	tr.Begin(CatPipeline, "late")
	if !json.Valid(buf.Bytes()) {
		t.Fatal("post-Close event corrupted the document")
	}
}

func TestChromeSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	tr := New(sink)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.AnnealStep(AnnealStep{Seed: uint64(g + 1), Temp: float64(i)})
			}
		}(g)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("concurrent trace invalid: %v", err)
	}
	steps := 0
	for _, e := range doc.TraceEvents {
		if e.Name == "sa.step" {
			steps++
		}
	}
	if steps != 8*50 {
		t.Fatalf("lost events: %d sa.step, want %d", steps, 8*50)
	}
}

func TestAggregateFoldsEvents(t *testing.T) {
	var a Aggregate
	tr := New(&a)
	tr.Bind(Bind{Op: 1, Comp: 0, CaseI: true, WashAvoidedMs: 1500})
	tr.Bind(Bind{Op: 2, Comp: 1, CaseI: true, WashAvoidedMs: 500})
	tr.Bind(Bind{Op: 3, Comp: 1})
	tr.AnnealStep(AnnealStep{Accepted: 10, Rejected: 5, Infeasible: 2})
	tr.AnnealStep(AnnealStep{Accepted: 1, Rejected: 9})
	tr.RouteTask(RouteTask{Expanded: 100, HeapPeak: 40, SlotConflicts: 7})
	tr.RouteTask(RouteTask{Expanded: 50, HeapPeak: 25, SlotConflicts: 3})
	tr.Instant(CatRoute, "route.dilate", Arg{Key: "factor", Val: 1.5})
	tr.Instant(CatPipeline, "synthesize.retry", Arg{Key: "attempt", Val: 1})
	tr.ScheduleStats(ScheduleStats{Ops: 10})
	tr.Begin(CatPlace, "quench")
	tr.End(CatPlace, "quench")

	check := func(name string, got, want int64) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	check("BindCaseI", a.BindCaseI.Load(), 2)
	check("BindCaseII", a.BindCaseII.Load(), 1)
	check("WashAvoidedMs", a.WashAvoidedMs.Load(), 2000)
	check("SASteps", a.SASteps.Load(), 2)
	check("SAMoves", a.SAMoves.Load(), 27)
	check("SAAccepted", a.SAAccepted.Load(), 11)
	check("RouteTasks", a.RouteTasks.Load(), 2)
	check("AStarExpanded", a.AStarExpanded.Load(), 150)
	check("SlotConflicts", a.SlotConflicts.Load(), 10)
	check("HeapPeak", a.HeapPeak.Load(), 40)
	check("Dilations", a.Dilations.Load(), 1)
	check("PlaceRetries", a.PlaceRetries.Load(), 1)
	check("ScheduleStats", a.ScheduleStats.Load(), 1)
	check("QuenchSpans", a.QuenchSpans.Load(), 1)
}
