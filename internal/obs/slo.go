package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// slo.go: configurable latency objectives. An objective "p99=250ms"
// asserts that 99% of requests finish within 250 ms; the service counts
// every terminal request as good (within target) or bad (over target,
// or never completed: failed, rejected, shed) per objective, and
// exposes the totals plus the derived attainment and burn rate as
// Prometheus families. Burn rate is the classic SRE quantity: the bad
// fraction divided by the objective's error budget (1 - quantile), so
// 1.0 means the budget burns exactly as fast as it accrues and anything
// sustained above it eventually violates the SLO.

// SLOObjective is one latency objective and its running counters.
type SLOObjective struct {
	Name     string        // "p99"
	Quantile float64       // 0.99
	Target   time.Duration // 250ms
	good     atomic.Int64
	bad      atomic.Int64
}

// SLOSet is the configured objectives. The nil set disables the SLO
// layer: every method no-ops, so call sites never branch.
type SLOSet struct {
	objs []*SLOObjective
}

// SLOStat is one objective's point-in-time report.
type SLOStat struct {
	Name       string  `json:"objective"`
	Quantile   float64 `json:"quantile"`
	TargetMs   float64 `json:"target_ms"`
	Good       int64   `json:"good"`
	Bad        int64   `json:"bad"`
	Attainment float64 `json:"attainment"` // good/(good+bad); 1.0 with no traffic
	BurnRate   float64 `json:"burn_rate"`  // (bad/total)/(1-quantile)
}

// ParseSLO parses a "-slo p99=250ms,p95=100ms" spec. Each objective is
// pNN[.N]=duration with 0 < NN < 100. An empty spec returns nil (the
// disabled set).
func ParseSLO(spec string) (*SLOSet, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	s := &SLOSet{}
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("slo: objective %q is not name=duration", part)
		}
		if len(name) < 2 || name[0] != 'p' {
			return nil, fmt.Errorf("slo: objective name %q must be a percentile like p99", name)
		}
		pct, err := strconv.ParseFloat(name[1:], 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return nil, fmt.Errorf("slo: objective name %q must be a percentile like p99", name)
		}
		target, err := time.ParseDuration(val)
		if err != nil || target <= 0 {
			return nil, fmt.Errorf("slo: objective %q needs a positive duration, got %q", name, val)
		}
		if seen[name] {
			return nil, fmt.Errorf("slo: objective %q given twice", name)
		}
		seen[name] = true
		s.objs = append(s.objs, &SLOObjective{Name: name, Quantile: pct / 100, Target: target})
	}
	sort.Slice(s.objs, func(a, b int) bool { return s.objs[a].Quantile < s.objs[b].Quantile })
	return s, nil
}

// Observe counts one completed request's latency against every
// objective.
func (s *SLOSet) Observe(d time.Duration) {
	if s == nil {
		return
	}
	for _, o := range s.objs {
		if d <= o.Target {
			o.good.Add(1)
		} else {
			o.bad.Add(1)
		}
	}
}

// Fail counts a request that never produced a latency — failed,
// rejected or shed — as bad on every objective.
func (s *SLOSet) Fail() {
	if s == nil {
		return
	}
	for _, o := range s.objs {
		o.bad.Add(1)
	}
}

// Stats reports every objective, ordered by quantile.
func (s *SLOSet) Stats() []SLOStat {
	if s == nil {
		return nil
	}
	out := make([]SLOStat, 0, len(s.objs))
	for _, o := range s.objs {
		good, bad := o.good.Load(), o.bad.Load()
		st := SLOStat{
			Name: o.Name, Quantile: o.Quantile,
			TargetMs: float64(o.Target.Microseconds()) / 1000,
			Good:     good, Bad: bad, Attainment: 1,
		}
		if total := good + bad; total > 0 {
			st.Attainment = float64(good) / float64(total)
			st.BurnRate = (float64(bad) / float64(total)) / (1 - o.Quantile)
		}
		out = append(out, st)
	}
	return out
}
