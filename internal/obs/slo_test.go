package obs

import (
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO("p99=250ms, p50=25ms,p99.9=1s")
	if err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if len(stats) != 3 {
		t.Fatalf("got %d objectives, want 3", len(stats))
	}
	// Sorted by quantile.
	if stats[0].Name != "p50" || stats[1].Name != "p99" || stats[2].Name != "p99.9" {
		t.Fatalf("order wrong: %+v", stats)
	}
	if q := stats[2].Quantile; q < 0.999-1e-9 || q > 0.999+1e-9 || stats[2].TargetMs != 1000 {
		t.Fatalf("p99.9 parsed wrong: %+v", stats[2])
	}
	if s, err := ParseSLO(""); s != nil || err != nil {
		t.Fatalf("empty spec: %v %v", s, err)
	}
	for _, bad := range []string{"p99", "99=1s", "p0=1s", "p100=1s", "px=1s", "p99=-1s", "p99=zzz", "p99=1s,p99=2s"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

func TestSLOCounting(t *testing.T) {
	s, err := ParseSLO("p90=100ms")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		s.Observe(10 * time.Millisecond)
	}
	s.Observe(500 * time.Millisecond) // over target
	s.Fail()                          // shed request: bad everywhere
	st := s.Stats()[0]
	if st.Good != 9 || st.Bad != 2 {
		t.Fatalf("good/bad = %d/%d, want 9/2", st.Good, st.Bad)
	}
	wantAtt := 9.0 / 11.0
	if diff := st.Attainment - wantAtt; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("attainment = %v, want %v", st.Attainment, wantAtt)
	}
	// burn = (2/11) / 0.1
	wantBurn := (2.0 / 11.0) / 0.1
	if diff := st.BurnRate - wantBurn; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("burn rate = %v, want %v", st.BurnRate, wantBurn)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLOSet
	s.Observe(time.Second)
	s.Fail()
	if s.Stats() != nil {
		t.Fatal("nil set reported stats")
	}
}

func TestSLONoTraffic(t *testing.T) {
	s, err := ParseSLO("p99=250ms")
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()[0]
	if st.Attainment != 1 || st.BurnRate != 0 {
		t.Fatalf("idle objective should report attainment 1, burn 0: %+v", st)
	}
}
