package obs

import (
	"context"
	"sync"
	"time"
)

// trace.go: cross-process request tracing for the clustered service.
//
// The Tracer/Sink machinery above observes one synthesis inside one
// process. A served request is bigger than that: it may wait in a
// queue, probe the local cache, read through peer caches, be forwarded
// to its ring owner and synthesized there, then ride back. SpanRecorder
// captures that request-level timeline as node-attributed spans that
// serialize over the forwarding protocol, so the node that accepted the
// request can merge every participant's spans into one timeline.
//
// Spans use epoch-microsecond timestamps rather than a process-local
// t0: two nodes' spans must land on one time axis. The merge therefore
// inherits the cluster's wall-clock skew — fine for the millisecond
// spans of a synthesis service, see DESIGN.md §14.
//
// Span recording sits strictly at the serving layer (handlers, queue,
// forwarding); it never reaches into the synthesis pipeline, so the
// determinism contract at the top of this package is untouched: a
// recorded synthesis is byte-identical to an unrecorded one.

// Span is one node-attributed interval of a request's life. The ID
// scheme is hierarchical strings ("<node-entropy>-<req>.<n>"); IDs are
// unique within a trace because every node derives its prefix from
// process-local entropy.
type Span struct {
	TraceID string `json:"trace_id"`
	ID      string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Node    string `json:"node"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"` // epoch microseconds
	DurUS   int64  `json:"dur_us"`
	// Attr is one optional free-form annotation (peer URL, hit/miss,
	// route taken, degradation rung).
	Attr string `json:"attr,omitempty"`
}

// TraceContext is the trace identity a request carries across nodes:
// which trace it belongs to and which remote span is the parent of
// whatever the receiving node records.
type TraceContext struct {
	TraceID string
	Parent  string
}

// SpanRecorder accumulates one request's spans on one node. The zero ID
// (prefix + ".0") is reserved for the request's root span, so children
// can parent onto the root before it is closed. Safe for concurrent
// use; the nil recorder drops everything, so call sites never branch.
type SpanRecorder struct {
	mu     sync.Mutex
	trace  string
	parent string // inbound parent span ID (the root span's parent)
	node   string
	prefix string
	t0     time.Time
	seq    int
	closed bool
	spans  []Span
}

// NewSpanRecorder starts a recorder for one request. traceID and
// parentSpan come from the inbound trace headers (parentSpan empty for
// a client-originated request); node names this node in every span;
// prefix must be unique per request across the cluster (node entropy +
// request sequence).
func NewSpanRecorder(traceID, parentSpan, node, prefix string) *SpanRecorder {
	return &SpanRecorder{
		trace: traceID, parent: parentSpan, node: node, prefix: prefix,
		t0: time.Now(),
	}
}

// TraceID returns the trace this recorder belongs to ("" on nil).
func (r *SpanRecorder) TraceID() string {
	if r == nil {
		return ""
	}
	return r.trace
}

// Root returns the pre-assigned ID of the request's root span, valid
// before CloseRoot records it ("" on nil).
func (r *SpanRecorder) Root() string {
	if r == nil {
		return ""
	}
	return r.prefix + ".0"
}

// NewID reserves a span ID without recording anything, for spans whose
// ID must be known (and sent to a peer as a parent) before they end.
func (r *SpanRecorder) NewID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	r.seq++
	id := r.prefix + "." + itoa(r.seq)
	r.mu.Unlock()
	return id
}

// Add records one finished span and returns its ID. An empty parent
// parents the span onto the request's root span.
func (r *SpanRecorder) Add(name, parent string, start time.Time, d time.Duration, attr string) string {
	if r == nil {
		return ""
	}
	id := r.NewID()
	r.AddID(id, name, parent, start, d, attr)
	return id
}

// AddID records one finished span under a previously reserved ID.
func (r *SpanRecorder) AddID(id, name, parent string, start time.Time, d time.Duration, attr string) {
	if r == nil {
		return
	}
	if parent == "" {
		parent = r.Root()
	}
	r.mu.Lock()
	if !r.closed {
		r.spans = append(r.spans, Span{
			TraceID: r.trace, ID: id, Parent: parent, Node: r.node, Name: name,
			StartUS: start.UnixMicro(), DurUS: d.Microseconds(), Attr: attr,
		})
	}
	r.mu.Unlock()
}

// CloseRoot records the request's root span — from the recorder's
// creation to now, parented on the inbound remote span if any — and
// seals the recorder: later Add/Import calls are dropped, so a snapshot
// taken after CloseRoot is final.
func (r *SpanRecorder) CloseRoot(attr string) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	if !r.closed {
		r.spans = append(r.spans, Span{
			TraceID: r.trace, ID: r.Root(), Parent: r.parent, Node: r.node,
			Name: "request", StartUS: r.t0.UnixMicro(),
			DurUS: now.Sub(r.t0).Microseconds(), Attr: attr,
		})
		r.closed = true
	}
	r.mu.Unlock()
}

// Import merges spans recorded by another node (returned over the
// forwarding protocol) into this request's timeline, verbatim.
func (r *SpanRecorder) Import(spans []Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	if !r.closed {
		r.spans = append(r.spans, spans...)
	}
	r.mu.Unlock()
}

// Spans returns a copy of everything recorded so far.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Len returns how many spans are recorded.
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// itoa is a garbage-light strconv.Itoa for the small non-negative span
// sequence numbers.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

type spanCtxKey struct{}

// WithSpans returns a context carrying the recorder. A nil recorder
// returns ctx unchanged.
func WithSpans(ctx context.Context, r *SpanRecorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, r)
}

// SpansFrom extracts the recorder from ctx, or nil (the recorder that
// drops everything) when absent.
func SpansFrom(ctx context.Context) *SpanRecorder {
	r, _ := ctx.Value(spanCtxKey{}).(*SpanRecorder)
	return r
}
