package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanRecorderBasics(t *testing.T) {
	r := NewSpanRecorder("t-1", "remote.7", "http://a", "aa-1")
	if r.TraceID() != "t-1" {
		t.Fatalf("TraceID = %q", r.TraceID())
	}
	if r.Root() != "aa-1.0" {
		t.Fatalf("Root = %q", r.Root())
	}
	start := time.Now()
	id1 := r.Add("cache.probe", "", start, time.Millisecond, "miss")
	id2 := r.Add("synthesize", id1, start, 2*time.Millisecond, "")
	if id1 == id2 || id1 == "" {
		t.Fatalf("span IDs not unique: %q %q", id1, id2)
	}
	reserved := r.NewID()
	r.AddID(reserved, "forward", "", start, time.Millisecond, "http://b")
	r.Import([]Span{{TraceID: "t-1", ID: "bb-1.0", Parent: reserved, Node: "http://b", Name: "request"}})
	r.CloseRoot("local")

	spans := r.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	byID := map[string]Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	if got := byID[id1].Parent; got != r.Root() {
		t.Fatalf("empty parent should bind to root, got %q", got)
	}
	if got := byID[id2].Parent; got != id1 {
		t.Fatalf("explicit parent lost: %q", got)
	}
	root := byID[r.Root()]
	if root.Name != "request" || root.Parent != "remote.7" || root.Attr != "local" {
		t.Fatalf("root span wrong: %+v", root)
	}
	if byID["bb-1.0"].Parent != reserved {
		t.Fatalf("imported span mangled: %+v", byID["bb-1.0"])
	}

	// Sealed: nothing lands after CloseRoot.
	r.Add("late", "", start, time.Millisecond, "")
	r.Import([]Span{{ID: "x"}})
	r.CloseRoot("again")
	if got := r.Len(); got != 5 {
		t.Fatalf("sealed recorder grew to %d spans", got)
	}
}

func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	if r.Add("x", "", time.Now(), 0, "") != "" || r.NewID() != "" {
		t.Fatal("nil recorder returned a span ID")
	}
	r.AddID("id", "x", "", time.Now(), 0, "")
	r.Import([]Span{{ID: "x"}})
	r.CloseRoot("")
	if r.Spans() != nil || r.Len() != 0 || r.TraceID() != "" || r.Root() != "" {
		t.Fatal("nil recorder retained state")
	}
	ctx := WithSpans(context.Background(), nil)
	if SpansFrom(ctx) != nil {
		t.Fatal("nil recorder attached to context")
	}
	r2 := NewSpanRecorder("t", "", "n", "p")
	if SpansFrom(WithSpans(context.Background(), r2)) != r2 {
		t.Fatal("recorder lost through context")
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder("t-1", "", "node", "p-1")
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				r.Add("s", "", time.Now(), time.Microsecond, "")
				_ = r.Spans()
				_ = r.Len()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	ids := map[string]bool{}
	for _, sp := range r.Spans() {
		if ids[sp.ID] {
			t.Fatalf("duplicate span ID %q", sp.ID)
		}
		ids[sp.ID] = true
	}
}

func TestChromeTraceMergedDocument(t *testing.T) {
	base := time.Now().UnixMicro()
	spans := []Span{
		{TraceID: "t", ID: "a.0", Node: "http://a", Name: "request", StartUS: base, DurUS: 5000, Attr: "forwarded"},
		{TraceID: "t", ID: "a.1", Parent: "a.0", Node: "http://a", Name: "forward", StartUS: base + 100, DurUS: 4000},
		{TraceID: "t", ID: "b.0", Parent: "a.1", Node: "http://b", Name: "request", StartUS: base + 500, DurUS: 3000},
	}
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Name string         `json:"name"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, buf.String())
	}
	procs := map[int]string{}
	var xEvents int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procs[e.PID] = e.Args["name"].(string)
			}
		case "X":
			xEvents++
			if e.Ts < 0 {
				t.Fatalf("negative rebased timestamp: %+v", e)
			}
			if e.Args["trace_id"] != "t" {
				t.Fatalf("span lost trace id: %+v", e)
			}
		}
	}
	if len(procs) != 2 {
		t.Fatalf("want 2 process tracks, got %v", procs)
	}
	if xEvents != 3 {
		t.Fatalf("want 3 complete events, got %d", xEvents)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
}
