package place

import (
	"context"
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Anneal runs the simulated-annealing placer of Algorithm 2 (lines 1-8):
// starting from a random placement, it applies transformation operations
// (translate, rotate, swap) for Imax iterations per temperature step,
// accepting uphill moves with probability exp(-Δ/T), and cools T
// geometrically by Alpha until Tmin. It returns the best placement seen.
//
// Accept/reject is evaluated incrementally: each move scores only the
// nets incident to the component(s) it touches (via NetIndex). The full
// Energy sum is recomputed only for accepted moves and for near-tie moves
// (|Δ| < tieEps), which keeps the running total and the best-so-far
// comparison bit-identical to recomputing Energy every move: the
// incident-net delta and the full-sum delta agree mathematically but
// differ by summation-order roundoff (~1e-11 here), and on energy-neutral
// moves that roundoff decides whether the Metropolis draw is consumed at
// all — so ties must fall back to the full sum to preserve the RNG
// stream. TestIncrementalDeltaMatchesFull pins the agreement and
// TestSolutionFingerprints (repo root) pins the resulting trajectories.
func Anneal(comps []chip.Component, nets []Net, pr Params) (*Placement, error) {
	return AnnealContext(context.Background(), comps, nets, pr)
}

// AnnealContext is Anneal with cancellation: ctx is polled once per
// temperature step (and between quench passes), so a cancelled run
// aborts within one Imax move batch — microseconds to low milliseconds
// on the Table I benchmarks. The poll reads no annealer state and
// consumes no randomness, so an uncancelled context reproduces Anneal
// bit for bit.
func AnnealContext(ctx context.Context, comps []chip.Component, nets []Net, pr Params) (*Placement, error) {
	w, h := pr.PlaneW, pr.PlaneH
	if w == 0 || h == 0 {
		w, h = AutoPlane(comps, pr.Spacing)
	}
	if pr.Alpha <= 0 || pr.Alpha >= 1 {
		return nil, fmt.Errorf("place: cooling factor alpha %v outside (0,1)", pr.Alpha)
	}
	if pr.T0 <= pr.Tmin || pr.Tmin <= 0 {
		return nil, fmt.Errorf("place: invalid temperature range T0=%v Tmin=%v", pr.T0, pr.Tmin)
	}
	r := rng.New(pr.Seed)
	p, err := randomPlacement(comps, w, h, pr.Spacing, r)
	if err != nil {
		return nil, err
	}
	ix := BuildNetIndex(len(comps), nets)
	cur := Energy(p, nets)
	best := p.Clone()
	bestE := cur

	// Telemetry: one sample per temperature step, emitted at the step
	// boundary (the same place the cancellation poll sits). The hooks
	// read cur/bestE and count move outcomes in plain integers — they
	// never touch the RNG stream or the float comparisons, so a traced
	// anneal is bit-identical to an untraced one.
	tr := obs.From(ctx)
	tid := int64(pr.Seed)
	if tr.Enabled() {
		tr.NameTrack(tid, fmt.Sprintf("anneal seed %d", pr.Seed))
		tr.BeginTID(obs.CatPlace, "anneal", tid)
	}

	// tieEps separates genuine energy deltas (multiples of half a cell
	// times a connection priority) from summation-order roundoff noise
	// (~1e-11 at these energy magnitudes). Below it the move is treated
	// as a potential tie and scored with the full sum.
	const tieEps = 1e-6
	// The fault check shares the temperature-step poll boundary with the
	// ctx poll: outside the SA RNG path, so an un-armed plan cannot
	// perturb the anneal trajectory.
	flt := fault.From(ctx)
	for t := pr.T0; t > pr.Tmin; t *= pr.Alpha {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("place: anneal aborted at T=%.3g: %w", t, err)
		}
		if err := flt.Err(fault.PlaceStepFail); err != nil {
			return nil, fmt.Errorf("place: anneal aborted at T=%.3g: %w", t, err)
		}
		var accepted, rejected, infeasible int
		for i := 0; i < pr.Imax; i++ {
			undo, delta, ok := transform(p, pr.Spacing, r, ix)
			if !ok {
				infeasible++
				continue
			}
			next, haveNext := 0.0, false
			if delta > -tieEps && delta < tieEps {
				next, haveNext = Energy(p, nets), true
				delta = next - cur
			}
			if delta < 0 || r.Float64() < math.Exp(-delta/t) {
				if !haveNext {
					next = Energy(p, nets)
				}
				cur = next
				if cur < bestE {
					bestE = cur
					best.CopyFrom(p)
				}
				accepted++
			} else {
				undo()
				rejected++
			}
		}
		tr.AnnealStep(obs.AnnealStep{
			Seed: pr.Seed, Temp: t, Cur: cur, Best: bestE,
			Accepted: accepted, Rejected: rejected, Infeasible: infeasible,
		})
	}
	if tr.Enabled() {
		tr.EndTID(obs.CatPlace, "anneal", tid)
		tr.BeginTID(obs.CatPlace, "quench", tid)
	}
	// Final quench: greedy single-component relocation until the weighted
	// energy reaches a local optimum. This is the standard low-temperature
	// tail of SA floorplanners, made explicit and deterministic.
	if err := quenchCtx(ctx, best, nets, ix, pr.Spacing); err != nil {
		return nil, err
	}
	if tr.Enabled() {
		tr.EndTID(obs.CatPlace, "quench", tid)
	}
	if err := best.Legal(pr.Spacing); err != nil {
		return nil, fmt.Errorf("place: annealer produced illegal placement: %w", err)
	}
	return best, nil
}

// quench exhaustively relocates single components (including rotation)
// while any move strictly reduces the Eq. 3 energy. Candidates are scored
// on the nets incident to the moved component only: the rest of the sum
// is unchanged by the move, so the ordering matches scoring full
// energies — except within tieEps of the incumbent, where summation-order
// roundoff on the full sum decides the "strictly less" test. Those
// near-ties fall back to comparing the full sums bit-for-bit, keeping the
// descent trajectory identical to the full-recompute implementation (see
// referenceQuench in the tests).
func quench(p *Placement, nets []Net, ix *NetIndex, spacing int) {
	_ = quenchCtx(context.Background(), p, nets, ix, spacing)
}

// quenchCtx is quench with a cancellation poll between descent passes.
func quenchCtx(ctx context.Context, p *Placement, nets []Net, ix *NetIndex, spacing int) error {
	const tieEps = 1e-6
	for improved := true; improved; {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("place: quench aborted: %w", err)
		}
		improved = false
		for i := range p.Rects {
			old := p.Rects[i]
			bestRect, bestE := old, ix.CompEnergy(p, i)
			for rot := 0; rot < 2; rot++ {
				cand := old
				if rot == 1 {
					cand.W, cand.H = cand.H, cand.W
				}
				for yy := spacing; yy+cand.H <= p.H-spacing; yy++ {
					for xx := spacing; xx+cand.W <= p.W-spacing; xx++ {
						cand.X, cand.Y = xx, yy
						if overlapsAny(p, i, cand, spacing) {
							continue
						}
						e := ix.CompEnergyAt(p, i, cand)
						d := e - bestE
						if d >= tieEps {
							continue // certainly worse
						}
						if d > -tieEps && !fullLess(p, nets, i, cand, bestRect) {
							continue // full-sum tie-break says not better
						}
						bestE = e
						bestRect = cand
					}
				}
			}
			if bestRect != old {
				p.Rects[i] = bestRect
				improved = true
			}
		}
	}
	return nil
}

// fullLess reports whether placing component i at cand gives a strictly
// smaller full Eq. 3 sum than placing it at best, using exactly the bits
// a full-recompute comparison would see. Energy is a pure function of the
// rectangle configuration, so recomputing here reproduces the values the
// full-recompute quench would have cached.
func fullLess(p *Placement, nets []Net, i int, cand, best Rect) bool {
	save := p.Rects[i]
	p.Rects[i] = cand
	ec := Energy(p, nets)
	p.Rects[i] = best
	eb := Energy(p, nets)
	p.Rects[i] = save
	return ec < eb
}

// transform applies one random legal transformation operation to p and
// returns an undo closure together with the Eq. 3 energy delta of the
// move, evaluated over the incident nets only. ok is false when the
// sampled move was illegal and p is unchanged.
func transform(p *Placement, spacing int, r *rng.Source, ix *NetIndex) (undo func(), delta float64, ok bool) {
	n := len(p.Rects)
	switch r.Intn(3) {
	case 0: // translate one component
		i := r.Intn(n)
		old := p.Rects[i]
		cand := old
		cand.X = spacing + r.Intn(max(1, p.W-2*spacing-cand.W+1))
		cand.Y = spacing + r.Intn(max(1, p.H-2*spacing-cand.H+1))
		if !fitsAt(p, i, cand, spacing) {
			return nil, 0, false
		}
		before := ix.CompEnergy(p, i)
		p.Rects[i] = cand
		delta = ix.CompEnergy(p, i) - before
		return func() { p.Rects[i] = old }, delta, true
	case 1: // rotate one component 90°
		i := r.Intn(n)
		old := p.Rects[i]
		cand := Rect{X: old.X, Y: old.Y, W: old.H, H: old.W}
		if !fitsAt(p, i, cand, spacing) {
			return nil, 0, false
		}
		before := ix.CompEnergy(p, i)
		p.Rects[i] = cand
		delta = ix.CompEnergy(p, i) - before
		return func() { p.Rects[i] = old }, delta, true
	default: // swap the positions of two components
		if n < 2 {
			return nil, 0, false
		}
		i := r.Intn(n)
		j := r.Intn(n - 1)
		if j >= i {
			j++
		}
		oi, oj := p.Rects[i], p.Rects[j]
		ci := Rect{X: oj.X, Y: oj.Y, W: oi.W, H: oi.H}
		cj := Rect{X: oi.X, Y: oi.Y, W: oj.W, H: oj.H}
		// Temporarily clear both to test pairwise fits.
		p.Rects[i] = Rect{}
		p.Rects[j] = Rect{}
		okI := fitsAt(p, i, ci, spacing)
		p.Rects[i] = ci
		okJ := okI && fitsAt(p, j, cj, spacing)
		if !okI || !okJ {
			p.Rects[i] = oi
			p.Rects[j] = oj
			return nil, 0, false
		}
		p.Rects[i], p.Rects[j] = oi, oj
		before := ix.PairEnergy(p, i, j)
		p.Rects[i], p.Rects[j] = ci, cj
		delta = ix.PairEnergy(p, i, j) - before
		return func() { p.Rects[i], p.Rects[j] = oi, oj }, delta, true
	}
}

// Construct is the baseline construction-by-correction placer the paper
// compares against: components are first packed greedily in ID order
// (construction), then a bounded number of sequential correction passes
// relocate each component to the position minimising plain unweighted
// wirelength to its neighbours. It is deliberately blind to connection
// priorities (concurrency and wash time).
func Construct(comps []chip.Component, nets []Net, pr Params) (*Placement, error) {
	return ConstructContext(context.Background(), comps, nets, pr)
}

// ConstructContext is Construct with a cancellation poll between
// correction passes; an uncancelled context reproduces Construct exactly.
func ConstructContext(ctx context.Context, comps []chip.Component, nets []Net, pr Params) (*Placement, error) {
	w, h := pr.PlaneW, pr.PlaneH
	if w == 0 || h == 0 {
		w, h = AutoPlane(comps, pr.Spacing)
	}
	p := &Placement{W: w, H: h, Rects: make([]Rect, len(comps))}
	// Construction: row-major packing in ID order.
	x, y, rowH := pr.Spacing, pr.Spacing, 0
	for i, c := range comps {
		fw, fh := c.Kind.W, c.Kind.H
		if x+fw > w-pr.Spacing {
			x = pr.Spacing
			y += rowH + pr.Spacing
			rowH = 0
		}
		if y+fh > h-pr.Spacing {
			return nil, fmt.Errorf("place: plane %dx%d too small for row packing", w, h)
		}
		p.Rects[i] = Rect{X: x, Y: y, W: fw, H: fh}
		x += fw + pr.Spacing
		if fh > rowH {
			rowH = fh
		}
	}
	// Unweighted nets: the baseline sees connectivity, not priorities.
	flat := make([]Net, len(nets))
	for i, n := range nets {
		flat[i] = Net{A: n.A, B: n.B, CP: 1}
	}
	ix := BuildNetIndex(len(comps), flat)
	// Correction: sequential single-component relocation passes, scored
	// incrementally on the moved component's incident nets.
	const passes = 3
	flt := fault.From(ctx)
	for pass := 0; pass < passes; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("place: baseline correction aborted: %w", err)
		}
		if err := flt.Err(fault.PlaceStepFail); err != nil {
			return nil, fmt.Errorf("place: baseline correction aborted: %w", err)
		}
		improved := false
		for i := range p.Rects {
			old := p.Rects[i]
			bestRect, bestE := old, ix.CompEnergy(p, i)
			cand := old
			for yy := pr.Spacing; yy+cand.H <= h-pr.Spacing; yy++ {
				for xx := pr.Spacing; xx+cand.W <= w-pr.Spacing; xx++ {
					cand.X, cand.Y = xx, yy
					if overlapsAny(p, i, cand, pr.Spacing) {
						continue
					}
					if e := ix.CompEnergyAt(p, i, cand); e < bestE {
						bestE = e
						bestRect = cand
					}
				}
			}
			if bestRect != old {
				p.Rects[i] = bestRect
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	if err := p.Legal(pr.Spacing); err != nil {
		return nil, fmt.Errorf("place: baseline produced illegal placement: %w", err)
	}
	return p, nil
}
