package place

import (
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/rng"
)

// randomNets builds a random net list over n components with positive
// priorities, including duplicate pairs (several transports can share a
// net pair before BuildNets merges them, and the index must not care).
func randomNets(n int, count int, r *rng.Source) []Net {
	nets := make([]Net, 0, count)
	for k := 0; k < count; k++ {
		a := chip.CompID(r.Intn(n))
		b := chip.CompID(r.Intn(n - 1))
		if b >= a {
			b++
		}
		nets = append(nets, Net{A: a, B: b, CP: 0.1 + 10*r.Float64()})
	}
	return nets
}

// TestIncrementalDeltaMatchesFull is the tentpole invariant: for 1k
// random accepted moves on random placements, the incremental delta
// returned by transform equals Energy(after) - Energy(before) within
// 1e-9.
func TestIncrementalDeltaMatchesFull(t *testing.T) {
	bms := []string{"IVD", "CPA", "Synthetic2"}
	for _, name := range bms {
		_, comps := scheduled(t, name)
		r := rng.New(42)
		nets := randomNets(len(comps), 3*len(comps), r)
		ix := BuildNetIndex(len(comps), nets)
		w, h := AutoPlane(comps, 2)
		p, err := randomPlacement(comps, w, h, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		for checked < 1000 {
			before := Energy(p, nets)
			undo, delta, ok := transform(p, 2, r, ix)
			if !ok {
				continue
			}
			after := Energy(p, nets)
			if math.Abs(delta-(after-before)) > 1e-9 {
				t.Fatalf("%s move %d: incremental delta %v, full delta %v",
					name, checked, delta, after-before)
			}
			// Exercise both branches: keep half the moves, undo the rest.
			if checked%2 == 1 {
				undo()
			}
			checked++
		}
	}
}

// TestCompEnergyAtMatchesMutation checks that scoring a candidate
// rectangle without mutating the placement agrees with mutating it and
// evaluating the incident nets.
func TestCompEnergyAtMatchesMutation(t *testing.T) {
	_, comps := scheduled(t, "CPA")
	r := rng.New(7)
	nets := randomNets(len(comps), 4*len(comps), r)
	ix := BuildNetIndex(len(comps), nets)
	w, h := AutoPlane(comps, 2)
	p, err := randomPlacement(comps, w, h, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 500; k++ {
		i := r.Intn(len(comps))
		old := p.Rects[i]
		cand := old
		cand.X = r.Intn(max(1, w-cand.W))
		cand.Y = r.Intn(max(1, h-cand.H))
		direct := ix.CompEnergyAt(p, i, cand)
		p.Rects[i] = cand
		mutated := ix.CompEnergy(p, i)
		p.Rects[i] = old
		if math.Abs(direct-mutated) > 1e-12 {
			t.Fatalf("move %d: CompEnergyAt %v != mutate-and-score %v", k, direct, mutated)
		}
	}
}

// TestPairEnergyCountsSharedNetsOnce pins the swap-move invariant: nets
// joining the swapped pair must contribute exactly one term.
func TestPairEnergyCountsSharedNetsOnce(t *testing.T) {
	nets := []Net{
		{A: 0, B: 1, CP: 2},
		{A: 0, B: 2, CP: 1},
		{A: 1, B: 2, CP: 1},
		{A: 0, B: 1, CP: 3}, // duplicate pair, distinct net
	}
	ix := BuildNetIndex(3, nets)
	p := &Placement{W: 20, H: 20, Rects: []Rect{
		{X: 0, Y: 0, W: 2, H: 2},
		{X: 4, Y: 0, W: 2, H: 2},
		{X: 0, Y: 4, W: 2, H: 2},
	}}
	got := ix.PairEnergy(p, 0, 1)
	want := p.Dist(0, 1)*2 + p.Dist(0, 2)*1 + p.Dist(1, 2)*1 + p.Dist(0, 1)*3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("PairEnergy = %v, want %v", got, want)
	}
	// Swapping the argument order must not change the result.
	if rev := ix.PairEnergy(p, 1, 0); math.Abs(rev-got) > 1e-12 {
		t.Fatalf("PairEnergy(1,0) = %v, PairEnergy(0,1) = %v", rev, got)
	}
}

// TestQuenchMatchesReferenceQuench compares the incremental quench
// against a straightforward full-Energy reimplementation of the seed
// algorithm on a mid-size benchmark.
func TestQuenchMatchesReferenceQuench(t *testing.T) {
	_, comps := scheduled(t, "Synthetic1")
	r := rng.New(13)
	nets := randomNets(len(comps), 3*len(comps), r)
	ix := BuildNetIndex(len(comps), nets)
	w, h := AutoPlane(comps, 2)
	p, err := randomPlacement(comps, w, h, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	quench(p, nets, ix, 2)
	referenceQuench(q, nets, 2)
	for i := range p.Rects {
		if p.Rects[i] != q.Rects[i] {
			t.Fatalf("component %d: incremental quench %+v, reference %+v",
				i, p.Rects[i], q.Rects[i])
		}
	}
}

// referenceQuench is the seed implementation of quench: full Energy
// recomputation per candidate. Kept in the tests as the executable
// specification of the incremental version.
func referenceQuench(p *Placement, nets []Net, spacing int) {
	for improved := true; improved; {
		improved = false
		for i := range p.Rects {
			old := p.Rects[i]
			bestRect, bestE := old, Energy(p, nets)
			for rot := 0; rot < 2; rot++ {
				cand := old
				if rot == 1 {
					cand.W, cand.H = cand.H, cand.W
				}
				for yy := spacing; yy+cand.H <= p.H-spacing; yy++ {
					for xx := spacing; xx+cand.W <= p.W-spacing; xx++ {
						cand.X, cand.Y = xx, yy
						if !fitsAt(p, i, cand, spacing) {
							continue
						}
						p.Rects[i] = cand
						if e := Energy(p, nets); e < bestE {
							bestE = e
							bestRect = cand
						}
						p.Rects[i] = old
					}
				}
			}
			if bestRect != old {
				p.Rects[i] = bestRect
				improved = true
			}
		}
	}
}
