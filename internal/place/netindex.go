package place

import "math"

// NetIndex is a per-component adjacency index over a fixed net list. The
// Eq. 3 energy is a sum of independent per-net terms, so moving one
// component only changes the terms of nets incident to it; the index lets
// the placers evaluate exactly that slice of the sum instead of rescanning
// every net. Eq. 3 energies evaluated through the index agree with the
// full Energy to floating-point roundoff (the terms are identical, only
// the summation order differs), which the property tests pin down.
type NetIndex struct {
	nets   []Net
	byComp [][]int32 // net indices incident to each component
}

// BuildNetIndex indexes nets by their two endpoint components. The net
// slice is captured, not copied: it must not be mutated while the index
// is in use.
func BuildNetIndex(nComps int, nets []Net) *NetIndex {
	ix := &NetIndex{nets: nets, byComp: make([][]int32, nComps)}
	for k, n := range nets {
		ix.byComp[n.A] = append(ix.byComp[n.A], int32(k))
		if n.B != n.A {
			ix.byComp[n.B] = append(ix.byComp[n.B], int32(k))
		}
	}
	return ix
}

// CompEnergy returns the Eq. 3 energy restricted to nets incident to
// component i, at its current rectangle.
func (ix *NetIndex) CompEnergy(p *Placement, i int) float64 {
	return ix.CompEnergyAt(p, i, p.Rects[i])
}

// CompEnergyAt returns the Eq. 3 energy restricted to nets incident to
// component i, evaluated as if i occupied rectangle r. It never writes to
// p, so candidate positions can be scored without mutating the placement.
func (ix *NetIndex) CompEnergyAt(p *Placement, i int, r Rect) float64 {
	cx, cy := r.CenterX(), r.CenterY()
	var e float64
	for _, k := range ix.byComp[i] {
		n := &ix.nets[k]
		o := n.A
		if int(o) == i {
			o = n.B
		}
		ro := p.Rects[o]
		e += (math.Abs(cx-ro.CenterX()) + math.Abs(cy-ro.CenterY())) * n.CP
	}
	return e
}

// PairEnergy returns the Eq. 3 energy restricted to nets incident to
// component i or component j, with nets joining the pair counted once —
// the slice of the sum a swap move can change.
func (ix *NetIndex) PairEnergy(p *Placement, i, j int) float64 {
	e := ix.CompEnergy(p, i)
	for _, k := range ix.byComp[j] {
		n := &ix.nets[k]
		if int(n.A) == i || int(n.B) == i {
			continue // joins the pair: already counted via i
		}
		e += p.Dist(n.A, n.B) * n.CP
	}
	return e
}
