// Package place implements the component-placement stage of the paper's
// physical design flow (Section IV-B-1, Algorithm 2 lines 1-8).
//
// The routing plane is a grid of rectangular cells. Components occupy
// axis-aligned rectangles and must keep a spacing margin free around them
// so flow channels can pass between any two neighbours. Placement quality
// is the energy function of Eq. 3,
//
//	Energy(P) = Σ mdis(i,j) · cp(i,j),
//
// where mdis is the Manhattan distance between component centres and cp is
// the connection priority of Eq. 4, combining how concurrent and how
// wash-expensive the transportation tasks of each net are. The proposed
// placer is classic simulated annealing over translate/rotate/swap moves;
// the baseline placer is the construction-by-correction procedure the
// paper compares against.
package place

import (
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// Params configures both placers. The defaults are the published
// experimental settings.
type Params struct {
	// Simulated-annealing schedule: initial temperature T0, termination
	// temperature Tmin, geometric cooling factor Alpha, and Imax moves
	// per temperature step.
	T0    float64
	Tmin  float64
	Alpha float64
	Imax  int
	// Beta and Gamma weight concurrency and wash time in the connection
	// priority of Eq. 4.
	Beta  float64
	Gamma float64
	// Seed drives the deterministic RNG.
	Seed uint64
	// PlaneW/PlaneH fix the grid size; zero means size automatically
	// from the component inventory.
	PlaneW int
	PlaneH int
	// Spacing is the minimum number of free cells kept between any two
	// components (and the plane border) for channel routing.
	Spacing int
}

// DefaultParams returns the parameter values used in Section V of the
// paper — α=0.9, β=0.6, γ=0.4, T0=10000, Imax=150, Tmin=1.0 — with a
// two-cell routing corridor between components so that adjacent
// components do not share boundary ring cells.
func DefaultParams() Params {
	return Params{
		T0:      10000,
		Tmin:    1.0,
		Alpha:   0.9,
		Imax:    150,
		Beta:    0.6,
		Gamma:   0.4,
		Seed:    1,
		Spacing: 2,
	}
}

// Rect is a component footprint instance on the grid (cells).
type Rect struct {
	X, Y int // top-left cell
	W, H int
}

// CenterX returns the x coordinate of the rectangle centre.
func (r Rect) CenterX() float64 { return float64(r.X) + float64(r.W)/2 }

// CenterY returns the y coordinate of the rectangle centre.
func (r Rect) CenterY() float64 { return float64(r.Y) + float64(r.H)/2 }

// expandedOverlaps reports whether a and b, with a margin of m cells
// around a, intersect.
func (r Rect) expandedOverlaps(b Rect, m int) bool {
	return r.X-m < b.X+b.W && b.X < r.X+r.W+m &&
		r.Y-m < b.Y+b.H && b.Y < r.Y+r.H+m
}

// Net is one placement net: the pair of components connected by one or
// more transportation tasks, with its connection priority cp(i,j).
type Net struct {
	A, B chip.CompID
	CP   float64
	// Tasks lists the schedule.Transport IDs realised on this net.
	Tasks []int
}

// Placement assigns a rectangle to every component on a W×H grid.
type Placement struct {
	W, H  int
	Rects []Rect // indexed by chip.CompID
}

// Clone returns an independent copy.
func (p *Placement) Clone() *Placement {
	c := &Placement{W: p.W, H: p.H, Rects: make([]Rect, len(p.Rects))}
	copy(c.Rects, p.Rects)
	return c
}

// CopyFrom overwrites p with src, reusing p's rectangle slice when the
// capacity suffices. The annealers use it to keep a best-so-far snapshot
// without allocating a fresh Placement on every improvement.
func (p *Placement) CopyFrom(src *Placement) {
	p.W, p.H = src.W, src.H
	if cap(p.Rects) < len(src.Rects) {
		p.Rects = make([]Rect, len(src.Rects))
	}
	p.Rects = p.Rects[:len(src.Rects)]
	copy(p.Rects, src.Rects)
}

// Legal verifies bounds and pairwise spacing.
func (p *Placement) Legal(spacing int) error {
	for i, r := range p.Rects {
		if r.W <= 0 || r.H <= 0 {
			return fmt.Errorf("place: component %d has empty footprint", i)
		}
		if r.X < spacing || r.Y < spacing || r.X+r.W > p.W-spacing || r.Y+r.H > p.H-spacing {
			return fmt.Errorf("place: component %d at %+v outside %dx%d plane (spacing %d)",
				i, r, p.W, p.H, spacing)
		}
		for j := i + 1; j < len(p.Rects); j++ {
			if r.expandedOverlaps(p.Rects[j], spacing) {
				return fmt.Errorf("place: components %d and %d closer than spacing %d: %+v %+v",
					i, j, spacing, r, p.Rects[j])
			}
		}
	}
	return nil
}

// Dist returns the Manhattan distance between the centres of components a
// and b, in cells.
func (p *Placement) Dist(a, b chip.CompID) float64 {
	ra, rb := p.Rects[a], p.Rects[b]
	return math.Abs(ra.CenterX()-rb.CenterX()) + math.Abs(ra.CenterY()-rb.CenterY())
}

// Energy evaluates Eq. 3 over the given nets.
func Energy(p *Placement, nets []Net) float64 {
	var e float64
	for _, n := range nets {
		e += p.Dist(n.A, n.B) * n.CP
	}
	return e
}

// BuildNets derives the routing nets N = {n_ij} from a scheduling result
// and computes each net's connection priority cp(i,j) per Eq. 4:
//
//	cp(i,j) = Σ_k (β·nt_k + γ·wt_k)
//
// where nt_k counts the transportation tasks performed concurrently with
// task k (anywhere on the chip) and wt_k is the wash time, in seconds, of
// the residue task k leaves in flow channels. Transports between a
// component and itself never occur (in-place consumption has no net).
func BuildNets(r *schedule.Result, beta, gamma float64) []Net {
	// Occupancy window of each transport, including channel-cache time.
	windows := make([][2]unit.Time, len(r.Transports))
	for i, tr := range r.Transports {
		start := tr.Depart
		if tr.FromChannel {
			start = tr.CacheStart
		}
		windows[i] = [2]unit.Time{start, tr.Arrive}
	}
	concurrent := func(k int) int {
		n := 0
		for i := range windows {
			if i == k {
				continue
			}
			if windows[i][0] < windows[k][1] && windows[k][0] < windows[i][1] {
				n++
			}
		}
		return n
	}
	type key struct{ a, b chip.CompID }
	byPair := make(map[key]*Net)
	var order []key
	for i, tr := range r.Transports {
		a, b := tr.From, tr.To
		if a == b {
			continue
		}
		if b < a {
			a, b = b, a
		}
		k := key{a, b}
		n := byPair[k]
		if n == nil {
			n = &Net{A: a, B: b}
			byPair[k] = n
			order = append(order, k)
		}
		n.CP += beta*float64(concurrent(i)) + gamma*tr.WashTime.Sec()
		n.Tasks = append(n.Tasks, tr.ID)
	}
	nets := make([]Net, 0, len(order))
	for _, k := range order {
		nets = append(nets, *byPair[k])
	}
	return nets
}

// Dilate scales component positions (not footprints) by f ≥ 1, widening
// every routing corridor while preserving the relative layout. The router
// uses it to recover from congestion: a dilated placement has the same
// Eq. 3 optimum structure but more channel capacity.
func Dilate(p *Placement, f float64) *Placement {
	if f <= 1 {
		return p.Clone()
	}
	q := &Placement{
		W:     int(math.Ceil(float64(p.W)*f)) + 1,
		H:     int(math.Ceil(float64(p.H)*f)) + 1,
		Rects: make([]Rect, len(p.Rects)),
	}
	for i, r := range p.Rects {
		q.Rects[i] = Rect{
			X: int(math.Round(float64(r.X) * f)),
			Y: int(math.Round(float64(r.Y) * f)),
			W: r.W,
			H: r.H,
		}
	}
	return q
}

// AutoPlane returns a square plane large enough to place the components
// with the given spacing and still leave routing room: roughly four times
// the packed component area.
func AutoPlane(comps []chip.Component, spacing int) (int, int) {
	area := 0
	maxSide := 0
	for _, c := range comps {
		w, h := c.Kind.W+2*spacing, c.Kind.H+2*spacing
		area += w * h
		if w > maxSide {
			maxSide = w
		}
		if h > maxSide {
			maxSide = h
		}
	}
	side := int(math.Ceil(math.Sqrt(float64(4 * area))))
	if side < maxSide+2*spacing {
		side = maxSide + 2*spacing
	}
	return side, side
}

// randomPlacement places every component at a uniformly random legal
// position (Algorithm 2 line 1). It scans deterministically when rejection
// sampling fails, and errors if the plane cannot hold the components.
func randomPlacement(comps []chip.Component, w, h, spacing int, r *rng.Source) (*Placement, error) {
	p := &Placement{W: w, H: h, Rects: make([]Rect, len(comps))}
	for i, c := range comps {
		placed := false
		fw, fh := c.Kind.W, c.Kind.H
		for try := 0; try < 200 && !placed; try++ {
			cand := Rect{W: fw, H: fh}
			if r.Intn(2) == 1 {
				cand.W, cand.H = cand.H, cand.W
			}
			maxX, maxY := w-spacing-cand.W, h-spacing-cand.H
			if maxX < spacing || maxY < spacing {
				continue
			}
			cand.X = spacing + r.Intn(maxX-spacing+1)
			cand.Y = spacing + r.Intn(maxY-spacing+1)
			if fitsAt(p, i, cand, spacing) {
				p.Rects[i] = cand
				placed = true
			}
		}
		if !placed {
			// Deterministic scan fallback.
			cand := Rect{W: fw, H: fh}
		scan:
			for y := spacing; y+cand.H <= h-spacing; y++ {
				for x := spacing; x+cand.W <= w-spacing; x++ {
					cand.X, cand.Y = x, y
					if fitsAt(p, i, cand, spacing) {
						p.Rects[i] = cand
						placed = true
						break scan
					}
				}
			}
		}
		if !placed {
			return nil, fmt.Errorf("place: plane %dx%d too small for %d components", w, h, len(comps))
		}
	}
	return p, nil
}

// fitsAt reports whether rect cand for component i is legal against the
// plane bounds and all already-placed components other than i.
func fitsAt(p *Placement, i int, cand Rect, spacing int) bool {
	if cand.X < spacing || cand.Y < spacing ||
		cand.X+cand.W > p.W-spacing || cand.Y+cand.H > p.H-spacing {
		return false
	}
	return !overlapsAny(p, i, cand, spacing)
}

func overlapsAny(p *Placement, i int, cand Rect, spacing int) bool {
	for j := range p.Rects {
		if j == i || p.Rects[j].W == 0 {
			continue
		}
		if cand.expandedOverlaps(p.Rects[j], spacing) {
			return true
		}
	}
	return false
}
