package place

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/rng"
	"repro/internal/schedule"
)

func scheduled(t *testing.T, name string) (*schedule.Result, []chip.Component) {
	t.Helper()
	bm, err := benchdata.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	comps := bm.Alloc.Instantiate()
	r, err := schedule.Schedule(bm.Graph, comps, schedule.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return r, comps
}

func TestRectGeometry(t *testing.T) {
	r := Rect{X: 2, Y: 3, W: 4, H: 2}
	if r.CenterX() != 4 || r.CenterY() != 4 {
		t.Errorf("centre = (%v,%v), want (4,4)", r.CenterX(), r.CenterY())
	}
	b := Rect{X: 6, Y: 3, W: 2, H: 2}
	if r.expandedOverlaps(b, 0) {
		t.Error("touching rects must not overlap with margin 0")
	}
	if !r.expandedOverlaps(b, 1) {
		t.Error("touching rects must conflict with margin 1")
	}
}

func TestLegalDetectsViolations(t *testing.T) {
	p := &Placement{W: 10, H: 10, Rects: []Rect{
		{X: 1, Y: 1, W: 3, H: 3},
		{X: 6, Y: 6, W: 3, H: 3},
	}}
	if err := p.Legal(1); err != nil {
		t.Errorf("legal placement rejected: %v", err)
	}
	p.Rects[1] = Rect{X: 4, Y: 1, W: 3, H: 3} // violates spacing 1
	if err := p.Legal(1); err == nil {
		t.Error("spacing violation not detected")
	}
	p.Rects[1] = Rect{X: 8, Y: 8, W: 3, H: 3} // out of bounds
	if err := p.Legal(1); err == nil {
		t.Error("out-of-bounds not detected")
	}
	p.Rects[1] = Rect{X: 6, Y: 6, W: 0, H: 3}
	if err := p.Legal(1); err == nil {
		t.Error("empty footprint not detected")
	}
}

func TestEnergyMatchesHandComputation(t *testing.T) {
	p := &Placement{W: 20, H: 20, Rects: []Rect{
		{X: 1, Y: 1, W: 2, H: 2},  // centre (2,2)
		{X: 11, Y: 1, W: 2, H: 2}, // centre (12,2)
		{X: 1, Y: 11, W: 2, H: 2}, // centre (2,12)
	}}
	nets := []Net{
		{A: 0, B: 1, CP: 2}, // mdis 10 → 20
		{A: 0, B: 2, CP: 1}, // mdis 10 → 10
	}
	if got := Energy(p, nets); got != 30 {
		t.Errorf("Energy = %v, want 30", got)
	}
	if got := p.Dist(1, 2); got != 20 {
		t.Errorf("Dist(1,2) = %v, want 20", got)
	}
}

func TestBuildNetsAggregatesPairs(t *testing.T) {
	r, _ := scheduled(t, "IVD")
	nets := BuildNets(r, 0.6, 0.4)
	if len(nets) == 0 {
		t.Fatal("IVD must have nets (mix->detect transports)")
	}
	seen := map[[2]chip.CompID]bool{}
	total := 0
	for _, n := range nets {
		if n.A >= n.B {
			t.Errorf("net pair not normalised: %v,%v", n.A, n.B)
		}
		k := [2]chip.CompID{n.A, n.B}
		if seen[k] {
			t.Errorf("duplicate net %v", k)
		}
		seen[k] = true
		if n.CP <= 0 {
			t.Errorf("net %v has non-positive priority %v", k, n.CP)
		}
		if len(n.Tasks) == 0 {
			t.Errorf("net %v has no tasks", k)
		}
		total += len(n.Tasks)
	}
	if total != len(r.Transports) {
		t.Errorf("nets cover %d tasks, schedule has %d", total, len(r.Transports))
	}
}

func TestBuildNetsWashAndConcurrencyRaisePriority(t *testing.T) {
	// Two synthetic transports: one with heavy wash, one light; heavier
	// wash must yield larger cp for its net.
	r, _ := scheduled(t, "Synthetic2")
	nets := BuildNets(r, 0.6, 0.4)
	netsNoWash := BuildNets(r, 0.6, 0)
	// With γ=0 every cp only counts concurrency, so cp must not increase.
	byPair := func(ns []Net) map[[2]chip.CompID]float64 {
		m := map[[2]chip.CompID]float64{}
		for _, n := range ns {
			m[[2]chip.CompID{n.A, n.B}] = n.CP
		}
		return m
	}
	full, bare := byPair(nets), byPair(netsNoWash)
	for k, v := range full {
		if bare[k] > v+1e-9 {
			t.Errorf("net %v: cp without wash %v exceeds full cp %v", k, bare[k], v)
		}
	}
}

func TestAutoPlaneFitsComponents(t *testing.T) {
	for _, bm := range benchdata.All() {
		comps := bm.Alloc.Instantiate()
		w, h := AutoPlane(comps, 1)
		r := rng.New(7)
		p, err := randomPlacement(comps, w, h, 1, r)
		if err != nil {
			t.Errorf("%s: %v", bm.Name, err)
			continue
		}
		if err := p.Legal(1); err != nil {
			t.Errorf("%s: random placement illegal: %v", bm.Name, err)
		}
	}
}

func TestAnnealImprovesOverRandom(t *testing.T) {
	r, comps := scheduled(t, "Synthetic2")
	nets := BuildNets(r, 0.6, 0.4)
	pr := DefaultParams()
	pr.Imax = 60 // keep the test fast; still many thousands of moves
	p, err := Anneal(comps, nets, pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Legal(pr.Spacing); err != nil {
		t.Fatalf("anneal produced illegal placement: %v", err)
	}
	// Compare against the average random placement energy.
	w, h := AutoPlane(comps, pr.Spacing)
	var avg float64
	const n = 10
	src := rng.New(99)
	for i := 0; i < n; i++ {
		rp, err := randomPlacement(comps, w, h, pr.Spacing, src)
		if err != nil {
			t.Fatal(err)
		}
		avg += Energy(rp, nets)
	}
	avg /= n
	if got := Energy(p, nets); got >= avg {
		t.Errorf("annealed energy %v not below average random energy %v", got, avg)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	r, comps := scheduled(t, "IVD")
	nets := BuildNets(r, 0.6, 0.4)
	pr := DefaultParams()
	pr.Imax = 40
	a, err := Anneal(comps, nets, pr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(comps, nets, pr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatalf("same seed produced different placements at comp %d", i)
		}
	}
	pr.Seed = 2
	c, err := Anneal(comps, nets, pr)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Rects {
		if a.Rects[i] != c.Rects[i] {
			same = false
		}
	}
	if same {
		t.Log("different seeds produced identical placements (possible but unlikely)")
	}
}

func TestAnnealRejectsBadParams(t *testing.T) {
	_, comps := scheduled(t, "IVD")
	pr := DefaultParams()
	pr.Alpha = 1.5
	if _, err := Anneal(comps, nil, pr); err == nil {
		t.Error("alpha >= 1 not rejected")
	}
	pr = DefaultParams()
	pr.T0 = 0.5 // below Tmin
	if _, err := Anneal(comps, nil, pr); err == nil {
		t.Error("T0 <= Tmin not rejected")
	}
}

func TestConstructLegalAndDeterministic(t *testing.T) {
	r, comps := scheduled(t, "CPA")
	nets := BuildNets(r, 0.6, 0.4)
	pr := DefaultParams()
	a, err := Construct(comps, nets, pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Legal(pr.Spacing); err != nil {
		t.Fatalf("baseline placement illegal: %v", err)
	}
	b, err := Construct(comps, nets, pr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatal("baseline placement not deterministic")
		}
	}
}

func TestAnnealBeatsBaselineOnWeightedEnergy(t *testing.T) {
	// The SA placer optimises Eq. 3 directly, so on the weighted energy it
	// must not lose to the priority-blind baseline.
	r, comps := scheduled(t, "Synthetic3")
	nets := BuildNets(r, 0.6, 0.4)
	pr := DefaultParams()
	pr.Imax = 60
	ours, err := Anneal(comps, nets, pr)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Construct(comps, nets, pr)
	if err != nil {
		t.Fatal(err)
	}
	if Energy(ours, nets) > Energy(ba, nets) {
		t.Errorf("SA energy %v worse than baseline %v", Energy(ours, nets), Energy(ba, nets))
	}
}

func TestTransformPreservesLegality(t *testing.T) {
	_, comps := scheduled(t, "CPA")
	w, h := AutoPlane(comps, 1)
	r := rng.New(3)
	p, err := randomPlacement(comps, w, h, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildNetIndex(len(comps), nil)
	for i := 0; i < 2000; i++ {
		if _, _, ok := transform(p, 1, r, ix); ok {
			if err := p.Legal(1); err != nil {
				t.Fatalf("move %d broke legality: %v", i, err)
			}
		}
	}
}

func TestUndoRestoresPlacement(t *testing.T) {
	_, comps := scheduled(t, "IVD")
	w, h := AutoPlane(comps, 1)
	r := rng.New(5)
	p, err := randomPlacement(comps, w, h, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildNetIndex(len(comps), nil)
	for i := 0; i < 500; i++ {
		before := p.Clone()
		undo, _, ok := transform(p, 1, r, ix)
		if !ok {
			continue
		}
		undo()
		for j := range p.Rects {
			if p.Rects[j] != before.Rects[j] {
				t.Fatalf("undo failed at move %d comp %d", i, j)
			}
		}
	}
}

func TestDilatePreservesLayout(t *testing.T) {
	_, comps := scheduled(t, "CPA")
	w, h := AutoPlane(comps, 2)
	r := rng.New(11)
	p, err := randomPlacement(comps, w, h, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{1.0, 1.5, 2.25} {
		q := Dilate(p, f)
		if len(q.Rects) != len(p.Rects) {
			t.Fatalf("f=%v: rect count changed", f)
		}
		for i, orig := range p.Rects {
			got := q.Rects[i]
			if got.W != orig.W || got.H != orig.H {
				t.Errorf("f=%v: footprint %d changed", f, i)
			}
		}
		// Spacing never shrinks below the original minimum (for f >= 1.5
		// gaps strictly grow; at f = 1 everything is identical).
		if f == 1.0 {
			for i := range p.Rects {
				if q.Rects[i] != p.Rects[i] {
					t.Errorf("f=1 must be identity at rect %d", i)
				}
			}
			continue
		}
		if err := q.Legal(2); err != nil {
			t.Errorf("f=%v: dilated placement illegal: %v", f, err)
		}
		// Relative order is preserved: centre ordering along x and y.
		for i := range p.Rects {
			for j := range p.Rects {
				if p.Rects[i].CenterX() < p.Rects[j].CenterX() &&
					q.Rects[i].CenterX() > q.Rects[j].CenterX() {
					t.Errorf("f=%v: x order of %d,%d flipped", f, i, j)
				}
			}
		}
	}
}

func TestDilateProperty(t *testing.T) {
	// Dilation by >= 1.5 keeps any legal placement legal.
	_, comps := scheduled(t, "Synthetic4")
	src := rng.New(23)
	for trial := 0; trial < 10; trial++ {
		w, h := AutoPlane(comps, 2)
		p, err := randomPlacement(comps, w, h, 2, src)
		if err != nil {
			t.Fatal(err)
		}
		q := Dilate(p, 1.5)
		if err := q.Legal(2); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
