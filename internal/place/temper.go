package place

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Parallel tempering (replica exchange) upgrades the independent K-seed
// portfolio to replicas that cooperate: R chains anneal concurrently at a
// fixed geometric temperature ladder spanning [Tmin, T0], and at every
// round boundary adjacent rungs may exchange configurations with the
// Metropolis criterion min(1, exp((β_i-β_j)(E_i-E_j))). Hot rungs explore
// and feed promising basins down the ladder; cold rungs refine them — the
// classic replica-exchange tradeoff that buys more effective search per
// wall-clock second than K isolated restarts.
//
// Determinism is scheduling-independent by construction:
//
//   - Every replica owns its RNG (seeded Seed+rung) and placement; within
//     a round replicas never share mutable state, so stepping them on 1
//     or N goroutines produces identical chains.
//   - The shared NetIndex and nets slice are read-only for the whole run.
//   - Swap decisions consume a dedicated RNG (derived from Seed only) on
//     the coordinator, in fixed rung order at fixed round boundaries, and
//     one uniform draw is consumed per candidate pair whether or not the
//     swap accepts, so the swap stream never depends on replica content
//     or goroutine interleaving.
//   - The winner is the lowest best-ever energy, ties broken by the
//     smallest rung index.
//
// TestTemperedDeterminism pins byte-identical output across worker-pool
// sizes; the default synthesis path never calls into this file.

// temperReplica is the full state of one rung of the ladder.
type temperReplica struct {
	temp  float64 // fixed rung temperature
	r     *rng.Source
	p     *Placement
	cur   float64 // current Eq. 3 energy of p
	best  *Placement
	bestE float64
	// round counters for telemetry, reset every round
	accepted, rejected, infeasible int
	err                            error
}

// AnnealTempered runs parallel-tempering placement with the given number
// of replicas, using one worker per available CPU. replicas <= 1
// degenerates to the plain single-seed anneal and reproduces it exactly.
func AnnealTempered(comps []chip.Component, nets []Net, pr Params, replicas int) (*Placement, error) {
	return AnnealTemperedContext(context.Background(), comps, nets, pr, replicas, 0)
}

// AnnealTemperedContext is AnnealTempered with cancellation and an
// explicit worker-pool size (workers <= 0 selects GOMAXPROCS). The output
// is a pure function of (comps, nets, pr, replicas) — the workers value
// changes only the wall-clock, never the result. ctx is polled once per
// round, so a cancelled run aborts within one Imax move batch per
// replica.
func AnnealTemperedContext(ctx context.Context, comps []chip.Component, nets []Net, pr Params, replicas, workers int) (*Placement, error) {
	if replicas <= 1 {
		return AnnealContext(ctx, comps, nets, pr)
	}
	w, h := pr.PlaneW, pr.PlaneH
	if w == 0 || h == 0 {
		w, h = AutoPlane(comps, pr.Spacing)
	}
	if pr.Alpha <= 0 || pr.Alpha >= 1 {
		return nil, fmt.Errorf("place: cooling factor alpha %v outside (0,1)", pr.Alpha)
	}
	if pr.T0 <= pr.Tmin || pr.Tmin <= 0 {
		return nil, fmt.Errorf("place: invalid temperature range T0=%v Tmin=%v", pr.T0, pr.Tmin)
	}
	// Rounds mirror the plain annealer's temperature-step count, so a
	// tempered run spends the same number of moves per replica as one
	// cooling schedule would.
	rounds := 0
	for t := pr.T0; t > pr.Tmin; t *= pr.Alpha {
		rounds++
	}
	ix := BuildNetIndex(len(comps), nets)
	reps := make([]*temperReplica, replicas)
	for i := range reps {
		// Geometric ladder: rung 0 is the hottest (T0), the last rung sits
		// at Tmin. Seeds follow the portfolio convention Seed+rung.
		frac := float64(i) / float64(replicas-1)
		rep := &temperReplica{
			temp: pr.T0 * math.Pow(pr.Tmin/pr.T0, frac),
			r:    rng.New(pr.Seed + uint64(i)),
		}
		rep.p, rep.err = randomPlacement(comps, w, h, pr.Spacing, rep.r)
		if rep.err != nil {
			return nil, rep.err
		}
		rep.cur = Energy(rep.p, nets)
		rep.best = rep.p.Clone()
		rep.bestE = rep.cur
		reps[i] = rep
	}
	// The swap stream is keyed on the base seed only; a distinct derivation
	// constant keeps it disjoint from every replica stream.
	swapRng := rng.New(pr.Seed ^ 0xA5A5_5EED_0BAD_F00D)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = max(1, min(workers, replicas))

	tr := obs.From(ctx)
	if tr.Enabled() {
		tr.Instant(obs.CatPlace, "temper.replicas",
			obs.Arg{Key: "replicas", Val: float64(replicas)},
			obs.Arg{Key: "rounds", Val: float64(rounds)})
		for i, rep := range reps {
			tid := int64(pr.Seed) + int64(i)
			tr.NameTrack(tid, fmt.Sprintf("temper rung %d T=%.3g", i, rep.temp))
		}
	}
	flt := fault.From(ctx)

	swapsTotal := 0
	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("place: tempering aborted at round %d: %w", round, err)
		}
		if err := flt.Err(fault.PlaceStepFail); err != nil {
			return nil, fmt.Errorf("place: tempering aborted at round %d: %w", round, err)
		}
		// Stepping phase: every replica runs Imax moves at its rung
		// temperature. Replicas are mutually independent here, so the
		// worker fan-out is free to schedule them in any order.
		if workers == 1 {
			for _, rep := range reps {
				rep.step(pr, nets, ix)
			}
		} else {
			jobs := make(chan *temperReplica)
			var wg sync.WaitGroup
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for rep := range jobs {
						rep.step(pr, nets, ix)
					}
				}()
			}
			for _, rep := range reps {
				jobs <- rep
			}
			close(jobs)
			wg.Wait()
		}
		// Swap phase, sequential on the coordinator: adjacent pairs
		// alternate even/odd with the round parity. One uniform draw per
		// pair regardless of outcome keeps the stream content-independent.
		swaps := 0
		for i := round % 2; i+1 < replicas; i += 2 {
			a, b := reps[i], reps[i+1]
			u := swapRng.Float64()
			// β_a < β_b (a is hotter); accept with exp((β_a-β_b)(E_a-E_b)).
			arg := (1/a.temp - 1/b.temp) * (a.cur - b.cur)
			if arg >= 0 || u < math.Exp(arg) {
				a.p, b.p = b.p, a.p
				a.cur, b.cur = b.cur, a.cur
				swaps++
			}
		}
		swapsTotal += swaps
		if tr.Enabled() {
			tr.Instant(obs.CatPlace, "temper.round",
				obs.Arg{Key: "round", Val: float64(round)},
				obs.Arg{Key: "swaps", Val: float64(swaps)})
			for i, rep := range reps {
				tr.AnnealStep(obs.AnnealStep{
					Seed: pr.Seed + uint64(i), Temp: rep.temp, Cur: rep.cur, Best: rep.bestE,
					Accepted: rep.accepted, Rejected: rep.rejected, Infeasible: rep.infeasible,
				})
			}
		}
	}
	if tr.Enabled() {
		tr.Instant(obs.CatPlace, "temper.done",
			obs.Arg{Key: "swaps", Val: float64(swapsTotal)})
	}

	// Winner: strictly lowest best-ever energy, smallest rung on exact
	// ties — the replica order is fixed, so this is deterministic.
	winner := 0
	for i := 1; i < replicas; i++ {
		if reps[i].bestE < reps[winner].bestE {
			winner = i
		}
	}
	best := reps[winner].best
	if err := quenchCtx(ctx, best, nets, ix, pr.Spacing); err != nil {
		return nil, err
	}
	if err := best.Legal(pr.Spacing); err != nil {
		return nil, fmt.Errorf("place: tempering produced illegal placement: %w", err)
	}
	return best, nil
}

// step runs one round of Imax Metropolis moves at the replica's rung
// temperature, maintaining the same incremental-energy discipline as the
// plain annealer (see AnnealContext): near-tie deltas fall back to the
// full Eq. 3 sum so the accept/reject stream matches a full-recompute
// implementation bit for bit.
func (rep *temperReplica) step(pr Params, nets []Net, ix *NetIndex) {
	const tieEps = 1e-6
	rep.accepted, rep.rejected, rep.infeasible = 0, 0, 0
	for i := 0; i < pr.Imax; i++ {
		undo, delta, ok := transform(rep.p, pr.Spacing, rep.r, ix)
		if !ok {
			rep.infeasible++
			continue
		}
		next, haveNext := 0.0, false
		if delta > -tieEps && delta < tieEps {
			next, haveNext = Energy(rep.p, nets), true
			delta = next - rep.cur
		}
		if delta < 0 || rep.r.Float64() < math.Exp(-delta/rep.temp) {
			if !haveNext {
				next = Energy(rep.p, nets)
			}
			rep.cur = next
			if rep.cur < rep.bestE {
				rep.bestE = rep.cur
				rep.best.CopyFrom(rep.p)
			}
			rep.accepted++
		} else {
			undo()
			rep.rejected++
		}
	}
}
