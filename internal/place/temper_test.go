package place

import (
	"context"
	"testing"

	"repro/internal/chip"
)

// temperFixture builds a small component set and net list with distinct
// priorities, enough for swaps to matter.
func temperFixture() ([]chip.Component, []Net) {
	kinds := []chip.Kind{
		{Name: "mixer", Footprint: chip.Footprint{W: 6, H: 4}},
		{Name: "heater", Footprint: chip.Footprint{W: 4, H: 4}},
		{Name: "detector", Footprint: chip.Footprint{W: 3, H: 3}},
	}
	var comps []chip.Component
	for i := 0; i < 6; i++ {
		comps = append(comps, chip.Component{ID: chip.CompID(i), Kind: kinds[i%len(kinds)]})
	}
	nets := []Net{
		{A: 0, B: 1, CP: 3.5},
		{A: 1, B: 2, CP: 1.0},
		{A: 2, B: 3, CP: 2.25},
		{A: 3, B: 4, CP: 0.5},
		{A: 4, B: 5, CP: 4.0},
		{A: 0, B: 5, CP: 1.75},
	}
	return comps, nets
}

func temperParams() Params {
	pr := DefaultParams()
	pr.Imax = 40
	return pr
}

// TestTemperedDeterminismAcrossWorkers is the headline property: the
// tempered placement is byte-identical for every worker-pool size —
// replica stepping is embarrassingly parallel within a round and swap
// decisions are serialized on the coordinator, so goroutine interleaving
// cannot leak into the result. Run under -race this also proves the
// replica fan-out is data-race-free.
func TestTemperedDeterminismAcrossWorkers(t *testing.T) {
	comps, nets := temperFixture()
	pr := temperParams()
	var ref *Placement
	for _, workers := range []int{1, 2, 3, 4, 7} {
		p, err := AnnealTemperedContext(context.Background(), comps, nets, pr, 5, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = p
			continue
		}
		if p.W != ref.W || p.H != ref.H || len(p.Rects) != len(ref.Rects) {
			t.Fatalf("workers=%d: plane mismatch", workers)
		}
		for i := range p.Rects {
			if p.Rects[i] != ref.Rects[i] {
				t.Fatalf("workers=%d: rect %d = %+v, want %+v (worker count leaked into result)",
					workers, i, p.Rects[i], ref.Rects[i])
			}
		}
	}
}

// TestTemperedRepeatable re-runs the same tempered anneal many times on
// the default worker fan-out; any scheduling-dependent swap decision
// would show up as run-to-run drift.
func TestTemperedRepeatable(t *testing.T) {
	comps, nets := temperFixture()
	pr := temperParams()
	ref, err := AnnealTempered(comps, nets, pr, 4)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		p, err := AnnealTempered(comps, nets, pr, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Rects {
			if p.Rects[i] != ref.Rects[i] {
				t.Fatalf("run %d: rect %d = %+v, want %+v", run, i, p.Rects[i], ref.Rects[i])
			}
		}
	}
}

// TestTemperedDegeneratesToAnneal pins that replicas <= 1 is the plain
// annealer, bit for bit.
func TestTemperedDegeneratesToAnneal(t *testing.T) {
	comps, nets := temperFixture()
	pr := temperParams()
	want, err := Anneal(comps, nets, pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1} {
		got, err := AnnealTempered(comps, nets, pr, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Rects {
			if got.Rects[i] != want.Rects[i] {
				t.Fatalf("replicas=%d: rect %d = %+v, want %+v", k, i, got.Rects[i], want.Rects[i])
			}
		}
	}
}

// TestTemperedLegalAndScored sanity-checks the output contract: legal
// placement, finite energy, and not worse than the median single-seed
// run would plausibly allow (weak bound — quality assertions on a
// stochastic search would flake).
func TestTemperedLegalAndScored(t *testing.T) {
	comps, nets := temperFixture()
	pr := temperParams()
	p, err := AnnealTempered(comps, nets, pr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Legal(pr.Spacing); err != nil {
		t.Fatalf("illegal placement: %v", err)
	}
	if e := Energy(p, nets); e <= 0 {
		t.Fatalf("implausible energy %v", e)
	}
}

// TestTemperedCancel verifies the per-round cancellation poll.
func TestTemperedCancel(t *testing.T) {
	comps, nets := temperFixture()
	pr := temperParams()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnnealTemperedContext(ctx, comps, nets, pr, 4, 2); err == nil {
		t.Fatal("cancelled tempering returned no error")
	}
}
