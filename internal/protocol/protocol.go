// Package protocol provides reusable constructors for the bioassay
// patterns that dominate the flow-based microfluidics literature: binary
// mixing trees (sample preparation, e.g. PCR), serial dilution chains
// (concentration gradients, e.g. CPA), and multiplexed sample×reagent
// panels (diagnostics, e.g. IVD). Downstream users compose them instead
// of hand-writing sequencing graphs operation by operation.
package protocol

import (
	"fmt"

	"repro/internal/assay"
	"repro/internal/fluid"
	"repro/internal/unit"
)

// MixSpec parameterises the mixing operations a builder emits.
type MixSpec struct {
	// Duration of one mixing operation.
	Duration unit.Time
	// Fluid produced; when the Name is empty each operation gets a
	// distinct deterministic species from the library palette.
	Fluid fluid.Fluid
}

// value returns the fluid for the i-th emitted operation.
func (m MixSpec) value(i int) fluid.Fluid {
	if m.Fluid.Name != "" || m.Fluid.D.Valid() {
		return m.Fluid
	}
	s := fluid.Pick(i)
	return fluid.Fluid{Name: s.Name, D: s.D}
}

// MixingTree appends a balanced binary mixing tree over `leaves` input
// mixes to the builder and returns the root operation. leaves must be a
// power of two and at least 2. The classic PCR sample-preparation assay
// is MixingTree(b, 4, spec).
func MixingTree(b *assay.Builder, leaves int, spec MixSpec) (assay.OpID, error) {
	if leaves < 2 || leaves&(leaves-1) != 0 {
		return assay.NoOp, fmt.Errorf("protocol: mixing tree needs a power-of-two leaf count >= 2, got %d", leaves)
	}
	if spec.Duration <= 0 {
		return assay.NoOp, fmt.Errorf("protocol: non-positive mix duration")
	}
	n := 0
	level := make([]assay.OpID, leaves)
	for i := range level {
		level[i] = b.AddOp(fmt.Sprintf("tmix_l0_%d", i+1), assay.Mix, spec.Duration, spec.value(n))
		n++
	}
	depth := 1
	for len(level) > 1 {
		next := make([]assay.OpID, len(level)/2)
		for i := range next {
			next[i] = b.AddOp(fmt.Sprintf("tmix_l%d_%d", depth, i+1), assay.Mix, spec.Duration, spec.value(n))
			n++
			b.AddDep(level[2*i], next[i])
			b.AddDep(level[2*i+1], next[i])
		}
		level = next
		depth++
	}
	return level[0], nil
}

// SerialDilution appends a chain of `stages` dilution mixes starting from
// the given source operation (or from a fresh source mix when source is
// assay.NoOp) and returns the stage operations in order. Each stage
// optionally branches into a detection.
func SerialDilution(b *assay.Builder, source assay.OpID, stages int, spec MixSpec, detectEach bool, detDur unit.Time) ([]assay.OpID, error) {
	if stages < 1 {
		return nil, fmt.Errorf("protocol: serial dilution needs at least one stage")
	}
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("protocol: non-positive mix duration")
	}
	if detectEach && detDur <= 0 {
		return nil, fmt.Errorf("protocol: non-positive detection duration")
	}
	prev := source
	if prev == assay.NoOp {
		prev = b.AddOp("dil_src", assay.Mix, spec.Duration, spec.value(0))
	}
	out := make([]assay.OpID, 0, stages)
	dye, _ := fluid.ByName("reagent-dye")
	for i := 1; i <= stages; i++ {
		st := b.AddOp(fmt.Sprintf("dil_%d", i), assay.Mix, spec.Duration, spec.value(i))
		b.AddDep(prev, st)
		out = append(out, st)
		if detectEach {
			d := b.AddOp(fmt.Sprintf("dil_det_%d", i), assay.Detect, detDur,
				fluid.Fluid{Name: dye.Name, D: dye.D})
			b.AddDep(st, d)
		}
		prev = st
	}
	return out, nil
}

// Multiplex appends a samples×reagents diagnostic panel: one mix per
// (sample, reagent) pair followed by a detection of its readout. It
// returns the detection operations. The IVD benchmark is
// Multiplex(b, 3, 2, ...).
func Multiplex(b *assay.Builder, samples, reagents int, mixDur, detDur unit.Time) ([]assay.OpID, error) {
	if samples < 1 || reagents < 1 {
		return nil, fmt.Errorf("protocol: multiplex needs at least one sample and one reagent")
	}
	if mixDur <= 0 || detDur <= 0 {
		return nil, fmt.Errorf("protocol: non-positive durations")
	}
	dye, _ := fluid.ByName("reagent-dye")
	var dets []assay.OpID
	n := 0
	for s := 1; s <= samples; s++ {
		for r := 1; r <= reagents; r++ {
			sp := fluid.Pick(n)
			m := b.AddOp(fmt.Sprintf("mixS%dR%d", s, r), assay.Mix, mixDur,
				fluid.Fluid{Name: sp.Name, D: sp.D})
			d := b.AddOp(fmt.Sprintf("detS%dR%d", s, r), assay.Detect, detDur,
				fluid.Fluid{Name: dye.Name, D: dye.D})
			b.AddDep(m, d)
			dets = append(dets, d)
			n++
		}
	}
	return dets, nil
}

// HeatCycle appends `cycles` alternating heat/mix pairs after the source
// operation (thermocycling, e.g. amplification) and returns the final
// operation.
func HeatCycle(b *assay.Builder, source assay.OpID, cycles int, heatDur, mixDur unit.Time) (assay.OpID, error) {
	if cycles < 1 {
		return assay.NoOp, fmt.Errorf("protocol: heat cycle needs at least one cycle")
	}
	if heatDur <= 0 || mixDur <= 0 {
		return assay.NoOp, fmt.Errorf("protocol: non-positive durations")
	}
	if source == assay.NoOp {
		return assay.NoOp, fmt.Errorf("protocol: heat cycle needs a source operation")
	}
	prev := source
	for i := 1; i <= cycles; i++ {
		h := b.AddOp(fmt.Sprintf("cycle_heat_%d", i), assay.Heat, heatDur,
			fluid.Fluid{Name: "amplicon", D: 1e-7})
		b.AddDep(prev, h)
		m := b.AddOp(fmt.Sprintf("cycle_mix_%d", i), assay.Mix, mixDur,
			fluid.Fluid{Name: "amplicon", D: 1e-7})
		b.AddDep(h, m)
		prev = m
	}
	return prev, nil
}
