package protocol

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/unit"
)

func spec() MixSpec { return MixSpec{Duration: unit.Seconds(5)} }

func TestMixingTreeShape(t *testing.T) {
	b := assay.NewBuilder("tree")
	root, err := MixingTree(b, 4, spec())
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 7 { // 4 + 2 + 1
		t.Errorf("ops = %d, want 7", g.NumOps())
	}
	if len(g.Sinks()) != 1 || g.Sinks()[0] != root {
		t.Errorf("root mismatch: sinks %v, root %d", g.Sinks(), root)
	}
	if len(g.Sources()) != 4 {
		t.Errorf("leaves = %d, want 4", len(g.Sources()))
	}
	// Internal nodes have exactly two parents.
	for _, op := range g.Operations() {
		if n := len(g.Parents(op.ID)); n != 0 && n != 2 {
			t.Errorf("op %q has %d parents", op.Name, n)
		}
	}
}

func TestMixingTreeRejectsBadLeafCounts(t *testing.T) {
	for _, leaves := range []int{0, 1, 3, 6} {
		b := assay.NewBuilder("bad")
		if _, err := MixingTree(b, leaves, spec()); err == nil {
			t.Errorf("leaves=%d accepted", leaves)
		}
	}
	b := assay.NewBuilder("bad")
	if _, err := MixingTree(b, 4, MixSpec{}); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestSerialDilutionShape(t *testing.T) {
	b := assay.NewBuilder("dil")
	stages, err := SerialDilution(b, assay.NoOp, 5, spec(), true, unit.Seconds(4))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 1 source + 5 stages + 5 detects.
	if g.NumOps() != 11 {
		t.Errorf("ops = %d, want 11", g.NumOps())
	}
	if len(stages) != 5 {
		t.Errorf("stages = %d", len(stages))
	}
	// The chain is connected: each stage depends on the previous.
	for i := 1; i < len(stages); i++ {
		found := false
		for _, p := range g.Parents(stages[i]) {
			if p == stages[i-1] {
				found = true
			}
		}
		if !found {
			t.Errorf("stage %d not chained", i)
		}
	}
	n := g.CountByType()
	if n[assay.Detect] != 5 {
		t.Errorf("detects = %d", n[assay.Detect])
	}
}

func TestSerialDilutionFromExistingSource(t *testing.T) {
	b := assay.NewBuilder("dil2")
	src, err := MixingTree(b, 2, spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SerialDilution(b, src, 3, spec(), false, 0); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 3+3 {
		t.Errorf("ops = %d, want 6", g.NumOps())
	}
	if len(g.Sinks()) != 1 {
		t.Errorf("sinks = %v", g.Sinks())
	}
}

func TestMultiplexShape(t *testing.T) {
	b := assay.NewBuilder("ivd")
	dets, err := Multiplex(b, 3, 2, unit.Seconds(5), unit.Seconds(4))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent in shape to the IVD benchmark: 6 mixes + 6 detects.
	if g.NumOps() != 12 || len(dets) != 6 {
		t.Errorf("ops = %d dets = %d", g.NumOps(), len(dets))
	}
	n := g.CountByType()
	if n[assay.Mix] != 6 || n[assay.Detect] != 6 {
		t.Errorf("type counts %v", n)
	}
}

func TestHeatCycleShape(t *testing.T) {
	b := assay.NewBuilder("cycle")
	src, err := MixingTree(b, 2, spec())
	if err != nil {
		t.Fatal(err)
	}
	last, err := HeatCycle(b, src, 3, unit.Seconds(6), unit.Seconds(2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != 3+6 {
		t.Errorf("ops = %d, want 9", g.NumOps())
	}
	if len(g.Sinks()) != 1 || g.Sinks()[0] != last {
		t.Errorf("last op mismatch")
	}
	n := g.CountByType()
	if n[assay.Heat] != 3 {
		t.Errorf("heats = %d", n[assay.Heat])
	}
}

func TestRejectionPaths(t *testing.T) {
	b := assay.NewBuilder("bad")
	if _, err := SerialDilution(b, assay.NoOp, 0, spec(), false, 0); err == nil {
		t.Error("0 stages accepted")
	}
	if _, err := SerialDilution(b, assay.NoOp, 2, spec(), true, 0); err == nil {
		t.Error("detect without duration accepted")
	}
	if _, err := Multiplex(b, 0, 2, unit.Seconds(1), unit.Seconds(1)); err == nil {
		t.Error("0 samples accepted")
	}
	if _, err := HeatCycle(b, assay.NoOp, 2, unit.Seconds(1), unit.Seconds(1)); err == nil {
		t.Error("missing source accepted")
	}
	if _, err := HeatCycle(b, assay.OpID(0), 0, unit.Seconds(1), unit.Seconds(1)); err == nil {
		t.Error("0 cycles accepted")
	}
}

// TestComposedProtocolSynthesizes builds a realistic composite protocol
// from the building blocks and runs it through the full synthesis flow.
func TestComposedProtocolSynthesizes(t *testing.T) {
	b := assay.NewBuilder("composite")
	root, err := MixingTree(b, 4, spec())
	if err != nil {
		t.Fatal(err)
	}
	amplified, err := HeatCycle(b, root, 2, unit.Seconds(8), unit.Seconds(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SerialDilution(b, amplified, 4, spec(), true, unit.Seconds(4)); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Place.Imax = 30
	sol, err := core.Synthesize(g, chip.Allocation{3, 1, 0, 2}, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Validate(); err != nil {
		t.Fatal(err)
	}
}
