// Package regress implements the benchmark-regression gate: the measured
// wall time and solution cost of the proposed flow on the tracked
// benchmarks are compared against the reference figures stored in
// BENCH_baseline.json. Costs are deterministic — synthesis is a pure
// function of (benchmark, options) — so any cost drift is a real change
// and fails at a 0% threshold; wall time is noisy, so it only fails
// beyond the configured tolerance (and merely gets noted when faster).
package regress

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"

	"repro/internal/report"
)

// Entry is the reference (or measured) figure set of one benchmark.
type Entry struct {
	// NsPerOp is the synthesis wall time of the proposed flow.
	NsPerOp float64 `json:"ns_per_op"`
	// The solution costs, compared exactly.
	MakespanMs      int64 `json:"makespan_ms"`
	ChannelLengthUm int64 `json:"channel_length_um"`
	ChannelWashMs   int64 `json:"channel_wash_ms"`
	Transports      int   `json:"transports"`
}

// Baseline is the "regress" section of BENCH_baseline.json.
type Baseline struct {
	// Imax and Seed record the options the references were captured
	// with; a run must use the same ones for costs to be comparable.
	Imax int    `json:"imax"`
	Seed uint64 `json:"seed"`
	// Tempering and RouteWorkers record the multicore options of the
	// capture (0 = off). Tempering changes the solution, so it must match
	// for the cost gate to mean anything; RouteWorkers never does (the
	// wave router is pinned byte-identical), but replaying it keeps the
	// timing comparison like-for-like.
	Tempering    int `json:"tempering,omitempty"`
	RouteWorkers int `json:"route_workers,omitempty"`
	// MinCPUs, when positive, marks the baseline's wall times as captured
	// on a host with at least that many CPUs. On a smaller host the time
	// gate is skipped (with a note) — a 1-core runner cannot reproduce a
	// multicore curve and failing it would only teach people to ignore
	// the gate. Costs are still compared exactly.
	MinCPUs int `json:"min_cpus,omitempty"`
	// Tolerance is the relative wall-time slack (0.15 = +15%).
	Tolerance  float64          `json:"tolerance"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Load extracts the regression baseline from a BENCH_baseline.json
// document (whose other sections — historical measurements, host notes —
// are deliberately ignored).
func Load(r io.Reader) (*Baseline, error) {
	var doc struct {
		Regress *Baseline `json:"regress"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("regress: %w", err)
	}
	if doc.Regress == nil {
		return nil, fmt.Errorf("regress: baseline document has no \"regress\" section")
	}
	b := doc.Regress
	if b.Tolerance <= 0 {
		return nil, fmt.Errorf("regress: non-positive tolerance %v", b.Tolerance)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("regress: baseline lists no benchmarks")
	}
	return b, nil
}

// Check is the comparison outcome for one benchmark.
type Check struct {
	Bench    string `json:"bench"`
	Measured Entry  `json:"measured"`
	// Baseline is absent when the benchmark is untracked (which fails
	// the gate: a silently skipped comparison is not a passed one).
	Baseline *Entry `json:"baseline,omitempty"`
	// TimeRatio is measured/baseline wall time (0 when untracked).
	TimeRatio float64 `json:"time_ratio"`
	CostOK    bool    `json:"cost_ok"`
	TimeOK    bool    `json:"time_ok"`
	// Note carries human context: what drifted, or that the run got
	// faster than the reference.
	Note string `json:"note,omitempty"`
}

// OK reports whether the benchmark passed both gates.
func (c *Check) OK() bool { return c.CostOK && c.TimeOK && c.Baseline != nil }

// Report is the outcome of one regression run — the JSON artifact CI
// uploads.
type Report struct {
	Tolerance float64 `json:"tolerance"`
	Imax      int     `json:"imax"`
	Seed      uint64  `json:"seed"`
	Checks    []Check `json:"checks"`
}

// OK reports whether every benchmark passed.
func (r *Report) OK() bool {
	for i := range r.Checks {
		if !r.Checks[i].OK() {
			return false
		}
	}
	return len(r.Checks) > 0
}

// String renders the run as one line per benchmark.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark regression gate (time tolerance +%.0f%%, cost tolerance 0%%):\n", 100*r.Tolerance)
	for i := range r.Checks {
		c := &r.Checks[i]
		status := "ok"
		if !c.OK() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-12s %-4s time %6.1fms (%.2fx)", c.Bench, status,
			c.Measured.NsPerOp/1e6, c.TimeRatio)
		if c.Note != "" {
			fmt.Fprintf(&b, "  %s", c.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// measured converts one comparison row into the figure set the gate
// compares.
func measured(row report.Row) Entry {
	return Entry{
		NsPerOp:         float64(row.Ours.CPU.Nanoseconds()),
		MakespanMs:      int64(row.Ours.ExecutionTime),
		ChannelLengthUm: int64(row.Ours.ChannelLength),
		ChannelWashMs:   int64(row.Ours.ChannelWashTime),
		Transports:      row.Ours.Transports,
	}
}

// Compare gates the measured rows against the baseline on this host.
func (b *Baseline) Compare(rows []report.Row) *Report {
	return b.CompareOn(rows, runtime.NumCPU())
}

// CompareOn gates the measured rows against the baseline for a host with
// hostCPUs logical CPUs (split out from Compare so tests can pin the
// host size).
func (b *Baseline) CompareOn(rows []report.Row, hostCPUs int) *Report {
	rep := &Report{Tolerance: b.Tolerance, Imax: b.Imax, Seed: b.Seed}
	timeGate := b.MinCPUs <= 0 || hostCPUs >= b.MinCPUs
	for _, row := range rows {
		c := Check{Bench: row.Benchmark, Measured: measured(row)}
		ref, ok := b.Benchmarks[row.Benchmark]
		if !ok {
			c.Note = "no baseline entry — capture one before gating this benchmark"
			rep.Checks = append(rep.Checks, c)
			continue
		}
		c.Baseline = &ref
		c.CostOK = c.Measured.MakespanMs == ref.MakespanMs &&
			c.Measured.ChannelLengthUm == ref.ChannelLengthUm &&
			c.Measured.ChannelWashMs == ref.ChannelWashMs &&
			c.Measured.Transports == ref.Transports
		if !c.CostOK {
			c.Note = fmt.Sprintf("cost drift: makespan %d->%d ms, length %d->%d um, wash %d->%d ms, transports %d->%d",
				ref.MakespanMs, c.Measured.MakespanMs,
				ref.ChannelLengthUm, c.Measured.ChannelLengthUm,
				ref.ChannelWashMs, c.Measured.ChannelWashMs,
				ref.Transports, c.Measured.Transports)
		}
		if ref.NsPerOp > 0 {
			c.TimeRatio = c.Measured.NsPerOp / ref.NsPerOp
		}
		switch {
		case !timeGate:
			c.TimeOK = true
			if c.Note == "" {
				c.Note = fmt.Sprintf("time gate skipped: host has %d CPUs, baseline needs >= %d", hostCPUs, b.MinCPUs)
			}
		default:
			c.TimeOK = c.TimeRatio <= 1+b.Tolerance
			if c.TimeOK && c.TimeRatio > 0 && c.TimeRatio < 1-b.Tolerance && c.Note == "" {
				c.Note = fmt.Sprintf("faster than baseline (%.2fx) — consider re-capturing", c.TimeRatio)
			}
		}
		rep.Checks = append(rep.Checks, c)
	}
	return rep
}
