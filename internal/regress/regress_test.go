package regress

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/unit"
)

func refBaseline() *Baseline {
	return &Baseline{
		Imax: 60, Seed: 1, Tolerance: 0.15,
		Benchmarks: map[string]Entry{
			"Synthetic1": {NsPerOp: 1e9, MakespanMs: 100, ChannelLengthUm: 50, ChannelWashMs: 20, Transports: 7},
		},
	}
}

func row(cpu time.Duration, makespan int64) report.Row {
	return report.Row{
		Benchmark: "Synthetic1",
		Ours: core.Metrics{
			ExecutionTime:   unit.Time(makespan),
			ChannelLength:   50,
			ChannelWashTime: 20,
			Transports:      7,
			CPU:             cpu,
		},
	}
}

func TestCompareGates(t *testing.T) {
	b := refBaseline()

	// Identical costs, same time: pass.
	rep := b.Compare([]report.Row{row(time.Second, 100)})
	if !rep.OK() {
		t.Errorf("clean run failed: %s", rep)
	}
	// 10% slower: inside tolerance.
	if rep := b.Compare([]report.Row{row(1100*time.Millisecond, 100)}); !rep.OK() {
		t.Errorf("+10%% run failed at 15%% tolerance: %s", rep)
	}
	// 30% slower: time gate fails.
	rep = b.Compare([]report.Row{row(1300*time.Millisecond, 100)})
	if rep.OK() || rep.Checks[0].CostOK != true || rep.Checks[0].TimeOK {
		t.Errorf("+30%% run passed: %s", rep)
	}
	// Much faster: passes, but flagged for re-capture.
	rep = b.Compare([]report.Row{row(100*time.Millisecond, 100)})
	if !rep.OK() || !strings.Contains(rep.Checks[0].Note, "faster") {
		t.Errorf("faster run not noted: %s", rep)
	}
	// Any cost drift fails at 0% threshold, even when faster.
	rep = b.Compare([]report.Row{row(time.Second, 99)})
	if rep.OK() || rep.Checks[0].CostOK {
		t.Errorf("cost drift passed: %s", rep)
	}
	// Untracked benchmark fails instead of silently skipping.
	r := row(time.Second, 100)
	r.Benchmark = "Synthetic9"
	if rep := b.Compare([]report.Row{r}); rep.OK() {
		t.Errorf("untracked benchmark passed: %s", rep)
	}
	// An empty run proves nothing.
	if rep := b.Compare(nil); rep.OK() {
		t.Error("empty run passed")
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	for name, doc := range map[string]string{
		"no-section":    `{"benchmarks": {}}`,
		"no-tolerance":  `{"regress": {"imax": 60, "benchmarks": {"a": {}}}}`,
		"no-benchmarks": `{"regress": {"tolerance": 0.15}}`,
		"not-json":      `nope`,
	} {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestLoadRepoBaseline pins the contract with the checked-in
// BENCH_baseline.json: the regress section exists and tracks the four
// synthetic benchmarks the CI gate runs.
func TestLoadRepoBaseline(t *testing.T) {
	f, err := os.Open("../../BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if b.Imax != 60 || b.Seed != 1 || b.Tolerance != 0.15 {
		t.Errorf("unexpected capture parameters: %+v", b)
	}
	for _, name := range []string{"Synthetic1", "Synthetic2", "Synthetic3", "Synthetic4"} {
		e, ok := b.Benchmarks[name]
		if !ok {
			t.Errorf("%s untracked", name)
			continue
		}
		if e.NsPerOp <= 0 || e.MakespanMs <= 0 || e.ChannelLengthUm <= 0 || e.Transports <= 0 {
			t.Errorf("%s reference figures incomplete: %+v", name, e)
		}
	}
}

// TestMinCPUsSkipsTimeGate pins the small-host behaviour: below the
// baseline's MinCPUs the time gate passes with a note (a 1-core runner
// cannot reproduce a multicore curve), while cost drift still fails.
func TestMinCPUsSkipsTimeGate(t *testing.T) {
	b := refBaseline()
	b.MinCPUs = 4

	// 3x slower on a too-small host: time gate skipped, run passes.
	rep := b.CompareOn([]report.Row{row(3*time.Second, 100)}, 1)
	if !rep.OK() {
		t.Errorf("small host failed the skipped time gate: %s", rep)
	}
	if !strings.Contains(rep.Checks[0].Note, "time gate skipped") {
		t.Errorf("skip not noted: %q", rep.Checks[0].Note)
	}
	// Same run on a big-enough host: time gate applies and fails.
	if rep := b.CompareOn([]report.Row{row(3*time.Second, 100)}, 4); rep.OK() {
		t.Errorf("3x slower run passed on a %d-CPU host: %s", 4, rep)
	}
	// Cost drift fails regardless of host size.
	if rep := b.CompareOn([]report.Row{row(time.Second, 99)}, 1); rep.OK() {
		t.Errorf("cost drift passed under the skipped time gate: %s", rep)
	}
}
