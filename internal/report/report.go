// Package report runs the paper's evaluation (Section V) and renders its
// artifacts: Table I (execution time, resource utilization, total channel
// length, CPU time — proposed algorithm vs. baseline BA), Fig. 8 (total
// channel cache time) and Fig. 9 (total channel wash time), as text tables,
// ASCII bar charts and CSV.
package report

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/benchdata"
	"repro/internal/core"
)

// Row holds both algorithms' metrics for one benchmark.
type Row struct {
	Benchmark string
	Ops       int
	Alloc     string
	Ours      core.Metrics
	BA        core.Metrics
}

// Run synthesizes every given benchmark with the proposed algorithm and
// the baseline and collects the comparison rows, using one worker per
// available CPU.
func Run(benches []benchdata.Benchmark, opts core.Options) ([]Row, error) {
	return RunWorkers(benches, opts, runtime.GOMAXPROCS(0))
}

// RunWorkers is Run with an explicit worker-pool size. Each benchmark is
// one job (both algorithms), jobs are independent — every synthesis is a
// pure function of (benchmark, opts) — and results land in a slice
// indexed by benchmark, so the output is identical for every workers
// value, including 1. When several benchmarks fail, the error of the
// earliest one in the input order is reported, again independent of
// scheduling.
func RunWorkers(benches []benchdata.Benchmark, opts core.Options, workers int) ([]Row, error) {
	workers = max(1, min(workers, len(benches)))
	rows := make([]Row, len(benches))
	errs := make([]error, len(benches))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rows[i], errs[i] = runOne(benches[i], opts)
			}
		}()
	}
	for i := range benches {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func runOne(bm benchdata.Benchmark, opts core.Options) (Row, error) {
	ours, err := core.Synthesize(bm.Graph, bm.Alloc, opts)
	if err != nil {
		return Row{}, fmt.Errorf("report: %s (ours): %w", bm.Name, err)
	}
	ba, err := core.SynthesizeBaseline(bm.Graph, bm.Alloc, opts)
	if err != nil {
		return Row{}, fmt.Errorf("report: %s (BA): %w", bm.Name, err)
	}
	return Row{
		Benchmark: bm.Name,
		Ops:       bm.Graph.NumOps(),
		Alloc:     bm.Alloc.String(),
		Ours:      ours.Metrics(),
		BA:        ba.Metrics(),
	}, nil
}

// Imp returns the relative improvement of ours over ba in percent:
// positive when ours is smaller (for cost metrics).
func Imp(ours, ba float64) float64 {
	if ba == 0 {
		return 0
	}
	return 100 * (ba - ours) / ba
}

// ImpGain returns the relative improvement for metrics where larger is
// better (utilization): positive when ours is larger.
func ImpGain(ours, ba float64) float64 {
	if ba == 0 {
		return 0
	}
	return 100 * (ours - ba) / ba
}

// TableI renders the comparison in the layout of the paper's Table I.
func TableI(rows []Row) string {
	var b strings.Builder
	b.WriteString("TABLE I: Comparisons on the execution time, resource utilization, total channel length, and CPU time\n")
	fmt.Fprintf(&b, "%-11s %4s %-10s | %8s %8s %7s | %6s %6s %7s | %8s %8s %7s | %7s %7s\n",
		"Benchmark", "Ops", "Alloc",
		"Exec(s)", "BA(s)", "Imp(%)",
		"Ur(%)", "BA(%)", "Imp(%)",
		"Len(mm)", "BA(mm)", "Imp(%)",
		"CPU(s)", "BA(s)")
	b.WriteString(strings.Repeat("-", 132) + "\n")
	var impExec, impUr, impLen float64
	for _, r := range rows {
		ie := Imp(r.Ours.ExecutionTime.Sec(), r.BA.ExecutionTime.Sec())
		iu := ImpGain(r.Ours.Utilization, r.BA.Utilization)
		il := Imp(r.Ours.ChannelLength.MM(), r.BA.ChannelLength.MM())
		impExec += ie
		impUr += iu
		impLen += il
		fmt.Fprintf(&b, "%-11s %4d %-10s | %8.1f %8.1f %7.1f | %6.1f %6.1f %7.1f | %8.0f %8.0f %7.1f | %7.2f %7.2f\n",
			r.Benchmark, r.Ops, r.Alloc,
			r.Ours.ExecutionTime.Sec(), r.BA.ExecutionTime.Sec(), ie,
			100*r.Ours.Utilization, 100*r.BA.Utilization, iu,
			r.Ours.ChannelLength.MM(), r.BA.ChannelLength.MM(), il,
			r.Ours.CPU.Seconds(), r.BA.CPU.Seconds())
	}
	n := float64(len(rows))
	if n > 0 {
		b.WriteString(strings.Repeat("-", 132) + "\n")
		fmt.Fprintf(&b, "%-27s | %17s %7.1f | %13s %7.1f | %17s %7.1f |\n",
			"Average", "", impExec/n, "", impUr/n, "", impLen/n)
	}
	return b.String()
}

// FigKind selects which figure Fig renders.
type FigKind int

// The two bar-chart figures of the evaluation.
const (
	Fig8CacheTime FigKind = iota
	Fig9WashTime
)

// Fig renders Fig. 8 (total cache time in flow channels) or Fig. 9 (total
// wash time of flow channels) as a horizontal ASCII bar chart.
func Fig(rows []Row, kind FigKind) string {
	title := "Fig. 8: Total cache time in flow channels (s)"
	pick := func(m core.Metrics) float64 { return m.CacheTime.Sec() }
	if kind == Fig9WashTime {
		title = "Fig. 9: Total wash time of flow channels (s)"
		pick = func(m core.Metrics) float64 { return m.ChannelWashTime.Sec() }
	}
	maxV := 0.0
	for _, r := range rows {
		if v := pick(r.Ours); v > maxV {
			maxV = v
		}
		if v := pick(r.BA); v > maxV {
			maxV = v
		}
	}
	const width = 50
	scale := func(v float64) int {
		if maxV == 0 {
			return 0
		}
		return int(v / maxV * width)
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s ours %8.1f |%s\n", r.Benchmark, pick(r.Ours), strings.Repeat("#", scale(pick(r.Ours))))
		fmt.Fprintf(&b, "%-11s BA   %8.1f |%s\n", "", pick(r.BA), strings.Repeat("=", scale(pick(r.BA))))
	}
	return b.String()
}

// CSV renders the full comparison as comma-separated values with a header
// row, for downstream plotting.
func CSV(rows []Row) string {
	var b strings.Builder
	b.WriteString("benchmark,ops,alloc,exec_ours_s,exec_ba_s,ur_ours,ur_ba,len_ours_mm,len_ba_mm,cache_ours_s,cache_ba_s,chanwash_ours_s,chanwash_ba_s,cpu_ours_s,cpu_ba_s\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%s,%.3f,%.3f,%.4f,%.4f,%.0f,%.0f,%.3f,%.3f,%.3f,%.3f,%.4f,%.4f\n",
			r.Benchmark, r.Ops, strings.ReplaceAll(r.Alloc, ",", ";"),
			r.Ours.ExecutionTime.Sec(), r.BA.ExecutionTime.Sec(),
			r.Ours.Utilization, r.BA.Utilization,
			r.Ours.ChannelLength.MM(), r.BA.ChannelLength.MM(),
			r.Ours.CacheTime.Sec(), r.BA.CacheTime.Sec(),
			r.Ours.ChannelWashTime.Sec(), r.BA.ChannelWashTime.Sec(),
			r.Ours.CPU.Seconds(), r.BA.CPU.Seconds())
	}
	return b.String()
}

// Markdown renders the comparison as a GitHub-flavoured markdown table —
// the source of the measured tables in EXPERIMENTS.md.
func Markdown(rows []Row) string {
	var b strings.Builder
	b.WriteString("| Benchmark | Exec (Ours/BA/Imp%) | U_r (Ours/BA/Imp%) | Length mm (Ours/BA/Imp%) | Cache s (Ours/BA) | Wash s (Ours/BA) |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %.1f / %.1f / %.1f | %.1f / %.1f / %.1f | %.0f / %.0f / %.1f | %.1f / %.1f | %.1f / %.1f |\n",
			r.Benchmark,
			r.Ours.ExecutionTime.Sec(), r.BA.ExecutionTime.Sec(),
			Imp(r.Ours.ExecutionTime.Sec(), r.BA.ExecutionTime.Sec()),
			100*r.Ours.Utilization, 100*r.BA.Utilization,
			ImpGain(r.Ours.Utilization, r.BA.Utilization),
			r.Ours.ChannelLength.MM(), r.BA.ChannelLength.MM(),
			Imp(r.Ours.ChannelLength.MM(), r.BA.ChannelLength.MM()),
			r.Ours.CacheTime.Sec(), r.BA.CacheTime.Sec(),
			r.Ours.ChannelWashTime.Sec(), r.BA.ChannelWashTime.Sec())
	}
	return b.String()
}
