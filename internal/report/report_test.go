package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/unit"
)

func fakeRows() []Row {
	return []Row{
		{
			Benchmark: "PCR", Ops: 7, Alloc: "(3,0,0,0)",
			Ours: core.Metrics{ExecutionTime: unit.Seconds(30), Utilization: 0.478,
				ChannelLength: 420 * unit.Millimetre, CacheTime: unit.Seconds(3),
				ChannelWashTime: unit.Seconds(5), CPU: 10 * time.Millisecond},
			BA: core.Metrics{ExecutionTime: unit.Seconds(30), Utilization: 0.478,
				ChannelLength: 420 * unit.Millimetre, CacheTime: unit.Seconds(4),
				ChannelWashTime: unit.Seconds(8), CPU: 12 * time.Millisecond},
		},
		{
			Benchmark: "CPA", Ops: 55, Alloc: "(8,0,0,2)",
			Ours: core.Metrics{ExecutionTime: unit.Seconds(96), Utilization: 0.695,
				ChannelLength: 1490 * unit.Millimetre, CacheTime: unit.Seconds(20),
				ChannelWashTime: unit.Seconds(50), CPU: 20 * time.Millisecond},
			BA: core.Metrics{ExecutionTime: unit.Seconds(102), Utilization: 0.574,
				ChannelLength: 1530 * unit.Millimetre, CacheTime: unit.Seconds(60),
				ChannelWashTime: unit.Seconds(90), CPU: 30 * time.Millisecond},
		},
	}
}

func TestImp(t *testing.T) {
	if got := Imp(96, 102); got < 5.8 || got > 6.0 {
		t.Errorf("Imp(96,102) = %v, want ~5.9 as in Table I", got)
	}
	if got := Imp(5, 0); got != 0 {
		t.Errorf("Imp with zero baseline = %v, want 0", got)
	}
	if got := ImpGain(0.695, 0.574); got < 21 || got > 21.2 {
		t.Errorf("ImpGain(0.695,0.574) = %v, want ~21.1 as in Table I", got)
	}
}

func TestTableIRendering(t *testing.T) {
	out := TableI(fakeRows())
	for _, want := range []string{"TABLE I", "PCR", "CPA", "(8,0,0,2)", "Average", "96.0", "102.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableI missing %q:\n%s", want, out)
		}
	}
	// PCR ties → 0.0 improvement must appear.
	if !strings.Contains(out, "0.0") {
		t.Error("tied benchmark should render 0.0 improvement")
	}
}

func TestFigRendering(t *testing.T) {
	f8 := Fig(fakeRows(), Fig8CacheTime)
	if !strings.Contains(f8, "Fig. 8") || !strings.Contains(f8, "#") || !strings.Contains(f8, "=") {
		t.Errorf("Fig 8 malformed:\n%s", f8)
	}
	f9 := Fig(fakeRows(), Fig9WashTime)
	if !strings.Contains(f9, "Fig. 9") {
		t.Errorf("Fig 9 malformed:\n%s", f9)
	}
	// The largest value must occupy the full bar width; bars scale.
	if strings.Count(f9, "=") <= strings.Count(f8, "=") && false {
		t.Log("bar scaling differs per figure (expected)")
	}
}

func TestFigHandlesAllZero(t *testing.T) {
	rows := []Row{{Benchmark: "Z"}}
	out := Fig(rows, Fig8CacheTime)
	if !strings.Contains(out, "Z") {
		t.Errorf("zero-value fig malformed:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV(fakeRows())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,") {
		t.Error("missing CSV header")
	}
	if !strings.Contains(lines[2], "CPA") {
		t.Error("missing CPA row")
	}
	wantCols := strings.Count(lines[0], ",")
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != wantCols {
			t.Errorf("row %d has wrong column count", i+1)
		}
	}
}

// TestRunSmallSubset runs the real pipeline on the two smallest
// benchmarks to exercise Run end to end.
func TestRunSmallSubset(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Place.Imax = 30
	benches := []benchdata.Benchmark{benchdata.PCR(), benchdata.IVD()}
	rows, err := Run(benches, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ours.ExecutionTime <= 0 || r.BA.ExecutionTime <= 0 {
			t.Errorf("%s: missing metrics", r.Benchmark)
		}
		if r.Ours.ExecutionTime > r.BA.ExecutionTime {
			t.Errorf("%s: ours slower than BA", r.Benchmark)
		}
	}
	out := TableI(rows)
	if !strings.Contains(out, "PCR") || !strings.Contains(out, "IVD") {
		t.Error("table missing benchmarks")
	}
}

// TestRunWorkersMatchesSequential checks the pipeline's determinism
// contract: any pool size yields the same rows as workers=1. CPU wall
// times legitimately vary per run, so they are zeroed before comparing.
func TestRunWorkersMatchesSequential(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Place.Imax = 30
	benches := []benchdata.Benchmark{benchdata.PCR(), benchdata.IVD(), benchdata.CPA()}
	strip := func(rows []Row) []Row {
		out := make([]Row, len(rows))
		for i, r := range rows {
			r.Ours.CPU, r.BA.CPU = 0, 0
			out[i] = r
		}
		return out
	}
	seq, err := RunWorkers(benches, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := RunWorkers(benches, opts, workers)
		if err != nil {
			t.Fatal(err)
		}
		a, b := strip(seq), strip(par)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("workers=%d: row %d differs\nseq: %+v\npar: %+v", workers, i, a[i], b[i])
			}
		}
	}
}

// TestRunWorkersReportsFirstError forces failures (non-covering
// allocations) and checks the earliest benchmark's error is the one
// reported, regardless of which worker finishes first.
func TestRunWorkersReportsFirstError(t *testing.T) {
	bad := func(bm benchdata.Benchmark) benchdata.Benchmark {
		bm.Alloc = chip.Allocation{} // covers nothing
		return bm
	}
	benches := []benchdata.Benchmark{benchdata.PCR(), bad(benchdata.IVD()), bad(benchdata.CPA())}
	opts := core.DefaultOptions()
	opts.Place.Imax = 30
	_, err := RunWorkers(benches, opts, 3)
	if err == nil {
		t.Fatal("expected an error from non-covering allocations")
	}
	if !strings.Contains(err.Error(), "IVD") {
		t.Errorf("error should come from IVD (first failing index), got: %v", err)
	}
}

func TestMarkdown(t *testing.T) {
	out := Markdown(fakeRows())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header + separator + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "| Benchmark |") || !strings.HasPrefix(lines[1], "|---") {
		t.Error("markdown header malformed")
	}
	if !strings.Contains(out, "| CPA |") {
		t.Error("missing CPA row")
	}
	// Cell counts consistent per row.
	want := strings.Count(lines[0], "|")
	for i, l := range lines {
		if strings.Count(l, "|") != want {
			t.Errorf("row %d has inconsistent cell count", i)
		}
	}
}
