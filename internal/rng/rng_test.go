package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %v, want near 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + s.Intn(50)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(5)
	f1 := a.Fork()
	// Recreate: same parent seed, same draws, must give identical fork.
	b := New(5)
	f2 := b.Fork()
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatal("forks from identical parents diverged")
		}
	}
	// And the fork's stream must differ from the parent's.
	c, d := New(9), New(9).Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("fork stream equals parent stream at %d positions", same)
	}
}
