package route

import "repro/internal/chip"

// The A* searches here are allocation-free on their hot path: all
// per-search state (g-scores, parents, start/target marks, the open
// heap and the BFS queue) lives in scratch slices and is invalidated in
// O(1) by bumping a generation stamp instead of being reallocated per
// task. The only allocations left are the returned path and the
// per-destination heuristic field, which is computed once per component
// and cached for the lifetime of the grid. A search mutates only its
// scratch, so several searches may run concurrently against one Grid as
// long as each owns a private scratch, nothing commits meanwhile, and
// every heuristic field was precomputed — the contract of the parallel
// wave router in parallel.go. The Grid's embedded g.sc serves the
// sequential paths.

// scratch is the reusable per-search state.
type scratch struct {
	gScore []float64 // best known path cost, valid when mark == gen
	parent []int32   // predecessor cell index, valid when mark == gen
	mark   []uint32  // generation stamp for gScore/parent
	smark  []uint32  // generation stamp: cell is a search start
	tmark  []uint32  // generation stamp: cell is a search target
	gen    uint32
	heap   []heapNode
	queue  []int32     // BFS worklist for heuristic fields
	stats  searchStats // telemetry counters, reset per reported search
	// Read tracking for speculative parallel routing: when track is set,
	// usableAt records every cell index it probes (deduplicated by rmark)
	// into reads. A speculative search is exactly reproducible against a
	// later grid state iff none of its read cells were committed to in
	// between — weights and slots are only ever written on committed path
	// cells, and the search consults them only through tracked probes.
	track bool
	rmark []uint32 // generation stamp: cell already in reads
	reads []int32  // cell indices probed this search
}

// searchStats accumulates per-search telemetry. The counters are plain
// integers bumped on branches the search already takes — they never
// influence control flow, so an instrumented search expands exactly the
// same nodes as an uninstrumented one.
type searchStats struct {
	expanded      int // nodes popped and expanded (stale entries excluded)
	heapPeak      int // maximum open-heap length
	slotConflicts int // cell probes rejected by time-slot overlap
}

func newScratch(n int) scratch {
	return scratch{
		gScore: make([]float64, n),
		parent: make([]int32, n),
		mark:   make([]uint32, n),
		smark:  make([]uint32, n),
		tmark:  make([]uint32, n),
		rmark:  make([]uint32, n),
	}
}

// ensure grows the scratch to cover n cells, keeping existing backing
// arrays when their capacity suffices. Entries beyond the previous length
// are pristine (all-zero) by the reset invariant, so generation stamps
// stay sound across reuse.
func (sc *scratch) ensure(n int) {
	if cap(sc.gScore) < n {
		*sc = scratch{
			gScore: make([]float64, n),
			parent: make([]int32, n),
			mark:   make([]uint32, n),
			smark:  make([]uint32, n),
			tmark:  make([]uint32, n),
			rmark:  make([]uint32, n),
		}
		return
	}
	sc.gScore = sc.gScore[:n]
	sc.parent = sc.parent[:n]
	sc.mark = sc.mark[:n]
	sc.smark = sc.smark[:n]
	sc.tmark = sc.tmark[:n]
	sc.rmark = sc.rmark[:n]
}

// reset scrubs every generation-stamped array and rewinds the generation
// so the scratch can be pooled and reused on a different grid. Only the
// current length is cleared: cells beyond it were either never written or
// cleared by an earlier reset, which keeps the whole capacity clean — the
// invariant ensure relies on.
func (sc *scratch) reset() {
	clear(sc.mark)
	clear(sc.smark)
	clear(sc.tmark)
	clear(sc.rmark)
	sc.gen = 0
	sc.heap = sc.heap[:0]
	sc.queue = sc.queue[:0]
	sc.reads = sc.reads[:0]
	sc.track = false
	sc.stats = searchStats{}
}

// heapNode is a priority-queue entry; order breaks float ties
// deterministically (FIFO among equals).
type heapNode struct {
	f     float64
	g     float64
	idx   int32
	order int32
}

func heapNodeLess(a, b heapNode) bool {
	if a.f != b.f {
		return a.f < b.f
	}
	return a.order < b.order
}

// hpush adds a node to the open heap.
func (sc *scratch) hpush(n heapNode) {
	sc.heap = append(sc.heap, n)
	if len(sc.heap) > sc.stats.heapPeak {
		sc.stats.heapPeak = len(sc.heap)
	}
	h := sc.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapNodeLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// hpop removes and returns the minimum node. The (f, order) key is a
// strict total order (order is unique per push), so the pop sequence is
// independent of the heap implementation.
func (sc *scratch) hpop() heapNode {
	h := sc.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	sc.heap = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && heapNodeLess(h[l], h[small]) {
			small = l
		}
		if r < n && heapNodeLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// hfield returns the heuristic distance field of a destination component:
// for every grid cell, the exact Manhattan distance to the nearest port
// cell of the component's ring, ignoring obstacles — the same value the
// per-node min-over-ring scan used to produce, precomputed once by
// multi-source BFS (on an unobstructed 4-connected grid, BFS distance IS
// Manhattan distance to the nearest source) and then read in O(1) per
// node. Rings never change after NewGrid, so the field is cached for the
// grid's lifetime.
func (g *Grid) hfield(comp chip.CompID) []int32 {
	if f := g.hfields[comp]; f != nil {
		return f
	}
	f := make([]int32, g.W*g.H)
	for i := range f {
		f[i] = -1
	}
	q := g.sc.queue[:0]
	for _, c := range g.rings[comp] {
		i := int32(g.idx(c.X, c.Y))
		f[i] = 0
		q = append(q, i)
	}
	w := int32(g.W)
	for head := 0; head < len(q); head++ {
		i := q[head]
		d := f[i] + 1
		x := i % w
		if x > 0 && f[i-1] < 0 {
			f[i-1] = d
			q = append(q, i-1)
		}
		if x < w-1 && f[i+1] < 0 {
			f[i+1] = d
			q = append(q, i+1)
		}
		if j := i - w; j >= 0 && f[j] < 0 {
			f[j] = d
			q = append(q, j)
		}
		if j := i + w; j < int32(len(f)) && f[j] < 0 {
			f[j] = d
			q = append(q, j)
		}
	}
	g.sc.queue = q[:0]
	g.hfields[comp] = f
	return f
}

// cellOf converts a packed cell index back to coordinates.
func (g *Grid) cellOf(i int32) Cell { return Cell{int(i) % g.W, int(i) / g.W} }

// reconstruct walks the parent chain from the goal back to a cell
// stamped as a search start and returns the forward path.
func (g *Grid) reconstruct(sc *scratch, goal int32, gen uint32) []Cell {
	var path []Cell
	for k := goal; ; k = sc.parent[k] {
		path = append(path, g.cellOf(k))
		if sc.smark[k] == gen {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// routeTask finds a feasible minimum-cost path for a task from any port
// cell of its source component to any port cell of its destination —
// components expose their whole free boundary ring as flow ports, so
// concurrent tasks at one component need not contend for a single cell.
func (g *Grid) routeTask(t Task, useWeights bool) []Cell {
	return g.routeTaskSc(&g.sc, t, useWeights)
}

// routeTaskSc is routeTask against an explicit scratch. With a private
// scratch it only reads the Grid (given the task's heuristic field is
// already cached), which is what lets the wave router run several
// searches concurrently.
func (g *Grid) routeTaskSc(sc *scratch, t Task, useWeights bool) []Cell {
	hold := t.HoldWindow()
	sc.gen++
	gen := sc.gen
	sc.reads = sc.reads[:0]
	for _, c := range g.rings[t.To] {
		sc.tmark[g.idx(c.X, c.Y)] = gen
	}
	// Degenerate case (including From == To, a channel-cache round trip):
	// a single usable cell shared by both rings is a complete path.
	for _, c := range g.rings[t.From] {
		i := g.idx(c.X, c.Y)
		if sc.tmark[i] == gen && g.usableAt(sc, i, hold, t.Fluid.Name) {
			return []Cell{c}
		}
	}

	hd := g.hfield(t.To)
	sc.heap = sc.heap[:0]
	order := int32(0)
	for _, c := range g.rings[t.From] {
		// The first path cell also hosts any channel-cache park, so it
		// must be free for the extended hold window.
		i := g.idx(c.X, c.Y)
		if !g.usableAt(sc, i, hold, t.Fluid.Name) {
			continue
		}
		k := int32(i)
		sc.gScore[k] = 0
		sc.mark[k] = gen
		sc.smark[k] = gen
		sc.hpush(heapNode{f: float64(hd[k]), g: 0, idx: k, order: order})
		order++
	}

	for len(sc.heap) > 0 {
		cur := sc.hpop()
		ck := cur.idx
		if cur.g > sc.gScore[ck] {
			continue // stale entry
		}
		sc.stats.expanded++
		if sc.tmark[ck] == gen {
			return g.reconstruct(sc, ck, gen)
		}
		x, y := int(ck)%g.W, int(ck)/g.W
		for _, d := range [4][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || nx >= g.W || ny < 0 || ny >= g.H {
				continue
			}
			ni := g.idx(nx, ny)
			if !g.usableAt(sc, ni, t.Window, t.Fluid.Name) {
				continue
			}
			step := 1.0
			if useWeights {
				step += g.weight[ni]
			}
			ng := cur.g + step
			nk := int32(ni)
			if sc.mark[nk] == gen && ng >= sc.gScore[nk] {
				continue
			}
			sc.gScore[nk] = ng
			sc.parent[nk] = ck
			sc.mark[nk] = gen
			sc.hpush(heapNode{f: ng + float64(hd[nk]), g: ng, idx: nk, order: order})
			order++
		}
	}
	return nil
}

// astar finds a feasible minimum-cost path between two cells for a task.
// The cost of entering a cell is 1 (one unit of channel length) plus,
// when useWeights is set, the cell's wash-time weight w(k) as in Eq. 5.
// Cells whose time slots conflict with the task window are excluded
// (the +∞ branch of Eq. 5). The heuristic is the Manhattan distance,
// which is admissible because every step costs at least 1.
func (g *Grid) astar(t Task, from, to Cell, useWeights bool) []Cell {
	if from == to {
		if g.usable(from, t.Window, t.Fluid.Name) {
			return []Cell{from}
		}
		return nil
	}
	manh := func(x, y int) float64 {
		dx, dy := x-to.X, y-to.Y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return float64(dx + dy)
	}
	if !g.usable(from, t.Window, t.Fluid.Name) {
		return nil
	}
	sc := &g.sc
	sc.gen++
	gen := sc.gen
	sc.reads = sc.reads[:0]
	sc.heap = sc.heap[:0]
	fk := int32(g.idx(from.X, from.Y))
	sc.gScore[fk] = 0
	sc.mark[fk] = gen
	sc.smark[fk] = gen
	sc.hpush(heapNode{f: manh(from.X, from.Y), g: 0, idx: fk, order: 0})
	order := int32(1)
	goal := int32(g.idx(to.X, to.Y))

	for len(sc.heap) > 0 {
		cur := sc.hpop()
		ck := cur.idx
		if cur.g > sc.gScore[ck] {
			continue // stale entry
		}
		sc.stats.expanded++
		if ck == goal {
			return g.reconstruct(sc, ck, gen)
		}
		x, y := int(ck)%g.W, int(ck)/g.W
		for _, d := range [4][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || nx >= g.W || ny < 0 || ny >= g.H {
				continue
			}
			ni := g.idx(nx, ny)
			if !g.usableAt(sc, ni, t.Window, t.Fluid.Name) {
				continue
			}
			step := 1.0
			if useWeights {
				step += g.weight[ni]
			}
			ng := cur.g + step
			nk := int32(ni)
			if sc.mark[nk] == gen && ng >= sc.gScore[nk] {
				continue
			}
			sc.gScore[nk] = ng
			sc.parent[nk] = ck
			sc.mark[nk] = gen
			sc.hpush(heapNode{f: ng + manh(nx, ny), g: ng, idx: nk, order: order})
			order++
		}
	}
	return nil
}
