package route

import (
	"container/heap"
)

// routeTask finds a feasible minimum-cost path for a task from any port
// cell of its source component to any port cell of its destination —
// components expose their whole free boundary ring as flow ports, so
// concurrent tasks at one component need not contend for a single cell.
func (g *Grid) routeTask(t Task, useWeights bool) []Cell {
	hold := t.HoldWindow()
	targets := make(map[Cell]bool)
	for _, c := range g.rings[t.To] {
		targets[c] = true
	}
	// Degenerate case (including From == To, a channel-cache round trip):
	// a single usable cell shared by both rings is a complete path.
	for _, c := range g.rings[t.From] {
		if targets[c] && g.usable(c, hold, t.Fluid.Name, t.Wash) {
			return []Cell{c}
		}
	}

	type nodeKey int
	key := func(c Cell) nodeKey { return nodeKey(c.Y*g.W + c.X) }
	gScore := make(map[nodeKey]float64)
	parent := make(map[nodeKey]Cell)
	start := make(map[nodeKey]bool)
	open := &cellHeap{}
	heap.Init(open)

	h := func(c Cell) float64 {
		best := -1
		for tc := range targets {
			dx, dy := c.X-tc.X, c.Y-tc.Y
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			if d := dx + dy; best < 0 || d < best {
				best = d
			}
		}
		return float64(best)
	}

	order := 0
	for _, c := range g.rings[t.From] {
		// The first path cell also hosts any channel-cache park, so it
		// must be free for the extended hold window.
		if !g.usable(c, hold, t.Fluid.Name, t.Wash) {
			continue
		}
		k := key(c)
		gScore[k] = 0
		start[k] = true
		heap.Push(open, cellNode{c: c, f: h(c), g: 0, order: order})
		order++
	}

	for open.Len() > 0 {
		cur := heap.Pop(open).(cellNode)
		ck := key(cur.c)
		if cur.g > gScore[ck] {
			continue
		}
		if targets[cur.c] {
			var path []Cell
			c := cur.c
			for {
				path = append(path, c)
				if start[key(c)] {
					break
				}
				c = parent[key(c)]
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		for _, d := range [4]Cell{{0, -1}, {1, 0}, {0, 1}, {-1, 0}} {
			n := Cell{cur.c.X + d.X, cur.c.Y + d.Y}
			if !g.In(n) || !g.usable(n, t.Window, t.Fluid.Name, t.Wash) {
				continue
			}
			step := 1.0
			if useWeights {
				step += g.Weight(n)
			}
			ng := cur.g + step
			nk := key(n)
			if prev, seen := gScore[nk]; seen && ng >= prev {
				continue
			}
			gScore[nk] = ng
			parent[nk] = cur.c
			heap.Push(open, cellNode{c: n, f: ng + h(n), g: ng, order: order})
			order++
		}
	}
	return nil
}

// astar finds a feasible minimum-cost path between two cells for a task.
// The cost of entering a cell is 1 (one unit of channel length) plus,
// when useWeights is set, the cell's wash-time weight w(k) as in Eq. 5.
// Cells whose time slots conflict with the task window are excluded
// (the +∞ branch of Eq. 5). The heuristic is the Manhattan distance,
// which is admissible because every step costs at least 1.
func (g *Grid) astar(t Task, from, to Cell, useWeights bool) []Cell {
	if from == to {
		if g.usable(from, t.Window, t.Fluid.Name, t.Wash) {
			return []Cell{from}
		}
		return nil
	}
	type nodeKey int
	key := func(c Cell) nodeKey { return nodeKey(c.Y*g.W + c.X) }

	gScore := make(map[nodeKey]float64)
	parent := make(map[nodeKey]Cell)
	open := &cellHeap{}
	heap.Init(open)

	h := func(c Cell) float64 {
		dx := c.X - to.X
		if dx < 0 {
			dx = -dx
		}
		dy := c.Y - to.Y
		if dy < 0 {
			dy = -dy
		}
		return float64(dx + dy)
	}

	if !g.usable(from, t.Window, t.Fluid.Name, t.Wash) {
		return nil
	}
	gScore[key(from)] = 0
	heap.Push(open, cellNode{c: from, f: h(from), g: 0, order: 0})
	order := 1

	for open.Len() > 0 {
		cur := heap.Pop(open).(cellNode)
		ck := key(cur.c)
		if cur.g > gScore[ck] {
			continue // stale entry
		}
		if cur.c == to {
			// Reconstruct.
			var path []Cell
			c := to
			for c != from {
				path = append(path, c)
				c = parent[key(c)]
			}
			path = append(path, from)
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		for _, d := range [4]Cell{{0, -1}, {1, 0}, {0, 1}, {-1, 0}} {
			n := Cell{cur.c.X + d.X, cur.c.Y + d.Y}
			if !g.In(n) {
				continue
			}
			if !g.usable(n, t.Window, t.Fluid.Name, t.Wash) {
				continue
			}
			step := 1.0
			if useWeights {
				step += g.Weight(n)
			}
			ng := cur.g + step
			nk := key(n)
			if prev, seen := gScore[nk]; seen && ng >= prev {
				continue
			}
			gScore[nk] = ng
			parent[nk] = cur.c
			heap.Push(open, cellNode{c: n, f: ng + h(n), g: ng, order: order})
			order++
		}
	}
	return nil
}

// cellNode is a priority-queue entry; order breaks float ties
// deterministically (FIFO among equals).
type cellNode struct {
	c     Cell
	f     float64
	g     float64
	order int
}

type cellHeap []cellNode

func (h cellHeap) Len() int { return len(h) }
func (h cellHeap) Less(i, j int) bool {
	if h[i].f != h[j].f {
		return h[i].f < h[j].f
	}
	return h[i].order < h[j].order
}
func (h cellHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x interface{}) { *h = append(*h, x.(cellNode)) }
func (h *cellHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
