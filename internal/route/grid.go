// Package route implements the flow-channel routing stage of the paper's
// physical design flow (Section IV-B-2, Algorithm 2 lines 9-18).
//
// The routing plane is partitioned into rectangular grid cells. Every cell
// ce_i carries a weight w(i), initialised to the constant w_e and updated
// after each routed task to the wash time of the residue the task leaves
// behind, and a set T_i of occupancy time slots. Transportation tasks are
// routed one by one in non-decreasing start-time order with an A* search
// whose cost follows Eq. 5: path length so far + distance-to-target
// estimate + cell weight, with cells whose time slots intersect the
// task's interval excluded outright. Cheap-to-wash cells attract later
// tasks, lengthening shared channel segments, while the time slots
// eliminate transportation conflicts among parallel tasks.
package route

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/fluid"
	"repro/internal/interval"
	"repro/internal/place"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// Params configures the router.
type Params struct {
	// We is the initial cell weight w_e (the paper uses 10).
	We float64
	// Pitch is the physical length of one grid-cell edge; total channel
	// length is reported as routed edges × Pitch.
	Pitch unit.Length
	// RipUpRounds bounds the local rip-up-and-reroute recovery the
	// proposed router may attempt when a task finds no conflict-free
	// path: up to RipUpRounds rounds of evicting already-routed tasks
	// around the stuck task's terminals (widening the search box each
	// round) before giving up. Zero — the default and the published
	// algorithm — disables recovery entirely and reproduces the
	// historical behaviour bit for bit; only the degradation ladder of
	// internal/core arms it.
	RipUpRounds int
	// Workers, when >= 2, routes waves of time-slot-disjoint tasks
	// concurrently with speculative per-worker searches that are validated
	// against the deterministic sequential commit order (see parallel.go).
	// The routed paths are byte-identical to the sequential router's for
	// every Workers value; 0 or 1 — the default — runs the historical
	// sequential loop outright.
	Workers int
}

// DefaultParams returns the published parameters: w_e = 10 and a 10 mm
// cell pitch.
func DefaultParams() Params {
	return Params{We: 10, Pitch: 10 * unit.Millimetre}
}

// Cell is a grid coordinate.
type Cell struct{ X, Y int }

// slot is one occupancy entry of a cell: the interval a fluid (and its
// subsequent residue) holds the cell, plus the wash its residue needs.
type slot struct {
	iv    interval.Interval
	fluid string
	wash  unit.Time
	task  int
}

// Grid is the routing plane state.
type Grid struct {
	W, H    int
	pitch   unit.Length
	we      float64
	blocked []bool // component interiors
	weight  []float64
	slots   [][]slot
	ports   []Cell   // canonical port per component (display, tests)
	rings   [][]Cell // all free boundary cells per component: every one
	// is a usable flow port, so concurrent tasks at one component do not
	// contend for a single cell
	sc      scratch   // reusable A*/BFS state; see astar.go
	hfields [][]int32 // cached heuristic fields per destination component
}

// gridPool recycles Grid shells between routings. A NewGrid/release pair
// brackets every routing pass, so the big per-plane arrays (blocked,
// weight, slots and the A* scratch — five W×H slices plus one []slot
// header per cell) are allocated once per size class and reused across
// dilation retries, seed retries and served requests instead of being
// torn down per pass. release scrubs all mutable state, so a recycled
// grid is indistinguishable from a fresh one — determinism does not
// depend on pool hits.
var gridPool sync.Pool

// NewGrid builds the routing plane from a placement: component interiors
// are blocked, every free cell starts at weight w_e, and each component
// gets a port cell on its boundary ring.
func NewGrid(comps []chip.Component, pl *place.Placement, pr Params) (*Grid, error) {
	if pl == nil || pl.W <= 0 || pl.H <= 0 {
		return nil, fmt.Errorf("route: invalid placement plane")
	}
	if len(pl.Rects) != len(comps) {
		return nil, fmt.Errorf("route: placement has %d rects for %d components", len(pl.Rects), len(comps))
	}
	n := pl.W * pl.H
	g, _ := gridPool.Get().(*Grid)
	if g == nil {
		g = &Grid{}
	}
	g.W, g.H = pl.W, pl.H
	g.pitch, g.we = pr.Pitch, pr.We
	// Backing arrays survive in the pool at their released (clean) state:
	// growing past the capacity reallocates zeroed memory, while reslicing
	// within it exposes only cells release already scrubbed.
	if cap(g.blocked) < n {
		g.blocked = make([]bool, n)
		g.weight = make([]float64, n)
		g.slots = make([][]slot, n)
	} else {
		g.blocked = g.blocked[:n]
		g.weight = g.weight[:n]
		g.slots = g.slots[:n]
	}
	g.sc.ensure(n)
	g.ports = make([]Cell, len(comps))
	g.rings = make([][]Cell, len(comps))
	g.hfields = make([][]int32, len(comps))
	for i := range g.weight {
		g.weight[i] = pr.We
	}
	for _, r := range pl.Rects {
		for y := r.Y; y < r.Y+r.H; y++ {
			for x := r.X; x < r.X+r.W; x++ {
				if x < 0 || x >= g.W || y < 0 || y >= g.H {
					g.release()
					return nil, fmt.Errorf("route: component rect %+v outside plane", r)
				}
				g.blocked[g.idx(x, y)] = true
			}
		}
	}
	for c, r := range pl.Rects {
		// Flow ports: every free cell on the boundary ring plus the ring
		// one cell further out (short port stubs). The second ring both
		// multiplies port capacity and prevents a single line of busy
		// cells from sealing a component in.
		ring := g.freeRing(r)
		outer := g.freeRing(place.Rect{X: r.X - 1, Y: r.Y - 1, W: r.W + 2, H: r.H + 2})
		ring = append(ring, outer...)
		if len(ring) == 0 {
			g.release()
			return nil, fmt.Errorf("route: component %d at %+v has no free port cell", c, r)
		}
		g.rings[c] = dedupeCells(ring)
		g.ports[c] = g.rings[c][0]
	}
	return g, nil
}

// release scrubs the grid's mutable state and returns it to the pool.
// Callers must not touch the grid afterwards; nothing a routing Result
// carries aliases grid memory (paths and metrics are copied out), so the
// routing entry points release unconditionally on exit.
func (g *Grid) release() {
	clear(g.blocked)
	for i := range g.slots {
		g.slots[i] = g.slots[i][:0]
	}
	g.sc.reset()
	// Per-component headers are rebuilt per placement; drop them so the
	// pool retains only the size-class arrays.
	g.ports, g.rings, g.hfields = nil, nil, nil
	gridPool.Put(g)
}

// InjectDefects marks free routing cells defective according to the
// plan's route.cell.blocked point, modelling fabrication defects on the
// flow layer. Cells are evaluated once each in row-major order, so the
// defect pattern is a pure function of the plan seed and the grid shape.
// Component port-ring cells are exempt: a defect covering a whole ring
// would seal a component in — NewGrid rejects that as an invalid plane,
// not a routable-around defect — and partial ring damage adds nothing the
// interior defects don't already model. Returns the number of cells
// blocked.
func (g *Grid) InjectDefects(p *fault.Plan) int {
	if !p.Enabled() {
		return 0
	}
	exempt := make(map[Cell]bool)
	for _, ring := range g.rings {
		for _, c := range ring {
			exempt[c] = true
		}
	}
	n := 0
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			i := g.idx(x, y)
			if g.blocked[i] || exempt[Cell{X: x, Y: y}] {
				continue
			}
			if p.Fire(fault.RouteCellBlocked) {
				g.blocked[i] = true
				n++
			}
		}
	}
	return n
}

// dedupeCells removes duplicates while preserving order.
func dedupeCells(cs []Cell) []Cell {
	seen := make(map[Cell]bool, len(cs))
	out := cs[:0]
	for _, c := range cs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func (g *Grid) idx(x, y int) int { return y*g.W + x }

// In reports whether the cell lies on the plane.
func (g *Grid) In(c Cell) bool { return c.X >= 0 && c.X < g.W && c.Y >= 0 && c.Y < g.H }

// Blocked reports whether the cell is inside a component footprint.
func (g *Grid) Blocked(c Cell) bool { return g.blocked[g.idx(c.X, c.Y)] }

// Weight returns the current wash-time weight of the cell.
func (g *Grid) Weight(c Cell) float64 { return g.weight[g.idx(c.X, c.Y)] }

// Port returns the port cell assigned to the component.
func (g *Grid) Port(c chip.CompID) Cell { return g.ports[c] }

// freeRing returns the free in-bounds cells on the boundary ring of the
// rectangle, scanning the top edge, then right, bottom and left —
// deterministic and always outside the footprint.
func (g *Grid) freeRing(r place.Rect) []Cell {
	var ring []Cell
	for x := r.X; x < r.X+r.W; x++ {
		ring = append(ring, Cell{x, r.Y - 1})
	}
	for y := r.Y; y < r.Y+r.H; y++ {
		ring = append(ring, Cell{r.X + r.W, y})
	}
	for x := r.X; x < r.X+r.W; x++ {
		ring = append(ring, Cell{x, r.Y + r.H})
	}
	for y := r.Y; y < r.Y+r.H; y++ {
		ring = append(ring, Cell{r.X - 1, y})
	}
	var free []Cell
	for _, c := range ring {
		if g.In(c) && !g.Blocked(c) {
			free = append(free, c)
		}
	}
	return free
}

// Ring returns the usable port cells of the component: every free cell on
// its boundary. Treating the whole ring as flow ports lets concurrent
// tasks touch one component without contending for a single cell.
func (g *Grid) Ring(c chip.CompID) []Cell { return g.rings[c] }

// onRing reports whether cell c is a port cell of the component.
func (g *Grid) onRing(comp chip.CompID, c Cell) bool {
	for _, r := range g.rings[comp] {
		if r == c {
			return true
		}
	}
	return false
}

// usable reports whether the cell can carry a task occupying iv: per
// Eq. 5, a cell is excluded exactly when one of its existing time slots
// intersects the task's interval. Residue washing between sequential uses
// is not a hard feasibility constraint here — as in the paper, where the
// scheduler assumes a constant transportation time t_c and therefore
// cannot reserve wash windows on individual channel segments, washes are
// steered by the cell weights (cheap-to-wash and same-fluid cells attract
// reuse) and accounted in the total channel wash time of Fig. 9.
func (g *Grid) usable(c Cell, iv interval.Interval, fl string) bool {
	return g.usableAt(&g.sc, g.idx(c.X, c.Y), iv, fl)
}

// usableAt is usable keyed by packed cell index: the A* inner loop
// already has the index at hand, so the cell is resolved exactly once.
// The scratch receives the telemetry counters and, when read tracking is
// armed, the probe record — every grid cell whose mutable state (slots,
// weight) can influence the calling search goes through here, which is
// what makes the recorded read set a sound invalidation key for
// speculative parallel routing.
func (g *Grid) usableAt(sc *scratch, i int, iv interval.Interval, fl string) bool {
	if sc.track && sc.rmark[i] != sc.gen {
		sc.rmark[i] = sc.gen
		sc.reads = append(sc.reads, int32(i))
	}
	if g.blocked[i] {
		return false
	}
	for _, s := range g.slots[i] {
		if s.fluid == fl {
			// The same sample may share a channel with itself — aliquots
			// of one fluid neither contaminate nor physically conflict
			// with each other.
			continue
		}
		if s.iv.Overlaps(iv) {
			sc.stats.slotConflicts++
			return false
		}
	}
	return true
}

// commit records the task's occupancy along path and leaves its residue:
// cell weights become the residue's wash time (Fig. 7's updating process).
// The first cell carries the hold window (movement plus any channel-cache
// park); the remaining cells carry only the movement window.
func (g *Grid) commit(task int, path []Cell, move, hold interval.Interval, fl string, wash unit.Time) {
	if hold.Empty() {
		hold = move
	}
	for k, c := range path {
		iv := move
		if k == 0 {
			iv = hold
		}
		i := g.idx(c.X, c.Y)
		g.weight[i] = wash.Sec()
		g.slots[i] = append(g.slots[i], slot{iv: iv, fluid: fl, wash: wash, task: task})
	}
}

// clear removes all slots of the given task (used by the baseline's
// rip-up-and-reroute correction) and restores weights lazily: weights are
// only meaningful to the proposed router, which never rips up.
func (g *Grid) clear(task int) {
	for i := range g.slots {
		ss := g.slots[i][:0]
		for _, s := range g.slots[i] {
			if s.task != task {
				ss = append(ss, s)
			}
		}
		g.slots[i] = ss
	}
}

// conflictsOf returns the tasks whose committed slots intersect another
// task's slot anywhere on the grid (the transportation conflicts of
// Section II-C-2), as a sorted set. Same-fluid overlaps are not
// conflicts.
func (g *Grid) conflictsOf() []int {
	bad := map[int]bool{}
	for i := range g.slots {
		ss := g.slots[i]
		for a := 0; a < len(ss); a++ {
			for b := a + 1; b < len(ss); b++ {
				if ss[a].fluid != ss[b].fluid && ss[a].iv.Overlaps(ss[b].iv) {
					bad[ss[a].task], bad[ss[b].task] = true, true
				}
			}
		}
	}
	out := make([]int, 0, len(bad))
	for t := range bad {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// terminalBox returns the bounding box covering the port rings of the
// task's two terminals, expanded by m cells — the region whose congestion
// can make the task unroutable.
func (g *Grid) terminalBox(t Task, m int) (Cell, Cell) {
	lo := Cell{g.W, g.H}
	hi := Cell{0, 0}
	grow := func(cs []Cell) {
		for _, c := range cs {
			if c.X < lo.X {
				lo.X = c.X
			}
			if c.Y < lo.Y {
				lo.Y = c.Y
			}
			if c.X > hi.X {
				hi.X = c.X
			}
			if c.Y > hi.Y {
				hi.Y = c.Y
			}
		}
	}
	grow(g.rings[t.From])
	grow(g.rings[t.To])
	lo.X -= m
	lo.Y -= m
	hi.X += m
	hi.Y += m
	return lo, hi
}

// Task is the routing view of one transportation task.
type Task struct {
	ID   int
	From chip.CompID
	To   chip.CompID
	// Window is the movement window [Depart, Arrive): the whole path is
	// occupied while the fluid traverses it.
	Window interval.Interval
	// Hold extends the occupancy of the first path cell for fluids that
	// were parked in channel storage next to their source component:
	// [CacheStart, Arrive). Empty for direct transports.
	Hold  interval.Interval
	Fluid fluid.Fluid
	Wash  unit.Time
}

// HoldWindow returns the occupancy of the task's first path cell: the
// channel-cache park plus the movement, or just the movement when the
// fluid never cached.
func (t Task) HoldWindow() interval.Interval {
	if t.Hold.Empty() {
		return t.Window
	}
	return t.Hold
}

// TasksFrom converts a schedule's transports into routing tasks sorted by
// non-decreasing start time (Algorithm 2 line 11), tie-broken by ID.
func TasksFrom(r *schedule.Result) []Task {
	ts := make([]Task, 0, len(r.Transports))
	for _, tr := range r.Transports {
		start := tr.Depart
		if tr.FromChannel {
			start = tr.CacheStart
		}
		t := Task{
			ID:     tr.ID,
			From:   tr.From,
			To:     tr.To,
			Window: interval.Make(tr.Depart, tr.Arrive),
			Fluid:  tr.Fluid,
			Wash:   tr.WashTime,
		}
		if tr.FromChannel {
			t.Hold = interval.Make(start, tr.Arrive)
		}
		ts = append(ts, t)
	}
	sort.SliceStable(ts, func(i, j int) bool {
		a, b := ts[i].HoldWindow().Start, ts[j].HoldWindow().Start
		if a != b {
			return a < b
		}
		return ts[i].ID < ts[j].ID
	})
	return ts
}
