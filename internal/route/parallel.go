package route

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Concurrent routing of time-slot-disjoint tasks.
//
// The sequential router commits tasks in non-decreasing start-time order,
// and every commit mutates the grid twice over: it appends occupancy
// slots along the path (the Eq. 5 feasibility state) and overwrites the
// path cells' weights with the residue wash time (the Eq. 5 cost state).
// Slot-disjointness — tasks whose Eq. 5 hold intervals don't intersect —
// guarantees the *feasibility* checks of wave peers cannot interact, but
// the weight writes can still steer a later task's cheapest path. A
// plain "route disjoint tasks concurrently" scheme would therefore drift
// from the sequential solution.
//
// The wave router closes that gap with speculation + validation:
//
//  1. A wave is the longest run (bounded by waveCap) of consecutive
//     pending tasks whose hold windows are pairwise disjoint.
//  2. Every wave task is routed speculatively against the frozen grid
//     (commits happen only between waves) on its own pooled scratch,
//     with read tracking armed: the scratch records every cell whose
//     slots/weight the search consulted. The grid is strictly read-only
//     during this phase — per-destination heuristic fields are
//     precomputed — so the fan-out is data-race-free by construction.
//  3. Tasks then commit strictly in sequential order. A speculative path
//     is accepted iff none of its recorded reads lies on a cell an
//     earlier wave member just committed to; otherwise the task is
//     re-routed on the spot against the up-to-date grid, exactly as the
//     sequential router would have.
//
// A search is a pure function of the cells it reads, so an accepted
// speculative path is bit-identical to what the sequential router would
// have produced, and a rejected one is recomputed sequentially —
// the overall Result is byte-identical to routeAll's sequential loop for
// every Workers value. TestParallelRoutingMatchesSequential pins this on
// all pinned benchmarks.

// waveCap bounds how far ahead of the commit frontier the router
// speculates: enough to keep the workers fed, small enough that a stale
// speculation wastes little work.
func waveCap(workers int) int { return 2 * workers }

// routeAllWaves is routeAll's parallel drive loop: it walks the sorted
// task list in contiguous waves of pairwise slot-disjoint tasks, routing
// each wave speculatively in parallel and falling back to plain
// sequential routing for single-task "waves". ctx is polled once per
// wave. The appended Routes are byte-identical to the sequential loop's.
func (g *Grid) routeAllWaves(ctx context.Context, tasks []Task, res *Result, pr Params, weighted bool, tr *obs.Tracer) error {
	workers := pr.Workers
	dirty := make([]uint32, g.W*g.H)
	var dgen uint32
	maxLen := waveCap(workers)
	for lo := 0; lo < len(tasks); {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("route: aborted before task %d: %w", tasks[lo].ID, err)
		}
		hi := disjointRun(tasks, lo, maxLen)
		if hi-lo < 2 {
			t := tasks[lo]
			p := g.routeTask(t, weighted)
			if p == nil && pr.RipUpRounds > 0 {
				p = ripUpRecover(g, res, t, weighted, pr.RipUpRounds, tr)
			}
			if p == nil {
				return noPathError(t)
			}
			g.commit(t.ID, p, t.Window, t.Hold, t.Fluid.Name, t.Wash)
			res.Routes = append(res.Routes, RoutedTask{Task: t, Path: p})
			lo = hi
			continue
		}
		accepted, err := g.routeWave(tasks, lo, hi, weighted, workers, res, pr, dirty, &dgen, tr)
		tr.Instant(obs.CatRoute, "route.wave",
			obs.Arg{Key: "width", Val: float64(hi - lo)},
			obs.Arg{Key: "spec", Val: float64(accepted)},
			obs.Arg{Key: "rerouted", Val: float64(hi - lo - accepted)})
		if err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// specResult is one wave member's speculative outcome.
type specResult struct {
	path  []Cell
	reads []int32
}

// scratchPool recycles read-tracking scratches across waves and routing
// passes (they are too short-lived to tie to one Grid).
var scratchPool sync.Pool

func getScratch(n int) *scratch {
	sc, _ := scratchPool.Get().(*scratch)
	if sc == nil {
		s := newScratch(n)
		sc = &s
	} else {
		sc.ensure(n)
	}
	sc.track = true
	return sc
}

func putScratch(sc *scratch) {
	sc.reset()
	scratchPool.Put(sc)
}

// routeWave routes tasks[lo:hi] (a pairwise slot-disjoint wave, hi-lo >=
// 2) with speculative parallel searches and a deterministic in-order
// commit. dirty is a W*H generation-stamp array owned by the caller;
// *dgen is bumped once per wave. Returns the number of speculative paths
// accepted, or an error when some task has no conflict-free path (the
// same failure the sequential loop would report — recovery and dilation
// stay with the caller).
func (g *Grid) routeWave(tasks []Task, lo, hi int, weighted bool, workers int,
	res *Result, pr Params, dirty []uint32, dgen *uint32, tr *obs.Tracer) (int, error) {

	// Heuristic fields are lazily cached on first use; force them in now,
	// sequentially, so the parallel phase never writes the cache.
	for i := lo; i < hi; i++ {
		g.hfield(tasks[i].To)
	}

	n := hi - lo
	specs := make([]specResult, n)
	workers = min(workers, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := getScratch(g.W * g.H)
			defer putScratch(sc)
			for i := range jobs {
				p := g.routeTaskSc(sc, tasks[lo+i], weighted)
				// Snapshot the read set: the scratch is reused for the
				// worker's next job, the record must outlive it.
				specs[i] = specResult{path: p, reads: append([]int32(nil), sc.reads...)}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Deterministic merge: commit in task order, re-routing any member
	// whose speculation was invalidated by an earlier commit of this wave.
	*dgen++
	accepted := 0
	for i := 0; i < n; i++ {
		t := tasks[lo+i]
		p := specs[i].path
		valid := p != nil
		for _, ci := range specs[i].reads {
			if dirty[ci] == *dgen {
				valid = false
				break
			}
		}
		if !valid {
			// Same fallback ladder as the sequential loop: fresh search
			// against the current grid, then bounded rip-up recovery.
			p = g.routeTask(t, weighted)
			if p == nil && pr.RipUpRounds > 0 {
				p = ripUpRecover(g, res, t, weighted, pr.RipUpRounds, tr)
			}
			if p == nil {
				return accepted, noPathError(t)
			}
		} else {
			accepted++
		}
		g.commit(t.ID, p, t.Window, t.Hold, t.Fluid.Name, t.Wash)
		res.Routes = append(res.Routes, RoutedTask{Task: t, Path: p})
		for _, c := range p {
			dirty[g.idx(c.X, c.Y)] = *dgen
		}
	}
	return accepted, nil
}

// disjointRun returns the end (exclusive) of the longest wave starting at
// lo: consecutive tasks whose hold windows are pairwise disjoint, capped
// at maxLen. The scan stops at the first task overlapping any member —
// waves must stay contiguous, because commits happen in task order.
func disjointRun(tasks []Task, lo, maxLen int) int {
	hi := lo + 1
	for hi < len(tasks) && hi-lo < maxLen {
		cand := tasks[hi].HoldWindow()
		for i := lo; i < hi; i++ {
			if tasks[i].HoldWindow().Overlaps(cand) {
				return hi
			}
		}
		hi++
	}
	return hi
}
