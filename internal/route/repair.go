package route

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/schedule"
)

// RepairSpec describes an incremental re-routing request after a
// mid-assay fault report: which plane cells died, which transports have
// physically happened (their paths are history and immutable), and what
// the previous plan routed everything through (for stability: suffix
// transports keep their old channel when it still works).
type RepairSpec struct {
	// Defects are plane cells reported failed. No re-planned path may use
	// them; frozen paths may (the fluid passed through before the cell
	// died).
	Defects []Cell
	// Frozen marks task IDs (== transport IDs) whose previous path must
	// be committed verbatim. Every frozen ID must have a PrevPaths entry.
	Frozen map[int]bool
	// PrevPaths maps task ID -> the path the previous solution used.
	// Non-frozen entries are reused when still defect-free and
	// conflict-free, so a repair perturbs as little of the chip as the
	// fault demands.
	PrevPaths map[int][]Cell
}

// Repair routes a repaired schedule on the surviving plane: frozen tasks
// are committed exactly as previously routed, the reported defect cells
// are blocked, and every remaining transport is routed with the proposed
// conflict-aware weighted A* — reusing its previous path when that path
// is still feasible, and escalating through bounded rip-up recovery
// (Params.RipUpRounds) of non-frozen neighbours otherwise.
//
// Repair is always sequential: it never consults Params.Workers, so a
// repair is deterministic in its inputs at any serving pool size.
func Repair(ctx context.Context, sched *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params, spec RepairSpec) (*Result, error) {
	g, err := NewGrid(comps, pl, pr)
	if err != nil {
		return nil, err
	}
	defer g.release()
	tasks := TasksFrom(sched)
	res := &Result{GridW: g.W, GridH: g.H, Pitch: pr.Pitch}
	tr := obs.From(ctx)
	flt := fault.From(ctx)

	// Chaos-plan defects first (same stream semantics as routeAll), then
	// the explicitly reported cells — which, unlike sampled defects, may
	// hit port-ring cells: a dead valve next to a component is exactly the
	// kind of fault a client reports.
	defects := g.InjectDefects(flt)
	for _, c := range spec.Defects {
		if g.In(c) && !g.blocked[g.idx(c.X, c.Y)] {
			g.blocked[g.idx(c.X, c.Y)] = true
			defects++
		}
	}
	res.DefectCells = defects
	if defects > 0 {
		tr.Instant(obs.CatRoute, "route.defects", obs.Arg{Key: "cells", Val: float64(defects)})
	}

	// Commit the frozen history. Grid.commit does not consult blocked
	// cells, so frozen paths crossing freshly dead cells stay valid — the
	// fluid traversed them before the fault. Frozen routes are kept out of
	// res.Routes until the end so rip-up recovery can never pick them as
	// victims.
	for _, t := range tasks {
		if !spec.Frozen[t.ID] {
			continue
		}
		p, ok := spec.PrevPaths[t.ID]
		if !ok || len(p) == 0 {
			return nil, fmt.Errorf("route: frozen task %d has no previous path", t.ID)
		}
		g.commit(t.ID, p, t.Window, t.Hold, t.Fluid.Name, t.Wash)
	}

	reused := 0
	for _, t := range tasks {
		if spec.Frozen[t.ID] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("route: repair aborted before task %d: %w", t.ID, err)
		}
		if err := flt.Err(fault.RouteStepFail); err != nil {
			return nil, fmt.Errorf("route: repair aborted before task %d: %w", t.ID, err)
		}
		if prev, ok := spec.PrevPaths[t.ID]; ok && pathFeasible(g, t, prev) {
			g.commit(t.ID, prev, t.Window, t.Hold, t.Fluid.Name, t.Wash)
			res.Routes = append(res.Routes, RoutedTask{Task: t, Path: prev})
			reused++
			continue
		}
		var t0 time.Time
		if tr.Enabled() {
			g.sc.stats = searchStats{}
			t0 = time.Now()
		}
		p := g.routeTask(t, true)
		if p == nil && pr.RipUpRounds > 0 {
			p = ripUpRecover(g, res, t, true, pr.RipUpRounds, tr)
		}
		if p == nil {
			return nil, noPathError(t)
		}
		if tr.Enabled() {
			st := g.sc.stats
			tr.RouteTask(obs.RouteTask{
				Task: t.ID, From: int(t.From), To: int(t.To),
				Expanded: st.expanded, HeapPeak: st.heapPeak, SlotConflicts: st.slotConflicts,
				PathLen: len(p) - 1, Weighted: true, Dur: time.Since(t0),
			})
		}
		g.commit(t.ID, p, t.Window, t.Hold, t.Fluid.Name, t.Wash)
		res.Routes = append(res.Routes, RoutedTask{Task: t, Path: p})
	}
	tr.Instant(obs.CatRoute, "route.repair",
		obs.Arg{Key: "tasks", Val: float64(len(tasks))},
		obs.Arg{Key: "reused", Val: float64(reused)},
		obs.Arg{Key: "frozen", Val: float64(len(spec.Frozen))})

	// Assemble the canonical task-order Routes (frozen history included)
	// before deriving metrics, so a repaired Result has the same shape as
	// a routeAll Result.
	final := res.Routes
	byID := make(map[int][]Cell, len(final))
	for _, rt := range final {
		byID[rt.Task.ID] = rt.Path
	}
	res.Routes = make([]RoutedTask, 0, len(tasks))
	for _, t := range tasks {
		var p []Cell
		if spec.Frozen[t.ID] {
			p = spec.PrevPaths[t.ID]
		} else {
			p = byID[t.ID]
		}
		res.Routes = append(res.Routes, RoutedTask{Task: t, Path: p})
	}
	finishMetrics(res, g)
	return res, nil
}

// pathFeasible reports whether committing path for task t would conflict
// with nothing currently on the grid and touch no blocked cell. The
// interval logic mirrors Grid.commit: the first cell carries the hold
// window (channel storage), the rest the move window.
func pathFeasible(g *Grid, t Task, path []Cell) bool {
	if len(path) == 0 {
		return false
	}
	hold := t.Hold
	if hold.Empty() {
		hold = t.Window
	}
	for k, c := range path {
		if !g.In(c) {
			return false
		}
		iv := t.Window
		if k == 0 {
			iv = hold
		}
		if !g.usable(c, iv, t.Fluid.Name) {
			return false
		}
		if k > 0 {
			dx, dy := c.X-path[k-1].X, c.Y-path[k-1].Y
			if dx*dx+dy*dy != 1 {
				return false
			}
		}
	}
	return g.onRing(t.From, path[0]) && g.onRing(t.To, path[len(path)-1])
}
