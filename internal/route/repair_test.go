package route

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/schedule"
)

func TestRepairNoFaultReproducesRouting(t *testing.T) {
	sr, comps, pl := pipeline(t, "Synthetic3", false)
	pr := DefaultParams()
	res, err := Route(sr, comps, pl, pr)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	prev := make(map[int][]Cell, len(res.Routes))
	for _, rt := range res.Routes {
		prev[rt.Task.ID] = rt.Path
	}
	rep, err := Repair(context.Background(), sr, comps, pl, pr, RepairSpec{PrevPaths: prev})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	// With no defects and full path reuse, the repaired routing is the
	// original routing.
	if !reflect.DeepEqual(rep.Routes, res.Routes) {
		t.Error("no-fault repair drifted from the original routing")
	}
	if err := Validate(rep, sr, comps, pl, pr); err != nil {
		t.Fatalf("repaired routing invalid: %v", err)
	}
}

func TestRepairAvoidsDefectsAndFreezesHistory(t *testing.T) {
	sr, comps, pl := pipeline(t, "Synthetic3", false)
	pr := DefaultParams()
	pr.RipUpRounds = 3
	res, err := Route(sr, comps, pl, pr)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	prev := make(map[int][]Cell, len(res.Routes))
	for _, rt := range res.Routes {
		prev[rt.Task.ID] = rt.Path
	}

	// Cut mid-assay: transports already departed are frozen.
	at := sr.Makespan / 2
	frozen := map[int]bool{}
	for _, tr := range sr.Transports {
		if tr.Depart < at {
			frozen[tr.ID] = true
		}
	}
	// Kill a cell on the path of some non-frozen transport, so the repair
	// has real work.
	var defect Cell
	found := false
	for _, rt := range res.Routes {
		if frozen[rt.Task.ID] || len(rt.Path) < 3 {
			continue
		}
		defect = rt.Path[len(rt.Path)/2]
		found = true
		break
	}
	if !found {
		t.Skip("no suffix transport with an interior cell")
	}

	spec := RepairSpec{Defects: []Cell{defect}, Frozen: frozen, PrevPaths: prev}
	rep, err := Repair(context.Background(), sr, comps, pl, pr, spec)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if err := Validate(rep, sr, comps, pl, pr); err != nil {
		t.Fatalf("repaired routing invalid: %v", err)
	}
	if rep.DefectCells != 1 {
		t.Errorf("DefectCells = %d, want 1", rep.DefectCells)
	}
	for _, rt := range rep.Routes {
		if frozen[rt.Task.ID] {
			if !reflect.DeepEqual(rt.Path, prev[rt.Task.ID]) {
				t.Errorf("frozen task %d path drifted", rt.Task.ID)
			}
			continue
		}
		for _, c := range rt.Path {
			if c == defect {
				t.Errorf("re-planned task %d crosses the dead cell %v", rt.Task.ID, c)
			}
		}
	}

	// Determinism: same spec, same routing, byte for byte.
	again, err := Repair(context.Background(), sr, comps, pl, pr, spec)
	if err != nil {
		t.Fatalf("second Repair: %v", err)
	}
	if !reflect.DeepEqual(rep.Routes, again.Routes) {
		t.Error("repair is not deterministic")
	}
}

func TestRepairFrozenTaskNeedsPath(t *testing.T) {
	sr, comps, pl := pipeline(t, "PCR", false)
	pr := DefaultParams()
	if len(sr.Transports) == 0 {
		t.Skip("PCR scheduled without transports")
	}
	spec := RepairSpec{Frozen: map[int]bool{sr.Transports[0].ID: true}}
	if _, err := Repair(context.Background(), sr, comps, pl, pr, spec); err == nil {
		t.Fatal("Repair accepted a frozen task without a previous path")
	}
}

// TestRepairSuffixRescheduleRoundTrip drives the two layers together: cut
// the schedule, reschedule the suffix, and re-route with the frozen edges
// carried over by (producer, consumer) edge identity.
func TestRepairSuffixRescheduleRoundTrip(t *testing.T) {
	sr, comps, pl := pipeline(t, "Synthetic4", false)
	pr := DefaultParams()
	pr.RipUpRounds = 3
	res, err := Route(sr, comps, pl, pr)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	at := sr.Makespan / 3
	re, err := schedule.RescheduleSuffix(sr, at, nil)
	if err != nil {
		t.Fatalf("RescheduleSuffix: %v", err)
	}

	// Carry previous paths across the reschedule keyed by edge: transport
	// IDs are renumbered, edges are stable.
	type edge struct{ p, c int }
	prevByEdge := make(map[edge][]Cell)
	taskOf := make(map[int]schedule.Transport)
	for _, tr := range sr.Transports {
		taskOf[tr.ID] = tr
	}
	for _, rt := range res.Routes {
		tr := taskOf[rt.Task.ID]
		prevByEdge[edge{int(tr.Producer), int(tr.Consumer)}] = rt.Path
	}
	spec := RepairSpec{Frozen: map[int]bool{}, PrevPaths: map[int][]Cell{}}
	executed := schedule.Executed(re, at)
	for _, tr := range re.Transports {
		if p, ok := prevByEdge[edge{int(tr.Producer), int(tr.Consumer)}]; ok {
			spec.PrevPaths[tr.ID] = p
		}
		if executed[tr.Consumer] {
			spec.Frozen[tr.ID] = true
		}
	}
	rep, err := Repair(context.Background(), re, comps, pl, pr, spec)
	if err != nil {
		t.Fatalf("Repair after reschedule: %v", err)
	}
	if err := Validate(rep, re, comps, pl, pr); err != nil {
		t.Fatalf("repaired routing invalid against rescheduled suffix: %v", err)
	}
}
