package route

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/interval"
	"repro/internal/place"
)

// ripupFixture builds a 20×9 plane with two components facing each other
// across an open corridor, a victim route committed on it, and the Result
// bookkeeping ripUpRecover mutates.
func ripupFixture(t *testing.T) (*Grid, *Result, Task, Task) {
	t.Helper()
	comps := chip.Allocation{2, 0, 0, 0}.Instantiate()
	pl := &place.Placement{W: 20, H: 9, Rects: []place.Rect{
		{X: 2, Y: 3, W: 2, H: 2},
		{X: 16, Y: 3, W: 2, H: 2},
	}}
	g, err := NewGrid(comps, pl, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	victim := Task{ID: 1, From: 0, To: 1,
		Window: interval.Make(0, 100), Fluid: fluid.Fluid{Name: "blocker"}, Wash: 2000}
	stuck := Task{ID: 2, From: 0, To: 1,
		Window: interval.Make(10, 50), Fluid: fluid.Fluid{Name: "sample"}, Wash: 2000}
	return g, &Result{GridW: g.W, GridH: g.H, Pitch: DefaultParams().Pitch}, victim, stuck
}

// column returns the full-height path occupying column x — a wall no
// different-fluid task with an overlapping window can cross.
func column(x, h int) []Cell {
	p := make([]Cell, 0, h)
	for y := 0; y < h; y++ {
		p = append(p, Cell{X: x, Y: y})
	}
	return p
}

// TestRipUpRecoverSucceeds: the stuck task cannot cross the victim's
// wall, recovery evicts the victim, routes the stuck task and reroutes
// the victim — both end up committed and conflict-free.
func TestRipUpRecoverSucceeds(t *testing.T) {
	g, res, victim, stuck := ripupFixture(t)
	wall := column(10, g.H)
	g.commit(victim.ID, wall, victim.Window, victim.Hold, victim.Fluid.Name, victim.Wash)
	res.Routes = append(res.Routes, RoutedTask{Task: victim, Path: wall})

	if p := g.routeTask(stuck, true); p != nil {
		t.Fatal("fixture broken: stuck task routed through the wall")
	}
	p := ripUpRecover(g, res, stuck, true, 3, nil)
	if p == nil {
		t.Fatal("recovery failed on a recoverable grid")
	}
	if res.RecoveryRounds != 1 {
		t.Errorf("RecoveryRounds = %d, want 1", res.RecoveryRounds)
	}
	// The caller commits the returned path; mirror that here.
	g.commit(stuck.ID, p, stuck.Window, stuck.Hold, stuck.Fluid.Name, stuck.Wash)
	res.Routes = append(res.Routes, RoutedTask{Task: stuck, Path: p})
	if got := g.conflictsOf(); len(got) != 0 {
		t.Errorf("recovered grid still has conflicts: %v", got)
	}
	np := res.Routes[0].Path
	if first, last := np[0], np[len(np)-1]; !g.onRing(victim.From, first) || !g.onRing(victim.To, last) {
		t.Errorf("rerouted victim does not span its terminals: %v … %v", first, last)
	}
}

// TestRipUpRecoverRollsBack: when the victim cannot be rerouted the
// round must restore the grid exactly — victim still committed, stuck
// task absent, Result untouched.
func TestRipUpRecoverRollsBack(t *testing.T) {
	g, res, victim, stuck := ripupFixture(t)
	// Physically wall off the corridor except one gap cell, then park the
	// victim on the gap: after eviction the stuck task takes the gap, and
	// the victim has nowhere left to go.
	gap := Cell{X: 10, Y: 4}
	for y := 0; y < g.H; y++ {
		if y != gap.Y {
			g.blocked[g.idx(10, y)] = true
		}
	}
	// The victim's recorded path must start and end on its terminals'
	// rings for a reroute attempt to be meaningful; route it for real.
	vp := g.routeTask(victim, true)
	if vp == nil {
		t.Fatal("fixture broken: victim cannot route through the gap")
	}
	g.commit(victim.ID, vp, victim.Window, victim.Hold, victim.Fluid.Name, victim.Wash)
	res.Routes = append(res.Routes, RoutedTask{Task: victim, Path: vp})

	if p := g.routeTask(stuck, true); p != nil {
		t.Fatal("fixture broken: stuck task found a second way through")
	}
	if p := ripUpRecover(g, res, stuck, true, 3, nil); p != nil {
		t.Fatalf("recovery succeeded where both tasks need the same cell: %v", p)
	}
	if res.RecoveryRounds != 0 {
		t.Errorf("failed recovery advanced RecoveryRounds to %d", res.RecoveryRounds)
	}
	if res.Routes[0].Path[0] != vp[0] || len(res.Routes[0].Path) != len(vp) {
		t.Error("failed recovery rewrote the victim's recorded path")
	}
	// The victim's slots must be back: the gap cell is unusable for the
	// stuck task's window again.
	if g.usable(gap, stuck.Window, stuck.Fluid.Name) {
		t.Error("failed recovery did not restore the victim's occupancy")
	}
}
