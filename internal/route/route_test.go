package route

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/interval"
	"repro/internal/place"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// pipeline runs schedule+placement for a benchmark, ours or baseline.
func pipeline(t *testing.T, name string, baseline bool) (*schedule.Result, []chip.Component, *place.Placement) {
	t.Helper()
	bm, err := benchdata.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	comps := bm.Alloc.Instantiate()
	var sr *schedule.Result
	if baseline {
		sr, err = schedule.ScheduleBaseline(bm.Graph, comps, schedule.DefaultOptions())
	} else {
		sr, err = schedule.Schedule(bm.Graph, comps, schedule.DefaultOptions())
	}
	if err != nil {
		t.Fatal(err)
	}
	nets := place.BuildNets(sr, 0.6, 0.4)
	pp := place.DefaultParams()
	pp.Imax = 60
	var pl *place.Placement
	if baseline {
		pl, err = place.Construct(comps, nets, pp)
	} else {
		pl, err = place.Anneal(comps, nets, pp)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sr, comps, pl
}

func TestGridPortsAndBlocking(t *testing.T) {
	comps := chip.Allocation{2, 0, 0, 1}.Instantiate()
	pl := &place.Placement{W: 16, H: 16, Rects: []place.Rect{
		{X: 2, Y: 2, W: 4, H: 3},
		{X: 9, Y: 2, W: 4, H: 3},
		{X: 2, Y: 9, W: 2, H: 2},
	}}
	g, err := NewGrid(comps, pl, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Interiors blocked, ring free.
	if !g.Blocked(Cell{3, 3}) || !g.Blocked(Cell{10, 2}) {
		t.Error("component interiors must be blocked")
	}
	if g.Blocked(Cell{1, 1}) || g.Blocked(Cell{6, 3}) {
		t.Error("free cells wrongly blocked")
	}
	for c := 0; c < 3; c++ {
		p := g.Port(chip.CompID(c))
		if g.Blocked(p) {
			t.Errorf("port %v of comp %d is blocked", p, c)
		}
	}
	// Port of component 0 is on its ring (top-left first).
	if got := g.Port(0); got != (Cell{2, 1}) {
		t.Errorf("port(0) = %v, want {2,1}", got)
	}
}

func TestUsableRules(t *testing.T) {
	comps := chip.Allocation{1, 0, 0, 0}.Instantiate()
	pl := &place.Placement{W: 10, H: 10, Rects: []place.Rect{{X: 4, Y: 4, W: 2, H: 2}}}
	g, err := NewGrid(comps, pl, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	c := Cell{0, 0}
	iv := func(a, b float64) interval.Interval {
		return interval.Make(unit.Seconds(a), unit.Seconds(b))
	}
	g.commit(0, []Cell{c}, iv(10, 12), interval.Interval{}, "A", unit.Seconds(3))

	cases := []struct {
		name string
		win  interval.Interval
		fl   string
		want bool
	}{
		{"overlap", iv(11, 13), "B", false},
		{"overlap same fluid (aliquot sharing)", iv(11, 13), "A", true},
		{"contained", iv(10, 12), "B", false},
		{"after, disjoint", iv(15, 17), "B", true},
		{"after, touching", iv(12, 14), "B", true},
		{"before, disjoint", iv(5, 7), "B", true},
		{"before, touching", iv(5, 10), "B", true},
	}
	for _, tc := range cases {
		if got := g.usable(c, tc.win, tc.fl); got != tc.want {
			t.Errorf("%s: usable = %v, want %v", tc.name, got, tc.want)
		}
	}
	if g.usable(Cell{4, 4}, iv(0, 1), "A") {
		t.Error("blocked cell must never be usable")
	}
}

func TestAstarFindsShortestWhenUnweighted(t *testing.T) {
	comps := []chip.Component{}
	pl := &place.Placement{W: 12, H: 12, Rects: nil}
	g, err := NewGrid(comps, pl, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	task := Task{ID: 0, Window: interval.Make(0, unit.Seconds(2)), Fluid: fluid.Fluid{Name: "A"}, Wash: 0}
	p := g.astar(task, Cell{1, 1}, Cell{8, 5}, false)
	if p == nil {
		t.Fatal("no path on empty grid")
	}
	if got, want := len(p)-1, 7+4; got != want {
		t.Errorf("path edges = %d, want Manhattan %d", got, want)
	}
}

func TestAstarAvoidsOccupiedCells(t *testing.T) {
	comps := []chip.Component{}
	pl := &place.Placement{W: 9, H: 9, Rects: nil}
	g, err := NewGrid(comps, pl, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Wall of occupied cells across x=4 during our window, except a gap
	// at y=8.
	win := interval.Make(0, unit.Seconds(2))
	for y := 0; y < 8; y++ {
		g.commit(99, []Cell{{4, y}}, win, interval.Interval{}, "other", unit.Seconds(6))
	}
	task := Task{ID: 0, Window: win, Fluid: fluid.Fluid{Name: "A"}, Wash: 0}
	p := g.astar(task, Cell{0, 0}, Cell{8, 0}, false)
	if p == nil {
		t.Fatal("no path around wall")
	}
	for _, c := range p {
		if c.X == 4 && c.Y != 8 {
			t.Fatalf("path crosses occupied wall at %v", c)
		}
	}
}

func TestWeightedAstarPrefersCheapCells(t *testing.T) {
	comps := []chip.Component{}
	pl := &place.Placement{W: 11, H: 11, Rects: nil}
	g, err := NewGrid(comps, pl, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// A previously-used corridor along y=5 with tiny wash weight; window
	// long gone. Weighted router should take it even though the straight
	// line along y=2 is equally short.
	old := interval.Make(0, unit.Seconds(1))
	var corridor []Cell
	for x := 0; x <= 10; x++ {
		corridor = append(corridor, Cell{x, 5})
	}
	g.commit(7, corridor, old, interval.Interval{}, "A", unit.Seconds(0.2))

	task := Task{ID: 8, Window: interval.Make(unit.Seconds(100), unit.Seconds(102)),
		Fluid: fluid.Fluid{Name: "B"}, Wash: unit.Seconds(0.2)}
	p := g.astar(task, Cell{0, 5}, Cell{10, 5}, true)
	if p == nil {
		t.Fatal("no path")
	}
	for _, c := range p {
		if c.Y != 5 {
			t.Fatalf("weighted path left the cheap corridor at %v", c)
		}
	}
}

func TestTasksFromSortsByStart(t *testing.T) {
	sr, _, _ := pipeline(t, "Synthetic2", false)
	ts := TasksFrom(sr)
	if len(ts) != len(sr.Transports) {
		t.Fatalf("tasks = %d, transports = %d", len(ts), len(sr.Transports))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i].HoldWindow().Start < ts[i-1].HoldWindow().Start {
			t.Fatal("tasks not sorted by start")
		}
	}
}

func TestRouteAllBenchmarks(t *testing.T) {
	for _, bm := range benchdata.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			sr, comps, pl := pipeline(t, bm.Name, false)
			res, used, err := Solve(sr, comps, pl, DefaultParams(), false)
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(res, sr, comps, used, DefaultParams()); err != nil {
				t.Fatal(err)
			}
			if len(sr.Transports) > 0 && res.UnionCells == 0 {
				t.Error("no channel cells fabricated despite transports")
			}
			t.Logf("%s: %d tasks, %d union edges (%v), channel wash %v",
				bm.Name, len(res.Routes), res.UnionCells, res.TotalLength(), res.ChannelWash)
		})
	}
}

func TestRouteBaselineAllBenchmarks(t *testing.T) {
	for _, bm := range benchdata.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			sr, comps, pl := pipeline(t, bm.Name, true)
			res, used, err := Solve(sr, comps, pl, DefaultParams(), true)
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(res, sr, comps, used, DefaultParams()); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d tasks, %d union edges (%v), wash %v, %d correction rounds",
				bm.Name, len(res.Routes), res.UnionCells, res.TotalLength(),
				res.ChannelWash, res.CorrectionRounds)
		})
	}
}

func TestValidateCatchesCorruptedRoutes(t *testing.T) {
	sr, comps, pl0 := pipeline(t, "IVD", false)
	pr := DefaultParams()
	res, pl, err := Solve(sr, comps, pl0, pr, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) == 0 {
		t.Skip("no transports to corrupt")
	}
	// Break connectivity.
	bad := *res
	bad.Routes = append([]RoutedTask(nil), res.Routes...)
	rt := bad.Routes[0]
	rt.Path = append([]Cell(nil), rt.Path...)
	if len(rt.Path) > 2 {
		rt.Path[1] = Cell{X: rt.Path[1].X + 3, Y: rt.Path[1].Y}
		bad.Routes[0] = rt
		if err := Validate(&bad, sr, comps, pl, pr); err == nil {
			t.Error("disconnected path not detected")
		}
	}
	// Drop a route.
	bad2 := *res
	bad2.Routes = res.Routes[:len(res.Routes)-1]
	if err := Validate(&bad2, sr, comps, pl, pr); err == nil {
		t.Error("missing route not detected")
	}
}

func TestDeterministicRouting(t *testing.T) {
	sr, comps, pl := pipeline(t, "Synthetic1", false)
	a, _, err := Solve(sr, comps, pl, DefaultParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Solve(sr, comps, pl, DefaultParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	if a.UnionCells != b.UnionCells || a.ChannelWash != b.ChannelWash {
		t.Fatal("routing not deterministic")
	}
	for i := range a.Routes {
		if len(a.Routes[i].Path) != len(b.Routes[i].Path) {
			t.Fatal("path lengths differ between runs")
		}
	}
}

func TestSameFluidSharesChannelWithoutWash(t *testing.T) {
	// Two temporally disjoint tasks with the same fluid across the same
	// corridor: the weighted router reuses cells and the two uses share a
	// single wash per cell.
	comps := chip.Allocation{2, 0, 0, 0}.Instantiate()
	pl := &place.Placement{W: 14, H: 8, Rects: []place.Rect{
		{X: 1, Y: 2, W: 4, H: 3},
		{X: 9, Y: 2, W: 4, H: 3},
	}}
	g, err := NewGrid(comps, pl, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int, a, b float64) Task {
		return Task{ID: id, From: 0, To: 1,
			Window: interval.Make(unit.Seconds(a), unit.Seconds(b)),
			Fluid:  fluid.Fluid{Name: "same"}, Wash: unit.Seconds(2)}
	}
	t1, t2 := mk(0, 0, 2), mk(1, 10, 12)
	p1 := g.astar(t1, g.Port(0), g.Port(1), true)
	g.commit(0, p1, t1.Window, interval.Interval{}, "same", t1.Wash)
	p2 := g.astar(t2, g.Port(0), g.Port(1), true)
	if p2 == nil {
		t.Fatal("second task unroutable")
	}
	res := &Result{Pitch: DefaultParams().Pitch,
		Routes: []RoutedTask{{Task: t1, Path: p1}, {Task: t2, Path: p2}}}
	g.commit(1, p2, t2.Window, interval.Interval{}, "same", t2.Wash)
	finishMetrics(res, g)
	// One wash per shared cell, not two.
	if want := unit.Time(int64(len(p1))) * t1.Wash; res.ChannelWash != want {
		t.Errorf("same-fluid shared wash = %v, want single wash per cell %v", res.ChannelWash, want)
	}
	if res.UnionCells != len(p1) {
		t.Errorf("union cells %d, want full sharing %d", res.UnionCells, len(p1))
	}
}

func TestSolveReturnsUsedPlacement(t *testing.T) {
	sr, comps, pl := pipeline(t, "Synthetic2", false)
	res, used, err := Solve(sr, comps, pl, DefaultParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	if used == nil || res == nil {
		t.Fatal("nil outputs")
	}
	// The used placement is the one the grid dimensions reflect.
	if res.GridW != used.W || res.GridH != used.H {
		t.Errorf("result grid %dx%d != used placement %dx%d",
			res.GridW, res.GridH, used.W, used.H)
	}
	if err := Validate(res, sr, comps, used, DefaultParams()); err != nil {
		t.Fatal(err)
	}
}

func TestRecomputeMetricsMatchesOriginal(t *testing.T) {
	sr, comps, pl := pipeline(t, "IVD", false)
	res, used, err := Solve(sr, comps, pl, DefaultParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	clone := &Result{GridW: res.GridW, GridH: res.GridH, Pitch: res.Pitch,
		Routes: append([]RoutedTask(nil), res.Routes...)}
	RecomputeMetrics(clone, sr, comps, used, DefaultParams())
	if clone.UnionCells != res.UnionCells {
		t.Errorf("union cells %d != %d", clone.UnionCells, res.UnionCells)
	}
	if clone.ChannelWash != res.ChannelWash {
		t.Errorf("channel wash %v != %v", clone.ChannelWash, res.ChannelWash)
	}
}

func TestRouteUnweightedStillConflictFree(t *testing.T) {
	sr, comps, pl := pipeline(t, "Synthetic1", false)
	// Dilate for headroom: the unweighted variant has no retry ladder.
	res, err := RouteUnweighted(sr, comps, place.Dilate(pl, 1.5), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, sr, comps, place.Dilate(pl, 1.5), DefaultParams()); err != nil {
		t.Fatal(err)
	}
}

func TestTasksFromHoldSemantics(t *testing.T) {
	sr, _, _ := pipeline(t, "Synthetic4", false)
	ts := TasksFrom(sr)
	anyHold := false
	for _, task := range ts {
		hw := task.HoldWindow()
		if hw.Empty() {
			t.Errorf("task %d empty hold window", task.ID)
		}
		if hw.Start > task.Window.Start || hw.End != task.Window.End {
			t.Errorf("task %d hold %v inconsistent with move %v", task.ID, hw, task.Window)
		}
		if !task.Hold.Empty() {
			anyHold = true
			if task.Hold.Start > task.Window.Start {
				t.Errorf("task %d hold starts after movement", task.ID)
			}
		}
	}
	if !anyHold {
		t.Log("no cached transports on Synthetic4 (unexpected but legal)")
	}
}
