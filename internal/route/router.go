package route

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/schedule"
	"repro/internal/unit"
)

// RoutedTask is the committed path of one transportation task.
type RoutedTask struct {
	Task Task
	Path []Cell
}

// Len returns the path length in grid edges.
func (r RoutedTask) Len() int {
	if len(r.Path) == 0 {
		return 0
	}
	return len(r.Path) - 1
}

// Result is a complete routing solution.
type Result struct {
	GridW, GridH int
	Pitch        unit.Length
	Routes       []RoutedTask
	// ChannelWash is the total wash time spent cleaning flow-channel
	// cells between uses by different fluids (the quantity of Fig. 9).
	ChannelWash unit.Time
	// UnionCells is the number of distinct grid cells carrying a flow
	// channel; TotalLength() reports it physically.
	UnionCells int
	// CorrectionRounds counts rip-up-and-reroute rounds (baseline only).
	CorrectionRounds int
	// RecoveryRounds counts the bounded rip-up recovery rounds the
	// proposed router spent rescuing stuck tasks (Params.RipUpRounds > 0
	// only). Provenance, not solution content: serialization and
	// fingerprints exclude it.
	RecoveryRounds int
	// DilationTries counts the placement dilation retries SolveContext
	// needed before routing succeeded (0 = first try). Provenance, like
	// RecoveryRounds.
	DilationTries int
	// DefectCells counts the routing cells an armed fault plan marked
	// defective before routing started (see Grid.InjectDefects).
	// Provenance, like RecoveryRounds.
	DefectCells int
}

// TotalLength returns the physical total flow-channel length: every grid
// cell carrying a channel contributes one pitch. Segments shared by
// several tasks count once, exactly as fabricated channels would.
func (r *Result) TotalLength() unit.Length {
	return unit.Length(int64(r.UnionCells)) * r.Pitch
}

// Route runs the proposed transportation-conflict-aware router: tasks are
// sorted by start time and routed sequentially with the weighted A* of
// Eq. 5; after each task the wash-time weights and occupancy slots of the
// cells on its path are updated (Algorithm 2 lines 9-18).
func Route(r *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params) (*Result, error) {
	return routeAll(context.Background(), r, comps, pl, pr, true)
}

// RouteContext is Route with cancellation: ctx is polled before each
// task's A* search, so a cancelled run aborts within one single-task
// routing. An uncancelled context reproduces Route exactly.
func RouteContext(ctx context.Context, r *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params) (*Result, error) {
	return routeAll(ctx, r, comps, pl, pr, true)
}

// RouteUnweighted is the proposed router with the wash-weight guidance of
// Eq. 5 disabled (pure shortest feasible paths). It exists for the
// ablation study: comparing it against Route isolates the contribution of
// the weight mechanism to channel sharing and wash time.
func RouteUnweighted(r *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params) (*Result, error) {
	return routeAll(context.Background(), r, comps, pl, pr, false)
}

// RouteBaseline runs the construction-by-correction baseline: every task
// first gets an unweighted shortest path with conflicts ignored; then
// conflicting tasks are ripped up and rerouted (in start-time order) with
// conflict checks enabled but still no wash-weight guidance, until the
// solution is conflict-free.
func RouteBaseline(r *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params) (*Result, error) {
	return RouteBaselineContext(context.Background(), r, comps, pl, pr)
}

// RouteBaselineContext is RouteBaseline with cancellation: ctx is polled
// before each construction routing and each correction round.
func RouteBaselineContext(ctx context.Context, r *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params) (*Result, error) {
	g, err := NewGrid(comps, pl, pr)
	if err != nil {
		return nil, err
	}
	defer g.release()
	tasks := TasksFrom(r)
	res := &Result{GridW: g.W, GridH: g.H, Pitch: pr.Pitch, Routes: make([]RoutedTask, len(tasks))}
	paths := make(map[int][]Cell, len(tasks))

	// Construction: conflict-blind shortest paths on an empty grid view.
	empty, err := NewGrid(comps, pl, pr)
	if err != nil {
		return nil, err
	}
	defer empty.release()
	tr := obs.From(ctx)
	flt := fault.From(ctx)
	// Defects are drawn once on the commit grid and mirrored onto the
	// conflict-blind view, so construction and correction see the same
	// damaged plane without consuming the fault stream twice.
	if n := g.InjectDefects(flt); n > 0 {
		copy(empty.blocked, g.blocked)
		res.DefectCells = n
		tr.Instant(obs.CatRoute, "route.defects", obs.Arg{Key: "cells", Val: float64(n)})
	}
	for _, t := range tasks {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("route: baseline construction aborted: %w", err)
		}
		if err := flt.Err(fault.RouteStepFail); err != nil {
			return nil, fmt.Errorf("route: baseline construction aborted: %w", err)
		}
		var t0 time.Time
		if tr.Enabled() {
			empty.sc.stats = searchStats{}
			t0 = time.Now()
		}
		p := empty.routeTask(t, false)
		if p == nil {
			return nil, fmt.Errorf("route: baseline construction failed for task %d", t.ID)
		}
		if tr.Enabled() {
			st := empty.sc.stats
			tr.RouteTask(obs.RouteTask{
				Task: t.ID, From: int(t.From), To: int(t.To),
				Expanded: st.expanded, HeapPeak: st.heapPeak, SlotConflicts: st.slotConflicts,
				PathLen: len(p) - 1, Dur: time.Since(t0),
			})
		}
		paths[t.ID] = p
		g.commit(t.ID, p, t.Window, t.Hold, t.Fluid.Name, t.Wash)
	}

	// Correction: repeatedly rip up every conflicting (or yet-unrouted)
	// task and reroute the set sequentially with feasibility checks on.
	// Tasks that failed in the previous round get first pick of the
	// channel capacity in the next one.
	byID := make(map[int]Task, len(tasks))
	for _, t := range tasks {
		byID[t.ID] = t
	}
	failedLast := map[int]bool{}
	unrouted := map[int]bool{}
	blockers := map[int]bool{}
	failCount := map[int]int{}
	const maxRounds = 96
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("route: baseline correction aborted: %w", err)
		}
		if err := flt.Err(fault.RouteStepFail); err != nil {
			return nil, fmt.Errorf("route: baseline correction aborted: %w", err)
		}
		badSet := map[int]bool{}
		for _, id := range g.conflictsOf() {
			badSet[id] = true
		}
		for id := range unrouted {
			badSet[id] = true
		}
		for id := range blockers {
			if _, routed := paths[id]; routed {
				badSet[id] = true
			}
		}
		bad := make([]int, 0, len(badSet))
		for id := range badSet {
			bad = append(bad, id)
		}
		if len(bad) == 0 {
			break
		}
		if round >= maxRounds {
			return nil, fmt.Errorf("route: baseline correction did not converge (%d conflicting tasks left)", len(bad))
		}
		res.CorrectionRounds++
		tr.Instant(obs.CatRoute, "route.correction",
			obs.Arg{Key: "round", Val: float64(round)}, obs.Arg{Key: "ripped", Val: float64(len(bad))})
		// Repeated failures escalate in priority (negotiated congestion):
		// the most-starved task gets first pick of the channel capacity.
		sort.Slice(bad, func(i, j int) bool {
			if failCount[bad[i]] != failCount[bad[j]] {
				return failCount[bad[i]] > failCount[bad[j]]
			}
			wi, wj := byID[bad[i]].HoldWindow(), byID[bad[j]].HoldWindow()
			if wi.Start != wj.Start {
				return wi.Start < wj.Start
			}
			return bad[i] < bad[j]
		})
		for _, id := range bad {
			g.clear(id)
		}
		nextFailed := map[int]bool{}
		nextUnrouted := map[int]bool{}
		blockers = map[int]bool{}
		for _, id := range bad {
			t := byID[id]
			p := g.routeTask(t, false)
			if p == nil {
				nextFailed[id] = true
				nextUnrouted[id] = true
				failCount[id]++
				delete(paths, id)
				// The tasks crowding this window around the failed
				// task's terminals must move next round.
				lo, hi := g.terminalBox(t, 3)
				for _, other := range tasks {
					if other.ID == id || !other.HoldWindow().Overlaps(t.HoldWindow()) {
						continue
					}
					for _, c := range paths[other.ID] {
						if c.X >= lo.X && c.X <= hi.X && c.Y >= lo.Y && c.Y <= hi.Y {
							blockers[other.ID] = true
							break
						}
					}
				}
				continue
			}
			paths[id] = p
			g.commit(id, p, t.Window, t.Hold, t.Fluid.Name, t.Wash)
		}
		// No progress two rounds in a row with the same failures means
		// the capacity is genuinely insufficient: give up so the caller
		// can dilate the placement.
		if len(nextUnrouted) > 0 && sameIntSet(nextUnrouted, unrouted) && sameIntSet(nextFailed, failedLast) {
			var ids []int
			for id := range nextUnrouted {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			return nil, fmt.Errorf("route: baseline correction failed for task %d", ids[0])
		}
		failedLast = nextFailed
		unrouted = nextUnrouted
	}

	for i, t := range tasks {
		res.Routes[i] = RoutedTask{Task: t, Path: paths[t.ID]}
	}
	finishMetrics(res, g)
	return res, nil
}

// Solve routes a schedule with automatic congestion recovery: if no
// conflict-free routing exists on the given placement, the placement is
// dilated (same relative layout, wider corridors) and routing is retried.
// It returns the routing result together with the placement actually used.
func Solve(r *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params, baseline bool) (*Result, *place.Placement, error) {
	return SolveContext(context.Background(), r, comps, pl, pr, baseline)
}

// SolveContext is Solve with cancellation: a done ctx aborts the current
// routing pass between tasks and stops the dilation ladder instead of
// retrying. An uncancelled context reproduces Solve exactly.
func SolveContext(ctx context.Context, r *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params, baseline bool) (*Result, *place.Placement, error) {
	tr := obs.From(ctx)
	f := 1.0
	var lastErr error
	for try := 0; try < 4; try++ {
		if try > 0 {
			tr.Instant(obs.CatRoute, "route.dilate",
				obs.Arg{Key: "factor", Val: f}, obs.Arg{Key: "attempt", Val: float64(try)})
		}
		cur := place.Dilate(pl, f)
		var res *Result
		var err error
		if baseline {
			res, err = RouteBaselineContext(ctx, r, comps, cur, pr)
		} else {
			res, err = routeAll(ctx, r, comps, cur, pr, true)
		}
		if err == nil {
			res.DilationTries = try
			return res, cur, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // cancelled, not congested: don't burn dilation retries
		}
		f *= 1.5
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("route: aborted: %w", err)
	}
	return nil, nil, fmt.Errorf("route: congestion not resolved by dilation: %w", lastErr)
}

// noPathError is the shared routing-failure error of the sequential loop
// and the wave router.
func noPathError(t Task) error {
	return fmt.Errorf("route: no conflict-free path for task %d (%d→%d, window %v)",
		t.ID, t.From, t.To, t.Window)
}

// routeAll is the shared driver for the proposed router.
func routeAll(ctx context.Context, r *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params, weighted bool) (*Result, error) {
	g, err := NewGrid(comps, pl, pr)
	if err != nil {
		return nil, err
	}
	defer g.release()
	tasks := TasksFrom(r)
	res := &Result{GridW: g.W, GridH: g.H, Pitch: pr.Pitch, Routes: make([]RoutedTask, 0, len(tasks))}
	tr := obs.From(ctx)
	flt := fault.From(ctx)
	if n := g.InjectDefects(flt); n > 0 {
		res.DefectCells = n
		tr.Instant(obs.CatRoute, "route.defects", obs.Arg{Key: "cells", Val: float64(n)})
	}
	// The wave router takes over when parallelism is requested. It yields
	// byte-identical Routes (see parallel.go) but per-wave rather than
	// per-task telemetry, and it does not consume the fault stream per
	// task — so an armed fault plan keeps the sequential loop, whose
	// injection points the chaos suite pins.
	if pr.Workers >= 2 && len(tasks) >= 2 && !flt.Enabled() {
		if err := g.routeAllWaves(ctx, tasks, res, pr, weighted, tr); err != nil {
			return nil, err
		}
		finishMetrics(res, g)
		return res, nil
	}
	for _, t := range tasks {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("route: aborted before task %d: %w", t.ID, err)
		}
		if err := flt.Err(fault.RouteStepFail); err != nil {
			return nil, fmt.Errorf("route: aborted before task %d: %w", t.ID, err)
		}
		// Telemetry snapshots the scratch counters around each search.
		// time.Now is only read when a tracer is installed, so the
		// disabled path stays free of clock syscalls.
		var t0 time.Time
		if tr.Enabled() {
			g.sc.stats = searchStats{}
			t0 = time.Now()
		}
		p := g.routeTask(t, weighted)
		if p == nil && pr.RipUpRounds > 0 {
			p = ripUpRecover(g, res, t, weighted, pr.RipUpRounds, tr)
		}
		if p == nil {
			return nil, noPathError(t)
		}
		if tr.Enabled() {
			st := g.sc.stats
			tr.RouteTask(obs.RouteTask{
				Task: t.ID, From: int(t.From), To: int(t.To),
				Expanded: st.expanded, HeapPeak: st.heapPeak, SlotConflicts: st.slotConflicts,
				PathLen: len(p) - 1, Weighted: weighted, Dur: time.Since(t0),
			})
		}
		g.commit(t.ID, p, t.Window, t.Hold, t.Fluid.Name, t.Wash)
		res.Routes = append(res.Routes, RoutedTask{Task: t, Path: p})
	}
	finishMetrics(res, g)
	return res, nil
}

// ripUpRecover attempts bounded local rip-up-and-reroute when task t
// finds no conflict-free path in the proposed router. Each round widens a
// box around t's terminals (the congestion region of terminalBox),
// evicts the already-routed tasks whose paths cross the box and whose
// hold windows overlap t's — the only routes whose occupancy slots can
// be excluding t — routes t, then reroutes the victims in their original
// order. If any victim cannot be rerouted the round is rolled back
// exactly (t cleared, surviving new paths cleared, original paths
// recommitted) and the next round widens the box. On success the
// victims' entries in res are updated in place and res.RecoveryRounds
// advances.
//
// Cell weights are not rolled back: commit overwrites a cell's weight
// with the new residue's wash time and clear restores nothing (see
// grid.clear). Weights only guide the A* cost of Eq. 5 — feasibility
// comes from the occupancy slots, which are restored exactly — so a
// rolled-back round can shift later tasks' channel sharing but never
// their correctness. That approximation is why recovery is opt-in
// degraded-mode behaviour rather than part of the published algorithm.
func ripUpRecover(g *Grid, res *Result, t Task, weighted bool, rounds int, tr *obs.Tracer) []Cell {
	for k := 0; k < rounds; k++ {
		lo, hi := g.terminalBox(t, 3+2*k)
		inBox := func(c Cell) bool {
			return c.X >= lo.X && c.X <= hi.X && c.Y >= lo.Y && c.Y <= hi.Y
		}
		var victims []int // indices into res.Routes, original routing order
		for i := range res.Routes {
			rt := &res.Routes[i]
			if !rt.Task.HoldWindow().Overlaps(t.HoldWindow()) || rt.Task.Fluid.Name == t.Fluid.Name {
				continue
			}
			for _, c := range rt.Path {
				if inBox(c) {
					victims = append(victims, i)
					break
				}
			}
		}
		if len(victims) == 0 {
			continue // nothing evictable here: widen and retry
		}
		for _, i := range victims {
			g.clear(res.Routes[i].Task.ID)
		}
		rollback := func(upto int) {
			g.clear(t.ID)
			for vi := 0; vi < upto; vi++ {
				g.clear(res.Routes[victims[vi]].Task.ID)
			}
			for _, i := range victims {
				rt := &res.Routes[i]
				g.commit(rt.Task.ID, rt.Path, rt.Task.Window, rt.Task.Hold, rt.Task.Fluid.Name, rt.Task.Wash)
			}
		}
		p := g.routeTask(t, weighted)
		if p == nil {
			rollback(0)
			continue
		}
		g.commit(t.ID, p, t.Window, t.Hold, t.Fluid.Name, t.Wash)
		newPaths := make([][]Cell, len(victims))
		ok := true
		for vi, i := range victims {
			vt := res.Routes[i].Task
			np := g.routeTask(vt, weighted)
			if np == nil {
				ok = false
				rollback(vi)
				break
			}
			g.commit(vt.ID, np, vt.Window, vt.Hold, vt.Fluid.Name, vt.Wash)
			newPaths[vi] = np
		}
		if !ok {
			continue
		}
		for vi, i := range victims {
			res.Routes[i].Path = newPaths[vi]
		}
		// Hand the grid back without t: the caller commits the returned
		// path, exactly as it would for a first-try success.
		g.clear(t.ID)
		res.RecoveryRounds++
		tr.Instant(obs.CatRoute, "route.ripup",
			obs.Arg{Key: "task", Val: float64(t.ID)},
			obs.Arg{Key: "round", Val: float64(k)},
			obs.Arg{Key: "victims", Val: float64(len(victims))})
		return p
	}
	return nil
}

// finishMetrics computes the union channel length and the total channel
// wash time. Every channel cell must be washed after carrying a fluid
// (Section II-B: channels are cleaned by flushing a buffer), except when
// the next fluid through the cell is the same sample — its own residue
// does not contaminate it, so consecutive same-fluid uses share a single
// wash. Shorter routes and same-fluid channel sharing therefore reduce
// the total wash time, which is exactly the behaviour the cell-weight
// mechanism of Eq. 5 promotes.
// RecomputeMetrics refreshes the derived quantities (union channel
// length, channel wash time) of a routing result whose Routes were
// reconstructed externally, e.g. after decoding a serialized solution.
// The routes are replayed onto a fresh grid built from the placement.
func RecomputeMetrics(res *Result, sched *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params) {
	g, err := NewGrid(comps, pl, pr)
	if err != nil {
		return
	}
	defer g.release()
	for _, rt := range res.Routes {
		t := rt.Task
		g.commit(t.ID, rt.Path, t.Window, t.Hold, t.Fluid.Name, t.Wash)
	}
	finishMetrics(res, g)
}

// sameIntSet reports whether two sets hold identical members.
func sameIntSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func finishMetrics(res *Result, g *Grid) {
	cells := map[Cell]bool{}
	for _, rt := range res.Routes {
		for _, c := range rt.Path {
			cells[c] = true
		}
	}
	res.UnionCells = len(cells)

	var wash unit.Time
	for i := range g.slots {
		ss := append([]slot(nil), g.slots[i]...)
		sort.Slice(ss, func(a, b int) bool { return ss[a].iv.Start < ss[b].iv.Start })
		for k := 0; k < len(ss); k++ {
			if k+1 < len(ss) && ss[k+1].fluid == ss[k].fluid {
				continue // same sample follows: one wash covers both
			}
			wash += ss[k].wash
		}
	}
	res.ChannelWash = wash
}

// Validate re-checks a routing result against its schedule independently:
// every transport routed, endpoints at the right ports, paths connected,
// and no pairwise cell conflicts (overlap or missing wash gap).
func Validate(res *Result, sched *schedule.Result, comps []chip.Component, pl *place.Placement, pr Params) error {
	g, err := NewGrid(comps, pl, pr)
	if err != nil {
		return err
	}
	defer g.release()
	if len(res.Routes) != len(sched.Transports) {
		return fmt.Errorf("route: %d routes for %d transports", len(res.Routes), len(sched.Transports))
	}
	seen := map[int]bool{}
	for _, rt := range res.Routes {
		t := rt.Task
		if seen[t.ID] {
			return fmt.Errorf("route: task %d routed twice", t.ID)
		}
		seen[t.ID] = true
		if len(rt.Path) == 0 {
			return fmt.Errorf("route: task %d has empty path", t.ID)
		}
		if !g.onRing(t.From, rt.Path[0]) {
			return fmt.Errorf("route: task %d starts at %v, not a port of component %d", t.ID, rt.Path[0], t.From)
		}
		if !g.onRing(t.To, rt.Path[len(rt.Path)-1]) {
			return fmt.Errorf("route: task %d ends at %v, not a port of component %d", t.ID, rt.Path[len(rt.Path)-1], t.To)
		}
		for i, c := range rt.Path {
			if !g.In(c) || g.Blocked(c) {
				return fmt.Errorf("route: task %d path cell %v blocked or outside", t.ID, c)
			}
			if i > 0 {
				dx, dy := c.X-rt.Path[i-1].X, c.Y-rt.Path[i-1].Y
				if dx*dx+dy*dy != 1 {
					return fmt.Errorf("route: task %d path not 4-connected at %v", t.ID, c)
				}
			}
		}
		g.commit(t.ID, rt.Path, t.Window, t.Hold, t.Fluid.Name, t.Wash)
	}
	if bad := g.conflictsOf(); len(bad) > 0 {
		return fmt.Errorf("route: transportation conflicts among tasks %v", bad)
	}
	return nil
}
