package route

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/interval"
	"repro/internal/place"
)

// WashRoute is the physical flush path for one transportation task's
// residue: from the chip's wash inlet, along the task's contaminated
// channel segment, to the waste outlet.
type WashRoute struct {
	Task int
	Path []Cell
}

// WashRouting is the wash infrastructure of a routed solution: per-flush
// buffer paths plus the extra channel fabric they require beyond the
// assay's own channels. It complements internal/washplan (which decides
// *when* flushes happen) with the *where* — the concern of wash-capable
// physical design à la Hu et al. (the paper's ref. [9]).
type WashRouting struct {
	Inlet  Cell
	Outlet Cell
	// Flushes holds one buffer path per transportation task, in task-ID
	// order.
	Flushes []WashRoute
	// ExtraCells counts cells used by flush paths that are not already
	// part of the assay's channel network — the fabrication overhead of
	// washing.
	ExtraCells int
	// TotalFlushCells counts the distinct cells of all flush paths.
	TotalFlushCells int
}

// RouteWash plans buffer flush paths for every routed task. Flushes are
// spatial only: internal/washplan establishes that they fit temporally
// between channel uses, so the grid here carries no time slots.
func RouteWash(res *Result, comps []chip.Component, pl *place.Placement, pr Params) (*WashRouting, error) {
	if res == nil {
		return nil, fmt.Errorf("route: nil routing result")
	}
	g, err := NewGrid(comps, pl, pr)
	if err != nil {
		return nil, err
	}
	inlet, ok := firstFree(g, false)
	if !ok {
		return nil, fmt.Errorf("route: no free cell for wash inlet")
	}
	outlet, ok := firstFree(g, true)
	if !ok {
		return nil, fmt.Errorf("route: no free cell for waste outlet")
	}
	w := &WashRouting{Inlet: inlet, Outlet: outlet}

	// The buffer flow has no occupancy constraints on this grid (no
	// committed slots), so any free-cell path works.
	buffer := Task{
		Fluid:  fluid.Fluid{Name: "wash-buffer"},
		Window: interval.Make(0, 1),
	}
	assayCells := map[Cell]bool{}
	for _, rt := range res.Routes {
		for _, c := range rt.Path {
			assayCells[c] = true
		}
	}
	flushCells := map[Cell]bool{}
	for _, rt := range res.Routes {
		if len(rt.Path) == 0 {
			continue
		}
		head := g.astar(buffer, inlet, rt.Path[0], false)
		if head == nil {
			return nil, fmt.Errorf("route: wash inlet cannot reach task %d", rt.Task.ID)
		}
		tail := g.astar(buffer, rt.Path[len(rt.Path)-1], outlet, false)
		if tail == nil {
			return nil, fmt.Errorf("route: task %d cannot reach waste outlet", rt.Task.ID)
		}
		full := make([]Cell, 0, len(head)+len(rt.Path)+len(tail)-2)
		full = append(full, head...)
		full = append(full, rt.Path[1:]...)
		full = append(full, tail[1:]...)
		w.Flushes = append(w.Flushes, WashRoute{Task: rt.Task.ID, Path: full})
		for _, c := range full {
			flushCells[c] = true
		}
	}
	w.TotalFlushCells = len(flushCells)
	for c := range flushCells {
		if !assayCells[c] {
			w.ExtraCells++
		}
	}
	return w, nil
}

// firstFree scans the grid row-major (or reverse) for the first
// unblocked cell.
func firstFree(g *Grid, reverse bool) (Cell, bool) {
	for i := 0; i < g.W*g.H; i++ {
		k := i
		if reverse {
			k = g.W*g.H - 1 - i
		}
		c := Cell{X: k % g.W, Y: k / g.W}
		if !g.Blocked(c) {
			return c, true
		}
	}
	return Cell{}, false
}
