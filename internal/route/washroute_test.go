package route

import (
	"testing"
)

func TestRouteWashBasics(t *testing.T) {
	sr, comps, pl0 := pipeline(t, "CPA", false)
	pr := DefaultParams()
	res, pl, err := Solve(sr, comps, pl0, pr, false)
	if err != nil {
		t.Fatal(err)
	}
	w, err := RouteWash(res, comps, pl, pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Flushes) != len(res.Routes) {
		t.Fatalf("flushes = %d, want one per route %d", len(w.Flushes), len(res.Routes))
	}
	g, err := NewGrid(comps, pl, pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range w.Flushes {
		if len(f.Path) == 0 {
			t.Fatalf("flush %d empty", f.Task)
		}
		if f.Path[0] != w.Inlet {
			t.Errorf("flush %d does not start at the inlet", f.Task)
		}
		if f.Path[len(f.Path)-1] != w.Outlet {
			t.Errorf("flush %d does not end at the outlet", f.Task)
		}
		for i, c := range f.Path {
			if !g.In(c) || g.Blocked(c) {
				t.Fatalf("flush %d passes blocked cell %v", f.Task, c)
			}
			if i > 0 {
				dx, dy := c.X-f.Path[i-1].X, c.Y-f.Path[i-1].Y
				if dx*dx+dy*dy != 1 {
					t.Fatalf("flush %d not 4-connected at %v", f.Task, c)
				}
			}
		}
	}
	if w.TotalFlushCells <= 0 {
		t.Error("no flush cells")
	}
	if w.ExtraCells > w.TotalFlushCells {
		t.Errorf("extra %d > total %d", w.ExtraCells, w.TotalFlushCells)
	}
	// Every contaminated assay cell is covered by its task's flush.
	for _, rt := range res.Routes {
		fl := flushOf(w, rt.Task.ID)
		cells := map[Cell]bool{}
		for _, c := range fl.Path {
			cells[c] = true
		}
		for _, c := range rt.Path {
			if !cells[c] {
				t.Fatalf("task %d cell %v not flushed", rt.Task.ID, c)
			}
		}
	}
	t.Logf("CPA wash infrastructure: %d flush cells, %d beyond assay channels (inlet %v, outlet %v)",
		w.TotalFlushCells, w.ExtraCells, w.Inlet, w.Outlet)
}

func flushOf(w *WashRouting, task int) WashRoute {
	for _, f := range w.Flushes {
		if f.Task == task {
			return f
		}
	}
	return WashRoute{}
}

func TestRouteWashNil(t *testing.T) {
	if _, err := RouteWash(nil, nil, nil, DefaultParams()); err == nil {
		t.Error("nil result accepted")
	}
}
