package schedule

import (
	"container/heap"
	"fmt"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/interval"
	"repro/internal/unit"
)

// DedicatedOptions extends Options with the parameters of a conventional
// dedicated storage unit (Fig. 1(a) of the paper): a reservoir of Capacity
// cells reached through multiplexer-like control valves, whose port
// admits only one fluid entering or leaving at a time — the bandwidth
// bottleneck DCSA removes.
type DedicatedOptions struct {
	Options
	// Capacity is the number of storage cells (fluids held at once).
	Capacity int
}

// DefaultDedicatedOptions mirrors the conventional architectures the
// paper argues against: an 8-cell storage unit.
func DefaultDedicatedOptions() DedicatedOptions {
	return DedicatedOptions{Options: DefaultOptions(), Capacity: 8}
}

// storageState models the dedicated unit during scheduling.
type storageState struct {
	capacity int
	// port is the occupancy calendar of the single multiplexed port:
	// every entering or leaving transfer holds it for t_c.
	port interval.Set
	// occupancy tracks how many cells are filled over time as a set of
	// (time, delta) events; feasibility is checked by replay.
	events []storageEvent
}

type storageEvent struct {
	at    unit.Time
	delta int
}

// occupancyAt returns how many storage cells are filled at instant t:
// the sum of all entry/exit deltas at or before t, counting an entry at
// exactly t as present and an exit at exactly t as already gone.
func (s *storageState) occupancyAt(t unit.Time) int {
	n := 0
	for _, e := range s.events {
		if e.at <= t {
			n += e.delta
		}
	}
	return n
}

// nextChangeAfter returns the earliest event instant strictly after t, or
// unit.Forever when none exists.
func (s *storageState) nextChangeAfter(t unit.Time) unit.Time {
	best := unit.Forever
	for _, e := range s.events {
		if e.at > t && e.at < best {
			best = e.at
		}
	}
	return best
}

// ScheduleDedicated schedules g on a conventional chip with a dedicated
// storage unit instead of distributed channel storage: a fluid that must
// leave its component before its consumer is ready is transferred into
// the storage unit (holding the single port for t_c), parked there, and
// transferred out again (holding the port for another t_c) — waiting for
// a free port slot and a free cell whenever the unit is contended. It is
// the architecture the paper's introduction argues DCSA outperforms.
//
// The binding strategy is the same DCSA-aware Algorithm 1, so measured
// differences isolate the storage architecture rather than the binder.
func ScheduleDedicated(g *assay.Graph, comps []chip.Component, opts DedicatedOptions) (*Result, error) {
	if opts.Capacity < 1 {
		return nil, fmt.Errorf("schedule: dedicated storage needs capacity >= 1")
	}
	if g == nil {
		return nil, fmt.Errorf("schedule: nil assay")
	}
	if opts.TC <= 0 {
		return nil, fmt.Errorf("schedule: transportation constant t_c must be positive")
	}
	need := g.CountByType()
	have := make([]int, assay.NumOpTypes)
	for _, c := range comps {
		have[c.Kind.Type]++
	}
	for t := 0; t < assay.NumOpTypes; t++ {
		if need[t] > 0 && have[t] == 0 {
			return nil, fmt.Errorf("schedule: assay %q needs %v components but none allocated",
				g.Name(), assay.OpType(t))
		}
	}

	e := &engine{
		g:      g,
		opts:   opts.Options,
		comps:  make([]compState, len(comps)),
		tokens: make([]*token, g.NumOps()),
		res: &Result{
			Assay: g,
			Comps: append([]chip.Component(nil), comps...),
			Opts:  opts.Options,
			Ops:   make([]BoundOp, g.NumOps()),
		},
	}
	for i, c := range comps {
		e.comps[i] = compState{comp: c}
	}
	st := &storageState{capacity: opts.Capacity}

	pr := g.Priorities(opts.TC)
	q := &opQueue{pr: pr}
	pending := make([]int, g.NumOps())
	for id := 0; id < g.NumOps(); id++ {
		pending[id] = len(g.Parents(assay.OpID(id)))
		if pending[id] == 0 {
			heap.Push(q, assay.OpID(id))
		}
	}

	for q.Len() > 0 {
		op := g.Op(heap.Pop(q).(assay.OpID))
		c := dcsaBinder{}.choose(e, op)
		e.commitDedicated(op, c, st)
		for _, child := range g.Children(op.ID) {
			pending[child]--
			if pending[child] == 0 {
				heap.Push(q, child)
			}
		}
	}
	for _, bo := range e.res.Ops {
		if bo.End > e.res.Makespan {
			e.res.Makespan = bo.End
		}
	}
	return e.res, nil
}

// commitDedicated is commit() with dedicated-storage semantics: fluids
// that cannot stay in (or move directly between) components make a round
// trip through the storage unit, serialising on its single port. Port
// transfers are reserved sequentially and immediately, so reservations
// never collide; an operation's start time only ever grows while its
// earlier reservations stay valid (the fluid simply waits longer).
func (e *engine) commitDedicated(op assay.Operation, c chip.CompID, st *storageState) {
	cs := &e.comps[c]
	start, inPlaceParent := e.startTime(c, op)

	// Evict an unrelated (or aliquot-pending) resident fluid into the
	// storage unit: the inbound transfer needs the port for t_c and a
	// free storage cell.
	if cs.resident != nil && inPlaceParent == assay.NoOp {
		tk := cs.resident
		d := tk.washDur
		if e.isParent(tk.producer, op.ID) {
			d = unit.MaxTime(tk.washDur, e.opts.TC)
		}
		at := start - d
		if at < cs.lastEnd {
			at = cs.lastEnd
		}
		in := st.port.FirstFit(at, e.opts.TC)
		// Wait for both a free port slot and a free storage cell at the
		// arrival instant.
		for st.occupancyAt(in+e.opts.TC) >= st.capacity {
			next := st.nextChangeAfter(in + e.opts.TC)
			if next == unit.Forever {
				break // cells never free again: schedule will be poor but defined
			}
			in = st.port.FirstFit(unit.MaxTime(in+1, next-e.opts.TC), e.opts.TC)
		}
		st.port.Add(interval.Make(in, in+e.opts.TC))
		st.events = append(st.events, storageEvent{in + e.opts.TC, +1})
		tk.state = tokenInChannel
		tk.evict = in
		cs.resident = nil
		e.addWash(cs.comp.ID, tk.producer, in, in+tk.washDur)
		cs.washReady = in + tk.washDur
		if in+tk.washDur > start {
			start = in + tk.washDur
		}
		tk.cacheIdx = len(e.res.Caches)
		e.res.Caches = append(e.res.Caches, ChannelCache{
			Producer: tk.producer,
			From:     cs.comp.ID,
			Start:    in,
			End:      in, // extended when the fluid leaves storage
			Fluid:    e.g.Op(tk.producer).Output,
		})
	}

	// Outbound transfers: each in-storage input leaves through the port
	// as early as possible and waits at the consumer; the operation can
	// only start once the last of them has fully left.
	outs := make(map[assay.OpID]unit.Time)
	for _, p := range e.g.Parents(op.ID) {
		tk := e.tokens[p]
		if p == inPlaceParent || tk.state != tokenInChannel {
			continue
		}
		entry := tk.evict + e.opts.TC // fully inside the unit
		out := st.port.FirstFit(entry, e.opts.TC)
		st.port.Add(interval.Make(out, out+e.opts.TC))
		if tk.remaining == 1 {
			// The storage cell frees only once the last aliquot leaves.
			st.events = append(st.events, storageEvent{out, -1})
		}
		outs[p] = out
		if out+e.opts.TC > start {
			start = out + e.opts.TC
		}
	}
	end := start + op.Duration

	// Serve inputs.
	for _, p := range e.g.Parents(op.ID) {
		tk := e.tokens[p]
		if p == inPlaceParent {
			tk.remaining--
			tk.state = tokenGone
			cs.resident = nil
			continue
		}
		if out, ok := outs[p]; ok && tk.cacheIdx >= 0 {
			if out > e.res.Caches[tk.cacheIdx].End {
				e.res.Caches[tk.cacheIdx].End = out
			}
			// The storage residency ends at the outbound transfer; stop
			// transport() from extending the episode to the final hop.
			saved := tk.cacheIdx
			tk.cacheIdx = -1
			e.transport(tk, c, op.ID, start)
			tk.cacheIdx = saved
			continue
		}
		e.transport(tk, c, op.ID, start)
	}

	e.res.Ops[op.ID] = BoundOp{
		Op: op.ID, Comp: c, Start: start, End: end,
		InPlace: inPlaceParent != assay.NoOp, InPlaceParent: inPlaceParent,
	}
	cs.lastEnd = end

	washDur := e.opts.Wash.WashTime(op.Output.D)
	nConsumers := len(e.g.Children(op.ID))
	if nConsumers == 0 {
		e.addWash(c, op.ID, end, end+washDur)
		cs.washReady = end + washDur
		cs.resident = nil
		e.tokens[op.ID] = &token{producer: op.ID, comp: c, state: tokenGone, washDur: washDur, cacheIdx: -1}
		return
	}
	tk := &token{producer: op.ID, comp: c, state: tokenInComp, remaining: nConsumers, washDur: washDur, cacheIdx: -1}
	e.tokens[op.ID] = tk
	cs.resident = tk
}
