package schedule

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/unit"
)

func dedOpts(capacity int) DedicatedOptions {
	o := DefaultDedicatedOptions()
	o.Capacity = capacity
	return o
}

func TestDedicatedValidOnAllBenchmarks(t *testing.T) {
	for _, bm := range benchdata.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			res, err := ScheduleDedicated(bm.Graph, bm.Alloc.Instantiate(), dedOpts(8))
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDCSANeverSlowerThanDedicated verifies the paper's architectural
// motivation (Section I): with the same binder, distributed channel
// storage is never slower than a dedicated storage unit, whose
// multiplexed port serialises every cached fluid's round trip.
func TestDCSANeverSlowerThanDedicated(t *testing.T) {
	for _, bm := range benchdata.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			comps := bm.Alloc.Instantiate()
			dcsa, err := Schedule(bm.Graph, comps, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			ded, err := ScheduleDedicated(bm.Graph, comps, dedOpts(8))
			if err != nil {
				t.Fatal(err)
			}
			if dcsa.Makespan > ded.Makespan {
				t.Errorf("DCSA %v slower than dedicated storage %v", dcsa.Makespan, ded.Makespan)
			}
			t.Logf("%s: DCSA %v vs dedicated %v", bm.Name, dcsa.Makespan, ded.Makespan)
		})
	}
}

// TestCapacitySweepStaysValid sweeps the storage capacity. Greedy
// scheduling is not strictly monotone in capacity (a delayed eviction can
// accidentally improve a later decision), so the test asserts validity at
// every capacity and only requires that a single-cell unit is not faster
// than an effectively unconstrained one.
func TestCapacitySweepStaysValid(t *testing.T) {
	bm := benchdata.Synthetic(3)
	comps := bm.Alloc.Instantiate()
	makespan := map[int]unit.Time{}
	for _, capacity := range []int{16, 4, 2, 1} {
		res, err := ScheduleDedicated(bm.Graph, comps, dedOpts(capacity))
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(res); err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		makespan[capacity] = res.Makespan
	}
	if makespan[1] < makespan[16] {
		t.Errorf("single-cell storage %v faster than 16-cell %v", makespan[1], makespan[16])
	}
	t.Logf("capacity sweep: 16→%v 4→%v 2→%v 1→%v",
		makespan[16], makespan[4], makespan[2], makespan[1])
}

func TestDedicatedPortSerialization(t *testing.T) {
	// Force two concurrent evictions into storage: two producer mixes on
	// two mixers, both of whose outputs must vacate for later unrelated
	// mixes, with consumers blocked behind one slow heater.
	b := assay.NewBuilder("port")
	p1 := b.AddOp("p1", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-5})
	p2 := b.AddOp("p2", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-5})
	u1 := b.AddOp("u1", assay.Mix, unit.Seconds(5), fluid.Fluid{D: 1e-5})
	u2 := b.AddOp("u2", assay.Mix, unit.Seconds(5), fluid.Fluid{D: 1e-5})
	blocker := b.AddOp("blocker", assay.Heat, unit.Seconds(40), fluid.Fluid{D: 1e-6})
	c1 := b.AddOp("c1", assay.Heat, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	c2 := b.AddOp("c2", assay.Heat, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	b.AddDep(u1, blocker) // keeps heater busy; u1/u2 need the mixers
	b.AddDep(p1, c1)
	b.AddDep(p2, c2)
	_ = u2
	g := b.MustBuild()
	res, err := ScheduleDedicated(g, chip.Allocation{2, 1, 0, 0}.Instantiate(), dedOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res); err != nil {
		t.Fatal(err)
	}
	// Whatever the exact timing, the schedule must remain causally valid
	// and record storage round trips as cache episodes.
	if len(res.Caches) == 0 {
		t.Log("no storage round trips on this instance (acceptable but unexpected)")
	}
}

func TestDedicatedRejectsBadInputs(t *testing.T) {
	bm := benchdata.PCR()
	if _, err := ScheduleDedicated(bm.Graph, bm.Alloc.Instantiate(), dedOpts(0)); err == nil {
		t.Error("capacity 0 not rejected")
	}
	if _, err := ScheduleDedicated(nil, bm.Alloc.Instantiate(), dedOpts(4)); err == nil {
		t.Error("nil assay not rejected")
	}
	o := dedOpts(4)
	o.TC = 0
	if _, err := ScheduleDedicated(bm.Graph, bm.Alloc.Instantiate(), o); err == nil {
		t.Error("zero t_c not rejected")
	}
	if _, err := ScheduleDedicated(bm.Graph, chip.Allocation{0, 1, 0, 0}.Instantiate(), dedOpts(4)); err == nil {
		t.Error("missing mixers not rejected")
	}
}
