package schedule

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/unit"
)

// tokenState tracks where a produced fluid currently lives.
type tokenState int

const (
	tokenInComp    tokenState = iota // inside the component that produced it
	tokenInChannel                   // evicted, parked in distributed channel storage
	tokenGone                        // fully consumed (or collected off chip)
)

// token is the lifecycle record of one operation's output fluid.
type token struct {
	producer  assay.OpID
	comp      chip.CompID // component the fluid was produced on
	state     tokenState
	evict     unit.Time // eviction instant (valid in tokenInChannel)
	remaining int       // consumers not yet served
	washDur   unit.Time // wash time of this fluid's residue
	cacheIdx  int       // index into Result.Caches, -1 when never cached
	maxDepart unit.Time // latest departure committed so far
	trIdxs    []int     // indices of committed transports of this fluid
	// floor is the earliest instant the fluid may be evicted into channel
	// storage. It is zero — and therefore inert — for every fresh
	// scheduling run; only suffix rescheduling (see suffix.go) sets it, to
	// pin resumed tokens to the execution cut: a fluid that physically sat
	// inside its component when the fault was reported cannot be evicted
	// retroactively before the report instant.
	floor unit.Time
}

// compState is the evolving timeline of one allocated component.
type compState struct {
	comp      chip.Component
	lastEnd   unit.Time // end of the most recent operation
	washReady unit.Time // instant all pending washes finish (resident == nil)
	resident  *token    // fluid currently inside, or nil
}

// binder selects the component for the next dequeued operation. It is the
// only difference between the proposed algorithm and the baseline.
type binder interface {
	// choose returns the component to bind op to. The engine derives
	// in-place consumption from the chosen component's state.
	choose(e *engine, op assay.Operation) chip.CompID
}

// engine executes the shared list-scheduling loop of Algorithm 1.
type engine struct {
	g      *assay.Graph
	opts   Options
	comps  []compState
	tokens []*token // indexed by producer OpID; nil until produced
	res    *Result
	// Suffix-rescheduling state (see suffix.go). banned marks components
	// that may no longer be bound (reported failed mid-assay); notBefore
	// clamps every newly derived start time to the execution cut. Both are
	// zero-valued — and therefore inert — on every fresh scheduling run.
	banned    []bool
	notBefore unit.Time
	// Telemetry (integer accumulators only — the obs hooks read schedule
	// state but never influence it; see the obs determinism contract).
	tr          *obs.Tracer
	caseI       int       // in-place consumptions (Algorithm 1 Case I)
	caseII      int       // earliest-start bindings (Case II)
	washAvoided unit.Time // component wash time eliminated by Case I
}

// usable reports whether component c may take new bindings. Fresh runs
// have no banned set and every component is usable.
func (e *engine) usable(c chip.CompID) bool {
	return e.banned == nil || !e.banned[c]
}

// run schedules g on comps using the given binding strategy. It polls
// ctx between operation commits (every pollEvery pops) so a cancelled
// synthesis job releases its worker promptly; the poll reads no schedule
// state, so an uncancelled run is bit-identical to one without checks.
func run(ctx context.Context, g *assay.Graph, comps []chip.Component, opts Options, b binder) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("schedule: nil assay")
	}
	if opts.TC <= 0 {
		return nil, fmt.Errorf("schedule: transportation constant t_c must be positive, got %v", opts.TC)
	}
	need := g.CountByType()
	have := make([]int, assay.NumOpTypes)
	for _, c := range comps {
		have[c.Kind.Type]++
	}
	for t := 0; t < assay.NumOpTypes; t++ {
		if need[t] > 0 && have[t] == 0 {
			return nil, fmt.Errorf("schedule: assay %q needs %v components but none allocated",
				g.Name(), assay.OpType(t))
		}
	}

	e := &engine{
		g:      g,
		opts:   opts,
		tr:     obs.From(ctx),
		comps:  make([]compState, len(comps)),
		tokens: make([]*token, g.NumOps()),
		res: &Result{
			Assay: g,
			Comps: append([]chip.Component(nil), comps...),
			Opts:  opts,
			Ops:   make([]BoundOp, g.NumOps()),
		},
	}
	for i, c := range comps {
		if c.ID != chip.CompID(i) {
			return nil, fmt.Errorf("schedule: component %d has non-dense ID %d", i, c.ID)
		}
		e.comps[i] = compState{comp: c}
	}

	// Priority queue of ready operations (Algorithm 1, lines 1-3).
	pr := g.Priorities(opts.TC)
	q := &opQueue{pr: pr}
	pending := make([]int, g.NumOps())
	for id := 0; id < g.NumOps(); id++ {
		pending[id] = len(g.Parents(assay.OpID(id)))
		if pending[id] == 0 {
			heap.Push(q, assay.OpID(id))
		}
	}

	scheduled, err := e.drain(ctx, b, q, pending)
	if err != nil {
		return nil, err
	}
	if scheduled != g.NumOps() {
		return nil, fmt.Errorf("schedule: only %d of %d operations scheduled", scheduled, g.NumOps())
	}
	e.finish(scheduled)
	return e.res, nil
}

// drain runs the priority loop until the ready queue empties, returning
// the number of operations committed. It is shared between fresh runs and
// suffix rescheduling, which seeds the queue with only not-yet-executed
// operations.
func (e *engine) drain(ctx context.Context, b binder, q *opQueue, pending []int) (int, error) {
	g := e.g
	// Assays are small (hundreds of ops) and commits are cheap, so a
	// sparse poll keeps the cancellation overhead unmeasurable. The fault
	// check shares the poll boundary: like the ctx poll it reads no
	// schedule state and consumes no randomness, so an un-armed plan is
	// bit-identical to no plan.
	flt := fault.From(ctx)
	const pollEvery = 32
	scheduled := 0
	for q.Len() > 0 {
		if scheduled%pollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return scheduled, fmt.Errorf("schedule: %q aborted: %w", g.Name(), err)
			}
			if err := flt.Err(fault.ScheduleStepFail); err != nil {
				return scheduled, fmt.Errorf("schedule: %q aborted: %w", g.Name(), err)
			}
		}
		op := g.Op(heap.Pop(q).(assay.OpID))
		c := b.choose(e, op)
		if c == chip.NoComp || int(c) >= len(e.comps) {
			return scheduled, fmt.Errorf("schedule: binder returned invalid component for %q", op.Name)
		}
		if e.comps[c].comp.Kind.Type != op.Type {
			return scheduled, fmt.Errorf("schedule: binder bound %v operation %q to %s",
				op.Type, op.Name, e.comps[c].comp.Name())
		}
		if !e.usable(c) {
			return scheduled, fmt.Errorf("schedule: binder bound %q to failed component %s",
				op.Name, e.comps[c].comp.Name())
		}
		e.commit(op, c)
		scheduled++
		for _, child := range g.Children(op.ID) {
			pending[child]--
			if pending[child] == 0 {
				heap.Push(q, child)
			}
		}
	}
	return scheduled, nil
}

// finish computes the makespan over all committed rows and emits the
// scheduling telemetry.
func (e *engine) finish(scheduled int) {
	for _, bo := range e.res.Ops {
		if bo.End > e.res.Makespan {
			e.res.Makespan = bo.End
		}
	}
	e.tr.ScheduleStats(obs.ScheduleStats{
		Ops:           scheduled,
		CaseI:         e.caseI,
		CaseII:        e.caseII,
		WashAvoidedMs: int64(e.washAvoided),
		Transports:    len(e.res.Transports),
		Caches:        len(e.res.Caches),
		MakespanMs:    int64(e.res.Makespan),
	})
}

// readyTime returns the earliest instant a new operation op could start on
// component c, and the parent whose resident output would be consumed in
// place (NoOp when none). This implements Eq. 2: a component becomes ready
// once the previous residue has been removed and washed — except that a
// resident parent output can be consumed directly, skipping both.
func (e *engine) readyTime(c chip.CompID, op assay.Operation) (unit.Time, assay.OpID) {
	cs := &e.comps[c]
	if cs.resident == nil {
		return unit.MaxTime(cs.lastEnd, cs.washReady), assay.NoOp
	}
	tk := cs.resident
	// The eviction instant of the resident fluid is bounded below both by
	// the component's last operation and by the token's eviction floor
	// (zero except for tokens resumed at an execution cut; see suffix.go).
	evictBase := unit.MaxTime(cs.lastEnd, tk.floor)
	if e.isParent(tk.producer, op.ID) {
		if tk.remaining == 1 {
			// Case-I consumption: the operation runs where its input
			// already sits; no transport, no wash.
			return unit.MaxTime(cs.lastEnd, cs.washReady), tk.producer
		}
		// The resident fluid is an input but other consumers still need
		// aliquots of it: the whole fluid is evicted to channel storage,
		// the component washed, and this operation's share arrives back
		// from the channel. Both the wash and the channel hop must fit
		// between eviction and start.
		d := unit.MaxTime(tk.washDur, e.opts.TC)
		return evictBase + d, assay.NoOp
	}
	// Unrelated resident fluid: evict to channel storage, then wash.
	return evictBase + tk.washDur, assay.NoOp
}

// isParent reports whether p is a father operation of o.
func (e *engine) isParent(p, o assay.OpID) bool {
	for _, q := range e.g.Parents(o) {
		if q == p {
			return true
		}
	}
	return false
}

// startTime returns the earliest feasible start of op on component c —
// component readiness combined with the arrival constraints of every input
// fluid (Algorithm 1, lines 12-13) — together with the in-place parent
// (assay.NoOp when none).
func (e *engine) startTime(c chip.CompID, op assay.Operation) (unit.Time, assay.OpID) {
	start, inPlaceParent := e.readyTime(c, op)
	for _, p := range e.g.Parents(op.ID) {
		tk := e.tokens[p]
		switch {
		case p == inPlaceParent:
			// Already inside c; covered by readyTime.
		case tk.state == tokenInComp && tk.comp == c:
			// Aliquot case: eviction + channel hop folded into readyTime.
		case tk.state == tokenInComp:
			start = unit.MaxTime(start, e.res.Ops[p].End+e.opts.TC)
		case tk.state == tokenInChannel:
			start = unit.MaxTime(start, tk.evict+e.opts.TC)
		default:
			panic(fmt.Sprintf("schedule: output of %d consumed twice", p))
		}
	}
	// Suffix rescheduling may not place new work before the execution cut;
	// notBefore is zero for fresh runs, so this never moves a start there.
	start = unit.MaxTime(start, e.notBefore)
	return start, inPlaceParent
}

// commit binds op to component c, derives its start time from component
// readiness and input-fluid arrivals, and records transports, caches and
// washes.
func (e *engine) commit(op assay.Operation, c chip.CompID) {
	cs := &e.comps[c]
	start, inPlaceParent := e.startTime(c, op)
	end := start + op.Duration

	// Telemetry: an in-place consumption is Algorithm 1's Case I — the
	// input's transport (t_c) and the resident fluid's wash both vanish.
	if inPlaceParent != assay.NoOp {
		wa := e.tokens[inPlaceParent].washDur
		e.caseI++
		e.washAvoided += wa
		e.tr.Bind(obs.Bind{
			Op: int(op.ID), Comp: int(c), CaseI: true,
			WashAvoidedMs: int64(wa), TransportAvoidedMs: int64(e.opts.TC),
		})
	} else {
		e.caseII++
		e.tr.Bind(obs.Bind{Op: int(op.ID), Comp: int(c)})
	}

	// Evict an unrelated or aliquot-pending resident fluid.
	if cs.resident != nil && (inPlaceParent == assay.NoOp) {
		tk := cs.resident
		d := tk.washDur
		if e.isParent(tk.producer, op.ID) {
			d = unit.MaxTime(tk.washDur, e.opts.TC)
		}
		e.evict(cs, tk, start-d)
	}

	// Serve each input fluid.
	for _, p := range e.g.Parents(op.ID) {
		tk := e.tokens[p]
		if p == inPlaceParent {
			tk.remaining--
			tk.state = tokenGone
			cs.resident = nil
			continue
		}
		e.transport(tk, c, op.ID, start)
	}

	// Record the operation.
	e.res.Ops[op.ID] = BoundOp{
		Op:            op.ID,
		Comp:          c,
		Start:         start,
		End:           end,
		InPlace:       inPlaceParent != assay.NoOp,
		InPlaceParent: inPlaceParent,
	}
	cs.lastEnd = end

	// Produce the output token.
	washDur := e.opts.Wash.WashTime(op.Output.D)
	nConsumers := len(e.g.Children(op.ID))
	if nConsumers == 0 {
		// Final product: collected at the output port immediately; the
		// component is washed right after.
		e.addWash(c, op.ID, end, end+washDur)
		cs.washReady = end + washDur
		cs.resident = nil
		e.tokens[op.ID] = &token{
			producer: op.ID, comp: c, state: tokenGone,
			washDur: washDur, cacheIdx: -1,
		}
		return
	}
	tk := &token{
		producer:  op.ID,
		comp:      c,
		state:     tokenInComp,
		remaining: nConsumers,
		washDur:   washDur,
		cacheIdx:  -1,
	}
	e.tokens[op.ID] = tk
	cs.resident = tk
}

// evict moves the resident fluid of cs into channel storage at instant at,
// starts the component wash, and opens a channel-cache episode.
func (e *engine) evict(cs *compState, tk *token, at unit.Time) {
	if at < tk.floor {
		at = tk.floor
	}
	if at < cs.lastEnd {
		at = cs.lastEnd
	}
	tk.state = tokenInChannel
	tk.evict = at
	cs.resident = nil
	e.addWash(cs.comp.ID, tk.producer, at, at+tk.washDur)
	cs.washReady = at + tk.washDur
	tk.cacheIdx = len(e.res.Caches)
	cacheEnd := at
	// Aliquots already committed to depart after the eviction instant now
	// leave from channel storage instead of from the component; patch
	// their records so routing and the Fig. 8 accounting stay consistent.
	for _, idx := range tk.trIdxs {
		tr := &e.res.Transports[idx]
		if tr.Depart > at {
			tr.FromChannel = true
			tr.CacheStart = at
			if tr.Depart > cacheEnd {
				cacheEnd = tr.Depart
			}
		}
	}
	e.res.Caches = append(e.res.Caches, ChannelCache{
		Producer: tk.producer,
		From:     cs.comp.ID,
		Start:    at,
		End:      cacheEnd, // extended as further consumers depart
		Fluid:    e.g.Op(tk.producer).Output,
	})
}

// transport moves one aliquot of tk's fluid to component dst so that it
// arrives exactly at the consumer's start time.
func (e *engine) transport(tk *token, dst chip.CompID, consumer assay.OpID, start unit.Time) {
	depart := start - e.opts.TC
	fl := e.g.Op(tk.producer).Output
	tr := Transport{
		ID:       len(e.res.Transports),
		Producer: tk.producer,
		Consumer: consumer,
		From:     tk.comp,
		To:       dst,
		Depart:   depart,
		Arrive:   start,
		Fluid:    fl,
		WashTime: tk.washDur,
	}
	if tk.state == tokenInChannel {
		tr.FromChannel = true
		tr.CacheStart = tk.evict
		if tk.cacheIdx >= 0 && depart > e.res.Caches[tk.cacheIdx].End {
			e.res.Caches[tk.cacheIdx].End = depart
		}
	}
	tk.trIdxs = append(tk.trIdxs, len(e.res.Transports))
	e.res.Transports = append(e.res.Transports, tr)
	if depart > tk.maxDepart {
		tk.maxDepart = depart
	}

	tk.remaining--
	if tk.remaining == 0 {
		if tk.state == tokenInComp {
			// Last aliquot left the producing component: wash it. The
			// wash starts only once the latest-departing aliquot is out
			// (consumers are scheduled in priority order, not time
			// order, so this call may not carry the latest departure).
			src := &e.comps[tk.comp]
			src.resident = nil
			e.addWash(tk.comp, tk.producer, tk.maxDepart, tk.maxDepart+tk.washDur)
			if tk.maxDepart+tk.washDur > src.washReady {
				src.washReady = tk.maxDepart + tk.washDur
			}
		}
		tk.state = tokenGone
	}
}

func (e *engine) addWash(c chip.CompID, residue assay.OpID, start, end unit.Time) {
	e.res.Washes = append(e.res.Washes, ComponentWash{Comp: c, Residue: residue, Start: start, End: end})
}

// opQueue orders ready operations by non-increasing priority value, with
// operation ID as a deterministic tie break (Algorithm 1, lines 3-5).
type opQueue struct {
	pr  []unit.Time
	ids []assay.OpID
}

func (q *opQueue) Len() int { return len(q.ids) }
func (q *opQueue) Less(i, j int) bool {
	a, b := q.ids[i], q.ids[j]
	if q.pr[a] != q.pr[b] {
		return q.pr[a] > q.pr[b]
	}
	return a < b
}
func (q *opQueue) Swap(i, j int)      { q.ids[i], q.ids[j] = q.ids[j], q.ids[i] }
func (q *opQueue) Push(x interface{}) { q.ids = append(q.ids, x.(assay.OpID)) }
func (q *opQueue) Pop() interface{} {
	old := q.ids
	n := len(old)
	x := old[n-1]
	q.ids = old[:n-1]
	return x
}
