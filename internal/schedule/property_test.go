package schedule

import (
	"fmt"
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/rng"
	"repro/internal/unit"
)

// randomCase builds a random assay and a covering allocation.
func randomCase(seed uint64) (*assay.Graph, chip.Allocation) {
	r := rng.New(seed)
	ops := 5 + r.Intn(40)
	alloc := chip.Allocation{
		1 + r.Intn(4),
		r.Intn(3),
		r.Intn(2),
		r.Intn(3),
	}
	g := benchdata.GenerateSynthetic(fmt.Sprintf("prop%d", seed), ops, alloc, seed*7+1)
	// The generator only emits types with non-zero allocation, so the
	// allocation covers by construction.
	return g, alloc
}

// TestPropertyBothSchedulersAlwaysValid runs both schedulers over many
// random assays and validates every invariant each time.
func TestPropertyBothSchedulersAlwaysValid(t *testing.T) {
	for seed := uint64(1); seed <= 120; seed++ {
		g, alloc := randomCase(seed)
		comps := alloc.Instantiate()
		for _, algo := range []struct {
			name string
			run  func(*assay.Graph, []chip.Component, Options) (*Result, error)
		}{{"ours", Schedule}, {"BA", ScheduleBaseline}} {
			res, err := algo.run(g, comps, DefaultOptions())
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, algo.name, err)
			}
			if err := Validate(res); err != nil {
				t.Fatalf("seed %d %s: invalid schedule: %v", seed, algo.name, err)
			}
			// Makespan can never beat the critical path.
			if cp := g.CriticalPathLength(res.Opts.TC); res.Makespan < cp-cpSlack(g, res) {
				t.Fatalf("seed %d %s: makespan %v below critical path %v",
					seed, algo.name, res.Makespan, cp)
			}
		}
	}
}

// cpSlack accounts for edges realised in place: each in-place edge saves
// exactly one t_c relative to the critical-path bound that charges t_c on
// every edge.
func cpSlack(g *assay.Graph, r *Result) unit.Time {
	var slack unit.Time
	for _, bo := range r.Ops {
		if bo.InPlace {
			slack += r.Opts.TC
		}
	}
	return slack
}

// TestPropertyOursAtLeastAsGoodOnAverage checks the paper's headline
// claim statistically: over many random instances the proposed scheduler
// must not lose to the baseline on average, and must win on a clear
// majority-or-tie basis.
func TestPropertyOursAtLeastAsGoodOnAverage(t *testing.T) {
	var oursTotal, baTotal unit.Time
	wins, ties, losses := 0, 0, 0
	for seed := uint64(1); seed <= 120; seed++ {
		g, alloc := randomCase(seed)
		comps := alloc.Instantiate()
		ours, err := Schedule(g, comps, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ba, err := ScheduleBaseline(g, comps, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		oursTotal += ours.Makespan
		baTotal += ba.Makespan
		switch {
		case ours.Makespan < ba.Makespan:
			wins++
		case ours.Makespan == ba.Makespan:
			ties++
		default:
			losses++
		}
	}
	t.Logf("random instances: %d wins, %d ties, %d losses; mean makespan ours %v vs BA %v",
		wins, ties, losses, oursTotal/120, baTotal/120)
	if oursTotal > baTotal {
		t.Errorf("ours worse on average: %v vs %v", oursTotal, baTotal)
	}
	if losses > wins {
		t.Errorf("ours loses more often than it wins: %d vs %d", losses, wins)
	}
}

// TestPropertyCacheEpisodesConsistent cross-checks that every channel
// cache episode is backed by at least one channel-sourced transport and
// that total cache time equals the sum over episodes.
func TestPropertyCacheEpisodesConsistent(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		g, alloc := randomCase(seed)
		res, err := Schedule(g, alloc.Instantiate(), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fromChan := map[assay.OpID]bool{}
		for _, tr := range res.Transports {
			if tr.FromChannel {
				fromChan[tr.Producer] = true
			}
		}
		var total unit.Time
		for _, ce := range res.Caches {
			total += ce.Duration()
			if !fromChan[ce.Producer] {
				t.Fatalf("seed %d: cache episode of %d has no channel transport", seed, ce.Producer)
			}
		}
		if total != res.TotalChannelCacheTime() {
			t.Fatalf("seed %d: cache total mismatch", seed)
		}
	}
}

// TestPropertyTransportCountBounded verifies that the number of
// transports never exceeds the number of edges (each edge is served by at
// most one transport; in-place edges by none).
func TestPropertyTransportCountBounded(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		g, alloc := randomCase(seed)
		for _, run := range []func(*assay.Graph, []chip.Component, Options) (*Result, error){Schedule, ScheduleBaseline} {
			res, err := run(g, alloc.Instantiate(), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			inPlace := 0
			for _, bo := range res.Ops {
				if bo.InPlace {
					inPlace++
				}
			}
			if len(res.Transports)+inPlace != g.NumEdges() {
				t.Fatalf("seed %d: transports %d + in-place %d != edges %d",
					seed, len(res.Transports), inPlace, g.NumEdges())
			}
		}
	}
}
