// Package schedule implements the resource binding and scheduling stage of
// the paper's top-down synthesis flow (Section IV-A, Algorithm 1).
//
// Operations of the sequencing graph are processed in non-increasing
// priority order (priority = longest path to the sink). Each dequeued
// operation is bound to a component by a pluggable strategy:
//
//   - the DCSA strategy of the paper: Case I binds to the parent component
//     whose resident output has the lowest diffusion coefficient
//     (eliminating one transport and the most expensive wash), Case II
//     binds to the qualified component with the earliest ready time
//     t_ready(c) = t_remove(prev) + wash(prev) (Eq. 2);
//   - the baseline (BA) strategy of Section V: always earliest-ready.
//
// The engine then derives start/end times, transportation tasks between
// components, channel-caching episodes (a fluid evicted from its component
// because the component is needed, parked in flow channels until its
// consumer is ready — the defining feature of distributed channel
// storage), and the component wash episodes required before reuse.
package schedule

import (
	"fmt"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/unit"
)

// Options configures a scheduling run.
type Options struct {
	// TC is the user-defined transportation constant t_c between any two
	// components (the paper's experiments use 2 s).
	TC unit.Time
	// Wash converts residue diffusion coefficients into wash times.
	Wash fluid.WashModel
}

// DefaultOptions returns the paper's experimental parameters.
func DefaultOptions() Options {
	return Options{
		TC:   unit.Seconds(2),
		Wash: fluid.DefaultWashModel(),
	}
}

// BoundOp is the scheduling decision for one operation.
type BoundOp struct {
	Op    assay.OpID
	Comp  chip.CompID
	Start unit.Time
	End   unit.Time
	// InPlace reports that the operation consumed a parent's output
	// directly inside Comp (Case I binding): no transport, no wash.
	InPlace bool
	// InPlaceParent is the parent whose residue was consumed in place
	// (valid only when InPlace).
	InPlaceParent assay.OpID
}

// Transport is one transportation task: out(Producer) moves from the
// component it was produced on to the consumer's component. If the fluid
// was first evicted into channel storage, FromChannel is set and the cache
// interval is [CacheStart, Depart).
type Transport struct {
	ID       int
	Producer assay.OpID
	Consumer assay.OpID
	From     chip.CompID
	To       chip.CompID
	// Depart/Arrive bound the physical movement; Arrive-Depart == TC.
	Depart unit.Time
	Arrive unit.Time
	// FromChannel marks a fluid that waited in distributed channel
	// storage; CacheStart is the eviction instant.
	FromChannel bool
	CacheStart  unit.Time
	// Fluid is the transported sample; WashTime is the channel wash time
	// its residue requires (used by the router's cell weights).
	Fluid    fluid.Fluid
	WashTime unit.Time
}

// CacheDuration returns how long this fluid sat in channel storage before
// its final hop (zero for direct transports).
func (t Transport) CacheDuration() unit.Time {
	if !t.FromChannel {
		return 0
	}
	return t.Depart - t.CacheStart
}

// ChannelCache is one channel-storage episode: a fluid parked in flow
// channels from Start until End (its last consumer's departure).
type ChannelCache struct {
	Producer assay.OpID
	From     chip.CompID // component the fluid was evicted from
	Start    unit.Time
	End      unit.Time
	Fluid    fluid.Fluid
}

// Duration returns the length of the caching episode.
func (c ChannelCache) Duration() unit.Time { return c.End - c.Start }

// ComponentWash is a wash episode on a component after the residue of
// Residue departed.
type ComponentWash struct {
	Comp    chip.CompID
	Residue assay.OpID
	Start   unit.Time
	End     unit.Time
}

// Result is a complete binding and scheduling scheme.
type Result struct {
	Assay      *assay.Graph
	Comps      []chip.Component
	Opts       Options
	Ops        []BoundOp // indexed by OpID
	Transports []Transport
	Caches     []ChannelCache
	Washes     []ComponentWash
	Makespan   unit.Time
}

// Op returns the scheduling decision for the given operation.
func (r *Result) Op(id assay.OpID) BoundOp { return r.Ops[id] }

// Comp returns the allocated component with the given ID.
func (r *Result) Comp(id chip.CompID) chip.Component { return r.Comps[id] }

// Utilization computes the on-chip resource utilization U_r of Eq. 1:
// the average over all |C| allocated components of actual execution time
// divided by the active window (last end minus first start). Components
// that execute no operation contribute zero.
func (r *Result) Utilization() float64 {
	if len(r.Comps) == 0 {
		return 0
	}
	type win struct {
		busy        unit.Time
		first, last unit.Time
		used        bool
	}
	ws := make([]win, len(r.Comps))
	for _, bo := range r.Ops {
		w := &ws[bo.Comp]
		if !w.used || bo.Start < w.first {
			w.first = bo.Start
		}
		if !w.used || bo.End > w.last {
			w.last = bo.End
		}
		w.busy += bo.End - bo.Start
		w.used = true
	}
	var sum float64
	for _, w := range ws {
		if w.used && w.last > w.first {
			sum += float64(w.busy) / float64(w.last-w.first)
		}
	}
	return sum / float64(len(r.Comps))
}

// TotalChannelCacheTime sums the durations of all channel-storage episodes
// (the quantity of Fig. 8).
func (r *Result) TotalChannelCacheTime() unit.Time {
	var t unit.Time
	for _, c := range r.Caches {
		t += c.Duration()
	}
	return t
}

// TotalComponentWashTime sums all component wash episodes.
func (r *Result) TotalComponentWashTime() unit.Time {
	var t unit.Time
	for _, w := range r.Washes {
		t += w.End - w.Start
	}
	return t
}

// NumTransports returns the number of inter-component transportation tasks.
func (r *Result) NumTransports() int { return len(r.Transports) }

// String summarises the schedule.
func (r *Result) String() string {
	return fmt.Sprintf("schedule{%s: %d ops on %d comps, makespan %v, U_r %.1f%%, %d transports, %d caches}",
		r.Assay.Name(), len(r.Ops), len(r.Comps), r.Makespan, 100*r.Utilization(), len(r.Transports), len(r.Caches))
}
