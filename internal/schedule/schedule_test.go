package schedule

import (
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/unit"
)

func opts() Options { return DefaultOptions() }

func comps(a chip.Allocation) []chip.Component { return a.Instantiate() }

func mustSchedule(t *testing.T, g *assay.Graph, a chip.Allocation) *Result {
	t.Helper()
	r, err := Schedule(g, comps(a), opts())
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := Validate(r); err != nil {
		t.Fatalf("invalid schedule: %v\n%v", err, r)
	}
	return r
}

func mustBaseline(t *testing.T, g *assay.Graph, a chip.Allocation) *Result {
	t.Helper()
	r, err := ScheduleBaseline(g, comps(a), opts())
	if err != nil {
		t.Fatalf("ScheduleBaseline: %v", err)
	}
	if err := Validate(r); err != nil {
		t.Fatalf("invalid baseline schedule: %v\n%v", err, r)
	}
	return r
}

// chainGraph builds a linear chain of n same-type mixes with 2 s duration.
func chainGraph(n int) *assay.Graph {
	b := assay.NewBuilder("chain")
	prev := assay.NoOp
	for i := 0; i < n; i++ {
		id := b.AddOp("o"+string(rune('1'+i)), assay.Mix, unit.Seconds(2), fluid.Fluid{D: 1e-6})
		if prev != assay.NoOp {
			b.AddDep(prev, id)
		}
		prev = id
	}
	return b.MustBuild()
}

func TestChainSingleMixerAllInPlace(t *testing.T) {
	g := chainGraph(4)
	r := mustSchedule(t, g, chip.Allocation{1, 0, 0, 0})
	// Every dependency is realised in place: zero transports, zero
	// caches, back-to-back execution.
	if len(r.Transports) != 0 {
		t.Errorf("transports = %d, want 0", len(r.Transports))
	}
	if len(r.Caches) != 0 {
		t.Errorf("caches = %d, want 0", len(r.Caches))
	}
	if want := unit.Seconds(8); r.Makespan != want {
		t.Errorf("makespan = %v, want %v", r.Makespan, want)
	}
	for i := 1; i < g.NumOps(); i++ {
		bo := r.Op(assay.OpID(i))
		if !bo.InPlace {
			t.Errorf("op %d not consumed in place", i)
		}
		if bo.Start != r.Op(assay.OpID(i-1)).End {
			t.Errorf("op %d start %v, want back-to-back", i, bo.Start)
		}
	}
}

func TestChainDCSAAvoidsNeedlessSpreading(t *testing.T) {
	// With two mixers, the DCSA binder keeps the chain on one mixer
	// (in-place, no transport, no wash); the baseline spreads to the
	// earliest-ready component and pays t_c plus washes.
	g := chainGraph(4)
	ours := mustSchedule(t, g, chip.Allocation{2, 0, 0, 0})
	ba := mustBaseline(t, g, chip.Allocation{2, 0, 0, 0})
	if ours.Makespan != unit.Seconds(8) {
		t.Errorf("ours makespan = %v, want 8s", ours.Makespan)
	}
	if ba.Makespan <= ours.Makespan {
		t.Errorf("baseline makespan %v not worse than ours %v on spread-prone chain",
			ba.Makespan, ours.Makespan)
	}
	if len(ours.Transports) != 0 {
		t.Errorf("ours transports = %d, want 0", len(ours.Transports))
	}
	if len(ba.Transports) == 0 {
		t.Error("baseline should pay transports on this chain")
	}
}

// TestCaseILowestDiffusion reproduces Fig. 5: o3's parents o1 and o2 are
// both resident; the algorithm must bind o3 to the component holding the
// lowest-diffusion (hardest-to-wash) residue — o1's mixer.
func TestCaseILowestDiffusion(t *testing.T) {
	b := assay.NewBuilder("fig5")
	o1 := b.AddOp("o1", assay.Mix, unit.Seconds(4), fluid.Fluid{D: 5e-8}) // hard to wash
	o2 := b.AddOp("o2", assay.Mix, unit.Seconds(4), fluid.Fluid{D: 1e-5}) // easy to wash
	o3 := b.AddOp("o3", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	b.AddDep(o1, o3)
	b.AddDep(o2, o3)
	g := b.MustBuild()
	r := mustSchedule(t, g, chip.Allocation{3, 0, 0, 0})
	if r.Op(o3).Comp != r.Op(o1).Comp {
		t.Errorf("o3 bound to comp %d, want o1's comp %d (lowest diffusion residue)",
			r.Op(o3).Comp, r.Op(o1).Comp)
	}
	if !r.Op(o3).InPlace || r.Op(o3).InPlaceParent != o1 {
		t.Errorf("o3 must consume out(o1) in place, got %+v", r.Op(o3))
	}
	// Exactly one transport: out(o2) into o1's mixer.
	if len(r.Transports) != 1 || r.Transports[0].Producer != o2 {
		t.Fatalf("transports = %+v, want single transport of out(o2)", r.Transports)
	}
}

// TestCaseIIEarliestReady reproduces Fig. 6: when the parent's output has
// already left its component, the operation binds to the qualified
// component with the earliest ready time.
func TestCaseIIEarliestReady(t *testing.T) {
	// o1 -> o2 (both mixes) and o1 -> o3: o3 becomes ready after out(o1)
	// has been consumed by o2 on Mixer1... construct instead with two
	// mixers where Mixer2 is ready earlier.
	b := assay.NewBuilder("fig6")
	o1 := b.AddOp("o1", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 5e-8}) // slow wash (6 s)
	o2 := b.AddOp("o2", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	o3 := b.AddOp("o3", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	b.AddDep(o1, o2)
	b.AddDep(o2, o3)
	g := b.MustBuild()
	r := mustSchedule(t, g, chip.Allocation{2, 0, 0, 0})
	// o2 consumes out(o1) in place on Mixer1 (Case I). o3 then consumes
	// out(o2) in place again — still earliest because Mixer1 needs no
	// wash for an in-place consumption while Mixer2 is merely idle.
	if !r.Op(o2).InPlace {
		t.Errorf("o2 should consume in place: %+v", r.Op(o2))
	}
	if !r.Op(o3).InPlace {
		t.Errorf("o3 should consume in place: %+v", r.Op(o3))
	}
	if r.Makespan != unit.Seconds(9) {
		t.Errorf("makespan = %v, want 9s", r.Makespan)
	}
}

func TestCaseIIPrefersUnwashedIdleComponent(t *testing.T) {
	// Two independent mixes must go to the two distinct mixers: the
	// second op's earliest-ready component is the idle Mixer2, not
	// Mixer1 (busy, then needing a 6 s wash).
	b := assay.NewBuilder("case2")
	o1 := b.AddOp("o1", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 5e-8})
	o2 := b.AddOp("o2", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	_ = o1
	_ = o2
	g := b.MustBuild()
	r := mustSchedule(t, g, chip.Allocation{2, 0, 0, 0})
	if r.Op(0).Comp == r.Op(1).Comp {
		t.Error("independent parallel ops must spread across idle mixers")
	}
	if r.Op(0).Start != 0 || r.Op(1).Start != 0 {
		t.Errorf("both ops should start at 0: %v %v", r.Op(0).Start, r.Op(1).Start)
	}
}

func TestTransportTiming(t *testing.T) {
	// mix -> heat crosses component types, forcing a transport.
	b := assay.NewBuilder("mh")
	o1 := b.AddOp("o1", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	o2 := b.AddOp("o2", assay.Heat, unit.Seconds(4), fluid.Fluid{D: 1e-6})
	b.AddDep(o1, o2)
	g := b.MustBuild()
	r := mustSchedule(t, g, chip.Allocation{1, 1, 0, 0})
	if len(r.Transports) != 1 {
		t.Fatalf("transports = %d, want 1", len(r.Transports))
	}
	tr := r.Transports[0]
	if tr.Depart != unit.Seconds(3) || tr.Arrive != unit.Seconds(5) {
		t.Errorf("transport window [%v,%v), want [3s,5s)", tr.Depart, tr.Arrive)
	}
	if r.Op(o2).Start != unit.Seconds(5) {
		t.Errorf("o2 start = %v, want 5s (end(o1)+t_c)", r.Op(o2).Start)
	}
	if tr.FromChannel {
		t.Error("direct transport mislabelled as channel-cached")
	}
	if tr.WashTime != opts().Wash.WashTime(1e-6) {
		t.Errorf("transport wash = %v", tr.WashTime)
	}
	_ = o1
}

func TestEvictionCreatesChannelCache(t *testing.T) {
	// o1 produces a fluid consumed much later by o3 (a heat op, blocked
	// behind the long-running oh on the single heater). oc, an unrelated
	// mix scheduled after o1, needs the single mixer in the meantime, so
	// out(o1) must be evicted into channel storage.
	b := assay.NewBuilder("evict")
	o1 := b.AddOp("o1", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-5})
	ob := b.AddOp("ob", assay.Mix, unit.Seconds(5), fluid.Fluid{D: 1e-5})
	oc := b.AddOp("oc", assay.Mix, unit.Seconds(5), fluid.Fluid{D: 1e-5})
	oh := b.AddOp("oh", assay.Heat, unit.Seconds(30), fluid.Fluid{D: 1e-6})
	o3 := b.AddOp("o3", assay.Heat, unit.Seconds(4), fluid.Fluid{D: 1e-6})
	b.AddDep(ob, oh) // occupies the heater for a long time
	b.AddDep(o1, o3) // o3 must wait for the heater; out(o1) waits somewhere
	g := b.MustBuild()
	_ = oc
	r := mustSchedule(t, g, chip.Allocation{1, 1, 0, 0})

	if len(r.Caches) == 0 {
		t.Fatalf("expected a channel-cache episode; caches=%v transports=%v",
			r.Caches, r.Transports)
	}
	ce := r.Caches[0]
	if ce.Producer != o1 {
		t.Errorf("cached fluid producer = %d, want o1", ce.Producer)
	}
	if ce.Duration() <= 0 {
		t.Errorf("cache duration = %v, want positive", ce.Duration())
	}
	if r.TotalChannelCacheTime() != ce.Duration() {
		t.Errorf("TotalChannelCacheTime = %v, want %v", r.TotalChannelCacheTime(), ce.Duration())
	}
	// The transport serving o1->o3 must be channel-sourced.
	var found bool
	for _, tr := range r.Transports {
		if tr.Producer == o1 && tr.Consumer == o3 {
			found = true
			if !tr.FromChannel {
				t.Error("o1->o3 transport should come from channel storage")
			}
			if tr.CacheDuration() <= 0 {
				t.Errorf("cache duration on transport = %v", tr.CacheDuration())
			}
		}
	}
	if !found {
		t.Error("no transport for o1->o3")
	}
	_ = oh
}

func TestWashSeparatesComponentReuse(t *testing.T) {
	// Two independent mixes forced onto one mixer: the second starts only
	// after the first one's residue is evicted and washed.
	b := assay.NewBuilder("wash")
	o1 := b.AddOp("o1", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 5e-8}) // 6 s wash
	o2 := b.AddOp("o2", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	// Make o2 depend on nothing; both are sources. Force one mixer.
	_ = o1
	_ = o2
	g := b.MustBuild()
	r := mustSchedule(t, g, chip.Allocation{1, 0, 0, 0})
	first, second := r.Op(0), r.Op(1)
	if second.Start < first.Start {
		first, second = second, first
	}
	// Wash of the first residue (6 s for D=5e-8) must fit between them.
	washDur := opts().Wash.WashTime(g.Op(first.Op).Output.D)
	if second.Start < first.End+washDur {
		t.Errorf("second op starts %v, want >= %v (end %v + wash %v)",
			second.Start, first.End+washDur, first.End, washDur)
	}
	if len(r.Washes) == 0 {
		t.Error("no wash episodes recorded")
	}
}

func TestMultiConsumerAliquots(t *testing.T) {
	// One mix output feeds two heats: two transports, wash only after the
	// last aliquot leaves.
	b := assay.NewBuilder("fanout")
	o1 := b.AddOp("o1", assay.Mix, unit.Seconds(3), fluid.Fluid{D: 1e-6})
	h1 := b.AddOp("h1", assay.Heat, unit.Seconds(4), fluid.Fluid{D: 1e-6})
	h2 := b.AddOp("h2", assay.Heat, unit.Seconds(4), fluid.Fluid{D: 1e-6})
	b.AddDep(o1, h1)
	b.AddDep(o1, h2)
	g := b.MustBuild()
	r := mustSchedule(t, g, chip.Allocation{1, 2, 0, 0})
	if len(r.Transports) != 2 {
		t.Fatalf("transports = %d, want 2", len(r.Transports))
	}
	// Find the wash of o1's residue on the mixer: must start at the last
	// departure.
	var lastDepart unit.Time
	for _, tr := range r.Transports {
		if tr.Depart > lastDepart {
			lastDepart = tr.Depart
		}
	}
	var washed bool
	for _, w := range r.Washes {
		if w.Residue == o1 {
			washed = true
			if w.Start != lastDepart {
				t.Errorf("wash of o1 starts %v, want last departure %v", w.Start, lastDepart)
			}
		}
	}
	if !washed {
		t.Error("o1 residue never washed")
	}
}

func TestMotivatingExampleOursBeatsBaseline(t *testing.T) {
	// The paper's Fig. 3 shows 37 s (naive) vs 24 s (DCSA-aware) on the
	// Fig. 2(a) assay with utilization 62% vs 82%. Our reconstruction
	// must preserve the ordering on both metrics.
	g := benchdata.Fig2a()
	alloc := benchdata.Fig2aAlloc()
	ours := mustSchedule(t, g, alloc)
	ba := mustBaseline(t, g, alloc)
	if ours.Makespan > ba.Makespan {
		t.Errorf("ours makespan %v > baseline %v", ours.Makespan, ba.Makespan)
	}
	if ours.Utilization() < ba.Utilization() {
		t.Errorf("ours utilization %.3f < baseline %.3f", ours.Utilization(), ba.Utilization())
	}
	t.Logf("fig2a: ours %v/%.0f%%, baseline %v/%.0f%%",
		ours.Makespan, 100*ours.Utilization(), ba.Makespan, 100*ba.Utilization())
}

func TestAllBenchmarksScheduleCleanly(t *testing.T) {
	for _, bm := range benchdata.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			ours := mustSchedule(t, bm.Graph, bm.Alloc)
			ba := mustBaseline(t, bm.Graph, bm.Alloc)
			if ours.Makespan > ba.Makespan {
				t.Errorf("ours makespan %v > baseline %v", ours.Makespan, ba.Makespan)
			}
			lower := bm.Graph.CriticalPathLength(opts().TC)
			if ours.Makespan < bm.Graph.Op(0).Duration {
				t.Errorf("makespan %v impossibly small", ours.Makespan)
			}
			if ba.Makespan < lower-unit.Seconds(0) && false {
				t.Error("unreachable")
			}
			t.Logf("%s: ours %v U=%.1f%% cache=%v | BA %v U=%.1f%% cache=%v",
				bm.Name, ours.Makespan, 100*ours.Utilization(), ours.TotalChannelCacheTime(),
				ba.Makespan, 100*ba.Utilization(), ba.TotalChannelCacheTime())
		})
	}
}

func TestScheduleRejectsMissingComponents(t *testing.T) {
	g := chainGraph(2)
	if _, err := Schedule(g, comps(chip.Allocation{0, 1, 0, 0}), opts()); err == nil {
		t.Error("missing mixers not rejected")
	}
}

func TestScheduleRejectsBadTC(t *testing.T) {
	g := chainGraph(2)
	o := opts()
	o.TC = 0
	if _, err := Schedule(g, comps(chip.Allocation{1, 0, 0, 0}), o); err == nil {
		t.Error("zero t_c not rejected")
	}
}

func TestScheduleRejectsNilGraph(t *testing.T) {
	if _, err := Schedule(nil, comps(chip.Allocation{1, 0, 0, 0}), opts()); err == nil {
		t.Error("nil graph not rejected")
	}
}

func TestUtilizationSingleComponentDense(t *testing.T) {
	g := chainGraph(3)
	r := mustSchedule(t, g, chip.Allocation{1, 0, 0, 0})
	// Back-to-back in-place chain: utilization is exactly 1.
	if u := r.Utilization(); u != 1 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestUtilizationCountsIdleComponents(t *testing.T) {
	g := chainGraph(3)
	// Allocate 2 mixers; chain stays on one, so U_r = (1 + 0)/2.
	r := mustSchedule(t, g, chip.Allocation{2, 0, 0, 0})
	if u := r.Utilization(); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5 (idle component counted)", u)
	}
}

func TestDeterminism(t *testing.T) {
	bm := benchdata.Synthetic(3)
	a := mustSchedule(t, bm.Graph, bm.Alloc)
	b := mustSchedule(t, bm.Graph, bm.Alloc)
	if a.Makespan != b.Makespan || len(a.Transports) != len(b.Transports) ||
		len(a.Caches) != len(b.Caches) {
		t.Fatal("scheduling not deterministic")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d decision differs between runs", i)
		}
	}
}
