package schedule

import (
	"context"
	"fmt"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/unit"
)

// dcsaBinder implements the binding strategy of Algorithm 1.
//
// Case I (lines 6-8): if at least one father operation of the same type
// still has its output fluid inside the component it was bound to, bind to
// the component among those whose resident fluid has the lowest diffusion
// coefficient — the transport of that input is eliminated and the most
// expensive pending wash is avoided.
//
// Case II (lines 9-11): otherwise bind to the qualified component with the
// earliest ready time (Eq. 2).
type dcsaBinder struct{}

func (dcsaBinder) choose(e *engine, op assay.Operation) chip.CompID {
	best := chip.NoComp
	bestD := unit.Diffusion(0)
	var bestParent assay.OpID
	for _, p := range e.g.Parents(op.ID) {
		pop := e.g.Op(p)
		if pop.Type != op.Type {
			continue
		}
		tk := e.tokens[p]
		// Only fluids that can be consumed in place qualify: with other
		// consumers still pending, the fluid would have to be evicted,
		// washed and brought back, so neither Case-I benefit (no
		// transport, no wash) materialises.
		if tk == nil || tk.state != tokenInComp || tk.remaining != 1 {
			continue
		}
		if !e.usable(tk.comp) {
			continue
		}
		if best == chip.NoComp || pop.Output.D < bestD ||
			(pop.Output.D == bestD && p < bestParent) {
			best = tk.comp
			bestD = pop.Output.D
			bestParent = p
		}
	}
	if best != chip.NoComp {
		return best
	}
	return earliestStart(e, op)
}

// earliestStart implements the DCSA-aware reading of Case II: among the
// qualified components it minimises the operation's actual start time
// (component ready time combined with input-fluid arrivals, which any
// component must wait for anyway) and breaks ties in favour of components
// that hold no resident fluid — binding there would evict another
// operation's output into channel storage and destroy a pending Case-I
// opportunity for its consumer, for no gain in start time.
func earliestStart(e *engine, op assay.Operation) chip.CompID {
	best := chip.NoComp
	var bestT unit.Time
	var bestWash unit.Time // wash of the resident we would evict; 0 if none
	for i := range e.comps {
		cs := &e.comps[i]
		if cs.comp.Kind.Type != op.Type || !e.usable(cs.comp.ID) {
			continue
		}
		t, _ := e.startTime(cs.comp.ID, op)
		var evictWash unit.Time
		if cs.resident != nil {
			evictWash = cs.resident.washDur
		}
		if best == chip.NoComp || t < bestT ||
			(t == bestT && evictWash < bestWash) {
			best = cs.comp.ID
			bestT = t
			bestWash = evictWash
		}
	}
	return best
}

// baselineBinder implements the comparison algorithm BA of Section V: it
// always binds a ready operation to the qualified component with the
// earliest ready time, with no awareness of resident fluids or wash costs.
type baselineBinder struct{}

func (baselineBinder) choose(e *engine, op assay.Operation) chip.CompID {
	return earliestReady(e, op)
}

// earliestReady returns the component of op's type with the smallest ready
// time, breaking ties by component ID for determinism.
func earliestReady(e *engine, op assay.Operation) chip.CompID {
	best := chip.NoComp
	var bestT unit.Time
	for i := range e.comps {
		cs := &e.comps[i]
		if cs.comp.Kind.Type != op.Type || !e.usable(cs.comp.ID) {
			continue
		}
		t, _ := e.readyTime(cs.comp.ID, op)
		if best == chip.NoComp || t < bestT {
			best = cs.comp.ID
			bestT = t
		}
	}
	return best
}

// fixedBinder binds every operation to a prescribed component. It is the
// hook used by the exhaustive optimal search (internal/exact).
type fixedBinder struct {
	binding []chip.CompID // indexed by OpID
}

func (f fixedBinder) choose(e *engine, op assay.Operation) chip.CompID {
	return f.binding[op.ID]
}

// ScheduleWithBinding schedules g with the binding function Φ fixed to
// the given per-operation component assignment; only the timing is
// derived. It is used to search for optimal bindings on small assays.
func ScheduleWithBinding(g *assay.Graph, comps []chip.Component, opts Options, binding []chip.CompID) (*Result, error) {
	if g != nil && len(binding) != g.NumOps() {
		return nil, fmt.Errorf("schedule: binding covers %d of %d operations", len(binding), g.NumOps())
	}
	return run(context.Background(), g, comps, opts, fixedBinder{binding: binding})
}

// Schedule runs the paper's DCSA-aware binding and scheduling algorithm
// (Algorithm 1) for assay g on the given allocated components.
func Schedule(g *assay.Graph, comps []chip.Component, opts Options) (*Result, error) {
	return run(context.Background(), g, comps, opts, dcsaBinder{})
}

// ScheduleContext is Schedule with cancellation: the list-scheduling loop
// polls ctx between operation commits and aborts with ctx's error when it
// is done. An uncancelled context yields exactly Schedule's output.
func ScheduleContext(ctx context.Context, g *assay.Graph, comps []chip.Component, opts Options) (*Result, error) {
	return run(ctx, g, comps, opts, dcsaBinder{})
}

// ScheduleBaseline runs the baseline algorithm BA used for comparison in
// Section V of the paper.
func ScheduleBaseline(g *assay.Graph, comps []chip.Component, opts Options) (*Result, error) {
	return run(context.Background(), g, comps, opts, baselineBinder{})
}

// ScheduleBaselineContext is ScheduleBaseline with cancellation (see
// ScheduleContext).
func ScheduleBaselineContext(ctx context.Context, g *assay.Graph, comps []chip.Component, opts Options) (*Result, error) {
	return run(ctx, g, comps, opts, baselineBinder{})
}
