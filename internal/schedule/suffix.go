package schedule

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"repro/internal/assay"
	"repro/internal/chip"
	"repro/internal/obs"
	"repro/internal/unit"
)

// Suffix rescheduling re-enters the list scheduler at an execution cut:
// given a complete schedule, a report instant, and a set of failed
// components, it keeps every operation that has already started (the
// executed prefix) byte-for-byte intact and re-derives only the rest on
// the surviving components. The prefix is never replayed through the
// binder — its rows, transports, caches and washes are transplanted from
// the previous result — so the frozen history cannot drift, no matter how
// the suffix is rebound.
//
// The cut is taken on operation start times: an operation with
// Start < at has been issued on the physical chip and is immutable (even
// if it finishes after the cut); everything else, including channel-cache
// evictions that only served not-yet-started consumers, is re-plannable.
// Physically this models a controller that, upon receiving a fault
// report, lets running operations complete and holds every fluid whose
// next consumer has not started inside its producing component until the
// repaired plan takes over.

// Typed infeasibility causes. A session maps these to the "abandoned"
// outcome: no amount of rescheduling can recover from them.
var (
	// ErrMidExecution: an operation was running on a component at the
	// instant that component was reported failed.
	ErrMidExecution = errors.New("operation mid-execution on failed component")
	// ErrFluidLost: a fluid was resident inside a failed component while
	// later operations still need aliquots of it.
	ErrFluidLost = errors.New("fluid resident in failed component")
	// ErrNoComponent: an unexecuted operation's type has no surviving
	// component left to run on.
	ErrNoComponent = errors.New("no surviving component for operation type")
)

// Executed reports, per operation, whether it belongs to the executed
// prefix of r at cut instant at (operation start strictly before the
// cut). This is the single definition of the prefix shared by the
// rescheduler, the route repairer and the repair auditor.
func Executed(r *Result, at unit.Time) []bool {
	ex := make([]bool, len(r.Ops))
	for i, bo := range r.Ops {
		ex[i] = bo.Start < at
	}
	return ex
}

// RescheduleSuffix rebuilds the not-yet-executed suffix of prev on the
// surviving components. banned is indexed by component ID (nil means no
// component failed); at is the execution cut. The executed prefix of the
// returned result — operation rows, the transports serving them, and the
// cache/wash episodes they caused — is identical to prev's; every newly
// derived start time is at or after the cut. The suffix is bound with the
// paper's DCSA-aware strategy (Algorithm 1), restricted to usable
// components.
func RescheduleSuffix(prev *Result, at unit.Time, banned []bool) (*Result, error) {
	return RescheduleSuffixContext(context.Background(), prev, at, banned)
}

// RescheduleSuffixContext is RescheduleSuffix with cancellation and
// fault-plan polling (same contract as ScheduleContext).
func RescheduleSuffixContext(ctx context.Context, prev *Result, at unit.Time, banned []bool) (*Result, error) {
	if prev == nil || prev.Assay == nil {
		return nil, fmt.Errorf("schedule: reschedule of nil result")
	}
	g := prev.Assay
	if banned != nil && len(banned) != len(prev.Comps) {
		return nil, fmt.Errorf("schedule: banned set covers %d of %d components", len(banned), len(prev.Comps))
	}
	if len(prev.Ops) != g.NumOps() {
		return nil, fmt.Errorf("schedule: previous result covers %d of %d operations", len(prev.Ops), g.NumOps())
	}

	executed := Executed(prev, at)
	// The cut is ancestor-closed by construction (a parent ends at or
	// before its child starts, and durations are positive); verify anyway
	// so a corrupted input fails loudly instead of producing a schedule
	// that silently violates precedence.
	for id := 0; id < g.NumOps(); id++ {
		if !executed[id] {
			continue
		}
		for _, p := range g.Parents(assay.OpID(id)) {
			if !executed[p] {
				return nil, fmt.Errorf("schedule: execution cut at %v is not ancestor-closed (op %d executed, parent %d not)", at, id, p)
			}
		}
	}

	isBanned := func(c chip.CompID) bool { return banned != nil && banned[c] }

	// Infeasibility screens. Mid-execution first: a banned component that
	// was busy across the cut has destroyed the operation it was running.
	for id, bo := range prev.Ops {
		if executed[id] && isBanned(bo.Comp) && bo.End > at {
			return nil, fmt.Errorf("schedule: op %d runs on failed component %d across the cut: %w", id, bo.Comp, ErrMidExecution)
		}
	}
	// Type coverage for the suffix on surviving components.
	have := make([]int, assay.NumOpTypes)
	for _, c := range prev.Comps {
		if !isBanned(c.ID) {
			have[c.Kind.Type]++
		}
	}
	for id := 0; id < g.NumOps(); id++ {
		if executed[id] {
			continue
		}
		if t := g.Op(assay.OpID(id)).Type; have[t] == 0 {
			return nil, fmt.Errorf("schedule: %v operations have no surviving component: %w", t, ErrNoComponent)
		}
	}

	e := &engine{
		g:      g,
		opts:   prev.Opts,
		tr:     obs.From(ctx),
		comps:  make([]compState, len(prev.Comps)),
		tokens: make([]*token, g.NumOps()),
		res: &Result{
			Assay: g,
			Comps: append([]chip.Component(nil), prev.Comps...),
			Opts:  prev.Opts,
			Ops:   make([]BoundOp, g.NumOps()),
		},
		banned:    banned,
		notBefore: at,
	}
	for i, c := range prev.Comps {
		if c.ID != chip.CompID(i) {
			return nil, fmt.Errorf("schedule: component %d has non-dense ID %d", i, c.ID)
		}
		e.comps[i] = compState{comp: c}
	}

	// Transplant the executed rows and per-component timelines.
	for id, bo := range prev.Ops {
		if !executed[id] {
			continue
		}
		e.res.Ops[id] = bo
		if cs := &e.comps[bo.Comp]; bo.End > cs.lastEnd {
			cs.lastEnd = bo.End
		}
	}

	// Frozen transports: those serving executed consumers. They are
	// copied in prev order with IDs renumbered to stay equal to their
	// index; new suffix transports will append after them.
	frozenDepart := make(map[assay.OpID]unit.Time) // producer -> latest frozen departure
	frozenFromChannel := make(map[assay.OpID]bool) // producer drew a frozen aliquot from channel
	for _, tr := range prev.Transports {
		if !executed[tr.Consumer] {
			continue
		}
		tr.ID = len(e.res.Transports)
		e.res.Transports = append(e.res.Transports, tr)
		if tr.Depart > frozenDepart[tr.Producer] {
			frozenDepart[tr.Producer] = tr.Depart
		}
		if tr.FromChannel {
			frozenFromChannel[tr.Producer] = true
		}
	}

	// A cache episode is frozen — the eviction physically happened before
	// the cut — iff an executed consumer drew from it, or an executed
	// operation reused the source component at or after the eviction (the
	// eviction was forced by that operation's commit). Otherwise the
	// eviction only served re-plannable work: the repaired plan holds the
	// fluid in its component instead, and the episode is dropped.
	cacheOf := make(map[assay.OpID]int) // producer -> index into prev.Caches
	for i, q := range prev.Caches {
		if _, dup := cacheOf[q.Producer]; !dup {
			cacheOf[q.Producer] = i
		}
	}
	cacheFrozen := func(q ChannelCache) bool {
		if frozenFromChannel[q.Producer] {
			return true
		}
		for id, bo := range prev.Ops {
			if executed[id] && assay.OpID(id) != q.Producer && bo.Comp == q.From && bo.Start >= q.Start {
				return true
			}
		}
		return false
	}

	// Token reconstruction for every executed producer, in ID order.
	for id := 0; id < g.NumOps(); id++ {
		if !executed[id] {
			continue
		}
		p := assay.OpID(id)
		op := g.Op(p)
		bo := prev.Ops[id]
		children := g.Children(p)
		consumed := 0
		inPlaceConsumed := false
		inPlaceStart := unit.Time(0)
		for _, ch := range children {
			if executed[ch] {
				consumed++
				if prev.Ops[ch].InPlace && prev.Ops[ch].InPlaceParent == p {
					inPlaceConsumed = true
					inPlaceStart = prev.Ops[ch].Start
				}
			}
		}
		remaining := len(children) - consumed
		washDur := e.opts.Wash.WashTime(op.Output.D)
		tk := &token{
			producer:  p,
			comp:      bo.Comp,
			washDur:   washDur,
			cacheIdx:  -1,
			remaining: remaining,
			maxDepart: frozenDepart[p],
		}
		e.tokens[id] = tk

		ci, hasCache := cacheOf[p]
		frozen := hasCache && cacheFrozen(prev.Caches[ci])
		switch {
		case len(children) == 0:
			// Final product, collected at the output port; its wash is
			// part of the frozen history.
			tk.state = tokenGone
			e.addWash(bo.Comp, p, bo.End, bo.End+washDur)
		case remaining == 0 && frozen:
			// Fully consumed, last aliquots drawn from channel storage;
			// the evict wash below covers the component.
			tk.state = tokenGone
		case remaining == 0:
			tk.state = tokenGone
			if !inPlaceConsumed {
				// Last aliquot departed from the component: the wash
				// after the latest departure is frozen history. (An
				// in-place consumption merges into the child and never
				// washes.)
				e.addWash(bo.Comp, p, tk.maxDepart, tk.maxDepart+washDur)
			}
		case frozen:
			// Evicted before the cut: the fluid sits in channel storage.
			tk.state = tokenInChannel
			tk.evict = prev.Caches[ci].Start
		case inPlaceConsumed:
			// An executed child consumed the residue in place, which is
			// only possible once every other aliquot had left the
			// component. The pending aliquots are therefore parked in
			// distributed channel storage: open a synthetic cache episode
			// at the instant they were displaced (the earlier of the
			// in-place consumer's start and the earliest planned
			// departure). In-place consumption merges the residue into
			// the child, so no wash accompanies this episode.
			evict := inPlaceStart
			for _, tr := range prev.Transports {
				if tr.Producer == p && !executed[tr.Consumer] && tr.Depart < evict {
					evict = tr.Depart
				}
			}
			if evict < bo.End {
				evict = bo.End
			}
			tk.state = tokenInChannel
			tk.evict = evict
			tk.cacheIdx = len(e.res.Caches)
			e.res.Caches = append(e.res.Caches, ChannelCache{
				Producer: p,
				From:     bo.Comp,
				Start:    evict,
				End:      evict, // extended as suffix consumers depart
				Fluid:    op.Output,
			})
		default:
			// The fluid is (back) inside its producing component; it may
			// not be evicted before the cut.
			tk.state = tokenInComp
			tk.floor = at
			cs := &e.comps[bo.Comp]
			if cs.resident != nil {
				return nil, fmt.Errorf("schedule: components %d holds two resumed fluids (%d, %d)",
					bo.Comp, cs.resident.producer, p)
			}
			cs.resident = tk
			if isBanned(bo.Comp) {
				return nil, fmt.Errorf("schedule: output of op %d is inside failed component %d with %d consumers pending: %w",
					p, bo.Comp, remaining, ErrFluidLost)
			}
		}
		if frozen {
			q := prev.Caches[ci]
			// Clamp the episode end to the latest frozen departure; suffix
			// consumers drawing from the channel will re-extend it.
			end := q.Start
			if d := frozenDepart[p]; d > end {
				end = d
			}
			q.End = end
			tk.cacheIdx = len(e.res.Caches)
			e.res.Caches = append(e.res.Caches, q)
			// The evict wash is frozen history.
			e.addWash(q.From, p, q.Start, q.Start+washDur)
		}
	}

	// Component wash horizons from the transplanted washes.
	for _, w := range e.res.Washes {
		if cs := &e.comps[w.Comp]; w.End > cs.washReady {
			cs.washReady = w.End
		}
	}

	// Priority queue over the suffix only; executed parents count as
	// already satisfied.
	pr := g.Priorities(e.opts.TC)
	q := &opQueue{pr: pr}
	pending := make([]int, g.NumOps())
	suffix := 0
	for id := 0; id < g.NumOps(); id++ {
		if executed[id] {
			continue
		}
		suffix++
		for _, p := range g.Parents(assay.OpID(id)) {
			if !executed[p] {
				pending[id]++
			}
		}
		if pending[id] == 0 {
			heap.Push(q, assay.OpID(id))
		}
	}

	scheduled, err := e.drain(ctx, dcsaBinder{}, q, pending)
	if err != nil {
		return nil, err
	}
	if scheduled != suffix {
		return nil, fmt.Errorf("schedule: only %d of %d suffix operations scheduled", scheduled, suffix)
	}
	e.finish(scheduled)
	return e.res, nil
}
