package schedule

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/fluid"
	"repro/internal/unit"
)

// edgeKey identifies a transport by the dependency edge it serves; IDs are
// renumbered across rescheduling, so frozen-transport comparisons key on
// the edge.
type edgeKey struct {
	p, c assay.OpID
}

func frozenEdges(r *Result, at unit.Time) map[edgeKey]Transport {
	m := make(map[edgeKey]Transport)
	for _, tr := range r.Transports {
		if r.Ops[tr.Consumer].Start < at {
			k := edgeKey{tr.Producer, tr.Consumer}
			tr.ID = 0 // renumbered; not part of the frozen identity
			m[k] = tr
		}
	}
	return m
}

// TestRescheduleSuffixFullEquivalence: a cut at zero with no failed
// components is a full reschedule and must reproduce the fresh DCSA run
// byte for byte on every benchmark.
func TestRescheduleSuffixFullEquivalence(t *testing.T) {
	for _, bm := range benchdata.All() {
		prev := mustSchedule(t, bm.Graph, bm.Alloc)
		got, err := RescheduleSuffix(prev, 0, nil)
		if err != nil {
			t.Fatalf("%s: RescheduleSuffix(0): %v", bm.Name, err)
		}
		if !reflect.DeepEqual(got.Ops, prev.Ops) {
			t.Errorf("%s: ops differ from fresh schedule", bm.Name)
		}
		if !reflect.DeepEqual(got.Transports, prev.Transports) {
			t.Errorf("%s: transports differ from fresh schedule", bm.Name)
		}
		if !reflect.DeepEqual(got.Caches, prev.Caches) {
			t.Errorf("%s: caches differ from fresh schedule", bm.Name)
		}
		if !reflect.DeepEqual(got.Washes, prev.Washes) {
			t.Errorf("%s: washes differ from fresh schedule", bm.Name)
		}
		if got.Makespan != prev.Makespan {
			t.Errorf("%s: makespan %v != %v", bm.Name, got.Makespan, prev.Makespan)
		}
	}
}

// TestRescheduleSuffixPrefixFrozen: cutting every benchmark mid-flight
// must keep the executed rows and their transports identical, keep every
// new start at or after the cut, and still validate.
func TestRescheduleSuffixPrefixFrozen(t *testing.T) {
	for _, bm := range benchdata.All() {
		prev := mustSchedule(t, bm.Graph, bm.Alloc)
		for _, frac := range []int64{1, 2, 3} {
			at := unit.Time(int64(prev.Makespan) * frac / 4)
			got, err := RescheduleSuffix(prev, at, nil)
			if err != nil {
				t.Fatalf("%s@%v: RescheduleSuffix: %v", bm.Name, at, err)
			}
			if err := Validate(got); err != nil {
				t.Fatalf("%s@%v: invalid repaired schedule: %v", bm.Name, at, err)
			}
			executed := Executed(prev, at)
			for id, ex := range executed {
				if ex && got.Ops[id] != prev.Ops[id] {
					t.Errorf("%s@%v: executed op %d drifted: %+v != %+v",
						bm.Name, at, id, got.Ops[id], prev.Ops[id])
				}
				if !ex && got.Ops[id].Start < at {
					t.Errorf("%s@%v: suffix op %d starts %v before the cut",
						bm.Name, at, id, got.Ops[id].Start)
				}
			}
			if want, have := frozenEdges(prev, at), frozenEdges(got, at); !reflect.DeepEqual(want, have) {
				t.Errorf("%s@%v: frozen transports drifted", bm.Name, at)
			}
			// Determinism: the repair is a pure function of its inputs.
			again, err := RescheduleSuffix(prev, at, nil)
			if err != nil {
				t.Fatalf("%s@%v: second RescheduleSuffix: %v", bm.Name, at, err)
			}
			if !reflect.DeepEqual(got, again) {
				t.Errorf("%s@%v: rescheduling is not deterministic", bm.Name, at)
			}
		}
	}
}

// TestRescheduleSuffixBannedComp: failing one of several mixers mid-assay
// must move all remaining work off it while freezing the prefix.
func TestRescheduleSuffixBannedComp(t *testing.T) {
	bm := benchdata.Synthetic(3)
	prev := mustSchedule(t, bm.Graph, bm.Alloc)
	at := prev.Makespan / 2

	// Ban a component that still has suffix work, so the repair actually
	// rebinds something.
	banned := make([]bool, len(prev.Comps))
	victim := chip.NoComp
	for id, bo := range prev.Ops {
		if bo.Start >= at && bo.End > at {
			// Only ban a component that is idle across the cut: no
			// executed op may straddle it.
			busy := false
			for _, other := range prev.Ops {
				if other.Comp == bo.Comp && other.Start < at && other.End > at {
					busy = true
					break
				}
			}
			if !busy {
				victim = bo.Comp
				_ = id
				break
			}
		}
	}
	if victim == chip.NoComp {
		t.Skip("no idle component with suffix work at this cut")
	}
	banned[victim] = true

	got, err := RescheduleSuffix(prev, at, banned)
	if err != nil {
		if errors.Is(err, ErrFluidLost) {
			t.Skipf("victim %d holds a live fluid at the cut: %v", victim, err)
		}
		t.Fatalf("RescheduleSuffix: %v", err)
	}
	if err := Validate(got); err != nil {
		t.Fatalf("invalid repaired schedule: %v", err)
	}
	for id, bo := range got.Ops {
		if bo.Comp == victim && bo.End > at {
			t.Errorf("op %d still uses failed component %d past the cut", id, victim)
		}
	}
	executed := Executed(prev, at)
	for id, ex := range executed {
		if ex && got.Ops[id] != prev.Ops[id] {
			t.Errorf("executed op %d drifted after component ban", id)
		}
	}
}

// forkGraph: one mixer output feeding two heater consumers — the fluid
// stays resident in the mixer until both aliquots depart.
func forkGraph() *assay.Graph {
	b := assay.NewBuilder("fork")
	o1 := b.AddOp("o1", assay.Mix, unit.Seconds(2), fluid.Fluid{D: 1e-6})
	o2 := b.AddOp("o2", assay.Heat, unit.Seconds(2), fluid.Fluid{D: 1e-6})
	o3 := b.AddOp("o3", assay.Heat, unit.Seconds(2), fluid.Fluid{D: 1e-6})
	b.AddDep(o1, o2)
	b.AddDep(o1, o3)
	return b.MustBuild()
}

func TestRescheduleSuffixTypedErrors(t *testing.T) {
	alloc := chip.Allocation{}
	alloc[assay.Mix] = 1
	alloc[assay.Heat] = 1
	g := forkGraph()
	prev := mustSchedule(t, g, alloc)
	mixer := prev.Ops[0].Comp
	banned := make([]bool, len(prev.Comps))
	banned[mixer] = true

	// Cut inside o1's run: the mixer fails while o1 executes on it.
	mid := prev.Ops[0].Start + unit.Seconds(1)
	if _, err := RescheduleSuffix(prev, mid, banned); !errors.Is(err, ErrMidExecution) {
		t.Errorf("mid-execution cut: err = %v, want ErrMidExecution", err)
	}

	// Cut just after o1 completes: its output is resident in the failed
	// mixer with both consumers pending.
	after := prev.Ops[0].End + unit.Millisecond
	if _, err := RescheduleSuffix(prev, after, banned); !errors.Is(err, ErrFluidLost) {
		t.Errorf("resident-fluid cut: err = %v, want ErrFluidLost", err)
	}

	// A chain on the only mixer: banning it leaves Mix uncovered.
	cg := chainGraph(4)
	cprev := mustSchedule(t, cg, chip.Allocation{1, 0, 0, 0})
	cbanned := make([]bool, len(cprev.Comps))
	cbanned[cprev.Ops[0].Comp] = true
	cut := cprev.Ops[0].End // op 0 executed, op 1 not yet started
	if _, err := RescheduleSuffix(cprev, cut, cbanned); !errors.Is(err, ErrNoComponent) {
		t.Errorf("uncovered-type cut: err = %v, want ErrNoComponent", err)
	}
}
