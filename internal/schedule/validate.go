package schedule

import (
	"fmt"
	"sort"

	"repro/internal/assay"
)

// Validate checks a Result against the physical and causal invariants of
// Section II-C independently of how it was produced:
//
//   - every operation is bound to a component of its own type and runs for
//     exactly its execution time;
//   - every fluidic dependency is realised either by in-place consumption
//     on a shared component or by exactly one transportation task of
//     duration t_c that departs after the producer finishes and arrives no
//     later than the consumer starts;
//   - operations on the same component never overlap, and wash episodes
//     never overlap operations on their component;
//   - channel-cache episodes are well formed and consistent with their
//     transports.
//
// It is used by the test suite and by the end-to-end simulator.
func Validate(r *Result) error {
	if r == nil || r.Assay == nil {
		return fmt.Errorf("schedule: nil result")
	}
	g := r.Assay
	if len(r.Ops) != g.NumOps() {
		return fmt.Errorf("schedule: %d decisions for %d operations", len(r.Ops), g.NumOps())
	}

	// Per-operation checks.
	for i, bo := range r.Ops {
		op := g.Op(assay.OpID(i))
		if bo.Op != op.ID {
			return fmt.Errorf("op %d: decision records ID %d", i, bo.Op)
		}
		if bo.Comp < 0 || int(bo.Comp) >= len(r.Comps) {
			return fmt.Errorf("op %q: bound to unknown component %d", op.Name, bo.Comp)
		}
		if r.Comps[bo.Comp].Kind.Type != op.Type {
			return fmt.Errorf("op %q (%v): bound to %s", op.Name, op.Type, r.Comps[bo.Comp].Name())
		}
		if bo.Start < 0 {
			return fmt.Errorf("op %q: negative start %v", op.Name, bo.Start)
		}
		if bo.End != bo.Start+op.Duration {
			return fmt.Errorf("op %q: end %v != start %v + duration %v", op.Name, bo.End, bo.Start, op.Duration)
		}
	}

	// Dependency realisation.
	type edgeKey struct{ p, c assay.OpID }
	trByEdge := make(map[edgeKey]*Transport)
	for i := range r.Transports {
		tr := &r.Transports[i]
		k := edgeKey{tr.Producer, tr.Consumer}
		if trByEdge[k] != nil {
			return fmt.Errorf("duplicate transport for edge %d->%d", tr.Producer, tr.Consumer)
		}
		trByEdge[k] = tr
	}
	for _, e := range g.Edges() {
		p, c := r.Ops[e.From], r.Ops[e.To]
		tr := trByEdge[edgeKey{e.From, e.To}]
		if c.InPlace && c.InPlaceParent == e.From {
			if tr != nil {
				return fmt.Errorf("edge %d->%d consumed in place but also transported", e.From, e.To)
			}
			if p.Comp != c.Comp {
				return fmt.Errorf("edge %d->%d in place across components %d and %d", e.From, e.To, p.Comp, c.Comp)
			}
			if c.Start < p.End {
				return fmt.Errorf("edge %d->%d: in-place consumer starts %v before producer ends %v",
					e.From, e.To, c.Start, p.End)
			}
			continue
		}
		if tr == nil {
			return fmt.Errorf("edge %d->%d has neither transport nor in-place consumption", e.From, e.To)
		}
		if tr.Arrive-tr.Depart != r.Opts.TC {
			return fmt.Errorf("transport %d: duration %v != t_c %v", tr.ID, tr.Arrive-tr.Depart, r.Opts.TC)
		}
		if tr.Depart < p.End {
			return fmt.Errorf("transport %d departs %v before producer %d ends %v", tr.ID, tr.Depart, e.From, p.End)
		}
		if tr.Arrive > c.Start {
			return fmt.Errorf("transport %d arrives %v after consumer %d starts %v", tr.ID, tr.Arrive, e.To, c.Start)
		}
		if tr.From != p.Comp {
			return fmt.Errorf("transport %d departs from %d, producer on %d", tr.ID, tr.From, p.Comp)
		}
		if tr.To != c.Comp {
			return fmt.Errorf("transport %d arrives at %d, consumer on %d", tr.ID, tr.To, c.Comp)
		}
		if tr.FromChannel {
			if tr.CacheStart < p.End || tr.CacheStart > tr.Depart {
				return fmt.Errorf("transport %d: cache start %v outside [%v,%v]",
					tr.ID, tr.CacheStart, p.End, tr.Depart)
			}
		}
	}
	// No transport may exist for a non-edge.
	edges := make(map[edgeKey]bool, g.NumEdges())
	for _, e := range g.Edges() {
		edges[edgeKey{e.From, e.To}] = true
	}
	for _, tr := range r.Transports {
		if !edges[edgeKey{tr.Producer, tr.Consumer}] {
			return fmt.Errorf("transport %d serves non-existent edge %d->%d", tr.ID, tr.Producer, tr.Consumer)
		}
	}

	// Component exclusivity and wash placement.
	byComp := make([][]BoundOp, len(r.Comps))
	for _, bo := range r.Ops {
		byComp[bo.Comp] = append(byComp[bo.Comp], bo)
	}
	for c, ops := range byComp {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
		for i := 1; i < len(ops); i++ {
			if ops[i].Start < ops[i-1].End {
				return fmt.Errorf("component %s: operations %d and %d overlap",
					r.Comps[c].Name(), ops[i-1].Op, ops[i].Op)
			}
		}
	}
	for _, w := range r.Washes {
		if w.Start > w.End {
			return fmt.Errorf("wash on %d: negative interval [%v,%v)", w.Comp, w.Start, w.End)
		}
		if w.Comp < 0 || int(w.Comp) >= len(r.Comps) {
			return fmt.Errorf("wash on unknown component %d", w.Comp)
		}
		for _, bo := range byComp[w.Comp] {
			if w.Start < bo.End && bo.Start < w.End {
				return fmt.Errorf("wash [%v,%v) on %s overlaps operation %d [%v,%v)",
					w.Start, w.End, r.Comps[w.Comp].Name(), bo.Op, bo.Start, bo.End)
			}
		}
	}

	// Cache episodes.
	for i, ce := range r.Caches {
		if ce.Start > ce.End {
			return fmt.Errorf("cache %d: negative interval [%v,%v)", i, ce.Start, ce.End)
		}
		if ce.Start < r.Ops[ce.Producer].End {
			return fmt.Errorf("cache %d starts %v before producer %d ends %v",
				i, ce.Start, ce.Producer, r.Ops[ce.Producer].End)
		}
	}

	// Makespan.
	var last assay.OpID
	var maxEnd = r.Ops[0].End
	for _, bo := range r.Ops {
		if bo.End > maxEnd {
			maxEnd = bo.End
			last = bo.Op
		}
	}
	if r.Makespan != maxEnd {
		return fmt.Errorf("makespan %v != latest end %v (op %d)", r.Makespan, maxEnd, last)
	}

	if u := r.Utilization(); u < 0 || u > 1 {
		return fmt.Errorf("utilization %v outside [0,1]", u)
	}
	return nil
}
