package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// alloc_test.go pins the serving hot path's allocation behaviour: the
// pooled body/encode buffers and the recycled jobq records are perf
// claims, and perf claims get benchmarks. The cache-hit path is the
// steady state of a warm service — every POST below the first is served
// without synthesis work.

// newAllocServer builds a compact server whose retention bound is small
// enough that job-record recycling is actually exercised (records only
// re-enter the pool on eviction).
func newAllocServer(tb testing.TB) *Server {
	tb.Helper()
	s, err := New(Config{Workers: 2, QueueCap: 64, Retain: 16})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// postSynthesize drives the handler directly (no TCP, no client): the
// measurement is the serving path, not the HTTP stack around it.
func postSynthesize(tb testing.TB, s *Server, body string) *httptest.ResponseRecorder {
	tb.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/synthesize", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// warmCache synthesizes smallReq once so every later POST is a hit.
func warmCache(tb testing.TB, s *Server) {
	tb.Helper()
	rec := postSynthesize(tb, s, smallReq)
	if rec.Code != http.StatusAccepted && rec.Code != http.StatusOK {
		tb.Fatalf("warmup POST: status %d: %s", rec.Code, rec.Body.String())
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, ok := s.cache.Get(mustResolveKey(tb, smallReq)); ok {
			return
		}
		if time.Now().After(deadline) {
			tb.Fatal("warmup synthesis did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkServeCacheHit measures the full warm serving path: body read,
// request resolution, cache lookup, solution decode/validation, job
// registration (Complete + retention eviction) and the JSON response.
// Run with -benchmem; the allocs/op figure is the number this file pins.
func BenchmarkServeCacheHit(b *testing.B) {
	s := newAllocServer(b)
	warmCache(b, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := postSynthesize(b, s, smallReq)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkWriteJSON isolates the response-encoding path the buffer pool
// serves on every single endpoint.
func BenchmarkWriteJSON(b *testing.B) {
	resp := submitResponse{JobID: "j000042", Status: "done", Cached: true, Job: "/v1/jobs/j000042"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		writeJSON(rec, http.StatusOK, resp)
	}
}

// TestCacheHitAllocBudget pins an upper bound on allocations per warm
// request. Before the allocation pass a warm hit cost ~3000 allocs/op
// (dominated by regenerating the benchmark assay inside resolve); with
// the benchdata memo, the pooled buffers and the recycled job records it
// sits under 500. The budget keeps ~2.5x headroom — it exists to catch a
// return to per-request churn, not to freeze the exact count across Go
// releases. The dominant remaining cost is solio.Decode re-validating
// the cached document, which is a correctness feature, not waste.
func TestCacheHitAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget needs a full synthesis warmup")
	}
	s := newAllocServer(t)
	warmCache(t, s)
	// Settle pools and the retention ring before measuring.
	for i := 0; i < 32; i++ {
		postSynthesize(t, s, smallReq)
	}
	avg := testing.AllocsPerRun(50, func() {
		rec := postSynthesize(t, s, smallReq)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	})
	const budget = 1200
	if avg > budget {
		t.Fatalf("warm cache-hit request averaged %.0f allocs, budget %d", avg, budget)
	}
	t.Logf("warm cache-hit request: %.0f allocs/op (budget %d)", avg, budget)
}

// mustResolveKey computes the cache key a request body resolves to.
func mustResolveKey(tb testing.TB, body string) string {
	tb.Helper()
	var sreq SynthesizeRequest
	if err := json.Unmarshal([]byte(body), &sreq); err != nil {
		tb.Fatal(err)
	}
	req, err := resolve(&sreq)
	if err != nil {
		tb.Fatal(err)
	}
	return req.key
}
