package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/jobq"
)

// batch.go implements POST /v1/synthesize/batch: many synthesis requests
// in one round trip, deduplicated through the content-addressed solution
// cache before any work is scheduled.
//
// Semantics, member by member:
//
//   - Every member is a complete SynthesizeRequest and is validated up
//     front; one invalid member rejects the whole batch with 400 (nothing
//     has been scheduled yet, so the reject is side-effect free).
//   - Members are grouped by solution-cache key. Duplicates never cost a
//     second synthesis: they share the canonical member's job and carry
//     `duplicate_of` so the client can see the collapse.
//   - A unique member behaves exactly like a single POST /v1/synthesize:
//     cache hit → completed job; otherwise it is journaled (crash replay
//     resubmits it as a single request), then either forwarded to its
//     ring owner (cluster mode, per-member routing — one batch can fan
//     out across every node) or scheduled on the local worker pool.
//   - Queue overflow is per member: members that fit are accepted, the
//     rest report status "rejected" instead of failing the batch. The
//     whole batch is shed with 503 only while the circuit breaker is
//     open, mirroring the single-submit path.
//
// Read-through cache peering is deliberately skipped here: a member
// owned by another node is forwarded to that owner (which answers from
// its cache instantly), and serializing N peer probes in the handler
// would defeat the point of batching.

// maxBatchMembers bounds one batch. Beyond it clients should split the
// batch; the bound keeps the handler's up-front resolution work and the
// response size predictable.
const maxBatchMembers = 256

// batchRequest is the body of POST /v1/synthesize/batch. Members are
// kept raw so each is journaled (and replayed) verbatim, exactly like a
// single submit's body.
type batchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

// batchMember is one member's outcome in the batch response.
type batchMember struct {
	Index int `json:"index"`
	// JobID and Job reference the job answering this member. Duplicate
	// members reference the canonical member's job.
	JobID  string `json:"job_id,omitempty"`
	Job    string `json:"job,omitempty"`
	Status string `json:"status"`
	Cached bool   `json:"cached,omitempty"`
	// Key is the member's solution-cache key — identical members have
	// identical keys, which is what the dedupe keys on.
	Key string `json:"cache_key,omitempty"`
	// DuplicateOf is the index of the earlier member this one collapsed
	// onto (nil for canonical members).
	DuplicateOf *int `json:"duplicate_of,omitempty"`
	// Error explains a rejected member (queue overflow after retries).
	Error string `json:"error,omitempty"`
}

// batchResponse is the body of POST /v1/synthesize/batch.
type batchResponse struct {
	Requests int `json:"requests"`
	// Unique counts distinct solution-cache keys; Deduped = Requests -
	// Unique members collapsed onto an earlier member's job.
	Unique  int           `json:"unique"`
	Deduped int           `json:"deduped"`
	Members []batchMember `json:"members"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	bodyBuf := getBuf()
	defer putBuf(bodyBuf)
	if _, err := bodyBuf.ReadFrom(http.MaxBytesReader(w, r.Body, 64<<20)); err != nil {
		writeErr(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	var breq batchRequest
	dec := json.NewDecoder(bytes.NewReader(bodyBuf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(breq.Requests) == 0 {
		writeErr(w, http.StatusBadRequest, "batch has no members")
		return
	}
	if len(breq.Requests) > maxBatchMembers {
		writeErr(w, http.StatusBadRequest, "batch has %d members, limit %d", len(breq.Requests), maxBatchMembers)
		return
	}

	// Resolve every member before scheduling anything: an invalid member
	// rejects the whole batch while the reject is still side-effect free.
	reqs := make([]*request, len(breq.Requests))
	for i, raw := range breq.Requests {
		var sreq SynthesizeRequest
		mdec := json.NewDecoder(bytes.NewReader(raw))
		mdec.DisallowUnknownFields()
		if err := mdec.Decode(&sreq); err != nil {
			writeErr(w, http.StatusBadRequest, "member %d: decoding: %v", i, err)
			return
		}
		req, err := resolve(&sreq)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "member %d: %v", i, err)
			return
		}
		reqs[i] = req
	}
	if err := s.flt.Err(fault.ServerHandlerError); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.flt.Sleep(r.Context(), fault.ServerResponseSlow)

	s.metrics.batchRequests.Add(1)
	s.metrics.batchMembers.Add(int64(len(reqs)))
	s.countWorkload(r, len(reqs))

	// Load shedding mirrors the single-submit path: while the breaker is
	// open the whole batch is answered immediately.
	if !s.brk.Allow() {
		s.metrics.jobsShed.Add(int64(len(reqs)))
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.BreakerCooldown.Seconds())+1))
		writeErr(w, http.StatusServiceUnavailable, "shedding load: queue has been full for %d consecutive submissions", s.cfg.BreakerThreshold)
		return
	}

	reqID := RequestID(r.Context())
	traceID := sanitizeID(r.Header.Get(cluster.HeaderTraceID))
	parentSpan := sanitizeID(r.Header.Get(cluster.HeaderParentSpan))
	hops := 0
	if s.cl != nil {
		hops = cluster.Hops(r.Header)
	}

	resp := batchResponse{Requests: len(reqs), Members: make([]batchMember, len(reqs))}
	canonical := make(map[string]int) // cache key → canonical member index
	anyQueued, rejected := false, 0
	for i, req := range reqs {
		m := &resp.Members[i]
		m.Index = i
		m.Key = req.key

		if ci, dup := canonical[req.key]; dup {
			// Collapsed: share the canonical member's job. The canonical
			// member may itself have been rejected — the duplicate then
			// reports the same outcome (there is no job to share).
			c := resp.Members[ci]
			idx := ci
			m.DuplicateOf = &idx
			m.JobID, m.Job, m.Status, m.Cached, m.Error = c.JobID, c.Job, c.Status, c.Cached, c.Error
			resp.Deduped++
			s.metrics.batchDeduped.Add(1)
			continue
		}
		canonical[req.key] = i
		resp.Unique++
		label := reqID + "#" + strconv.Itoa(i)

		// Each member gets its own span recorder joined to the inbound
		// trace, so a traced batch yields one timeline per member job.
		rec := s.newRecorder(traceID, parentSpan)

		if data, hit := s.cache.Get(req.key); hit {
			res, err := resultFromCache(req.key, data)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, "member %d: cached solution invalid: %v", i, err)
				return
			}
			s.seal(rec, res, routeCacheHit)
			id, err := s.q.Complete(label, res, "served from cache")
			if err != nil {
				writeErr(w, http.StatusServiceUnavailable, "%v", err)
				return
			}
			m.JobID, m.Job, m.Status, m.Cached = id, "/v1/jobs/"+id, string(jobq.Done), true
			s.recordServed(label, rec, routeCacheHit, start)
			continue
		}

		// Journal before submit, exactly like a single request: the raw
		// member body replays as a standalone submission after a crash.
		var entry string
		if s.jnl != nil {
			var err error
			entry, err = s.jnl.Accepted(label, breq.Requests[i])
			if err != nil {
				writeErr(w, http.StatusInternalServerError, "journal: %v", err)
				return
			}
		}

		var id string
		var err error
		submitAt := time.Now()
		if owner, isSelf := s.owner(req.key); !isSelf && hops < s.cl.MaxHops() && s.cl.Healthy(owner) {
			body := append([]byte(nil), breq.Requests[i]...)
			id, err = s.q.SubmitDetached(label, s.forwardJob(req, owner, label, hops, body, rec, submitAt))
		} else {
			id, err = s.submitWithRetry(r.Context(), label, s.synthesisJob(req, label, rec, submitAt))
		}
		switch {
		case errors.Is(err, jobq.ErrQueueFull):
			if s.brk.Overflow() {
				s.log.Warn("circuit breaker opened",
					"threshold", s.cfg.BreakerThreshold, "cooldown", s.cfg.BreakerCooldown)
			}
			s.metrics.jobsRejected.Add(1)
			if s.jnl != nil {
				s.journalTerminal(entry, "rejected")
			}
			m.Status, m.Error = "rejected", "queue full: retry later"
			s.recordDropped(label, rec, "rejected", start)
			rejected++
		case err != nil:
			// Shutdown or another hard submit error: report the member and
			// carry on — members already accepted stay accepted.
			if s.jnl != nil {
				s.journalTerminal(entry, "rejected")
			}
			m.Status, m.Error = "rejected", err.Error()
			rejected++
		default:
			s.brk.Success()
			s.registerJournal(id, entry)
			s.metrics.jobsAccepted.Add(1)
			m.JobID, m.Job, m.Status = id, "/v1/jobs/"+id, string(jobq.Queued)
			anyQueued = true
		}
	}

	// Propagate outcomes onto duplicates of late-resolving canonicals is
	// unnecessary: duplicates are always resolved after their canonical
	// member (first occurrence wins), so the copy above is complete.
	code := http.StatusOK
	switch {
	case rejected == resp.Unique && resp.Unique > 0 && !anyQueued:
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case anyQueued:
		code = http.StatusAccepted
	}
	writeJSON(w, code, resp)
}
