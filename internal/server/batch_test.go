package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/loadgen"
)

// batchMemberJSON mirrors the wire shape of one batch member for tests.
type batchMemberJSON struct {
	Index       int    `json:"index"`
	JobID       string `json:"job_id"`
	Job         string `json:"job"`
	Status      string `json:"status"`
	Cached      bool   `json:"cached"`
	Key         string `json:"cache_key"`
	DuplicateOf *int   `json:"duplicate_of"`
	Error       string `json:"error"`
}

type batchResponseJSON struct {
	Requests int               `json:"requests"`
	Unique   int               `json:"unique"`
	Deduped  int               `json:"deduped"`
	Members  []batchMemberJSON `json:"members"`
}

func batchBody(members ...string) string {
	return `{"requests":[` + strings.Join(members, ",") + `]}`
}

// TestBatchDedupeCollapsesDuplicates proves the tentpole batch
// semantics: duplicate members never cost a second synthesis. Four
// members with two distinct cache keys yield exactly two jobs, the
// duplicates reference the canonical member's job, and on re-submit the
// whole batch is answered from the solution cache — with the cache's
// own hit counters attributing the collapse.
func TestBatchDedupeCollapsesDuplicates(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 16})
	other := `{"bench":"PCR","options":{"imax":60,"seed":8}}`

	var br batchResponseJSON
	if code := postJSON(t, ts.URL, "/v1/synthesize/batch",
		batchBody(smallReq, other, smallReq, smallReq), &br); code != http.StatusAccepted {
		t.Fatalf("batch submit: status %d", code)
	}
	if br.Requests != 4 || br.Unique != 2 || br.Deduped != 2 {
		t.Fatalf("batch accounting: %+v", br)
	}
	for _, i := range []int{2, 3} {
		m := br.Members[i]
		if m.DuplicateOf == nil || *m.DuplicateOf != 0 {
			t.Fatalf("member %d duplicate_of = %v, want 0", i, m.DuplicateOf)
		}
		if m.JobID != br.Members[0].JobID {
			t.Fatalf("member %d job %q, want canonical %q", i, m.JobID, br.Members[0].JobID)
		}
		if m.Key != br.Members[0].Key {
			t.Fatalf("member %d cache key %q != canonical %q", i, m.Key, br.Members[0].Key)
		}
	}
	if br.Members[0].Key == br.Members[1].Key {
		t.Fatal("distinct requests share a cache key")
	}
	// Exactly the two unique members became jobs.
	if got := s.metrics.jobsAccepted.Value(); got != 2 {
		t.Fatalf("jobs accepted = %d, want 2 (duplicates must not schedule work)", got)
	}
	if got := s.metrics.batchDeduped.Value(); got != 2 {
		t.Fatalf("batch_deduped = %d, want 2", got)
	}
	for _, i := range []int{0, 1} {
		if jr := waitTerminal(t, ts.URL, br.Members[i].JobID, 60*time.Second); jr.Status != "done" {
			t.Fatalf("member %d job: %+v", i, jr)
		}
	}

	// Re-submitting the same batch is pure cache attribution: every
	// unique member is served from solcache (cached=true, status done,
	// no new jobs), and the cache hit counter moves by exactly the
	// unique-member count.
	hitsBefore := s.cache.Stats().Hits
	var warm batchResponseJSON
	if code := postJSON(t, ts.URL, "/v1/synthesize/batch",
		batchBody(smallReq, other, smallReq, smallReq), &warm); code != http.StatusOK {
		t.Fatalf("warm batch: status %d", code)
	}
	for i, m := range warm.Members {
		if m.Status != "done" || !m.Cached {
			t.Fatalf("warm member %d not cache-served: %+v", i, m)
		}
	}
	if got := s.cache.Stats().Hits - hitsBefore; got != 2 {
		t.Fatalf("cache hits moved by %d, want 2 (one per unique member)", got)
	}
	if got := s.metrics.jobsAccepted.Value(); got != 2 {
		t.Fatalf("warm batch scheduled new jobs: accepted = %d, want still 2", got)
	}
}

// TestBatchValidatesBeforeScheduling: one invalid member rejects the
// whole batch side-effect free — nothing journaled, nothing queued.
func TestBatchValidatesBeforeScheduling(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	var out map[string]any
	code := postJSON(t, ts.URL, "/v1/synthesize/batch",
		batchBody(smallReq, `{"bench":"NoSuchBench"}`), &out)
	if code != http.StatusBadRequest {
		t.Fatalf("batch with invalid member: status %d, want 400", code)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "member 1") {
		t.Fatalf("error does not name the offending member: %v", out)
	}
	if got := s.metrics.jobsAccepted.Value(); got != 0 {
		t.Fatalf("invalid batch scheduled %d jobs", got)
	}
	if got := s.metrics.batchRequests.Value(); got != 0 {
		t.Fatalf("invalid batch counted as served: batch_requests = %d", got)
	}
}

// TestBatchLimits pins the empty and oversized rejections.
func TestBatchLimits(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	if code := postJSON(t, ts.URL, "/v1/synthesize/batch", `{"requests":[]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
	members := make([]string, maxBatchMembers+1)
	for i := range members {
		members[i] = smallReq
	}
	if code := postJSON(t, ts.URL, "/v1/synthesize/batch", batchBody(members...), nil); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", code)
	}
}

// TestBatchOverflowRejectsPerMember: members beyond the queue bound
// report "rejected" individually while earlier members stay accepted —
// overflow degrades the batch, it does not fail it.
func TestBatchOverflowRejectsPerMember(t *testing.T) {
	t.Parallel()
	// One worker pinned by a slow job, a queue of 1, retries off: the
	// batch's first unique member takes the queue slot, the rest must
	// overflow deterministically.
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueCap: 1, SubmitRetries: -1, BreakerThreshold: -1,
	})
	var pin submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize",
		`{"bench":"CPA","options":{"imax":20000,"seed":1}}`, &pin); code != http.StatusAccepted {
		t.Fatalf("pin submit: %d", code)
	}
	// Wait for the worker to pick the pin job up so the queue is empty.
	deadline := time.Now().Add(10 * time.Second)
	for s.q.Stats().Busy == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started the pin job")
		}
		time.Sleep(5 * time.Millisecond)
	}

	members := []string{
		`{"bench":"PCR","options":{"imax":60,"seed":101}}`,
		`{"bench":"PCR","options":{"imax":60,"seed":102}}`,
		`{"bench":"PCR","options":{"imax":60,"seed":103}}`,
	}
	var br batchResponseJSON
	if code := postJSON(t, ts.URL, "/v1/synthesize/batch", batchBody(members...), &br); code != http.StatusAccepted {
		t.Fatalf("batch: status %d, want 202 (partial acceptance)", code)
	}
	if br.Members[0].Status != "queued" {
		t.Fatalf("member 0: %+v, want queued", br.Members[0])
	}
	rejected := 0
	for _, m := range br.Members[1:] {
		if m.Status == "rejected" {
			rejected++
			if m.Error == "" {
				t.Fatalf("rejected member has no error: %+v", m)
			}
		}
	}
	if rejected != 2 {
		t.Fatalf("rejected %d members, want 2: %+v", rejected, br.Members)
	}
}

// TestBatchWorkloadProfileCounter: a tagged batch shows up under the
// per-profile counter in both the expvar map and the (otherwise gated)
// Prometheus family, and a hostile label is sanitized.
func TestBatchWorkloadProfileCounter(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/synthesize/batch",
		strings.NewReader(batchBody(smallReq, smallReq)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(WorkloadProfileHeader, `steady"} evil 1`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var mj struct {
		Workload map[string]int64 `json:"workload_requests"`
	}
	if code := getJSON(t, ts.URL, "/metrics.json", &mj); code != http.StatusOK {
		t.Fatalf("metrics.json: %d", code)
	}
	if mj.Workload["steadyevil1"] != 2 {
		t.Fatalf("workload map = %v, want sanitized steadyevil1=2", mj.Workload)
	}
	promResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom := readAll(t, promResp)
	want := `mfserved_workload_requests_total{profile="steadyevil1"} 2`
	if !strings.Contains(prom, want) {
		t.Fatalf("prom exposition missing %q", want)
	}
}

// TestBatchHeaderConstantMatchesLoadgen pins the cross-package header
// contract: loadgen deliberately does not import this package, so the
// two constants must be asserted equal somewhere — here.
func TestBatchHeaderConstantMatchesLoadgen(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	// Exercise the real wire path: a loadgen Runner tags its traffic
	// and the server must attribute it.
	p, err := loadgen.ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := loadgen.Build(p, loadgen.Options{Seed: 3, Duration: time.Second, Rate: 4})
	if err != nil {
		t.Fatal(err)
	}
	sched.Items = sched.Items[:2] // two requests are plenty
	runner := &loadgen.Runner{BaseURL: ts.URL, Timeout: 60 * time.Second}
	outcomes, err := runner.Run(t.Context(), sched)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Status != "done" {
			t.Fatalf("outcome: %+v", o)
		}
	}
	var mj struct {
		Workload map[string]int64 `json:"workload_requests"`
	}
	getJSON(t, ts.URL, "/metrics.json", &mj)
	if mj.Workload["steady"] != 2 {
		t.Fatalf("workload attribution = %v, want steady=2 — header constants drifted", mj.Workload)
	}
}

// TestBatchForwardsMembersToRingOwners: in a 2-node cluster one batch
// fans out per member key — the member the sibling owns is forwarded
// (its job records the peer), the locally-owned member runs here.
func TestBatchForwardsMembersToRingOwners(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	local := bodyOwnedBy(t, nodes[0].cl, nodes[0].url)
	remote := bodyOwnedBy(t, nodes[0].cl, nodes[1].url)

	var br batchResponseJSON
	if code := postJSON(t, nodes[0].url, "/v1/synthesize/batch", batchBody(local, remote), &br); code != http.StatusAccepted {
		t.Fatalf("batch: status %d", code)
	}
	if br.Unique != 2 {
		t.Fatalf("unique = %d, want 2", br.Unique)
	}
	jrLocal := waitTerminal(t, nodes[0].url, br.Members[0].JobID, 60*time.Second)
	jrRemote := waitTerminal(t, nodes[0].url, br.Members[1].JobID, 60*time.Second)
	if jrLocal.Status != "done" || jrLocal.Peer != "" {
		t.Fatalf("local member: %+v, want done locally", jrLocal)
	}
	if jrRemote.Status != "done" {
		t.Fatalf("remote member: %+v", jrRemote)
	}
	if jrRemote.Peer != nodes[1].url {
		t.Fatalf("remote member peer = %q, want ring owner %s", jrRemote.Peer, nodes[1].url)
	}
}

// BenchmarkBatchSubmit measures the warm batch path: every member a
// cache hit, so the number is the handler's own dedupe+attribution
// cost, not synthesis.
func BenchmarkBatchSubmit(b *testing.B) {
	s, err := New(Config{Workers: 2, QueueCap: 64, Retain: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	body := batchBody(smallReq, smallReq, smallReq, smallReq,
		`{"bench":"PCR","options":{"imax":60,"seed":8}}`)
	// Warm both keys.
	resp, err := http.Post(ts.URL+"/v1/synthesize/batch", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	waitWarm := time.Now().Add(60 * time.Second)
	for s.cache.Stats().Entries < 2 {
		if time.Now().After(waitWarm) {
			b.Fatal("cache never warmed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/synthesize/batch", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// readAll drains a response body as a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
