package server

import (
	"sync"
	"time"
)

// breaker is the load-shedding circuit breaker guarding the submit path.
// Transient queue overflow is handled by retry with backoff; the breaker
// exists for the pathological regime where the queue stays full across
// retries for many consecutive requests — there, burning every handler's
// retry budget just adds latency to answers that will all be 429 anyway.
//
// States follow the classic pattern. Closed: requests pass; each
// submit that still finds the queue full after its retries counts one
// overflow, and any success resets the count. Open (count reached the
// threshold): requests are shed immediately without touching the queue,
// until the cooldown elapses. Half-open (first request after cooldown):
// exactly one probe passes through; its outcome closes or re-opens the
// breaker.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive overflows to open; <=0 means disabled
	cooldown  time.Duration // how long open lasts before a probe is allowed
	now       func() time.Time

	overflows int       // consecutive overflow count while closed
	openUntil time.Time // nonzero while open
	probing   bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a request may attempt the queue. A false return
// means shed immediately. A true return from the half-open state claims
// the probe slot: the caller must report the outcome via success or
// overflow, or the breaker stays half-open with the slot taken.
func (b *breaker) allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if b.now().Before(b.openUntil) {
		return false
	}
	// Cooldown elapsed: admit a single probe.
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// success records a submit that got through (accepted, or rejected for a
// non-overflow reason). Closes the breaker and clears the count.
func (b *breaker) success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.overflows = 0
	b.openUntil = time.Time{}
	b.probing = false
}

// overflow records a submit that exhausted its retries against a full
// queue. Returns true if this event opened (or re-opened) the breaker.
func (b *breaker) overflow() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		// Failed probe: straight back to open for another cooldown.
		b.probing = false
		b.openUntil = b.now().Add(b.cooldown)
		return true
	}
	b.overflows++
	if b.overflows >= b.threshold && b.openUntil.IsZero() {
		b.openUntil = b.now().Add(b.cooldown)
		return true
	}
	return false
}

// state returns "closed", "open", or "half-open" for metrics.
func (b *breaker) state() string {
	if b == nil || b.threshold <= 0 {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openUntil.IsZero():
		return "closed"
	case b.now().Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}
