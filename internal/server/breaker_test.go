package server

import (
	"testing"
	"time"
)

// fakeClock lets breaker tests step time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerOpensOnConsecutiveOverflows(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, time.Second, clk.now)
	for i := 0; i < 2; i++ {
		if b.overflow() {
			t.Fatalf("breaker opened after %d overflows, threshold 3", i+1)
		}
		if !b.allow() {
			t.Fatalf("closed breaker shed a request after %d overflows", i+1)
		}
	}
	if !b.overflow() {
		t.Fatal("third consecutive overflow did not open the breaker")
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request")
	}
	if got := b.state(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := newBreaker(3, time.Second, nil)
	b.overflow()
	b.overflow()
	b.success()
	if b.overflow() {
		t.Fatal("overflow count survived a success")
	}
	if got := b.state(); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, time.Second, clk.now)
	b.overflow() // opens
	clk.advance(2 * time.Second)
	if got := b.state(); got != "half-open" {
		t.Fatalf("state after cooldown = %q, want half-open", got)
	}
	if !b.allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	// Only one probe at a time.
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: back to open for a fresh cooldown.
	if !b.overflow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request")
	}
	// Probe succeeds after the next cooldown: fully closed.
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("half-open breaker denied the second probe")
	}
	b.success()
	if got := b.state(); got != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if !b.allow() || !b.allow() {
		t.Fatal("closed breaker shed requests")
	}
}

func TestBreakerDisabled(t *testing.T) {
	for _, b := range []*breaker{nil, newBreaker(0, time.Second, nil), newBreaker(-1, time.Second, nil)} {
		for i := 0; i < 100; i++ {
			b.overflow()
		}
		if !b.allow() {
			t.Fatal("disabled breaker shed a request")
		}
		if got := b.state(); got != "disabled" {
			t.Fatalf("state = %q, want disabled", got)
		}
	}
}

func TestBreakerNonConsecutiveOverflowsStayClosed(t *testing.T) {
	b := newBreaker(3, time.Second, nil)
	for i := 0; i < 20; i++ {
		b.overflow()
		b.overflow()
		b.success()
	}
	if got := b.state(); got != "closed" {
		t.Fatalf("interleaved successes still opened the breaker: %q", got)
	}
}
