package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// swapHandler lets a test stand up an httptest server before the
// *Server behind it exists (the cluster needs every peer's URL before
// any node can be built), and swap behaviours mid-test (e.g. break one
// endpoint to force a forward fallback).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// cnode is one in-process cluster node.
type cnode struct {
	url string
	sw  *swapHandler
	cl  *cluster.Cluster
	srv *Server
}

// startCluster builds n fully-wired in-process nodes sharing one peer
// list. cfgFn (optional) may adjust each node's server config before it
// is built.
func startCluster(t *testing.T, n int, cfgFn func(i int, cfg *Config)) []*cnode {
	t.Helper()
	nodes := make([]*cnode, n)
	urls := make([]string, n)
	for i := range nodes {
		sw := &swapHandler{}
		ts := httptest.NewServer(sw)
		t.Cleanup(ts.Close)
		nodes[i] = &cnode{url: ts.URL, sw: sw}
		urls[i] = ts.URL
	}
	for i, nd := range nodes {
		cl, err := cluster.New(cluster.Config{
			Self:           nd.url,
			Peers:          urls,
			ProbeInterval:  20 * time.Millisecond,
			ProbeTimeout:   200 * time.Millisecond,
			ForwardBackoff: 5 * time.Millisecond,
			Seed:           1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		cfg := Config{Workers: 1, QueueCap: 16, Cluster: cl}
		if cfgFn != nil {
			cfgFn(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		nd.cl, nd.srv = cl, srv
		nd.sw.set(srv.Handler())
	}
	return nodes
}

// keyOf derives the cache key the servers will derive from body.
// Tests live in package server, so they can run the real resolution.
func keyOf(t *testing.T, body string) string {
	t.Helper()
	var sreq SynthesizeRequest
	if err := json.Unmarshal([]byte(body), &sreq); err != nil {
		t.Fatal(err)
	}
	req, err := resolve(&sreq)
	if err != nil {
		t.Fatal(err)
	}
	return req.key
}

// bodyOwnedBy searches seeds until it finds a request whose ring owner
// is the wanted node — the ring is deterministic, so this terminates in
// a handful of tries.
func bodyOwnedBy(t *testing.T, cl *cluster.Cluster, owner string) string {
	t.Helper()
	for seed := 1; seed < 1000; seed++ {
		body := fmt.Sprintf(`{"bench":"PCR","options":{"imax":60,"seed":%d}}`, seed)
		if got, _ := cl.Owner(keyOf(t, body)); got == owner {
			return body
		}
	}
	t.Fatal("no seed hashed to the wanted owner in 1000 tries")
	return ""
}

// postWithHeaders posts body with extra headers and decodes the reply.
func postWithHeaders(t *testing.T, base, body string, hdr map[string]string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/synthesize", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// TestClusterForwardsToOwner: a request submitted to a non-owner must be
// synthesized by its ring owner, and a later identical request to the
// non-owner must be a warm hit without re-synthesis.
func TestClusterForwardsToOwner(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	// A body that node 1 owns, submitted to node 0.
	body := bodyOwnedBy(t, nodes[0].cl, nodes[1].url)

	var sub submitResponse
	if code := postWithHeaders(t, nodes[0].url, body, nil, &sub); code != http.StatusAccepted {
		t.Fatalf("submit to non-owner: status %d", code)
	}
	jr := waitTerminal(t, nodes[0].url, sub.JobID, 30*time.Second)
	if jr.Status != "done" {
		t.Fatalf("forwarded job: %+v", jr)
	}
	if jr.Peer != nodes[1].url {
		t.Fatalf("job peer = %q, want owner %s", jr.Peer, nodes[1].url)
	}

	// Both nodes now hold the solution: the owner synthesized it, the
	// forwarder cached the returned document. A re-submit anywhere is a
	// local warm hit.
	var again submitResponse
	if code := postWithHeaders(t, nodes[0].url, body, nil, &again); code != http.StatusOK {
		t.Fatalf("warm re-submit: status %d", code)
	}
	if !again.Cached || again.Peer != "" {
		t.Fatalf("warm re-submit not a local hit: %+v", again)
	}

	// The two documents are byte-identical across nodes.
	key := keyOf(t, body)
	var docs [2][]byte
	for i, nd := range nodes {
		resp, err := http.Get(nd.url + "/v1/peer/solution/" + key)
		if err != nil {
			t.Fatal(err)
		}
		docs[i], _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d has no cached solution: %d", i, resp.StatusCode)
		}
	}
	if !bytes.Equal(docs[0], docs[1]) {
		t.Fatal("forwarder and owner hold different solution bytes")
	}
}

// TestClusterWarmCrossNodeHit: a solution synthesized via one node must
// be served as a cache hit by a node that never saw the request, via
// read-through peering.
func TestClusterWarmCrossNodeHit(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	// A body node 0 owns, submitted to node 0: purely local, node 1 has
	// never seen it.
	body := bodyOwnedBy(t, nodes[0].cl, nodes[0].url)
	var sub submitResponse
	if code := postWithHeaders(t, nodes[0].url, body, nil, &sub); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitTerminal(t, nodes[0].url, sub.JobID, 30*time.Second)

	var warm submitResponse
	if code := postWithHeaders(t, nodes[1].url, body, nil, &warm); code != http.StatusOK {
		t.Fatalf("cross-node warm submit: status %d", code)
	}
	if !warm.Cached || warm.Peer != nodes[0].url {
		t.Fatalf("cross-node hit not peered from owner: %+v", warm)
	}
}

// TestClusterHopGuard: a request that already used its hop budget must
// be synthesized locally even when the ring says another node owns it —
// the guard that turns a misconfigured ring into extra work instead of
// a forwarding cycle.
func TestClusterHopGuard(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	body := bodyOwnedBy(t, nodes[0].cl, nodes[1].url)

	hdr := map[string]string{cluster.HeaderHops: fmt.Sprintf("%d", nodes[0].cl.MaxHops())}
	var sub submitResponse
	if code := postWithHeaders(t, nodes[0].url, body, hdr, &sub); code != http.StatusAccepted {
		t.Fatalf("submit at hop limit: status %d", code)
	}
	jr := waitTerminal(t, nodes[0].url, sub.JobID, 30*time.Second)
	if jr.Status != "done" {
		t.Fatalf("hop-limited job: %+v", jr)
	}
	if jr.Peer != "" {
		t.Fatalf("hop-limited request was still forwarded to %s", jr.Peer)
	}
	if jr.Stages == nil {
		t.Fatal("hop-limited job has no local stage timings — not synthesized here?")
	}
}

// TestClusterHopHeaderOutsideCacheKey is the regression test for the
// forwarded-hop header leaking into the cache key: the key is derived
// from the body alone, so the same body with and without forwarding
// headers must hit the same cache entry.
func TestClusterHopHeaderOutsideCacheKey(t *testing.T) {
	nodes := startCluster(t, 1, nil)
	body := `{"bench":"PCR","options":{"imax":60,"seed":7}}`

	hdr := map[string]string{cluster.HeaderHops: "1", cluster.HeaderRequestID: "upstream-1"}
	var first submitResponse
	if code := postWithHeaders(t, nodes[0].url, body, hdr, &first); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	waitTerminal(t, nodes[0].url, first.JobID, 30*time.Second)

	// Same body, no forwarding headers: must be the same cache entry.
	var second submitResponse
	if code := postWithHeaders(t, nodes[0].url, body, nil, &second); code != http.StatusOK {
		t.Fatalf("second submit: status %d", code)
	}
	if !second.Cached {
		t.Fatal("hop header changed the cache key: identical body missed")
	}
}

// TestClusterRequestIDPropagation: one client request forwarded across
// the cluster must carry one request ID end to end — each node logs with
// the originating ID, not a fresh one.
func TestClusterRequestIDPropagation(t *testing.T) {
	var logs [2]bytes.Buffer
	var mu sync.Mutex
	nodes := startCluster(t, 2, func(i int, cfg *Config) {
		buf := &logs[i]
		cfg.Logger = slog.New(slog.NewTextHandler(lockedWriter{mu: &mu, w: buf}, nil))
	})
	body := bodyOwnedBy(t, nodes[0].cl, nodes[1].url)

	const rid = "trace-e2e-42"
	var sub submitResponse
	if code := postWithHeaders(t, nodes[0].url, body, map[string]string{cluster.HeaderRequestID: rid}, &sub); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	jr := waitTerminal(t, nodes[0].url, sub.JobID, 30*time.Second)
	if jr.Peer != nodes[1].url {
		t.Fatalf("request was not forwarded: %+v", jr)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range logs {
		if !strings.Contains(logs[i].String(), "request_id="+rid) {
			t.Fatalf("node %d never logged request_id=%s:\n%s", i, rid, logs[i].String())
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestClusterFallbackAndWriteBack: when the owner accepts connections
// but cannot synthesize, the non-owner must degrade to local synthesis
// and then write the solution back to the owner, healing the ring.
func TestClusterFallbackAndWriteBack(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	body := bodyOwnedBy(t, nodes[0].cl, nodes[1].url)
	key := keyOf(t, body)

	// Break only node 1's synthesize endpoint: health and peer endpoints
	// stay up, so the owner looks alive and the forward is attempted.
	real := nodes[1].srv.Handler()
	nodes[1].sw.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/synthesize" {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		real.ServeHTTP(w, r)
	}))

	var sub submitResponse
	if code := postWithHeaders(t, nodes[0].url, body, nil, &sub); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	jr := waitTerminal(t, nodes[0].url, sub.JobID, 30*time.Second)
	if jr.Status != "done" {
		t.Fatalf("fallback job: %+v", jr)
	}
	if jr.Peer != "" {
		t.Fatalf("job claims remote synthesis (%s) though the owner was broken", jr.Peer)
	}

	// The write-back must have landed in the owner's cache.
	resp, err := http.Get(nodes[1].url + "/v1/peer/solution/" + key)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner missing the written-back solution: %d", resp.StatusCode)
	}
	if got := nodes[1].srv.metrics.peerStored.Value(); got != 1 {
		t.Fatalf("owner peerStored = %d, want 1", got)
	}
}

// TestPeerEndpointValidation: the peer endpoints must reject malformed
// keys and bodies that don't decode — a corrupted node cannot poison a
// sibling's cache.
func TestPeerEndpointValidation(t *testing.T) {
	nodes := startCluster(t, 1, nil)
	base := nodes[0].url

	resp, err := http.Get(base + "/v1/peer/solution/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key GET: %d, want 400", resp.StatusCode)
	}

	key := strings.Repeat("ab", 32)
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/peer/solution/"+key, strings.NewReader("not a solution"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage write-back: %d, want 400", resp.StatusCode)
	}
	if _, ok := nodes[0].srv.cache.Get(key); ok {
		t.Fatal("garbage write-back reached the cache")
	}
}
