package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
)

// TestJournalNormalLifecycle: a journaled request leaves no pending work
// behind — accepted on submit, terminal on completion, compacted away on
// the next open.
func TestJournalNormalLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	s, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, JournalPath: path})

	var sub submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", smallReq, &sub); code != http.StatusAccepted {
		t.Fatalf("POST: %d", code)
	}
	jr := waitTerminal(t, ts.URL, sub.JobID, 60*time.Second)
	if jr.Status != "done" {
		t.Fatalf("job %s: %s (%s)", sub.JobID, jr.Status, jr.Error)
	}
	// The terminal record is written by the OnTerminal observer, which can
	// trail the HTTP-visible status by a beat.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.jmu.Lock()
		outstanding := len(s.jobEntry) + len(s.earlyTerm)
		s.jmu.Unlock()
		if outstanding == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal bookkeeping still has %d outstanding entries", outstanding)
		}
		time.Sleep(5 * time.Millisecond)
	}

	jnl, pending, torn, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	jnl.Close()
	if torn != 0 || len(pending) != 0 {
		t.Fatalf("finished work left pending=%d torn=%d in the journal", len(pending), torn)
	}
}

// TestJournalReplayOnRestart is the crash-recovery acceptance criterion:
// a request accepted by a previous process but never finished is
// resubmitted on startup, runs to completion, and is closed out in the
// journal — zero lost accepted jobs, no duplicates.
func TestJournalReplayOnRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")

	// Simulate the crashed predecessor: an accepted record with no
	// terminal outcome.
	jnl, _, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := jnl.Accepted("req-crashed", json.RawMessage(smallReq))
	if err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8, JournalPath: path})
	var m map[string]json.RawMessage
	getJSON(t, ts.URL, "/metrics.json", &m)
	var replayed int64
	mustNum(t, m, "journal_replayed", &replayed)
	if replayed != 1 {
		t.Fatalf("journal_replayed = %d, want 1", replayed)
	}

	// The replayed job carries the crashed request's label; wait for it to
	// finish via the cumulative done counter.
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, ts.URL, "/metrics.json", &m)
		var done, failed int64
		mustNum(t, m, "jobs_done", &done)
		mustNum(t, m, "jobs_failed", &failed)
		if failed != 0 {
			t.Fatalf("replayed job failed")
		}
		if done == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replayed job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Re-submitting the same request now must be a cache hit: the replay
	// really synthesized (and cached) the crashed request.
	var again submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", smallReq, &again); code != http.StatusOK {
		t.Fatalf("post-replay POST: %d, want 200 cache hit", code)
	}
	if !again.Cached {
		t.Fatal("post-replay POST was not served from cache")
	}

	// The journal must close out the replayed entry (poll: the terminal
	// record trails job completion by the OnTerminal observer).
	deadline = time.Now().Add(5 * time.Second)
	for {
		jnl2, pending, _, err := journal.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		jnl2.Close()
		if len(pending) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed entry %s still pending: %+v", entry, pending)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJournalUnreplayableRecord: a pending record that no longer parses
// is closed out as unreplayable instead of wedging startup or staying
// pending forever.
func TestJournalUnreplayableRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jnl, _, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jnl.Accepted("req-bad", json.RawMessage(`{"bench":"NoSuchBench"}`)); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	newTestServer(t, Config{Workers: 1, QueueCap: 4, JournalPath: path})
	jnl2, pending, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	jnl2.Close()
	if len(pending) != 0 {
		t.Fatalf("unreplayable record still pending: %+v", pending)
	}
}

// TestBreakerShedsAfterSustainedOverflow: once enough consecutive
// submissions exhaust their retries against a full queue, the breaker
// opens and requests are shed with 503 without touching the queue.
func TestBreakerShedsAfterSustainedOverflow(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueCap: 1,
		SubmitRetries:    -1, // no retries: each overflow is immediate
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	long := func(seed int) string {
		return fmt.Sprintf(`{"bench":"CPA","options":{"imax":100000,"seed":%d}}`, seed)
	}
	var running submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", long(1), &running); code != http.StatusAccepted {
		t.Fatalf("first POST: %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var jr jobResponse
		getJSON(t, ts.URL, "/v1/jobs/"+running.JobID, &jr)
		if jr.Status == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job stuck in %q", jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var queued submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", long(2), &queued); code != http.StatusAccepted {
		t.Fatalf("second POST: %d", code)
	}

	// Two overflows reach the threshold...
	for i := 0; i < 2; i++ {
		if code := postJSON(t, ts.URL, "/v1/synthesize", long(3+i), nil); code != http.StatusTooManyRequests {
			t.Fatalf("overflow POST %d: status %d, want 429", i, code)
		}
	}
	// ...and the next request is shed without queue contact.
	resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(long(9)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed POST: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 shed without Retry-After header")
	}

	var m map[string]json.RawMessage
	getJSON(t, ts.URL, "/metrics.json", &m)
	var shed, rejected int64
	mustNum(t, m, "jobs_shed", &shed)
	mustNum(t, m, "jobs_rejected", &rejected)
	if shed != 1 {
		t.Fatalf("jobs_shed = %d, want 1", shed)
	}
	if rejected != 2 {
		t.Fatalf("jobs_rejected = %d, want 2", rejected)
	}
	var state string
	if err := json.Unmarshal(m["breaker_state"], &state); err != nil || state != "open" {
		t.Fatalf("breaker_state = %s (%v), want open", m["breaker_state"], err)
	}

	postJSON(t, ts.URL, "/v1/jobs/"+queued.JobID+"/cancel", "", nil)
	postJSON(t, ts.URL, "/v1/jobs/"+running.JobID+"/cancel", "", nil)
}

// TestHandlerFaultInjection: an armed server.handler.error point turns
// exactly the chosen request into a 500 and leaves the next one alone.
func TestHandlerFaultInjection(t *testing.T) {
	plan := fault.NewPlan(11).Arm(fault.ServerHandlerError, fault.Once(0))
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, Fault: plan})

	if code := postJSON(t, ts.URL, "/v1/synthesize", smallReq, nil); code != http.StatusInternalServerError {
		t.Fatalf("injected handler error: status %d, want 500", code)
	}
	var sub submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", smallReq, &sub); code != http.StatusAccepted {
		t.Fatalf("post-fault POST: status %d, want 202", code)
	}
	jr := waitTerminal(t, ts.URL, sub.JobID, 60*time.Second)
	if jr.Status != "done" {
		t.Fatalf("job after injected fault: %s (%s)", jr.Status, jr.Error)
	}
	if st := plan.Stats()[fault.ServerHandlerError]; st.Fires != 1 {
		t.Fatalf("handler error fired %d times, want 1", st.Fires)
	}
}
