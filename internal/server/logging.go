package server

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// logging.go: structured request logging and request-ID plumbing.
//
// Every request gets an ID — the client's X-Request-ID if it sent one,
// otherwise a server-assigned sequence number — echoed in the response
// header, stored in the request context, and carried as the job label
// through the queue, so a synthesis can be correlated from HTTP access
// log to job-finished log line to /v1/jobs polling.

type ctxKeyReqID struct{}

// RequestID returns the request ID the middleware assigned, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyReqID{}).(string)
	return id
}

// statusWriter captures the response status and size for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// sanitizeID bounds and cleans a client-supplied correlation ID
// (X-Request-ID, X-Trace-ID, X-Parent-Span) before it is echoed into
// response headers, logs and traces: at most 128 bytes, control and
// non-ASCII bytes stripped. The fast path (already clean) allocates
// nothing.
func sanitizeID(id string) string {
	if len(id) > 128 {
		id = id[:128]
	}
	clean := true
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= 0x20 || c >= 0x7f {
			clean = false
			break
		}
	}
	if clean {
		return id
	}
	b := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		if c := id[i]; c > 0x20 && c < 0x7f {
			b = append(b, c)
		}
	}
	return string(b)
}

// withRequestLog wraps the API mux with ID assignment and one structured
// access-log line per request.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = fmt.Sprintf("r%08d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyReqID{}, id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Info("request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
		)
	})
}
