package server

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// histogram is a fixed-bucket latency histogram implementing expvar.Var.
// Buckets are cumulative-style upper bounds in milliseconds, chosen to
// straddle the range from sub-millisecond cache hits to multi-second
// synthetic-benchmark syntheses.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds (ms); an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1
	count  int64
	sumMs  float64
	maxMs  float64
}

var defaultBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

func newHistogram() *histogram {
	return &histogram{bounds: defaultBounds, counts: make([]int64, len(defaultBounds)+1)}
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, ms)
	h.counts[i]++
	h.count++
	h.sumMs += ms
	if ms > h.maxMs {
		h.maxMs = ms
	}
}

// histSnapshot is a consistent point-in-time copy of a histogram, with
// bucket counts already accumulated into the cumulative form Prometheus
// histograms use (bucket i counts observations <= bounds[i]).
type histSnapshot struct {
	bounds     []float64 // upper bounds in ms, shared, never mutated
	cumulative []int64   // len(bounds)+1; last entry is the +Inf bucket
	count      int64
	sumMs      float64
}

// snapshot copies the histogram state under the lock.
func (h *histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := histSnapshot{
		bounds:     h.bounds,
		cumulative: make([]int64, len(h.counts)),
		count:      h.count,
		sumMs:      h.sumMs,
	}
	var run int64
	for i, c := range h.counts {
		run += c
		s.cumulative[i] = run
	}
	return s
}

// String renders the histogram as a JSON object (the expvar.Var
// contract): {"count":N,"sum_ms":S,"max_ms":M,"buckets":{"le_10":n,...,"inf":n}}.
func (h *histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, `{"count":%d,"sum_ms":%.3f,"max_ms":%.3f,"buckets":{`, h.count, h.sumMs, h.maxMs)
	for i, bound := range h.bounds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `"le_%g":%d`, bound, h.counts[i])
	}
	if len(h.bounds) > 0 {
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, `"inf":%d}}`, h.counts[len(h.bounds)])
	return b.String()
}

// metrics aggregates the service's observability state into one
// expvar.Map served at /metrics. The map is private (Init, not
// expvar.Publish) so multiple servers — e.g. parallel tests — never
// collide in the process-global registry.
type metrics struct {
	vars *expvar.Map

	jobsAccepted *expvar.Int
	jobsRejected *expvar.Int // 429s from a full queue
	jobsShed     *expvar.Int // 503s from the open circuit breaker
	peerServed   *expvar.Int // peer-cache GETs served with a solution
	peerStored   *expvar.Int // write-back PUTs accepted into the cache
	routeCounts  *expvar.Map // answered requests by route (route* consts)

	batchRequests *expvar.Int // POST /v1/synthesize/batch calls
	batchMembers  *expvar.Int // members across all batches
	batchDeduped  *expvar.Int // members collapsed onto an earlier member's job
	workload      *expvar.Map // requests by X-Workload-Profile label

	sessionsOpened *expvar.Int // chip sessions opened (counter)
	sessionsLive   *expvar.Int // sessions currently active (gauge)
	sessionCells   *expvar.Int // dead cells accumulated across all sessions (gauge)
	sessionRepairs *expvar.Map // fault-report repairs by outcome

	histSchedule *histogram
	histPlace    *histogram
	histRoute    *histogram
	histTotal    *histogram // synthesis wall-clock, cache misses only
	histRequest  *histogram // POST /v1/synthesize handler latency
	histRepair   *histogram // session fault-report repair latency
}

// newMetrics wires the counters and gauge closures. The gauge funcs pull
// live values from the queue and cache on every render, so /metrics never
// goes stale.
func newMetrics(s *Server) *metrics {
	m := &metrics{
		vars:           new(expvar.Map).Init(),
		jobsAccepted:   new(expvar.Int),
		jobsRejected:   new(expvar.Int),
		jobsShed:       new(expvar.Int),
		peerServed:     new(expvar.Int),
		peerStored:     new(expvar.Int),
		routeCounts:    new(expvar.Map).Init(),
		batchRequests:  new(expvar.Int),
		batchMembers:   new(expvar.Int),
		batchDeduped:   new(expvar.Int),
		workload:       new(expvar.Map).Init(),
		sessionsOpened: new(expvar.Int),
		sessionsLive:   new(expvar.Int),
		sessionCells:   new(expvar.Int),
		sessionRepairs: new(expvar.Map).Init(),
		histSchedule:   newHistogram(),
		histPlace:      newHistogram(),
		histRoute:      newHistogram(),
		histTotal:      newHistogram(),
		histRequest:    newHistogram(),
		histRepair:     newHistogram(),
	}
	m.vars.Set("uptime_s", expvar.Func(func() any {
		return time.Since(s.start).Seconds()
	}))
	m.vars.Set("queue_depth", expvar.Func(func() any { return s.q.Stats().Queued }))
	m.vars.Set("queue_capacity", expvar.Func(func() any { return s.q.Stats().Capacity }))
	m.vars.Set("workers", expvar.Func(func() any { return s.q.Stats().Workers }))
	m.vars.Set("workers_busy", expvar.Func(func() any { return s.q.Stats().Busy }))
	m.vars.Set("jobs_done", expvar.Func(func() any { return s.q.Stats().Done }))
	m.vars.Set("jobs_failed", expvar.Func(func() any { return s.q.Stats().Failed }))
	m.vars.Set("jobs_canceled", expvar.Func(func() any { return s.q.Stats().Canceled }))
	m.vars.Set("jobs_accepted", m.jobsAccepted)
	m.vars.Set("jobs_rejected", m.jobsRejected)
	m.vars.Set("jobs_shed", m.jobsShed)
	m.vars.Set("batch_requests", m.batchRequests)
	m.vars.Set("batch_members", m.batchMembers)
	m.vars.Set("batch_deduped", m.batchDeduped)
	m.vars.Set("workload_requests", m.workload)
	m.vars.Set("sessions_opened", m.sessionsOpened)
	m.vars.Set("sessions_open", m.sessionsLive)
	m.vars.Set("session_cells_lost", m.sessionCells)
	m.vars.Set("session_repairs", m.sessionRepairs)
	m.vars.Set("breaker_state", expvar.Func(func() any { return s.brk.State() }))
	m.vars.Set("journal_replayed", expvar.Func(func() any { return s.replayed.Load() }))
	m.vars.Set("cache_hits", expvar.Func(func() any { return s.cache.Stats().Hits }))
	m.vars.Set("cache_misses", expvar.Func(func() any { return s.cache.Stats().Misses }))
	m.vars.Set("cache_entries", expvar.Func(func() any { return s.cache.Stats().Entries }))
	m.vars.Set("cache_bytes", expvar.Func(func() any { return s.cache.Stats().Bytes }))
	m.vars.Set("queue_detached", expvar.Func(func() any { return s.q.Stats().Detached }))
	if s.cl != nil {
		m.vars.Set("cluster_self", expvar.Func(func() any { return s.cl.Self() }))
		m.vars.Set("cluster_members", expvar.Func(func() any { return len(s.cl.Members()) }))
		m.vars.Set("cluster_peer_served", m.peerServed)
		m.vars.Set("cluster_peer_stored", m.peerStored)
		m.vars.Set("cluster_peers", expvar.Func(func() any { return s.cl.PeerStats() }))
		m.vars.Set("trace_spans_total", expvar.Func(func() any { return s.spansTotal.Load() }))
		m.vars.Set("flight_records_total", expvar.Func(func() any { return s.flight.Total() }))
		m.vars.Set("requests_routed", m.routeCounts)
	}
	if s.slo != nil {
		m.vars.Set("slo", expvar.Func(func() any { return s.slo.Stats() }))
	}
	m.vars.Set("latency_schedule_ms", m.histSchedule)
	m.vars.Set("latency_place_ms", m.histPlace)
	m.vars.Set("latency_route_ms", m.histRoute)
	m.vars.Set("latency_synthesis_ms", m.histTotal)
	m.vars.Set("latency_request_ms", m.histRequest)
	m.vars.Set("latency_repair_ms", m.histRepair)
	return m
}

// routed counts one answered request by the route it took.
func (m *metrics) routed(route string) { m.routeCounts.Add(route, 1) }

// WorkloadProfileHeader is the request header a load generator (see
// internal/loadgen) uses to tag traffic with its workload profile. The
// value becomes a counter label, nothing more: it is deliberately
// outside the cache key, so tagged and untagged requests share
// solutions.
const WorkloadProfileHeader = "X-Workload-Profile"

// countWorkload attributes n requests to the inbound workload-profile
// label, if the client sent one. Labels are restricted to a safe
// charset so the Prometheus exposition can quote them verbatim.
func (s *Server) countWorkload(r *http.Request, n int) {
	p := workloadLabel(r.Header.Get(WorkloadProfileHeader))
	if p == "" {
		return
	}
	s.metrics.workload.Add(p, int64(n))
}

// workloadLabel cleans a client-supplied profile name: at most 64
// bytes, [A-Za-z0-9_.-] only, anything else dropped.
func workloadLabel(v string) string {
	if len(v) > 64 {
		v = v[:64]
	}
	ok := func(c byte) bool {
		return c == '_' || c == '.' || c == '-' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
	}
	clean := true
	for i := 0; i < len(v); i++ {
		if !ok(v[i]) {
			clean = false
			break
		}
	}
	if clean {
		return v
	}
	b := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		if ok(v[i]) {
			b = append(b, v[i])
		}
	}
	return string(b)
}

// routeCount reads one route's counter (0 before its first request).
func (m *metrics) routeCount(route string) float64 {
	if v, ok := m.routeCounts.Get(route).(*expvar.Int); ok {
		return float64(v.Value())
	}
	return 0
}

// repairCount reads one repair outcome's counter (0 before its first
// repair).
func (m *metrics) repairCount(outcome string) float64 {
	if v, ok := m.sessionRepairs.Get(outcome).(*expvar.Int); ok {
		return float64(v.Value())
	}
	return 0
}
