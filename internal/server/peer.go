package server

import (
	"bytes"
	"net/http"

	"repro/internal/solcache"
	"repro/internal/solio"
)

// peer.go serves the cluster's cache-peering endpoints, registered only
// when the server runs with a cluster (Config.Cluster != nil):
//
//	GET /v1/peer/solution/{key}  the cached solution document, or 404
//	PUT /v1/peer/solution/{key}  accept an off-owner write-back
//
// Both speak raw solio documents keyed by the content address, so a
// peered hit is byte-identical to a local one. The endpoints trust the
// cluster's nodes but not their payloads: keys are shape-checked and
// write-back bodies fully decoded before they touch the cache, so one
// corrupted node cannot poison its peers.

// handlePeerGet serves a solution straight out of the local cache.
func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !solcache.ValidKey(key) {
		writeErr(w, http.StatusBadRequest, "malformed cache key %q", key)
		return
	}
	data, ok := s.cache.Get(key)
	if !ok {
		writeErr(w, http.StatusNotFound, "no cached solution for %s", key)
		return
	}
	s.metrics.peerServed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache-Key", key)
	_, _ = w.Write(data)
}

// handlePeerPut accepts a write-back: a solution this node owns but a
// sibling had to synthesize because this node was unreachable.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !solcache.ValidKey(key) {
		writeErr(w, http.StatusBadRequest, "malformed cache key %q", key)
		return
	}
	buf := getBuf()
	defer putBuf(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, 16<<20)); err != nil {
		writeErr(w, http.StatusBadRequest, "reading write-back: %v", err)
		return
	}
	// Decode before caching: the cache must only ever hold documents
	// that parse (resultFromCache treats a non-decoding entry as a
	// server bug).
	if _, err := solio.Decode(bytes.NewReader(buf.Bytes())); err != nil {
		writeErr(w, http.StatusBadRequest, "write-back does not decode: %v", err)
		return
	}
	s.cache.Put(key, append([]byte(nil), buf.Bytes()...))
	s.metrics.peerStored.Add(1)
	w.WriteHeader(http.StatusNoContent)
}
