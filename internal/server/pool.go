package server

import (
	"bytes"
	"sync"
)

// pool.go holds the serving path's byte-buffer recycling. The three hot
// per-request allocations — the request-body read, the solio encode of a
// fresh solution, and every JSON response body — all funnel through one
// bytes.Buffer pool. Ownership rule: a pooled buffer never escapes the
// function that Got it; anything that must outlive the call (the cache
// entry, the jobResult document) is copied out to an exact-size slice
// first. That copy is cheaper than it looks: without the pool, growing a
// fresh buffer to an n-byte document costs ~2n bytes of garbage across
// the doubling steps, plus the final slice; with it, the steady state is
// the single exact-size allocation.

// maxPooledBuf caps what the pool retains. A pathological request (the
// body reader admits up to 16 MiB) must not pin that much memory on the
// free list forever; oversized buffers are dropped for the GC.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	bufPool.Put(b)
}
