package server

import (
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/session"
)

// prom.go renders the service state in the Prometheus text exposition
// format (version 0.0.4), served at GET /metrics. The same state is
// available as expvar JSON at /metrics.json; this view exists so a stock
// Prometheus scrape — or promtool check metrics — works against mfserved
// without an adapter. Counters come from the cumulative jobq totals and
// the obs.Aggregate event sink, both monotonic; the retained-job counts
// of the JSON view (which decay with retention eviction) are deliberately
// not exported as counters.

// promFloat formats a sample value; Prometheus accepts Go's shortest
// round-trip representation including exponents.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// breakerOpenGauge collapses the breaker's state string into a 0/1
// gauge: the alerting question is "are we shedding load", and both open
// and half-open mean the queue recently was overwhelmed.
func breakerOpenGauge(state string) float64 {
	if state == "open" || state == "half-open" {
		return 1
	}
	return 0
}

// promWriter accumulates one exposition. Metric families must be written
// contiguously (HELP, TYPE, then every series of the family).
type promWriter struct{ b strings.Builder }

func (p *promWriter) head(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(&p.b, "%s%s %s\n", name, labels, promFloat(v))
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.head(name, help, "gauge")
	p.sample(name, "", v)
}

func (p *promWriter) counter(name, help string, v float64) {
	p.head(name, help, "counter")
	p.sample(name, "", v)
}

// histogram writes one histogram family. labels carries extra label
// pairs (e.g. `stage="place"`) applied to every series; bucket bounds
// are converted from the internal milliseconds to seconds, the
// Prometheus base unit.
func (p *promWriter) histogram(name, labels string, snap histSnapshot) {
	for i, bound := range snap.bounds {
		le := `le="` + promFloat(bound/1000) + `"`
		if labels != "" {
			le = labels + "," + le
		}
		p.sample(name+"_bucket", le, float64(snap.cumulative[i]))
	}
	inf := `le="+Inf"`
	if labels != "" {
		inf = labels + "," + inf
	}
	p.sample(name+"_bucket", inf, float64(snap.count))
	p.sample(name+"_sum", labels, snap.sumMs/1000)
	p.sample(name+"_count", labels, float64(snap.count))
}

func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	var p promWriter
	qs := s.q.Stats()
	cs := s.cache.Stats()

	p.gauge("mfserved_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())
	p.gauge("mfserved_queue_depth", "Jobs waiting in the FIFO.", float64(qs.Queued))
	p.gauge("mfserved_queue_capacity", "Queued jobs beyond which submissions get 429.", float64(qs.Capacity))
	p.gauge("mfserved_workers", "Synthesis worker-pool size.", float64(qs.Workers))
	p.gauge("mfserved_workers_busy", "Workers currently executing a job.", float64(qs.Busy))

	p.head("mfserved_jobs_finished_total", "Jobs that reached a terminal status, by status.", "counter")
	p.sample("mfserved_jobs_finished_total", `status="done"`, float64(qs.DoneTotal))
	p.sample("mfserved_jobs_finished_total", `status="failed"`, float64(qs.FailedTotal))
	p.sample("mfserved_jobs_finished_total", `status="canceled"`, float64(qs.CanceledTotal))
	p.counter("mfserved_jobs_accepted_total", "Synthesis submissions accepted into the queue.", float64(s.metrics.jobsAccepted.Value()))
	p.counter("mfserved_jobs_rejected_total", "Synthesis submissions rejected with 429 (queue full).", float64(s.metrics.jobsRejected.Value()))
	p.counter("mfserved_jobs_shed_total", "Synthesis submissions shed with 503 by the open circuit breaker.", float64(s.metrics.jobsShed.Value()))
	p.gauge("mfserved_breaker_open", "1 while the load-shedding circuit breaker is open or half-open, 0 otherwise.", breakerOpenGauge(s.brk.State()))
	p.counter("mfserved_journal_replayed_total", "Jobs resubmitted from the crash-safe journal at startup.", float64(s.replayed.Load()))

	p.counter("mfserved_batch_requests_total", "POST /v1/synthesize/batch calls.", float64(s.metrics.batchRequests.Value()))
	p.counter("mfserved_batch_members_total", "Batch members received across all batch calls.", float64(s.metrics.batchMembers.Value()))
	p.counter("mfserved_batch_members_deduped_total", "Batch members collapsed onto an earlier member's job by cache-key dedupe.", float64(s.metrics.batchDeduped.Value()))

	// Per-profile workload attribution, only once a client has tagged
	// traffic with X-Workload-Profile, so an untagged scrape stays
	// byte-stable with earlier releases. expvar.Map iterates its keys in
	// sorted order, keeping the exposition deterministic.
	{
		type kv struct {
			k string
			v int64
		}
		var rows []kv
		s.metrics.workload.Do(func(e expvar.KeyValue) {
			if c, ok := e.Value.(*expvar.Int); ok {
				rows = append(rows, kv{e.Key, c.Value()})
			}
		})
		if len(rows) > 0 {
			p.head("mfserved_workload_requests_total", "Synthesis requests by client-declared workload profile.", "counter")
			for _, row := range rows {
				p.sample("mfserved_workload_requests_total", `profile="`+row.k+`"`, float64(row.v))
			}
		}
	}

	p.counter("mfserved_cache_hits_total", "Solution-cache hits.", float64(cs.Hits))
	p.counter("mfserved_cache_misses_total", "Solution-cache misses.", float64(cs.Misses))
	p.gauge("mfserved_cache_entries", "Solutions currently cached.", float64(cs.Entries))
	p.gauge("mfserved_cache_bytes", "Bytes held by the solution cache.", float64(cs.Bytes))

	// Algorithm telemetry folded from the obs event stream of every job.
	a := s.agg
	p.head("mfserved_schedule_bindings_total", "Algorithm 1 binding decisions, by case.", "counter")
	p.sample("mfserved_schedule_bindings_total", `case="1"`, float64(a.BindCaseI.Load()))
	p.sample("mfserved_schedule_bindings_total", `case="2"`, float64(a.BindCaseII.Load()))
	p.counter("mfserved_schedule_wash_avoided_seconds_total", "Component wash time eliminated by Case I in-place consumption.", float64(a.WashAvoidedMs.Load())/1000)
	p.counter("mfserved_sa_steps_total", "Simulated-annealing temperature steps.", float64(a.SASteps.Load()))
	p.counter("mfserved_sa_moves_total", "Simulated-annealing moves sampled.", float64(a.SAMoves.Load()))
	p.counter("mfserved_sa_accepted_total", "Simulated-annealing moves accepted.", float64(a.SAAccepted.Load()))
	p.counter("mfserved_route_tasks_total", "Transportation tasks routed.", float64(a.RouteTasks.Load()))
	p.counter("mfserved_astar_expanded_total", "A* nodes expanded across all routed tasks.", float64(a.AStarExpanded.Load()))
	p.counter("mfserved_route_slot_conflicts_total", "Cell probes rejected by time-slot overlap.", float64(a.SlotConflicts.Load()))
	p.gauge("mfserved_astar_heap_peak", "Largest A* open-heap size seen by any task.", float64(a.HeapPeak.Load()))
	p.counter("mfserved_route_dilations_total", "Placement dilations triggered by routing congestion.", float64(a.Dilations.Load()))
	p.counter("mfserved_place_retries_total", "Placement retries after unresolvable congestion.", float64(a.PlaceRetries.Load()))

	// Opt-in multicore modes: parallel tempering and wave routing.
	p.gauge("mfserved_temper_replicas", "Widest parallel-tempering replica ladder run so far.", float64(a.TemperReplicas.Load()))
	p.counter("mfserved_temper_rounds_total", "Parallel-tempering rounds (barrier-synced step+swap phases).", float64(a.TemperRounds.Load()))
	p.counter("mfserved_temper_swaps_total", "Accepted replica configuration swaps between adjacent rungs.", float64(a.TemperSwaps.Load()))
	p.counter("mfserved_route_waves_total", "Multi-task routing waves executed in parallel.", float64(a.RouteWaves.Load()))
	p.gauge("mfserved_route_wave_width_peak", "Widest routing wave (parallelism width) seen by any job.", float64(a.RouteWaveWidth.Load()))
	p.counter("mfserved_route_spec_accepted_total", "Speculative wave paths accepted at commit time.", float64(a.RouteSpecOK.Load()))
	p.counter("mfserved_route_spec_rerouted_total", "Speculative wave paths invalidated and re-routed sequentially.", float64(a.RouteSpecMiss.Load()))

	p.head("mfserved_stage_latency_seconds", "Per-stage synthesis latency (cache misses only).", "histogram")
	p.histogram("mfserved_stage_latency_seconds", `stage="schedule"`, s.metrics.histSchedule.snapshot())
	p.histogram("mfserved_stage_latency_seconds", `stage="place"`, s.metrics.histPlace.snapshot())
	p.histogram("mfserved_stage_latency_seconds", `stage="route"`, s.metrics.histRoute.snapshot())
	p.head("mfserved_synthesis_latency_seconds", "End-to-end synthesis latency (cache misses only).", "histogram")
	p.histogram("mfserved_synthesis_latency_seconds", "", s.metrics.histTotal.snapshot())
	p.head("mfserved_request_latency_seconds", "POST /v1/synthesize handler latency.", "histogram")
	p.histogram("mfserved_request_latency_seconds", "", s.metrics.histRequest.snapshot())

	// Cluster families, only in cluster mode so a single-node scrape
	// stays byte-stable with earlier releases.
	if s.cl != nil {
		p.gauge("mfserved_cluster_members", "Configured cluster members (alive or not).", float64(len(s.cl.Members())))
		p.gauge("mfserved_cluster_detached_jobs", "Forward jobs currently running detached from the worker pool.", float64(qs.Detached))
		p.counter("mfserved_cluster_peer_served_total", "Peer-cache lookups this node answered with a solution.", float64(s.metrics.peerServed.Value()))
		p.counter("mfserved_cluster_peer_stored_total", "Write-back solutions this node accepted from siblings.", float64(s.metrics.peerStored.Value()))

		stats := s.cl.PeerStats()
		peerLabel := func(ps cluster.PeerStats) string { return `peer="` + ps.Peer + `"` }
		p.head("mfserved_cluster_peer_up", "1 while the peer answers health probes, 0 while marked down.", "gauge")
		for _, ps := range stats {
			up := 0.0
			if ps.Up {
				up = 1
			}
			p.sample("mfserved_cluster_peer_up", peerLabel(ps), up)
		}
		p.head("mfserved_cluster_forwards_total", "Synthesis forwards to the ring owner, by outcome.", "counter")
		for _, ps := range stats {
			p.sample("mfserved_cluster_forwards_total", peerLabel(ps)+`,outcome="ok"`, float64(ps.ForwardOK))
			p.sample("mfserved_cluster_forwards_total", peerLabel(ps)+`,outcome="fallback"`, float64(ps.ForwardFail))
		}
		p.head("mfserved_cluster_peer_lookups_total", "Read-through peer-cache lookups, by result.", "counter")
		for _, ps := range stats {
			p.sample("mfserved_cluster_peer_lookups_total", peerLabel(ps)+`,result="hit"`, float64(ps.PeerHits))
			p.sample("mfserved_cluster_peer_lookups_total", peerLabel(ps)+`,result="miss"`, float64(ps.PeerMisses))
			p.sample("mfserved_cluster_peer_lookups_total", peerLabel(ps)+`,result="error"`, float64(ps.PeerErrors))
		}
		p.head("mfserved_cluster_probes_total", "Health probes, by result.", "counter")
		for _, ps := range stats {
			p.sample("mfserved_cluster_probes_total", peerLabel(ps)+`,result="ok"`, float64(ps.ProbeOK))
			p.sample("mfserved_cluster_probes_total", peerLabel(ps)+`,result="fail"`, float64(ps.ProbeFail))
		}
		p.head("mfserved_cluster_writebacks_total", "Solutions written back to their ring owner after a local fallback.", "counter")
		for _, ps := range stats {
			p.sample("mfserved_cluster_writebacks_total", peerLabel(ps), float64(ps.WriteBacks))
		}

		// Request-tracing families ride the cluster gate: they exist for
		// the cross-node timeline, and gating keeps a single-node scrape
		// byte-stable with earlier releases.
		p.counter("mfserved_trace_spans_total", "Trace spans recorded across all requests.", float64(s.spansTotal.Load()))
		p.counter("mfserved_flight_records_total", "Requests recorded by the flight recorder (monotonic; the ring retains the most recent).", float64(s.flight.Total()))
		routes := []string{routeCacheHit, routePeerHit, routeLocal, routeForwarded, routeFallback}
		if s.metrics.sessionsOpened.Value() > 0 {
			// Session routes appear only once session traffic exists, so a
			// sessionless cluster scrape stays byte-stable with earlier
			// releases.
			routes = append(routes, routeSession, routeSessionRepair)
		}
		p.head("mfserved_requests_routed_total", "Answered requests by the route that produced the response.", "counter")
		for _, route := range routes {
			p.sample("mfserved_requests_routed_total", `route="`+route+`"`, s.metrics.routeCount(route))
		}
	}

	// Chip-session families, only once a session has been opened, so the
	// default single-node scrape stays byte-stable with earlier releases.
	if s.metrics.sessionsOpened.Value() > 0 {
		p.counter("mfserved_sessions_opened_total", "Chip sessions opened (including journal-replayed ones).", float64(s.metrics.sessionsOpened.Value()))
		p.gauge("mfserved_sessions_open", "Chip sessions currently active.", float64(s.metrics.sessionsLive.Value()))
		p.head("mfserved_session_repairs_total", "Session fault-report repairs, by outcome.", "counter")
		for _, oc := range []string{session.OutcomeRepaired, session.OutcomeDegraded, session.OutcomeAbandoned} {
			p.sample("mfserved_session_repairs_total", `outcome="`+oc+`"`, s.metrics.repairCount(oc))
		}
		p.head("mfserved_session_repair_latency_seconds", "Fault-report repair latency (ladder plus audit).", "histogram")
		p.histogram("mfserved_session_repair_latency_seconds", "", s.metrics.histRepair.snapshot())
		p.gauge("mfserved_session_cells_lost", "Dead routing-plane cells accumulated across all sessions.", float64(s.metrics.sessionCells.Value()))
	}

	// SLO families, only when objectives are configured (-slo), so the
	// default scrape stays byte-stable.
	if s.slo != nil {
		stats := s.slo.Stats()
		p.head("mfserved_slo_requests_total", "Terminal requests graded against each latency objective.", "counter")
		for _, st := range stats {
			p.sample("mfserved_slo_requests_total", `objective="`+st.Name+`",result="good"`, float64(st.Good))
			p.sample("mfserved_slo_requests_total", `objective="`+st.Name+`",result="bad"`, float64(st.Bad))
		}
		p.head("mfserved_slo_target_seconds", "Each objective's latency target.", "gauge")
		for _, st := range stats {
			p.sample("mfserved_slo_target_seconds", `objective="`+st.Name+`"`, st.TargetMs/1000)
		}
		p.head("mfserved_slo_attainment_ratio", "Fraction of graded requests within each objective's target (1.0 with no traffic).", "gauge")
		for _, st := range stats {
			p.sample("mfserved_slo_attainment_ratio", `objective="`+st.Name+`"`, st.Attainment)
		}
		p.head("mfserved_slo_burn_rate", "Error-budget burn rate per objective: bad fraction over (1 - quantile); sustained >1 violates the SLO.", "gauge")
		for _, st := range stats {
			p.sample("mfserved_slo_burn_rate", `objective="`+st.Name+`"`, st.BurnRate)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(p.b.String()))
}
