package server

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// promMetric is one parsed exposition sample.
type promMetric struct {
	name   string
	labels string // raw {...} content, "" if unlabeled
	value  float64
}

// parseProm validates the structural rules of the text exposition format
// 0.0.4 and returns the samples: every non-comment line must be
// `name{labels} value`, every sample must be preceded by a TYPE for its
// family, families must be contiguous, and values must parse as floats.
func parseProm(t *testing.T, body string) []promMetric {
	t.Helper()
	var out []promMetric
	types := map[string]string{}
	var lastFamily string
	seenFamilies := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			if fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := types[family]; !ok {
			// _count may also be a plain counter name; accept exact match.
			if _, ok := types[name]; !ok {
				t.Fatalf("sample %q has no preceding TYPE", line)
			}
			family = name
		}
		if family != lastFamily && seenFamilies[family] {
			t.Fatalf("family %q is not contiguous (line %q)", family, line)
		}
		seenFamilies[family] = true
		lastFamily = family
		out = append(out, promMetric{name: name, labels: labels, value: v})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// find returns the samples with the given metric name.
func findProm(ms []promMetric, name string) []promMetric {
	var out []promMetric
	for _, m := range ms {
		if m.name == name {
			out = append(out, m)
		}
	}
	return out
}

func TestPrometheusExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})

	// One real synthesis so stage histograms and algorithm counters move.
	// CPA (8 mixers, 2 detectors) is the smallest benchmark whose routes
	// reliably leave the degenerate adjacent-component case, so the A*
	// expansion counters are exercised too.
	var sub submitResponse
	const cpaReq = `{"bench":"CPA","options":{"imax":60,"seed":7}}`
	if code := postJSON(t, ts.URL, "/v1/synthesize", cpaReq, &sub); code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	if jr := waitTerminal(t, ts.URL, sub.JobID, 60*time.Second); jr.Status != "done" {
		t.Fatalf("job: %s (%s)", jr.Status, jr.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	ms := parseProm(t, string(body))

	value := func(name, labels string) float64 {
		t.Helper()
		for _, m := range findProm(ms, name) {
			if m.labels == labels {
				return m.value
			}
		}
		t.Fatalf("metric %s{%s} missing", name, labels)
		return 0
	}

	if v := value("mfserved_jobs_finished_total", `status="done"`); v < 1 {
		t.Fatalf("jobs done total = %v, want >= 1", v)
	}
	if v := value("mfserved_schedule_bindings_total", `case="1"`) +
		value("mfserved_schedule_bindings_total", `case="2"`); v < 1 {
		t.Fatalf("no binding decisions counted: %v", v)
	}
	if v := value("mfserved_sa_steps_total", ""); v < 1 {
		t.Fatalf("sa steps = %v, want >= 1", v)
	}
	if v := value("mfserved_astar_expanded_total", ""); v < 1 {
		t.Fatalf("astar expanded = %v, want >= 1", v)
	}

	// Histogram invariants for every stage: cumulative buckets
	// non-decreasing in le, +Inf bucket equals _count.
	for _, stage := range []string{"schedule", "place", "route"} {
		var buckets []promMetric
		for _, m := range findProm(ms, "mfserved_stage_latency_seconds_bucket") {
			if strings.Contains(m.labels, `stage="`+stage+`"`) {
				buckets = append(buckets, m)
			}
		}
		if len(buckets) == 0 {
			t.Fatalf("no buckets for stage %q", stage)
		}
		les := make([]float64, 0, len(buckets))
		var infVal float64
		byLe := map[float64]float64{}
		for _, b := range buckets {
			leStr := b.labels[strings.Index(b.labels, `le="`)+4:]
			leStr = leStr[:strings.IndexByte(leStr, '"')]
			if leStr == "+Inf" {
				infVal = b.value
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", leStr, err)
			}
			les = append(les, le)
			byLe[le] = b.value
		}
		sort.Float64s(les)
		prev := 0.0
		for _, le := range les {
			if byLe[le] < prev {
				t.Fatalf("stage %s: bucket le=%g count %g below previous %g", stage, le, byLe[le], prev)
			}
			prev = byLe[le]
		}
		count := value("mfserved_stage_latency_seconds_count", fmt.Sprintf("stage=%q", stage))
		if infVal != count || count < 1 {
			t.Fatalf("stage %s: +Inf bucket %g != count %g (or no observations)", stage, infVal, count)
		}
	}
}

// TestHistogramConcurrent drives observe, String and snapshot from many
// goroutines; the -race run of this package is the assertion.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.observe(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = h.String()
				_ = h.snapshot()
			}
		}()
	}
	wg.Wait()
	snap := h.snapshot()
	if snap.count != 4*500 {
		t.Fatalf("count = %d, want %d", snap.count, 4*500)
	}
	if got := snap.cumulative[len(snap.cumulative)-1]; got != snap.count {
		t.Fatalf("cumulative tail %d != count %d", got, snap.count)
	}
	for i := 1; i < len(snap.cumulative); i++ {
		if snap.cumulative[i] < snap.cumulative[i-1] {
			t.Fatalf("cumulative not monotone at %d: %v", i, snap.cumulative)
		}
	}
}
