package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/assay"
	"repro/internal/benchdata"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/solcache"
	"repro/internal/unit"
)

// SynthesizeRequest is the body of POST /v1/synthesize. Exactly one of
// Assay (an inline assay graph in the mfgen JSON format), Bench (a
// built-in Table I benchmark name) or Protocol (a protocol-builder spec)
// selects the bioassay.
type SynthesizeRequest struct {
	Assay    json.RawMessage `json:"assay,omitempty"`
	Bench    string          `json:"bench,omitempty"`
	Protocol *ProtocolSpec   `json:"protocol,omitempty"`
	// Alloc is a component allocation tuple such as "(3,0,0,2)". Empty
	// selects the benchmark's published allocation (for Bench) or the
	// minimal covering allocation otherwise.
	Alloc string `json:"alloc,omitempty"`
	// Baseline selects the comparison algorithm BA instead of the
	// proposed DCSA-aware flow.
	Baseline bool `json:"baseline,omitempty"`
	// Options overrides individual algorithm parameters; nil keeps the
	// paper's published defaults.
	Options *OptionsSpec `json:"options,omitempty"`
}

// ProtocolSpec describes a bioassay via the internal/protocol builders
// instead of an explicit operation list.
type ProtocolSpec struct {
	// Name of the generated assay; defaults to the protocol kind.
	Name string `json:"name,omitempty"`
	// Kind is one of "mixing_tree", "serial_dilution", "multiplex",
	// "heat_cycle".
	Kind string `json:"kind"`
	// MixingTree: power-of-two leaf count.
	Leaves int `json:"leaves,omitempty"`
	// SerialDilution: chain length; DetectEach branches a detection off
	// every stage.
	Stages     int  `json:"stages,omitempty"`
	DetectEach bool `json:"detect_each,omitempty"`
	// Multiplex: panel dimensions.
	Samples  int `json:"samples,omitempty"`
	Reagents int `json:"reagents,omitempty"`
	// HeatCycle: thermocycle count.
	Cycles int `json:"cycles,omitempty"`
	// Operation durations in seconds; unset values default to 6 s mixes,
	// 4 s heats and 5 s detections.
	MixS    float64 `json:"mix_s,omitempty"`
	HeatS   float64 `json:"heat_s,omitempty"`
	DetectS float64 `json:"detect_s,omitempty"`
}

// OptionsSpec is the subset of core.Options a client may override.
// Pointers distinguish "absent" from zero values.
type OptionsSpec struct {
	// Imax is the simulated-annealing move count per temperature step.
	Imax *int `json:"imax,omitempty"`
	// Seed drives the deterministic placement RNG.
	Seed *uint64 `json:"seed,omitempty"`
	// Portfolio anneals that many seeds concurrently and keeps the best.
	Portfolio *int `json:"portfolio,omitempty"`
	// Tempering runs parallel tempering with that many replicas instead
	// of the seed portfolio; 0/1 keep the configured default path.
	Tempering *int `json:"tempering,omitempty"`
	// RouteWorkers enables the concurrent wave router with that pool
	// size. The routed solution is byte-identical for every value — this
	// knob trades CPU for latency only.
	RouteWorkers *int `json:"route_workers,omitempty"`
	// TCSeconds is the transportation constant t_c in seconds.
	TCSeconds *float64 `json:"tc_s,omitempty"`
}

// request is a fully resolved synthesis request.
type request struct {
	graph *assay.Graph
	alloc chip.Allocation
	opts  core.Options
	// baseline mirrors SynthesizeRequest.Baseline.
	baseline bool
	// key is the content address of the solution this request determines.
	key string
}

// resolve validates the request, builds the assay graph, applies option
// overrides and computes the cache key.
func resolve(req *SynthesizeRequest) (*request, error) {
	sources := 0
	for _, have := range []bool{len(req.Assay) > 0, req.Bench != "", req.Protocol != nil} {
		if have {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("request must name exactly one of assay, bench, protocol (got %d)", sources)
	}

	var g *assay.Graph
	var alloc chip.Allocation
	var err error
	switch {
	case len(req.Assay) > 0:
		g, err = assay.Decode(bytes.NewReader(req.Assay))
		if err != nil {
			return nil, err
		}
		alloc = chip.MinimalAllocation(g)
	case req.Bench != "":
		bm, err := benchdata.ByName(req.Bench)
		if err != nil {
			return nil, err
		}
		g, alloc = bm.Graph, bm.Alloc
	default:
		g, err = buildProtocol(req.Protocol)
		if err != nil {
			return nil, err
		}
		alloc = chip.MinimalAllocation(g)
	}
	if req.Alloc != "" {
		alloc, err = chip.ParseAllocation(req.Alloc)
		if err != nil {
			return nil, err
		}
		if err := alloc.Covers(g); err != nil {
			return nil, err
		}
	}

	opts := core.DefaultOptions()
	if o := req.Options; o != nil {
		if o.Imax != nil {
			if *o.Imax < 1 || *o.Imax > 100_000 {
				return nil, fmt.Errorf("imax %d outside [1, 100000]", *o.Imax)
			}
			opts.Place.Imax = *o.Imax
		}
		if o.Seed != nil {
			opts.Place.Seed = *o.Seed
		}
		if o.Portfolio != nil {
			if *o.Portfolio < 0 || *o.Portfolio > 64 {
				return nil, fmt.Errorf("portfolio %d outside [0, 64]", *o.Portfolio)
			}
			opts.Portfolio = *o.Portfolio
		}
		if o.Tempering != nil {
			if *o.Tempering < 0 || *o.Tempering > 64 {
				return nil, fmt.Errorf("tempering %d outside [0, 64]", *o.Tempering)
			}
			opts.Tempering = *o.Tempering
		}
		if o.RouteWorkers != nil {
			if *o.RouteWorkers < 0 || *o.RouteWorkers > 256 {
				return nil, fmt.Errorf("route_workers %d outside [0, 256]", *o.RouteWorkers)
			}
			opts.Route.Workers = *o.RouteWorkers
		}
		if o.TCSeconds != nil {
			if *o.TCSeconds <= 0 || *o.TCSeconds > 3600 {
				return nil, fmt.Errorf("tc_s %g outside (0, 3600]", *o.TCSeconds)
			}
			opts.Schedule.TC = unit.Seconds(*o.TCSeconds)
		}
	}

	key, err := cacheKey(g, alloc, opts, req.Baseline)
	if err != nil {
		return nil, err
	}
	return &request{graph: g, alloc: alloc, opts: opts, baseline: req.Baseline, key: key}, nil
}

// buildProtocol constructs the assay a ProtocolSpec describes.
func buildProtocol(p *ProtocolSpec) (*assay.Graph, error) {
	name := p.Name
	if name == "" {
		name = p.Kind
	}
	secs := func(v, def float64) (unit.Time, error) {
		if v == 0 {
			v = def
		}
		if v <= 0 || v > 3600 {
			return 0, fmt.Errorf("protocol duration %gs outside (0, 3600]", v)
		}
		return unit.Seconds(v), nil
	}
	mix, err := secs(p.MixS, 6)
	if err != nil {
		return nil, err
	}
	heat, err := secs(p.HeatS, 4)
	if err != nil {
		return nil, err
	}
	det, err := secs(p.DetectS, 5)
	if err != nil {
		return nil, err
	}
	b := assay.NewBuilder(name)
	switch p.Kind {
	case "mixing_tree":
		if _, err := protocol.MixingTree(b, p.Leaves, protocol.MixSpec{Duration: mix}); err != nil {
			return nil, err
		}
	case "serial_dilution":
		if _, err := protocol.SerialDilution(b, assay.NoOp, p.Stages, protocol.MixSpec{Duration: mix}, p.DetectEach, det); err != nil {
			return nil, err
		}
	case "multiplex":
		if _, err := protocol.Multiplex(b, p.Samples, p.Reagents, mix, det); err != nil {
			return nil, err
		}
	case "heat_cycle":
		if _, err := protocol.HeatCycle(b, assay.NoOp, p.Cycles, heat, mix); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown protocol kind %q", p.Kind)
	}
	return b.Build()
}

// canonOpts is the canonical, order-stable encoding of every parameter
// that influences the synthesized solution. It deliberately covers ALL of
// core.Options — adding an option without extending this struct would
// alias distinct computations onto one cache key. The one deliberate
// omission is Route.Workers: the wave router is pinned byte-identical to
// the sequential router for every worker count (see
// TestParallelRoutingMatchesSequential), so folding it into the key
// would only split identical solutions across cache entries.
type canonOpts struct {
	TCms      int64   `json:"tc_ms"`
	FastWash  int64   `json:"fast_wash_ms"`
	SlowWash  int64   `json:"slow_wash_ms"`
	FastD     float64 `json:"fast_d"`
	SlowD     float64 `json:"slow_d"`
	T0        float64 `json:"t0"`
	Tmin      float64 `json:"tmin"`
	Alpha     float64 `json:"alpha"`
	Imax      int     `json:"imax"`
	Beta      float64 `json:"beta"`
	Gamma     float64 `json:"gamma"`
	Seed      uint64  `json:"seed"`
	PlaneW    int     `json:"plane_w"`
	PlaneH    int     `json:"plane_h"`
	Spacing   int     `json:"spacing"`
	We        float64 `json:"we"`
	PitchUm   int64   `json:"pitch_um"`
	Portfolio int     `json:"portfolio"`
	Tempering int     `json:"tempering"`
	Baseline  bool    `json:"baseline"`
}

// cacheKey derives the content address of the solution determined by
// (assay, allocation, options, algorithm). The assay is re-encoded
// through its stable MarshalJSON so client formatting (whitespace, field
// order of the original upload) cannot split identical requests across
// keys.
func cacheKey(g *assay.Graph, alloc chip.Allocation, opts core.Options, baseline bool) (string, error) {
	assayJSON, err := g.MarshalJSON()
	if err != nil {
		return "", err
	}
	co := canonOpts{
		TCms:      int64(opts.Schedule.TC),
		FastWash:  int64(opts.Schedule.Wash.FastWash),
		SlowWash:  int64(opts.Schedule.Wash.SlowWash),
		FastD:     float64(opts.Schedule.Wash.FastD),
		SlowD:     float64(opts.Schedule.Wash.SlowD),
		T0:        opts.Place.T0,
		Tmin:      opts.Place.Tmin,
		Alpha:     opts.Place.Alpha,
		Imax:      opts.Place.Imax,
		Beta:      opts.Place.Beta,
		Gamma:     opts.Place.Gamma,
		Seed:      opts.Place.Seed,
		PlaneW:    opts.Place.PlaneW,
		PlaneH:    opts.Place.PlaneH,
		Spacing:   opts.Place.Spacing,
		We:        opts.Route.We,
		PitchUm:   int64(opts.Route.Pitch),
		Portfolio: opts.Portfolio,
		Tempering: opts.Tempering,
		Baseline:  baseline,
	}
	optJSON, err := json.Marshal(co)
	if err != nil {
		return "", err
	}
	return solcache.Key(assayJSON, []byte(alloc.String()), optJSON), nil
}
