// Package server implements mfserved's HTTP API: a concurrent synthesis
// service in front of the paper's deterministic pipeline.
//
//	POST /v1/synthesize        submit a synthesis request → job ID (202),
//	                           cache hit → completed job (200),
//	                           queue full → backpressure (429)
//	GET  /v1/jobs/{id}          job status, progress and metrics
//	GET  /v1/jobs/{id}/solution the solio-serialized solution document
//	POST /v1/jobs/{id}/cancel   cancel a queued or running job
//	GET  /healthz               liveness
//	GET  /metrics               Prometheus text-format counters and histograms
//	GET  /metrics.json          the same state as expvar JSON
//
// Determinism is load-bearing: the synthesis flow is a pure function of
// (assay, allocation, options, algorithm), so results are stored in a
// content-addressed cache and a cache-served solution is byte-identical
// to a freshly synthesized one. To keep the served document itself pure,
// the solution's wall-clock CPU field is zeroed before serialization;
// per-run timing lives in the job record and the /metrics histograms.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/jobq"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/solcache"
	"repro/internal/solio"
)

// Config sizes the service. Zero values select sane defaults.
type Config struct {
	// Workers is the synthesis worker-pool size (default: NumCPU).
	Workers int
	// QueueCap bounds the FIFO of waiting jobs (default 64); beyond it
	// POST /v1/synthesize returns 429.
	QueueCap int
	// CacheBytes bounds the content-addressed result cache (default 256 MiB).
	CacheBytes int64
	// JobTimeout is the per-job synthesis deadline (default 120 s;
	// negative disables).
	JobTimeout time.Duration
	// Retain bounds how many finished jobs stay pollable (default 4096).
	Retain int
	// Logger receives the structured request and job logs. Nil discards
	// them (the default for tests and embedded use).
	Logger *slog.Logger

	// SubmitRetries is how many times a synthesis submission retries a
	// full queue before giving up with 429 (default 2; negative disables
	// retries). Each retry backs off SubmitBackoff, doubling.
	SubmitRetries int
	// SubmitBackoff is the base delay between submit retries (default 20 ms).
	SubmitBackoff time.Duration
	// BreakerThreshold opens the load-shedding circuit breaker after this
	// many consecutive submissions exhausted their retries against a full
	// queue (default 16; negative disables the breaker). While open,
	// submissions are shed with 503 without touching the queue.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting
	// a probe request (default 2 s).
	BreakerCooldown time.Duration
	// JournalPath, when set, enables the crash-safe job journal: accepted
	// synthesis requests are appended there before entering the queue and
	// marked terminal when they finish, and on startup any
	// accepted-but-unfinished requests from a previous process are
	// resubmitted. Empty disables journaling.
	JournalPath string
	// Degrade is the degradation ladder applied to every synthesis job
	// (see core.Degrade). It is process-wide configuration, not request
	// content, so it is deliberately outside the cache key: all jobs of
	// one process share it, and the zero value (the default) changes
	// nothing about the pipeline.
	Degrade core.Degrade
	// Fault is the fault-injection plan threaded through the handler, the
	// queue, the cache and every synthesis job. Nil (the default) injects
	// nothing and adds no overhead.
	Fault *fault.Plan
	// Cluster, when set, makes this server one node of a shared-nothing
	// cluster (see internal/cluster): a consistent-hash ring keyed on the
	// solution-cache key routes each request to an owner node, local cache
	// misses read through peers before synthesizing, and the peer-cache
	// endpoints (/v1/peer/solution/{key}) are registered. Nil (the
	// default) runs a plain single-node server with zero overhead.
	Cluster *cluster.Cluster
	// SLO is the set of latency objectives the service grades itself
	// against (see obs.ParseSLO). Nil disables the SLO layer and its
	// metric families entirely.
	SLO *obs.SLOSet
	// FlightRecords sizes the request flight recorder's ring (default
	// 256). The recorder is always on — it is one mutex-guarded copy per
	// terminal request — and serves /debug/requests.
	FlightRecords int
}

// Server is the service state: worker pool, cache and metrics.
type Server struct {
	cfg     Config
	q       *jobq.Queue
	cache   *solcache.Cache
	mux     *http.ServeMux
	handler http.Handler // mux wrapped with request-ID logging
	start   time.Time
	metrics *metrics
	log     *slog.Logger
	agg     *obs.Aggregate // algorithm telemetry folded across all jobs
	reqSeq  atomic.Uint64  // server-assigned request IDs
	flt     *fault.Plan    // nil when fault injection is off
	brk     *breaker.Breaker
	cl      *cluster.Cluster // nil outside cluster mode

	// Request tracing and postmortem state. entropy makes span-ID
	// prefixes unique across nodes; node is this node's name in spans
	// (the cluster self URL, or "local").
	slo        *obs.SLOSet
	flight     *obs.FlightRecorder
	entropy    string
	node       string
	traceSeq   atomic.Uint64
	spansTotal atomic.Int64 // spans recorded across all requests

	// Crash-safe journal state. jobEntry maps live queue job IDs to their
	// journal entry IDs; earlyTerm stashes terminal outcomes that arrived
	// before the submit path could register the mapping (a fast worker can
	// finish a job before SubmitLabeled's caller resumes).
	jnl       *journal.Journal
	jmu       sync.Mutex
	jobEntry  map[string]string
	earlyTerm map[string]string
	replayed  atomic.Int64

	// Chip-session state (see internal/session): long-lived pinned
	// solutions repaired in place against fault reports. sessions maps
	// session ID to its entry; sessSeq numbers server-assigned IDs.
	smu      sync.Mutex
	sessions map[string]*sessionEntry
	sessSeq  atomic.Uint64
	sessSem  chan struct{} // bounds inline session-create syntheses to the pool size
}

// jobResult is what a synthesis job stores in the queue on success.
type jobResult struct {
	key          string
	cached       bool
	peer         string // cluster peer that produced/served the solution, if any
	solution     []byte // canonical solio document
	metrics      core.Metrics
	stages       core.StageTimes
	degradations []core.Degradation
	trace        string     // trace ID, "" when the request wasn't traced
	route        string     // how the request was answered (route* consts)
	spans        []obs.Span // the request's merged trace timeline
}

// Route values: how a request was answered. They name the flight
// recorder's Route field, the root span's attribute and the
// mfserved_requests_routed_total label.
const (
	routeCacheHit  = "cache-hit"
	routePeerHit   = "peer-hit"
	routeLocal     = "local"
	routeForwarded = "forwarded"
	routeFallback  = "fallback"
	// Session routes: opening a chip session and repairing one against a
	// fault report. Distinct labels keep /debug/requests attribution and
	// the routed-requests counter honest about which traffic is long-lived
	// session work rather than one-shot synthesis.
	routeSession       = "session"
	routeSessionRepair = "session-repair"
)

// New builds a server and starts its worker pool. Call Shutdown to drain.
// The only error source is the job journal: an unreadable or unwritable
// JournalPath refuses to start rather than silently running without
// crash safety.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 120 * time.Second
	}
	if cfg.SubmitRetries == 0 {
		cfg.SubmitRetries = 2
	}
	if cfg.SubmitBackoff <= 0 {
		cfg.SubmitBackoff = 20 * time.Millisecond
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 16
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:       cfg,
		q:         jobq.New(cfg.Workers, cfg.QueueCap, cfg.Retain),
		cache:     solcache.New(cfg.CacheBytes),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		log:       log,
		agg:       &obs.Aggregate{},
		flt:       cfg.Fault,
		brk:       breaker.New(cfg.BreakerThreshold, cfg.BreakerCooldown, nil),
		cl:        cfg.Cluster,
		slo:       cfg.SLO,
		flight:    obs.NewFlightRecorder(cfg.FlightRecords),
		entropy:   nodeEntropy(),
		node:      "local",
		jobEntry:  make(map[string]string),
		earlyTerm: make(map[string]string),
		sessions:  make(map[string]*sessionEntry),
		sessSem:   make(chan struct{}, cfg.Workers),
	}
	if s.cl != nil {
		s.node = s.cl.Self()
	}
	s.q.SetFault(s.flt)
	s.cache.SetFault(s.flt)
	s.metrics = newMetrics(s)
	s.q.OnTerminal(func(j jobq.Job) {
		lvl := slog.LevelInfo
		attrs := []any{
			"job", j.ID,
			"request_id", j.Label,
			"status", string(j.Status),
			"dur_ms", float64(j.Finished.Sub(j.Started).Microseconds()) / 1000,
			"err", j.Err,
		}
		if j.Status == jobq.Failed {
			lvl = slog.LevelWarn
			if j.Stack != "" {
				attrs = append(attrs, "stack", j.Stack)
			}
		}
		s.log.Log(context.Background(), lvl, "job finished", attrs...)
		s.recordTerminal(j)
		s.journalOutcome(j)
	})
	if cfg.JournalPath != "" {
		jnl, pending, torn, err := journal.Open(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.jnl = jnl
		if torn > 0 {
			s.log.Warn("journal had torn lines", "path", cfg.JournalPath, "torn", torn)
		}
		s.replay(pending)
	}
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("POST /v1/synthesize/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/sessions/{id}/faults", s.handleSessionFault)
	s.mux.HandleFunc("POST /v1/sessions/{id}/close", s.handleSessionClose)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /v1/jobs/{id}/solution", s.handleSolution)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetrics)
	if s.cl != nil {
		s.mux.HandleFunc("GET /v1/peer/solution/{key}", s.handlePeerGet)
		s.mux.HandleFunc("PUT /v1/peer/solution/{key}", s.handlePeerPut)
	}
	s.handler = s.withRequestLog(s.mux)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Shutdown stops accepting jobs and drains the worker pool (see
// jobq.Queue.Shutdown), then closes the journal. Jobs the drain cuts off
// stay pending in the journal and are resubmitted by the next process.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.q.Shutdown(ctx)
	if s.jnl != nil {
		if cerr := s.jnl.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// journalOutcome records a job's terminal status in the journal. Cache
// hits were never journaled (nothing is lost if they vanish); for the
// rest, a terminal that races ahead of the submit path's registration is
// stashed until registerJournal claims it.
func (s *Server) journalOutcome(j jobq.Job) {
	if s.jnl == nil {
		return
	}
	if res, ok := j.Result.(*jobResult); ok && res.cached {
		return
	}
	s.jmu.Lock()
	entry, ok := s.jobEntry[j.ID]
	if !ok {
		s.earlyTerm[j.ID] = string(j.Status)
		s.jmu.Unlock()
		return
	}
	delete(s.jobEntry, j.ID)
	s.jmu.Unlock()
	s.journalTerminal(entry, string(j.Status))
}

// registerJournal links a queue job to its journal entry, or — if the
// job already finished — writes the stashed terminal record now.
func (s *Server) registerJournal(jobID, entry string) {
	if s.jnl == nil {
		return
	}
	s.jmu.Lock()
	if status, done := s.earlyTerm[jobID]; done {
		delete(s.earlyTerm, jobID)
		s.jmu.Unlock()
		s.journalTerminal(entry, status)
		return
	}
	s.jobEntry[jobID] = entry
	s.jmu.Unlock()
}

// journalTerminal writes a terminal record, logging rather than failing:
// at worst the job replays after a crash, and replay is idempotent.
func (s *Server) journalTerminal(entry, status string) {
	if err := s.jnl.Terminal(entry, status); err != nil {
		s.log.Warn("journal terminal write failed", "entry", entry, "status", status, "err", err)
	}
}

// replay resubmits the journal's pending records from a previous
// process. A record that no longer parses or resolves is closed out as
// "unreplayable"; one the (startup-empty) queue cannot take is closed as
// "rejected". Either way every accepted job reaches a terminal record.
func (s *Server) replay(pending []journal.Record) {
	for _, rec := range pending {
		if strings.HasPrefix(rec.Label, sessionLabelPrefix) {
			// Session records replay synchronously, in file order: a
			// session's create record precedes its fault reports, and
			// repairs are deterministic, so replay reconverges on the
			// exact pre-crash session state.
			s.replaySessionRecord(rec)
			continue
		}
		var sreq SynthesizeRequest
		req, err := func() (*request, error) {
			dec := json.NewDecoder(bytes.NewReader(rec.Request))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&sreq); err != nil {
				return nil, err
			}
			return resolve(&sreq)
		}()
		if err != nil {
			s.log.Warn("journal replay: unreplayable record", "entry", rec.ID, "err", err)
			s.journalTerminal(rec.ID, "unreplayable")
			continue
		}
		id, err := s.q.SubmitLabeled(rec.Label, s.synthesisJob(req, rec.Label, s.newRecorder("", ""), time.Now()))
		if err != nil {
			s.log.Warn("journal replay: resubmit failed", "entry", rec.ID, "err", err)
			s.journalTerminal(rec.ID, "rejected")
			continue
		}
		s.registerJournal(id, rec.ID)
		s.replayed.Add(1)
		s.log.Info("journal replay: resubmitted job", "entry", rec.ID, "job", id, "request_id", rec.Label)
	}
}

// submitWithRetry pushes a job into the queue, absorbing transient
// overflow with exponential backoff before surfacing ErrQueueFull.
func (s *Server) submitWithRetry(ctx context.Context, label string, fn jobq.Fn) (string, error) {
	var id string
	var err error
	for attempt := 0; ; attempt++ {
		id, err = s.q.SubmitLabeled(label, fn)
		if !errors.Is(err, jobq.ErrQueueFull) || attempt >= s.cfg.SubmitRetries {
			return id, err
		}
		select {
		case <-ctx.Done():
			return "", err
		case <-time.After(s.cfg.SubmitBackoff << attempt):
		}
	}
}

// writeJSON writes v with the given status code. The body is staged in a
// pooled buffer: one Write call, a correct Content-Length, and no
// per-response buffer garbage.
func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := getBuf()
	defer putBuf(buf)
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprintf("%d", buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
}

// writeErr writes a JSON error body.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// submitResponse is the body of POST /v1/synthesize.
type submitResponse struct {
	JobID  string `json:"job_id"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	// Peer is the cluster node whose cache served this response, when the
	// hit came from read-through peering rather than the local cache.
	Peer string `json:"peer,omitempty"`
	// Job is the polling URL for the created job.
	Job string `json:"job"`
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.metrics.histRequest.observe(time.Since(start)) }()

	// The raw body is kept because an accepted request is journaled
	// verbatim: replay after a crash re-decodes exactly what the client
	// sent, not a re-serialization that might drift. It lives in a pooled
	// buffer: the journal append copies synchronously and json.RawMessage
	// fields copy out of the decoder, so nothing aliases body once the
	// handler returns.
	bodyBuf := getBuf()
	defer putBuf(bodyBuf)
	if _, err := bodyBuf.ReadFrom(http.MaxBytesReader(w, r.Body, 16<<20)); err != nil {
		writeErr(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	body := bodyBuf.Bytes()
	var sreq SynthesizeRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sreq); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	req, err := resolve(&sreq)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.flt.Err(fault.ServerHandlerError); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.flt.Sleep(r.Context(), fault.ServerResponseSlow)
	s.countWorkload(r, 1)

	// Trace capture starts once the request parses. The recorder sits
	// entirely at the serving layer — sealing it never touches the
	// pipeline — and its trace ID is echoed so the client can fetch the
	// merged timeline from /v1/jobs/{id}/trace later.
	rec := s.requestRecorder(r)
	w.Header().Set(cluster.HeaderTraceID, rec.TraceID())

	probeStart := time.Now()
	data, hit := s.cache.Get(req.key)
	if hit {
		rec.Add("cache.probe", "", probeStart, time.Since(probeStart), "hit")
		res, err := resultFromCache(req.key, data)
		if err != nil {
			// A corrupt cache entry is a server bug; fail loudly.
			writeErr(w, http.StatusInternalServerError, "cached solution invalid: %v", err)
			return
		}
		s.seal(rec, res, routeCacheHit)
		id, err := s.q.Complete(RequestID(r.Context()), res, "served from cache")
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, submitResponse{
			JobID: id, Status: string(jobq.Done), Cached: true, Job: "/v1/jobs/" + id,
		})
		s.recordServed(RequestID(r.Context()), rec, routeCacheHit, start)
		return
	}
	rec.Add("cache.probe", "", probeStart, time.Since(probeStart), "miss")

	// Cluster read-through: before synthesizing, ask the key's owner (and
	// its ring successors) whether any peer already holds the solution. A
	// peered document is the same canonical bytes a local synthesis would
	// produce, so it is cached and served exactly like a local hit.
	hops := 0
	if s.cl != nil {
		hops = cluster.Hops(r.Header)
		pctx := obs.WithSpans(r.Context(), rec) // peer probes record peer.fetch spans
		if doc, peer, ok := s.cl.FetchSolution(pctx, req.key, RequestID(r.Context())); ok {
			res, err := resultFromCache(req.key, doc)
			if err != nil {
				// A peer vouched for bytes that don't decode: don't cache
				// them, just synthesize as if the peering missed.
				s.log.Warn("peer solution invalid, synthesizing locally",
					"peer", peer, "key", req.key, "err", err)
			} else {
				res.peer = peer
				s.cache.Put(req.key, res.solution)
				s.seal(rec, res, routePeerHit)
				id, err := s.q.Complete(RequestID(r.Context()), res, "served from peer "+peer)
				if err != nil {
					writeErr(w, http.StatusServiceUnavailable, "%v", err)
					return
				}
				writeJSON(w, http.StatusOK, submitResponse{
					JobID: id, Status: string(jobq.Done), Cached: true, Peer: peer, Job: "/v1/jobs/" + id,
				})
				s.recordServed(RequestID(r.Context()), rec, routePeerHit, start)
				return
			}
		}
	}

	// Load shedding: while the breaker is open, don't even knock on the
	// queue — answer immediately so the workers drain in peace.
	if !s.brk.Allow() {
		s.metrics.jobsShed.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.BreakerCooldown.Seconds())+1))
		writeErr(w, http.StatusServiceUnavailable, "shedding load: queue has been full for %d consecutive submissions", s.cfg.BreakerThreshold)
		s.recordDropped(RequestID(r.Context()), rec, "shed", start)
		return
	}

	// Journal the acceptance before the submit: a crash anywhere after
	// this line replays the request. The inverse order could lose a job
	// the client was told was accepted.
	label := RequestID(r.Context())
	var entry string
	if s.jnl != nil {
		entry, err = s.jnl.Accepted(label, body)
		if err != nil {
			s.brk.Success() // release a possible half-open probe slot
			writeErr(w, http.StatusInternalServerError, "journal: %v", err)
			return
		}
	}

	// Ownership routing: a request whose key belongs to another healthy
	// node is forwarded there instead of synthesized here, so every key
	// has one home cache. Forward jobs are detached from the worker pool
	// (they spend their life blocked on the network; parking a worker on
	// one invites cross-node pool deadlock). A request that already used
	// its hop budget, or whose owner is down or breaker-open, degrades to
	// local synthesis — the cluster never turns a computable request into
	// an error.
	var id string
	submitAt := time.Now()
	if owner, isSelf := s.owner(req.key); !isSelf && hops < s.cl.MaxHops() && s.cl.Healthy(owner) {
		id, err = s.q.SubmitDetached(label, s.forwardJob(req, owner, label, hops, append([]byte(nil), body...), rec, submitAt))
	} else {
		id, err = s.submitWithRetry(r.Context(), label, s.synthesisJob(req, label, rec, submitAt))
	}
	switch {
	case errors.Is(err, jobq.ErrQueueFull):
		if s.brk.Overflow() {
			s.log.Warn("circuit breaker opened",
				"threshold", s.cfg.BreakerThreshold, "cooldown", s.cfg.BreakerCooldown)
		}
		s.metrics.jobsRejected.Add(1)
		if s.jnl != nil {
			s.journalTerminal(entry, "rejected")
		}
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "queue full (%d waiting): retry later", s.cfg.QueueCap)
		s.recordDropped(label, rec, "rejected", start)
		return
	case errors.Is(err, jobq.ErrShutdown):
		s.brk.Success()
		if s.jnl != nil {
			s.journalTerminal(entry, "rejected")
		}
		writeErr(w, http.StatusServiceUnavailable, "shutting down")
		return
	case err != nil:
		s.brk.Success()
		if s.jnl != nil {
			s.journalTerminal(entry, "rejected")
		}
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.brk.Success()
	s.registerJournal(id, entry)
	s.metrics.jobsAccepted.Add(1)
	writeJSON(w, http.StatusAccepted, submitResponse{
		JobID: id, Status: string(jobq.Queued), Job: "/v1/jobs/" + id,
	})
}

// synthesisJob wraps a resolved request into the queue's work unit:
// record the queue wait, run the synthesis under a request_id profiler
// label, seal the trace. submitAt is when the handler pushed the job, so
// the queue.wait span covers exactly the time spent behind other work.
func (s *Server) synthesisJob(req *request, label string, rec *obs.SpanRecorder, submitAt time.Time) jobq.Fn {
	return func(ctx context.Context, progress func(string)) (any, error) {
		if wait := time.Since(submitAt); wait > 0 {
			rec.Add("queue.wait", "", submitAt, wait, "")
		}
		var res *jobResult
		var err error
		pprof.Do(ctx, pprof.Labels("request_id", label), func(ctx context.Context) {
			res, err = s.synthesizeLocal(ctx, req, progress, rec)
		})
		if err != nil {
			return nil, err
		}
		s.seal(rec, res, routeLocal)
		return res, nil
	}
}

// synthesizeLocal runs one synthesis on this node: the body of every
// pool-worker job, and the degraded path of a forward job whose owner
// turned out unreachable. It applies the job timeout itself so both
// callers get the same deadline semantics.
func (s *Server) synthesizeLocal(ctx context.Context, req *request, progress func(string), rec *obs.SpanRecorder) (*jobResult, error) {
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	// Fold this job's algorithm telemetry into the service-wide
	// aggregate served at /metrics. The tracer hooks are outside the
	// pipeline's RNG and floating-point paths, so the traced synthesis
	// is byte-identical to an untraced one (the cache depends on it).
	ctx = obs.Into(ctx, obs.New(s.agg))
	// Thread the process-wide fault plan into the pipeline. With no
	// plan (the default) this is a no-op and the synthesis is
	// byte-identical to a fault-free build.
	ctx = fault.Into(ctx, s.flt)
	algo := "dcsa"
	synth := core.SynthesizeContext
	if req.baseline {
		algo = "baseline"
		synth = core.SynthesizeBaselineContext
	}
	opts := req.opts
	opts.Degrade = s.cfg.Degrade
	progress(fmt.Sprintf("synthesizing %q (%s)", req.graph.Name(), algo))
	synthStart := time.Now()
	sol, err := synth(ctx, req.graph, req.alloc, opts)
	if err != nil {
		return nil, err
	}
	met := sol.Metrics()
	stages := sol.Stages
	// Per-stage spans, reconstructed sequentially from the pipeline's own
	// StageTimes — the recorder never reaches inside the pipeline, so the
	// synthesis stays byte-identical to an unrecorded one.
	sid := rec.Add("synthesize", "", synthStart, time.Since(synthStart), algo)
	if sid != "" {
		at := synthStart
		rec.Add("stage.schedule", sid, at, stages.Schedule, "")
		at = at.Add(stages.Schedule)
		rec.Add("stage.place", sid, at, stages.Place, "")
		at = at.Add(stages.Place)
		rec.Add("stage.route", sid, at, stages.Route, "")
		for _, dg := range sol.Degradations {
			rec.Add("degrade."+dg.Stage, sid, synthStart, 0, dg.Event)
		}
	}
	s.metrics.histSchedule.observe(stages.Schedule)
	s.metrics.histPlace.observe(stages.Place)
	s.metrics.histRoute.observe(stages.Route)
	s.metrics.histTotal.observe(met.CPU)

	// Canonicalize: CPU time is measurement, not solution content.
	// Zeroing it makes the document a pure function of the request, so
	// cache-served and freshly synthesized responses are byte-identical.
	sol.CPU = 0
	// Encode into a pooled buffer, then copy out an exact-size document:
	// the cache and the job record retain the copy, never pool memory.
	buf := getBuf()
	if err := solio.Encode(buf, sol); err != nil {
		putBuf(buf)
		return nil, err
	}
	doc := append([]byte(nil), buf.Bytes()...)
	putBuf(buf)
	s.cache.Put(req.key, doc)
	progress("done")
	return &jobResult{key: req.key, solution: doc, metrics: met,
		stages: stages, degradations: sol.Degradations}, nil
}

// owner resolves the ring owner of key; a non-clustered server owns
// everything.
func (s *Server) owner(key string) (string, bool) {
	if s.cl == nil {
		return "", true
	}
	return s.cl.Owner(key)
}

// forwardJob builds the work unit for a request owned by another node:
// forward it there and return the owner's solution. Any forward failure
// degrades to local synthesis — and once the local result exists, it is
// opportunistically written back to the owner (if reachable again) so
// the ring heals instead of drifting. body is the client's request
// verbatim (an unpooled copy), re-sent so the owner derives the same
// cache key from the same bytes.
func (s *Server) forwardJob(req *request, owner, requestID string, hops int, body []byte, rec *obs.SpanRecorder, submitAt time.Time) jobq.Fn {
	return func(ctx context.Context, progress func(string)) (any, error) {
		fctx := ctx
		if s.cfg.JobTimeout > 0 {
			var cancel context.CancelFunc
			fctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
			defer cancel()
		}
		if wait := time.Since(submitAt); wait > 0 {
			rec.Add("queue.wait", "", submitAt, wait, "")
		}
		progress("forwarding to owner " + owner)
		// The forward span's ID is reserved up front and sent as the
		// remote parent, so the owner's whole timeline nests under it.
		fid := rec.NewID()
		fstart := time.Now()
		doc, spans, err := s.cl.SynthesizeRemote(fctx, owner, req.key, requestID,
			obs.TraceContext{TraceID: rec.TraceID(), Parent: fid}, hops, body)
		if err == nil {
			res, derr := resultFromCache(req.key, doc)
			if derr == nil {
				rec.AddID(fid, "forward", "", fstart, time.Since(fstart), owner)
				rec.Import(spans)
				res.cached = false
				res.peer = owner
				s.cache.Put(req.key, res.solution)
				progress("done (synthesized by " + owner + ")")
				s.seal(rec, res, routeForwarded)
				return res, nil
			}
			err = fmt.Errorf("owner returned invalid solution: %w", derr)
		}
		rec.AddID(fid, "forward", "", fstart, time.Since(fstart), owner+" failed")
		// Degrade: the owner is unreachable or misbehaving, so this node
		// does the work itself rather than failing the accepted job.
		s.log.Warn("forward failed, synthesizing locally",
			"request_id", requestID, "owner", owner, "key", req.key, "err", err)
		progress("owner unreachable, synthesizing locally")
		res, lerr := s.synthesizeLocal(ctx, req, progress, rec)
		if lerr != nil {
			return nil, lerr
		}
		// Write-back rides its own short deadline, detached from the job's
		// context: the job is already done, this is cluster hygiene.
		if s.cl.Healthy(owner) {
			wbStart := time.Now()
			wctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 3*time.Second)
			if werr := s.cl.WriteBack(wctx, owner, req.key, requestID, res.solution); werr != nil {
				s.log.Info("write-back to owner failed", "owner", owner, "key", req.key, "err", werr)
			}
			cancel()
			rec.Add("writeback", "", wbStart, time.Since(wbStart), owner)
		}
		s.seal(rec, res, routeFallback)
		return res, nil
	}
}

// resultFromCache rebuilds a jobResult from a cached document, decoding
// it to recover the solution metrics (and, as a side effect, re-running
// every validator on the cached bytes).
func resultFromCache(key string, data []byte) (*jobResult, error) {
	sol, err := solio.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return &jobResult{key: key, cached: true, solution: data,
		metrics: sol.Metrics(), degradations: sol.Degradations}, nil
}

// metricsJSON mirrors core.Metrics with explicit units.
type metricsJSON struct {
	ExecutionTimeMs int64   `json:"execution_time_ms"`
	Utilization     float64 `json:"utilization"`
	ChannelLengthUm int64   `json:"channel_length_um"`
	CacheTimeMs     int64   `json:"cache_time_ms"`
	ChannelWashMs   int64   `json:"channel_wash_ms"`
	ComponentWashMs int64   `json:"component_wash_ms"`
	Transports      int     `json:"transports"`
	CPUMs           float64 `json:"cpu_ms"`
}

func toMetricsJSON(m core.Metrics) *metricsJSON {
	return &metricsJSON{
		ExecutionTimeMs: int64(m.ExecutionTime),
		Utilization:     m.Utilization,
		ChannelLengthUm: int64(m.ChannelLength),
		CacheTimeMs:     int64(m.CacheTime),
		ChannelWashMs:   int64(m.ChannelWashTime),
		ComponentWashMs: int64(m.ComponentWashTime),
		Transports:      m.Transports,
		CPUMs:           float64(m.CPU.Microseconds()) / 1000,
	}
}

// stagesJSON is the per-stage latency breakdown of one job.
type stagesJSON struct {
	ScheduleMs float64 `json:"schedule_ms"`
	PlaceMs    float64 `json:"place_ms"`
	RouteMs    float64 `json:"route_ms"`
}

// jobResponse is the body of GET /v1/jobs/{id}.
type jobResponse struct {
	ID       string       `json:"id"`
	Status   string       `json:"status"`
	Progress string       `json:"progress,omitempty"`
	Cached   bool         `json:"cached,omitempty"`
	Peer     string       `json:"peer,omitempty"`
	Error    string       `json:"error,omitempty"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	Key      string       `json:"cache_key,omitempty"`
	Metrics  *metricsJSON `json:"metrics,omitempty"`
	Stages   *stagesJSON  `json:"stages_ms,omitempty"`
	Solution string       `json:"solution,omitempty"`
	// Degradations lists the degradation-ladder rungs the synthesis took
	// (empty for a clean run; see core.Degradation).
	Degradations []core.Degradation `json:"degradations,omitempty"`
	// Trace identity and spans. Spans carries the job's node-attributed
	// timeline; a forwarding node polls it back over this same endpoint
	// (cluster.jobReply) to merge into the client-facing trace. Trace is
	// the merged-timeline URL.
	TraceID string     `json:"trace_id,omitempty"`
	Spans   []obs.Span `json:"trace_spans,omitempty"`
	Trace   string     `json:"trace,omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.q.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	resp := jobResponse{
		ID: j.ID, Status: string(j.Status), Progress: j.Progress,
		Error: j.Err, Created: j.Created,
	}
	if !j.Started.IsZero() {
		resp.Started = &j.Started
	}
	if !j.Finished.IsZero() {
		resp.Finished = &j.Finished
	}
	if res, ok := j.Result.(*jobResult); ok {
		resp.Cached = res.cached
		resp.Peer = res.peer
		resp.Key = res.key
		resp.Metrics = toMetricsJSON(res.metrics)
		resp.Solution = "/v1/jobs/" + j.ID + "/solution"
		resp.Degradations = res.degradations
		if len(res.spans) > 0 {
			resp.TraceID = res.trace
			resp.Spans = res.spans
			resp.Trace = "/v1/jobs/" + j.ID + "/trace"
		}
		if !res.cached {
			resp.Stages = &stagesJSON{
				ScheduleMs: float64(res.stages.Schedule.Microseconds()) / 1000,
				PlaceMs:    float64(res.stages.Place.Microseconds()) / 1000,
				RouteMs:    float64(res.stages.Route.Microseconds()) / 1000,
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.q.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	res, ok := j.Result.(*jobResult)
	if !ok {
		writeErr(w, http.StatusConflict, "job %q is %s: no solution available", id, j.Status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache-Key", res.key)
	_, _ = w.Write(res.solution)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.q.Get(id); !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	ok := s.q.Cancel(id)
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "canceled": ok})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, s.metrics.vars.String())
}
