package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a server with a small footprint and registers its
// shutdown with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// postJSON posts body to path and decodes the response into out.
func postJSON(t *testing.T, base, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, base, path string, out any) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

// waitTerminal polls a job until it reaches a terminal status.
func waitTerminal(t *testing.T, base, id string, timeout time.Duration) jobResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var jr jobResponse
		if code := getJSON(t, base, "/v1/jobs/"+id, &jr); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		switch jr.Status {
		case "done", "failed", "canceled":
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v (progress %q)", id, jr.Status, timeout, jr.Progress)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// smallReq is a fast deterministic request used by most tests.
const smallReq = `{"bench":"PCR","options":{"imax":60,"seed":7}}`

// TestCacheServedSolutionIsByteIdentical is the tentpole acceptance
// criterion: the second POST of an identical request is served from the
// cache with the exact bytes a fresh synthesis produced.
func TestCacheServedSolutionIsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 8})

	var first submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", smallReq, &first); code != http.StatusAccepted {
		t.Fatalf("first POST: status %d", code)
	}
	if first.Cached {
		t.Fatal("first request claimed a cache hit on a cold cache")
	}
	jr := waitTerminal(t, ts.URL, first.JobID, 60*time.Second)
	if jr.Status != "done" {
		t.Fatalf("first job %s: %s (%s)", first.JobID, jr.Status, jr.Error)
	}
	if jr.Stages == nil || jr.Metrics == nil {
		t.Fatalf("finished job missing stages/metrics: %+v", jr)
	}

	fresh := fetchSolution(t, ts.URL, first.JobID)

	var second submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", smallReq, &second); code != http.StatusOK {
		t.Fatalf("second POST: status %d, want 200 cache hit", code)
	}
	if !second.Cached || second.Status != "done" {
		t.Fatalf("second POST not served from cache: %+v", second)
	}
	if second.JobID == first.JobID {
		t.Fatal("cache hit reused the original job ID")
	}
	cached := fetchSolution(t, ts.URL, second.JobID)

	if !bytes.Equal(fresh, cached) {
		t.Fatalf("cache-served solution differs from fresh synthesis:\n fresh  sha256=%x\n cached sha256=%x",
			sha256.Sum256(fresh), sha256.Sum256(cached))
	}

	// A different seed must miss the cache: the key covers the options.
	var third submitResponse
	other := `{"bench":"PCR","options":{"imax":60,"seed":8}}`
	if code := postJSON(t, ts.URL, "/v1/synthesize", other, &third); code != http.StatusAccepted {
		t.Fatalf("third POST (different seed): status %d, want 202 miss", code)
	}

	var m map[string]json.RawMessage
	if code := getJSON(t, ts.URL, "/metrics.json", &m); code != http.StatusOK {
		t.Fatalf("GET /metrics.json: %d", code)
	}
	var hits, misses int64
	mustNum(t, m, "cache_hits", &hits)
	mustNum(t, m, "cache_misses", &misses)
	if hits < 1 {
		t.Fatalf("metrics report %d cache hits, want >= 1", hits)
	}
	if misses < 2 {
		t.Fatalf("metrics report %d cache misses, want >= 2", misses)
	}
}

func fetchSolution(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/solution")
	if err != nil {
		t.Fatalf("GET solution: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET solution for %s: status %d", id, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading solution: %v", err)
	}
	return data
}

func mustNum(t *testing.T, m map[string]json.RawMessage, key string, out *int64) {
	t.Helper()
	raw, ok := m[key]
	if !ok {
		t.Fatalf("/metrics missing %q", key)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("/metrics %q = %s: %v", key, raw, err)
	}
}

// TestCancelMidAnnealReturnsPromptly is the cancellation acceptance
// criterion: a running job with a deliberately long anneal must settle to
// Canceled within a second of the cancel request.
func TestCancelMidAnnealReturnsPromptly(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})

	// Imax 100000 is ~670x the published move budget: minutes of
	// annealing, so the job is reliably mid-anneal when we cancel.
	long := `{"bench":"CPA","options":{"imax":100000,"seed":1}}`
	var sub submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", long, &sub); code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var jr jobResponse
		getJSON(t, ts.URL, "/v1/jobs/"+sub.JobID, &jr)
		if jr.Status == "running" {
			break
		}
		if jr.Status != "queued" || time.Now().After(deadline) {
			t.Fatalf("job %s is %q, never reached running", sub.JobID, jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let it get into the anneal proper

	var cr struct {
		Canceled bool `json:"canceled"`
	}
	cancelAt := time.Now()
	if code := postJSON(t, ts.URL, "/v1/jobs/"+sub.JobID+"/cancel", "", &cr); code != http.StatusOK || !cr.Canceled {
		t.Fatalf("cancel: status %d, canceled=%v", code, cr.Canceled)
	}
	jr := waitTerminal(t, ts.URL, sub.JobID, 5*time.Second)
	latency := time.Since(cancelAt)
	if jr.Status != "canceled" {
		t.Fatalf("job settled to %q (%s), want canceled", jr.Status, jr.Error)
	}
	if latency > time.Second {
		t.Fatalf("cancellation took %v, want < 1s", latency)
	}
	t.Logf("cancel → canceled in %v", latency)
}

// TestQueueFullBackpressure verifies 429 + Retry-After once the worker is
// busy and the queue is at capacity, and that the rejection is counted.
func TestQueueFullBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})

	long := func(seed int) string {
		return fmt.Sprintf(`{"bench":"CPA","options":{"imax":100000,"seed":%d}}`, seed)
	}
	var running submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", long(1), &running); code != http.StatusAccepted {
		t.Fatalf("first POST: %d", code)
	}
	// Wait until the worker has picked it up so the next job sits alone in
	// the queue.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var jr jobResponse
		getJSON(t, ts.URL, "/v1/jobs/"+running.JobID, &jr)
		if jr.Status == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job stuck in %q", jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var queued submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", long(2), &queued); code != http.StatusAccepted {
		t.Fatalf("second POST: %d", code)
	}

	resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(long(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third POST: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	var m map[string]json.RawMessage
	getJSON(t, ts.URL, "/metrics.json", &m)
	var rejected, depth int64
	mustNum(t, m, "jobs_rejected", &rejected)
	mustNum(t, m, "queue_depth", &depth)
	if rejected != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", rejected)
	}
	if depth != 1 {
		t.Fatalf("queue_depth = %d, want 1", depth)
	}

	// Unblock the cleanup shutdown quickly.
	postJSON(t, ts.URL, "/v1/jobs/"+queued.JobID+"/cancel", "", nil)
	postJSON(t, ts.URL, "/v1/jobs/"+running.JobID+"/cancel", "", nil)
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	cases := []struct {
		name, body string
	}{
		{"no source", `{}`},
		{"two sources", `{"bench":"PCR","protocol":{"kind":"mixing_tree","leaves":4}}`},
		{"unknown bench", `{"bench":"NoSuch"}`},
		{"unknown field", `{"bench":"PCR","imax":10}`},
		{"bad imax", `{"bench":"PCR","options":{"imax":0}}`},
		{"bad portfolio", `{"bench":"PCR","options":{"portfolio":65}}`},
		{"bad tc", `{"bench":"PCR","options":{"tc_s":-1}}`},
		{"bad alloc", `{"bench":"PCR","alloc":"nope"}`},
		{"uncovering alloc", `{"bench":"PCR","alloc":"(0,0,0,1)"}`},
		{"bad protocol kind", `{"protocol":{"kind":"unknown"}}`},
		{"bad assay json", `{"assay":{"nope":1}}`},
	}
	for _, tc := range cases {
		var e struct {
			Error string `json:"error"`
		}
		if code := postJSON(t, ts.URL, "/v1/synthesize", tc.body, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		} else if e.Error == "" {
			t.Errorf("%s: 400 without error message", tc.name)
		}
	}

	if code := getJSON(t, ts.URL, "/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL, "/v1/jobs/nope/solution", nil); code != http.StatusNotFound {
		t.Errorf("unknown job solution: status %d, want 404", code)
	}
	if code := postJSON(t, ts.URL, "/v1/jobs/nope/cancel", "", nil); code != http.StatusNotFound {
		t.Errorf("unknown job cancel: status %d, want 404", code)
	}
}

func TestProtocolRequestSynthesizes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	body := `{"protocol":{"kind":"mixing_tree","leaves":4},"options":{"imax":40}}`
	var sub submitResponse
	if code := postJSON(t, ts.URL, "/v1/synthesize", body, &sub); code != http.StatusAccepted {
		t.Fatalf("POST: %d", code)
	}
	jr := waitTerminal(t, ts.URL, sub.JobID, 60*time.Second)
	if jr.Status != "done" {
		t.Fatalf("protocol job: %s (%s)", jr.Status, jr.Error)
	}
	if jr.Metrics.ExecutionTimeMs <= 0 {
		t.Fatalf("metrics: %+v", jr.Metrics)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	var h struct {
		Status  string  `json:"status"`
		UptimeS float64 `json:"uptime_s"`
	}
	if code := getJSON(t, ts.URL, "/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h.Status != "ok" || h.UptimeS < 0 {
		t.Fatalf("healthz body: %+v", h)
	}
}

// TestSolutionBeforeDone covers the 409 on polling a solution too early:
// the job here is queued behind a busy worker.
func TestSolutionBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	long := `{"bench":"CPA","options":{"imax":100000,"seed":3}}`
	var a, b submitResponse
	postJSON(t, ts.URL, "/v1/synthesize", long, &a)
	postJSON(t, ts.URL, "/v1/synthesize", `{"bench":"CPA","options":{"imax":100000,"seed":4}}`, &b)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + b.JobID + "/solution")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("solution of queued job: status %d, want 409", resp.StatusCode)
	}
	postJSON(t, ts.URL, "/v1/jobs/"+b.JobID+"/cancel", "", nil)
	postJSON(t, ts.URL, "/v1/jobs/"+a.JobID+"/cancel", "", nil)
}
