package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/solio"
)

// session.go: the chip-session API — long-lived sessions that pin one
// synthesized solution and repair it in place as the physical chip
// degrades, instead of resynthesizing from scratch.
//
//	POST /v1/sessions              synthesize (or serve from cache) and
//	                               pin the solution to a new session
//	GET  /v1/sessions/{id}         session snapshot: state, cut,
//	                               accumulated faults, repair log
//	POST /v1/sessions/{id}/faults  report dead cells / failed components
//	                               at an execution instant; the session
//	                               repairs the not-yet-executed suffix
//	POST /v1/sessions/{id}/close   finish the session
//
// Sessions are crash-safe: creates and fault reports are journaled
// (labels "sess:<id>:c" / "sess:<id>:f") before they take effect and
// stay pending while the session lives, so a SIGKILL mid-repair replays
// the session — deterministic synthesis plus deterministic repairs —
// back to exactly its pre-crash state. In cluster mode session traffic
// routes to the session ID's ring owner; a session held locally (e.g.
// created here while the owner was down) is always served locally.

// sessionLabelPrefix marks session records in the job journal.
const sessionLabelPrefix = "sess:"

func sessionLabel(sid, kind string) string { return sessionLabelPrefix + sid + ":" + kind }

// parseSessionLabel splits "sess:<sid>:<kind>".
func parseSessionLabel(label string) (sid, kind string, ok bool) {
	rest, found := strings.CutPrefix(label, sessionLabelPrefix)
	if !found {
		return "", "", false
	}
	i := strings.LastIndexByte(rest, ':')
	if i <= 0 || i == len(rest)-1 {
		return "", "", false
	}
	return rest[:i], rest[i+1:], true
}

// sessionEntry is one live session plus its server-side bookkeeping.
type sessionEntry struct {
	// mu serializes journal appends with the repairs they describe, so
	// the journal's file order is the order repairs were applied in —
	// the invariant replay depends on.
	mu      sync.Mutex
	sess    *session.Session
	entries []string // pending journal entry IDs (create + fault reports)
	cells   int      // last cumulative dead-cell count (gauge delta tracking)
}

// session looks up a live session by ID.
func (s *Server) session(id string) *sessionEntry {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.sessions[id]
}

// sessionResponse is the body of POST /v1/sessions.
type sessionResponse struct {
	session.Snapshot
	// Cached reports whether the pinned solution came from the solution
	// cache rather than a fresh synthesis.
	Cached bool `json:"cached,omitempty"`
	// Session and Faults are the session's snapshot and fault-report URLs.
	Session string `json:"session"`
	Faults  string `json:"faults"`
}

// repairResponse is the body of POST /v1/sessions/{id}/faults.
type repairResponse struct {
	Record   session.RepairRecord `json:"record"`
	Snapshot session.Snapshot     `json:"snapshot"`
	Error    string               `json:"error,omitempty"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	bodyBuf := getBuf()
	defer putBuf(bodyBuf)
	if _, err := bodyBuf.ReadFrom(http.MaxBytesReader(w, r.Body, 16<<20)); err != nil {
		writeErr(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	body := bodyBuf.Bytes()
	var sreq SynthesizeRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sreq); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	req, err := resolve(&sreq)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.baseline {
		writeErr(w, http.StatusBadRequest, "baseline solutions cannot host a session (no storage-aware suffix re-entry)")
		return
	}
	s.countWorkload(r, 1)

	// A proxied create arrives with the session ID pinned by the sender;
	// a client-originated one gets a server-assigned ID and, in cluster
	// mode, is routed to that ID's ring owner.
	sid := sanitizeID(r.Header.Get(cluster.HeaderSessionID))
	if sid == "" {
		sid = fmt.Sprintf("s-%s-%d", s.entropy, s.sessSeq.Add(1))
		if s.proxySession(w, r, sid, body) {
			return
		}
	}

	rec := s.requestRecorder(r)
	w.Header().Set(cluster.HeaderTraceID, rec.TraceID())

	var entry string
	if s.jnl != nil {
		entry, err = s.jnl.Accepted(sessionLabel(sid, "c"), body)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "journal: %v", err)
			return
		}
	}
	st, cached, err := s.openSession(r.Context(), sid, req, rec)
	if err != nil {
		if entry != "" {
			s.journalTerminal(entry, "failed")
		}
		s.slo.Fail()
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if entry != "" {
		st.entries = append(st.entries, entry)
	}
	s.smu.Lock()
	s.sessions[sid] = st
	s.smu.Unlock()

	s.metrics.sessionsOpened.Add(1)
	s.metrics.sessionsLive.Add(1)
	rec.CloseRoot(routeSession)
	s.spansTotal.Add(int64(len(rec.Spans())))
	s.metrics.routed(routeSession)
	d := time.Since(start)
	s.slo.Observe(d)
	s.flight.Record(obs.RequestRecord{
		ID: RequestID(r.Context()), TraceID: rec.TraceID(), Time: time.Now(),
		DurMs: msf(d), Outcome: "opened", Route: routeSession, Cached: cached,
	})
	writeJSON(w, http.StatusCreated, sessionResponse{
		Snapshot: st.sess.Snapshot(),
		Cached:   cached,
		Session:  "/v1/sessions/" + sid,
		Faults:   "/v1/sessions/" + sid + "/faults",
	})
}

// openSession produces the solution to pin (cache hit or inline
// synthesis) and wraps it in a session. The solution always round-trips
// through its canonical solio document — cache-served and freshly
// synthesized sessions start from byte-identical state — and carries the
// request's fully resolved options (the document's option record is
// lossy on fields that don't affect solution bytes).
func (s *Server) openSession(ctx context.Context, sid string, req *request, rec *obs.SpanRecorder) (*sessionEntry, bool, error) {
	sol, cached, err := s.sessionSolution(ctx, req, rec)
	if err != nil {
		return nil, false, err
	}
	sol.Opts = req.opts
	sess, err := session.New(sid, sol, req.alloc)
	if err != nil {
		return nil, cached, err
	}
	return &sessionEntry{sess: sess}, cached, nil
}

// sessionSolution serves the request's solution from the cache or
// synthesizes it inline (synchronously — session creation is a pinning
// operation, not a fire-and-poll job). Inline synthesis shares the
// worker-pool budget via sessSem so session creates cannot oversubscribe
// the node.
func (s *Server) sessionSolution(ctx context.Context, req *request, rec *obs.SpanRecorder) (*core.Solution, bool, error) {
	probeStart := time.Now()
	if data, hit := s.cache.Get(req.key); hit {
		rec.Add("cache.probe", "", probeStart, time.Since(probeStart), "hit")
		if sol, err := solio.Decode(bytes.NewReader(data)); err == nil {
			return sol, true, nil
		}
		// A corrupt cache entry falls through to a fresh synthesis, which
		// overwrites it.
	} else {
		rec.Add("cache.probe", "", probeStart, time.Since(probeStart), "miss")
	}
	select {
	case s.sessSem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	defer func() { <-s.sessSem }()
	res, err := s.synthesizeLocal(ctx, req, func(string) {}, rec)
	if err != nil {
		return nil, false, err
	}
	sol, err := solio.Decode(bytes.NewReader(res.solution))
	if err != nil {
		return nil, false, err
	}
	return sol, false, nil
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("id")
	st := s.session(sid)
	if st == nil {
		if s.proxySession(w, r, sid, nil) {
			return
		}
		writeErr(w, http.StatusNotFound, "unknown session %q", sid)
		return
	}
	writeJSON(w, http.StatusOK, st.sess.Snapshot())
}

func (s *Server) handleSessionFault(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sid := r.PathValue("id")
	bodyBuf := getBuf()
	defer putBuf(bodyBuf)
	if _, err := bodyBuf.ReadFrom(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		writeErr(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	body := bodyBuf.Bytes()
	var fr session.FaultReport
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fr); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding fault report: %v", err)
		return
	}
	st := s.session(sid)
	if st == nil {
		if s.proxySession(w, r, sid, body) {
			return
		}
		writeErr(w, http.StatusNotFound, "unknown session %q", sid)
		return
	}
	s.countWorkload(r, 1)
	rec := s.requestRecorder(r)
	w.Header().Set(cluster.HeaderTraceID, rec.TraceID())

	// The journal append and the repair it describes commit under the
	// entry lock, so concurrent reports serialize in journal file order —
	// replay re-applies them in exactly the order they took effect.
	st.mu.Lock()
	var entry string
	if s.jnl != nil {
		var err error
		entry, err = s.jnl.Accepted(sessionLabel(sid, "f"), body)
		if err != nil {
			st.mu.Unlock()
			writeErr(w, http.StatusInternalServerError, "journal: %v", err)
			return
		}
	}
	ctx := r.Context()
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	ctx = obs.Into(ctx, obs.New(s.agg))
	ctx = fault.Into(ctx, s.flt)
	prevCells := st.cells
	repairStart := time.Now()
	rd, err := st.sess.Repair(ctx, fr)
	rec.Add("session.repair", "", repairStart, time.Since(repairStart), rd.Rung+" "+rd.Outcome)

	switch {
	case err == nil:
		if entry != "" {
			st.entries = append(st.entries, entry)
		}
		st.cells = rd.CellsLost
		st.mu.Unlock()
		s.metrics.sessionCells.Add(int64(rd.CellsLost - prevCells))
		s.metrics.sessionRepairs.Add(rd.Outcome, 1)
		s.metrics.histRepair.observe(rd.Dur)
		s.sealSessionRepair(r, rec, rd.Outcome, "", start)
		s.slo.Observe(time.Since(start))
		writeJSON(w, http.StatusOK, repairResponse{Record: rd, Snapshot: st.sess.Snapshot()})

	case errors.Is(err, session.ErrAbandoned):
		st.cells = rd.CellsLost
		s.terminalSessionLocked(st, entry, "abandoned")
		st.mu.Unlock()
		s.metrics.sessionCells.Add(int64(rd.CellsLost - prevCells))
		s.metrics.sessionRepairs.Add(session.OutcomeAbandoned, 1)
		s.metrics.histRepair.observe(rd.Dur)
		s.metrics.sessionsLive.Add(-1)
		s.sealSessionRepair(r, rec, session.OutcomeAbandoned, err.Error(), start)
		s.slo.Fail()
		writeJSON(w, http.StatusOK, repairResponse{
			Record: rd, Snapshot: st.sess.Snapshot(), Error: err.Error(),
		})

	default:
		code, status := http.StatusBadRequest, "rejected"
		switch {
		case errors.Is(err, session.ErrNotActive):
			code = http.StatusConflict
		case fault.IsInjected(err):
			code, status = http.StatusInternalServerError, "failed"
		case ctx.Err() != nil:
			code, status = http.StatusServiceUnavailable, "failed"
		}
		if entry != "" {
			s.journalTerminal(entry, status)
		}
		st.mu.Unlock()
		s.sealSessionRepair(r, rec, "error", err.Error(), start)
		if code >= http.StatusInternalServerError {
			s.slo.Fail()
		}
		writeErr(w, code, "%v", err)
	}
}

// sealSessionRepair closes a fault-report request's trace and records it
// in the flight recorder under the session-repair route.
func (s *Server) sealSessionRepair(r *http.Request, rec *obs.SpanRecorder, outcome, errMsg string, start time.Time) {
	rec.CloseRoot(routeSessionRepair)
	s.spansTotal.Add(int64(len(rec.Spans())))
	s.metrics.routed(routeSessionRepair)
	s.flight.Record(obs.RequestRecord{
		ID: RequestID(r.Context()), TraceID: rec.TraceID(), Time: time.Now(),
		DurMs: msf(time.Since(start)), Outcome: outcome, Route: routeSessionRepair,
		Error: errMsg,
	})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("id")
	st := s.session(sid)
	if st == nil {
		if s.proxySession(w, r, sid, nil) {
			return
		}
		writeErr(w, http.StatusNotFound, "unknown session %q", sid)
		return
	}
	st.mu.Lock()
	wasActive := st.sess.Snapshot().State == session.Active
	st.sess.Close()
	s.terminalSessionLocked(st, "", "done")
	st.mu.Unlock()
	if wasActive {
		s.metrics.sessionsLive.Add(-1)
	}
	writeJSON(w, http.StatusOK, st.sess.Snapshot())
}

// terminalSessionLocked closes out every pending journal entry of a
// session that reached a terminal state (plus extra, when non-empty).
// Caller holds st.mu.
func (s *Server) terminalSessionLocked(st *sessionEntry, extra, status string) {
	if s.jnl == nil {
		return
	}
	for _, e := range st.entries {
		s.journalTerminal(e, status)
	}
	st.entries = nil
	if extra != "" {
		s.journalTerminal(extra, status)
	}
}

// proxySession relays a session request to the session ID's ring owner.
// Returns false when the request should be handled locally: single-node
// mode, this node owns the ID, the hop budget is spent, or the owner is
// down/unreachable (sessions degrade to the node that has them — or, for
// creates, to the node that accepted them — rather than erroring).
func (s *Server) proxySession(w http.ResponseWriter, r *http.Request, sid string, body []byte) bool {
	if s.cl == nil {
		return false
	}
	owner, isSelf := s.cl.Owner(sid)
	if isSelf {
		return false
	}
	hops := cluster.Hops(r.Header)
	if hops >= s.cl.MaxHops() || !s.cl.Healthy(owner) {
		return false
	}
	ctx := r.Context()
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	status, respBody, err := s.cl.Proxy(ctx, owner, r.Method, r.URL.Path, RequestID(r.Context()), sid, hops, body)
	if err != nil {
		s.log.Warn("session proxy failed, handling locally",
			"owner", owner, "session", sid, "err", err)
		return false
	}
	s.metrics.routed(routeForwarded)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(respBody)
	return true
}

// replaySessionRecord rebuilds session state from one pending journal
// record at startup. Creates resynthesize (deterministically, so the
// replayed session pins byte-identical state); fault reports re-apply
// their repairs in file order. Fault injection is deliberately not
// threaded into replayed repairs: the record describes a report the
// service already accepted, and replay must reconverge, not re-roll the
// chaos dice.
func (s *Server) replaySessionRecord(rec journal.Record) {
	sid, kind, ok := parseSessionLabel(rec.Label)
	if !ok {
		s.log.Warn("journal replay: malformed session label", "entry", rec.ID, "label", rec.Label)
		s.journalTerminal(rec.ID, "unreplayable")
		return
	}
	switch kind {
	case "c":
		var sreq SynthesizeRequest
		req, err := func() (*request, error) {
			dec := json.NewDecoder(bytes.NewReader(rec.Request))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&sreq); err != nil {
				return nil, err
			}
			return resolve(&sreq)
		}()
		if err != nil {
			s.log.Warn("journal replay: unreplayable session create", "entry", rec.ID, "err", err)
			s.journalTerminal(rec.ID, "unreplayable")
			return
		}
		st, _, err := s.openSession(context.Background(), sid, req, s.newRecorder("", ""))
		if err != nil {
			s.log.Warn("journal replay: session create failed", "entry", rec.ID, "err", err)
			s.journalTerminal(rec.ID, "unreplayable")
			return
		}
		st.entries = append(st.entries, rec.ID)
		s.smu.Lock()
		s.sessions[sid] = st
		s.smu.Unlock()
		s.metrics.sessionsOpened.Add(1)
		s.metrics.sessionsLive.Add(1)
		s.replayed.Add(1)
		s.log.Info("journal replay: session restored", "entry", rec.ID, "session", sid)

	case "f":
		st := s.session(sid)
		if st == nil {
			s.log.Warn("journal replay: fault report for unknown session", "entry", rec.ID, "session", sid)
			s.journalTerminal(rec.ID, "unreplayable")
			return
		}
		var fr session.FaultReport
		dec := json.NewDecoder(bytes.NewReader(rec.Request))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&fr); err != nil {
			s.log.Warn("journal replay: unreplayable fault report", "entry", rec.ID, "err", err)
			s.journalTerminal(rec.ID, "unreplayable")
			return
		}
		st.mu.Lock()
		prevCells := st.cells
		rd, err := st.sess.Repair(obs.Into(context.Background(), obs.New(s.agg)), fr)
		switch {
		case err == nil:
			st.entries = append(st.entries, rec.ID)
			st.cells = rd.CellsLost
			st.mu.Unlock()
			s.metrics.sessionCells.Add(int64(rd.CellsLost - prevCells))
			s.metrics.sessionRepairs.Add(rd.Outcome, 1)
			s.replayed.Add(1)
			s.log.Info("journal replay: repair re-applied",
				"entry", rec.ID, "session", sid, "rung", rd.Rung, "outcome", rd.Outcome)
		case errors.Is(err, session.ErrAbandoned):
			st.cells = rd.CellsLost
			s.terminalSessionLocked(st, rec.ID, "abandoned")
			st.mu.Unlock()
			s.metrics.sessionCells.Add(int64(rd.CellsLost - prevCells))
			s.metrics.sessionRepairs.Add(session.OutcomeAbandoned, 1)
			s.metrics.sessionsLive.Add(-1)
			s.replayed.Add(1)
		default:
			st.mu.Unlock()
			s.log.Warn("journal replay: repair failed", "entry", rec.ID, "session", sid, "err", err)
			s.journalTerminal(rec.ID, "unreplayable")
		}

	default:
		s.journalTerminal(rec.ID, "unreplayable")
	}
}
